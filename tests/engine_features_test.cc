// Tests for the query-surface extensions: EXPLAIN, LIMIT, DROP UDF,
// SHOW UDFS.

#include <gtest/gtest.h>

#include "engine/eva_engine.h"
#include "vbench/vbench.h"

namespace eva::engine {
namespace {

using optimizer::ReuseMode;

catalog::VideoInfo FeatVideo() {
  catalog::VideoInfo v;
  v.name = "feat";
  v.num_frames = 200;
  v.mean_objects_per_frame = 6;
  v.seed = 31;
  return v;
}

std::unique_ptr<EvaEngine> MakeEngineOrDie() {
  auto r = vbench::MakeEngine(ReuseMode::kEva, FeatVideo());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(ExplainTest, ReturnsPlanWithoutExecuting) {
  auto engine = MakeEngineOrDie();
  auto r = engine->Execute(
      "EXPLAIN SELECT id, obj FROM feat CROSS APPLY "
      "FasterRCNNResNet50(frame) WHERE id < 50 AND label = 'car' AND "
      "CarType(frame, bbox) = 'Nissan';");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Plan rows came back...
  ASSERT_GT(r.value().batch.num_rows(), 3u);
  std::string all;
  for (size_t i = 0; i < r.value().batch.num_rows(); ++i) {
    all += r.value().batch.GetByName(i, "plan").AsString() + "\n";
  }
  EXPECT_NE(all.find("VideoScan"), std::string::npos);
  EXPECT_NE(all.find("Apply(FasterRCNNResNet50)"), std::string::npos);
  // ... but nothing executed: no UDF invocations, no views, no coverage.
  EXPECT_EQ(r.value().metrics.TotalInvocations(), 0);
  EXPECT_DOUBLE_EQ(engine->views().TotalSizeBytes(), 0);
  EXPECT_FALSE(engine->udf_manager().HasCoverage(
      "FasterRCNNResNet50@feat"));
}

TEST(ExplainTest, ShowsReuseOperatorsOnWarmState) {
  auto engine = MakeEngineOrDie();
  ASSERT_TRUE(engine
                  ->Execute("SELECT id, obj FROM feat CROSS APPLY "
                            "FasterRCNNResNet50(frame) WHERE id < 100;")
                  .ok());
  auto r = engine->Execute(
      "EXPLAIN SELECT id, obj FROM feat CROSS APPLY "
      "FasterRCNNResNet50(frame) WHERE id < 80;");
  ASSERT_TRUE(r.ok());
  std::string all;
  for (size_t i = 0; i < r.value().batch.num_rows(); ++i) {
    all += r.value().batch.GetByName(i, "plan").AsString() + "\n";
  }
  EXPECT_NE(all.find("ViewJoin"), std::string::npos);
  EXPECT_NE(all.find("CondApply"), std::string::npos);
  EXPECT_NE(all.find("Store"), std::string::npos);
}

TEST(ExplainTest, RejectsNonSelect) {
  auto engine = MakeEngineOrDie();
  EXPECT_FALSE(engine->Execute("EXPLAIN SHOW UDFS;").ok());
}

TEST(LimitTest, CapsRowCount) {
  auto engine = MakeEngineOrDie();
  auto full = engine->Execute(
      "SELECT id, obj FROM feat CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 50 AND label = 'car';");
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full.value().batch.num_rows(), 10u);
  auto limited = engine->Execute(
      "SELECT id, obj FROM feat CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 50 AND label = 'car' LIMIT 10;");
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  EXPECT_EQ(limited.value().batch.num_rows(), 10u);
  auto zero = engine->Execute(
      "SELECT id, obj FROM feat CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 50 LIMIT 0;");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.value().batch.num_rows(), 0u);
}

TEST(LimitTest, LimitAfterGroupBy) {
  auto engine = MakeEngineOrDie();
  auto r = engine->Execute(
      "SELECT id, COUNT(*) FROM feat CROSS APPLY "
      "FasterRCNNResNet50(frame) WHERE id < 50 GROUP BY id LIMIT 5;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().batch.num_rows(), 5u);
}

TEST(LimitTest, ParserRejectsBadLimit) {
  auto engine = MakeEngineOrDie();
  EXPECT_FALSE(engine->Execute("SELECT id FROM feat LIMIT x;").ok());
}

TEST(ShowUdfsTest, ListsRegisteredUdfs) {
  auto engine = MakeEngineOrDie();
  auto r = engine->Execute("SHOW UDFS;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The standard zoo: 3 detectors + 2 classifiers + 1 filter.
  EXPECT_EQ(r.value().batch.num_rows(), 6u);
  bool saw_frcnn = false;
  for (size_t i = 0; i < r.value().batch.num_rows(); ++i) {
    if (r.value().batch.GetByName(i, "name").AsString() ==
        "FasterRCNNResNet50") {
      saw_frcnn = true;
      EXPECT_EQ(r.value().batch.GetByName(i, "kind").AsString(),
                "detector");
      EXPECT_EQ(r.value().batch.GetByName(i, "logical_type").AsString(),
                "ObjectDetector");
      EXPECT_DOUBLE_EQ(r.value().batch.GetByName(i, "cost_ms").AsDouble(),
                       99);
    }
  }
  EXPECT_TRUE(saw_frcnn);
}

TEST(DropUdfTest, RemovesUdf) {
  auto engine = MakeEngineOrDie();
  ASSERT_TRUE(engine->Execute("DROP UDF VehicleFilter;").ok());
  EXPECT_FALSE(engine->catalog().HasUdf("VehicleFilter"));
  EXPECT_EQ(engine->Execute("DROP UDF VehicleFilter;").status().code(),
            StatusCode::kNotFound);
  // Queries over the dropped UDF now fail to bind.
  EXPECT_FALSE(engine
                   ->Execute("SELECT id FROM feat CROSS APPLY "
                             "FasterRCNNResNet50(frame) WHERE "
                             "VehicleFilter(frame) = true;")
                   .ok());
}

TEST(DropUdfTest, CreateAfterDropWorks) {
  auto engine = MakeEngineOrDie();
  ASSERT_TRUE(engine->Execute("DROP UDF YoloTiny;").ok());
  ASSERT_TRUE(engine
                  ->Execute("CREATE UDF YoloTiny IMPL='y.py' "
                            "LOGICAL_TYPE=ObjectDetector "
                            "PROPERTIES=('ACCURACY'='LOW', "
                            "'KIND'='DETECTOR', 'COST_MS'='9');")
                  .ok());
  EXPECT_TRUE(engine->catalog().HasUdf("YoloTiny"));
}

}  // namespace
}  // namespace eva::engine
