// Fuzz property tests for every parser that consumes untrusted bytes: the
// EVA-QL parser/lexer, the predicate codec, the value codec, and the view /
// lifecycle file readers. The property is uniform — malformed input (random
// bytes, truncations, bit flips) yields a Status error or a successful
// parse, never a crash, throw, or sanitizer report. CI runs this binary
// under ASan/UBSan; the seeds are fixed so failures replay exactly.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/eva_engine.h"
#include "parser/parser.h"
#include "storage/view_persistence.h"
#include "symbolic/predicate.h"
#include "symbolic/predicate_io.h"
#include "vbench/vbench.h"

namespace eva {
namespace {

namespace stdfs = std::filesystem;

// Printable-ish alphabet biased toward the tokens our grammars use, plus
// raw control bytes so the lexer sees genuinely hostile input.
std::string RandomText(Rng& rng, size_t max_len) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789 \t\n.,;:%#@*()<>=!'\"-+_";
  const size_t len = rng.NextBelow(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng.NextBool(0.05)) {
      out += static_cast<char>(rng.NextBelow(256));
    } else {
      out += kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
    }
  }
  return out;
}

std::string Truncate(Rng& rng, const std::string& s) {
  if (s.empty()) return s;
  return s.substr(0, rng.NextBelow(s.size()));
}

std::string BitFlip(Rng& rng, const std::string& s) {
  if (s.empty()) return s;
  std::string out = s;
  const size_t flips = 1 + rng.NextBelow(4);
  for (size_t i = 0; i < flips; ++i) {
    const size_t pos = rng.NextBelow(out.size());
    out[pos] = static_cast<char>(out[pos] ^ (1u << rng.NextBelow(8)));
  }
  return out;
}

std::string Mutate(Rng& rng, const std::string& s) {
  switch (rng.NextBelow(3)) {
    case 0:
      return Truncate(rng, s);
    case 1:
      return BitFlip(rng, s);
    default:
      return BitFlip(rng, Truncate(rng, s));
  }
}

TEST(ReaderFuzzTest, SqlParserNeverCrashes) {
  const std::vector<std::string> corpus = {
      "SELECT id, obj FROM v CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 300 AND label = 'car' LIMIT 5;",
      "SELECT id FROM v WHERE area > 0.25 AND CarType(frame, bbox) = "
      "'Nissan' AND id >= 10 AND id < 20;",
      "CREATE UDF Foo TYPE classifier ON FasterRCNNResNet50 COST 10;",
      "EXPLAIN ANALYZE SELECT id FROM v WHERE id < 5;",
      "DROP UDF Foo;",
      "SHOW UDFS;",
  };
  Rng rng(20260805);
  for (int i = 0; i < 4000; ++i) {
    std::string input = (i % 4 == 0)
                            ? RandomText(rng, 160)
                            : Mutate(rng, corpus[rng.NextBelow(corpus.size())]);
    auto r = parser::ParseStatement(input);  // must return, never throw
    (void)r;
  }
  // Regression: numeric literals that overflow int64/double used to throw
  // out of std::stoll/std::stod and abort the process.
  EXPECT_FALSE(
      parser::ParseStatement(
          "SELECT id FROM v WHERE id < 99999999999999999999999999;")
          .ok());
  EXPECT_FALSE(
      parser::ParseStatement("SELECT id FROM v LIMIT 99999999999999999999;")
          .ok());
  auto big_double =
      parser::ParseStatement("SELECT id FROM v WHERE area > 1.0e999999;");
  (void)big_double;  // overflow to an error, not a throw
}

TEST(ReaderFuzzTest, PredicateCodecNeverCrashes) {
  // Round-trip corpus: encode a few real predicates.
  std::vector<std::string> corpus;
  {
    symbolic::Conjunct c;
    c.Constrain("id", symbolic::DimConstraint::Numeric(
                          symbolic::DimKind::kInteger,
                          symbolic::Interval(symbolic::Bound::Closed(10),
                                             symbolic::Bound::Open(300))));
    c.Constrain("label", symbolic::DimConstraint::Categorical({"car"}, false));
    symbolic::Predicate p;
    p.AddConjunct(c);
    corpus.push_back(symbolic::EncodePredicate(p));
    corpus.push_back(symbolic::EncodePredicate(symbolic::Predicate::True()));
    corpus.push_back(symbolic::EncodePredicate(symbolic::Predicate::False()));
  }
  Rng rng(97);
  for (int i = 0; i < 4000; ++i) {
    std::string input = (i % 4 == 0)
                            ? RandomText(rng, 120)
                            : Mutate(rng, corpus[rng.NextBelow(corpus.size())]);
    auto r = symbolic::DecodePredicate(input);
    (void)r;
  }
  // Hostile counts and kinds must fail cleanly instead of allocating or
  // indexing past the enum.
  EXPECT_FALSE(symbolic::DecodePredicate("P 1 C 1 x 7 Ci 1 a").ok());
  EXPECT_FALSE(symbolic::DecodePredicate("P 1 C 1 x -3 Ci 1 a").ok());
  EXPECT_FALSE(
      symbolic::DecodePredicate("P 1 C 1 x 2 Ci 999999999999999999 a").ok());
  EXPECT_FALSE(symbolic::DecodePredicate("P 99999999 C 1").ok());
}

TEST(ReaderFuzzTest, ValueCodecNeverCrashes) {
  const std::vector<std::string> corpus = {
      storage::EncodeValue(Value::Null()),
      storage::EncodeValue(Value(true)),
      storage::EncodeValue(Value(int64_t{-42})),
      storage::EncodeValue(Value(0.3125)),
      storage::EncodeValue(Value("two words 50%")),
  };
  Rng rng(331);
  for (int i = 0; i < 4000; ++i) {
    std::string input = (i % 4 == 0)
                            ? RandomText(rng, 40)
                            : Mutate(rng, corpus[rng.NextBelow(corpus.size())]);
    auto r = storage::DecodeValue(input);
    (void)r;
  }
  // Regressions: these used to throw out of std::stoll / std::stod /
  // std::stoi (escape decoding).
  EXPECT_FALSE(storage::DecodeValue("I:99999999999999999999999").ok());
  EXPECT_FALSE(storage::DecodeValue("I:12abc").ok());
  EXPECT_FALSE(storage::DecodeValue("D:not_a_number").ok());
  EXPECT_FALSE(storage::DecodeValue("S:%ZZ").ok());
  EXPECT_FALSE(storage::DecodeValue("S:%2").ok());
  auto inf = storage::DecodeValue("D:1e999999");
  (void)inf;
}

class FileReaderFuzzTest : public ::testing::Test {
 protected:
  FileReaderFuzzTest() {
    dir_ = stdfs::temp_directory_path() /
           ("eva_fuzz_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  ~FileReaderFuzzTest() override { stdfs::remove_all(dir_); }

  void WriteRaw(const std::string& name, const std::string& body) {
    stdfs::remove_all(dir_);
    stdfs::create_directories(dir_);
    std::ofstream out(dir_ / name, std::ios::binary);
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
  }

  stdfs::path dir_;
};

TEST_F(FileReaderFuzzTest, ViewFileReaderNeverCrashes) {
  // Corpus: a real saved view file.
  storage::ViewStore store;
  Schema schema({{"obj", DataType::kInt64},
                 {"label", DataType::kString},
                 {"score", DataType::kDouble}});
  storage::MaterializedView* view = store.GetOrCreate("Det@v", schema);
  view->Put({0, -1}, {{Value(int64_t{0}), Value("car"), Value(0.9)},
                      {Value(int64_t{1}), Value("bus pass"), Value(0.8)}});
  view->Put({1, -1}, {});
  ASSERT_TRUE(storage::SaveViewStore(store, dir_.string()).ok());
  std::string body;
  for (const auto& entry : stdfs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 8 && name.substr(name.size() - 8) == ".evaview") {
      std::ifstream in(entry.path(), std::ios::binary);
      body.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    }
  }
  ASSERT_FALSE(body.empty());

  Rng rng(555);
  for (int i = 0; i < 300; ++i) {
    const std::string mutated =
        (i % 5 == 0) ? RandomText(rng, 400) : Mutate(rng, body);
    // Legacy layout (no MANIFEST): the reader has no checksum shield and
    // must survive on parsing alone. Bad files are quarantined, never
    // fatal, never a crash.
    WriteRaw("fuzzed.evaview", mutated);
    storage::ViewStore loaded;
    storage::RecoveryReport report;
    Status s =
        storage::LoadViewStoreEx(dir_.string(), &loaded, nullptr, &report);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

TEST_F(FileReaderFuzzTest, SegmentCodecReaderNeverCrashes) {
  // Corpus: a real binary .evaseg body over columns that exercise every
  // codec family — FOR ints, RLE/dict strings, bit-packed bools, doubles,
  // nulls, and a Bloom-filtered packed key index.
  storage::ViewStore store;
  store.set_build_options({/*compress=*/true, /*bloom_bits_per_key=*/10});
  Schema schema({{"obj", DataType::kInt64},
                 {"label", DataType::kString},
                 {"flag", DataType::kBool},
                 {"score", DataType::kDouble}});
  storage::MaterializedView* view = store.GetOrCreate("Det@v", schema);
  for (int64_t f = 0; f < 300; ++f) {
    if (f % 17 == 0) {
      view->Put({f, -1}, {});  // presence-only keys
      continue;
    }
    view->Put({f, -1},
              {{Value(f % 6), Value(f % 3 == 0 ? "car" : "person"),
                Value(f % 2 == 0), Value(0.5 + static_cast<double>(f % 7))},
               {Value::Null(), Value("bus"), Value::Null(), Value(0.125)}});
  }
  const std::string body = storage::SerializeViewSegments("Det@v", *view);
  ASSERT_FALSE(body.empty());

  // Sanity: the untouched body round-trips into an identical store.
  {
    storage::ViewStore loaded;
    Status s = storage::ParseSegmentBody(body, "x.evaseg", &loaded);
    ASSERT_TRUE(s.ok()) << s.ToString();
    const storage::MaterializedView* lv = loaded.Find("Det@v");
    ASSERT_NE(lv, nullptr);
    EXPECT_EQ(lv->num_keys(), view->num_keys());
    EXPECT_EQ(lv->num_rows(), view->num_rows());
    for (int64_t f = 0; f < 300; ++f) {
      const std::vector<Row>* a = view->TryGet({f, -1});
      const std::vector<Row>* b = lv->TryGet({f, -1});
      ASSERT_EQ(a != nullptr, b != nullptr) << f;
      if (a == nullptr) continue;
      ASSERT_EQ(a->size(), b->size()) << f;
      for (size_t r = 0; r < a->size(); ++r) {
        for (size_t c = 0; c < (*a)[r].size(); ++c) {
          EXPECT_EQ((*a)[r][c], (*b)[r][c]) << f;
        }
      }
    }
  }

  // Property: mutated bodies parse to an error (installing nothing) or
  // parse cleanly to rows that existed in the original view — never a
  // crash, never an invented row. Direct ParseSegmentBody has no CRC
  // shield, so this exercises the format validation itself.
  Rng rng(1234);
  for (int i = 0; i < 600; ++i) {
    const std::string mutated =
        (i % 5 == 0) ? RandomText(rng, 600) : Mutate(rng, body);
    storage::ViewStore loaded;
    Status s = storage::ParseSegmentBody(mutated, "fz.evaseg", &loaded);
    if (!s.ok()) {
      EXPECT_TRUE(loaded.views().empty());
      continue;
    }
    const storage::MaterializedView* lv = loaded.Find("Det@v");
    if (lv == nullptr) continue;  // parsed under a mutated name
    for (const auto& [key, rows] : lv->entries()) {
      const std::vector<Row>* orig = view->TryGet(key);
      if (orig == nullptr) continue;  // bit flips inside key varints
      // A surviving key either matches the original payload or the
      // mutation stayed inside the value lanes — but lane sizes, dict
      // indexes, and run offsets were all revalidated, so reconstructed
      // rows always have the right shape.
      for (const Row& row : rows) {
        EXPECT_EQ(row.size(), schema.num_fields());
      }
    }
  }

  // Through the manifested v2 load path the CRC catches what the parser
  // cannot: corrupt .evaseg files quarantine and retract, never load.
  {
    stdfs::remove_all(dir_);
    udf::UdfManager manager;
    ASSERT_TRUE(
        storage::SaveSession(store, manager, dir_.string(), nullptr,
                             {/*compressed_segments=*/true})
            .ok());
    std::string seg_file;
    for (const auto& entry : stdfs::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 7 && name.substr(name.size() - 7) == ".evaseg") {
        seg_file = name;
      }
    }
    ASSERT_FALSE(seg_file.empty());
    Rng crc_rng(4321);
    std::ifstream in(dir_ / seg_file, std::ios::binary);
    std::string good((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    for (int i = 0; i < 60; ++i) {
      std::string bad = BitFlip(crc_rng, good);
      if (bad == good) continue;
      {
        std::ofstream out(dir_ / seg_file, std::ios::binary);
        out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
      }
      storage::ViewStore loaded;
      storage::RecoveryReport report;
      Status s =
          storage::LoadViewStoreEx(dir_.string(), &loaded, nullptr, &report);
      EXPECT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(loaded.Find("Det@v"), nullptr);
      ASSERT_EQ(report.quarantined.size(), 1u);
      EXPECT_EQ(report.quarantined[0].view_key, "Det@v");
      // Restore for the next round (quarantine renamed the file away).
      std::error_code ec;
      stdfs::remove(dir_ / (seg_file + ".quarantined"), ec);
      std::ofstream out(dir_ / seg_file, std::ios::binary);
      out.write(good.data(), static_cast<std::streamsize>(good.size()));
    }
  }
}

TEST_F(FileReaderFuzzTest, ManifestReaderNeverCrashes) {
  Rng rng(777);
  const std::string valid =
      "eva-manifest 1\ngeneration 3\n"
      "file Det@v.g3.evaview 120 0a1b2c3d view Det@v\n"
      "file lifecycle.g3.evastate 64 11223344 lifecycle -\n";
  for (int i = 0; i < 300; ++i) {
    const std::string mutated =
        (i % 5 == 0) ? RandomText(rng, 200) : Mutate(rng, valid);
    WriteRaw("MANIFEST", mutated);
    storage::ViewStore loaded;
    storage::RecoveryReport report;
    Status s =
        storage::LoadViewStoreEx(dir_.string(), &loaded, nullptr, &report);
    EXPECT_TRUE(s.ok()) << s.ToString();
    // A mutated manifest is (almost) always a checksum failure; nothing
    // may load off the back of one.
    if (report.manifest_corrupt) {
      EXPECT_TRUE(loaded.views().empty());
    }
  }
}

TEST_F(FileReaderFuzzTest, LifecycleReaderNeverCrashes) {
  // Corpus: the lifecycle file of a real session save.
  catalog::VideoInfo video;
  video.name = "fz";
  video.num_frames = 60;
  video.mean_objects_per_frame = 6;
  video.seed = 3;
  auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, video);
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  ASSERT_TRUE(engine
                  ->Execute("SELECT id, obj FROM fz CROSS APPLY "
                            "FasterRCNNResNet50(frame) WHERE id < 60 AND "
                            "label = 'car';")
                  .ok());
  stdfs::create_directories(dir_);
  ASSERT_TRUE(engine->SaveViews(dir_.string()).ok());
  std::string body;
  for (const auto& entry : stdfs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 9 && name.substr(name.size() - 9) == ".evastate") {
      std::ifstream in(entry.path(), std::ios::binary);
      body.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    }
  }
  ASSERT_FALSE(body.empty());

  Rng rng(999);
  for (int i = 0; i < 300; ++i) {
    const std::string mutated =
        (i % 5 == 0) ? RandomText(rng, 400) : Mutate(rng, body);
    // v1 legacy layout: fixed name, no manifest, no checksum.
    WriteRaw("lifecycle.evastate", mutated);
    storage::ViewStore store;
    udf::UdfManager manager;
    Status s =
        storage::LoadLifecycleState(dir_.string(), &store, &manager);
    (void)s;  // error or OK — either way, no crash
  }
}

}  // namespace
}  // namespace eva
