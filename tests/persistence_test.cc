#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/eva_engine.h"
#include "storage/view_persistence.h"
#include "vbench/vbench.h"

namespace eva::storage {
namespace {

namespace fs = std::filesystem;

class PersistenceTest : public ::testing::Test {
 protected:
  PersistenceTest() {
    dir_ = fs::temp_directory_path() /
           ("eva_views_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  ~PersistenceTest() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(PersistenceTest, ValueEncodingRoundTrips) {
  const Value values[] = {Value::Null(),      Value(true),
                          Value(false),       Value(int64_t{-42}),
                          Value(0.3125),      Value("Nissan"),
                          Value("two words"), Value("50%")};
  for (const Value& v : values) {
    auto decoded = DecodeValue(EncodeValue(v));
    ASSERT_TRUE(decoded.ok()) << v.ToString();
    EXPECT_TRUE(decoded.value() == v)
        << v.ToString() << " -> " << EncodeValue(v) << " -> "
        << decoded.value().ToString();
  }
  EXPECT_FALSE(DecodeValue("").ok());
  EXPECT_FALSE(DecodeValue("X:1").ok());
  EXPECT_FALSE(DecodeValue("Bnocolon").ok());
}

TEST_F(PersistenceTest, ViewStoreRoundTrips) {
  ViewStore store;
  Schema det({{"obj", DataType::kInt64},
              {"label", DataType::kString},
              {"area", DataType::kDouble},
              {"score", DataType::kDouble}});
  MaterializedView* view = store.GetOrCreate("Det@v", det);
  view->Put({0, -1}, {{Value(int64_t{0}), Value("car"), Value(0.25),
                       Value(0.9)},
                      {Value(int64_t{1}), Value("bus"), Value(0.5),
                       Value(0.8)}});
  view->Put({1, -1}, {});  // presence-only entry must survive
  MaterializedView* cls =
      store.GetOrCreate("CarType@v", Schema({{"CarType",
                                              DataType::kString}}));
  cls->Put({0, 0}, {{Value("Nissan")}});
  cls->Put({0, 1}, {{Value("Toyota")}});

  ASSERT_TRUE(SaveViewStore(store, dir_.string()).ok());

  ViewStore loaded;
  ASSERT_TRUE(LoadViewStore(dir_.string(), &loaded).ok());
  MaterializedView* lv = loaded.Find("Det@v");
  ASSERT_NE(lv, nullptr);
  EXPECT_EQ(lv->num_keys(), 2);
  EXPECT_EQ(lv->num_rows(), 2);
  EXPECT_TRUE(lv->Has({1, -1}));
  EXPECT_TRUE(lv->Get({1, -1}).empty());
  ASSERT_EQ(lv->Get({0, -1}).size(), 2u);
  EXPECT_EQ(lv->Get({0, -1})[0][1].AsString(), "car");
  EXPECT_DOUBLE_EQ(lv->Get({0, -1})[1][2].AsDouble(), 0.5);
  MaterializedView* lc = loaded.Find("CarType@v");
  ASSERT_NE(lc, nullptr);
  EXPECT_EQ(lc->Get({0, 1})[0][0].AsString(), "Toyota");
  EXPECT_TRUE(lc->value_schema() ==
              Schema({{"CarType", DataType::kString}}));
}

TEST_F(PersistenceTest, LoadMergesWithoutOverwriting) {
  ViewStore store;
  Schema schema({{"CarType", DataType::kString}});
  store.GetOrCreate("CarType@v", schema)->Put({0, 0}, {{Value("Nissan")}});
  ASSERT_TRUE(SaveViewStore(store, dir_.string()).ok());

  ViewStore target;
  target.GetOrCreate("CarType@v", schema)->Put({0, 0}, {{Value("Ford")}});
  target.GetOrCreate("CarType@v", schema)->Put({0, 1}, {{Value("BMW")}});
  ASSERT_TRUE(LoadViewStore(dir_.string(), &target).ok());
  // Existing keys win (append-only semantics); new keys merge in.
  EXPECT_EQ(target.Find("CarType@v")->Get({0, 0})[0][0].AsString(),
            "Ford");
  EXPECT_EQ(target.Find("CarType@v")->num_keys(), 2);
}

TEST_F(PersistenceTest, MissingDirectoryIsNotFound) {
  ViewStore store;
  EXPECT_EQ(LoadViewStore((dir_ / "nope").string(), &store).code(),
            StatusCode::kNotFound);
}

TEST_F(PersistenceTest, EngineSurvivesRestart) {
  catalog::VideoInfo video;
  video.name = "pv";
  video.num_frames = 120;
  video.mean_objects_per_frame = 6;
  video.seed = 3;
  const char* sql =
      "SELECT id, obj FROM pv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 120 AND label = 'car' AND CarType(frame, bbox) = "
      "'Nissan';";
  // Session 1: run and persist.
  {
    auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, video);
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    ASSERT_TRUE(engine->Execute(sql).ok());
    ASSERT_TRUE(engine->SaveViews(dir_.string()).ok());
  }
  // Session 2: load views; the same query needs zero UDF evaluations even
  // though the aggregated predicates were not persisted (the conditional
  // apply consults the view per tuple).
  {
    auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, video);
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    ASSERT_TRUE(engine->LoadViews(dir_.string()).ok());
    auto r = engine->Execute(sql);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r.value().metrics.breakdown[CostCategory::kUdf], 0.0);
  }
}

TEST_F(PersistenceTest, LifecycleStateSurvivesEvictionAndRestart) {
  catalog::VideoInfo video;
  video.name = "pv";
  video.num_frames = 120;
  video.mean_objects_per_frame = 6;
  video.seed = 3;
  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  options.segment_frames = 32;
  const char* sql =
      "SELECT id, obj FROM pv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 120 AND label = 'car';";
  const std::string key = "FasterRCNNResNet50@pv";

  auto coverage_at = [&](const engine::EvaEngine& engine, int64_t frame) {
    return engine.udf_manager().Coverage(key).Evaluate(
        [&](const std::string&) { return Value(frame); });
  };

  std::vector<bool> covered_after_eviction(120, false);
  std::string reference;
  int64_t saved_last_query = -2;
  double first_udf_ms = 0;
  // Session 1: materialize, evict under a mid-session budget, persist.
  {
    auto er = vbench::MakeEngine(options, video);
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    auto first = engine->Execute(sql);
    ASSERT_TRUE(first.ok());
    reference = first.value().batch.ToString(1 << 20);
    first_udf_ms = first.value().metrics.breakdown[CostCategory::kUdf];
    ASSERT_GT(first_udf_ms, 0);
    // Seal first: EnforceBudget charges sealed segments at encoded size,
    // so the 50% budget must be half of the sealed footprint.
    engine->views().SealAllSegments();
    engine->lifecycle()->set_budget_bytes(
        engine->views().TotalSizeBytes() * 0.5);
    auto evicted =
        engine->lifecycle()->EnforceBudget(engine->queries_executed());
    ASSERT_FALSE(evicted.empty());
    for (int64_t f = 0; f < 120; ++f) {
      covered_after_eviction[static_cast<size_t>(f)] =
          coverage_at(*engine, f);
    }
    ASSERT_NE(std::count(covered_after_eviction.begin(),
                         covered_after_eviction.end(), true),
              0);
    saved_last_query = engine->views().Find(key)->last_access_query();
    ASSERT_TRUE(engine->SaveViews(dir_.string()).ok());
  }
  // Session 2: reload. The retracted coverage and segment stamps round-trip,
  // and re-running the query recomputes exactly the evicted gap.
  {
    auto er = vbench::MakeEngine(options, video);
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    ASSERT_TRUE(engine->LoadViews(dir_.string()).ok());
    for (int64_t f = 0; f < 120; ++f) {
      EXPECT_EQ(coverage_at(*engine, f),
                covered_after_eviction[static_cast<size_t>(f)])
          << "frame " << f;
    }
    const MaterializedView* view = engine->views().Find(key);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->last_access_query(), saved_last_query);
    ASSERT_FALSE(view->Segments().empty());

    auto r = engine->Execute(sql);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().batch.ToString(1 << 20), reference);
    // Retained frames reuse (coverage or view probe); only the evicted
    // gap pays UDF time again.
    const double udf_ms = r.value().metrics.breakdown[CostCategory::kUdf];
    EXPECT_GT(udf_ms, 0);
    EXPECT_LT(udf_ms, first_udf_ms);
    EXPECT_GT(r.value().metrics.TotalReused(), 0);
  }
}

// Strips a v2 save directory down to the pre-manifest v1 layout: no
// MANIFEST, no generation tags in filenames, optionally no lifecycle file.
void MakeLegacyV1(const fs::path& dir, bool keep_lifecycle) {
  fs::remove(dir / "MANIFEST");
  std::vector<std::pair<fs::path, fs::path>> renames;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    const size_t gpos = name.rfind(".g");
    if (gpos == std::string::npos) continue;
    const size_t dot = name.find('.', gpos + 2);
    if (dot == std::string::npos) continue;
    const std::string v1 = name.substr(0, gpos) + name.substr(dot);
    if (v1 == "lifecycle.evastate" && !keep_lifecycle) {
      fs::remove(entry.path());
      continue;
    }
    renames.emplace_back(entry.path(), dir / v1);
  }
  for (const auto& [from, to] : renames) fs::rename(from, to);
}

TEST_F(PersistenceTest, LegacyV1DirectoryWithoutLifecycleLoads) {
  catalog::VideoInfo video;
  video.name = "pv";
  video.num_frames = 60;
  video.mean_objects_per_frame = 6;
  video.seed = 3;
  const char* sql =
      "SELECT id, obj FROM pv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 60 AND label = 'car';";
  {
    auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, video);
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    ASSERT_TRUE(engine->Execute(sql).ok());
    ASSERT_TRUE(engine->SaveViews(dir_.string()).ok());
  }
  // A directory written before the manifest/lifecycle subsystems existed:
  // bare <view>.evaview files and nothing else. It must still load (the
  // conditional apply consults the view per tuple without coverage).
  MakeLegacyV1(dir_, /*keep_lifecycle=*/false);
  {
    auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, video);
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    ASSERT_TRUE(engine->LoadViews(dir_.string()).ok());
    EXPECT_TRUE(engine->last_recovery().legacy);
    EXPECT_EQ(engine->last_recovery().generation, 0);
    auto r = engine->Execute(sql);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r.value().metrics.breakdown[CostCategory::kUdf], 0.0);
  }
}

TEST_F(PersistenceTest, LegacyV1DirectoryWithLifecycleLoads) {
  catalog::VideoInfo video;
  video.name = "pv";
  video.num_frames = 60;
  video.mean_objects_per_frame = 6;
  video.seed = 3;
  const char* sql =
      "SELECT id, obj FROM pv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 60 AND label = 'car';";
  {
    auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, video);
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    ASSERT_TRUE(engine->Execute(sql).ok());
    ASSERT_TRUE(engine->SaveViews(dir_.string()).ok());
  }
  MakeLegacyV1(dir_, /*keep_lifecycle=*/true);
  {
    auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, video);
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    ASSERT_TRUE(engine->LoadViews(dir_.string()).ok());
    EXPECT_TRUE(engine->last_recovery().legacy);
    auto r = engine->Execute(sql);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r.value().metrics.breakdown[CostCategory::kUdf], 0.0);
  }
}

// Regression: a view dropped from the store used to leave its .evaview
// file behind, silently resurrecting on the next load. Committing the
// manifest now garbage-collects every file it does not list.
TEST_F(PersistenceTest, StaleFilesOfDroppedViewsDoNotResurrect) {
  Schema schema({{"x", DataType::kInt64}});
  {
    ViewStore store;
    store.GetOrCreate("A@v", schema)->Put({0, -1}, {{Value(int64_t{1})}});
    store.GetOrCreate("B@v", schema)->Put({0, -1}, {{Value(int64_t{2})}});
    ASSERT_TRUE(SaveViewStore(store, dir_.string()).ok());
  }
  {
    // Second save no longer contains B — its file must be deleted.
    ViewStore store;
    store.GetOrCreate("A@v", schema)->Put({0, -1}, {{Value(int64_t{1})}});
    ASSERT_TRUE(SaveViewStore(store, dir_.string()).ok());
  }
  int evaview_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 8 && name.substr(name.size() - 8) == ".evaview") {
      ++evaview_files;
      EXPECT_EQ(name.find("B@v"), std::string::npos) << name;
    }
  }
  EXPECT_EQ(evaview_files, 1);
  ViewStore loaded;
  ASSERT_TRUE(LoadViewStore(dir_.string(), &loaded).ok());
  EXPECT_NE(loaded.Find("A@v"), nullptr);
  EXPECT_EQ(loaded.Find("B@v"), nullptr) << "dropped view resurrected";
}

// A file someone (or an interrupted save) drops into the directory without
// a manifest entry is quarantined, never loaded.
TEST_F(PersistenceTest, UnmanifestedFileIsQuarantinedNotLoaded) {
  Schema schema({{"x", DataType::kInt64}});
  ViewStore store;
  store.GetOrCreate("A@v", schema)->Put({0, -1}, {{Value(int64_t{1})}});
  ASSERT_TRUE(SaveViewStore(store, dir_.string()).ok());
  {
    std::ofstream out(dir_ / "Stray@v.evaview");
    out << "eva-view 1\nname Stray@v\nschema 1 x INT64\nkey 0 -1 1\n"
           "row I:7\n";
  }
  ViewStore loaded;
  RecoveryReport report;
  ASSERT_TRUE(
      LoadViewStoreEx(dir_.string(), &loaded, nullptr, &report).ok());
  EXPECT_EQ(loaded.Find("Stray@v"), nullptr);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].file, "Stray@v.evaview");
  EXPECT_EQ(report.quarantined[0].reason, "not in manifest");
  EXPECT_TRUE(fs::exists(dir_ / "Stray@v.evaview.quarantined"));
  EXPECT_FALSE(fs::exists(dir_ / "Stray@v.evaview"));
}

TEST_F(PersistenceTest, GenerationAdvancesAcrossSaves) {
  catalog::VideoInfo video;
  video.name = "pv";
  video.num_frames = 60;
  video.mean_objects_per_frame = 6;
  video.seed = 3;
  auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, video);
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  ASSERT_TRUE(engine
                  ->Execute("SELECT id, obj FROM pv CROSS APPLY "
                            "FasterRCNNResNet50(frame) WHERE id < 30 AND "
                            "label = 'car';")
                  .ok());
  ASSERT_TRUE(engine->SaveViews(dir_.string()).ok());
  ASSERT_TRUE(engine->SaveViews(dir_.string()).ok());
  ASSERT_TRUE(engine->LoadViews(dir_.string()).ok());
  EXPECT_EQ(engine->last_recovery().generation, 2);
  EXPECT_TRUE(engine->last_recovery().clean());
  EXPECT_FALSE(engine->last_recovery().legacy);
  // Only one generation's files survive the second commit's GC. Engine
  // saves write binary .evaseg codec files; count either form.
  int view_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    const bool is_view =
        (name.size() > 8 && name.substr(name.size() - 8) == ".evaview") ||
        (name.size() > 7 && name.substr(name.size() - 7) == ".evaseg");
    if (is_view) {
      ++view_files;
      EXPECT_NE(name.find(".g2."), std::string::npos) << name;
    }
  }
  EXPECT_GE(view_files, 1);
}

}  // namespace
}  // namespace eva::storage
