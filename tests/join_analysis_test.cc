#include <gtest/gtest.h>

#include "common/rng.h"
#include "symbolic/join_analysis.h"

namespace eva::symbolic {
namespace {

using Form = JoinPredicate::Form;

// Brute-force oracle for Subsumes.
bool BruteSubsumes(const JoinPredicate& prior, const JoinPredicate& query,
                   int64_t lo, int64_t hi) {
  for (int64_t r = lo; r <= hi; ++r) {
    int64_t left;
    if (query.form == Form::kAffine) {
      left = query.scale * r + query.offset;
    } else {
      left = r % query.modulus;
      if (left < 0) left += query.modulus;
    }
    if (!prior.Matches(left, r)) return false;
  }
  return true;
}

TEST(JoinPredicateTest, MatchesAffine) {
  auto p = JoinPredicate::Affine("A.id", "B.id", 1, 1);
  EXPECT_TRUE(p.Matches(5, 4));
  EXPECT_FALSE(p.Matches(5, 5));
  auto scaled = JoinPredicate::Affine("A.id", "B.id", 2, -1);
  EXPECT_TRUE(scaled.Matches(9, 5));
}

TEST(JoinPredicateTest, MatchesModular) {
  auto p = JoinPredicate::Modular("A.id", "B.id", 2);
  EXPECT_TRUE(p.Matches(1, 3));
  EXPECT_TRUE(p.Matches(0, 4));
  EXPECT_FALSE(p.Matches(2, 4));
  EXPECT_TRUE(p.Matches(1, -3));  // mathematical remainder
}

TEST(JoinPredicateTest, ToStringForms) {
  EXPECT_EQ(JoinPredicate::Affine("A.id", "B.id").ToString(),
            "A.id = B.id");
  EXPECT_EQ(JoinPredicate::Affine("A.id", "B.id", 1, 1).ToString(),
            "A.id = B.id + 1");
  EXPECT_EQ(JoinPredicate::Modular("A.id", "B.id", 2).ToString(),
            "A.id = B.id mod 2");
}

TEST(JoinAnalysisTest, EquivalenceRequiresSameShape) {
  auto q1 = JoinPredicate::Affine("A.id", "B.id");
  auto q1b = JoinPredicate::Affine("A.id", "B.id");
  auto q2 = JoinPredicate::Affine("A.id", "B.id", 1, 1);
  auto q3 = JoinPredicate::Modular("A.id", "B.id", 2);
  EXPECT_TRUE(Equivalent(q1, q1b));
  EXPECT_FALSE(Equivalent(q1, q2));
  EXPECT_FALSE(Equivalent(q1, q3));
  EXPECT_FALSE(Equivalent(
      q1, JoinPredicate::Affine("A.id", "C.id")));  // different columns
}

TEST(JoinAnalysisTest, PaperExampleQ1Q2Q3) {
  // §6: "no reuse opportunities exist between Q1 and Q2, while Q1
  // subsumes Q3". Under the precise pair-level semantics the Q3
  // subsumption holds exactly when the joined id domain fits in [0, 2).
  auto q1 = JoinPredicate::Affine("A.id", "B.id");
  auto q2 = JoinPredicate::Affine("A.id", "B.id", 1, 1);
  auto q3 = JoinPredicate::Modular("A.id", "B.id", 2);
  EXPECT_FALSE(Subsumes(q1, q2, 0, 100));
  EXPECT_FALSE(Subsumes(q2, q1, 0, 100));
  EXPECT_TRUE(Subsumes(q1, q3, 0, 1));    // ids ∈ {0,1}: Q1 covers Q3
  EXPECT_FALSE(Subsumes(q1, q3, 0, 100));  // wider domain: it does not
  EXPECT_TRUE(Subsumes(q3, q1, 0, 1));
  EXPECT_FALSE(Subsumes(q3, q1, 0, 100));
}

TEST(JoinAnalysisTest, IdenticalPredicatesSubsume) {
  auto p = JoinPredicate::Affine("A.id", "B.id", 3, -2);
  EXPECT_TRUE(Subsumes(p, p, -1000, 1000));
  auto m = JoinPredicate::Modular("A.id", "B.id", 7);
  EXPECT_TRUE(Subsumes(m, m, 0, 1000));
}

TEST(JoinAnalysisTest, SinglePointDomainIntersection) {
  // x + 2 and 2x intersect at r = 2 only.
  auto a = JoinPredicate::Affine("A.id", "B.id", 1, 2);
  auto b = JoinPredicate::Affine("A.id", "B.id", 2, 0);
  EXPECT_TRUE(Subsumes(a, b, 2, 2));
  EXPECT_FALSE(Subsumes(a, b, 1, 2));
  EXPECT_FALSE(Subsumes(a, b, 0, 10));
}

TEST(JoinAnalysisTest, ModularPairSubsumption) {
  auto m2 = JoinPredicate::Modular("A.id", "B.id", 2);
  auto m4 = JoinPredicate::Modular("A.id", "B.id", 4);
  EXPECT_TRUE(Subsumes(m4, m2, 0, 1));    // below both moduli
  EXPECT_FALSE(Subsumes(m4, m2, 0, 10));  // 2 mod 2=0 but 2 mod 4=2
  EXPECT_TRUE(Subsumes(m2, m4, 0, 1));
}

TEST(JoinAnalysisTest, EmptyDomainIsVacuouslySubsumed) {
  auto q1 = JoinPredicate::Affine("A.id", "B.id");
  auto q2 = JoinPredicate::Affine("A.id", "B.id", 1, 5);
  EXPECT_TRUE(Subsumes(q1, q2, 10, 9));
}

TEST(JoinAnalysisTest, AgreesWithBruteForceOnRandomInstances) {
  Rng rng(2024);
  for (int iter = 0; iter < 300; ++iter) {
    auto random_pred = [&rng]() {
      if (rng.NextBool(0.5)) {
        return JoinPredicate::Affine(
            "A.id", "B.id", 1 + static_cast<int64_t>(rng.NextBelow(3)),
            static_cast<int64_t>(rng.NextBelow(5)) - 2);
      }
      return JoinPredicate::Modular(
          "A.id", "B.id", 2 + static_cast<int64_t>(rng.NextBelow(6)));
    };
    JoinPredicate prior = random_pred();
    JoinPredicate query = random_pred();
    int64_t lo = static_cast<int64_t>(rng.NextBelow(10));
    int64_t hi = lo + static_cast<int64_t>(rng.NextBelow(40));
    bool got = Subsumes(prior, query, lo, hi);
    bool expected = BruteSubsumes(prior, query, lo, hi);
    // The analysis must never claim subsumption that does not hold
    // (soundness); within the enumeration limit it is also complete.
    ASSERT_EQ(got, expected)
        << prior.ToString() << " vs " << query.ToString() << " on [" << lo
        << ", " << hi << "]";
  }
}

}  // namespace
}  // namespace eva::symbolic
