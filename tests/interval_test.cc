#include <gtest/gtest.h>

#include "symbolic/interval.h"

namespace eva::symbolic {
namespace {

TEST(IntervalTest, EmptyAndFull) {
  EXPECT_TRUE(Interval::Empty().IsEmpty());
  EXPECT_TRUE(Interval::Full().IsFull());
  EXPECT_FALSE(Interval::Full().IsEmpty());
  EXPECT_TRUE(Interval(Bound::Open(5), Bound::Open(5)).IsEmpty());
  EXPECT_TRUE(Interval(Bound::Closed(5), Bound::Open(5)).IsEmpty());
  EXPECT_FALSE(Interval::Point(5).IsEmpty());
  EXPECT_TRUE(Interval::Point(5).IsPoint());
  EXPECT_TRUE(Interval(Bound::Closed(6), Bound::Closed(5)).IsEmpty());
}

TEST(IntervalTest, Contains) {
  Interval i(Bound::Closed(1), Bound::Open(5));  // [1, 5)
  EXPECT_TRUE(i.Contains(1));
  EXPECT_TRUE(i.Contains(4.999));
  EXPECT_FALSE(i.Contains(5));
  EXPECT_FALSE(i.Contains(0.999));
  EXPECT_TRUE(Interval::GreaterThan(3).Contains(1e9));
  EXPECT_FALSE(Interval::GreaterThan(3).Contains(3));
  EXPECT_TRUE(Interval::AtLeast(3).Contains(3));
}

TEST(IntervalTest, Intersect) {
  Interval a(Bound::Closed(1), Bound::Closed(10));
  Interval b(Bound::Open(5), Bound::Closed(20));
  Interval c = a.Intersect(b);  // (5, 10]
  EXPECT_FALSE(c.Contains(5));
  EXPECT_TRUE(c.Contains(10));
  EXPECT_TRUE(a.Intersect(Interval::LessThan(1)).IsEmpty());
  EXPECT_TRUE(a.Intersect(Interval::Full()) == a);
}

TEST(IntervalTest, Subset) {
  EXPECT_TRUE(Interval::Point(3).IsSubsetOf(Interval::AtLeast(3)));
  EXPECT_FALSE(Interval::Point(3).IsSubsetOf(Interval::GreaterThan(3)));
  EXPECT_TRUE(Interval(Bound::Closed(2), Bound::Closed(4))
                  .IsSubsetOf(Interval(Bound::Closed(1), Bound::Open(5))));
  EXPECT_TRUE(Interval::Empty().IsSubsetOf(Interval::Point(0)));
  EXPECT_FALSE(Interval::Full().IsSubsetOf(Interval::AtLeast(0)));
}

TEST(IntervalTest, UnionIfContiguousOverlap) {
  // The paper's monadic example: (5,15) ∪ (10,20) = (5,20).
  Interval a(Bound::Open(5), Bound::Open(15));
  Interval b(Bound::Open(10), Bound::Open(20));
  auto u = a.UnionIfContiguous(b);
  ASSERT_TRUE(u.has_value());
  EXPECT_TRUE(*u == Interval(Bound::Open(5), Bound::Open(20)));
}

TEST(IntervalTest, UnionIfContiguousTouching) {
  // [1,5) ∪ [5,9] = [1,9]; the shared endpoint is covered by one side.
  Interval a(Bound::Closed(1), Bound::Open(5));
  Interval b(Bound::Closed(5), Bound::Closed(9));
  auto u = a.UnionIfContiguous(b);
  ASSERT_TRUE(u.has_value());
  EXPECT_TRUE(*u == Interval(Bound::Closed(1), Bound::Closed(9)));
}

TEST(IntervalTest, UnionIfContiguousRejectsGap) {
  Interval a(Bound::Closed(1), Bound::Open(5));
  Interval b(Bound::Open(5), Bound::Closed(9));
  EXPECT_FALSE(a.UnionIfContiguous(b).has_value());
  Interval c(Bound::Closed(7), Bound::Closed(9));
  EXPECT_FALSE(a.UnionIfContiguous(c).has_value());
}

TEST(IntervalTest, UnionWithPointGap) {
  // x<5 ∪ x>5 are separated exactly by {5}.
  double gap = 0;
  EXPECT_TRUE(
      Interval::LessThan(5).UnionWithPointGap(Interval::GreaterThan(5), &gap));
  EXPECT_DOUBLE_EQ(gap, 5.0);
  EXPECT_FALSE(
      Interval::LessThan(5).UnionWithPointGap(Interval::AtLeast(5), &gap));
  EXPECT_FALSE(
      Interval::LessThan(4).UnionWithPointGap(Interval::GreaterThan(5), &gap));
}

TEST(IntervalTest, Hull) {
  Interval h = Interval::Point(1).Hull(Interval::Point(9));
  EXPECT_TRUE(h == Interval(Bound::Closed(1), Bound::Closed(9)));
  EXPECT_TRUE(Interval::Full() == Interval::Full().Hull(Interval::Point(3)));
}

TEST(IntervalTest, DifferenceClipsOneSide) {
  Interval a(Bound::Closed(0), Bound::Closed(10));
  auto d = a.DifferenceIfSingle(Interval::AtLeast(6));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(*d == Interval(Bound::Closed(0), Bound::Open(6)));
  d = a.DifferenceIfSingle(Interval::AtMost(3));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(*d == Interval(Bound::Open(3), Bound::Closed(10)));
}

TEST(IntervalTest, DifferenceDisjointAndSwallowed) {
  Interval a(Bound::Closed(0), Bound::Closed(10));
  auto d = a.DifferenceIfSingle(Interval::AtLeast(11));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(*d == a);
  d = a.DifferenceIfSingle(Interval::Full());
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->IsEmpty());
}

TEST(IntervalTest, DifferenceRejectsSplit) {
  Interval a(Bound::Closed(0), Bound::Closed(10));
  Interval mid(Bound::Closed(4), Bound::Closed(6));
  EXPECT_FALSE(a.DifferenceIfSingle(mid).has_value());
}

TEST(IntervalTest, AtomCount) {
  EXPECT_EQ(Interval::Full().AtomCount(), 0);
  EXPECT_EQ(Interval::AtLeast(3).AtomCount(), 1);
  EXPECT_EQ(Interval::Point(3).AtomCount(), 1);
  EXPECT_EQ(Interval(Bound::Closed(1), Bound::Open(5)).AtomCount(), 2);
}

}  // namespace
}  // namespace eva::symbolic
