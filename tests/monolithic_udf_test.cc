// §3.3 — Modular vs. monolithic UDFs. A user may create a specialized
// "is this a red Nissan?" UDF; EVA reuses it when the identical monolithic
// UDF recurs, but modular CarType/ColorDet results recombine across any
// attribute constants — which a monolithic UDF cannot.

#include <gtest/gtest.h>

#include "engine/eva_engine.h"
#include "vbench/vbench.h"

namespace eva::engine {
namespace {

class MonolithicUdfTest : public ::testing::Test {
 protected:
  MonolithicUdfTest() {
    catalog::VideoInfo video;
    video.name = "mono";
    video.num_frames = 200;
    video.mean_objects_per_frame = 6;
    video.seed = 41;
    auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, video);
    EXPECT_TRUE(er.ok());
    engine_ = er.MoveValue();
    // A specialized monolithic classifier: is this object a red Nissan?
    auto r = engine_->Execute(
        "CREATE UDF RedNissanDet "
        "INPUT=(frame NDARRAY UINT8(3, ANYDIM, ANYDIM), bbox NDARRAY "
        "FLOAT32(4)) OUTPUT=(match NDARRAY STR(ANYDIM)) "
        "IMPL='udfs/red_nissan.py' "
        "PROPERTIES=('KIND'='CLASSIFIER', 'COST_MS'='8', "
        "'TARGET'='is:Red:Nissan', 'CLS_ACCURACY'='1.0');");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  std::unique_ptr<EvaEngine> engine_;
};

TEST_F(MonolithicUdfTest, MatchesModularConjunction) {
  // With perfect classifiers, the monolithic UDF must select exactly the
  // rows the modular conjunction selects.
  auto mono = engine_->Execute(
      "SELECT id, obj FROM mono CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 200 AND label = 'car' AND "
      "RedNissanDet(frame, bbox) = 'true';");
  ASSERT_TRUE(mono.ok()) << mono.status().ToString();
  // Fresh engine for the modular variant (independent reuse state), with
  // perfect modular classifiers for an exact comparison.
  catalog::VideoInfo video;
  video.name = "mono";
  video.num_frames = 200;
  video.mean_objects_per_frame = 6;
  video.seed = 41;
  auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, video);
  ASSERT_TRUE(er.ok());
  auto modular_engine = er.MoveValue();
  ASSERT_TRUE(modular_engine
                  ->Execute("CREATE OR REPLACE UDF CarType "
                            "IMPL='udfs/car_type.py' "
                            "PROPERTIES=('KIND'='CLASSIFIER', "
                            "'COST_MS'='6', 'TARGET'='car_type', "
                            "'CLS_ACCURACY'='1.0');")
                  .ok());
  ASSERT_TRUE(modular_engine
                  ->Execute("CREATE OR REPLACE UDF ColorDet "
                            "IMPL='udfs/color_det.py' "
                            "PROPERTIES=('KIND'='CLASSIFIER', "
                            "'COST_MS'='5', 'TARGET'='color', "
                            "'CLS_ACCURACY'='1.0');")
                  .ok());
  auto modular = modular_engine->Execute(
      "SELECT id, obj FROM mono CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 200 AND label = 'car' AND "
      "CarType(frame, bbox) = 'Nissan' AND "
      "ColorDet(frame, bbox) = 'Red';");
  ASSERT_TRUE(modular.ok()) << modular.status().ToString();
  EXPECT_EQ(mono.value().batch.num_rows(),
            modular.value().batch.num_rows());
  EXPECT_GT(mono.value().batch.num_rows(), 0u);
}

TEST_F(MonolithicUdfTest, MonolithicReusedOnExactRepeat) {
  const char* sql =
      "SELECT id, obj FROM mono CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 150 AND label = 'car' AND "
      "RedNissanDet(frame, bbox) = 'true';";
  ASSERT_TRUE(engine_->Execute(sql).ok());
  auto repeat = engine_->Execute(sql);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat.value().metrics.reused.at("RedNissanDet"),
            repeat.value().metrics.invocations.at("RedNissanDet"));
}

TEST_F(MonolithicUdfTest, MonolithicCannotServeDifferentCombination) {
  // After a red-Nissan session, searching for gray Toyotas gets zero help
  // from the monolithic view — but full help from modular views had the
  // analyst used CarType/ColorDet (§3.3's flexibility argument).
  ASSERT_TRUE(engine_
                  ->Execute("SELECT id, obj FROM mono CROSS APPLY "
                            "FasterRCNNResNet50(frame) WHERE id < 150 "
                            "AND label = 'car' AND "
                            "RedNissanDet(frame, bbox) = 'true';")
                  .ok());
  auto other = engine_->Execute(
      "SELECT id, obj FROM mono CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 150 AND label = 'car' AND "
      "CarType(frame, bbox) = 'Toyota' AND "
      "ColorDet(frame, bbox) = 'Gray';");
  ASSERT_TRUE(other.ok());
  // The detector is reused; the classifiers start cold (the monolithic
  // view is useless here).
  EXPECT_EQ(other.value().metrics.reused.at("FasterRCNNResNet50"), 150);
  EXPECT_EQ(other.value().metrics.reused.count("CarType"), 0u);
  EXPECT_EQ(other.value().metrics.reused.count("ColorDet"), 0u);
  // Whereas modular sessions recombine: a *gray Honda* search next reuses
  // the ColorDet results fully (they were evaluated for all cars) and the
  // CarType results for every gray object it inspects.
  auto recombined = engine_->Execute(
      "SELECT id, obj FROM mono CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 150 AND label = 'car' AND "
      "CarType(frame, bbox) = 'Honda' AND "
      "ColorDet(frame, bbox) = 'Gray';");
  ASSERT_TRUE(recombined.ok());
  ASSERT_EQ(recombined.value().metrics.reused.count("ColorDet"), 1u);
  EXPECT_EQ(recombined.value().metrics.reused.at("ColorDet"),
            recombined.value().metrics.invocations.at("ColorDet"));
  ASSERT_EQ(recombined.value().metrics.reused.count("CarType"), 1u);
  EXPECT_EQ(recombined.value().metrics.reused.at("CarType"),
            recombined.value().metrics.invocations.at("CarType"));
}

}  // namespace
}  // namespace eva::engine
