// Differential property tests for the seal-time segment codecs
// (docs/STORAGE.md): every encoding x column type x adversarial value
// distribution must reconstruct the exact stored Values and answer
// ProbeBatch / TryGet / zone-skip probes identically to an uncompressed
// view. Deterministic LCG-driven generation — failures replay from the
// printed seed.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "engine/eva_engine.h"
#include "storage/column_segment.h"
#include "storage/view_store.h"
#include "vbench/vbench.h"

namespace eva::storage {
namespace {

// Deterministic 64-bit LCG (MMIX constants); every test derives its data
// from an explicit seed so a failure is reproducible from the log alone.
struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  }
  int64_t NextInt(int64_t lo, int64_t hi) {  // [lo, hi)
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo));
  }
  double NextDouble() {  // full-entropy mantissa in [0, 1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }
};

// Bit-identical Value equality: Compare() orders numerically, but codecs
// must preserve the exact payload — including -0.0 and NaN bit patterns.
bool SameValue(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  if (a.is_null()) return true;
  if (a.type() == DataType::kDouble) {
    uint64_t ab = 0, bb = 0;
    double ad = a.AsDouble(), bd = b.AsDouble();
    std::memcpy(&ab, &ad, sizeof(ab));
    std::memcpy(&bb, &bd, sizeof(bb));
    return ab == bb;
  }
  return a == b;
}

// ---------------------------------------------------------------------------
// Layer 1: CompressColumn differential — plain lane vs codec lane.
// ---------------------------------------------------------------------------

ColumnVec PlainInt64(const std::vector<int64_t>& vals,
                     const std::vector<bool>& nulls) {
  ColumnVec c;
  c.enc_ = ColumnVec::Enc::kInt64;
  c.n_ = vals.size();
  c.i64_ = vals;
  for (size_t i = 0; i < nulls.size(); ++i) {
    if (!nulls[i]) continue;
    if (c.null_bits_.empty()) c.null_bits_.resize((vals.size() + 63) / 64, 0);
    c.null_bits_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  return c;
}

void ExpectColumnRoundTrip(const ColumnVec& plain) {
  ColumnVec packed = plain;
  CompressColumn(&packed);
  ASSERT_EQ(packed.size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ASSERT_TRUE(SameValue(packed.At(i), plain.At(i)))
        << "row " << i << " codec=" << static_cast<int>(packed.codec())
        << ": " << packed.At(i).ToString() << " vs "
        << plain.At(i).ToString();
  }
  // The pick must never lose: the encoded footprint is at most the plain
  // one (kPlain is always a candidate).
  EXPECT_LE(packed.EncodedBytes(), plain.EncodedBytes());
}

TEST(CodecColumnTest, Int64Distributions) {
  Lcg rng(0xC0DEC1);
  struct Case {
    const char* name;
    std::vector<int64_t> vals;
    ColumnVec::Codec expect;
  };
  std::vector<Case> cases;
  // Constant: width-0 frame-of-reference (8 bytes total) beats even RLE.
  cases.push_back({"constant", std::vector<int64_t>(500, 42),
                   ColumnVec::Codec::kFor});
  // Sorted small range: FOR packs to a few bits.
  {
    std::vector<int64_t> v;
    for (int i = 0; i < 500; ++i) v.push_back(1000000 + i);
    cases.push_back({"sorted", v, ColumnVec::Codec::kFor});
  }
  // Alternating two values: numeric dictionary (1-bit indexes).
  {
    std::vector<int64_t> v;
    for (int i = 0; i < 500; ++i) v.push_back(i % 2 == 0 ? INT64_MIN : 7);
    cases.push_back({"alternating", v, ColumnVec::Codec::kDictNum});
  }
  // Heavy tail: mostly tiny, rare huge outliers — full-width FOR loses,
  // the dictionary of few distinct values wins.
  {
    std::vector<int64_t> v;
    for (int i = 0; i < 500; ++i) {
      v.push_back(rng.Next() % 100 == 0 ? INT64_MAX - 1
                                        : rng.NextInt(0, 4));
    }
    cases.push_back({"heavy_tail", v, ColumnVec::Codec::kDictNum});
  }
  // Single row: FOR ties plain at 8 bytes; ties keep the plain lane.
  cases.push_back({"single", {123}, ColumnVec::Codec::kPlain});
  // High cardinality full-entropy: nothing helps, plain must survive.
  {
    std::vector<int64_t> v;
    for (int i = 0; i < 500; ++i) v.push_back(static_cast<int64_t>(rng.Next()));
    cases.push_back({"entropy", v, ColumnVec::Codec::kPlain});
  }
  for (const Case& c : cases) {
    ColumnVec plain = PlainInt64(c.vals, {});
    ColumnVec packed = plain;
    CompressColumn(&packed);
    EXPECT_EQ(packed.codec(), c.expect) << c.name;
    ExpectColumnRoundTrip(plain);
  }
}

TEST(CodecColumnTest, NullsNeverBreakEncodingChoiceOrValues) {
  Lcg rng(0xC0DEC2);
  for (double null_frac : {0.0, 0.05, 0.5, 1.0}) {
    std::vector<int64_t> vals;
    std::vector<bool> nulls;
    for (int i = 0; i < 400; ++i) {
      bool is_null = rng.NextDouble() < null_frac;
      nulls.push_back(is_null);
      vals.push_back(is_null ? 0 : 5000 + i);  // sorted when present
    }
    ExpectColumnRoundTrip(PlainInt64(vals, nulls));
  }
  // All-null column: a single run, nulls read back as nulls.
  ColumnVec all_null = PlainInt64(std::vector<int64_t>(64, 0),
                                  std::vector<bool>(64, true));
  ColumnVec packed = all_null;
  CompressColumn(&packed);
  for (size_t i = 0; i < 64; ++i) EXPECT_TRUE(packed.At(i).is_null());
}

TEST(CodecColumnTest, DoubleBitPatternsSurvive) {
  // -0.0, NaN payloads, denormals, infinities: the numeric dictionary and
  // RLE compare bit patterns, never doubles, so every payload round-trips.
  std::vector<double> specials = {0.0,
                                  -0.0,
                                  std::numeric_limits<double>::quiet_NaN(),
                                  std::numeric_limits<double>::infinity(),
                                  -std::numeric_limits<double>::infinity(),
                                  std::numeric_limits<double>::denorm_min(),
                                  1.5};
  ColumnVec plain;
  plain.enc_ = ColumnVec::Enc::kDouble;
  for (int rep = 0; rep < 40; ++rep) {
    for (double d : specials) plain.f64_.push_back(d);
  }
  plain.n_ = plain.f64_.size();
  ColumnVec packed = plain;
  CompressColumn(&packed);
  EXPECT_NE(packed.codec(), ColumnVec::Codec::kPlain);
  for (size_t i = 0; i < plain.n_; ++i) {
    ASSERT_TRUE(SameValue(packed.At(i), plain.At(i))) << "row " << i;
  }
}

TEST(CodecColumnTest, EntropyDoublesExpPack) {
  // Full-entropy mantissas defeat RLE and the value dictionary, but the
  // 12-bit sign/exponent prefix takes a handful of values, so the prefix
  // dictionary + packed-mantissa codec must win and reconstruct every bit.
  Lcg rng(0xC0DEC5);
  std::vector<double> dists[3];
  for (int i = 0; i < 600; ++i) {
    double u = rng.NextDouble();
    dists[0].push_back(0.5 + 0.5 * u);          // one exponent
    dists[1].push_back(u * u * 0.6);            // geometric exponent spread
    dists[2].push_back((u - 0.5) * 1e12 * u);   // signed, wide magnitudes
  }
  for (const std::vector<double>& vals : dists) {
    ColumnVec plain;
    plain.enc_ = ColumnVec::Enc::kDouble;
    plain.f64_ = vals;
    plain.n_ = vals.size();
    ColumnVec packed = plain;
    CompressColumn(&packed);
    EXPECT_EQ(packed.codec(), ColumnVec::Codec::kExpPack);
    EXPECT_LT(packed.EncodedBytes(), plain.EncodedBytes());
    for (size_t i = 0; i < plain.n_; ++i) {
      ASSERT_TRUE(SameValue(packed.At(i), plain.At(i))) << "row " << i;
    }
  }
  // NaN payloads and nulls mixed into an entropy lane still round-trip.
  ColumnVec noisy;
  noisy.enc_ = ColumnVec::Enc::kDouble;
  for (int i = 0; i < 400; ++i) {
    noisy.f64_.push_back(i % 97 == 0
                             ? std::numeric_limits<double>::quiet_NaN()
                             : rng.NextDouble());
  }
  noisy.n_ = noisy.f64_.size();
  noisy.null_bits_.resize((noisy.n_ + 63) / 64, 0);
  for (size_t i = 0; i < noisy.n_; i += 13) {
    noisy.null_bits_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  ColumnVec noisy_packed = noisy;
  CompressColumn(&noisy_packed);
  for (size_t i = 0; i < noisy.n_; ++i) {
    ASSERT_TRUE(SameValue(noisy_packed.At(i), noisy.At(i))) << "row " << i;
  }
}

TEST(CodecColumnTest, BoolColumnsBitPack) {
  for (int pattern = 0; pattern < 3; ++pattern) {
    ColumnVec plain;
    plain.enc_ = ColumnVec::Enc::kBool;
    for (int i = 0; i < 300; ++i) {
      bool v = pattern == 0   ? true              // constant → RLE
               : pattern == 1 ? (i % 2 == 0)      // alternating → bitpack
                              : ((i * 2654435761U) % 3 == 0);
      plain.b8_.push_back(v ? 1 : 0);
    }
    plain.n_ = plain.b8_.size();
    ColumnVec packed = plain;
    CompressColumn(&packed);
    EXPECT_NE(packed.codec(), ColumnVec::Codec::kPlain) << pattern;
    for (size_t i = 0; i < plain.n_; ++i) {
      ASSERT_TRUE(SameValue(packed.At(i), plain.At(i)));
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 2: whole-view differential — compressed vs uncompressed stores
// built from identical Puts must agree on every probe surface.
// ---------------------------------------------------------------------------

struct ViewPair {
  MaterializedView plain;
  MaterializedView packed;
  ViewPair(const Schema& schema, int64_t segment_frames)
      : plain("t@v", schema), packed("t@v", schema) {
    plain.set_segment_frames(segment_frames);
    packed.set_segment_frames(segment_frames);
    packed.set_build_options({/*compress=*/true, /*bloom_bits_per_key=*/10});
  }
  void Put(const ViewKey& key, const std::vector<Row>& rows) {
    plain.Put(key, rows);
    packed.Put(key, rows);
  }
};

void ExpectProbesAgree(const ViewPair& pair,
                       const std::vector<ViewKey>& probes,
                       const ZoneCheckFn& zone = nullptr) {
  ProbeResult rp, rc;
  pair.plain.ProbeBatch(probes, zone, &rp);
  pair.packed.ProbeBatch(probes, zone, &rc);
  ASSERT_EQ(rp.outcomes.size(), rc.outcomes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    const ProbeOutcome& op = rp.outcomes[i];
    const ProbeOutcome& oc = rc.outcomes[i];
    ASSERT_EQ(op.status, oc.status)
        << "key (" << probes[i].frame << ", " << probes[i].obj << ")";
    ASSERT_EQ(op.rows_count, oc.rows_count);
    if (op.status != ProbeStatus::kHit) continue;
    for (int32_t r = 0; r < op.rows_count; ++r) {
      Row rowp = rp.segment(op).RowAt(op.rows_begin + r);
      Row rowc = rc.segment(oc).RowAt(oc.rows_begin + r);
      ASSERT_EQ(rowp.size(), rowc.size());
      for (size_t cidx = 0; cidx < rowp.size(); ++cidx) {
        ASSERT_TRUE(SameValue(rowp[cidx], rowc[cidx]))
            << "key (" << probes[i].frame << ", " << probes[i].obj
            << ") row " << r << " col " << cidx << ": "
            << rowc[cidx].ToString() << " vs " << rowp[cidx].ToString();
      }
    }
  }
  // TryGet goes through the row store on both sides; spot-check agreement
  // with the columnar result anyway (presence only — rows are shared).
  for (const ViewKey& key : probes) {
    EXPECT_EQ(pair.plain.TryGet(key) != nullptr,
              pair.packed.TryGet(key) != nullptr);
  }
}

std::vector<ViewKey> ProbeMix(int64_t frame_end, Lcg* rng) {
  std::vector<ViewKey> probes;
  for (int64_t f = 0; f < frame_end * 2; ++f) {
    probes.push_back({f, -1});  // half land past the stored range
  }
  for (int i = 0; i < 200; ++i) {  // scattered object-level misses
    probes.push_back({rng->NextInt(0, frame_end), rng->NextInt(0, 8)});
  }
  return probes;
}

TEST(CodecViewDifferentialTest, AdversarialDistributionsAllTypes) {
  Schema schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"b", DataType::kBool},
                 {"s", DataType::kString}});
  // Per-distribution generators for a row at frame f.
  enum Dist {
    kConstant = 0,
    kSorted,
    kAlternating,
    kHeavyTail,
    kAllNull,
    kEntropy,
    kNumDists
  };
  for (int dist = 0; dist < kNumDists; ++dist) {
    Lcg rng(0xD15D00 + static_cast<uint64_t>(dist));
    ViewPair pair(schema, /*segment_frames=*/64);
    const int64_t frames = 300;
    for (int64_t f = 0; f < frames; ++f) {
      Row row;
      switch (dist) {
        case kConstant:
          row = {Value(int64_t{7}), Value(2.5), Value(true), Value("car")};
          break;
        case kSorted:
          row = {Value(f), Value(static_cast<double>(f) * 0.5),
                 Value(f % 2 == 0), Value("label_" + std::to_string(f / 50))};
          break;
        case kAlternating:
          row = {Value(f % 2 == 0 ? int64_t{-1} : int64_t{1}),
                 Value(f % 2 == 0 ? -0.0 : 0.0), Value(f % 2 == 0),
                 Value(f % 2 == 0 ? "a" : "b")};
          break;
        case kHeavyTail:
          row = {Value(rng.Next() % 50 == 0 ? INT64_MAX / 2
                                            : rng.NextInt(0, 3)),
                 Value(rng.Next() % 50 == 0 ? 1e300 : 0.25),
                 Value(rng.Next() % 50 == 0), Value("x")};
          break;
        case kAllNull:
          row = {Value::Null(), Value::Null(), Value::Null(), Value::Null()};
          break;
        case kEntropy:
        default:
          row = {Value(static_cast<int64_t>(rng.Next())),
                 Value(rng.NextDouble()), Value((rng.Next() & 1) != 0),
                 Value("s" + std::to_string(rng.Next()))};
          break;
      }
      // Some frames carry several rows, some zero (presence-only keys).
      std::vector<Row> rows;
      int nrows = static_cast<int>(rng.Next() % 3);
      for (int r = 0; r < nrows; ++r) rows.push_back(row);
      pair.Put({f, -1}, rows);
    }
    Lcg probe_rng(0x9E3779B9);
    ExpectProbesAgree(pair, ProbeMix(frames, &probe_rng));
  }
}

TEST(CodecViewDifferentialTest, SingleRowAndSparseKeys) {
  Schema schema({{"v", DataType::kInt64}});
  ViewPair pair(schema, 64);
  pair.Put({17, -1}, {{Value(int64_t{99})}});   // a single stored key
  pair.Put({4099, 3}, {{Value(int64_t{-5})}});  // far-away object key
  Lcg rng(0x5EED);
  ExpectProbesAgree(pair, ProbeMix(4200, &rng));
}

TEST(CodecViewDifferentialTest, DictOverflowFallsBackToValueStorage) {
  // > 64Ki distinct strings in one segment: the dictionary encoding must
  // step aside (code space is int32 but the cost model caps the dict) and
  // the raw Value fallback still answers probes identically.
  Schema schema({{"s", DataType::kString}});
  ViewPair pair(schema, /*segment_frames=*/1 << 20);  // one segment
  const int64_t frames = (1 << 16) + 500;
  for (int64_t f = 0; f < frames; ++f) {
    pair.Put({f, -1}, {{Value("unique_" + std::to_string(f))}});
  }
  std::vector<ViewKey> probes;
  for (int64_t f = 0; f < frames; f += 97) probes.push_back({f, -1});
  probes.push_back({frames + 1, -1});
  ExpectProbesAgree(pair, probes);
  // The packed side fell back to kValue for the overflowing column.
  auto segs = pair.packed.SealedSegments();
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].second->cols[0].enc(), ColumnVec::Enc::kValue);
}

TEST(CodecViewDifferentialTest, ZoneSkipDecisionsMatch) {
  // Zone maps are computed before compression, so a residual-predicate
  // zone check must skip exactly the same segments on both sides.
  Schema schema({{"score", DataType::kDouble}});
  ViewPair pair(schema, 32);
  for (int64_t f = 0; f < 256; ++f) {
    // Segment k holds scores centered on k: zones differ per segment.
    double score = static_cast<double>(f / 32) + 0.25;
    pair.Put({f, -1}, {{Value(score)}});
  }
  ZoneCheckFn require_high = [](const ColumnarSegment& seg) {
    return seg.zones[0].valid && seg.zones[0].num_max >= 4.0;
  };
  std::vector<ViewKey> probes;
  for (int64_t f = 0; f < 256; ++f) probes.push_back({f, -1});
  ProbeResult rp, rc;
  pair.plain.ProbeBatch(probes, require_high, &rp);
  pair.packed.ProbeBatch(probes, require_high, &rc);
  ASSERT_EQ(rp.outcomes.size(), rc.outcomes.size());
  int skipped = 0;
  for (size_t i = 0; i < rp.outcomes.size(); ++i) {
    ASSERT_EQ(rp.outcomes[i].status, rc.outcomes[i].status) << i;
    if (rp.outcomes[i].status == ProbeStatus::kHitSkipped) ++skipped;
  }
  EXPECT_GT(skipped, 0);                           // the check does bite
  EXPECT_EQ(rp.segments_skipped, rc.segments_skipped);
}

TEST(CodecViewDifferentialTest, CompressedFootprintNeverLarger) {
  Schema schema({{"obj", DataType::kInt64},
                 {"label", DataType::kString},
                 {"score", DataType::kDouble}});
  ViewPair pair(schema, 64);
  Lcg rng(0xFEED);
  for (int64_t f = 0; f < 512; ++f) {
    pair.Put({f, -1}, {{Value(rng.NextInt(0, 10)),
                        Value(rng.Next() % 4 == 0 ? "car" : "person"),
                        Value(rng.NextDouble())}});
  }
  pair.plain.SealAllSegments();
  pair.packed.SealAllSegments();
  for (const auto& [seg_id, seg] : pair.packed.SealedSegments()) {
    EXPECT_LE(seg->encoded_bytes, seg->raw_bytes) << "segment " << seg_id;
    EXPECT_GT(seg->encoded_bytes, 0);
  }
  ViewCompressionStats cs = pair.packed.CompressionStats();
  EXPECT_GT(cs.sealed_segments, 0);
  EXPECT_LT(cs.encoded_bytes, cs.raw_bytes);
}

// ---------------------------------------------------------------------------
// Layer 3: engine differential — a real vbench workload with compression
// on vs off, at 1 and 4 worker threads, must return byte-identical result
// sets and identical reuse accounting.
// ---------------------------------------------------------------------------

TEST(CodecEngineDifferentialTest, WorkloadBitIdenticalAcrossConfigs) {
  catalog::VideoInfo video;
  video.name = "pv";
  video.num_frames = 150;
  video.mean_objects_per_frame = 5;
  video.seed = 11;
  const std::vector<std::string> workload = {
      "SELECT id, obj, label FROM pv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 100 AND label = 'car';",
      "SELECT id, obj, label FROM pv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id >= 50 AND id < 150 AND label = 'car';",
      "SELECT id, obj, label FROM pv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 150 AND score > 0.5 AND label = 'car';",
  };
  std::vector<std::string> reference;
  for (int threads : {1, 4}) {
    for (bool compress : {false, true}) {
      engine::EngineOptions options;
      options.optimizer.mode = optimizer::ReuseMode::kEva;
      options.num_threads = threads;
      options.segment_frames = 32;
      options.segment_compression = compress;
      options.bloom_bits_per_key = compress ? 10 : 0;
      auto er = vbench::MakeEngine(options, video);
      ASSERT_TRUE(er.ok());
      auto engine = er.MoveValue();
      for (size_t i = 0; i < workload.size(); ++i) {
        auto r = engine->Execute(workload[i]);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        std::string text = r.value().batch.ToString(1 << 20);
        if (threads == 1 && !compress) {
          reference.push_back(text);
        } else {
          EXPECT_EQ(text, reference[i])
              << "threads=" << threads << " compress=" << compress
              << " query " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace eva::storage
