#include <gtest/gtest.h>

#include <set>

#include "vision/models.h"
#include "vision/synthetic_video.h"

namespace eva::vision {
namespace {

catalog::VideoInfo Info(int64_t frames, double mean_objects,
                        uint64_t seed) {
  catalog::VideoInfo v;
  v.name = "test";
  v.num_frames = frames;
  v.mean_objects_per_frame = mean_objects;
  v.seed = seed;
  return v;
}

catalog::UdfDef DetectorDef(const std::string& name, double recall_large,
                            double recall_small) {
  catalog::UdfDef d;
  d.name = name;
  d.kind = catalog::UdfKind::kDetector;
  d.cost_ms = 99;
  d.recall = recall_large;
  d.recall_small = recall_small;
  return d;
}

TEST(SyntheticVideoTest, DeterministicAcrossInstances) {
  SyntheticVideo a(Info(50, 8, 42));
  SyntheticVideo b(Info(50, 8, 42));
  for (int64_t f = 0; f < 50; ++f) {
    const auto& oa = a.FrameObjects(f);
    const auto& ob = b.FrameObjects(f);
    ASSERT_EQ(oa.size(), ob.size());
    for (size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa[i].label, ob[i].label);
      EXPECT_EQ(oa[i].car_type, ob[i].car_type);
      EXPECT_EQ(oa[i].color, ob[i].color);
      EXPECT_DOUBLE_EQ(oa[i].area, ob[i].area);
    }
  }
}

TEST(SyntheticVideoTest, SeedChangesContent) {
  SyntheticVideo a(Info(50, 8, 1));
  SyntheticVideo b(Info(50, 8, 2));
  int differing = 0;
  for (int64_t f = 0; f < 50; ++f) {
    if (a.FrameObjects(f).size() != b.FrameObjects(f).size()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(SyntheticVideoTest, DensityMatchesConfiguration) {
  SyntheticVideo dense(Info(2000, 8.3 / 0.8, 7));
  SyntheticVideo sparse(Info(2000, 0.1 / 0.8, 7));
  EXPECT_NEAR(dense.MeanVehiclesPerFrame(), 8.3, 0.5);
  EXPECT_NEAR(sparse.MeanVehiclesPerFrame(), 0.1, 0.05);
}

TEST(SyntheticVideoTest, AttributesComeFromVocabularies) {
  SyntheticVideo video(Info(200, 8, 11));
  std::set<std::string> labels(ObjectLabels().begin(),
                               ObjectLabels().end());
  std::set<std::string> types(VehicleTypes().begin(), VehicleTypes().end());
  std::set<std::string> colors(VehicleColors().begin(),
                               VehicleColors().end());
  for (int64_t f = 0; f < 200; ++f) {
    for (const GtObject& o : video.FrameObjects(f)) {
      EXPECT_TRUE(labels.count(o.label)) << o.label;
      EXPECT_TRUE(types.count(o.car_type)) << o.car_type;
      EXPECT_TRUE(colors.count(o.color)) << o.color;
      EXPECT_GE(o.area, 0.0);
      EXPECT_LE(o.area, 0.6);
      EXPECT_GE(o.score, 0.5);
      EXPECT_LE(o.score, 1.0);
    }
  }
}

TEST(SyntheticVideoTest, OutOfRangeFrameIsEmpty) {
  SyntheticVideo video(Info(10, 8, 11));
  EXPECT_TRUE(video.FrameObjects(-1).empty());
  EXPECT_TRUE(video.FrameObjects(10).empty());
}

TEST(DetectorModelTest, DeterministicDetections) {
  SyntheticVideo video(Info(100, 10, 3));
  DetectorModel model(DetectorDef("FRCNN", 0.95, 0.7));
  for (int64_t f = 0; f < 20; ++f) {
    auto a = model.Detect(video, f);
    auto b = model.Detect(video, f);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].obj_id, b[i].obj_id);
      EXPECT_EQ(a[i].label, b[i].label);
    }
  }
}

TEST(DetectorModelTest, HigherRecallFindsSupersetOnAverage) {
  SyntheticVideo video(Info(500, 10, 5));
  DetectorModel weak(DetectorDef("Weak", 0.9, 0.3));
  DetectorModel strong(DetectorDef("Strong", 0.98, 0.9));
  int64_t weak_total = 0, strong_total = 0, gt_total = 0;
  for (int64_t f = 0; f < 500; ++f) {
    weak_total += static_cast<int64_t>(weak.Detect(video, f).size());
    strong_total += static_cast<int64_t>(strong.Detect(video, f).size());
    gt_total += static_cast<int64_t>(video.FrameObjects(f).size());
  }
  EXPECT_LT(weak_total, strong_total);
  EXPECT_LE(strong_total, gt_total);
  // Two-tier recall: the weak model finds roughly 0.42*0.9 + 0.58*0.3 of
  // all objects.
  double weak_recall =
      static_cast<double>(weak_total) / static_cast<double>(gt_total);
  EXPECT_NEAR(weak_recall, 0.42 * 0.9 + 0.58 * 0.3, 0.08);
}

TEST(DetectorModelTest, LargeObjectsAlmostAlwaysDetected) {
  SyntheticVideo video(Info(500, 10, 9));
  DetectorModel weak(DetectorDef("Weak", 0.9, 0.3));
  int64_t large_gt = 0, large_found = 0;
  for (int64_t f = 0; f < 500; ++f) {
    std::set<int> found;
    for (const auto& d : weak.Detect(video, f)) found.insert(d.obj_id);
    for (const auto& o : video.FrameObjects(f)) {
      if (o.area >= 0.2) {
        ++large_gt;
        if (found.count(o.obj_id)) ++large_found;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(large_found) / large_gt, 0.9, 0.05);
}

TEST(ClassifierModelTest, AccuracyAndDeterminism) {
  SyntheticVideo video(Info(300, 10, 13));
  catalog::UdfDef def;
  def.name = "CarType";
  def.kind = catalog::UdfKind::kClassifier;
  def.classifier_accuracy = 0.92;
  def.target_attribute = "car_type";
  ClassifierModel model(def);
  int64_t correct = 0, total = 0;
  for (int64_t f = 0; f < 300; ++f) {
    for (const GtObject& o : video.FrameObjects(f)) {
      std::string first = model.Classify(video, f, o.obj_id);
      EXPECT_EQ(first, model.Classify(video, f, o.obj_id));  // stable
      ++total;
      if (first == o.car_type) ++correct;
    }
  }
  EXPECT_NEAR(static_cast<double>(correct) / total, 0.92, 0.03);
}

TEST(ClassifierModelTest, ColorTargetUsesColorVocabulary) {
  SyntheticVideo video(Info(50, 10, 17));
  catalog::UdfDef def;
  def.name = "ColorDet";
  def.kind = catalog::UdfKind::kClassifier;
  def.classifier_accuracy = 1.0;
  def.target_attribute = "color";
  ClassifierModel model(def);
  for (const GtObject& o : video.FrameObjects(0)) {
    EXPECT_EQ(model.Classify(video, 0, o.obj_id), o.color);
  }
  EXPECT_EQ(model.Classify(video, 0, 9999), "unknown");
}

TEST(FilterModelTest, RecallOnVehicleFrames) {
  SyntheticVideo video(Info(1000, 8, 21));
  catalog::UdfDef def;
  def.name = "VehicleFilter";
  def.kind = catalog::UdfKind::kFilter;
  FilterModel model(def);
  int64_t vehicle_frames = 0, passed = 0;
  for (int64_t f = 0; f < 1000; ++f) {
    bool has = false;
    for (const GtObject& o : video.FrameObjects(f)) {
      if (o.label != "person") has = true;
    }
    if (has) {
      ++vehicle_frames;
      if (model.Pass(video, f)) ++passed;
    }
  }
  // Dense video: almost every frame has vehicles; ~98% must pass.
  EXPECT_GT(vehicle_frames, 900);
  EXPECT_NEAR(static_cast<double>(passed) / vehicle_frames, 0.98, 0.02);
}

TEST(FilterModelTest, EmptyFramesMostlyFiltered) {
  SyntheticVideo video(Info(2000, 0.05, 23));
  catalog::UdfDef def;
  def.name = "VehicleFilter";
  def.kind = catalog::UdfKind::kFilter;
  FilterModel model(def);
  int64_t empty_frames = 0, passed = 0;
  for (int64_t f = 0; f < 2000; ++f) {
    if (video.FrameObjects(f).empty()) {
      ++empty_frames;
      if (model.Pass(video, f)) ++passed;
    }
  }
  ASSERT_GT(empty_frames, 1000);
  // Conservative filter: ~50% false positives on empty frames.
  EXPECT_NEAR(static_cast<double>(passed) / empty_frames, 0.5, 0.05);
}

}  // namespace
}  // namespace eva::vision
