// Property-based tests: every symbolic operation (And/Or/Not/Inter/Diff/
// Union/Reduce) must agree pointwise with brute-force boolean evaluation
// over a grid of sample tuples, for randomly generated predicates.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "symbolic/predicate.h"

namespace eva::symbolic {
namespace {

// The dimension universe mirrors vbench: an integer frame id, a real area,
// and two categorical columns.
const char* kIntDim = "id";
const char* kRealDim = "area";
const char* kCatDim1 = "label";
const char* kCatDim2 = "type";

const std::vector<std::string> kLabels = {"car", "bus", "truck"};
const std::vector<std::string> kTypes = {"Nissan", "Toyota", "Ford"};

struct SamplePoint {
  int64_t id;
  double area;
  std::string label;
  std::string type;

  ValueLookup Lookup() const {
    return [this](const std::string& dim) -> Value {
      if (dim == kIntDim) return Value(id);
      if (dim == kRealDim) return Value(area);
      if (dim == kCatDim1) return Value(label);
      if (dim == kCatDim2) return Value(type);
      return Value::Null();
    };
  }
};

std::vector<SamplePoint> MakeGrid() {
  std::vector<SamplePoint> pts;
  for (int64_t id = -1; id <= 21; ++id) {
    for (double area : {0.0, 0.1, 0.25, 0.5, 0.9}) {
      for (const auto& label : kLabels) {
        for (const auto& type : kTypes) {
          pts.push_back({id, area, label, type});
        }
      }
    }
  }
  return pts;
}

// Generates a random atomic constraint on a random dimension.
std::pair<std::string, DimConstraint> RandomAtom(Rng& rng) {
  switch (rng.NextBelow(4)) {
    case 0: {
      double v = static_cast<double>(rng.NextBelow(20));
      switch (rng.NextBelow(4)) {
        case 0:
          return {kIntDim,
                  DimConstraint::Numeric(DimKind::kInteger,
                                         Interval::AtLeast(v))};
        case 1:
          return {kIntDim, DimConstraint::Numeric(DimKind::kInteger,
                                                  Interval::LessThan(v))};
        case 2:
          return {kIntDim,
                  DimConstraint::Numeric(DimKind::kInteger,
                                         Interval::Point(v))};
        default:
          return {kIntDim,
                  DimConstraint::NumericNotEqual(DimKind::kInteger, v)};
      }
    }
    case 1: {
      double v = 0.05 * static_cast<double>(rng.NextBelow(20));
      if (rng.NextBool(0.5)) {
        return {kRealDim, DimConstraint::Numeric(DimKind::kReal,
                                                 Interval::GreaterThan(v))};
      }
      return {kRealDim,
              DimConstraint::Numeric(DimKind::kReal, Interval::AtMost(v))};
    }
    case 2: {
      const std::string& v = kLabels[rng.NextBelow(kLabels.size())];
      return {kCatDim1, DimConstraint::Categorical({v}, rng.NextBool(0.3))};
    }
    default: {
      const std::string& v = kTypes[rng.NextBelow(kTypes.size())];
      return {kCatDim2, DimConstraint::Categorical({v}, rng.NextBool(0.3))};
    }
  }
}

Predicate RandomPredicate(Rng& rng, int max_conjuncts, int max_atoms) {
  Predicate p;
  int nc = 1 + static_cast<int>(rng.NextBelow(max_conjuncts));
  for (int i = 0; i < nc; ++i) {
    Conjunct c;
    int na = 1 + static_cast<int>(rng.NextBelow(max_atoms));
    bool sat = true;
    for (int a = 0; a < na; ++a) {
      auto [dim, constraint] = RandomAtom(rng);
      if (!c.Constrain(dim, constraint)) {
        sat = false;
        break;
      }
    }
    if (sat) p.AddConjunct(std::move(c));
  }
  return p;
}

class PredicatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicatePropertyTest, ReducePreservesSemantics) {
  Rng rng(GetParam());
  auto grid = MakeGrid();
  for (int iter = 0; iter < 20; ++iter) {
    Predicate p = RandomPredicate(rng, 5, 4);
    Predicate reduced = p;
    reduced.Reduce();
    for (const auto& pt : grid) {
      ASSERT_EQ(p.Evaluate(pt.Lookup()), reduced.Evaluate(pt.Lookup()))
          << "seed=" << GetParam() << " iter=" << iter << "\n  before: "
          << p.ToString() << "\n  after:  " << reduced.ToString()
          << "\n  at id=" << pt.id << " area=" << pt.area
          << " label=" << pt.label << " type=" << pt.type;
    }
    // Reduction never increases the number of conjuncts (overlap carving
    // keeps the count, merges and subset-drops shrink it).
    ASSERT_LE(reduced.conjuncts().size(), p.conjuncts().size());
  }
}

TEST_P(PredicatePropertyTest, BooleanOpsMatchPointwise) {
  Rng rng(GetParam() * 31 + 7);
  auto grid = MakeGrid();
  for (int iter = 0; iter < 12; ++iter) {
    Predicate a = RandomPredicate(rng, 3, 3);
    Predicate b = RandomPredicate(rng, 3, 3);
    auto land = Predicate::And(a, b);
    ASSERT_TRUE(land.ok());
    Predicate lor = Predicate::Or(a, b);
    auto lnot = Predicate::Not(a);
    ASSERT_TRUE(lnot.ok());
    for (const auto& pt : grid) {
      bool ea = a.Evaluate(pt.Lookup());
      bool eb = b.Evaluate(pt.Lookup());
      ASSERT_EQ(land.value().Evaluate(pt.Lookup()), ea && eb)
          << "AND mismatch: a=" << a.ToString() << " b=" << b.ToString();
      ASSERT_EQ(lor.Evaluate(pt.Lookup()), ea || eb)
          << "OR mismatch: a=" << a.ToString() << " b=" << b.ToString();
      ASSERT_EQ(lnot.value().Evaluate(pt.Lookup()), !ea)
          << "NOT mismatch: a=" << a.ToString()
          << " not=" << lnot.value().ToString();
    }
  }
}

TEST_P(PredicatePropertyTest, InterDiffUnionPartitionQuery) {
  // For any coverage p_u and query q: INTER ∨ DIFF ≡ q, INTER ∧ DIFF ≡ ⊥,
  // and UNION ≡ p_u ∨ q. This is exactly the invariant the reuse rewrite
  // (§4.4) depends on for correctness.
  Rng rng(GetParam() * 977 + 3);
  auto grid = MakeGrid();
  for (int iter = 0; iter < 12; ++iter) {
    Predicate pu = RandomPredicate(rng, 3, 3);
    Predicate q = RandomPredicate(rng, 2, 3);
    auto inter = Predicate::Inter(pu, q);
    auto diff = Predicate::Diff(pu, q);
    Predicate uni = Predicate::Union(pu, q);
    ASSERT_TRUE(inter.ok());
    ASSERT_TRUE(diff.ok());
    for (const auto& pt : grid) {
      bool epu = pu.Evaluate(pt.Lookup());
      bool eq = q.Evaluate(pt.Lookup());
      bool ei = inter.value().Evaluate(pt.Lookup());
      bool ed = diff.value().Evaluate(pt.Lookup());
      ASSERT_EQ(ei, epu && eq);
      ASSERT_EQ(ed, !epu && eq);
      ASSERT_EQ(ei || ed, eq);        // partition covers the query
      ASSERT_FALSE(ei && ed);         // and is disjoint
      ASSERT_EQ(uni.Evaluate(pt.Lookup()), epu || eq);
    }
  }
}

TEST_P(PredicatePropertyTest, SubsetAgreesWithEvaluation) {
  Rng rng(GetParam() * 131 + 17);
  auto grid = MakeGrid();
  for (int iter = 0; iter < 30; ++iter) {
    Predicate a = RandomPredicate(rng, 2, 3);
    Predicate b = RandomPredicate(rng, 2, 3);
    for (const auto& ca : a.conjuncts()) {
      for (const auto& cb : b.conjuncts()) {
        if (ca.IsSubsetOf(cb)) {
          // Subset claim must hold pointwise (no false positives).
          for (const auto& pt : grid) {
            if (ca.Evaluate(pt.Lookup())) {
              ASSERT_TRUE(cb.Evaluate(pt.Lookup()))
                  << ca.ToString() << " claimed subset of " << cb.ToString();
            }
          }
        }
      }
    }
  }
}

TEST_P(PredicatePropertyTest, RepeatedCoverageGrowthConverges) {
  // Simulates the UDFMANAGER loop: p_u starts FALSE and absorbs query
  // predicates one by one; coverage must be monotone and stay compact for
  // overlapping range queries (this is what Fig. 8b measures).
  Rng rng(GetParam() * 7919 + 1);
  Predicate pu = Predicate::False();
  auto grid = MakeGrid();
  std::vector<Predicate> seen;
  for (int step = 0; step < 8; ++step) {
    Predicate q = RandomPredicate(rng, 2, 2);
    seen.push_back(q);
    pu = Predicate::Union(pu, q);
    for (const auto& pt : grid) {
      bool any = false;
      for (const auto& s : seen) any = any || s.Evaluate(pt.Lookup());
      ASSERT_EQ(pu.Evaluate(pt.Lookup()), any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicatePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace eva::symbolic
