#include <gtest/gtest.h>

#include "symbolic/dim_constraint.h"

namespace eva::symbolic {
namespace {

DimConstraint RealRange(double lo, double hi) {
  return DimConstraint::Numeric(
      DimKind::kReal, Interval(Bound::Closed(lo), Bound::Closed(hi)));
}

DimConstraint IntRange(double lo, double hi) {
  return DimConstraint::Numeric(
      DimKind::kInteger, Interval(Bound::Closed(lo), Bound::Closed(hi)));
}

TEST(DimConstraintTest, FullAndEmpty) {
  EXPECT_TRUE(DimConstraint::Full(DimKind::kReal).IsFull());
  EXPECT_TRUE(DimConstraint::Empty(DimKind::kReal).IsEmpty());
  EXPECT_TRUE(DimConstraint::Full(DimKind::kCategorical).IsFull());
  EXPECT_TRUE(DimConstraint::Empty(DimKind::kCategorical).IsEmpty());
}

TEST(DimConstraintTest, IntegerNormalizationOpenBounds) {
  // id > 4 AND id < 10  ==>  [5, 9] for integers.
  auto c = DimConstraint::Numeric(
      DimKind::kInteger, Interval(Bound::Open(4), Bound::Open(10)));
  EXPECT_TRUE(c.interval() == Interval(Bound::Closed(5), Bound::Closed(9)));
  EXPECT_TRUE(c.Contains(Value(int64_t{5})));
  EXPECT_FALSE(c.Contains(Value(int64_t{4})));
}

TEST(DimConstraintTest, IntegerNormalizationFractionalBounds) {
  // id >= 4.5  ==>  id >= 5.
  auto c = DimConstraint::Numeric(
      DimKind::kInteger, Interval(Bound::Closed(4.5), Bound::Infinite()));
  EXPECT_TRUE(c.Contains(Value(int64_t{5})));
  EXPECT_FALSE(c.Contains(Value(int64_t{4})));
}

TEST(DimConstraintTest, IntegerAdjacentUnionMerges) {
  // id <= 4 OR id >= 5 covers all integers.
  auto a = DimConstraint::Numeric(DimKind::kInteger, Interval::AtMost(4));
  auto b = DimConstraint::Numeric(DimKind::kInteger, Interval::AtLeast(5));
  auto u = a.UnionIfSingle(b);
  ASSERT_TRUE(u.has_value());
  EXPECT_TRUE(u->IsFull());
}

TEST(DimConstraintTest, IntegerGapOfOneBecomesExcludedPoint) {
  // [1,3] ∪ [5,7] = [1,7] \ {4} for integers.
  auto u = IntRange(1, 3).UnionIfSingle(IntRange(5, 7));
  ASSERT_TRUE(u.has_value());
  EXPECT_FALSE(u->Contains(Value(int64_t{4})));
  EXPECT_TRUE(u->Contains(Value(int64_t{3})));
  EXPECT_TRUE(u->Contains(Value(int64_t{5})));
  EXPECT_TRUE(u->Contains(Value(int64_t{7})));
}

TEST(DimConstraintTest, RealPointGapUnion) {
  // x < 5 OR x > 5  ==>  x != 5.
  auto a = DimConstraint::Numeric(DimKind::kReal, Interval::LessThan(5));
  auto b = DimConstraint::Numeric(DimKind::kReal, Interval::GreaterThan(5));
  auto u = a.UnionIfSingle(b);
  ASSERT_TRUE(u.has_value());
  EXPECT_TRUE(u->interval().IsFull());
  EXPECT_FALSE(u->Contains(Value(5.0)));
  EXPECT_TRUE(u->Contains(Value(4.0)));
  EXPECT_EQ(u->AtomCount(), 1);
}

TEST(DimConstraintTest, NotEqualIsFullMinusPoint) {
  auto c = DimConstraint::NumericNotEqual(DimKind::kReal, 0.3);
  EXPECT_FALSE(c.Contains(Value(0.3)));
  EXPECT_TRUE(c.Contains(Value(0.4)));
  EXPECT_EQ(c.AtomCount(), 1);
}

TEST(DimConstraintTest, ExcludedEndpointFoldsIntoBound) {
  // [1,5] AND x != 5  ==>  [1,5).
  auto c = RealRange(1, 5).Intersect(
      DimConstraint::NumericNotEqual(DimKind::kReal, 5));
  EXPECT_TRUE(c.interval() == Interval(Bound::Closed(1), Bound::Open(5)));
  EXPECT_TRUE(c.excluded_points().empty());
}

TEST(DimConstraintTest, IntegerExcludedBoundaryTightens) {
  // [1,5] AND id != 5  ==>  [1,4] for integers.
  auto c = IntRange(1, 5).Intersect(
      DimConstraint::NumericNotEqual(DimKind::kInteger, 5));
  EXPECT_TRUE(c.interval() == Interval(Bound::Closed(1), Bound::Closed(4)));
}

TEST(DimConstraintTest, IntegerAllPointsExcludedIsEmpty) {
  auto c = IntRange(3, 4)
               .Intersect(DimConstraint::NumericNotEqual(DimKind::kInteger, 3))
               .Intersect(
                   DimConstraint::NumericNotEqual(DimKind::kInteger, 4));
  EXPECT_TRUE(c.IsEmpty());
}

TEST(DimConstraintTest, NumericSubset) {
  EXPECT_TRUE(RealRange(2, 4).IsSubsetOf(RealRange(1, 5)));
  EXPECT_FALSE(RealRange(0, 4).IsSubsetOf(RealRange(1, 5)));
  // [2,4] ⊆ [1,5] \ {3} is false (3 is in the left side).
  auto holey = RealRange(1, 5).Intersect(
      DimConstraint::NumericNotEqual(DimKind::kReal, 3));
  EXPECT_FALSE(RealRange(2, 4).IsSubsetOf(holey));
  // But [2,4] \ {3} is a subset.
  auto lhs = RealRange(2, 4).Intersect(
      DimConstraint::NumericNotEqual(DimKind::kReal, 3));
  EXPECT_TRUE(lhs.IsSubsetOf(holey));
}

TEST(DimConstraintTest, CategoricalBasics) {
  auto car = DimConstraint::Categorical({"car"}, /*exclude=*/false);
  auto not_car = DimConstraint::Categorical({"car"}, /*exclude=*/true);
  EXPECT_TRUE(car.Contains(Value("car")));
  EXPECT_FALSE(car.Contains(Value("bus")));
  EXPECT_FALSE(not_car.Contains(Value("car")));
  EXPECT_TRUE(not_car.Contains(Value("bus")));
}

TEST(DimConstraintTest, CategoricalIntersect) {
  auto ab = DimConstraint::Categorical({"a", "b"}, false);
  auto bc = DimConstraint::Categorical({"b", "c"}, false);
  auto i = ab.Intersect(bc);
  EXPECT_TRUE(i.Contains(Value("b")));
  EXPECT_FALSE(i.Contains(Value("a")));
  // include {a} ∧ exclude {a} = empty.
  auto e = DimConstraint::Categorical({"a"}, false)
               .Intersect(DimConstraint::Categorical({"a"}, true));
  EXPECT_TRUE(e.IsEmpty());
}

TEST(DimConstraintTest, CategoricalUnionAlwaysSingle) {
  auto ab = DimConstraint::Categorical({"a", "b"}, false);
  auto bc = DimConstraint::Categorical({"b", "c"}, false);
  auto u = ab.UnionIfSingle(bc);
  ASSERT_TRUE(u.has_value());
  EXPECT_TRUE(u->Contains(Value("a")));
  EXPECT_TRUE(u->Contains(Value("c")));
  EXPECT_FALSE(u->Contains(Value("d")));
  // include {a} ∪ exclude {a,b} = exclude {b}.
  auto u2 = DimConstraint::Categorical({"a"}, false)
                .UnionIfSingle(DimConstraint::Categorical({"a", "b"}, true));
  ASSERT_TRUE(u2.has_value());
  EXPECT_TRUE(u2->Contains(Value("a")));
  EXPECT_FALSE(u2->Contains(Value("b")));
}

TEST(DimConstraintTest, CategoricalSubset) {
  auto a = DimConstraint::Categorical({"a"}, false);
  auto ab = DimConstraint::Categorical({"a", "b"}, false);
  auto not_c = DimConstraint::Categorical({"c"}, true);
  EXPECT_TRUE(a.IsSubsetOf(ab));
  EXPECT_FALSE(ab.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(not_c));
  EXPECT_FALSE(DimConstraint::Categorical({"c"}, false).IsSubsetOf(not_c));
  EXPECT_FALSE(not_c.IsSubsetOf(ab));
  EXPECT_TRUE(DimConstraint::Categorical({"a", "c"}, true)
                  .IsSubsetOf(not_c));
}

TEST(DimConstraintTest, CategoricalDifference) {
  auto ab = DimConstraint::Categorical({"a", "b"}, false);
  auto b = DimConstraint::Categorical({"b"}, false);
  auto d = ab.DifferenceIfSingle(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->Contains(Value("a")));
  EXPECT_FALSE(d->Contains(Value("b")));
}

TEST(DimConstraintTest, NumericDifferenceCarvesOneSide) {
  auto d = RealRange(0, 10).DifferenceIfSingle(RealRange(6, 20));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->Contains(Value(5.9)));
  EXPECT_FALSE(d->Contains(Value(6.0)));
  // Splitting difference is rejected.
  EXPECT_FALSE(RealRange(0, 10).DifferenceIfSingle(RealRange(4, 6)));
}

TEST(DimConstraintTest, ComplementPieces) {
  auto pieces = RealRange(2, 4).Complement();
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_TRUE(pieces[0].Contains(Value(1.0)) ||
              pieces[1].Contains(Value(1.0)));
  EXPECT_TRUE(pieces[0].Contains(Value(5.0)) ||
              pieces[1].Contains(Value(5.0)));
  for (const auto& p : pieces) {
    EXPECT_FALSE(p.Contains(Value(3.0)));
  }
  // Complement of full is empty (no pieces).
  EXPECT_TRUE(DimConstraint::Full(DimKind::kReal).Complement().empty());
  // Complement of categorical include is exclude.
  auto cat = DimConstraint::Categorical({"x"}, false).Complement();
  ASSERT_EQ(cat.size(), 1u);
  EXPECT_FALSE(cat[0].Contains(Value("x")));
  EXPECT_TRUE(cat[0].Contains(Value("y")));
}

TEST(DimConstraintTest, AtomCounts) {
  EXPECT_EQ(DimConstraint::Full(DimKind::kReal).AtomCount(), 0);
  EXPECT_EQ(RealRange(1, 5).AtomCount(), 2);
  EXPECT_EQ(DimConstraint::Categorical({"a", "b"}, false).AtomCount(), 2);
}

}  // namespace
}  // namespace eva::symbolic
