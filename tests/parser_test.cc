#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace eva::parser {
namespace {

using expr::ExprKind;

const SelectStatement& AsSelect(const Statement& stmt) {
  return std::get<SelectStatement>(stmt);
}
const CreateUdfStatement& AsCreate(const Statement& stmt) {
  return std::get<CreateUdfStatement>(stmt);
}

// --- Lexer ---------------------------------------------------------------

TEST(LexerTest, TokenizesBasics) {
  auto r = Tokenize("SELECT id, area FROM v WHERE id >= 10.5;");
  ASSERT_TRUE(r.ok());
  const auto& t = r.value();
  EXPECT_TRUE(t[0].IsKeyword("select"));
  EXPECT_TRUE(t[1].Is(TokenType::kIdentifier));
  EXPECT_EQ(t[2].text, ",");
  EXPECT_TRUE(t[8].Is(TokenType::kCompare));
  EXPECT_EQ(t[8].text, ">=");
  EXPECT_EQ(t[9].text, "10.5");
  EXPECT_TRUE(t.back().Is(TokenType::kEnd));
}

TEST(LexerTest, StringsAndComments) {
  auto r = Tokenize("-- a comment\n'red SUV' <> x");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value()[0].Is(TokenType::kString));
  EXPECT_EQ(r.value()[0].text, "red SUV");
  EXPECT_EQ(r.value()[1].text, "<>");
}

TEST(LexerTest, ErrorsOnUnterminatedString) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

// --- SELECT --------------------------------------------------------------

TEST(ParserTest, ParsesListingOneStyleQuery) {
  auto r = ParseStatement(
      "SELECT timestamp, bbox FROM video CROSS APPLY "
      "OBJECT_DETECTOR(frame) ACCURACY 'HIGH' "
      "WHERE timestamp > 18 AND label = 'car' AND AREA(bbox) > 0.3 AND "
      "VEHICLE_MODEL(bbox, frame) = 'SUV';");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& sel = AsSelect(r.value());
  EXPECT_EQ(sel.table, "video");
  ASSERT_TRUE(sel.apply.has_value());
  EXPECT_EQ(sel.apply->udf_name, "OBJECT_DETECTOR");
  EXPECT_EQ(sel.apply->args, std::vector<std::string>{"frame"});
  EXPECT_EQ(sel.apply->accuracy, "HIGH");
  ASSERT_TRUE(sel.where != nullptr);
  auto conjuncts = expr::SplitConjuncts(sel.where);
  EXPECT_EQ(conjuncts.size(), 4u);
  EXPECT_EQ(sel.select_list.size(), 2u);
}

TEST(ParserTest, ParsesGroupByCount) {
  auto r = ParseStatement(
      "SELECT timestamp, COUNT(*) FROM video CROSS APPLY det(frame) "
      "ACCURACY 'LOW' WHERE label = 'car' GROUP BY timestamp;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& sel = AsSelect(r.value());
  EXPECT_EQ(sel.group_by, std::vector<std::string>{"timestamp"});
  EXPECT_EQ(sel.select_list[1]->kind(), ExprKind::kCountStar);
  EXPECT_EQ(sel.apply->accuracy, "LOW");
}

TEST(ParserTest, ParsesStarAndNoWhere) {
  auto r = ParseStatement("SELECT * FROM v;");
  ASSERT_TRUE(r.ok());
  const auto& sel = AsSelect(r.value());
  EXPECT_EQ(sel.select_list[0]->kind(), ExprKind::kStar);
  EXPECT_FALSE(sel.apply.has_value());
  EXPECT_EQ(sel.where, nullptr);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  auto r = ParseStatement("select id from V cross apply D(frame) where "
                          "id < 5 and label = 'car';");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(ParserTest, OperatorPrecedenceOrBindsLoosest) {
  auto e = ParseExpression("a = 'x' OR b = 'y' AND NOT c = 'z'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind(), ExprKind::kOr);
  EXPECT_EQ(e.value()->children()[1]->kind(), ExprKind::kAnd);
  EXPECT_EQ(e.value()->children()[1]->children()[1]->kind(),
            ExprKind::kNot);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto e = ParseExpression("(a = 'x' OR b = 'y') AND c = 'z'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind(), ExprKind::kAnd);
  EXPECT_EQ(e.value()->children()[0]->kind(), ExprKind::kOr);
}

TEST(ParserTest, ComparisonOperators) {
  for (const char* op : {"=", "!=", "<>", "<", "<=", ">", ">="}) {
    auto e = ParseExpression(std::string("id ") + op + " 5");
    ASSERT_TRUE(e.ok()) << op;
    EXPECT_EQ(e.value()->kind(), ExprKind::kCompare) << op;
  }
}

TEST(ParserTest, NumberLiterals) {
  auto e = ParseExpression("area > 0.25");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->children()[1]->value().type(), DataType::kDouble);
  e = ParseExpression("id > 25");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->children()[1]->value().type(), DataType::kInt64);
}

TEST(ParserTest, BooleanLiterals) {
  auto e = ParseExpression("Filter(frame) = true");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->children()[1]->value().type(), DataType::kBool);
  EXPECT_TRUE(e.value()->children()[1]->value().AsBool());
}

TEST(ParserTest, RejectsMalformedSelect) {
  EXPECT_FALSE(ParseStatement("SELECT FROM v;").ok());
  EXPECT_FALSE(ParseStatement("SELECT id v;").ok());
  EXPECT_FALSE(ParseStatement("SELECT id FROM v WHERE;").ok());
  EXPECT_FALSE(ParseStatement("SELECT id FROM v GROUP;").ok());
  EXPECT_FALSE(ParseStatement("SELECT id FROM v CROSS v;").ok());
  EXPECT_FALSE(ParseStatement("SELECT id FROM v trailing;").ok());
}

// --- CREATE UDF (Listing 2) -----------------------------------------------

TEST(ParserTest, ParsesCreateUdfListing2) {
  auto r = ParseStatement(
      "CREATE UDF YOLO "
      "INPUT = (frame NDARRAY UINT8(3, ANYDIM, ANYDIM)) "
      "OUTPUT = (labels NDARRAY STR(ANYDIM), bboxes NDARRAY "
      "FLOAT32(ANYDIM, 4)) "
      "IMPL = 'udfs/yolo.py' "
      "LOGICAL_TYPE = ObjectDetector "
      "PROPERTIES = ('ACCURACY'='HIGH');");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& create = AsCreate(r.value());
  EXPECT_EQ(create.name, "YOLO");
  EXPECT_FALSE(create.or_replace);
  EXPECT_EQ(create.impl, "udfs/yolo.py");
  EXPECT_EQ(create.logical_type, "ObjectDetector");
  ASSERT_EQ(create.properties.count("ACCURACY"), 1u);
  EXPECT_EQ(create.properties.at("ACCURACY"), "HIGH");
  EXPECT_NE(create.input_spec.find("ANYDIM"), std::string::npos);
  EXPECT_NE(create.output_spec.find("bboxes"), std::string::npos);
}

TEST(ParserTest, CreateOrReplaceUdf) {
  auto r = ParseStatement(
      "CREATE OR REPLACE UDF F IMPL='x.py' "
      "PROPERTIES=('KIND'='FILTER', 'COST_MS'='1');");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(AsCreate(r.value()).or_replace);
  EXPECT_EQ(AsCreate(r.value()).properties.at("COST_MS"), "1");
}

TEST(ParserTest, CreateUdfRejectsUnknownClause) {
  EXPECT_FALSE(ParseStatement("CREATE UDF F BOGUS='x';").ok());
  EXPECT_FALSE(ParseStatement("CREATE UDF F IMPL=notastring;").ok());
  EXPECT_FALSE(
      ParseStatement("CREATE UDF F PROPERTIES=('K'=notastring);").ok());
}

TEST(ParserTest, MultipleProperties) {
  auto r = ParseStatement(
      "CREATE UDF M PROPERTIES=('A'='1', 'B'='2', 'C'='three');");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(AsCreate(r.value()).properties.size(), 3u);
}

}  // namespace
}  // namespace eva::parser
