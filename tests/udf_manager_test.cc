#include <gtest/gtest.h>

#include "udf/udf_manager.h"

namespace eva::udf {
namespace {

using symbolic::DimConstraint;
using symbolic::DimKind;
using symbolic::Interval;
using symbolic::Predicate;

Predicate IdRange(double lo, double hi) {
  symbolic::Conjunct c;
  c.Constrain("id", DimConstraint::Numeric(DimKind::kInteger,
                                           Interval::AtLeast(lo)));
  c.Constrain("id", DimConstraint::Numeric(DimKind::kInteger,
                                           Interval::LessThan(hi)));
  return Predicate::FromConjunct(std::move(c));
}

TEST(UdfSignatureTest, KeyFormat) {
  UdfSignature sig{"CarType", "medium_ua_detrac"};
  EXPECT_EQ(sig.Key(), "CarType@medium_ua_detrac");
}

TEST(UdfManagerTest, CoverageStartsFalse) {
  UdfManager manager;
  EXPECT_FALSE(manager.HasCoverage("x"));
  EXPECT_TRUE(manager.Coverage("x").IsFalse());
}

TEST(UdfManagerTest, CoverageUnionsAcrossQueries) {
  UdfManager manager;
  manager.UpdateCoverage("det@v", IdRange(0, 100));
  manager.UpdateCoverage("det@v", IdRange(50, 200));
  ASSERT_TRUE(manager.HasCoverage("det@v"));
  const Predicate& cov = manager.Coverage("det@v");
  // The overlapping ranges reduce to one conjunct [0, 200).
  EXPECT_EQ(cov.conjuncts().size(), 1u);
  auto at = [&](int64_t id) {
    return cov.Evaluate([id](const std::string&) { return Value(id); });
  };
  EXPECT_TRUE(at(0));
  EXPECT_TRUE(at(150));
  EXPECT_FALSE(at(200));
}

TEST(UdfManagerTest, SignaturesAreIndependent) {
  UdfManager manager;
  manager.UpdateCoverage("det@v1", IdRange(0, 100));
  EXPECT_TRUE(manager.HasCoverage("det@v1"));
  EXPECT_FALSE(manager.HasCoverage("det@v2"));
  EXPECT_FALSE(manager.HasCoverage("other@v1"));
}

TEST(UdfManagerTest, InvocationAccounting) {
  UdfManager manager;
  manager.RecordInvocations("det@v", 100, 100);
  manager.RecordInvocations("det@v", 80, 20);
  const auto& entry = manager.entries().at("det@v");
  EXPECT_EQ(entry.total_invocations, 180);
  EXPECT_EQ(entry.distinct_invocations, 120);
}

TEST(UdfManagerTest, CoverageAtomCountStaysSmallOnOverlaps) {
  // Fig. 8b's premise: overlapping session predicates keep p_u compact.
  UdfManager manager;
  for (int i = 0; i < 16; ++i) {
    manager.UpdateCoverage("det@v", IdRange(i * 50, i * 50 + 400));
  }
  EXPECT_LE(manager.CoverageAtomCount("det@v"), 2);
  EXPECT_EQ(manager.CoverageAtomCount("missing"), 0);
}

TEST(UdfManagerTest, ClearDropsEverything) {
  UdfManager manager;
  manager.UpdateCoverage("det@v", IdRange(0, 10));
  manager.Clear();
  EXPECT_FALSE(manager.HasCoverage("det@v"));
  EXPECT_TRUE(manager.entries().empty());
}

}  // namespace
}  // namespace eva::udf
