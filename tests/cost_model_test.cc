#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "optimizer/cost_model.h"

namespace eva::optimizer {
namespace {

TEST(CostModelTest, CanonicalRankPrefersSelectiveCheapPredicates) {
  // Eq. 2: smaller rank runs first.
  double selective_cheap = CanonicalRank(0.1, 5);
  double selective_expensive = CanonicalRank(0.1, 99);
  double unselective_cheap = CanonicalRank(0.9, 5);
  EXPECT_LT(selective_cheap, selective_expensive);
  EXPECT_LT(selective_cheap, unselective_cheap);
  EXPECT_LT(CanonicalRank(0.5, 10), 0);  // always negative for s < 1
}

TEST(CostModelTest, MaterializationAwareRankDiscountsCoveredUdfs) {
  // Eq. 4: a fully materialized UDF (s_{p–} = 0) becomes nearly free to
  // evaluate, so it ranks far earlier than its canonical rank suggests.
  UdfCostInputs covered{0.3, 0.0, 99, 0.005};
  UdfCostInputs uncovered{0.3, 1.0, 5, 0.005};
  EXPECT_LT(MaterializationAwareRank(covered),
            MaterializationAwareRank(uncovered));
  // Canonical ordering would pick the cheap uncovered UDF first.
  EXPECT_LT(CanonicalRank(uncovered.selectivity, uncovered.cost_e_ms),
            CanonicalRank(covered.selectivity, covered.cost_e_ms));
}

TEST(CostModelTest, ReducesToCanonicalWithoutMaterialization) {
  // With s_{p–} = 1 and c_r ≈ 0, Eq. 4 degenerates to Eq. 2.
  UdfCostInputs in{0.4, 1.0, 10, 0.0};
  EXPECT_NEAR(MaterializationAwareRank(in), CanonicalRank(0.4, 10), 1e-12);
}

TEST(CostModelTest, ExpectedCostEquation3) {
  // T = 3 C_M + |R| c_r + |R| s_{p–} c_e.
  UdfCostInputs in{0.3, 0.25, 100, 2};
  double t = ExpectedUdfPredicateCost(in, /*input_card=*/1000,
                                      /*view_read_ms_total=*/50);
  EXPECT_DOUBLE_EQ(t, 3 * 50 + 1000 * 2 + 1000 * 0.25 * 100);
}

// Theorem 4.1: exhaustively verify on random instances that ordering by
// Eq. 4 minimizes the expected evaluation cost among all permutations of
// independent predicates.
class RankOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

double OrderingCost(const std::vector<UdfCostInputs>& preds,
                    const std::vector<size_t>& order, double n) {
  double cost = 0;
  double card = n;
  for (size_t idx : order) {
    const UdfCostInputs& p = preds[idx];
    cost += card * (p.cost_r_ms + p.sel_diff_fraction * p.cost_e_ms);
    card *= p.selectivity;
  }
  return cost;
}

TEST_P(RankOptimalityTest, RankOrderIsOptimal) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    size_t n = 2 + rng.NextBelow(3);  // 2-4 predicates
    std::vector<UdfCostInputs> preds;
    for (size_t i = 0; i < n; ++i) {
      UdfCostInputs p;
      p.selectivity = 0.05 + 0.9 * rng.NextDouble();
      p.sel_diff_fraction = rng.NextDouble();
      p.cost_e_ms = 1 + rng.NextDouble() * 120;
      p.cost_r_ms = 0.01;
      preds.push_back(p);
    }
    // Ordering by Eq. 4.
    std::vector<size_t> by_rank(n);
    for (size_t i = 0; i < n; ++i) by_rank[i] = i;
    std::sort(by_rank.begin(), by_rank.end(), [&](size_t a, size_t b) {
      return MaterializationAwareRank(preds[a]) <
             MaterializationAwareRank(preds[b]);
    });
    double rank_cost = OrderingCost(preds, by_rank, 10000);
    // Exhaustive minimum.
    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = i;
    std::sort(perm.begin(), perm.end());
    double best = rank_cost;
    do {
      best = std::min(best, OrderingCost(preds, perm, 10000));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_LE(rank_cost, best * (1 + 1e-9))
        << "Eq. 4 ordering was not optimal (seed " << GetParam()
        << ", iter " << iter << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankOptimalityTest,
                         ::testing::Values(3, 7, 11, 19, 41));

}  // namespace
}  // namespace eva::optimizer
