// Split-block Bloom filter tests (docs/STORAGE.md): zero false negatives
// by construction (checked exhaustively), measured false-positive rate
// within 2x of the analytic target, and a brute-force oracle proving that
// a Bloom-negative probe never changes a view's answer.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "storage/bloom_filter.h"
#include "storage/view_store.h"

namespace eva::storage {
namespace {

uint64_t Splitmix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(BloomFilterTest, NoFalseNegativesExhaustive) {
  for (size_t n : {1u, 7u, 64u, 1000u, 50000u}) {
    std::vector<uint64_t> hashes;
    hashes.reserve(n);
    for (size_t i = 0; i < n; ++i) hashes.push_back(Splitmix(i * 3 + 1));
    BloomFilter filter;
    filter.Build(hashes, /*bits_per_key=*/10);
    ASSERT_TRUE(filter.enabled());
    for (uint64_t h : hashes) {
      ASSERT_TRUE(filter.MayContain(h)) << "n=" << n;
    }
  }
}

TEST(BloomFilterTest, EmptyOrDisabledFilterAdmitsEverything) {
  BloomFilter empty;
  EXPECT_FALSE(empty.enabled());
  EXPECT_TRUE(empty.MayContain(123));
  BloomFilter zero_bits;
  zero_bits.Build({1, 2, 3}, /*bits_per_key=*/0);
  EXPECT_FALSE(zero_bits.enabled());
  EXPECT_TRUE(zero_bits.MayContain(999));
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  // Analytic split-block FPP with 8 probe bits in a 256-bit block and c
  // bits per key: (1 - e^(-8/c))^8. The measured rate over disjoint
  // non-member hashes must stay within 2x (plus a small-sample floor).
  const size_t n = 20000;
  for (int bits_per_key : {8, 10, 16}) {
    std::vector<uint64_t> members;
    for (size_t i = 0; i < n; ++i) members.push_back(Splitmix(i));
    BloomFilter filter;
    filter.Build(members, bits_per_key);
    size_t fps = 0;
    const size_t trials = 200000;
    for (size_t i = 0; i < trials; ++i) {
      if (filter.MayContain(Splitmix(n + i))) ++fps;
    }
    const double measured = static_cast<double>(fps) / trials;
    const double target =
        std::pow(1.0 - std::exp(-8.0 / bits_per_key), 8.0);
    EXPECT_LE(measured, 2.0 * target + 0.001)
        << "bits_per_key=" << bits_per_key << " measured=" << measured
        << " target=" << target;
    EXPECT_GT(measured, 0.0) << "a real filter has some false positives";
  }
}

TEST(BloomFilterTest, SizeScalesWithKeysNotTrials) {
  std::vector<uint64_t> hashes;
  for (size_t i = 0; i < 10000; ++i) hashes.push_back(Splitmix(i));
  BloomFilter filter;
  filter.Build(hashes, 10);
  // 10 bits/key over 10k keys ≈ 12.5 KiB, rounded up to whole 32-byte
  // blocks — an order of magnitude under the keys themselves.
  EXPECT_GE(filter.SizeBytes(), 10000u * 10 / 8);
  EXPECT_LE(filter.SizeBytes(), 10000u * 10 / 8 + 64);
  EXPECT_EQ(filter.SizeBytes(), filter.blocks().size() * 32);
}

TEST(BloomFilterTest, RestoreRoundTripsBlocks) {
  std::vector<uint64_t> hashes;
  for (size_t i = 0; i < 500; ++i) hashes.push_back(Splitmix(i ^ 0xABCD));
  BloomFilter filter;
  filter.Build(hashes, 10);
  BloomFilter restored;
  restored.RestoreBlocks(filter.blocks());
  ASSERT_TRUE(restored.enabled());
  for (uint64_t h : hashes) EXPECT_TRUE(restored.MayContain(h));
  size_t disagreements = 0;
  for (size_t i = 0; i < 10000; ++i) {
    uint64_t probe = Splitmix(0xF00D + i);
    if (filter.MayContain(probe) != restored.MayContain(probe)) {
      ++disagreements;
    }
  }
  EXPECT_EQ(disagreements, 0u);
}

// Brute-force oracle: probes against a Bloom-filtered view answer exactly
// like the full key-index path. Every kMiss outcome is checked against a
// std::set oracle of the stored keys, so a Bloom negative that skipped the
// key-index search can never have hidden a present key.
TEST(BloomFilterTest, ProbeOracleDifferential) {
  Schema schema({{"v", DataType::kInt64}});
  MaterializedView view("t@v", schema);
  view.set_segment_frames(64);
  view.set_build_options({/*compress=*/true, /*bloom_bits_per_key=*/10});
  std::set<ViewKey> oracle;
  uint64_t state = 42;
  for (int i = 0; i < 3000; ++i) {
    state = Splitmix(state);
    ViewKey key{static_cast<int64_t>(state % 2000),
                static_cast<int64_t>((state >> 32) % 4) - 1};
    if (oracle.insert(key).second) {
      view.Put(key, {{Value(static_cast<int64_t>(i))}});
    }
  }
  std::vector<ViewKey> probes;
  for (int64_t f = 0; f < 2200; ++f) {
    for (int64_t o = -1; o < 3; ++o) probes.push_back({f, o});
  }
  ProbeResult res;
  view.ProbeBatch(probes, nullptr, &res);
  ASSERT_EQ(res.outcomes.size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    const bool stored = oracle.count(probes[i]) > 0;
    EXPECT_EQ(res.outcomes[i].status == ProbeStatus::kHit, stored)
        << "key (" << probes[i].frame << ", " << probes[i].obj << ")";
  }
  // The filter actually engaged: most of the misses short-circuited, and
  // no stored key was ever filtered (that would be a wrong kMiss above).
  EXPECT_GT(res.bloom_negatives, 0);
  EXPECT_GT(res.bloom_hits, 0);
  const int64_t misses =
      static_cast<int64_t>(probes.size() - oracle.size());
  EXPECT_LE(res.bloom_fps, misses / 10);  // far under the miss count
}

}  // namespace
}  // namespace eva::storage
