#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace eva::catalog {
namespace {

VideoInfo Video(const std::string& name, int64_t frames) {
  VideoInfo v;
  v.name = name;
  v.num_frames = frames;
  return v;
}

UdfDef Detector(const std::string& name, const std::string& accuracy,
                double cost) {
  UdfDef d;
  d.name = name;
  d.kind = UdfKind::kDetector;
  d.logical_type = "ObjectDetector";
  d.accuracy = accuracy;
  d.cost_ms = cost;
  return d;
}

TEST(CatalogTest, AccuracyRanks) {
  EXPECT_LT(AccuracyRank("LOW"), AccuracyRank("MEDIUM"));
  EXPECT_LT(AccuracyRank("MEDIUM"), AccuracyRank("HIGH"));
  EXPECT_EQ(AccuracyRank("low"), AccuracyRank("LOW"));
  EXPECT_EQ(AccuracyRank(""), 0);
  EXPECT_EQ(AccuracyRank("bogus"), 0);
}

TEST(CatalogTest, VideoRegistrationAndLookup) {
  Catalog cat;
  ASSERT_TRUE(cat.AddVideo(Video("v", 100)).ok());
  EXPECT_TRUE(cat.HasVideo("v"));
  EXPECT_FALSE(cat.HasVideo("w"));
  auto r = cat.GetVideo("v");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_frames, 100);
  EXPECT_EQ(cat.GetVideo("w").status().code(), StatusCode::kNotFound);
  // Duplicates rejected.
  EXPECT_EQ(cat.AddVideo(Video("v", 50)).code(),
            StatusCode::kAlreadyExists);
  // Invalid frame counts rejected.
  EXPECT_EQ(cat.AddVideo(Video("x", 0)).code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, BytesPerFrame) {
  VideoInfo v = Video("v", 10);
  v.width = 960;
  v.height = 540;
  EXPECT_DOUBLE_EQ(v.BytesPerFrame(), 3.0 * 960 * 540);
}

TEST(CatalogTest, UdfRegistrationAndReplace) {
  Catalog cat;
  ASSERT_TRUE(cat.AddUdf(Detector("D", "HIGH", 120)).ok());
  EXPECT_TRUE(cat.HasUdf("D"));
  EXPECT_EQ(cat.AddUdf(Detector("D", "LOW", 9)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(cat.AddUdf(Detector("D", "LOW", 9), /*or_replace=*/true).ok());
  EXPECT_DOUBLE_EQ(cat.GetUdf("D").value().cost_ms, 9);
  UdfDef bad = Detector("E", "LOW", -1);
  EXPECT_EQ(cat.AddUdf(bad).code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, PhysicalUdfsForLogicalTypeSortedByCost) {
  Catalog cat;
  ASSERT_TRUE(cat.AddUdf(Detector("R101", "HIGH", 120)).ok());
  ASSERT_TRUE(cat.AddUdf(Detector("Yolo", "LOW", 9)).ok());
  ASSERT_TRUE(cat.AddUdf(Detector("R50", "MEDIUM", 99)).ok());
  UdfDef other;
  other.name = "CarType";
  other.kind = UdfKind::kClassifier;
  other.cost_ms = 6;
  ASSERT_TRUE(cat.AddUdf(other).ok());

  auto low = cat.PhysicalUdfsFor("ObjectDetector", "LOW");
  ASSERT_EQ(low.size(), 3u);
  EXPECT_EQ(low[0].name, "Yolo");
  EXPECT_EQ(low[1].name, "R50");
  EXPECT_EQ(low[2].name, "R101");

  auto medium = cat.PhysicalUdfsFor("ObjectDetector", "MEDIUM");
  ASSERT_EQ(medium.size(), 2u);
  EXPECT_EQ(medium[0].name, "R50");

  auto high = cat.PhysicalUdfsFor("ObjectDetector", "HIGH");
  ASSERT_EQ(high.size(), 1u);
  EXPECT_EQ(high[0].name, "R101");

  EXPECT_TRUE(cat.PhysicalUdfsFor("Segmenter", "LOW").empty());
}

}  // namespace
}  // namespace eva::catalog
