#include <gtest/gtest.h>

#include <set>

#include "parser/parser.h"
#include "vbench/vbench.h"

namespace eva::vbench {
namespace {

TEST(VbenchTest, DatasetsMatchPaperParameters) {
  EXPECT_EQ(ShortUaDetrac().num_frames, 7500);
  EXPECT_EQ(MediumUaDetrac().num_frames, 14000);
  EXPECT_EQ(LongUaDetrac().num_frames, 28000);
  EXPECT_EQ(Jackson().num_frames, 14000);
  EXPECT_EQ(Jackson().width, 600);
  EXPECT_LT(Jackson().mean_objects_per_frame,
            MediumUaDetrac().mean_objects_per_frame / 10);
}

TEST(VbenchTest, QuerySetsHaveEightParsableQueries) {
  for (auto queries : {VbenchHigh("v", 14000), VbenchLow("v", 14000)}) {
    EXPECT_EQ(queries.size(), 8u);
    for (const std::string& sql : queries) {
      auto r = parser::ParseStatement(sql);
      EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    }
  }
}

TEST(VbenchTest, IdRangesScaleWithVideoLength) {
  // §5.5: id < 10000 on MEDIUM translates to id < 5000 on SHORT.
  auto medium = VbenchHigh("v", 14000);
  auto half = VbenchHigh("v", 7000);
  EXPECT_NE(medium[0], half[0]);
  EXPECT_NE(half[0].find("4970"), std::string::npos)
      << half[0];  // 0.71 * 7000
}

TEST(VbenchTest, LogicalVariantUsesObjectDetector) {
  auto queries = VbenchHighLogical("v", 14000);
  EXPECT_EQ(queries.size(), 9u);  // + traffic-monitoring count query
  for (const std::string& sql : queries) {
    EXPECT_NE(sql.find("ObjectDetector"), std::string::npos) << sql;
    EXPECT_EQ(sql.find("FasterRCNNResNet50(frame)"), std::string::npos);
    auto r = parser::ParseStatement(sql);
    EXPECT_TRUE(r.ok()) << sql;
  }
  EXPECT_NE(queries[3].find("COUNT(*)"), std::string::npos);
}

TEST(VbenchTest, FilteredVariantPrependsFilterPredicate) {
  auto queries = VbenchHighFiltered("v", 14000);
  for (const std::string& sql : queries) {
    EXPECT_NE(sql.find("VehicleFilter(frame) = true AND"),
              std::string::npos);
    EXPECT_TRUE(parser::ParseStatement(sql).ok()) << sql;
  }
}

TEST(VbenchTest, PermuteIsDeterministicAndComplete) {
  auto base = VbenchHigh("v", 14000);
  auto p1 = Permute(base, 4);
  auto p2 = Permute(base, 4);
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, base);
  std::multiset<std::string> a(base.begin(), base.end());
  std::multiset<std::string> b(p1.begin(), p1.end());
  EXPECT_EQ(a, b);
  EXPECT_NE(Permute(base, 1), Permute(base, 2));
}

TEST(VbenchTest, RunWorkloadAggregatesMetrics) {
  catalog::VideoInfo video = MediumUaDetrac();
  video.name = "mini";
  video.num_frames = 200;
  auto er = MakeEngine(optimizer::ReuseMode::kEva, video);
  ASSERT_TRUE(er.ok()) << er.status().ToString();
  auto engine = er.MoveValue();
  auto result = RunWorkload(engine.get(), VbenchHigh("mini", 200));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().queries.size(), 8u);
  EXPECT_GT(result.value().total_ms, 0);
  EXPECT_GT(result.value().total_invocations, 0);
  EXPECT_GT(result.value().total_reused, 0);
  EXPECT_GT(result.value().view_bytes, 0);
  EXPECT_GT(result.value().HitPercentage(), 0);
  EXPECT_LT(result.value().HitPercentage(), 100);
}

TEST(VbenchTest, HighReuseBeatsLowReuse) {
  catalog::VideoInfo video = MediumUaDetrac();
  video.name = "mini2";
  video.num_frames = 400;
  double hits[2];
  int i = 0;
  for (auto queries :
       {VbenchLow("mini2", 400), VbenchHigh("mini2", 400)}) {
    auto er = MakeEngine(optimizer::ReuseMode::kEva, video);
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    auto result = RunWorkload(engine.get(), queries);
    ASSERT_TRUE(result.ok());
    hits[i++] = result.value().HitPercentage();
  }
  EXPECT_GT(hits[1], hits[0] * 1.5)
      << "VBENCH-HIGH must exhibit much more reuse than VBENCH-LOW";
}

TEST(VbenchTest, StandardUdfsMatchTable3Costs) {
  auto er = MakeEngine(optimizer::ReuseMode::kEva, MediumUaDetrac());
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  EXPECT_DOUBLE_EQ(
      engine->catalog().GetUdf("FasterRCNNResNet50").value().cost_ms, 99);
  EXPECT_DOUBLE_EQ(engine->catalog().GetUdf("CarType").value().cost_ms, 6);
  EXPECT_DOUBLE_EQ(engine->catalog().GetUdf("ColorDet").value().cost_ms,
                   5);
  EXPECT_DOUBLE_EQ(engine->catalog().GetUdf("YoloTiny").value().cost_ms,
                   9);
  EXPECT_DOUBLE_EQ(
      engine->catalog().GetUdf("FasterRCNNResNet101").value().cost_ms,
      120);
  EXPECT_FALSE(engine->catalog().GetUdf("ColorDet").value().is_gpu);
}

}  // namespace
}  // namespace eva::vbench
