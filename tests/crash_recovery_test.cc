// Crash-recovery matrix (docs/RELIABILITY.md): enumerate every filesystem
// fault point a save (or load) consults, simulate a process death at each
// one, and assert that a fresh engine reloading the directory returns
// results bit-identical to a fault-free run. Also covers the silent torn
// write (shortwrite) cases the CRC manifest exists to catch, and the
// schedule / glob parsing the injector is driven by.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine/eva_engine.h"
#include "fault/fault_injector.h"
#include "storage/view_persistence.h"
#include "vbench/vbench.h"

namespace eva::engine {
namespace {

namespace stdfs = std::filesystem;
using fault::FaultAction;
using fault::FaultInjector;
using fault::ParseFaultSchedule;

catalog::VideoInfo CrashVideo() {
  catalog::VideoInfo v;
  v.name = "cv";
  v.num_frames = 90;
  v.mean_objects_per_frame = 6;
  v.seed = 7;
  return v;
}

std::vector<std::string> SessionSql() {
  return {
      "SELECT id, obj FROM cv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 60 AND label = 'car';",
      "SELECT id, obj FROM cv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id >= 30 AND id < 90 AND label = 'car' "
      "AND CarType(frame, bbox) = 'Nissan';",
  };
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  CrashRecoveryTest() {
    root_ = stdfs::temp_directory_path() /
            ("eva_crash_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    stdfs::remove_all(root_);
    stdfs::create_directories(root_);
  }
  ~CrashRecoveryTest() override { stdfs::remove_all(root_); }

  std::unique_ptr<EvaEngine> MakeEva() {
    auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, CrashVideo());
    EXPECT_TRUE(er.ok()) << er.status().ToString();
    return er.MoveValue();
  }

  /// Per-query row text of the session run on a cold EVA engine — the
  /// reference every recovered engine must reproduce bit-for-bit.
  std::vector<std::string> Baseline() {
    auto engine = MakeEva();
    std::vector<std::string> out;
    for (const std::string& sql : SessionSql()) {
      auto r = engine->Execute(sql);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.push_back(r.value().batch.ToString(1 << 20));
    }
    return out;
  }

  /// Runs the session on `engine` and asserts each query's rows match the
  /// baseline exactly. Returns total simulated UDF milliseconds.
  double AssertSessionMatches(EvaEngine* engine,
                              const std::vector<std::string>& baseline,
                              const std::string& context) {
    const std::vector<std::string> session = SessionSql();
    double udf_ms = 0;
    for (size_t q = 0; q < session.size(); ++q) {
      auto r = engine->Execute(session[q]);
      EXPECT_TRUE(r.ok()) << context << ": " << r.status().ToString();
      if (!r.ok()) return udf_ms;
      EXPECT_EQ(r.value().batch.ToString(1 << 20), baseline[q])
          << context << ": query " << q << " rows diverge";
      udf_ms += r.value().metrics.breakdown[CostCategory::kUdf];
    }
    return udf_ms;
  }

  static void CopyDir(const stdfs::path& from, const stdfs::path& to) {
    stdfs::remove_all(to);
    stdfs::copy(from, to, stdfs::copy_options::recursive);
  }

  stdfs::path root_;
};

TEST(FaultScheduleTest, ParsesActionsPatternsAndOccurrences) {
  auto s = ParseFaultSchedule(
      "crash@fs.rename:MANIFEST#1; error@udf:*#1-2; fail@fs.write:*#3-; "
      "shortwrite@fs.write:MANIFEST.tmp#*; crash-exit@fs.remove:x");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const auto& rules = s.value().rules;
  ASSERT_EQ(rules.size(), 5u);
  EXPECT_EQ(rules[0].action, FaultAction::kCrash);
  EXPECT_EQ(rules[0].pattern, "fs.rename:MANIFEST");
  EXPECT_EQ(rules[0].first, 1);
  EXPECT_EQ(rules[0].last, 1);
  EXPECT_EQ(rules[1].action, FaultAction::kError);
  EXPECT_EQ(rules[1].first, 1);
  EXPECT_EQ(rules[1].last, 2);
  EXPECT_EQ(rules[2].action, FaultAction::kFail);
  EXPECT_EQ(rules[2].first, 3);
  EXPECT_LT(rules[2].last, 0);  // open-ended
  EXPECT_EQ(rules[3].action, FaultAction::kShortWrite);
  EXPECT_EQ(rules[3].first, 1);
  EXPECT_LT(rules[3].last, 0);  // '*' = every occurrence
  EXPECT_EQ(rules[4].action, FaultAction::kCrashExit);

  EXPECT_TRUE(ParseFaultSchedule("").ok());
  EXPECT_TRUE(ParseFaultSchedule("  ;  ").ok());
  EXPECT_FALSE(ParseFaultSchedule("bogus@x").ok());
  EXPECT_FALSE(ParseFaultSchedule("crash@").ok());
  EXPECT_FALSE(ParseFaultSchedule("crash").ok());
  EXPECT_FALSE(ParseFaultSchedule("crash@x#0").ok());
  EXPECT_FALSE(ParseFaultSchedule("crash@x#2-1").ok());
  EXPECT_FALSE(ParseFaultSchedule("crash@x#a").ok());
}

TEST(FaultScheduleTest, GlobMatchBacktracks) {
  EXPECT_TRUE(fault::GlobMatch("*", ""));
  EXPECT_TRUE(fault::GlobMatch("*", "anything"));
  EXPECT_TRUE(fault::GlobMatch("fs.write:*", "fs.write:MANIFEST.tmp"));
  EXPECT_TRUE(fault::GlobMatch("udf:*:17:*", "udf:CarType:17:3"));
  EXPECT_TRUE(fault::GlobMatch("a*b*c", "a__b__b__c"));
  EXPECT_FALSE(fault::GlobMatch("a*b*c", "a__c__b"));
  EXPECT_FALSE(fault::GlobMatch("fs.read:*", "fs.write:x"));
  EXPECT_FALSE(fault::GlobMatch("", "x"));
  EXPECT_TRUE(fault::GlobMatch("", ""));
}

TEST(FaultInjectorTest, CountsPerPointAndLatchesOnCrash) {
  auto sched = ParseFaultSchedule("error@udf:*#2; crash@fs.rename:M#1");
  ASSERT_TRUE(sched.ok());
  FaultInjector inj(sched.MoveValue());
  // Occurrences are counted per exact point name: the second consultation
  // of the SAME point fires, a second distinct point does not.
  EXPECT_EQ(inj.At("udf:A:0:0"), FaultAction::kNone);
  EXPECT_EQ(inj.At("udf:B:0:0"), FaultAction::kNone);
  EXPECT_EQ(inj.At("udf:A:0:0"), FaultAction::kError);
  EXPECT_EQ(inj.At("udf:A:0:0"), FaultAction::kNone);
  EXPECT_FALSE(inj.halted());
  EXPECT_EQ(inj.At("fs.rename:M"), FaultAction::kCrash);
  EXPECT_TRUE(inj.halted());
  // After the crash the process is "dead": every operation reports kCrash,
  // but only genuine rule firings count toward fired().
  EXPECT_EQ(inj.At("fs.write:anything"), FaultAction::kCrash);
  EXPECT_EQ(inj.At("udf:A:0:0"), FaultAction::kCrash);
  EXPECT_EQ(inj.fired(), 2);
  inj.Reset();
  EXPECT_FALSE(inj.halted());
  EXPECT_EQ(inj.At("udf:A:0:0"), FaultAction::kNone);
}

/// Crash at every fault point of a save OVER an existing generation: the
/// previous generation must stay fully loadable (or the new one, when the
/// crash lands after the manifest commit) and the reloaded session must
/// reuse everything — zero UDF time, rows bit-identical.
TEST_F(CrashRecoveryTest, SaveCrashMatrixPreservesACompleteGeneration) {
  const std::vector<std::string> baseline = Baseline();
  auto engine = MakeEva();
  for (const std::string& sql : SessionSql()) {
    ASSERT_TRUE(engine->Execute(sql).ok());
  }
  const stdfs::path good = root_ / "good";
  ASSERT_TRUE(engine->SaveViews(good.string()).ok());

  // Enumerate the fault points of a second save over generation 1 by
  // recording one. Point names embed the generation number and the
  // directory basename, so the recording save and every crashing save
  // must start from the same directory state AND the same path.
  const stdfs::path dir = root_ / "work";
  CopyDir(good, dir);
  engine->fault_injector()->set_recording(true);
  ASSERT_TRUE(engine->SaveViews(dir.string()).ok());
  std::vector<fault::FaultHit> points = engine->fault_injector()->hits();
  engine->fault_injector()->set_recording(false);
  engine->fault_injector()->Reset();
  ASSERT_GE(points.size(), 8u) << "save consults too few fault points";

  for (const fault::FaultHit& hit : points) {
    const std::string label =
        hit.point + "#" + std::to_string(hit.occurrence);
    CopyDir(good, dir);
    ASSERT_TRUE(engine
                    ->SetFaultSchedule("crash@" + hit.point + "#" +
                                       std::to_string(hit.occurrence))
                    .ok());
    Status s = engine->SaveViews(dir.string());
    EXPECT_FALSE(s.ok()) << label << ": crashed save reported success";
    ASSERT_TRUE(engine->SetFaultSchedule("").ok());

    auto fresh = MakeEva();
    ASSERT_TRUE(fresh->LoadViews(dir.string()).ok())
        << label << ": recovery load failed";
    // Whatever generation survived holds the same fully-covered data.
    const double udf_ms =
        AssertSessionMatches(fresh.get(), baseline, "crash at " + label);
    EXPECT_DOUBLE_EQ(udf_ms, 0.0)
        << label << ": a complete generation should reuse everything "
        << "(recovery: " << fresh->last_recovery().Summary() << ")";
  }
}

/// Crash at every fault point of a FIRST save into an empty directory.
/// Anything recoverable afterwards (usually a partial set of complete view
/// files with no manifest) may only underclaim: the session recomputes the
/// gaps and returns exactly the baseline rows.
TEST_F(CrashRecoveryTest, FirstSaveCrashMatrixNeverOverclaims) {
  const std::vector<std::string> baseline = Baseline();
  auto engine = MakeEva();
  for (const std::string& sql : SessionSql()) {
    ASSERT_TRUE(engine->Execute(sql).ok());
  }
  // Record a first save into `dir`, then crash repeated first saves into
  // the SAME path (emptied each time) so every recorded point — including
  // fs.mkdir:<basename> — lines up.
  const stdfs::path dir = root_ / "work";
  engine->fault_injector()->set_recording(true);
  ASSERT_TRUE(engine->SaveViews(dir.string()).ok());
  std::vector<fault::FaultHit> points = engine->fault_injector()->hits();
  engine->fault_injector()->set_recording(false);
  engine->fault_injector()->Reset();

  for (const fault::FaultHit& hit : points) {
    const std::string label =
        hit.point + "#" + std::to_string(hit.occurrence);
    stdfs::remove_all(dir);
    ASSERT_TRUE(engine
                    ->SetFaultSchedule("crash@" + hit.point + "#" +
                                       std::to_string(hit.occurrence))
                    .ok());
    EXPECT_FALSE(engine->SaveViews(dir.string()).ok()) << label;
    ASSERT_TRUE(engine->SetFaultSchedule("").ok());

    auto fresh = MakeEva();
    Status loaded = fresh->LoadViews(dir.string());
    if (!loaded.ok()) {
      // Crash before the directory existed — nothing was persisted.
      EXPECT_EQ(loaded.code(), StatusCode::kNotFound) << label;
    }
    AssertSessionMatches(fresh.get(), baseline, "first-save crash " + label);
  }
}

/// Crash at every fault point of a LOAD: an interrupted recovery must not
/// damage the directory — a later fault-free load still reuses everything.
TEST_F(CrashRecoveryTest, LoadCrashMatrixLeavesDirectoryLoadable) {
  const std::vector<std::string> baseline = Baseline();
  const stdfs::path good = root_ / "good";
  {
    auto engine = MakeEva();
    for (const std::string& sql : SessionSql()) {
      ASSERT_TRUE(engine->Execute(sql).ok());
    }
    ASSERT_TRUE(engine->SaveViews(good.string()).ok());
  }
  std::vector<fault::FaultHit> points;
  {
    auto rec = MakeEva();
    rec->fault_injector()->set_recording(true);
    ASSERT_TRUE(rec->LoadViews(good.string()).ok());
    points = rec->fault_injector()->hits();
  }
  ASSERT_GE(points.size(), 3u);

  for (const fault::FaultHit& hit : points) {
    const std::string label =
        hit.point + "#" + std::to_string(hit.occurrence);
    auto crashed = MakeEva();
    ASSERT_TRUE(crashed
                    ->SetFaultSchedule("crash@" + hit.point + "#" +
                                       std::to_string(hit.occurrence))
                    .ok());
    EXPECT_FALSE(crashed->LoadViews(good.string()).ok()) << label;

    auto fresh = MakeEva();
    ASSERT_TRUE(fresh->LoadViews(good.string()).ok()) << label;
    EXPECT_TRUE(fresh->last_recovery().clean()) << label;
    const double udf_ms =
        AssertSessionMatches(fresh.get(), baseline, "load crash " + label);
    EXPECT_DOUBLE_EQ(udf_ms, 0.0) << label;
  }
}

/// A torn MANIFEST (short write that still renamed into place) means
/// nothing in the directory can be verified: recovery quarantines every
/// managed file and the session recomputes from scratch — correct rows,
/// no overclaim.
TEST_F(CrashRecoveryTest, TornManifestQuarantinesEverything) {
  const std::vector<std::string> baseline = Baseline();
  auto engine = MakeEva();
  for (const std::string& sql : SessionSql()) {
    ASSERT_TRUE(engine->Execute(sql).ok());
  }
  const stdfs::path dir = root_ / "torn";
  ASSERT_TRUE(engine->SetFaultSchedule("shortwrite@fs.write:MANIFEST.tmp#1")
                  .ok());
  // The save itself reports success — a torn write is silent by nature.
  ASSERT_TRUE(engine->SaveViews(dir.string()).ok());
  ASSERT_TRUE(engine->SetFaultSchedule("").ok());

  auto fresh = MakeEva();
  ASSERT_TRUE(fresh->LoadViews(dir.string()).ok());
  const storage::RecoveryReport& report = fresh->last_recovery();
  EXPECT_TRUE(report.manifest_corrupt);
  EXPECT_FALSE(report.quarantined.empty());
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.Summary().find("MANIFEST corrupt"), std::string::npos);
  EXPECT_TRUE(fresh->views().views().empty())
      << "unverifiable views must not load";
  const double udf_ms =
      AssertSessionMatches(fresh.get(), baseline, "torn manifest");
  EXPECT_GT(udf_ms, 0.0) << "everything was quarantined; must recompute";
}

/// A torn view file is caught by its manifest checksum: the file is
/// quarantined, its symbolic coverage retracted, and the session recomputes
/// exactly that view's answers — rows stay bit-identical.
TEST_F(CrashRecoveryTest, TornViewFileIsQuarantinedAndCoverageRetracted) {
  const std::vector<std::string> baseline = Baseline();
  const std::string key = "FasterRCNNResNet50@cv";
  auto engine = MakeEva();
  for (const std::string& sql : SessionSql()) {
    ASSERT_TRUE(engine->Execute(sql).ok());
  }
  const stdfs::path dir = root_ / "tornview";
  ASSERT_TRUE(
      engine->SetFaultSchedule("shortwrite@fs.write:FasterRCNN*").ok());
  ASSERT_TRUE(engine->SaveViews(dir.string()).ok());
  ASSERT_TRUE(engine->SetFaultSchedule("").ok());

  auto fresh = MakeEva();
  ASSERT_TRUE(fresh->LoadViews(dir.string()).ok());
  const storage::RecoveryReport& report = fresh->last_recovery();
  ASSERT_EQ(report.quarantined.size(), 1u) << report.Summary();
  EXPECT_EQ(report.quarantined[0].view_key, key);
  EXPECT_EQ(report.quarantined[0].reason, "checksum mismatch");
  ASSERT_EQ(report.retracted.size(), 1u);
  EXPECT_EQ(report.retracted[0], key);
  // The lifecycle file claimed coverage for the torn view; retraction must
  // have cleared it so reuse cannot overclaim rows that no longer exist.
  EXPECT_FALSE(fresh->udf_manager().Coverage(key).Evaluate(
      [](const std::string&) { return Value(int64_t{0}); }));
  EXPECT_EQ(fresh->views().Find(key), nullptr);
  // The intact CarType view still loads.
  EXPECT_NE(fresh->views().Find("CarType@cv"), nullptr);
  const double udf_ms =
      AssertSessionMatches(fresh.get(), baseline, "torn view file");
  EXPECT_GT(udf_ms, 0.0) << "the detector view must be recomputed";

  // The quarantined copy is set aside on disk, not deleted.
  bool found_quarantined = false;
  for (const auto& entry : stdfs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 12 &&
        name.compare(name.size() - 12, 12, ".quarantined") == 0) {
      found_quarantined = true;
    }
  }
  EXPECT_TRUE(found_quarantined);
}

/// A permanent filesystem failure (fail@) during save must surface as an
/// error and leave the previous generation untouched.
TEST_F(CrashRecoveryTest, FailedRenameLeavesPreviousGenerationIntact) {
  const std::vector<std::string> baseline = Baseline();
  auto engine = MakeEva();
  for (const std::string& sql : SessionSql()) {
    ASSERT_TRUE(engine->Execute(sql).ok());
  }
  const stdfs::path dir = root_ / "failrename";
  ASSERT_TRUE(engine->SaveViews(dir.string()).ok());
  ASSERT_TRUE(engine->SetFaultSchedule("fail@fs.rename:MANIFEST#1").ok());
  EXPECT_FALSE(engine->SaveViews(dir.string()).ok());
  ASSERT_TRUE(engine->SetFaultSchedule("").ok());

  auto fresh = MakeEva();
  ASSERT_TRUE(fresh->LoadViews(dir.string()).ok());
  EXPECT_EQ(fresh->last_recovery().generation, 1);
  const double udf_ms = AssertSessionMatches(fresh.get(), baseline,
                                             "failed manifest rename");
  EXPECT_DOUBLE_EQ(udf_ms, 0.0);
}

/// Kill-points inside the compressed-segment write itself: crash at the
/// binary .evaseg codec file's tmp write and at its rename-into-place.
/// Either way the new generation never committed, so the previous one
/// reloads complete — zero UDF time, rows bit-identical.
TEST_F(CrashRecoveryTest, CompressedSegmentWriteCrashKeepsPreviousGen) {
  const std::vector<std::string> baseline = Baseline();
  auto engine = MakeEva();
  for (const std::string& sql : SessionSql()) {
    ASSERT_TRUE(engine->Execute(sql).ok());
  }
  const stdfs::path dir = root_ / "segcrash";
  ASSERT_TRUE(engine->SaveViews(dir.string()).ok());
  // The engine's saves write binary codec files; prove that's the format
  // under test before crashing inside it.
  bool saw_evaseg = false;
  for (const auto& entry : stdfs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 7 && name.substr(name.size() - 7) == ".evaseg") {
      saw_evaseg = true;
    }
  }
  ASSERT_TRUE(saw_evaseg) << "engine save should emit .evaseg codec files";

  for (const char* schedule : {"crash@fs.write:*.evaseg.tmp#1",
                               "crash@fs.rename:*.evaseg#1"}) {
    ASSERT_TRUE(engine->SetFaultSchedule(schedule).ok());
    Status s = engine->SaveViews(dir.string());
    EXPECT_FALSE(s.ok()) << schedule << ": crashed save reported success";
    EXPECT_GE(engine->fault_injector()->fired(), 1)
        << schedule << ": the scheduled crash never fired";
    ASSERT_TRUE(engine->SetFaultSchedule("").ok());

    auto fresh = MakeEva();
    ASSERT_TRUE(fresh->LoadViews(dir.string()).ok()) << schedule;
    const double udf_ms =
        AssertSessionMatches(fresh.get(), baseline, schedule);
    EXPECT_DOUBLE_EQ(udf_ms, 0.0)
        << schedule << ": the surviving generation should reuse everything";
  }
}

/// Forward/backward format interop: a v2 directory saved WITHOUT segment
/// compression (text .evaview files) loads into a compression-enabled
/// engine with full reuse, and a compressed save loads into a
/// compression-off engine the same way.
TEST_F(CrashRecoveryTest, UncompressedV2DirectoryInteropLoads) {
  const std::vector<std::string> baseline = Baseline();
  auto make = [&](bool compress) {
    engine::EngineOptions options;
    options.optimizer.mode = optimizer::ReuseMode::kEva;
    options.segment_compression = compress;
    options.bloom_bits_per_key = compress ? 10 : 0;
    auto er = vbench::MakeEngine(options, CrashVideo());
    EXPECT_TRUE(er.ok());
    return er.MoveValue();
  };
  for (bool save_compressed : {false, true}) {
    const stdfs::path dir =
        root_ / (save_compressed ? "from_seg" : "from_text");
    {
      auto writer = make(save_compressed);
      for (const std::string& sql : SessionSql()) {
        ASSERT_TRUE(writer->Execute(sql).ok());
      }
      ASSERT_TRUE(writer->SaveViews(dir.string()).ok());
      // The format on disk matches the writer's configuration.
      const std::string want = save_compressed ? ".evaseg" : ".evaview";
      bool found = false;
      for (const auto& entry : stdfs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > want.size() &&
            name.substr(name.size() - want.size()) == want) {
          found = true;
        }
      }
      ASSERT_TRUE(found) << dir;
    }
    auto reader = make(!save_compressed);
    ASSERT_TRUE(reader->LoadViews(dir.string()).ok());
    EXPECT_TRUE(reader->last_recovery().clean());
    const double udf_ms = AssertSessionMatches(
        reader.get(), baseline,
        save_compressed ? "seg save into text engine"
                        : "text save into seg engine");
    EXPECT_DOUBLE_EQ(udf_ms, 0.0) << "cross-format load must reuse fully";
  }
}

}  // namespace
}  // namespace eva::engine
