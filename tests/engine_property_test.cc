// Engine-level property test: for randomly generated exploratory sessions,
// (1) every reuse mode returns exactly the same rows as no-reuse, (2) EVA
// is never slower than no-reuse by more than the bounded reuse overhead,
// and (3) reused + evaluated invocation counts are consistent.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/eva_engine.h"
#include "vbench/vbench.h"

namespace eva::engine {
namespace {

using optimizer::ReuseMode;

catalog::VideoInfo PropertyVideo() {
  catalog::VideoInfo v;
  v.name = "prop";
  v.num_frames = 300;
  v.mean_objects_per_frame = 6;
  v.seed = 99;
  return v;
}

// Generates a random exploratory session: range zooms/shifts with random
// attribute constraints, mirroring vbench's refinement patterns.
std::vector<std::string> RandomSession(Rng& rng, int num_queries) {
  std::vector<std::string> out;
  int64_t lo = 0, hi = 150;
  for (int i = 0; i < num_queries; ++i) {
    switch (rng.NextBelow(3)) {
      case 0:  // shift
        lo = static_cast<int64_t>(rng.NextBelow(150));
        hi = lo + 50 + static_cast<int64_t>(rng.NextBelow(150));
        break;
      case 1:  // zoom out
        lo = std::max<int64_t>(0, lo - 30);
        hi = hi + 30;
        break;
      default:  // keep range, refine attributes
        break;
    }
    std::string where = "id >= " + std::to_string(lo) + " AND id < " +
                        std::to_string(std::min<int64_t>(hi, 300)) +
                        " AND label = 'car'";
    if (rng.NextBool(0.5)) {
      const auto& types = vision::VehicleTypes();
      where += " AND CarType(frame, bbox) = '" +
               types[rng.NextBelow(types.size())] + "'";
    }
    if (rng.NextBool(0.5)) {
      const auto& colors = vision::VehicleColors();
      where += " AND ColorDet(frame, bbox) = '" +
               colors[rng.NextBelow(colors.size())] + "'";
    }
    if (rng.NextBool(0.4)) {
      where += " AND area > 0." +
               std::to_string(5 + rng.NextBelow(30));
    }
    out.push_back("SELECT id, obj FROM prop CROSS APPLY "
                  "FasterRCNNResNet50(frame) WHERE " +
                  where + ";");
  }
  return out;
}

std::multiset<std::string> RowSet(const Batch& batch) {
  std::multiset<std::string> out;
  for (const Row& row : batch.rows()) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += "|";
    }
    out.insert(std::move(s));
  }
  return out;
}

class EnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnginePropertyTest, AllModesAgreeOnRandomSessions) {
  Rng rng(GetParam());
  std::vector<std::string> session = RandomSession(rng, 6);
  std::vector<std::vector<std::multiset<std::string>>> per_mode;
  std::vector<double> totals;
  for (ReuseMode mode : {ReuseMode::kNoReuse, ReuseMode::kHashStash,
                         ReuseMode::kFunCache, ReuseMode::kEva}) {
    auto er = vbench::MakeEngine(mode, PropertyVideo());
    ASSERT_TRUE(er.ok()) << er.status().ToString();
    auto engine = er.MoveValue();
    std::vector<std::multiset<std::string>> rows;
    double total = 0;
    for (const std::string& sql : session) {
      auto r = engine->Execute(sql);
      ASSERT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
      rows.push_back(RowSet(r.value().batch));
      total += r.value().metrics.TotalMs();
      // Reused never exceeds required invocations, per UDF.
      for (const auto& [udf, reused] : r.value().metrics.reused) {
        ASSERT_LE(reused, r.value().metrics.invocations.at(udf)) << udf;
      }
    }
    per_mode.push_back(std::move(rows));
    totals.push_back(total);
  }
  for (size_t mode = 1; mode < per_mode.size(); ++mode) {
    for (size_t q = 0; q < session.size(); ++q) {
      ASSERT_EQ(per_mode[0][q], per_mode[mode][q])
          << "mode " << mode << " diverges on query " << q << ": "
          << session[q];
    }
  }
  // EVA (last) must not exceed no-reuse (first) by more than 5%.
  EXPECT_LT(totals.back(), totals.front() * 1.05);
}

TEST_P(EnginePropertyTest, WarmRerunIsFullyReused) {
  Rng rng(GetParam() * 131 + 7);
  std::vector<std::string> session = RandomSession(rng, 4);
  auto er = vbench::MakeEngine(ReuseMode::kEva, PropertyVideo());
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  for (const std::string& sql : session) {
    ASSERT_TRUE(engine->Execute(sql).ok());
  }
  // Re-running the whole session must hit the views for every invocation
  // and charge zero UDF time.
  for (const std::string& sql : session) {
    auto r = engine->Execute(sql);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().metrics.TotalReused(),
              r.value().metrics.TotalInvocations())
        << sql;
    EXPECT_DOUBLE_EQ(r.value().metrics.breakdown[CostCategory::kUdf], 0.0)
        << sql;
  }
}

TEST_P(EnginePropertyTest, CoverageIsMonotone) {
  Rng rng(GetParam() * 977 + 13);
  std::vector<std::string> session = RandomSession(rng, 5);
  auto er = vbench::MakeEngine(ReuseMode::kEva, PropertyVideo());
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  int64_t prev_keys = 0;
  for (const std::string& sql : session) {
    ASSERT_TRUE(engine->Execute(sql).ok());
    int64_t keys = 0;
    for (const auto& [name, view] : engine->views().views()) {
      keys += view->num_keys();
    }
    EXPECT_GE(keys, prev_keys) << "materialized state shrank";
    prev_keys = keys;
  }
}

// Differential oracle: a session that suffers transient UDF faults (each
// retried with backoff) must return row-for-row exactly what the fault-free
// session returns. Faults may only cost simulated time, never change
// results.
TEST_P(EnginePropertyTest, TransientUdfFaultsAreInvisibleInResults) {
  Rng rng(GetParam() * 389 + 5);
  std::vector<std::string> session = RandomSession(rng, 4);

  std::vector<std::string> baseline;
  {
    auto er = vbench::MakeEngine(ReuseMode::kEva, PropertyVideo());
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    for (const std::string& sql : session) {
      auto r = engine->Execute(sql);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      baseline.push_back(r.value().batch.ToString(1 << 20));
    }
  }

  auto er = vbench::MakeEngine(ReuseMode::kEva, PropertyVideo());
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  // Every UDF invocation fails transiently twice, then succeeds on the
  // third attempt (udf_max_retries defaults to 3).
  ASSERT_TRUE(engine->SetFaultSchedule("error@udf:*#1-2").ok());
  int64_t retries = 0;
  for (size_t q = 0; q < session.size(); ++q) {
    auto r = engine->Execute(session[q]);
    ASSERT_TRUE(r.ok()) << session[q] << "\n" << r.status().ToString();
    EXPECT_EQ(r.value().batch.ToString(1 << 20), baseline[q])
        << "faulted session diverges on query " << q;
    retries += r.value().metrics.udf_retries;
  }
  EXPECT_GT(engine->fault_injector()->fired(), 0)
      << "the schedule never fired — the test proved nothing";
  EXPECT_GT(retries, 0);
}

// Same oracle at threads > 1: per-point occurrence counting makes the
// injected faults independent of worker interleaving, so rows AND
// simulated time must match the serial faulted run bit-for-bit.
TEST_P(EnginePropertyTest, TransientFaultsAreDeterministicAcrossThreads) {
  Rng rng(GetParam() * 389 + 5);
  std::vector<std::string> session = RandomSession(rng, 3);

  std::vector<std::string> rows_serial;
  std::vector<double> ms_serial;
  for (int threads : {1, 4}) {
    engine::EngineOptions options;
    options.optimizer.mode = ReuseMode::kEva;
    options.num_threads = threads;
    auto er = vbench::MakeEngine(options, PropertyVideo());
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    ASSERT_TRUE(engine->SetFaultSchedule("error@udf:*#1").ok());
    for (size_t q = 0; q < session.size(); ++q) {
      auto r = engine->Execute(session[q]);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      if (threads == 1) {
        rows_serial.push_back(r.value().batch.ToString(1 << 20));
        ms_serial.push_back(r.value().metrics.TotalMs());
      } else {
        EXPECT_EQ(r.value().batch.ToString(1 << 20), rows_serial[q])
            << "threads=4 rows diverge on query " << q;
        EXPECT_DOUBLE_EQ(r.value().metrics.TotalMs(), ms_serial[q])
            << "threads=4 simulated time diverges on query " << q;
      }
    }
    EXPECT_GT(engine->fault_injector()->fired(), 0);
  }
}

// When the transient fault outlasts the retry budget the query must fail
// with a clean error — and the coverage rollback must leave the engine in
// a state where clearing the fault yields exactly the right answer (no
// poisoned aggregated predicates claiming frames that never computed).
TEST_P(EnginePropertyTest, ExhaustedRetriesFailCleanlyAndRollBack) {
  Rng rng(GetParam() * 877 + 3);
  std::vector<std::string> session = RandomSession(rng, 2);

  std::vector<std::string> baseline;
  {
    auto er = vbench::MakeEngine(ReuseMode::kEva, PropertyVideo());
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    for (const std::string& sql : session) {
      auto r = engine->Execute(sql);
      ASSERT_TRUE(r.ok());
      baseline.push_back(r.value().batch.ToString(1 << 20));
    }
  }

  auto er = vbench::MakeEngine(ReuseMode::kEva, PropertyVideo());
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  // Outlasts the default 3 retries: every invocation of the first frame's
  // detector point keeps failing.
  ASSERT_TRUE(engine->SetFaultSchedule("error@udf:*#1-10").ok());
  auto failed = engine->Execute(session[0]);
  ASSERT_FALSE(failed.ok()) << "retry budget should have been exhausted";
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted)
      << failed.status().ToString();

  // Heal the fault; the session must now produce the fault-free rows from
  // the rolled-back state.
  ASSERT_TRUE(engine->SetFaultSchedule("").ok());
  for (size_t q = 0; q < session.size(); ++q) {
    auto r = engine->Execute(session[q]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().batch.ToString(1 << 20), baseline[q])
        << "post-rollback session diverges on query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace eva::engine
