// Stress tests for the concurrency-safe view store (docs/RUNTIME.md):
// concurrent probes and inserts of overlapping key ranges must leave the
// store in exactly the state a serial run produces, and registry lookups
// must hand every thread the same view object.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/row.h"
#include "storage/view_store.h"

namespace eva::storage {
namespace {

Schema TestSchema() {
  return Schema({{"label", DataType::kString}, {"score", DataType::kDouble}});
}

// Deterministic rows for a key, so every thread that puts `key` puts the
// same payload — exactly the situation when two morsels (or two queries)
// race to materialize the same frame's UDF result.
std::vector<Row> RowsForKey(int64_t frame) {
  std::vector<Row> rows;
  int n = static_cast<int>(frame % 3);  // 0..2 rows; 0 = presence-only key
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value("label" + std::to_string(frame)),
                    Value(static_cast<double>(frame) + 0.25 * i)});
  }
  return rows;
}

TEST(ViewStoreConcurrencyTest, OverlappingInsertsMatchSerialState) {
  constexpr int kThreads = 8;
  constexpr int64_t kSpan = 300;    // keys per thread
  constexpr int64_t kStride = 100;  // thread t covers [t*100, t*100+300)
  MaterializedView parallel("v", TestSchema());
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&parallel, t] {
        for (int64_t k = 0; k < kSpan; ++k) {
          int64_t frame = static_cast<int64_t>(t) * kStride + k;
          parallel.Put({frame, -1}, RowsForKey(frame));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  MaterializedView serial("v", TestSchema());
  for (int t = 0; t < kThreads; ++t) {
    for (int64_t k = 0; k < kSpan; ++k) {
      int64_t frame = static_cast<int64_t>(t) * kStride + k;
      serial.Put({frame, -1}, RowsForKey(frame));
    }
  }

  EXPECT_EQ(parallel.num_keys(), serial.num_keys());
  EXPECT_EQ(parallel.num_rows(), serial.num_rows());
  EXPECT_EQ(parallel.SizeBytes(), serial.SizeBytes());
  for (int64_t frame = 0;
       frame < static_cast<int64_t>(kThreads - 1) * kStride + kSpan;
       ++frame) {
    ViewKey key{frame, -1};
    ASSERT_EQ(parallel.Has(key), serial.Has(key)) << "frame " << frame;
    const std::vector<Row>& p = parallel.Get(key);
    const std::vector<Row>& s = serial.Get(key);
    ASSERT_EQ(p.size(), s.size()) << "frame " << frame;
    for (size_t r = 0; r < p.size(); ++r) {
      ASSERT_EQ(p[r].size(), s[r].size());
      for (size_t c = 0; c < p[r].size(); ++c) {
        EXPECT_EQ(p[r][c].ToString(), s[r][c].ToString());
      }
    }
  }
}

TEST(ViewStoreConcurrencyTest, ProbesDuringInsertsSeeConsistentEntries) {
  MaterializedView view("v", TestSchema());
  constexpr int64_t kKeys = 2000;
  std::atomic<bool> writer_done{false};
  std::atomic<int64_t> inconsistencies{0};
  std::thread writer([&] {
    for (int64_t frame = 0; frame < kKeys; ++frame) {
      view.Put({frame, -1}, RowsForKey(frame));
    }
    writer_done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!writer_done.load()) {
        for (int64_t frame = 0; frame < kKeys; frame += 37) {
          ViewKey key{frame, -1};
          if (view.Has(key)) {
            // Once present, an entry is immutable: it must hold exactly
            // the rows the writer put.
            if (view.Get(key).size() != RowsForKey(frame).size()) {
              inconsistencies.fetch_add(1);
            }
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_EQ(view.num_keys(), kKeys);
}

TEST(ViewStoreConcurrencyTest, GetOrCreateReturnsOneViewToAllThreads) {
  ViewStore store;
  constexpr int kThreads = 8;
  std::vector<MaterializedView*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &seen, t] {
      seen[static_cast<size_t>(t)] =
          store.GetOrCreate("shared@video", TestSchema());
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  EXPECT_EQ(store.views().size(), 1u);
}

TEST(ViewStoreConcurrencyTest, ConcurrentFindAndTotalsDoNotRace) {
  ViewStore store;
  for (int v = 0; v < 8; ++v) {
    MaterializedView* view =
        store.GetOrCreate("v" + std::to_string(v), TestSchema());
    for (int64_t frame = 0; frame < 50; ++frame) {
      view->Put({frame, -1}, RowsForKey(frame));
    }
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, &stop, t] {
      const ViewStore& cstore = store;
      while (!stop.load()) {
        const MaterializedView* view =
            cstore.Find("v" + std::to_string(t % 8));
        if (view != nullptr) {
          (void)view->num_rows();
        }
        (void)cstore.TotalSizeBytes();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.views().size(), 8u);
}

// Compressed-segment seal racing against batch probes: writers keep
// adding keys (which marks segments stale), a sealer thread re-seals with
// codecs + Bloom filters, and reader threads ProbeBatch throughout. Every
// hit's reconstructed row must match the deterministic payload — a torn
// codec lane or a swapped-mid-read segment would surface here (and under
// TSan in CI).
TEST(ViewStoreConcurrencyTest, ProbesDuringCompressedSealStayExact) {
  MaterializedView view("v", TestSchema());
  view.set_segment_frames(64);
  view.set_build_options({/*compress=*/true, /*bloom_bits_per_key=*/10});
  constexpr int64_t kKeys = 4000;
  std::atomic<bool> writer_done{false};
  std::atomic<int64_t> mismatches{0};
  std::thread writer([&] {
    for (int64_t frame = 0; frame < kKeys; ++frame) {
      view.Put({frame, -1}, RowsForKey(frame));
    }
    writer_done.store(true);
  });
  std::thread sealer([&] {
    while (!writer_done.load()) view.SealAllSegments();
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::vector<ViewKey> probes;
      for (int64_t frame = 0; frame < kKeys; frame += 13) {
        probes.push_back({frame, -1});
      }
      ProbeResult res;
      while (!writer_done.load()) {
        res.Clear();
        view.ProbeBatch(probes, nullptr, &res);
        for (size_t i = 0; i < probes.size(); ++i) {
          const ProbeOutcome& oc = res.outcomes[i];
          if (oc.status != ProbeStatus::kHit) continue;
          std::vector<Row> want = RowsForKey(probes[i].frame);
          if (oc.rows_count != static_cast<int32_t>(want.size())) {
            mismatches.fetch_add(1);
            continue;
          }
          for (int32_t j = 0; j < oc.rows_count; ++j) {
            Row got = res.segment(oc).RowAt(oc.rows_begin + j);
            if (got.size() != want[j].size() ||
                got[0] != want[j][0] || got[1] != want[j][1]) {
              mismatches.fetch_add(1);
            }
          }
        }
      }
    });
  }
  writer.join();
  sealer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(view.num_keys(), kKeys);
}

}  // namespace
}  // namespace eva::storage
