// Tests for the parallel runtime (src/runtime/): pool lifecycle, ParallelFor
// coverage, exception propagation, work stealing under skew, morsel
// splitting, and the ChargeLog replay contract (docs/RUNTIME.md).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_clock.h"
#include "runtime/morsel.h"
#include "runtime/thread_pool.h"

namespace eva::runtime {
namespace {

TEST(ThreadPoolTest, StartStopRepeatedly) {
  for (int round = 0; round < 3; ++round) {
    for (int n : {0, 1, 2, 4}) {
      ThreadPool pool(n);
      EXPECT_EQ(pool.num_threads(), n);
    }
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the deques empty
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, InlinePoolRunsOnCallerInOrder) {
  ThreadPool pool(0);
  std::vector<int64_t> order;
  pool.ParallelFor(16, [&](int64_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (int64_t i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 2000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesLowestIndexException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(200, [&](int64_t i) {
      if (i == 37) throw std::runtime_error("boom-37");
      if (i == 150) throw std::runtime_error("boom-150");
      completed.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom-37");
  }
  // Every non-throwing index still ran: an exception skips only its own
  // index's work.
  EXPECT_EQ(completed.load(), 198);
}

TEST(ThreadPoolTest, WorkStealsFromSkewedDeque) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> executors;
  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  // Pin every task to worker 0's deque; the only way another worker runs
  // one is by stealing it.
  for (int i = 0; i < kTasks; ++i) {
    pool.SubmitTo(0, [&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      {
        std::lock_guard<std::mutex> lock(mu);
        executors.insert(std::this_thread::get_id());
      }
      ran.fetch_add(1);
    });
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ran.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(ran.load(), kTasks);
  // With 64 x 2ms tasks on one deque and three idle workers, stealing is
  // effectively certain even on a single hardware core (sleeping tasks
  // yield the core to the other OS threads).
  EXPECT_GE(executors.size(), 2u);
}

TEST(ThreadPoolTest, SubmitRoundRobinCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ran.load() < 100 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ResolveThreadsPrefersExplicitValue) {
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7);
  setenv("EVA_THREADS", "4", 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(2), 2);  // explicit beats env
  EXPECT_EQ(ThreadPool::ResolveThreads(0), 4);  // 0 defers to env
  setenv("EVA_THREADS", "garbage", 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), 1);  // invalid env -> serial
  setenv("EVA_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), 1);
  unsetenv("EVA_THREADS");
  EXPECT_EQ(ThreadPool::ResolveThreads(0), 1);
}

TEST(MorselTest, SplitCoversRangeExactly) {
  for (int64_t n : {0, 1, 127, 128, 129, 1000}) {
    std::vector<Morsel> morsels = SplitMorsels(n, 128);
    int64_t expect_begin = 0;
    for (const Morsel& m : morsels) {
      EXPECT_EQ(m.begin, expect_begin);
      EXPECT_GT(m.end, m.begin);
      EXPECT_LE(m.size(), 128);
      expect_begin = m.end;
    }
    EXPECT_EQ(expect_begin, n);
    if (n > 0) {
      EXPECT_EQ(static_cast<int64_t>(morsels.size()), (n + 127) / 128);
    }
  }
}

TEST(MorselTest, SplitIndependentOfThreadCountByConstruction) {
  // The API takes no thread count at all; assert the shape is a pure
  // function of (n, morsel_rows).
  EXPECT_EQ(SplitMorsels(1000, 128).size(), SplitMorsels(1000, 128).size());
  std::vector<Morsel> a = SplitMorsels(777, 100);
  std::vector<Morsel> b = SplitMorsels(777, 100);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(ChargeLogTest, ReplayIsBitIdenticalToDirectCharges) {
  // The same sequence of charges, once direct and once via log + replay,
  // must leave the clock in the exact same floating-point state.
  std::vector<std::pair<CostCategory, double>> charges;
  double v = 0.1;
  for (int i = 0; i < 500; ++i) {
    charges.emplace_back(
        static_cast<CostCategory>(
            i % static_cast<int>(CostCategory::kNumCategories)),
        v);
    v = v * 1.9 + 0.0001;  // awkward doubles on purpose
    if (v > 1e6) v = 0.1;
  }
  SimClock direct;
  for (const auto& [c, ms] : charges) direct.Charge(c, ms);
  SimClock replayed;
  ChargeLog log;
  for (const auto& [c, ms] : charges) log.Charge(c, ms);
  log.ReplayInto(&replayed);
  SimClock::Snapshot a = direct.TakeSnapshot();
  SimClock::Snapshot b = replayed.TakeSnapshot();
  for (size_t i = 0;
       i < static_cast<size_t>(CostCategory::kNumCategories); ++i) {
    EXPECT_EQ(a.ms[i], b.ms[i]);  // bitwise, not approx
  }
  EXPECT_EQ(direct.TotalMs(), replayed.TotalMs());
}

TEST(SpinForTest, NonPositiveIsNoOpAndPositiveWaits) {
  SpinFor(0);
  SpinFor(-5);
  auto start = std::chrono::steady_clock::now();
  SpinFor(200);  // 200us
  auto elapsed = std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 180.0);
}

}  // namespace
}  // namespace eva::runtime
