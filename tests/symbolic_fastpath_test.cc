// Differential property tests for the symbolic fast path
// (docs/SYMBOLIC.md): the interval-indexed AND, the incremental union, and
// the whole UdfManager coverage surface with the fast path on must be
// bit-identical — cell for cell, error for error — to the brute-force
// implementations, across seeded random predicate algebra that includes
// eviction (Retract) and recovery (SetCoverage) shapes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "symbolic/cell_index.h"
#include "symbolic/predicate.h"
#include "symbolic/predicate_intern.h"
#include "udf/udf_manager.h"

namespace eva::symbolic {
namespace {

const char* kIntDim = "id";
const char* kRealDim = "area";
const char* kCatDim = "label";
const std::vector<std::string> kLabels = {"car", "bus", "truck"};

// Random atomic constraint; mirrors predicate_property_test's universe so
// intersections are frequently (but not always) non-empty.
std::pair<std::string, DimConstraint> RandomAtom(Rng& rng) {
  switch (rng.NextBelow(4)) {
    case 0: {
      double v = static_cast<double>(rng.NextBelow(200));
      if (rng.NextBool(0.5)) {
        return {kIntDim,
                DimConstraint::Numeric(DimKind::kInteger,
                                       Interval::AtLeast(v))};
      }
      return {kIntDim, DimConstraint::Numeric(DimKind::kInteger,
                                              Interval::LessThan(v))};
    }
    case 1:
      return {kIntDim, DimConstraint::NumericNotEqual(
                           DimKind::kInteger,
                           static_cast<double>(rng.NextBelow(200)))};
    case 2: {
      double v = 0.05 * static_cast<double>(rng.NextBelow(20));
      if (rng.NextBool(0.5)) {
        return {kRealDim, DimConstraint::Numeric(DimKind::kReal,
                                                 Interval::GreaterThan(v))};
      }
      return {kRealDim,
              DimConstraint::Numeric(DimKind::kReal, Interval::AtMost(v))};
    }
    default: {
      const std::string& v = kLabels[rng.NextBelow(kLabels.size())];
      return {kCatDim, DimConstraint::Categorical({v}, rng.NextBool(0.3))};
    }
  }
}

Conjunct RandomConjunct(Rng& rng, int max_atoms) {
  Conjunct c;
  int na = 1 + static_cast<int>(rng.NextBelow(max_atoms));
  for (int a = 0; a < na; ++a) {
    auto [dim, constraint] = RandomAtom(rng);
    if (!c.Constrain(dim, constraint)) return RandomConjunct(rng, max_atoms);
  }
  return c;
}

Predicate RandomPredicate(Rng& rng, int max_conjuncts, int max_atoms) {
  Predicate p;
  int nc = 1 + static_cast<int>(rng.NextBelow(max_conjuncts));
  for (int i = 0; i < nc; ++i) p.AddConjunct(RandomConjunct(rng, max_atoms));
  return p;
}

// A disjoint-ish id range, the shape streaming coverage actually grows.
Predicate IdRange(double lo, double hi) {
  Conjunct c;
  c.Constrain(kIntDim, DimConstraint::Numeric(DimKind::kInteger,
                                              Interval::AtLeast(lo)));
  c.Constrain(kIntDim, DimConstraint::Numeric(DimKind::kInteger,
                                              Interval::LessThan(hi)));
  return Predicate::FromConjunct(std::move(c));
}

void ExpectIdenticalResults(const Result<Predicate>& fast,
                            const Result<Predicate>& brute,
                            const std::string& what) {
  ASSERT_EQ(fast.ok(), brute.ok()) << what;
  if (!fast.ok()) {
    EXPECT_EQ(fast.status().ToString(), brute.status().ToString()) << what;
    return;
  }
  EXPECT_TRUE(PredicateIdentical(fast.value(), brute.value()))
      << what << "\nfast:  " << fast.value().ToString()
      << "\nbrute: " << brute.value().ToString();
}

// --- hull soundness ------------------------------------------------------

TEST(SymbolicFastpathTest, HullDisjointImpliesEmptyIntersection) {
  Rng rng(0x5eed0001);
  int disjoint = 0;
  for (int i = 0; i < 2000; ++i) {
    Conjunct a = RandomConjunct(rng, 3);
    Conjunct b = RandomConjunct(rng, 3);
    if (HullDisjoint(a, b)) {
      ++disjoint;
      EXPECT_FALSE(a.Intersect(b).has_value())
          << a.ToString() << " vs " << b.ToString();
    }
  }
  // The generator must actually exercise the disjoint branch.
  EXPECT_GT(disjoint, 50);
}

// --- indexed AND ---------------------------------------------------------

TEST(SymbolicFastpathTest, IndexedAndMatchesBruteForceCellForCell) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(0xabc000 + seed);
    Predicate a = RandomPredicate(rng, 8, 3);
    a.Reduce();
    Predicate b = RandomPredicate(rng, 6, 3);
    auto index = CellIndex::Build(a);
    PruneStats prune;
    auto fast = IndexedAnd(a, index.get(), b, SymbolicBudget{}, &prune);
    auto brute = Predicate::And(a, b);
    ExpectIdenticalResults(fast, brute, "seed " + std::to_string(seed));
  }
}

TEST(SymbolicFastpathTest, IndexedAndReplaysBudgetErrors) {
  // Force the conjunct budget to blow: the fast path must return the same
  // error the brute force returns, not a truncated predicate.
  Rng rng(0x77);
  Predicate a = RandomPredicate(rng, 8, 2);
  Predicate b = RandomPredicate(rng, 8, 2);
  SymbolicBudget tiny;
  tiny.max_conjuncts = 2;
  auto index = CellIndex::Build(a);
  auto fast = IndexedAnd(a, index.get(), b, tiny);
  auto brute = Predicate::And(a, b, tiny);
  ExpectIdenticalResults(fast, brute, "tiny budget");
}

// --- incremental union ---------------------------------------------------

TEST(SymbolicFastpathTest, IncrementalUnionMatchesBruteForce) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(0xdef000 + seed);
    // Base must sit at the reduction fixpoint — that is the manager's
    // precondition for taking the incremental path.
    Predicate base = RandomPredicate(rng, 6, 3);
    bool base_fix = base.Reduce();
    if (!base_fix) continue;
    Predicate q = RandomPredicate(rng, 4, 3);

    Predicate incr = base;
    bool incr_fix = true;
    bool changed = incr.UnionIncrementalInPlace(q, SymbolicBudget{},
                                                &incr_fix);

    Predicate brute = base;
    for (const Conjunct& c : q.conjuncts()) brute.AddConjunct(c);
    bool brute_fix = brute.Reduce();

    EXPECT_TRUE(PredicateIdentical(incr, brute))
        << "seed " << seed << "\nincr:  " << incr.ToString()
        << "\nbrute: " << brute.ToString();
    EXPECT_EQ(incr_fix, brute_fix) << "seed " << seed;
    EXPECT_EQ(changed, !PredicateIdentical(incr, base)) << "seed " << seed;
  }
}

TEST(SymbolicFastpathTest, IncrementalUnionStreamingHorizonExtension) {
  // The streaming shape: coverage [0, t) repeatedly extended to [0, t').
  // The incremental path must merge in place and report no change when the
  // tick is already covered.
  Predicate cov = IdRange(0, 100);
  ASSERT_TRUE(cov.Reduce());
  bool fix = true;
  EXPECT_TRUE(cov.UnionIncrementalInPlace(IdRange(100, 200), {}, &fix));
  EXPECT_TRUE(fix);
  EXPECT_EQ(cov.conjuncts().size(), 1u);
  EXPECT_TRUE(PredicateIdentical(cov, IdRange(0, 200)));
  // Already-covered tick: no change.
  EXPECT_FALSE(cov.UnionIncrementalInPlace(IdRange(50, 150), {}, &fix));
  EXPECT_TRUE(fix);
  EXPECT_TRUE(PredicateIdentical(cov, IdRange(0, 200)));
}

// --- fingerprints --------------------------------------------------------

TEST(SymbolicFastpathTest, CanonicalHashIsOrderInsensitive) {
  Predicate ab;
  ab.AddConjunct(IdRange(0, 10).conjuncts()[0]);
  ab.AddConjunct(IdRange(20, 30).conjuncts()[0]);
  Predicate ba;
  ba.AddConjunct(IdRange(20, 30).conjuncts()[0]);
  ba.AddConjunct(IdRange(0, 10).conjuncts()[0]);
  EXPECT_EQ(CanonicalPredicateHash(ab), CanonicalPredicateHash(ba));
  EXPECT_NE(FingerprintPredicate(ab), FingerprintPredicate(Predicate()));
  EXPECT_NE(CanonicalPredicateHash(ab),
            CanonicalPredicateHash(IdRange(0, 10)));
}

// --- whole-manager differential -----------------------------------------

// Drives two managers — fast path on vs off — through the same random op
// sequence (update / retract / wholesale set / inter / diff) and demands
// identical coverage and identical op results at every step, including the
// shapes left behind by evictions and recovery reloads.
TEST(SymbolicFastpathTest, TwinManagerDifferential) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(0xfeed00 + seed);
    udf::UdfManager fast;
    udf::UdfManager brute;
    brute.set_symbolic_fastpath(false);
    const std::vector<std::string> keys = {"det@v", "cls@v"};

    for (int step = 0; step < 120; ++step) {
      const std::string& key = keys[rng.NextBelow(keys.size())];
      switch (rng.NextBelow(6)) {
        case 0:
        case 1: {  // streaming-ish union
          double lo = static_cast<double>(rng.NextBelow(180));
          Predicate q = IdRange(lo, lo + 1 + rng.NextBelow(40));
          fast.UpdateCoverage(key, q);
          brute.UpdateCoverage(key, q);
          break;
        }
        case 2: {  // arbitrary-shape union
          Predicate q = RandomPredicate(rng, 3, 3);
          fast.UpdateCoverage(key, q);
          brute.UpdateCoverage(key, q);
          break;
        }
        case 3: {  // eviction
          Predicate ev = RandomPredicate(rng, 2, 2);
          fast.RetractCoverage(key, ev);
          brute.RetractCoverage(key, ev);
          break;
        }
        case 4: {  // recovery reload
          Predicate loaded = RandomPredicate(rng, 3, 3);
          fast.SetCoverage(key, loaded);
          brute.SetCoverage(key, loaded);
          break;
        }
        default: {  // lookups
          Predicate q = RandomPredicate(rng, 3, 3);
          ExpectIdenticalResults(fast.InterCoverage(key, q),
                                 brute.InterCoverage(key, q),
                                 "inter @ step " + std::to_string(step));
          // Repeat to force a cache hit on the fast manager.
          ExpectIdenticalResults(fast.InterCoverage(key, q),
                                 brute.InterCoverage(key, q),
                                 "inter(hit) @ step " + std::to_string(step));
          ExpectIdenticalResults(fast.DiffCoverage(key, q),
                                 brute.DiffCoverage(key, q),
                                 "diff @ step " + std::to_string(step));
          break;
        }
      }
      ASSERT_TRUE(
          PredicateIdentical(fast.Coverage(key), brute.Coverage(key)))
          << "seed " << seed << " step " << step
          << "\nfast:  " << fast.Coverage(key).ToString()
          << "\nbrute: " << brute.Coverage(key).ToString();
    }
    EXPECT_GT(fast.symbolic_cache_stats().hits, 0);
  }
}

}  // namespace
}  // namespace eva::symbolic
