// Streaming ingestion + incremental view maintenance (docs/STREAMING.md):
// views materialized at an earlier horizon are extended along the frame-id
// dimension as ingestion advances, never invalidated — so the shared-store
// hit rate climbs tick over tick. Also the optimizer's horizon clamp
// (coverage never claims unarrived frames), the persistence busy guard
// over ingestion flushes, the WAL/ingest observability surface (events,
// metrics, the /ingest endpoint), and checkpointing through the service
// FIFO.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/eva_engine.h"
#include "service/eva_service.h"
#include "symbolic/predicate.h"
#include "vbench/vbench.h"

namespace eva::engine {
namespace {

namespace stdfs = std::filesystem;

constexpr int64_t kTotal = 160;
constexpr int64_t kInitial = 40;
constexpr int64_t kTick = 40;
const char kSource[] = "sv";
const char kDetectorKey[] = "FasterRCNNResNet50@sv";
const char kProbe[] =
    "SELECT id, obj FROM sv CROSS APPLY FasterRCNNResNet50(frame) "
    "WHERE label = 'car';";

catalog::VideoInfo StreamVideo() {
  catalog::VideoInfo v;
  v.name = kSource;
  v.mean_objects_per_frame = 6;
  v.seed = 23;
  return v;
}

std::unique_ptr<EvaEngine> MakeStreamEngine(
    int64_t initial, engine::EngineOptions options = {}) {
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  auto engine =
      std::make_unique<EvaEngine>(options, std::make_shared<catalog::Catalog>());
  EXPECT_TRUE(vbench::RegisterStandardUdfs(engine.get()).ok());
  ingest::StreamOptions sopts;
  sopts.initial_frames = initial;
  sopts.total_frames = kTotal;
  EXPECT_TRUE(engine->RegisterStream(StreamVideo(), sopts).ok());
  return engine;
}

std::string TempDir(const std::string& stem) {
  stdfs::path p = stdfs::temp_directory_path() /
                  (stem + "." + std::to_string(::getpid()));
  stdfs::remove_all(p);
  return p.string();
}

struct HttpReply {
  int status = -1;
  std::string body;
};

HttpReply HttpGet(int port, const std::string& target) {
  HttpReply reply;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  std::string req = "GET " + target +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n"
                    "\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return reply;
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (raw.rfind("HTTP/1.1 ", 0) == 0 && raw.size() > 12) {
    reply.status = std::atoi(raw.c_str() + 9);
  }
  size_t sep = raw.find("\r\n\r\n");
  if (sep != std::string::npos) reply.body = raw.substr(sep + 4);
  return reply;
}

/// The headline behavior: re-running the same exploratory query as the
/// stream grows reuses every previously-materialized frame — coverage is
/// extended, not invalidated — so the per-run hit rate climbs monotonically
/// toward 100%.
TEST(StreamingTest, HitRateClimbsAcrossIngestTicks) {
  auto engine = MakeStreamEngine(kInitial);
  std::vector<int64_t> invocations;
  std::vector<int64_t> reused;
  std::vector<double> hit_pct;
  for (int tick = 0;; ++tick) {
    auto r = engine->Execute(kProbe);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const auto& m = r.value().metrics;
    invocations.push_back(m.TotalInvocations());
    reused.push_back(m.TotalReused());
    hit_pct.push_back(m.TotalInvocations() == 0
                          ? 0
                          : 100.0 * static_cast<double>(m.TotalReused()) /
                                static_cast<double>(m.TotalInvocations()));
    auto sources = engine->ingestor().Sources();
    ASSERT_EQ(sources.size(), 1u);
    if (sources[0].visible >= kTotal) break;
    auto tick_r = engine->IngestFrames(kSource, kTick);
    ASSERT_TRUE(tick_r.ok()) << tick_r.status().ToString();
    EXPECT_EQ(tick_r.value().flushed, kTick);
  }
  ASSERT_EQ(hit_pct.size(), 4u);  // horizons 40, 80, 120, 160
  EXPECT_EQ(reused[0], 0) << "nothing to reuse on the first run";
  for (size_t t = 1; t < hit_pct.size(); ++t) {
    // Incremental maintenance, exactly: every tuple the previous run
    // required is reused by this one — only the newly arrived frames are
    // computed.
    EXPECT_EQ(reused[t], invocations[t - 1])
        << "tick " << t << " recomputed frames the store already held";
    EXPECT_GT(hit_pct[t], hit_pct[t - 1])
        << "tick " << t << ": hit rate must climb as the stream grows";
  }
  EXPECT_GE(hit_pct.back(), 70.0);

  // Soundness at the final horizon: rows equal a cold engine's.
  auto cold = MakeStreamEngine(kTotal);
  auto expect = cold->Execute(kProbe);
  auto got = engine->Execute(kProbe);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().batch.ToString(1 << 20),
            expect.value().batch.ToString(1 << 20));
}

/// The optimizer clamp: a full-range query at horizon H claims coverage
/// only for frames below H — the aggregated predicate must have an empty
/// intersection with [H, inf).
TEST(StreamingTest, CoverageNeverClaimsPastTheHorizon) {
  auto engine = MakeStreamEngine(kInitial);
  ASSERT_TRUE(engine->Execute(kProbe).ok());
  const symbolic::SymbolicBudget budget;
  const symbolic::Predicate beyond = symbolic::Predicate::Atom(
      exec::kColId,
      symbolic::DimConstraint::Numeric(
          symbolic::DimKind::kInteger,
          symbolic::Interval::AtLeast(static_cast<double>(kInitial))));
  auto overlap = symbolic::Predicate::Inter(
      engine->udf_manager().Coverage(kDetectorKey), beyond, budget);
  ASSERT_TRUE(overlap.ok());
  EXPECT_TRUE(overlap.value().DefinitelyFalse())
      << "coverage claims frames the stream has not delivered";

  // After one tick the clamp moves with the horizon.
  ASSERT_TRUE(engine->IngestFrames(kSource, kTick).ok());
  ASSERT_TRUE(engine->Execute(kProbe).ok());
  const symbolic::Predicate beyond2 = symbolic::Predicate::Atom(
      exec::kColId,
      symbolic::DimConstraint::Numeric(
          symbolic::DimKind::kInteger,
          symbolic::Interval::AtLeast(
              static_cast<double>(kInitial + kTick))));
  auto overlap2 = symbolic::Predicate::Inter(
      engine->udf_manager().Coverage(kDetectorKey), beyond2, budget);
  ASSERT_TRUE(overlap2.ok());
  EXPECT_TRUE(overlap2.value().DefinitelyFalse());
  auto within = symbolic::Predicate::Inter(
      engine->udf_manager().Coverage(kDetectorKey), beyond, budget);
  ASSERT_TRUE(within.ok());
  EXPECT_FALSE(within.value().DefinitelyFalse())
      << "the second run should claim the newly visible frames";
}

/// Regression for the busy-guard gap: a snapshot taken in the middle of an
/// ingestion flush would tear the horizon (rows visible, advance not yet
/// recorded). SaveViews/LoadViews must fail FailedPrecondition for the
/// whole duration of the flush — the hook below runs inside the window
/// after the flush size is fixed and before the horizon advances.
TEST(StreamingTest, PersistenceBusyGuardCoversIngestFlush) {
  const std::string wal_dir = TempDir("eva_streaming_guard");
  const std::string snap_dir = TempDir("eva_streaming_guard_snap");
  auto engine = MakeStreamEngine(kInitial);
  ASSERT_TRUE(engine->EnableWal(wal_dir).ok());
  ASSERT_TRUE(engine->Execute(kProbe).ok());

  Status save_in_flush, load_in_flush, checkpoint_in_flush;
  engine->ingestor_for_test()->set_flush_hook(
      [&engine, &snap_dir, &save_in_flush, &load_in_flush,
       &checkpoint_in_flush] {
        save_in_flush = engine->SaveViews(snap_dir);
        load_in_flush = engine->LoadViews(snap_dir);
        checkpoint_in_flush = engine->Checkpoint();
      });
  ASSERT_TRUE(engine->IngestFrames(kSource, kTick).ok());
  engine->ingestor_for_test()->set_flush_hook(nullptr);

  EXPECT_EQ(save_in_flush.code(), StatusCode::kFailedPrecondition)
      << save_in_flush.ToString();
  EXPECT_EQ(load_in_flush.code(), StatusCode::kFailedPrecondition)
      << load_in_flush.ToString();
  EXPECT_EQ(checkpoint_in_flush.code(), StatusCode::kFailedPrecondition)
      << checkpoint_in_flush.ToString();

  // Outside the flush the rules are: snapshot exports to a foreign
  // directory work, loads are rejected while the WAL owns durable state,
  // and saves into the WAL directory fold into a checkpoint.
  EXPECT_TRUE(engine->SaveViews(snap_dir).ok());
  Status load = engine->LoadViews(snap_dir);
  EXPECT_EQ(load.code(), StatusCode::kFailedPrecondition)
      << load.ToString();
  EXPECT_TRUE(engine->SaveViews(wal_dir).ok());
  EXPECT_TRUE(stdfs::exists(stdfs::path(wal_dir) / "wal.g1.evalog"))
      << "SaveViews into the WAL directory must checkpoint, not snapshot";

  stdfs::remove_all(wal_dir);
  stdfs::remove_all(snap_dir);
}

/// The observability surface: typed JSONL events for every WAL append /
/// ingest flush / checkpoint / replay, and the streaming counters and lag
/// gauge in the metrics registry.
TEST(StreamingTest, WalAndIngestEventsAndMetricsAreEmitted) {
  const std::string wal_dir = TempDir("eva_streaming_obs");
  const std::string log_path = TempDir("eva_streaming_events") + ".jsonl";
  obs::MetricsRegistry local;
  {
    engine::EngineOptions options;
    options.event_log_path = log_path;
    auto engine = MakeStreamEngine(kInitial, options);
    engine->set_metrics_registry(&local);
    ASSERT_NE(engine->event_log(), nullptr);
    ASSERT_TRUE(engine->EnableWal(wal_dir).ok());
    ASSERT_TRUE(engine->Execute(kProbe).ok());
    ASSERT_TRUE(engine->IngestFrames(kSource, kTick).ok());
    ASSERT_TRUE(engine->Checkpoint().ok());
  }

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"type\":\"replay_done\""), std::string::npos);
  EXPECT_NE(all.find("\"type\":\"wal_append\""), std::string::npos);
  EXPECT_NE(all.find("\"type\":\"ingest_flush\""), std::string::npos);
  EXPECT_NE(all.find("\"type\":\"wal_checkpoint\""), std::string::npos);

  const std::string prom = local.RenderPrometheus();
  EXPECT_NE(prom.find("eva_wal_records_total"), std::string::npos);
  EXPECT_NE(prom.find("eva_wal_bytes_total"), std::string::npos);
  EXPECT_NE(prom.find("eva_wal_checkpoints_total"), std::string::npos);
  EXPECT_NE(prom.find("eva_ingest_frames_total"), std::string::npos);
  EXPECT_NE(prom.find("eva_ingest_lag_frames"), std::string::npos);

  stdfs::remove_all(wal_dir);
  std::remove(log_path.c_str());
}

/// The /ingest endpoint serves a pre-rendered snapshot of every stream's
/// horizon and the WAL's committed totals, and it advances tick by tick.
TEST(StreamingTest, IngestEndpointServesLiveSnapshot) {
  const std::string wal_dir = TempDir("eva_streaming_http");
  auto engine = MakeStreamEngine(kInitial);
  ASSERT_TRUE(engine->EnableWal(wal_dir).ok());
  ASSERT_TRUE(engine->StartTelemetryServer(0).ok());
  const int port = engine->telemetry_port();
  ASSERT_GT(port, 0);

  HttpReply before = HttpGet(port, "/ingest");
  EXPECT_EQ(before.status, 200);
  EXPECT_NE(before.body.find("\"wal_enabled\":true"), std::string::npos)
      << before.body;
  EXPECT_NE(before.body.find("\"name\":\"sv\""), std::string::npos);
  EXPECT_NE(before.body.find("\"visible\":40"), std::string::npos);

  ASSERT_TRUE(engine->Execute(kProbe).ok());
  ASSERT_TRUE(engine->IngestFrames(kSource, kTick).ok());
  HttpReply after = HttpGet(port, "/ingest");
  EXPECT_EQ(after.status, 200);
  EXPECT_NE(after.body.find("\"visible\":80"), std::string::npos)
      << after.body;
  EXPECT_NE(after.body.find("\"lag_frames\":0"), std::string::npos);

  engine->StopTelemetryServer();
  stdfs::remove_all(wal_dir);
}

/// Ingestion and checkpoints ride the service FIFO like every other op, so
/// a full streaming session — queries interleaved with ticks, a checkpoint
/// in the middle — recovers bit-identically through a fresh engine.
TEST(StreamingTest, ServiceSerializedSessionSurvivesRestart) {
  const std::string wal_dir = TempDir("eva_streaming_svc");
  std::string rows_before;
  int64_t horizon_before = 0;
  {
    auto engine = MakeStreamEngine(kInitial);
    ASSERT_TRUE(engine->EnableWal(wal_dir).ok());
    service::EvaService svc(std::move(engine));
    auto session = svc.CreateSession("streamer");
    ASSERT_TRUE(svc.Execute(session->id(), kProbe).ok());
    auto tick = svc.Ingest(kSource, kTick);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    EXPECT_EQ(tick.value().visible, kInitial + kTick);
    ASSERT_TRUE(svc.Checkpoint().ok());
    ASSERT_TRUE(svc.Ingest(kSource, kTick).ok());
    auto r = svc.Execute(session->id(), kProbe);
    ASSERT_TRUE(r.ok());
    rows_before = r.value().batch.ToString(1 << 20);
    horizon_before = kInitial + 2 * kTick;
    svc.Drain();
  }

  auto recovered = MakeStreamEngine(kInitial);
  ASSERT_TRUE(recovered->EnableWal(wal_dir).ok())
      << recovered->last_replay().Summary();
  auto sources = recovered->ingestor().Sources();
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0].visible, horizon_before);
  auto r = recovered->Execute(kProbe);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().batch.ToString(1 << 20), rows_before);
  EXPECT_DOUBLE_EQ(r.value().metrics.breakdown[CostCategory::kUdf], 0.0)
      << "the recovered session should reuse everything it had computed";

  stdfs::remove_all(wal_dir);
}

/// RegisterStream ordering and argument contracts.
TEST(StreamingTest, RegisterStreamContracts) {
  const std::string wal_dir = TempDir("eva_streaming_contracts");
  auto engine = MakeStreamEngine(kInitial);
  ASSERT_TRUE(engine->EnableWal(wal_dir).ok());

  catalog::VideoInfo late = StreamVideo();
  late.name = "late";
  ingest::StreamOptions sopts;
  sopts.total_frames = kTotal;
  Status after_wal = engine->RegisterStream(late, sopts);
  EXPECT_EQ(after_wal.code(), StatusCode::kFailedPrecondition)
      << "streams must be registered before EnableWal";

  auto fresh = std::make_unique<EvaEngine>(
      engine::EngineOptions{}, std::make_shared<catalog::Catalog>());
  ingest::StreamOptions unbounded;
  unbounded.total_frames = 0;
  EXPECT_EQ(fresh->RegisterStream(StreamVideo(), unbounded).code(),
            StatusCode::kInvalidArgument)
      << "unbounded streams cannot pre-derive frame content";

  stdfs::remove_all(wal_dir);
}

}  // namespace
}  // namespace eva::engine
