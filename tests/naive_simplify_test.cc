#include <gtest/gtest.h>

#include "symbolic/naive_simplify.h"

namespace eva::symbolic {
namespace {

NaiveAtom Gt(const std::string& d, double v) {
  return NaiveAtom(d, NaiveOp::kGt, Value(v));
}
NaiveAtom Lt(const std::string& d, double v) {
  return NaiveAtom(d, NaiveOp::kLt, Value(v));
}
NaiveAtom Eq(const std::string& d, const std::string& v) {
  return NaiveAtom(d, NaiveOp::kEq, Value(v));
}

TEST(NaiveAtomTest, NegationRoundTrips) {
  NaiveAtom a = Gt("x", 5);
  EXPECT_EQ(a.Negated().op, NaiveOp::kLe);
  EXPECT_TRUE(a.Negated().Negated() == a);
  EXPECT_EQ(Eq("l", "car").Negated().op, NaiveOp::kNe);
}

TEST(NaivePredicateTest, DuplicateAtomsDeduped) {
  NaivePredicate p =
      NaivePredicate::And(NaivePredicate::Atom(Gt("x", 5)),
                          NaivePredicate::Atom(Gt("x", 5)));
  EXPECT_EQ(p.AtomCount(), 1);
}

TEST(NaivePredicateTest, ExactComplementContradiction) {
  // x > 5 AND x <= 5 is a pattern-level contradiction.
  NaivePredicate p = NaivePredicate::And(
      NaivePredicate::Atom(Gt("x", 5)),
      NaivePredicate::Atom(NaiveAtom("x", NaiveOp::kLe, Value(5.0))));
  EXPECT_TRUE(p.IsFalse());
}

TEST(NaivePredicateTest, ConflictingEqualities) {
  NaivePredicate p = NaivePredicate::And(NaivePredicate::Atom(Eq("l", "car")),
                                         NaivePredicate::Atom(Eq("l", "bus")));
  EXPECT_TRUE(p.IsFalse());
}

TEST(NaivePredicateTest, AbsorptionDropsSubsumedConjunct) {
  // (x>5) OR (x>5 AND y>1)  =>  (x>5).
  NaivePredicate a = NaivePredicate::Atom(Gt("x", 5));
  NaivePredicate b = NaivePredicate::And(NaivePredicate::Atom(Gt("x", 5)),
                                         NaivePredicate::Atom(Gt("y", 1)));
  NaivePredicate u = NaivePredicate::Or(a, b);
  EXPECT_EQ(u.conjuncts().size(), 1u);
  EXPECT_EQ(u.AtomCount(), 1);
}

TEST(NaivePredicateTest, ConsensusMerge) {
  // (a AND x>5) OR (a AND x<=5)  =>  (a)  — the QM merge step.
  NaiveAtom a = Eq("l", "car");
  NaivePredicate p = NaivePredicate::Or(
      NaivePredicate::And(NaivePredicate::Atom(a),
                          NaivePredicate::Atom(Gt("x", 5))),
      NaivePredicate::And(NaivePredicate::Atom(a),
                          NaivePredicate::Atom(Gt("x", 5).Negated())));
  EXPECT_EQ(p.conjuncts().size(), 1u);
  EXPECT_EQ(p.AtomCount(), 1);
}

TEST(NaivePredicateTest, CannotMergeOverlappingRanges) {
  // This is the crucial gap vs. EVA's reduction (Fig. 7): the union of
  // (5<x AND x<15) and (10<x AND x<20) stays at 4 atoms because the naive
  // simplifier does not understand inequality interaction.
  NaivePredicate r1 = NaivePredicate::And(NaivePredicate::Atom(Gt("x", 5)),
                                          NaivePredicate::Atom(Lt("x", 15)));
  NaivePredicate r2 = NaivePredicate::And(NaivePredicate::Atom(Gt("x", 10)),
                                          NaivePredicate::Atom(Lt("x", 20)));
  NaivePredicate u = NaivePredicate::Or(r1, r2);
  EXPECT_EQ(u.conjuncts().size(), 2u);
  EXPECT_EQ(u.AtomCount(), 4);
}

TEST(NaivePredicateTest, NotDeMorgan) {
  // NOT (x>5 AND y>1) = (x<=5) OR (y<=1).
  NaivePredicate p = NaivePredicate::And(NaivePredicate::Atom(Gt("x", 5)),
                                         NaivePredicate::Atom(Gt("y", 1)));
  NaivePredicate n = NaivePredicate::Not(p);
  EXPECT_EQ(n.conjuncts().size(), 2u);
  NaivePredicate nn = NaivePredicate::Not(n);
  // Double negation recovers a 2-atom conjunct.
  EXPECT_EQ(nn.conjuncts().size(), 1u);
  EXPECT_EQ(nn.AtomCount(), 2);
}

TEST(NaivePredicateTest, GrowthUnderRepeatedUnions) {
  // Repeatedly unioning shifted ranges grows the naive predicate linearly —
  // the pathology Fig. 7 shows for SymPy's simplify on CarType/ColorDet.
  NaivePredicate acc = NaivePredicate::False();
  for (int i = 0; i < 6; ++i) {
    NaivePredicate r = NaivePredicate::And(
        NaivePredicate::Atom(Gt("x", i * 2.0)),
        NaivePredicate::Atom(Lt("x", i * 2.0 + 5.0)));
    acc = NaivePredicate::Or(acc, r);
  }
  EXPECT_GE(acc.conjuncts().size(), 6u);
  EXPECT_GE(acc.AtomCount(), 12);
}

}  // namespace
}  // namespace eva::symbolic
