// Property tests for the retraction primitive: symbolic::Subtract(p, v)
// must agree with the pointwise semantics p ∧ ¬v on every tuple, and the
// persistence encoding must round-trip predicates losslessly. Both are
// checked against brute-force enumeration of a small mixed-kind domain
// (integer frame ids, a real score, a categorical label) under randomized
// predicates with a fixed seed.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "symbolic/predicate.h"
#include "symbolic/predicate_io.h"
#include "symbolic/subtract.h"

namespace eva::symbolic {
namespace {

// The enumerable domain. Grid values sit on and between every bound the
// generator can produce, so open/closed endpoint bugs cannot hide.
const char* const kLabels[] = {"car", "bus", "truck", "van"};

struct GridPoint {
  int64_t id;
  double score;
  std::string label;

  ValueLookup Lookup() const {
    return [this](const std::string& dim) -> Value {
      if (dim == "id") return Value(id);
      if (dim == "score") return Value(score);
      return Value(label);
    };
  }
};

std::vector<GridPoint> MakeGrid() {
  std::vector<GridPoint> grid;
  for (int64_t id = -2; id <= 13; ++id) {
    for (int s = 0; s <= 8; ++s) {
      for (const char* label : kLabels) {
        grid.push_back({id, s * 0.5, label});
      }
    }
  }
  return grid;
}

class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}
  int Int(int lo, int hi) {  // inclusive
    return std::uniform_int_distribution<int>(lo, hi)(gen_);
  }
  bool Chance(double p) {
    return std::uniform_real_distribution<double>(0, 1)(gen_) < p;
  }

 private:
  std::mt19937_64 gen_;
};

DimConstraint RandomNumeric(Rng& rng, DimKind kind) {
  auto bound = [&](double v) {
    return rng.Chance(0.5) ? Bound::Closed(v) : Bound::Open(v);
  };
  double lo = kind == DimKind::kInteger ? rng.Int(-2, 12)
                                        : rng.Int(0, 8) * 0.5;
  double hi = kind == DimKind::kInteger ? rng.Int(-2, 12)
                                        : rng.Int(0, 8) * 0.5;
  Interval interval;
  switch (rng.Int(0, 4)) {
    case 0:
      interval = Interval(bound(lo), Bound::Infinite());
      break;
    case 1:
      interval = Interval(Bound::Infinite(), bound(hi));
      break;
    case 2:
      interval = Interval(bound(std::min(lo, hi)), bound(std::max(lo, hi)));
      break;
    case 3:
      interval = Interval::Point(lo);
      break;
    default:
      interval = Interval::Full();
      break;
  }
  DimConstraint c = DimConstraint::Numeric(kind, interval);
  if (rng.Chance(0.3)) {
    c = c.Intersect(DimConstraint::NumericNotEqual(
        kind, kind == DimKind::kInteger ? rng.Int(-2, 12)
                                        : rng.Int(0, 8) * 0.5));
  }
  return c;
}

DimConstraint RandomCategorical(Rng& rng) {
  std::vector<std::string> values;
  for (const char* label : kLabels) {
    if (rng.Chance(0.4)) values.push_back(label);
  }
  if (values.empty()) values.push_back(kLabels[rng.Int(0, 3)]);
  return DimConstraint::Categorical(std::move(values), rng.Chance(0.5));
}

Conjunct RandomConjunct(Rng& rng) {
  Conjunct c;
  if (rng.Chance(0.7)) {
    c.Constrain("id", RandomNumeric(rng, DimKind::kInteger));
  }
  if (rng.Chance(0.5)) {
    c.Constrain("score", RandomNumeric(rng, DimKind::kReal));
  }
  if (rng.Chance(0.5)) c.Constrain("label", RandomCategorical(rng));
  return c;  // possibly empty after an unsat Constrain; AddConjunct drops it
}

Predicate RandomPredicate(Rng& rng) {
  Predicate p;
  int n = rng.Int(1, 3);
  for (int i = 0; i < n; ++i) p.AddConjunct(RandomConjunct(rng));
  if (rng.Chance(0.5)) p.Reduce();
  return p;
}

TEST(SubtractConjunctTest, DisjointSubtrahendLeavesMinuendIntact) {
  Conjunct c, w;
  ASSERT_TRUE(c.Constrain(
      "id", DimConstraint::Numeric(DimKind::kInteger,
                                   Interval(Bound::Closed(0),
                                            Bound::Closed(9)))));
  ASSERT_TRUE(w.Constrain(
      "id", DimConstraint::Numeric(DimKind::kInteger,
                                   Interval(Bound::Closed(20),
                                            Bound::Closed(29)))));
  auto pieces = SubtractConjunct(c, w);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_TRUE(pieces[0].Equals(c));
}

TEST(SubtractConjunctTest, CoveredMinuendVanishes) {
  Conjunct c, w;
  ASSERT_TRUE(c.Constrain(
      "id", DimConstraint::Numeric(DimKind::kInteger,
                                   Interval(Bound::Closed(3),
                                            Bound::Closed(5)))));
  ASSERT_TRUE(w.Constrain(
      "id", DimConstraint::Numeric(DimKind::kInteger,
                                   Interval(Bound::Closed(0),
                                            Bound::Closed(9)))));
  EXPECT_TRUE(SubtractConjunct(c, w).empty());
}

TEST(SubtractConjunctTest, PiecesArePairwiseDisjoint) {
  Rng rng(2022);
  const std::vector<GridPoint> grid = MakeGrid();
  for (int iter = 0; iter < 100; ++iter) {
    Conjunct c = RandomConjunct(rng);
    Conjunct w = RandomConjunct(rng);
    std::vector<Conjunct> pieces = SubtractConjunct(c, w);
    for (const GridPoint& pt : grid) {
      int hits = 0;
      for (const Conjunct& piece : pieces) {
        if (piece.Evaluate(pt.Lookup())) ++hits;
      }
      // Disjoint-cell decomposition: no point lies in two pieces, and the
      // union is exactly c ∧ ¬w.
      ASSERT_LE(hits, 1) << "c=" << c.ToString() << " w=" << w.ToString();
      bool expected =
          c.Evaluate(pt.Lookup()) && !w.Evaluate(pt.Lookup());
      ASSERT_EQ(hits == 1, expected)
          << "c=" << c.ToString() << " w=" << w.ToString() << " at id="
          << pt.id << " score=" << pt.score << " label=" << pt.label;
    }
  }
}

TEST(SubtractPropertyTest, MatchesBruteForceEnumeration) {
  Rng rng(7);
  const std::vector<GridPoint> grid = MakeGrid();
  for (int iter = 0; iter < 200; ++iter) {
    Predicate p = RandomPredicate(rng);
    Predicate v = RandomPredicate(rng);
    auto diff = Subtract(p, v);
    ASSERT_TRUE(diff.ok()) << diff.status().ToString();
    for (const GridPoint& pt : grid) {
      bool expected =
          p.Evaluate(pt.Lookup()) && !v.Evaluate(pt.Lookup());
      ASSERT_EQ(diff.value().Evaluate(pt.Lookup()), expected)
          << "p=" << p.ToString() << " v=" << v.ToString()
          << " diff=" << diff.value().ToString() << " at id=" << pt.id
          << " score=" << pt.score << " label=" << pt.label;
    }
  }
}

TEST(SubtractPropertyTest, AgreesWithDeMorganDiff) {
  // Predicate::Diff(p1, p2) computes ¬p1 ∧ p2 via full De Morgan
  // expansion; Subtract(p, v) must be semantically identical to
  // Diff(v, p) wherever both fit their budgets.
  Rng rng(99);
  const std::vector<GridPoint> grid = MakeGrid();
  for (int iter = 0; iter < 100; ++iter) {
    Predicate p = RandomPredicate(rng);
    Predicate v = RandomPredicate(rng);
    auto subtract = Subtract(p, v);
    auto demorgan = Predicate::Diff(v, p);
    ASSERT_TRUE(subtract.ok());
    if (!demorgan.ok()) continue;  // Diff may exhaust its budget first
    for (const GridPoint& pt : grid) {
      ASSERT_EQ(subtract.value().Evaluate(pt.Lookup()),
                demorgan.value().Evaluate(pt.Lookup()))
          << "p=" << p.ToString() << " v=" << v.ToString();
    }
  }
}

TEST(SubtractPropertyTest, SubtractingSelfAndFalseAndTrue) {
  Rng rng(123);
  for (int iter = 0; iter < 50; ++iter) {
    Predicate p = RandomPredicate(rng);
    auto self = Subtract(p, p);
    ASSERT_TRUE(self.ok());
    const std::vector<GridPoint> grid = MakeGrid();
    for (const GridPoint& pt : grid) {
      ASSERT_FALSE(self.value().Evaluate(pt.Lookup())) << p.ToString();
    }
    auto minus_false = Subtract(p, Predicate::False());
    ASSERT_TRUE(minus_false.ok());
    for (const GridPoint& pt : grid) {
      ASSERT_EQ(minus_false.value().Evaluate(pt.Lookup()),
                p.Evaluate(pt.Lookup()));
    }
    auto minus_true = Subtract(p, Predicate::True());
    ASSERT_TRUE(minus_true.ok());
    EXPECT_TRUE(minus_true.value().DefinitelyFalse()) << p.ToString();
  }
}

TEST(SubtractPropertyTest, BudgetExhaustionIsResourceExhausted) {
  // Many excluded points force one cell per complement piece; a one-cell
  // budget cannot hold them.
  Conjunct c;
  ASSERT_TRUE(c.Constrain(
      "id", DimConstraint::Numeric(DimKind::kInteger,
                                   Interval(Bound::Closed(0),
                                            Bound::Closed(100)))));
  Predicate p = Predicate::FromConjunct(c);
  Predicate v;
  for (int i = 10; i < 20; ++i) {
    Conjunct w;
    w.Constrain("id", DimConstraint::Numeric(DimKind::kInteger,
                                             Interval::Point(i)));
    v.AddConjunct(w);
  }
  SymbolicBudget tiny;
  tiny.max_conjuncts = 1;
  auto r = Subtract(p, v, tiny);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(PredicateIoTest, EncodeDecodeRoundTripsSemantics) {
  Rng rng(31337);
  const std::vector<GridPoint> grid = MakeGrid();
  for (int iter = 0; iter < 200; ++iter) {
    Predicate p = RandomPredicate(rng);
    auto decoded = DecodePredicate(EncodePredicate(p));
    ASSERT_TRUE(decoded.ok())
        << p.ToString() << " -> " << EncodePredicate(p) << " -> "
        << decoded.status().ToString();
    EXPECT_EQ(decoded.value().AtomCount(), p.AtomCount()) << p.ToString();
    for (const GridPoint& pt : grid) {
      ASSERT_EQ(decoded.value().Evaluate(pt.Lookup()),
                p.Evaluate(pt.Lookup()))
          << p.ToString() << " -> " << EncodePredicate(p);
    }
  }
}

TEST(PredicateIoTest, RoundTripsDegenerateAndEscapedPredicates) {
  for (const Predicate& p : {Predicate::False(), Predicate::True()}) {
    auto decoded = DecodePredicate(EncodePredicate(p));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().IsFalse(), p.IsFalse());
    EXPECT_EQ(decoded.value().IsTrue(), p.IsTrue());
  }
  // Dimension names / categorical values with whitespace, '%', and an
  // empty string must survive the token format.
  Conjunct c;
  ASSERT_TRUE(c.Constrain("two words",
                          DimConstraint::Categorical({"50%", ""}, false)));
  Predicate p = Predicate::FromConjunct(c);
  auto decoded = DecodePredicate(EncodePredicate(p));
  ASSERT_TRUE(decoded.ok()) << EncodePredicate(p);
  auto check = [&](const char* v, bool expect) {
    ValueLookup lookup = [&](const std::string&) { return Value(v); };
    EXPECT_EQ(decoded.value().Evaluate(lookup), expect) << v;
  };
  check("50%", true);
  check("", true);
  check("car", false);
  EXPECT_FALSE(DecodePredicate("garbage").ok());
  EXPECT_FALSE(DecodePredicate("P 1 C").ok());
}

}  // namespace
}  // namespace eva::symbolic
