#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "engine/eva_engine.h"
#include "obs/metrics.h"
#include "vbench/vbench.h"

namespace eva::engine {
namespace {

using optimizer::ReuseMode;

catalog::VideoInfo TinyVideo() {
  catalog::VideoInfo v;
  v.name = "tiny";
  v.num_frames = 400;
  v.mean_objects_per_frame = 8.3 / 0.8;
  v.seed = 7;
  return v;
}

std::unique_ptr<EvaEngine> MakeEngineOrDie(ReuseMode mode) {
  auto r = vbench::MakeEngine(mode, TinyVideo());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

const char* const kQuery =
    "SELECT id, obj, label FROM tiny CROSS APPLY "
    "FasterRCNNResNet50(frame) WHERE id < 50 AND label = 'car';";

std::string PlanText(const QueryResult& r) {
  std::string out;
  for (size_t i = 0; i < r.batch.num_rows(); ++i) {
    out += r.batch.GetByName(i, "plan").AsString();
    out += '\n';
  }
  return out;
}

// Extracts the integer following `key=` within `line`.
int64_t ExtractCount(const std::string& text, const std::string& key) {
  size_t pos = text.find(key + "=");
  if (pos == std::string::npos) return -1;
  return std::atoll(text.c_str() + pos + key.size() + 1);
}

TEST(ExplainAnalyzeTest, SecondQueryOfSessionShowsViewHits) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  obs::MetricsRegistry registry;
  engine->set_metrics_registry(&registry);

  // Query 1 materializes the detector view; nothing exists to hit yet.
  auto first = engine->Execute(kQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first.value().metrics.TotalInvocations(), 0);

  // Query 2 (EXPLAIN ANALYZE, same predicate range) must probe the view
  // and report per-operator hits in the annotated tree.
  auto second = engine->Execute(std::string("EXPLAIN ANALYZE ") + kQuery);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  std::string plan = PlanText(second.value());
  EXPECT_NE(plan.find("ViewJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("rows="), std::string::npos) << plan;
  EXPECT_NE(plan.find("sim="), std::string::npos) << plan;
  EXPECT_GT(ExtractCount(plan, "view_hits"), 0) << plan;

  // The registry saw the same probes.
  obs::Counter* hits = registry.GetCounter(
      "eva_view_probe_hits_total",
      "Tuples whose UDF result was found in a materialized view.",
      {{"udf", "FasterRCNNResNet50"}});
  ASSERT_NE(hits, nullptr);
  EXPECT_GT(hits->Value(), 0.0);
}

TEST(ExplainAnalyzeTest, ExecutesWithReuseSideEffects) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  engine->set_metrics_registry(nullptr);
  auto r = engine->Execute(std::string("EXPLAIN ANALYZE ") + kQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Unlike plain EXPLAIN, the query really ran: the view exists and the
  // metrics carry real invocations.
  EXPECT_FALSE(engine->views().views().empty());
  EXPECT_GT(r.value().metrics.TotalInvocations(), 0);
  // A follow-up run reuses what EXPLAIN ANALYZE materialized.
  auto followup = engine->Execute(kQuery);
  ASSERT_TRUE(followup.ok());
  EXPECT_GT(followup.value().metrics.TotalReused(), 0);
}

TEST(ExplainAnalyzeTest, PlainExplainStaysSideEffectFree) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  auto r = engine->Execute(std::string("EXPLAIN ") + kQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(engine->views().views().empty());
  EXPECT_EQ(r.value().metrics.TotalInvocations(), 0);
  // Plain EXPLAIN output has no runtime annotations.
  EXPECT_EQ(PlanText(r.value()).find("rows="), std::string::npos);
}

TEST(ExplainAnalyzeTest, AnnotatedTreeCoversEveryOperator) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  engine->set_metrics_registry(nullptr);
  auto r = engine->Execute(std::string("EXPLAIN ANALYZE ") + kQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string plan = PlanText(r.value());
  // Every plan line carries a stats block.
  size_t lines = 0, annotated = 0, admission_lines = 0;
  size_t start = 0;
  while (start < plan.size()) {
    size_t end = plan.find('\n', start);
    std::string line = plan.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    // Lifecycle admission decisions and the symbolic fast-path summary
    // trail the operator tree.
    if (line.rfind("admission:", 0) == 0) {
      ++admission_lines;
      continue;
    }
    if (line.rfind("symbolic:", 0) == 0) continue;
    ++lines;
    if (line.find("[rows=") != std::string::npos) ++annotated;
  }
  EXPECT_GT(lines, 2u);
  EXPECT_EQ(lines, annotated) << plan;
  // EVA mode materializes UDF results, so the lifecycle manager reports at
  // least one admission decision for the query's UDFs.
  EXPECT_GT(admission_lines, 0u) << plan;
  EXPECT_NE(plan.find("self="), std::string::npos);
  EXPECT_NE(plan.find("materialized="), std::string::npos) << plan;
}

TEST(ExplainAnalyzeTest, TracerRecordsSessionSpans) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  engine->set_metrics_registry(nullptr);
  ASSERT_TRUE(engine->Execute(kQuery).ok());
  auto analyzed =
      engine->Execute(std::string("EXPLAIN ANALYZE ") + kQuery);
  ASSERT_TRUE(analyzed.ok());

  const auto& spans = engine->tracer().spans();
  ASSERT_FALSE(spans.empty());
  bool has_query = false, has_parse = false, has_optimize = false,
       has_execute = false, has_probe = false;
  int query_index = -1;
  for (size_t i = 0; i < spans.size(); ++i) {
    const obs::SpanRecord& rec = spans[i];
    EXPECT_FALSE(rec.open) << rec.name;
    if (rec.name == "query") {
      has_query = true;
      query_index = static_cast<int>(i);
    }
    if (rec.name == "parse") {
      has_parse = true;
      EXPECT_EQ(rec.parent, query_index);
    }
    if (rec.name == "optimize") has_optimize = true;
    if (rec.name == "execute") has_execute = true;
    if (rec.category == "view-probe") has_probe = true;
  }
  EXPECT_TRUE(has_query && has_parse && has_optimize && has_execute);
  EXPECT_TRUE(has_probe);  // synthesized ViewJoin span from EXPLAIN ANALYZE
  std::string text = engine->tracer().RenderText();
  EXPECT_NE(text.find("view_hits="), std::string::npos);

  engine->ClearReuseState();
  EXPECT_TRUE(engine->tracer().spans().empty());
}

TEST(ExplainAnalyzeTest, ObservabilityNeverChargesSimulatedClock) {
  vbench::WorkloadResult with_obs, without_obs;
  {
    auto engine = MakeEngineOrDie(ReuseMode::kEva);
    obs::MetricsRegistry registry;
    engine->set_metrics_registry(&registry);
    auto r = vbench::RunWorkload(
        engine.get(), vbench::VbenchHigh("tiny", TinyVideo().num_frames));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    with_obs = r.MoveValue();
  }
  {
    engine::EngineOptions options;
    options.optimizer.mode = ReuseMode::kEva;
    options.observability = false;
    auto engine_r = vbench::MakeEngine(options, TinyVideo());
    ASSERT_TRUE(engine_r.ok());
    auto engine = engine_r.MoveValue();
    EXPECT_EQ(engine->metrics_registry(), nullptr);
    auto r = vbench::RunWorkload(
        engine.get(), vbench::VbenchHigh("tiny", TinyVideo().num_frames));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    without_obs = r.MoveValue();
    EXPECT_TRUE(engine->tracer().spans().empty());
  }
  // Bit-identical simulated time: instrumentation is invisible to the
  // clock (the <2% acceptance bound holds trivially).
  EXPECT_EQ(with_obs.total_ms, without_obs.total_ms);
  EXPECT_EQ(with_obs.total_invocations, without_obs.total_invocations);
  EXPECT_EQ(with_obs.total_reused, without_obs.total_reused);
}

TEST(ExplainAnalyzeTest, ParserRejectsAnalyzeWithoutSelect) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  EXPECT_FALSE(engine->Execute("EXPLAIN ANALYZE SHOW UDFS;").ok());
}

TEST(ExplainAnalyzeTest, WorkloadAggregateJsonAccumulates) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  engine->set_metrics_registry(nullptr);
  auto r = vbench::RunWorkload(
      engine.get(), {kQuery, kQuery});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const vbench::WorkloadResult& result = r.value();
  EXPECT_DOUBLE_EQ(result.aggregate.TotalMs(), result.total_ms);
  EXPECT_EQ(result.aggregate.TotalInvocations(), result.total_invocations);
  std::string json = result.AggregateJson();
  EXPECT_NE(json.find("\"invocations\""), std::string::npos);
  EXPECT_NE(json.find("\"breakdown\""), std::string::npos);
  EXPECT_NE(json.find("FasterRCNNResNet50"), std::string::npos);
}

}  // namespace
}  // namespace eva::engine
