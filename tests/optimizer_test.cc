#include <gtest/gtest.h>

#include <vector>

#include "optimizer/optimizer.h"
#include "parser/parser.h"
#include "storage/statistics.h"
#include "vbench/vbench.h"
#include "vision/synthetic_video.h"

namespace eva::optimizer {
namespace {

// Collects plan node kinds leaf-to-root (execution order).
void CollectKinds(const plan::PlanNodePtr& node,
                  std::vector<plan::PlanKind>* out) {
  for (const auto& c : node->children()) CollectKinds(c, out);
  out->push_back(node->kind());
}

// Finds the first node of a kind (pre-order).
const plan::PlanNode* FindNode(const plan::PlanNodePtr& node,
                               plan::PlanKind kind) {
  if (node->kind() == kind) return node.get();
  for (const auto& c : node->children()) {
    if (const plan::PlanNode* f = FindNode(c, kind)) return f;
  }
  return nullptr;
}

int CountKind(const std::vector<plan::PlanKind>& kinds,
              plan::PlanKind kind) {
  int n = 0;
  for (auto k : kinds) n += k == kind;
  return n;
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() {
    catalog_ = std::make_shared<catalog::Catalog>();
    auto det = [](const char* name, const char* acc, double cost,
                  double recall) {
      catalog::UdfDef d;
      d.name = name;
      d.kind = catalog::UdfKind::kDetector;
      d.logical_type = "ObjectDetector";
      d.accuracy = acc;
      d.cost_ms = cost;
      d.recall = recall;
      d.recall_small = recall;
      return d;
    };
    EXPECT_TRUE(catalog_->AddUdf(det("Det", "MEDIUM", 99, 0.9)).ok());
    EXPECT_TRUE(catalog_->AddUdf(det("Tiny", "LOW", 9, 0.5)).ok());
    auto cls = [](const char* name, double cost, const char* target) {
      catalog::UdfDef d;
      d.name = name;
      d.kind = catalog::UdfKind::kClassifier;
      d.cost_ms = cost;
      d.target_attribute = target;
      return d;
    };
    EXPECT_TRUE(catalog_->AddUdf(cls("CarType", 6, "car_type")).ok());
    EXPECT_TRUE(catalog_->AddUdf(cls("ColorDet", 5, "color")).ok());
    catalog::UdfDef filter;
    filter.name = "VFilter";
    filter.kind = catalog::UdfKind::kFilter;
    filter.cost_ms = 1;
    EXPECT_TRUE(catalog_->AddUdf(filter).ok());

    catalog::VideoInfo info;
    info.name = "v";
    info.num_frames = 1000;
    info.mean_objects_per_frame = 8;
    EXPECT_TRUE(catalog_->AddVideo(info).ok());
    video_ = std::make_unique<vision::SyntheticVideo>(info);
    stats_ = std::make_unique<storage::StatisticsManager>(*video_);
  }

  Result<OptimizedQuery> Optimize(const std::string& sql,
                                  OptimizerOptions options = {}) {
    auto stmt = parser::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Optimizer opt(options, catalog_.get(), &manager_, stats_.get(),
                  costs_);
    return opt.Optimize(
        std::get<parser::SelectStatement>(stmt.value()));
  }

  std::shared_ptr<catalog::Catalog> catalog_;
  std::unique_ptr<vision::SyntheticVideo> video_;
  std::unique_ptr<storage::StatisticsManager> stats_;
  udf::UdfManager manager_;
  exec::CostConstants costs_;
};

TEST_F(OptimizerTest, ScanRangePushdown) {
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY Det(frame) WHERE id >= 100 AND "
      "id < 300;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* scan = static_cast<const plan::VideoScanNode*>(
      FindNode(r.value().plan, plan::PlanKind::kVideoScan));
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->lo(), 100);
  EXPECT_EQ(scan->hi(), 300);
}

TEST_F(OptimizerTest, ColdQueryUsesApplyPlusStore) {
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY Det(frame) WHERE id < 100 AND "
      "label = 'car' AND CarType(frame, bbox) = 'Nissan';");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<plan::PlanKind> kinds;
  CollectKinds(r.value().plan, &kinds);
  // No coverage yet: Apply (not ViewJoin/CondApply), but Store present for
  // both candidate UDFs.
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kApply), 2);
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kViewJoin), 0);
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kStore), 2);
  // Coverage recorded for both signatures.
  EXPECT_TRUE(manager_.HasCoverage("Det@v"));
  EXPECT_TRUE(manager_.HasCoverage("CarType@v"));
}

TEST_F(OptimizerTest, WarmQueryUsesMaterializationAwareTriple) {
  ASSERT_TRUE(Optimize("SELECT id, obj FROM v CROSS APPLY Det(frame) "
                       "WHERE id < 100 AND label = 'car' AND "
                       "CarType(frame, bbox) = 'Nissan';")
                  .ok());
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY Det(frame) WHERE id < 150 AND "
      "label = 'car' AND CarType(frame, bbox) = 'Nissan';");
  ASSERT_TRUE(r.ok());
  std::vector<plan::PlanKind> kinds;
  CollectKinds(r.value().plan, &kinds);
  // Fig. 4: LEFT OUTER JOIN + conditional apply + store, per UDF.
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kViewJoin), 2);
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kCondApply), 2);
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kStore), 2);
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kApply), 0);
}

TEST_F(OptimizerTest, NoReuseModeNeverMaterializes) {
  OptimizerOptions options;
  options.mode = ReuseMode::kNoReuse;
  options.reuse_enabled = false;
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY Det(frame) WHERE id < 100 AND "
      "CarType(frame, bbox) = 'Nissan';",
      options);
  ASSERT_TRUE(r.ok());
  std::vector<plan::PlanKind> kinds;
  CollectKinds(r.value().plan, &kinds);
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kStore), 0);
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kViewJoin), 0);
  EXPECT_FALSE(manager_.HasCoverage("Det@v"));
}

TEST_F(OptimizerTest, HashStashMaterializesOnlyDetector) {
  OptimizerOptions options;
  options.mode = ReuseMode::kHashStash;
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY Det(frame) WHERE id < 100 AND "
      "CarType(frame, bbox) = 'Nissan';",
      options);
  ASSERT_TRUE(r.ok());
  std::vector<plan::PlanKind> kinds;
  CollectKinds(r.value().plan, &kinds);
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kStore), 1);  // detector only
  EXPECT_TRUE(manager_.HasCoverage("Det@v"));
  EXPECT_FALSE(manager_.HasCoverage("CarType@v"));
}

TEST_F(OptimizerTest, CandidateThresholdSkipsCheapUdfs) {
  OptimizerOptions options;
  options.candidate_cost_threshold_ms = 50;  // classifiers no longer worth it
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY Det(frame) WHERE id < 100 AND "
      "CarType(frame, bbox) = 'Nissan';",
      options);
  ASSERT_TRUE(r.ok());
  std::vector<plan::PlanKind> kinds;
  CollectKinds(r.value().plan, &kinds);
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kStore), 1);  // detector only
  EXPECT_FALSE(manager_.HasCoverage("CarType@v"));
}

TEST_F(OptimizerTest, MaterializationAwareReorderingPrefersCoveredUdf) {
  // Warm CarType over the full query region; ColorDet stays cold.
  ASSERT_TRUE(Optimize("SELECT id, obj FROM v CROSS APPLY Det(frame) "
                       "WHERE id < 1000 AND label = 'car' AND "
                       "CarType(frame, bbox) = 'Nissan';")
                  .ok());
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY Det(frame) WHERE id < 500 AND "
      "label = 'car' AND CarType(frame, bbox) = 'Nissan' AND "
      "ColorDet(frame, bbox) = 'Gray';");
  ASSERT_TRUE(r.ok());
  const auto& preds = r.value().report.udf_predicates;
  ASSERT_EQ(preds.size(), 2u);
  // Eq. 4 puts the covered CarType first even though ColorDet is cheaper.
  EXPECT_EQ(preds[0].udf, "CarType");
  EXPECT_LT(preds[0].sel_diff_fraction, 0.05);
  EXPECT_DOUBLE_EQ(preds[1].sel_diff_fraction, 1.0);
  // Canonical ranking (Eq. 2) would have ordered ColorDet (5 ms) first.
  EXPECT_LT(preds[1].rank_canonical, preds[0].rank_canonical);
}

TEST_F(OptimizerTest, CanonicalRankingIgnoresViews) {
  ASSERT_TRUE(Optimize("SELECT id, obj FROM v CROSS APPLY Det(frame) "
                       "WHERE id < 1000 AND label = 'car' AND "
                       "CarType(frame, bbox) = 'Nissan';")
                  .ok());
  OptimizerOptions options;
  options.materialization_aware_ranking = false;
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY Det(frame) WHERE id < 500 AND "
      "label = 'car' AND CarType(frame, bbox) = 'Nissan' AND "
      "ColorDet(frame, bbox) = 'Gray';",
      options);
  ASSERT_TRUE(r.ok());
  const auto& preds = r.value().report.udf_predicates;
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].udf, "ColorDet");  // cheaper c_e wins under Eq. 2
}

TEST_F(OptimizerTest, FrameLevelFilterRunsBeforeDetector) {
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY Det(frame) WHERE id < 100 AND "
      "VFilter(frame) = true AND label = 'car';");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<plan::PlanKind> kinds;
  CollectKinds(r.value().plan, &kinds);
  // Execution order: the filter UDF apply appears before the detector's.
  int filter_pos = -1, det_pos = -1, pos = 0;
  for (auto k : kinds) {
    if (k == plan::PlanKind::kApply) {
      if (filter_pos < 0) {
        filter_pos = pos;
      } else if (det_pos < 0) {
        det_pos = pos;
      }
    }
    ++pos;
  }
  ASSERT_GE(filter_pos, 0);
  ASSERT_GE(det_pos, 0);
  EXPECT_LT(filter_pos, det_pos);
}

TEST_F(OptimizerTest, SelectListUdfIsApplied) {
  auto r = Optimize(
      "SELECT id, obj, ColorDet(frame, bbox) FROM v CROSS APPLY "
      "Det(frame) WHERE id < 100 AND label = 'car';");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(manager_.HasCoverage("ColorDet@v"));
  std::vector<plan::PlanKind> kinds;
  CollectKinds(r.value().plan, &kinds);
  EXPECT_EQ(CountKind(kinds, plan::PlanKind::kProject), 1);
}

TEST_F(OptimizerTest, LogicalUdfMinCostWithoutAlg2) {
  OptimizerOptions options;
  options.logical_udf_reuse = false;
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY ObjectDetector(frame) ACCURACY "
      "'LOW' WHERE id < 100;",
      options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().report.detector_exec, "Tiny");
  EXPECT_TRUE(r.value().report.detector_views.empty());
}

TEST_F(OptimizerTest, EmptyIdRangeYieldsEmptyScan) {
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY Det(frame) WHERE id < 100 AND "
      "id > 200;");
  ASSERT_TRUE(r.ok());
  auto* scan = static_cast<const plan::VideoScanNode*>(
      FindNode(r.value().plan, plan::PlanKind::kVideoScan));
  ASSERT_NE(scan, nullptr);
  EXPECT_GE(scan->lo(), scan->hi());
}

TEST_F(OptimizerTest, ObjectPredicateWithoutDetectorIsBindError) {
  auto r = Optimize(
      "SELECT id FROM v WHERE CarType(frame, bbox) = 'Nissan';");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(OptimizerTest, GroupByProducesAggregate) {
  auto r = Optimize(
      "SELECT id, COUNT(*) FROM v CROSS APPLY Det(frame) WHERE id < 50 "
      "GROUP BY id;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().plan->kind(), plan::PlanKind::kAggregate);
}

TEST_F(OptimizerTest, ReportContainsDerivedPredicateSizes) {
  ASSERT_TRUE(Optimize("SELECT id, obj FROM v CROSS APPLY Det(frame) "
                       "WHERE id < 500 AND label = 'car' AND "
                       "CarType(frame, bbox) = 'Nissan';")
                  .ok());
  auto r = Optimize(
      "SELECT id, obj FROM v CROSS APPLY Det(frame) WHERE id >= 250 AND "
      "id < 750 AND label = 'car' AND CarType(frame, bbox) = 'Nissan';");
  ASSERT_TRUE(r.ok());
  const auto& preds = r.value().report.udf_predicates;
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_GT(preds[0].inter_atoms, 0);
  EXPECT_GT(preds[0].diff_atoms, 0);
  EXPECT_GT(preds[0].sel_diff_fraction, 0.1);
  EXPECT_LT(preds[0].sel_diff_fraction, 0.9);
}

}  // namespace
}  // namespace eva::optimizer
