// Differential property tests for the columnar probe path (PR 5):
//
//  1. FilterProgram (src/exec/vector_filter.h) must agree row-for-row with
//     the scalar Expr interpreter over randomized schemas, NULLs, and
//     predicate trees whenever it compiles and executes.
//  2. MaterializedView::ProbeBatch must agree with TryGet/Get across
//     segment boundaries, interleaved Puts (columnar staleness), and
//     eviction.
//  3. Zone-map skipping must be sound: every row of a segment reported
//     kHitSkipped must fail the residual predicate under scalar
//     evaluation.
//  4. The engine must produce identical row sets with the vectorized /
//     zone-skipping paths on or off, and bit-identical simulated times
//     across worker-thread counts with them on.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/eva_engine.h"
#include "exec/vector_filter.h"
#include "expr/expr.h"
#include "storage/view_store.h"
#include "vbench/vbench.h"

namespace eva {
namespace {

using exec::FilterProgram;
using expr::CompareOp;
using expr::Expr;
using expr::ExprPtr;
using storage::MaterializedView;
using storage::ProbeResult;
using storage::ProbeStatus;
using storage::ViewKey;

// Deterministic 64-bit LCG — the test must not depend on wall clock or
// std::random_device.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  int64_t Below(int64_t n) {
    return static_cast<int64_t>(Next() % static_cast<uint64_t>(n));
  }
  double Unit() { return static_cast<double>(Next() % 10000) / 10000.0; }
  bool Chance(double p) { return Unit() < p; }

 private:
  uint64_t state_;
};

const char* kLabels[] = {"car", "bus", "truck", "person", "bike"};

Value RandomValue(Lcg& rng, DataType type) {
  switch (type) {
    case DataType::kBool:
      return Value(rng.Chance(0.5));
    case DataType::kInt64:
      return Value(rng.Below(20) - 5);
    case DataType::kDouble:
      return Value(rng.Unit() * 2.0 - 0.5);
    case DataType::kString:
      return Value(std::string(kLabels[rng.Below(5)]));
    default:
      return Value::Null();
  }
}

DataType RandomType(Lcg& rng) {
  switch (rng.Below(4)) {
    case 0:
      return DataType::kBool;
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

// ---------------------------------------------------------------------------
// 1. FilterProgram vs per-row EvaluateBool
// ---------------------------------------------------------------------------

struct RandomTable {
  Schema schema;
  std::vector<DataType> col_types;  // nominal type per column
  Batch batch{Schema{}};
};

RandomTable MakeTable(Lcg& rng) {
  RandomTable t;
  int cols = 1 + static_cast<int>(rng.Below(5));
  for (int c = 0; c < cols; ++c) {
    DataType type = RandomType(rng);
    t.col_types.push_back(type);
    t.schema.AddField({"c" + std::to_string(c), type});
  }
  t.batch = Batch(t.schema);
  // Row counts straddle typical selection-vector block sizes.
  int rows = static_cast<int>(rng.Below(200));
  bool mixed_cols = rng.Chance(0.2);
  for (int r = 0; r < rows; ++r) {
    Row row;
    for (int c = 0; c < cols; ++c) {
      if (rng.Chance(0.15)) {
        row.push_back(Value::Null());
      } else if (mixed_cols && rng.Chance(0.1)) {
        // Type-unstable cell: exercises the kValue fallback and the
        // vectorized evaluator's runtime bail-out.
        row.push_back(RandomValue(rng, RandomType(rng)));
      } else {
        row.push_back(RandomValue(rng, t.col_types[static_cast<size_t>(c)]));
      }
    }
    t.batch.AddRow(std::move(row));
  }
  return t;
}

ExprPtr RandomPredicate(Lcg& rng, const RandomTable& t, int depth) {
  if (depth > 0 && rng.Chance(0.55)) {
    switch (rng.Below(3)) {
      case 0:
        return Expr::And(RandomPredicate(rng, t, depth - 1),
                         RandomPredicate(rng, t, depth - 1));
      case 1:
        return Expr::Or(RandomPredicate(rng, t, depth - 1),
                        RandomPredicate(rng, t, depth - 1));
      default:
        return Expr::Not(RandomPredicate(rng, t, depth - 1));
    }
  }
  auto op = static_cast<CompareOp>(rng.Below(6));
  size_t c = static_cast<size_t>(rng.Below(
      static_cast<int64_t>(t.col_types.size())));
  ExprPtr col = Expr::Column("c" + std::to_string(c));
  switch (rng.Below(6)) {
    case 0:  // column op literal (type usually matching, sometimes not)
    case 1: {
      DataType lt = rng.Chance(0.8) ? t.col_types[c] : RandomType(rng);
      Value lit = rng.Chance(0.1) ? Value::Null() : RandomValue(rng, lt);
      return Expr::Compare(op, col, Expr::Literal(std::move(lit)));
    }
    case 2: {  // literal op column (mirrored compile path)
      Value lit = RandomValue(rng, t.col_types[c]);
      return Expr::Compare(op, Expr::Literal(std::move(lit)), col);
    }
    case 3: {  // column op column
      size_t c2 = static_cast<size_t>(rng.Below(
          static_cast<int64_t>(t.col_types.size())));
      return Expr::Compare(op, col, Expr::Column("c" + std::to_string(c2)));
    }
    case 4:  // bare column in boolean position (sometimes a missing one,
             // which must make Compile bail)
      return rng.Chance(0.15) ? Expr::Column("no_such_col") : col;
    default:  // literal in boolean position; non-bool forces a compile bail
      if (rng.Chance(0.15)) return Expr::Literal(Value(int64_t{7}));
      return Expr::Literal(rng.Chance(0.2) ? Value::Null()
                                           : Value(rng.Chance(0.5)));
  }
}

TEST(VectorizedFilterProperty, MatchesScalarInterpreter) {
  Lcg rng(0x5eed0001);
  int compiled = 0, executed = 0, bailed = 0, runtime_errors = 0;
  for (int iter = 0; iter < 400; ++iter) {
    RandomTable t = MakeTable(rng);
    ExprPtr pred = RandomPredicate(rng, t, 3);
    auto program = FilterProgram::Compile(*pred, t.schema);
    if (!program.has_value()) {
      ++bailed;  // scalar path stays authoritative; nothing to compare
      continue;
    }
    ++compiled;
    std::vector<uint8_t> keep;
    Status s = program->Execute(t.batch, &keep);
    if (!s.ok()) {
      // A runtime bail (non-bool cell in a logical position) sends the
      // whole batch back to the interpreter; the verdict set is whatever
      // the interpreter says, so there is nothing vectorized to check.
      ++runtime_errors;
      continue;
    }
    ++executed;
    ASSERT_EQ(keep.size(), t.batch.num_rows());
    for (size_t r = 0; r < t.batch.num_rows(); ++r) {
      auto scalar = expr::EvaluateBool(*pred, t.schema, t.batch.rows()[r]);
      // Vectorized success implies the scalar interpreter cannot error on
      // any row: every cell the program touched was bool-or-null, and the
      // interpreter touches a subset (short-circuit).
      ASSERT_TRUE(scalar.ok())
          << "scalar error after vectorized success: "
          << scalar.status().ToString() << " pred=" << pred->ToString();
      EXPECT_EQ(keep[r] != 0, scalar.value())
          << "row " << r << " pred=" << pred->ToString();
    }
  }
  // The generator must actually exercise the vectorized path.
  EXPECT_GT(executed, 100);
  EXPECT_GT(bailed, 0);
  EXPECT_GT(runtime_errors, 0);
}

// ---------------------------------------------------------------------------
// 2. ProbeBatch vs TryGet/Get with interleaved Puts and eviction
// ---------------------------------------------------------------------------

Schema DetectorValueSchema() {
  return Schema({{"obj", DataType::kInt64},
                 {"label", DataType::kString},
                 {"area", DataType::kDouble},
                 {"score", DataType::kDouble}});
}

std::vector<Row> RandomDetections(Lcg& rng) {
  std::vector<Row> rows;
  int n = static_cast<int>(rng.Below(4));  // 0 = presence-only frame
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(static_cast<int64_t>(i)),
                    Value(std::string(kLabels[rng.Below(5)])),
                    Value(rng.Unit() * 0.6), Value(0.5 + rng.Unit() * 0.5)});
  }
  return rows;
}

TEST(VectorizedFilterProperty, ProbeBatchMatchesPointLookups) {
  Lcg rng(0x5eed0002);
  MaterializedView view("v", DetectorValueSchema());
  view.set_segment_frames(8);  // small segments: many boundaries
  int64_t max_frame = 96;
  for (int round = 0; round < 20; ++round) {
    // Interleave Puts (staling some columnar segments) with batch probes.
    int puts = 1 + static_cast<int>(rng.Below(12));
    for (int p = 0; p < puts; ++p) {
      int64_t f = rng.Below(max_frame);
      view.Put(ViewKey{f, -1}, RandomDetections(rng),
               static_cast<uint64_t>(round * 100 + p), round);
    }
    std::vector<ViewKey> keys;
    int64_t start = rng.Below(max_frame);
    for (int64_t f = start; f < start + 24; ++f) {
      keys.push_back(ViewKey{f, -1});  // half present, half missing
    }
    ProbeResult res;
    view.ProbeBatch(keys, nullptr, &res);
    ASSERT_EQ(res.outcomes.size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      const std::vector<Row>* expected = view.TryGet(keys[i]);
      const storage::ProbeOutcome& oc = res.outcomes[i];
      if (expected == nullptr) {
        EXPECT_EQ(oc.status, ProbeStatus::kMiss) << "frame " << keys[i].frame;
        continue;
      }
      ASSERT_EQ(oc.status, ProbeStatus::kHit) << "frame " << keys[i].frame;
      ASSERT_EQ(static_cast<size_t>(oc.rows_count), expected->size());
      if (oc.rows_count > 0) ASSERT_GE(oc.seg_index, 0);
      for (int32_t r = 0; r < oc.rows_count; ++r) {
        Row got = res.segment(oc).RowAt(oc.rows_begin + r);
        const Row& want = (*expected)[static_cast<size_t>(r)];
        ASSERT_EQ(got.size(), want.size());
        for (size_t c = 0; c < want.size(); ++c) {
          EXPECT_EQ(got[c].ToString(), want[c].ToString());
          EXPECT_EQ(got[c].type(), want[c].type())
              << "columnar reconstruction must not widen types";
        }
      }
    }
    if (round == 10) {
      // Evict a middle segment; later probes must miss it and rebuilt
      // segments must stay consistent.
      view.EvictSegment(3);
      for (int64_t f = 24; f < 32; ++f) {
        EXPECT_EQ(view.TryGet(ViewKey{f, -1}), nullptr);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Zone-map skipping soundness
// ---------------------------------------------------------------------------

TEST(VectorizedFilterProperty, ZoneSkippingIsSound) {
  Lcg rng(0x5eed0003);
  Schema value_schema = DetectorValueSchema();
  // Scalar re-check schema: value columns plus the synthetic key columns
  // the zone check can reason about.
  Schema check_schema = value_schema;
  check_schema.AddField({"id", DataType::kInt64});
  MaterializedView view("v", value_schema);
  view.set_segment_frames(8);
  for (int64_t f = 0; f < 96; ++f) {
    view.Put(ViewKey{f, -1}, RandomDetections(rng),
             static_cast<uint64_t>(f), 0);
  }
  std::vector<ViewKey> keys;
  for (int64_t f = 0; f < 96; ++f) keys.push_back(ViewKey{f, -1});

  // Well-typed residual predicates over value + key columns, including
  // always-false ones so skipping demonstrably fires.
  auto gen_leaf = [&](Lcg& r) -> ExprPtr {
    auto op = static_cast<CompareOp>(r.Below(6));
    switch (r.Below(5)) {
      case 0:
        return Expr::Compare(op, Expr::Column("area"),
                             Expr::Literal(Value(r.Unit() * 1.2 - 0.3)));
      case 1:
        return Expr::Compare(op, Expr::Column("score"),
                             Expr::Literal(Value(r.Unit())));
      case 2:
        return Expr::Compare(
            op, Expr::Column("label"),
            Expr::Literal(Value(std::string(kLabels[r.Below(5)]))));
      case 3:
        return Expr::Compare(op, Expr::Column("id"),
                             Expr::Literal(Value(r.Below(120))));
      default:
        return Expr::Compare(op, Expr::Column("obj"),
                             Expr::Literal(Value(r.Below(6) - 1)));
    }
  };
  int64_t total_skipped = 0;
  for (int iter = 0; iter < 200; ++iter) {
    ExprPtr pred = gen_leaf(rng);
    if (rng.Chance(0.5)) {
      pred = rng.Chance(0.5) ? Expr::And(pred, gen_leaf(rng))
                             : Expr::Or(pred, gen_leaf(rng));
    }
    ProbeResult res;
    view.ProbeBatch(
        keys,
        [&](const storage::ColumnarSegment& seg) {
          return exec::ZoneCanMatch(*pred, seg, value_schema);
        },
        &res);
    total_skipped += res.segments_skipped;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (res.outcomes[i].status != ProbeStatus::kHitSkipped) continue;
      // Soundness: every stored row of a skipped hit fails the residual.
      const std::vector<Row>* rows = view.TryGet(keys[i]);
      ASSERT_NE(rows, nullptr);
      for (const Row& vr : *rows) {
        Row check = vr;
        check.push_back(Value(keys[i].frame));  // "id"
        auto verdict = expr::EvaluateBool(*pred, check_schema, check);
        ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
        EXPECT_FALSE(verdict.value())
            << "skipped a row satisfying " << pred->ToString();
      }
    }
  }
  EXPECT_GT(total_skipped, 0) << "generator never exercised skipping";

  // Deterministic corner cases: an unsatisfiable residual skips every
  // segment; a tautology skips none and matches point lookups.
  ExprPtr never = Expr::Compare(CompareOp::kGt, Expr::Column("area"),
                                Expr::Literal(Value(100.0)));
  ProbeResult res;
  view.ProbeBatch(
      keys,
      [&](const storage::ColumnarSegment& seg) {
        return exec::ZoneCanMatch(*never, seg, value_schema);
      },
      &res);
  EXPECT_EQ(res.segments_skipped, res.segments_probed);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_NE(res.outcomes[i].status, ProbeStatus::kHit);
  }
  ExprPtr always = Expr::Compare(CompareOp::kGe, Expr::Column("area"),
                                 Expr::Literal(Value(-100.0)));
  view.ProbeBatch(
      keys,
      [&](const storage::ColumnarSegment& seg) {
        return exec::ZoneCanMatch(*always, seg, value_schema);
      },
      &res);
  EXPECT_EQ(res.segments_skipped, 0);
}

// ---------------------------------------------------------------------------
// 4. Engine-level differential: flags off/on, threads 1 vs 4
// ---------------------------------------------------------------------------

struct EngineTrace {
  std::vector<std::string> batches;
  std::vector<double> total_ms;
};

EngineTrace RunEngineSession(int num_threads, bool vectorized, bool zones) {
  catalog::VideoInfo video = vbench::ShortUaDetrac();
  video.num_frames = 300;  // trimmed for test runtime
  std::vector<std::string> queries =
      vbench::VbenchHigh(video.name, video.num_frames);
  engine::EngineOptions options;
  options.num_threads = num_threads;
  options.observability = false;
  options.vectorized_filter = vectorized;
  options.zone_map_skipping = zones;
  auto engine_or = vbench::MakeEngine(options, video);
  EXPECT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  std::unique_ptr<engine::EvaEngine> engine = engine_or.MoveValue();
  EngineTrace trace;
  for (const std::string& sql : queries) {
    auto r = engine->Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) continue;
    trace.batches.push_back(r.value().batch.ToString(1 << 20));
    trace.total_ms.push_back(r.value().metrics.TotalMs());
  }
  return trace;
}

TEST(VectorizedFilterProperty, EngineResultsInvariantUnderFlagsAndThreads) {
  EngineTrace base = RunEngineSession(1, true, true);
  EngineTrace threaded = RunEngineSession(4, true, true);
  EngineTrace scalar = RunEngineSession(1, false, false);
  EngineTrace no_zones = RunEngineSession(1, true, false);
  ASSERT_EQ(base.batches.size(), threaded.batches.size());
  ASSERT_EQ(base.batches.size(), scalar.batches.size());
  ASSERT_EQ(base.batches.size(), no_zones.batches.size());
  for (size_t q = 0; q < base.batches.size(); ++q) {
    // Rows are identical whatever the flags; simulated time is
    // bit-identical across thread counts with the columnar path on.
    EXPECT_EQ(base.batches[q], threaded.batches[q]) << "query " << q;
    EXPECT_EQ(base.total_ms[q], threaded.total_ms[q]) << "query " << q;
    EXPECT_EQ(base.batches[q], scalar.batches[q]) << "query " << q;
    EXPECT_EQ(base.batches[q], no_zones.batches[q]) << "query " << q;
    // The vectorized evaluator itself never changes simulated costs.
    EXPECT_EQ(no_zones.total_ms[q], scalar.total_ms[q]) << "query " << q;
  }
}

}  // namespace
}  // namespace eva
