// Regression test for the runtime's determinism contract (docs/RUNTIME.md):
// a multi-query exploratory session must produce IDENTICAL results at any
// worker-thread count — same row sets, bitwise-equal simulated times and
// breakdowns, same per-UDF invocation/reuse counts, and the same aggregated
// predicates — with threads changing host wall clock only.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/eva_engine.h"
#include "vbench/vbench.h"

namespace eva {
namespace {

struct SessionTrace {
  std::vector<std::string> batches;  // rendered row sets, one per query
  std::vector<double> total_ms;      // simulated time per query
  std::vector<SimClock::Snapshot> breakdowns;
  std::map<std::string, int64_t> invocations;
  std::map<std::string, int64_t> reused;
  std::map<std::string, std::string> coverage;  // aggregated predicates
  double view_bytes = 0;
};

SessionTrace RunSession(int num_threads, int64_t morsel_rows,
                        optimizer::ReuseMode mode) {
  catalog::VideoInfo video = vbench::ShortUaDetrac();
  video.num_frames = 900;  // trimmed for test runtime; ≥ several morsels
  std::vector<std::string> queries =
      vbench::VbenchHigh(video.name, video.num_frames);

  engine::EngineOptions options;
  options.optimizer.mode = mode;
  if (mode == optimizer::ReuseMode::kNoReuse) {
    options.optimizer.reuse_enabled = false;
  }
  options.num_threads = num_threads;
  options.morsel_rows = morsel_rows;
  options.observability = false;  // isolate from the global registry
  auto engine_or = vbench::MakeEngine(options, video);
  EXPECT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  std::unique_ptr<engine::EvaEngine> engine = engine_or.MoveValue();
  EXPECT_EQ(engine->num_threads(), num_threads);

  SessionTrace trace;
  for (const std::string& sql : queries) {
    auto r = engine->Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) continue;
    trace.batches.push_back(r.value().batch.ToString(1 << 20));
    trace.total_ms.push_back(r.value().metrics.TotalMs());
    trace.breakdowns.push_back(r.value().metrics.breakdown);
    for (const auto& [udf, n] : r.value().metrics.invocations) {
      trace.invocations[udf] += n;
    }
    for (const auto& [udf, n] : r.value().metrics.reused) {
      trace.reused[udf] += n;
    }
  }
  for (const auto& [key, entry] : engine->udf_manager().entries()) {
    trace.coverage[key] = entry.coverage.ToString();
  }
  trace.view_bytes = engine->views().TotalSizeBytes();
  return trace;
}

void ExpectIdentical(const SessionTrace& base, const SessionTrace& other,
                     const std::string& label) {
  ASSERT_EQ(base.batches.size(), other.batches.size()) << label;
  for (size_t q = 0; q < base.batches.size(); ++q) {
    EXPECT_EQ(base.batches[q], other.batches[q])
        << label << " row set of query " << q;
    // Bitwise equality on purpose: the ChargeLog replay guarantees the
    // same doubles, not approximately the same doubles.
    EXPECT_EQ(base.total_ms[q], other.total_ms[q])
        << label << " simulated time of query " << q;
    for (size_t c = 0;
         c < static_cast<size_t>(CostCategory::kNumCategories); ++c) {
      EXPECT_EQ(base.breakdowns[q].ms[c], other.breakdowns[q].ms[c])
          << label << " breakdown[" << c << "] of query " << q;
    }
  }
  EXPECT_EQ(base.invocations, other.invocations) << label;
  EXPECT_EQ(base.reused, other.reused) << label;
  EXPECT_EQ(base.coverage, other.coverage) << label;
  EXPECT_EQ(base.view_bytes, other.view_bytes) << label;
}

TEST(DeterminismTest, EvaSessionIdenticalAtOneTwoAndEightThreads) {
  SessionTrace serial = RunSession(1, 128, optimizer::ReuseMode::kEva);
  ASSERT_FALSE(serial.batches.empty());
  ASSERT_FALSE(serial.invocations.empty());
  ExpectIdentical(serial, RunSession(2, 128, optimizer::ReuseMode::kEva),
                  "2 threads");
  ExpectIdentical(serial, RunSession(8, 128, optimizer::ReuseMode::kEva),
                  "8 threads");
}

TEST(DeterminismTest, MorselSizeDoesNotChangeResults) {
  // Smaller morsels change the work decomposition, not the charge replay
  // order — results stay identical.
  SessionTrace serial = RunSession(1, 128, optimizer::ReuseMode::kEva);
  ExpectIdentical(serial, RunSession(4, 17, optimizer::ReuseMode::kEva),
                  "4 threads / 17-row morsels");
}

TEST(DeterminismTest, NoReuseSessionIdenticalAcrossThreads) {
  SessionTrace serial = RunSession(1, 128, optimizer::ReuseMode::kNoReuse);
  ExpectIdentical(serial, RunSession(4, 128, optimizer::ReuseMode::kNoReuse),
                  "4 threads no-reuse");
}

}  // namespace
}  // namespace eva
