#include <gtest/gtest.h>

#include <map>

#include "symbolic/predicate.h"
#include "symbolic/stats.h"

namespace eva::symbolic {
namespace {

// --- helpers -------------------------------------------------------------

DimConstraint IntAtLeast(double v) {
  return DimConstraint::Numeric(DimKind::kInteger, Interval::AtLeast(v));
}
DimConstraint IntLess(double v) {
  return DimConstraint::Numeric(DimKind::kInteger, Interval::LessThan(v));
}
DimConstraint RealGreater(double v) {
  return DimConstraint::Numeric(DimKind::kReal, Interval::GreaterThan(v));
}
DimConstraint CatEq(const std::string& v) {
  return DimConstraint::Categorical({v}, false);
}

ValueLookup MakeLookup(std::map<std::string, Value> vals) {
  return [vals = std::move(vals)](const std::string& dim) -> Value {
    auto it = vals.find(dim);
    return it == vals.end() ? Value::Null() : it->second;
  };
}

// --- Conjunct ------------------------------------------------------------

TEST(ConjunctTest, ConstrainMergesSameDimension) {
  Conjunct c;
  ASSERT_TRUE(c.Constrain("id", IntAtLeast(5)));
  ASSERT_TRUE(c.Constrain("id", IntLess(10)));
  EXPECT_EQ(c.dims().size(), 1u);
  EXPECT_TRUE(c.Evaluate(MakeLookup({{"id", Value(int64_t{7})}})));
  EXPECT_FALSE(c.Evaluate(MakeLookup({{"id", Value(int64_t{10})}})));
}

TEST(ConjunctTest, ConstrainDetectsContradiction) {
  Conjunct c;
  ASSERT_TRUE(c.Constrain("id", IntAtLeast(10)));
  EXPECT_FALSE(c.Constrain("id", IntLess(5)));
}

TEST(ConjunctTest, SubsetAcrossDimensions) {
  Conjunct small;
  small.Constrain("id", IntAtLeast(5));
  small.Constrain("label", CatEq("car"));
  Conjunct big;
  big.Constrain("id", IntAtLeast(0));
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(Conjunct()));  // TRUE is a superset of all
}

TEST(ConjunctTest, IntersectUnsatReturnsNull) {
  Conjunct a, b;
  a.Constrain("label", CatEq("car"));
  b.Constrain("label", CatEq("bus"));
  EXPECT_FALSE(a.Intersect(b).has_value());
}

// --- Predicate: basic algebra ---------------------------------------------

TEST(PredicateTest, TrueFalse) {
  EXPECT_TRUE(Predicate::False().IsFalse());
  EXPECT_TRUE(Predicate::True().IsTrue());
  EXPECT_TRUE(Predicate::True().Evaluate(MakeLookup({})));
  EXPECT_FALSE(Predicate::False().Evaluate(MakeLookup({})));
}

TEST(PredicateTest, PaperMonadicReduction) {
  // "timestamp > 6pm OR timestamp > 9pm" reduces to "timestamp > 6pm" (§2).
  Predicate p = Predicate::Or(Predicate::Atom("timestamp", RealGreater(18)),
                              Predicate::Atom("timestamp", RealGreater(21)));
  ASSERT_EQ(p.conjuncts().size(), 1u);
  EXPECT_TRUE(p.Evaluate(MakeLookup({{"timestamp", Value(19.0)}})));
  EXPECT_FALSE(p.Evaluate(MakeLookup({{"timestamp", Value(17.0)}})));
  EXPECT_EQ(p.AtomCount(), 1);
}

TEST(PredicateTest, PaperPolyadicReduction) {
  // UNION(5<x ∧ 10<y, 10<x ∧ 15<y) => 5<x ∧ 10<y, since the second
  // conjunct is a subset of the first (§4.1 challenge example).
  Conjunct c1;
  c1.Constrain("x", RealGreater(5));
  c1.Constrain("y", RealGreater(10));
  Conjunct c2;
  c2.Constrain("x", RealGreater(10));
  c2.Constrain("y", RealGreater(15));
  Predicate p =
      Predicate::Or(Predicate::FromConjunct(c1), Predicate::FromConjunct(c2));
  ASSERT_EQ(p.conjuncts().size(), 1u);
  EXPECT_EQ(p.AtomCount(), 2);
}

TEST(PredicateTest, Fig2CaseIiConcatenation) {
  // Equal y-ranges, adjacent x-ranges concatenate along x.
  Conjunct c1;
  c1.Constrain("x", DimConstraint::Numeric(
                        DimKind::kReal,
                        Interval(Bound::Closed(0), Bound::Closed(5))));
  c1.Constrain("y", DimConstraint::Numeric(
                        DimKind::kReal,
                        Interval(Bound::Closed(0), Bound::Closed(1))));
  Conjunct c2;
  c2.Constrain("x", DimConstraint::Numeric(
                        DimKind::kReal,
                        Interval(Bound::Closed(5), Bound::Closed(9))));
  c2.Constrain("y", DimConstraint::Numeric(
                        DimKind::kReal,
                        Interval(Bound::Closed(0), Bound::Closed(1))));
  Predicate p =
      Predicate::Or(Predicate::FromConjunct(c1), Predicate::FromConjunct(c2));
  ASSERT_EQ(p.conjuncts().size(), 1u);
  EXPECT_TRUE(p.Evaluate(MakeLookup({{"x", Value(7.0)}, {"y", Value(0.5)}})));
  EXPECT_FALSE(
      p.Evaluate(MakeLookup({{"x", Value(10.0)}, {"y", Value(0.5)}})));
}

TEST(PredicateTest, Fig2CaseIiiOverlapCarving) {
  // c2 ⊆ c1 in y; overlapping x gets carved out of c2 so the union is
  // disjoint (c1 ∨ carved-c2).
  Conjunct c1;
  c1.Constrain("x", DimConstraint::Numeric(
                        DimKind::kReal,
                        Interval(Bound::Closed(0), Bound::Closed(6))));
  c1.Constrain("y", DimConstraint::Numeric(
                        DimKind::kReal,
                        Interval(Bound::Closed(0), Bound::Closed(2))));
  Conjunct c2;
  c2.Constrain("x", DimConstraint::Numeric(
                        DimKind::kReal,
                        Interval(Bound::Closed(4), Bound::Closed(9))));
  c2.Constrain("y", DimConstraint::Numeric(
                        DimKind::kReal,
                        Interval(Bound::Closed(1), Bound::Closed(2))));
  Predicate p =
      Predicate::Or(Predicate::FromConjunct(c1), Predicate::FromConjunct(c2));
  ASSERT_EQ(p.conjuncts().size(), 2u);
  // Semantics preserved at sample points.
  EXPECT_TRUE(p.Evaluate(MakeLookup({{"x", Value(5.0)}, {"y", Value(1.5)}})));
  EXPECT_TRUE(p.Evaluate(MakeLookup({{"x", Value(8.0)}, {"y", Value(1.5)}})));
  EXPECT_FALSE(
      p.Evaluate(MakeLookup({{"x", Value(8.0)}, {"y", Value(0.5)}})));
  // Disjointness: the conjuncts no longer overlap.
  ASSERT_FALSE(p.conjuncts()[0].Intersect(p.conjuncts()[1]).has_value());
}

TEST(PredicateTest, AndPrunesUnsat) {
  Predicate a = Predicate::Atom("label", CatEq("car"));
  Predicate b = Predicate::Atom("label", CatEq("bus"));
  auto r = Predicate::And(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().IsFalse());
}

TEST(PredicateTest, NotOfAtom) {
  auto r = Predicate::Not(Predicate::Atom("id", IntAtLeast(5)));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().Evaluate(MakeLookup({{"id", Value(int64_t{4})}})));
  EXPECT_FALSE(r.value().Evaluate(MakeLookup({{"id", Value(int64_t{5})}})));
}

TEST(PredicateTest, NotOfTrueAndFalse) {
  auto nt = Predicate::Not(Predicate::True());
  ASSERT_TRUE(nt.ok());
  EXPECT_TRUE(nt.value().IsFalse());
  auto nf = Predicate::Not(Predicate::False());
  ASSERT_TRUE(nf.ok());
  EXPECT_TRUE(nf.value().IsTrue());
}

// --- INTER / DIFF / UNION (§3.2) -------------------------------------------

TEST(PredicateTest, InterDiffUnionSemantics) {
  // p_u = (id >= 0 AND id < 10000): coverage after an earlier query.
  Conjunct cu;
  cu.Constrain("id", IntAtLeast(0));
  cu.Constrain("id", IntLess(10000));
  Predicate pu = Predicate::FromConjunct(cu);

  // q = (id >= 7500): the new query predicate (Q6 "shifting" in Table 1).
  Predicate q = Predicate::Atom("id", IntAtLeast(7500));

  auto inter = Predicate::Inter(pu, q);
  auto diff = Predicate::Diff(pu, q);
  Predicate uni = Predicate::Union(pu, q);
  ASSERT_TRUE(inter.ok());
  ASSERT_TRUE(diff.ok());

  auto at = [](int64_t id) {
    return MakeLookup({{"id", Value(id)}});
  };
  // 8000 is covered by both: reuse.
  EXPECT_TRUE(inter.value().Evaluate(at(8000)));
  EXPECT_FALSE(diff.value().Evaluate(at(8000)));
  // 12000 only in q: must evaluate.
  EXPECT_FALSE(inter.value().Evaluate(at(12000)));
  EXPECT_TRUE(diff.value().Evaluate(at(12000)));
  // 5000 only in p_u.
  EXPECT_FALSE(inter.value().Evaluate(at(5000)));
  EXPECT_FALSE(diff.value().Evaluate(at(5000)));
  EXPECT_TRUE(uni.Evaluate(at(5000)));
  EXPECT_TRUE(uni.Evaluate(at(12000)));
  EXPECT_FALSE(uni.Evaluate(at(-1)));
  // The union [0,10000) ∪ [7500,∞) reduces to a single conjunct [0,∞).
  EXPECT_EQ(uni.conjuncts().size(), 1u);
}

TEST(PredicateTest, DiffAgainstEmptyCoverageIsQuery) {
  Predicate q = Predicate::Atom("id", IntAtLeast(5));
  auto diff = Predicate::Diff(Predicate::False(), q);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff.value().Evaluate(MakeLookup({{"id", Value(int64_t{6})}})));
  auto inter = Predicate::Inter(Predicate::False(), q);
  ASSERT_TRUE(inter.ok());
  EXPECT_TRUE(inter.value().IsFalse());
}

TEST(PredicateTest, MultiDimensionalDiff) {
  // Earlier: label=car AND area>0.3. Now: label=car AND area>0.15.
  // DIFF must be label=car AND 0.15 < area <= 0.3.
  Conjunct cu;
  cu.Constrain("label", CatEq("car"));
  cu.Constrain("area", RealGreater(0.3));
  Conjunct cq;
  cq.Constrain("label", CatEq("car"));
  cq.Constrain("area", RealGreater(0.15));
  auto diff =
      Predicate::Diff(Predicate::FromConjunct(cu), Predicate::FromConjunct(cq));
  ASSERT_TRUE(diff.ok());
  auto at = [](double area, const std::string& label) {
    return MakeLookup({{"area", Value(area)}, {"label", Value(label)}});
  };
  EXPECT_TRUE(diff.value().Evaluate(at(0.2, "car")));
  EXPECT_FALSE(diff.value().Evaluate(at(0.4, "car")));
  EXPECT_FALSE(diff.value().Evaluate(at(0.2, "bus")));
}

// --- Selectivity ------------------------------------------------------------

// Uniform stats: t in [0,100), area in [0,1), label car with prob 0.8.
class UniformStats : public StatsProvider {
 public:
  DimKind KindOf(const std::string& dim) const override {
    if (dim == "label") return DimKind::kCategorical;
    return DimKind::kReal;
  }
  double ConstraintSelectivity(const std::string& dim,
                               const DimConstraint& c) const override {
    if (dim == "label") {
      double s = 0;
      if (c.is_categorical()) {
        for (const auto& v : c.categorical_values()) {
          if (v == "car") s += 0.8;
          if (v == "bus") s += 0.2;
        }
        return c.categorical_exclude() ? 1.0 - s : s;
      }
      return 1.0;
    }
    double lo = 0, hi = dim == "t" ? 100 : 1;
    const Interval& iv = c.interval();
    double l = iv.lo().infinite ? lo : std::max(lo, iv.lo().value);
    double h = iv.hi().infinite ? hi : std::min(hi, iv.hi().value);
    return std::max(0.0, (h - l) / (hi - lo));
  }
};

DimConstraint RealLess(double v) {
  return DimConstraint::Numeric(DimKind::kReal, Interval::LessThan(v));
}
DimConstraint RealAtLeast(double v) {
  return DimConstraint::Numeric(DimKind::kReal, Interval::AtLeast(v));
}

TEST(SelectivityTest, ConjunctProduct) {
  UniformStats stats;
  Conjunct c;
  c.Constrain("t", RealLess(50));
  c.Constrain("label", CatEq("car"));
  EXPECT_NEAR(ConjunctSelectivity(c, stats), 0.5 * 0.8, 1e-9);
}

TEST(SelectivityTest, DisjointUnionAdds) {
  UniformStats stats;
  Conjunct c1, c2;
  c1.Constrain("t", RealLess(30));
  c2.Constrain("t", RealAtLeast(70));
  Predicate p;
  p.AddConjunct(c1);
  p.AddConjunct(c2);
  EXPECT_NEAR(PredicateSelectivity(p, stats), 0.6, 1e-9);
}

TEST(SelectivityTest, OverlapSubtracted) {
  UniformStats stats;
  Conjunct c1, c2;
  c1.Constrain("t", RealLess(60));
  c2.Constrain("t", RealAtLeast(40));
  Predicate p;
  p.AddConjunct(c1);
  p.AddConjunct(c2);
  // 0.6 + 0.6 - 0.2 overlap, clamped to 1. Tests the raw estimator
  // (Reduce() would merge these two conjuncts).
  EXPECT_NEAR(PredicateSelectivity(p, stats), 1.0, 1e-9);
}

}  // namespace
}  // namespace eva::symbolic
