#include <gtest/gtest.h>

#include "expr/expr.h"
#include "expr/symbolic_bridge.h"
#include "parser/parser.h"

namespace eva::expr {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"label", DataType::kString},
                 {"area", DataType::kDouble},
                 {"CarType", DataType::kString}});
}

Row TestRow(int64_t id, const std::string& label, double area,
            const std::string& car_type) {
  return {Value(id), Value(label), Value(area), Value(car_type)};
}

TEST(ExprTest, BuildAndPrint) {
  ExprPtr e = Expr::And(
      Expr::Compare(CompareOp::kGt, Expr::Column("id"),
                    Expr::Literal(Value(int64_t{5}))),
      Expr::Compare(CompareOp::kEq,
                    Expr::UdfCall("CarType", {"frame", "bbox"}),
                    Expr::Literal(Value("Nissan"))));
  EXPECT_EQ(e->ToString(),
            "(id > 5 AND CarType(frame, bbox) = 'Nissan')");
  EXPECT_TRUE(e->ContainsUdf());
  EXPECT_EQ(e->ReferencedUdfs(), std::vector<std::string>{"CarType"});
}

TEST(ExprTest, EvaluateComparisons) {
  Schema schema = TestSchema();
  Row row = TestRow(7, "car", 0.4, "Nissan");
  struct Case {
    const char* text;
    bool expected;
  } cases[] = {
      {"id > 5", true},           {"id > 7", false},
      {"id >= 7", true},          {"id != 7", false},
      {"label = 'car'", true},    {"label != 'car'", false},
      {"area > 0.3", true},       {"area <= 0.3", false},
      {"5 < id", true},           {"0.5 >= area", true},
  };
  for (const Case& c : cases) {
    auto e = parser::ParseExpression(c.text);
    ASSERT_TRUE(e.ok()) << c.text;
    auto r = EvaluateBool(*e.value(), schema, row);
    ASSERT_TRUE(r.ok()) << c.text;
    EXPECT_EQ(r.value(), c.expected) << c.text;
  }
}

TEST(ExprTest, EvaluateBooleanLogicWithShortCircuit) {
  Schema schema = TestSchema();
  Row row = TestRow(7, "car", 0.4, "Nissan");
  auto check = [&](const char* text, bool expected) {
    auto e = parser::ParseExpression(text);
    ASSERT_TRUE(e.ok()) << text;
    auto r = EvaluateBool(*e.value(), schema, row);
    ASSERT_TRUE(r.ok()) << text;
    EXPECT_EQ(r.value(), expected) << text;
  };
  check("id > 5 AND label = 'car'", true);
  check("id > 50 OR label = 'car'", true);
  check("NOT id > 50", true);
  check("NOT (id > 5 AND area > 0.3)", false);
}

TEST(ExprTest, NullComparisonsAreFalse) {
  Schema schema = TestSchema();
  Row row = {Value(int64_t{1}), Value::Null(), Value(0.2), Value::Null()};
  auto e = parser::ParseExpression("label = 'car'");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(EvaluateBool(*e.value(), schema, row).value());
  e = parser::ParseExpression("label != 'car'");
  EXPECT_FALSE(EvaluateBool(*e.value(), schema, row).value());
}

TEST(ExprTest, UdfCallReadsAnnotatedColumn) {
  Schema schema = TestSchema();
  Row row = TestRow(7, "car", 0.4, "Nissan");
  auto e = parser::ParseExpression("CarType(frame, bbox) = 'Nissan'");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(EvaluateBool(*e.value(), schema, row).value());
}

TEST(ExprTest, UnknownColumnIsBindError) {
  Schema schema = TestSchema();
  Row row = TestRow(7, "car", 0.4, "Nissan");
  auto e = parser::ParseExpression("bogus = 1");
  ASSERT_TRUE(e.ok());
  auto r = EvaluateBool(*e.value(), schema, row);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(ExprTest, SplitAndCombineConjuncts) {
  auto e = parser::ParseExpression(
      "id > 5 AND label = 'car' AND (area > 0.3 AND id < 10)");
  ASSERT_TRUE(e.ok());
  auto conjuncts = SplitConjuncts(e.value());
  EXPECT_EQ(conjuncts.size(), 4u);
  ExprPtr combined = CombineConjuncts(conjuncts);
  Schema schema = TestSchema();
  EXPECT_TRUE(
      EvaluateBool(*combined, schema, TestRow(7, "car", 0.4, "x")).value());
  EXPECT_FALSE(
      EvaluateBool(*combined, schema, TestRow(12, "car", 0.4, "x"))
          .value());
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

// --- symbolic bridge -------------------------------------------------------

symbolic::DimKind Kinds(const std::string& dim) {
  if (dim == "id") return symbolic::DimKind::kInteger;
  if (dim == "area") return symbolic::DimKind::kReal;
  return symbolic::DimKind::kCategorical;
}

TEST(SymbolicBridgeTest, ConvertsConjunction) {
  auto e = parser::ParseExpression(
      "id >= 100 AND id < 200 AND label = 'car' AND area > 0.3");
  ASSERT_TRUE(e.ok());
  auto p = ExprToPredicate(*e.value(), Kinds);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p.value().conjuncts().size(), 1u);
  auto at = [&](int64_t id, const char* label, double area) {
    return p.value().Evaluate([&](const std::string& dim) -> Value {
      if (dim == "id") return Value(id);
      if (dim == "area") return Value(area);
      return Value(std::string(label));
    });
  };
  EXPECT_TRUE(at(150, "car", 0.4));
  EXPECT_FALSE(at(150, "bus", 0.4));
  EXPECT_FALSE(at(150, "car", 0.2));
  EXPECT_FALSE(at(250, "car", 0.4));
}

TEST(SymbolicBridgeTest, ConvertsDisjunctionAndNegation) {
  auto e = parser::ParseExpression("NOT (id < 10 OR id >= 20)");
  ASSERT_TRUE(e.ok());
  auto p = ExprToPredicate(*e.value(), Kinds);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().Evaluate(
      [](const std::string&) { return Value(int64_t{15}); }));
  EXPECT_FALSE(p.value().Evaluate(
      [](const std::string&) { return Value(int64_t{5}); }));
}

TEST(SymbolicBridgeTest, UdfCallBecomesDimension) {
  auto e = parser::ParseExpression("CarType(frame, bbox) = 'Nissan'");
  ASSERT_TRUE(e.ok());
  auto p = ExprToPredicate(*e.value(), Kinds);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p.value().conjuncts().size(), 1u);
  EXPECT_TRUE(p.value().conjuncts()[0].Constrains("CarType"));
}

TEST(SymbolicBridgeTest, MirrorsLiteralOnLeft) {
  auto e = parser::ParseExpression("100 <= id");
  ASSERT_TRUE(e.ok());
  auto p = ExprToPredicate(*e.value(), Kinds);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().Evaluate(
      [](const std::string&) { return Value(int64_t{100}); }));
  EXPECT_FALSE(p.value().Evaluate(
      [](const std::string&) { return Value(int64_t{99}); }));
}

TEST(SymbolicBridgeTest, RejectsColumnVsColumn) {
  auto e = parser::ParseExpression("id = obj");
  ASSERT_TRUE(e.ok());
  auto p = ExprToPredicate(*e.value(), Kinds);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotImplemented);
}

TEST(SymbolicBridgeTest, RejectsOrderedCategorical) {
  auto e = parser::ParseExpression("label > 'car'");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(ExprToPredicate(*e.value(), Kinds).ok());
}

}  // namespace
}  // namespace eva::expr
