// Ingest-vs-query race test, written for the TSan CI matrix: one thread
// streams ingestion ticks through EvaService while session threads submit
// queries and a scraper hammers the /ingest and /metrics endpoints. The
// service FIFO serializes every ingest advance ahead of the queries that
// could claim the new frames, so whatever the submission interleaving, the
// drained store must answer the final probe exactly like a cold engine at
// the full horizon — the coverage-overclaim oracle under concurrency.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "service/eva_service.h"
#include "vbench/vbench.h"

namespace eva {
namespace {

namespace stdfs = std::filesystem;

constexpr int64_t kTotal = 120;
constexpr int64_t kInitial = 40;
constexpr int64_t kTick = 20;
constexpr int kSessions = 2;
const char kSource[] = "sv";

catalog::VideoInfo StreamVideo() {
  catalog::VideoInfo v;
  v.name = kSource;
  v.mean_objects_per_frame = 6;
  v.seed = 31;
  return v;
}

std::unique_ptr<engine::EvaEngine> MakeStreamEngine(int64_t initial) {
  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  auto engine = std::make_unique<engine::EvaEngine>(
      options, std::make_shared<catalog::Catalog>());
  EXPECT_TRUE(vbench::RegisterStandardUdfs(engine.get()).ok());
  ingest::StreamOptions sopts;
  sopts.initial_frames = initial;
  sopts.total_frames = kTotal;
  EXPECT_TRUE(engine->RegisterStream(StreamVideo(), sopts).ok());
  return engine;
}

std::vector<std::string> SessionQueries() {
  return {
      "SELECT id, obj FROM sv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE label = 'car';",
      "SELECT id, obj FROM sv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id >= 10 AND label = 'car' "
      "AND CarType(frame, bbox) = 'Nissan';",
      "SELECT id, obj FROM sv CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 100 AND label = 'bus';",
  };
}

std::string HttpGetRaw(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + target +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n"
                    "\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return raw;
}

TEST(IngestRaceTest, RacingIngestQueriesAndScrapesStaySound) {
  const stdfs::path wal_dir =
      stdfs::temp_directory_path() /
      ("eva_ingest_race_" + std::to_string(::getpid()));
  stdfs::remove_all(wal_dir);

  // Ground truth: the final probe on a cold engine already at the full
  // horizon, computed before the race so nothing shared leaks in.
  std::string oracle_rows;
  {
    auto cold = MakeStreamEngine(kTotal);
    auto r = cold->Execute(SessionQueries()[0]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    oracle_rows = r.value().batch.ToString(1 << 20);
  }

  auto engine = MakeStreamEngine(kInitial);
  ASSERT_TRUE(engine->EnableWal(wal_dir.string()).ok());
  ASSERT_TRUE(engine->StartTelemetryServer(0).ok());
  const int port = engine->telemetry_port();
  ASSERT_GT(port, 0);

  service::EvaService svc(std::move(engine));
  std::vector<std::shared_ptr<service::EvaSession>> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(svc.CreateSession("racer-" + std::to_string(s)));
  }

  std::atomic<bool> stop_scraper{false};
  std::atomic<int> query_errors{0};
  std::atomic<int> ingest_errors{0};

  std::vector<std::thread> workers;
  // Session threads: several passes over the query set, racing the
  // ingestion ticks below for the executor queue.
  for (int s = 0; s < kSessions; ++s) {
    workers.emplace_back([&svc, &sessions, &query_errors, s] {
      const auto queries = SessionQueries();
      for (int pass = 0; pass < 3; ++pass) {
        for (const std::string& sql : queries) {
          auto r = svc.Execute(sessions[static_cast<size_t>(s)]->id(), sql);
          if (!r.ok()) {
            ADD_FAILURE() << "query failed: " << r.status().ToString();
            query_errors.fetch_add(1);
          }
        }
      }
    });
  }
  // The ingestion thread: ticks until the stream is fully delivered, with
  // a checkpoint partway through to race log rotation against queries.
  workers.emplace_back([&svc, &ingest_errors] {
    int64_t visible = kInitial;
    int ticks = 0;
    while (visible < kTotal) {
      auto r = svc.Ingest(kSource, kTick);
      if (!r.ok()) {
        ADD_FAILURE() << "ingest failed: " << r.status().ToString();
        ingest_errors.fetch_add(1);
        break;
      }
      visible = r.value().visible;
      if (++ticks == 2) {
        Status ck = svc.Checkpoint();
        if (!ck.ok()) {
          ADD_FAILURE() << "checkpoint failed: " << ck.ToString();
          ingest_errors.fetch_add(1);
        }
      }
    }
  });
  // The scraper: pre-rendered snapshots must be servable at any moment.
  workers.emplace_back([port, &stop_scraper] {
    const char* targets[] = {"/ingest", "/metrics", "/sessions"};
    int i = 0;
    while (!stop_scraper.load(std::memory_order_acquire)) {
      (void)HttpGetRaw(port, targets[i++ % 3]);
    }
  });

  for (size_t w = 0; w + 1 < workers.size(); ++w) workers[w].join();
  stop_scraper.store(true, std::memory_order_release);
  workers.back().join();
  svc.Drain();

  EXPECT_EQ(query_errors.load(), 0);
  EXPECT_EQ(ingest_errors.load(), 0);

  auto final_sources = svc.engine()->ingestor().Sources();
  ASSERT_EQ(final_sources.size(), 1u);
  EXPECT_EQ(final_sources[0].visible, kTotal);

  auto probe = svc.Execute(sessions[0]->id(), SessionQueries()[0]);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(probe.value().batch.ToString(1 << 20), oracle_rows)
      << "coverage overclaimed somewhere in the interleaving";

  stdfs::remove_all(wal_dir);
}

}  // namespace
}  // namespace eva
