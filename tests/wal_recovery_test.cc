// WAL crash-recovery matrix (docs/STREAMING.md): run a scripted streaming
// session — queries, ingestion ticks, a mid-session checkpoint — with the
// fault injector recording every filesystem point the write-ahead log
// consults, then simulate a process death at each recorded (point,
// occurrence) and recover a fresh engine from the directory. The oracle is
// a cold engine pinned to whatever horizon the recovery settled on: rows
// must be bit-identical, which is exactly the "coverage never overclaims"
// contract — an overclaiming recovery silently reads "processed, no
// objects" and drops rows. Also covers silent torn tails (shortwrite),
// recovery idempotence, and the horizon guard against claims racing past
// the last durable ingest advance.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "engine/eva_engine.h"
#include "fault/fault_injector.h"
#include "vbench/vbench.h"
#include "wal/wal_log.h"

namespace eva::engine {
namespace {

namespace stdfs = std::filesystem;

constexpr int64_t kTotal = 120;
constexpr int64_t kInitial = 60;
constexpr int64_t kTick = 30;
const char kSource[] = "sv";
const char kDetectorKey[] = "FasterRCNNResNet50@sv";

catalog::VideoInfo StreamVideo() {
  catalog::VideoInfo v;
  v.name = kSource;
  v.mean_objects_per_frame = 6;
  v.seed = 11;
  return v;
}

const char kQ1[] =
    "SELECT id, obj FROM sv CROSS APPLY FasterRCNNResNet50(frame) "
    "WHERE id < 50 AND label = 'car';";
const char kQ2[] =
    "SELECT id, obj FROM sv CROSS APPLY FasterRCNNResNet50(frame) "
    "WHERE id >= 20 AND label = 'car' "
    "AND CarType(frame, bbox) = 'Nissan';";
/// The probe: every visible car frame — its row set is a pure function of
/// the recovered horizon.
const char kProbe[] =
    "SELECT id, obj FROM sv CROSS APPLY FasterRCNNResNet50(frame) "
    "WHERE label = 'car';";

class WalRecoveryTest : public ::testing::Test {
 protected:
  WalRecoveryTest() {
    root_ = stdfs::temp_directory_path() /
            ("eva_wal_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    stdfs::remove_all(root_);
    stdfs::create_directories(root_);
  }
  ~WalRecoveryTest() override { stdfs::remove_all(root_); }

  /// A streaming engine with the source registered at `initial` visible
  /// frames and no WAL yet (EnableWal is each test's recovery entry point).
  std::unique_ptr<EvaEngine> MakeStreamEngine(int64_t initial) {
    engine::EngineOptions options;
    options.optimizer.mode = optimizer::ReuseMode::kEva;
    auto engine = std::make_unique<EvaEngine>(
        options, std::make_shared<catalog::Catalog>());
    EXPECT_TRUE(vbench::RegisterStandardUdfs(engine.get()).ok());
    ingest::StreamOptions sopts;
    sopts.initial_frames = initial;
    sopts.total_frames = kTotal;
    EXPECT_TRUE(engine->RegisterStream(StreamVideo(), sopts).ok());
    return engine;
  }

  /// The scripted session every matrix entry replays: recovery + queries +
  /// two ingestion ticks with a checkpoint between them. Statuses are
  /// collected, not asserted — once a crash fires, everything after it
  /// fails by design.
  std::vector<Status> RunScript(EvaEngine* engine, const std::string& dir) {
    std::vector<Status> out;
    out.push_back(engine->EnableWal(dir));
    out.push_back(engine->Execute(kQ1).status());
    out.push_back(engine->IngestFrames(kSource, kTick).status());
    out.push_back(engine->Execute(kQ2).status());
    out.push_back(engine->Checkpoint());
    out.push_back(engine->IngestFrames(kSource, kTick).status());
    out.push_back(engine->Execute(kProbe).status());
    return out;
  }

  int64_t VisibleHorizon(const EvaEngine& engine) {
    auto sources = engine.ingestor().Sources();
    EXPECT_EQ(sources.size(), 1u);
    return sources.empty() ? -1 : sources[0].visible;
  }

  /// Probe rows of a cold engine pinned to horizon `h` — the reference a
  /// recovered engine at that horizon must reproduce bit-for-bit. Cached:
  /// the matrix recovers to the same few horizons over and over.
  const std::string& OracleRows(int64_t h) {
    auto it = oracle_.find(h);
    if (it != oracle_.end()) return it->second;
    auto engine = MakeStreamEngine(h);
    auto r = engine->Execute(kProbe);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return oracle_
        .emplace(h, r.ok() ? r.value().batch.ToString(1 << 20) : "")
        .first->second;
  }

  /// Recovers a fresh engine from `dir` and asserts the soundness
  /// contract: recovery succeeds, the horizon is one the script could have
  /// made durable, and the probe matches the cold oracle at that horizon.
  /// Returns the recovered engine for further assertions.
  std::unique_ptr<EvaEngine> RecoverAndCheck(const std::string& dir,
                                             const std::string& context) {
    auto engine = MakeStreamEngine(kInitial);
    Status armed = engine->EnableWal(dir);
    EXPECT_TRUE(armed.ok()) << context << ": " << armed.ToString();
    if (!armed.ok()) return engine;
    const int64_t h = VisibleHorizon(*engine);
    EXPECT_TRUE(h == kInitial || h == kInitial + kTick ||
                h == kInitial + 2 * kTick)
        << context << ": recovered horizon " << h;
    auto r = engine->Execute(kProbe);
    EXPECT_TRUE(r.ok()) << context << ": " << r.status().ToString();
    if (r.ok()) {
      EXPECT_EQ(r.value().batch.ToString(1 << 20), OracleRows(h))
          << context << ": probe rows diverge from cold oracle at horizon "
          << h << " (replay: " << engine->last_replay().Summary() << ")";
    }
    return engine;
  }

  stdfs::path root_;
  std::map<int64_t, std::string> oracle_;
};

/// Kill the session at every filesystem point the WAL consults — log
/// appends, the checkpoint's snapshot rewrite, log-file rotation — and
/// prove each crashed directory recovers to a sound state.
TEST_F(WalRecoveryTest, CrashMatrixRecoversSoundlyAtEveryPoint) {
  const stdfs::path dir = root_ / "wal";
  std::vector<fault::FaultHit> points;
  {
    auto engine = MakeStreamEngine(kInitial);
    engine->fault_injector()->set_recording(true);
    for (const Status& s : RunScript(engine.get(), dir.string())) {
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
    points = engine->fault_injector()->hits();
  }
  ASSERT_GE(points.size(), 12u)
      << "the scripted session consults too few fault points";

  for (const fault::FaultHit& hit : points) {
    const std::string label =
        hit.point + "#" + std::to_string(hit.occurrence);
    stdfs::remove_all(dir);
    auto engine = MakeStreamEngine(kInitial);
    ASSERT_TRUE(engine
                    ->SetFaultSchedule("crash@" + hit.point + "#" +
                                       std::to_string(hit.occurrence))
                    .ok());
    (void)RunScript(engine.get(), dir.string());
    EXPECT_GE(engine->fault_injector()->fired(), 1)
        << label << ": the scheduled crash never fired";
    RecoverAndCheck(dir.string(), "crash at " + label);
  }
}

/// A silently torn group commit (short write that still returned success)
/// must be caught by the CRC framing: the tail is truncated and
/// quarantined, every record before it replays, and the probe stays sound.
TEST_F(WalRecoveryTest, TornTailIsQuarantinedAndSound) {
  const stdfs::path dir = root_ / "torn";
  {
    auto engine = MakeStreamEngine(kInitial);
    ASSERT_TRUE(engine->EnableWal(dir.string()).ok());
    // Tear the SECOND commit (the first ingest advance); the query commits
    // after it land beyond the tear and must be dropped by the scan.
    ASSERT_TRUE(
        engine->SetFaultSchedule("shortwrite@fs.append:wal.g0.evalog#2")
            .ok());
    ASSERT_TRUE(engine->Execute(kQ1).ok());
    ASSERT_TRUE(engine->IngestFrames(kSource, kTick).ok());
    ASSERT_TRUE(engine->Execute(kQ2).ok());
    ASSERT_TRUE(engine->IngestFrames(kSource, kTick).ok());
    ASSERT_TRUE(engine->Execute(kProbe).ok());
    ASSERT_TRUE(engine->SetFaultSchedule("").ok());
  }

  auto recovered = RecoverAndCheck(dir.string(), "torn tail");
  const wal::WalReplayReport& replay = recovered->last_replay();
  EXPECT_TRUE(replay.torn) << replay.Summary();
  EXPECT_GT(replay.truncated_bytes, 0u);
  EXPECT_FALSE(replay.clean());
  // Only the first commit (kQ1's) survived: the torn ingest advance was
  // never acknowledged, so the recovered horizon is the initial one.
  EXPECT_EQ(VisibleHorizon(*recovered), kInitial);
  EXPECT_NE(replay.Summary().find("torn tail"), std::string::npos);
  // The tail is set aside for forensics, never deleted.
  EXPECT_TRUE(stdfs::exists(dir / "wal.g0.evalog.torn"));

  // The repair is durable: a second recovery of the same directory is
  // clean and lands on the identical state.
  recovered.reset();
  auto again = RecoverAndCheck(dir.string(), "torn tail, second recovery");
  EXPECT_TRUE(again->last_replay().clean())
      << again->last_replay().Summary();
  EXPECT_EQ(VisibleHorizon(*again), kInitial);
}

/// Recovering the same directory twice must be deterministic: identical
/// replay summaries, horizons, and probe rows (the probe of the first
/// recovery extends the log; the second replays it on top).
TEST_F(WalRecoveryTest, DoubleRecoveryIsDeterministic) {
  const stdfs::path dir = root_ / "twice";
  {
    auto engine = MakeStreamEngine(kInitial);
    for (const Status& s : RunScript(engine.get(), dir.string())) {
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  }
  auto first = RecoverAndCheck(dir.string(), "first recovery");
  EXPECT_TRUE(first->last_replay().clean())
      << first->last_replay().Summary();
  const int64_t h1 = VisibleHorizon(*first);
  // Everything the session computed is covered; the probe reuses it all.
  auto probe = first->Execute(kProbe);
  ASSERT_TRUE(probe.ok());
  EXPECT_DOUBLE_EQ(probe.value().metrics.breakdown[CostCategory::kUdf], 0.0)
      << "a clean recovery must reuse the whole session";
  first.reset();

  auto second = RecoverAndCheck(dir.string(), "second recovery");
  EXPECT_TRUE(second->last_replay().clean());
  EXPECT_EQ(VisibleHorizon(*second), h1);
}

/// Belt-and-braces: a coverage claim past the last durable ingest advance
/// (impossible through the FIFO, so the record is hand-crafted) must be
/// retracted by the replay horizon guard, the retraction itself made
/// durable, and later ingestion + queries must recompute — not skip — the
/// frames the bogus claim covered.
TEST_F(WalRecoveryTest, HorizonGuardRetractsOverHorizonClaims) {
  const stdfs::path dir = root_ / "guard";
  {
    auto engine = MakeStreamEngine(kInitial);
    ASSERT_TRUE(engine->EnableWal(dir.string()).ok());
    ASSERT_TRUE(engine->Execute(kQ1).ok());
  }
  // Craft a claim over frames the log never made visible ([60, 120)) by
  // borrowing the aggregated predicate of a cold engine that really did
  // process them, and append it as a CRC-valid coverage_union record.
  {
    auto donor = MakeStreamEngine(kTotal);
    ASSERT_TRUE(donor
                    ->Execute(
                        "SELECT id, obj FROM sv CROSS APPLY "
                        "FasterRCNNResNet50(frame) "
                        "WHERE id >= 60 AND label = 'car';")
                    .ok());
    const symbolic::Predicate& beyond =
        donor->udf_manager().Coverage(kDetectorKey);
    std::ofstream log(dir / "wal.g0.evalog",
                      std::ios::binary | std::ios::app);
    ASSERT_TRUE(log.good());
    log << wal::EncodeFrame(wal::CoverageUnionRecord(kDetectorKey, beyond));
  }

  auto recovered = RecoverAndCheck(dir.string(), "horizon guard");
  const wal::WalReplayReport& replay = recovered->last_replay();
  ASSERT_FALSE(replay.guard_retractions.empty()) << replay.Summary();
  EXPECT_EQ(replay.guard_retractions[0].first, kDetectorKey);
  EXPECT_FALSE(replay.clean());
  EXPECT_EQ(VisibleHorizon(*recovered), kInitial);

  // Ingest to the full length and probe: the guard must have cleared the
  // bogus claim, so frames [60, 120) are recomputed and the rows match the
  // full-length oracle exactly.
  while (VisibleHorizon(*recovered) < kTotal) {
    ASSERT_TRUE(recovered->IngestFrames(kSource, kTick).ok());
  }
  auto r = recovered->Execute(kProbe);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().batch.ToString(1 << 20), OracleRows(kTotal))
      << "over-horizon claim survived recovery: frames were skipped";
  recovered.reset();

  // The retraction was committed during recovery: replaying again is
  // clean, and everything the previous engine computed is reusable.
  auto again = RecoverAndCheck(dir.string(), "guard, second recovery");
  EXPECT_TRUE(again->last_replay().guard_retractions.empty())
      << again->last_replay().Summary();
  auto probe = again->Execute(kProbe);
  ASSERT_TRUE(probe.ok());
  EXPECT_DOUBLE_EQ(probe.value().metrics.breakdown[CostCategory::kUdf], 0.0);
}

/// The stale-generation crash window: a checkpoint that committed its
/// snapshot (manifest generation G) but died before the fresh log's
/// checkpoint record must still recover the ingestion horizons — they live
/// only in the stale G-1 log at that point.
TEST_F(WalRecoveryTest, MidCheckpointCrashKeepsIngestionHorizons) {
  const stdfs::path dir = root_ / "midckpt";
  {
    auto engine = MakeStreamEngine(kInitial);
    ASSERT_TRUE(engine->EnableWal(dir.string()).ok());
    ASSERT_TRUE(engine->Execute(kQ1).ok());
    ASSERT_TRUE(engine->IngestFrames(kSource, kTick).ok());
    // Die on the first append to the NEW generation's log — after the
    // snapshot committed, before the checkpoint record did.
    ASSERT_TRUE(
        engine->SetFaultSchedule("crash@fs.append:wal.g1.evalog#1").ok());
    EXPECT_FALSE(engine->Checkpoint().ok());
  }
  auto recovered = RecoverAndCheck(dir.string(), "mid-checkpoint crash");
  EXPECT_EQ(VisibleHorizon(*recovered), kInitial + kTick)
      << "the acknowledged ingest advance was lost "
      << "(replay: " << recovered->last_replay().Summary() << ")";
}

/// Kill-point inside the checkpoint's compressed-segment codec write: the
/// snapshot dies mid-.evaseg, the manifest never advances, and recovery
/// replays the old (snapshot, log) pair — including the acknowledged
/// ingest advance the unborn snapshot was meant to absorb.
TEST_F(WalRecoveryTest, CheckpointCrashInsideSegmentCodecWriteIsSound) {
  const stdfs::path dir = root_ / "segckpt";
  {
    auto engine = MakeStreamEngine(kInitial);
    ASSERT_TRUE(engine->EnableWal(dir.string()).ok());
    ASSERT_TRUE(engine->Execute(kQ1).ok());
    ASSERT_TRUE(engine->IngestFrames(kSource, kTick).ok());
    ASSERT_TRUE(
        engine->SetFaultSchedule("crash@fs.write:*.evaseg.tmp#1").ok());
    EXPECT_FALSE(engine->Checkpoint().ok());
    EXPECT_GE(engine->fault_injector()->fired(), 1)
        << "checkpoint never reached the segment codec write";
  }
  auto recovered =
      RecoverAndCheck(dir.string(), "checkpoint crash in .evaseg write");
  EXPECT_EQ(VisibleHorizon(*recovered), kInitial + kTick)
      << "the acknowledged ingest advance was lost "
      << "(replay: " << recovered->last_replay().Summary() << ")";
}

}  // namespace
}  // namespace eva::engine
