#include <gtest/gtest.h>

#include "optimizer/model_selection.h"

namespace eva::optimizer {
namespace {

using symbolic::DimConstraint;
using symbolic::DimKind;
using symbolic::Interval;
using symbolic::Predicate;

Predicate IdRange(double lo, double hi) {
  symbolic::Conjunct c;
  c.Constrain("id", DimConstraint::Numeric(DimKind::kInteger,
                                           Interval::AtLeast(lo)));
  c.Constrain("id", DimConstraint::Numeric(DimKind::kInteger,
                                           Interval::LessThan(hi)));
  return Predicate::FromConjunct(std::move(c));
}

// Uniform id domain over [0, 10000).
class UniformStats : public symbolic::StatsProvider {
 public:
  symbolic::DimKind KindOf(const std::string&) const override {
    return DimKind::kInteger;
  }
  double ConstraintSelectivity(
      const std::string&, const DimConstraint& c) const override {
    if (c.IsFull()) return 1;
    if (c.IsEmpty()) return 0;
    const Interval& iv = c.interval();
    double lo = iv.lo().infinite ? 0 : std::max(0.0, iv.lo().value);
    double hi = iv.hi().infinite ? 9999 : std::min(9999.0, iv.hi().value);
    if (lo > hi) return 0;
    return (hi - lo + 1) / 10000.0;
  }
};

class ModelSelectionTest : public ::testing::Test {
 protected:
  ModelSelectionTest() {
    auto det = [](const char* name, const char* acc, double cost) {
      catalog::UdfDef d;
      d.name = name;
      d.kind = catalog::UdfKind::kDetector;
      d.logical_type = "ObjectDetector";
      d.accuracy = acc;
      d.cost_ms = cost;
      return d;
    };
    EXPECT_TRUE(catalog_.AddUdf(det("Yolo", "LOW", 9)).ok());
    EXPECT_TRUE(catalog_.AddUdf(det("R50", "MEDIUM", 99)).ok());
    EXPECT_TRUE(catalog_.AddUdf(det("R101", "HIGH", 120)).ok());
  }

  Result<ModelSelection> Select(const std::string& accuracy,
                                const Predicate& q, bool reuse = true) {
    return SelectPhysicalUdfs(catalog_, manager_, "ObjectDetector",
                              accuracy, "v", q, stats_, costs_, reuse);
  }

  catalog::Catalog catalog_;
  udf::UdfManager manager_;
  UniformStats stats_;
  exec::CostConstants costs_;
};

TEST_F(ModelSelectionTest, NoViewsPicksCheapestSatisfyingModel) {
  auto r = Select("LOW", IdRange(0, 1000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().execute_udf, "Yolo");
  EXPECT_TRUE(r.value().view_udfs.empty());

  r = Select("MEDIUM", IdRange(0, 1000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().execute_udf, "R50");

  r = Select("HIGH", IdRange(0, 1000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().execute_udf, "R101");
}

TEST_F(ModelSelectionTest, UnknownLogicalTypeFails) {
  auto r = SelectPhysicalUdfs(catalog_, manager_, "Segmenter", "LOW", "v",
                              IdRange(0, 10), stats_, costs_, true);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(ModelSelectionTest, ReusesHigherAccuracyView) {
  manager_.UpdateCoverage("R50@v", IdRange(0, 5000));
  auto r = Select("LOW", IdRange(0, 5000));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().view_udfs.size(), 1u);
  EXPECT_EQ(r.value().view_udfs[0], "R50");
  EXPECT_TRUE(r.value().remainder.DefinitelyFalse());
}

TEST_F(ModelSelectionTest, AccuracyConstraintExcludesLowerViews) {
  // A HIGH query must not read the MEDIUM model's view.
  manager_.UpdateCoverage("R50@v", IdRange(0, 5000));
  auto r = Select("HIGH", IdRange(0, 5000));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().view_udfs.empty());
  EXPECT_EQ(r.value().execute_udf, "R101");
}

TEST_F(ModelSelectionTest, GreedyCoverCombinesMultipleViews) {
  manager_.UpdateCoverage("R50@v", IdRange(0, 4000));
  manager_.UpdateCoverage("R101@v", IdRange(3000, 8000));
  auto r = Select("LOW", IdRange(0, 8000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().view_udfs.size(), 2u);
  EXPECT_TRUE(r.value().remainder.DefinitelyFalse());
  EXPECT_EQ(r.value().execute_udf, "Yolo");
}

TEST_F(ModelSelectionTest, RemainderIsDifferenceOfPickedViews) {
  manager_.UpdateCoverage("R50@v", IdRange(0, 3000));
  auto r = Select("LOW", IdRange(0, 8000));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().view_udfs.size(), 1u);
  auto at = [&](int64_t id) {
    return r.value().remainder.Evaluate(
        [id](const std::string&) { return Value(id); });
  };
  EXPECT_FALSE(at(1000));  // covered by the view
  EXPECT_TRUE(at(5000));   // left for Yolo
}

TEST_F(ModelSelectionTest, SkipsViewWithDisjointCoverage) {
  manager_.UpdateCoverage("R50@v", IdRange(9000, 10000));
  auto r = Select("LOW", IdRange(0, 1000));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().view_udfs.empty());
}

TEST_F(ModelSelectionTest, SkipsViewWhenReadingCostsMoreThanCheapUdf) {
  // A huge view covering a sliver of the query: cost per uncovered tuple
  // exceeds running Yolo (9 ms).
  manager_.UpdateCoverage("R50@v", IdRange(0, 10000));
  exec::CostConstants expensive = costs_;
  expensive.view_read_ms_per_row = 100.0;  // absurd read cost
  auto r = SelectPhysicalUdfs(catalog_, manager_, "ObjectDetector", "LOW",
                              "v", IdRange(0, 1000), stats_, expensive,
                              true);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().view_udfs.empty());
  EXPECT_EQ(r.value().execute_udf, "Yolo");
}

TEST_F(ModelSelectionTest, ReuseDisabledIgnoresViews) {
  manager_.UpdateCoverage("R50@v", IdRange(0, 10000));
  auto r = Select("LOW", IdRange(0, 1000), /*reuse=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().view_udfs.empty());
  EXPECT_EQ(r.value().execute_udf, "Yolo");
}

}  // namespace
}  // namespace eva::optimizer
