// Live telemetry plane tests (docs/OBSERVABILITY.md): the embedded HTTP
// exporter served from a live engine, the structured JSONL event log, the
// sampling profiler, and the zero-overhead contract when observability is
// off. The concurrent-scrape test is part of the TSan CI matrix — the
// exporter's thread-safety claims are checked there, not just here.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/eva_engine.h"
#include "obs/event_log.h"
#include "obs/json_util.h"
#include "obs/profiler.h"
#include "vbench/vbench.h"

namespace eva {
namespace {

// ---------------------------------------------------------------------------
// Raw-socket HTTP client — the tests exercise the exporter the way curl
// would, without adding an HTTP library dependency.
// ---------------------------------------------------------------------------

struct HttpReply {
  int status = -1;
  std::string body;
  std::string raw;
};

HttpReply HttpGet(int port, const std::string& target,
                  const std::string& method = "GET") {
  HttpReply reply;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  std::string req = method + " " + target +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n"
                    "\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return reply;
    }
    sent += static_cast<size_t>(n);
  }
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (reply.raw.rfind("HTTP/1.1 ", 0) == 0 && reply.raw.size() > 12) {
    reply.status = std::atoi(reply.raw.c_str() + 9);
  }
  size_t sep = reply.raw.find("\r\n\r\n");
  if (sep != std::string::npos) reply.body = reply.raw.substr(sep + 4);
  return reply;
}

catalog::VideoInfo TestVideo() {
  catalog::VideoInfo video;
  video.name = "demo";
  video.num_frames = 1000;
  video.mean_objects_per_frame = 8.3 / 0.8;
  video.seed = 2022;
  return video;
}

std::string TempPath(const std::string& stem) {
  const char* dir = std::getenv("TMPDIR");
  std::string base = (dir != nullptr && *dir != '\0') ? dir : "/tmp";
  return base + "/" + stem + "." + std::to_string(::getpid());
}

std::vector<obs::JsonValue> ReadEventLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<obs::JsonValue> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = obs::ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << "bad JSONL line: " << line;
    if (parsed.ok()) events.push_back(parsed.MoveValue());
  }
  return events;
}

std::set<std::string> EventTypes(const std::vector<obs::JsonValue>& events) {
  std::set<std::string> types;
  for (const auto& e : events) {
    const obs::JsonValue* t = e.Find("type");
    if (t != nullptr && t->is_string()) types.insert(t->str());
  }
  return types;
}

// ---------------------------------------------------------------------------
// HTTP exporter from a live engine.
// ---------------------------------------------------------------------------

TEST(TelemetryHttpTest, EndpointsServeLiveEngine) {
  obs::MetricsRegistry local;
  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  auto er = vbench::MakeEngine(options, TestVideo());
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  engine->set_metrics_registry(&local);

  ASSERT_TRUE(engine->StartTelemetryServer(0).ok());
  const int port = engine->telemetry_port();
  ASSERT_GT(port, 0);

  // A second server on the same engine must be refused.
  EXPECT_FALSE(engine->StartTelemetryServer(0).ok());

  auto queries = vbench::VbenchHigh("demo", 1000);
  for (int q = 0; q < 3; ++q) {
    ASSERT_TRUE(engine->Execute(queries[q]).ok());
  }

  HttpReply health = HttpGet(port, "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  HttpReply metrics = HttpGet(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# HELP"), std::string::npos);
  EXPECT_NE(metrics.body.find("eva_"), std::string::npos);
  EXPECT_NE(metrics.raw.find("text/plain; version=0.0.4"),
            std::string::npos);

  HttpReply mjson = HttpGet(port, "/metrics.json");
  EXPECT_EQ(mjson.status, 200);
  auto parsed = obs::ParseJson(mjson.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed.value().Find("metrics"), nullptr);

  HttpReply trace = HttpGet(port, "/trace");
  EXPECT_EQ(trace.status, 200);
  auto trace_json = obs::ParseJson(trace.body);
  ASSERT_TRUE(trace_json.ok()) << trace_json.status().ToString();
  ASSERT_TRUE(trace_json.value().is_array());
  EXPECT_FALSE(trace_json.value().array().empty());

  HttpReply views = HttpGet(port, "/views");
  EXPECT_EQ(views.status, 200);
  auto views_json = obs::ParseJson(views.body);
  ASSERT_TRUE(views_json.ok()) << views_json.status().ToString();
  const obs::JsonValue* view_list = views_json.value().Find("views");
  ASSERT_NE(view_list, nullptr);
  ASSERT_TRUE(view_list->is_array());
  EXPECT_FALSE(view_list->array().empty())
      << "EVA-mode queries should have materialized at least one view";
  const obs::JsonValue& first = view_list->array()[0];
  EXPECT_NE(first.Find("name"), nullptr);
  EXPECT_NE(first.Find("rows"), nullptr);
  EXPECT_NE(first.Find("coverage_atoms"), nullptr);

  // A short profile window must return the folded-stack content type.
  HttpReply profile = HttpGet(port, "/profile?seconds=0.05&hz=200");
  EXPECT_EQ(profile.status, 200);

  EXPECT_EQ(HttpGet(port, "/nope").status, 404);
  EXPECT_EQ(HttpGet(port, "/metrics", "POST").status, 405);

  engine->StopTelemetryServer();
  EXPECT_EQ(engine->telemetry_port(), -1);
  EXPECT_LT(HttpGet(port, "/healthz").status, 0)
      << "stopped server still accepting connections";

  // The port is free again: a fresh server can bind it.
  ASSERT_TRUE(engine->StartTelemetryServer(port).ok());
  EXPECT_EQ(engine->telemetry_port(), port);
  EXPECT_EQ(HttpGet(port, "/healthz").status, 200);
}

// TSan target: four worker threads execute a workload while a scraper
// thread hammers every endpoint. The exporter, tracer, metrics registry,
// and views snapshot must all be safe against the concurrent reads.
TEST(TelemetryHttpTest, ConcurrentScrapeUnderLoad) {
  obs::MetricsRegistry local;
  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  options.num_threads = 4;
  options.udf_spin_us = 5;  // give workers real wall time to overlap
  auto er = vbench::MakeEngine(options, TestVideo());
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  engine->set_metrics_registry(&local);
  ASSERT_TRUE(engine->StartTelemetryServer(0).ok());
  const int port = engine->telemetry_port();
  ASSERT_GT(port, 0);

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> failures{0};
  std::thread scraper([&] {
    const char* targets[] = {"/metrics", "/metrics.json", "/trace",
                             "/views", "/healthz"};
    size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      HttpReply r = HttpGet(port, targets[i++ % 5]);
      if (r.status != 200) {
        failures.fetch_add(1);
      }
      scrapes.fetch_add(1);
    }
  });

  auto queries = vbench::VbenchHigh("demo", 1000);
  for (const std::string& sql : queries) {
    ASSERT_TRUE(engine->Execute(sql).ok());
  }
  done.store(true, std::memory_order_release);
  scraper.join();
  engine->StopTelemetryServer();

  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Structured event log.
// ---------------------------------------------------------------------------

TEST(EventLogTest, EngineEmitsTypedRecords) {
  const std::string log_path = TempPath("eva_event_log");
  std::remove(log_path.c_str());
  std::remove((log_path + ".1").c_str());

  {
    obs::MetricsRegistry local;
    engine::EngineOptions options;
    options.optimizer.mode = optimizer::ReuseMode::kEva;
    options.event_log_path = log_path;
    options.storage_budget_bytes = 16 * 1024;  // force segment evictions
    auto er = vbench::MakeEngine(options, TestVideo());
    ASSERT_TRUE(er.ok());
    auto engine = er.MoveValue();
    engine->set_metrics_registry(&local);
    ASSERT_NE(engine->event_log(), nullptr);

    // Two transient faults per invocation point → udf_retry records.
    ASSERT_TRUE(engine->SetFaultSchedule("error@udf:*#1-2").ok());
    auto queries = vbench::VbenchHigh("demo", 1000);
    for (int q = 0; q < 4; ++q) {
      ASSERT_TRUE(engine->Execute(queries[q]).ok());
    }
    EXPECT_GT(engine->lifecycle()->evictions(), 0)
        << "budget never forced an eviction — eviction records untested";
  }

  auto events = ReadEventLines(log_path);
  ASSERT_FALSE(events.empty());
  std::set<std::string> types = EventTypes(events);
  EXPECT_TRUE(types.count("query_start")) << "missing query_start";
  EXPECT_TRUE(types.count("query_end")) << "missing query_end";
  EXPECT_TRUE(types.count("view_admission")) << "missing view_admission";
  EXPECT_TRUE(types.count("view_eviction")) << "missing view_eviction";
  EXPECT_TRUE(types.count("coverage_retraction"))
      << "missing coverage_retraction";
  EXPECT_TRUE(types.count("udf_retry")) << "missing udf_retry";

  // Every record carries seq (monotone) and wall_us; query_end carries
  // both clocks plus the coverage-atom count.
  int64_t last_seq = -1;
  for (const auto& e : events) {
    const obs::JsonValue* seq = e.Find("seq");
    ASSERT_NE(seq, nullptr);
    EXPECT_GT(static_cast<int64_t>(seq->number()), last_seq);
    last_seq = static_cast<int64_t>(seq->number());
    ASSERT_NE(e.Find("wall_us"), nullptr);
    EXPECT_GE(e.Find("wall_us")->number(), 0);
  }
  bool saw_query_end = false;
  for (const auto& e : events) {
    if (e.Find("type")->str() != "query_end") continue;
    saw_query_end = true;
    EXPECT_GT(e.NumberOr("sim_ms", -1), 0);
    EXPECT_GE(e.NumberOr("wall_ms", -1), 0);
    EXPECT_GE(e.NumberOr("coverage_atoms", -1), 0);
    EXPECT_GE(e.NumberOr("query_id", -1), 1);
  }
  EXPECT_TRUE(saw_query_end);
  for (const auto& e : events) {
    if (e.Find("type")->str() != "udf_retry") continue;
    EXPECT_GE(e.NumberOr("attempt", -1), 1);
    const obs::JsonValue* udf = e.Find("udf");
    ASSERT_NE(udf, nullptr);
    EXPECT_FALSE(udf->str().empty());
  }

  std::remove(log_path.c_str());
  std::remove((log_path + ".1").c_str());
}

TEST(EventLogTest, RotationBoundsDiskUse) {
  const std::string log_path = TempPath("eva_event_log_rot");
  std::remove(log_path.c_str());
  std::remove((log_path + ".1").c_str());

  obs::EventLog log;
  ASSERT_TRUE(log.Open(log_path, 512));
  for (int i = 0; i < 200; ++i) {
    log.Append(obs::Event("test_event").Int("i", i).Str(
        "payload", "0123456789abcdef0123456789abcdef"));
  }
  EXPECT_EQ(log.events_written(), 200);
  EXPECT_GE(log.rotations(), 1);
  log.Close();

  // Both generations exist and the bound holds: the live file plus one
  // rotation, each at most max_bytes + one record of slack.
  std::ifstream current(log_path), rotated(log_path + ".1");
  EXPECT_TRUE(current.good());
  EXPECT_TRUE(rotated.good());
  auto size_of = [](const std::string& p) {
    std::ifstream f(p, std::ios::ate | std::ios::binary);
    return static_cast<int64_t>(f.tellg());
  };
  EXPECT_LE(size_of(log_path), 512 + 256);
  EXPECT_LE(size_of(log_path + ".1"), 512 + 256);

  // Rotated stream still parses line-by-line.
  auto events = ReadEventLines(log_path + ".1");
  EXPECT_FALSE(events.empty());

  std::remove(log_path.c_str());
  std::remove((log_path + ".1").c_str());
}

TEST(EventLogTest, RecoveryEventOnLoad) {
  const std::string log_path = TempPath("eva_event_log_rec");
  const std::string view_dir = TempPath("eva_views_rec");
  std::remove(log_path.c_str());

  obs::MetricsRegistry local;
  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  auto er = vbench::MakeEngine(options, TestVideo());
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  engine->set_metrics_registry(&local);
  auto queries = vbench::VbenchHigh("demo", 1000);
  ASSERT_TRUE(engine->Execute(queries[0]).ok());
  ASSERT_TRUE(engine->SaveViews(view_dir).ok());

  engine::EngineOptions options2 = options;
  options2.event_log_path = log_path;
  auto er2 = vbench::MakeEngine(options2, TestVideo());
  ASSERT_TRUE(er2.ok());
  auto engine2 = er2.MoveValue();
  engine2->set_metrics_registry(&local);
  ASSERT_TRUE(engine2->LoadViews(view_dir).ok());

  auto events = ReadEventLines(log_path);
  std::set<std::string> types = EventTypes(events);
  EXPECT_TRUE(types.count("recovery")) << "missing recovery record";
  for (const auto& e : events) {
    if (e.Find("type")->str() != "recovery") continue;
    const obs::JsonValue* clean = e.Find("clean");
    ASSERT_NE(clean, nullptr);
    EXPECT_TRUE(clean->boolean()) << "clean load reported as dirty";
  }
  std::remove(log_path.c_str());
}

// ---------------------------------------------------------------------------
// Sampling profiler.
// ---------------------------------------------------------------------------

TEST(ProfilerTest, FoldedStacksAttributeNestedTags) {
  obs::Profiler& prof = obs::Profiler::Global();
  prof.Start(2000);
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    obs::ProfScope outer("executor");
    obs::ProfScope inner("udf");
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Deadline loop: wait until the sampler has attributed samples (bounded
  // at 5 s so a loaded CI machine cannot hang the suite).
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (prof.samples() < 5 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  worker.join();
  prof.Stop();

  EXPECT_GE(prof.samples(), 5);
  std::string folded = prof.RenderFolded();
  EXPECT_NE(folded.find("executor;udf "), std::string::npos)
      << "folded output:\n" << folded;
}

TEST(ProfilerTest, EngineRunAttributesExecutorAndRuntimeTags) {
  obs::MetricsRegistry local;
  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  options.num_threads = 2;
  options.udf_spin_us = 100;  // real wall time inside the udf scope
  auto er = vbench::MakeEngine(options, TestVideo());
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  engine->set_metrics_registry(&local);

  obs::Profiler& prof = obs::Profiler::Global();
  prof.Start(2000);
  auto queries = vbench::VbenchHigh("demo", 1000);
  // Re-run the workload from scratch until samples land in both the
  // executor (driver) and runtime (worker) scopes, bounded at 20 s.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::string folded;
  do {
    engine->ClearReuseState();
    for (int q = 0; q < 2; ++q) {
      ASSERT_TRUE(engine->Execute(queries[q]).ok());
    }
    folded = prof.RenderFolded();
  } while ((folded.find("executor") == std::string::npos ||
            folded.find("runtime") == std::string::npos) &&
           std::chrono::steady_clock::now() < deadline);
  prof.Stop();

  EXPECT_NE(folded.find("executor"), std::string::npos)
      << "no executor samples:\n" << folded;
  EXPECT_NE(folded.find("runtime"), std::string::npos)
      << "no runtime (worker) samples:\n" << folded;
}

TEST(ProfilerTest, ProfileForIsBoundedAndStops) {
  obs::Profiler& prof = obs::Profiler::Global();
  auto t0 = std::chrono::steady_clock::now();
  std::string folded = prof.ProfileFor(0.05, 500);
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(prof.active());
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
  // An idle process may legitimately produce an empty profile; the folded
  // output must still be well-formed (every line "stack count").
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find(' '), std::string::npos) << "bad line: " << line;
  }
}

// ---------------------------------------------------------------------------
// Zero-overhead contract: observability=false creates no telemetry
// machinery at all.
// ---------------------------------------------------------------------------

TEST(TelemetryTest, ObservabilityOffIsZeroOverhead) {
  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  options.observability = false;
  options.metrics_port = 0;                        // must be ignored
  options.event_log_path = TempPath("eva_should_not_exist");
  auto er = vbench::MakeEngine(options, TestVideo());
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();

  EXPECT_EQ(engine->telemetry_port(), -1);
  EXPECT_EQ(engine->event_log(), nullptr);
  EXPECT_EQ(engine->metrics_registry(), nullptr);
  EXPECT_FALSE(obs::Profiler::Global().active());
  EXPECT_FALSE(engine->StartTelemetryServer(0).ok());

  auto queries = vbench::VbenchHigh("demo", 1000);
  ASSERT_TRUE(engine->Execute(queries[0]).ok());
  EXPECT_EQ(engine->telemetry_port(), -1);
  std::ifstream log(options.event_log_path);
  EXPECT_FALSE(log.good()) << "event log written despite observability=off";
}

}  // namespace
}  // namespace eva
