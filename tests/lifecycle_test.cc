// Engine-level tests for the view lifecycle manager (src/lifecycle/):
// budget enforcement with bit-identical results, symbolic coverage
// retraction on eviction, Eq. 3 admission gating, and policy plumbing.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/eva_engine.h"
#include "vbench/vbench.h"

namespace eva::lifecycle {
namespace {

using optimizer::ReuseMode;

catalog::VideoInfo TinyVideo() {
  catalog::VideoInfo v;
  v.name = "tiny";
  v.num_frames = 400;
  v.mean_objects_per_frame = 8.3 / 0.8;
  v.seed = 7;
  return v;
}

std::unique_ptr<engine::EvaEngine> MakeEngineOrDie(
    engine::EngineOptions options) {
  auto r = vbench::MakeEngine(options, TinyVideo());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

engine::EngineOptions EvaOptions() {
  engine::EngineOptions options;
  options.optimizer.mode = ReuseMode::kEva;
  return options;
}

std::string FullText(const engine::QueryResult& r) {
  return r.batch.ToString(1 << 20);
}

const char* const kDetectorQuery =
    "SELECT id, obj, label FROM tiny CROSS APPLY "
    "FasterRCNNResNet50(frame) WHERE id < 300 AND label = 'car';";

TEST(LifecycleTest, BudgetedSessionStaysUnderBudgetWithIdenticalResults) {
  const std::vector<std::string> workload =
      vbench::VbenchHigh("tiny", TinyVideo().num_frames);

  // Pass 1 (unbounded EVA): reference results + the working-set peak.
  auto unbounded = MakeEngineOrDie(EvaOptions());
  std::vector<std::string> expected;
  double peak_bytes = 0;
  for (const std::string& sql : workload) {
    auto r = unbounded->Execute(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(FullText(r.value()));
    // Seal before measuring: budget enforcement charges sealed segments at
    // their encoded size, so the peak must be the sealed footprint too.
    unbounded->views().SealAllSegments();
    peak_bytes = std::max(peak_bytes, unbounded->views().TotalSizeBytes());
  }
  ASSERT_GT(peak_bytes, 0);

  // Pass 2 (no materialization): the ground truth nothing can drift from.
  {
    engine::EngineOptions options;
    options.optimizer.mode = ReuseMode::kNoReuse;
    auto baseline = MakeEngineOrDie(options);
    for (size_t i = 0; i < workload.size(); ++i) {
      auto r = baseline->Execute(workload[i]);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(FullText(r.value()), expected[i]) << workload[i];
    }
  }

  // Pass 3: budget well below the working set. Results stay bit-identical
  // and the store never exceeds the budget after a query completes.
  engine::EngineOptions options = EvaOptions();
  options.storage_budget_bytes = peak_bytes * 0.4;
  options.segment_frames = 64;
  auto budgeted = MakeEngineOrDie(options);
  ASSERT_NE(budgeted->lifecycle(), nullptr);
  EXPECT_EQ(budgeted->lifecycle()->budget_bytes(), peak_bytes * 0.4);
  for (size_t i = 0; i < workload.size(); ++i) {
    auto r = budgeted->Execute(workload[i]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(FullText(r.value()), expected[i]) << workload[i];
    EXPECT_LE(budgeted->views().TotalSizeBytes(),
              options.storage_budget_bytes)
        << "after query " << i;
  }
  EXPECT_GT(budgeted->lifecycle()->evictions(), 0);
  EXPECT_GT(budgeted->lifecycle()->evicted_bytes(), 0);
}

TEST(LifecycleTest, EvictionRetractsCoverageAndRecomputes) {
  engine::EngineOptions options = EvaOptions();
  options.segment_frames = 64;
  auto engine = MakeEngineOrDie(options);
  auto first = engine->Execute(kDetectorQuery);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first.value().metrics.TotalInvocations(), 0);

  const std::string key = "FasterRCNNResNet50@tiny";
  auto covered = [&](int64_t frame) {
    return engine->udf_manager().Coverage(key).Evaluate(
        [&](const std::string& dim) {
          EXPECT_EQ(dim, "id");
          return Value(frame);
        });
  };
  ASSERT_TRUE(covered(0));
  ASSERT_TRUE(covered(299));

  // Shrink the budget mid-session; some segments must go. Seal first so
  // the 50% mark is half of the sealed (encoded) footprint — the same
  // accounting EnforceBudget uses.
  engine->views().SealAllSegments();
  const double budget = engine->views().TotalSizeBytes() * 0.5;
  engine->lifecycle()->set_budget_bytes(budget);
  auto evicted = engine->lifecycle()->EnforceBudget(
      engine->queries_executed());
  ASSERT_FALSE(evicted.empty());
  EXPECT_LE(engine->views().TotalSizeBytes(), budget);

  // Retraction: coverage no longer claims any evicted frame; frames of
  // retained segments keep their claim.
  std::vector<bool> evicted_frame(400, false);
  for (const EvictionEvent& ev : evicted) {
    EXPECT_EQ(ev.view, key);
    for (int64_t f = ev.first_frame; f < ev.frame_end && f < 400; ++f) {
      evicted_frame[static_cast<size_t>(f)] = true;
    }
  }
  for (int64_t f = 0; f < 300; ++f) {
    EXPECT_EQ(covered(f), !evicted_frame[static_cast<size_t>(f)])
        << "frame " << f;
  }

  // Re-running the query recomputes the evicted range (invocations > 0)
  // and returns exactly the first run's rows.
  auto second = engine->Execute(kDetectorQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second.value().metrics.TotalInvocations(), 0);
  EXPECT_EQ(FullText(second.value()), FullText(first.value()));
}

TEST(LifecycleTest, AdmissionDeniesCheapUdfAfterNoReuseEvidence) {
  auto engine = MakeEngineOrDie(EvaOptions());
  engine->lifecycle()->set_admission_min_evidence(1);

  // VehicleFilter costs 1 ms/tuple; after a no-reuse query its Laplace
  // reuse estimate drops below write_cost / c_e and admission denies it.
  const char* q1 =
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE VehicleFilter(frame) = true AND id < 60 AND label = 'car';";
  const char* q2 =
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE VehicleFilter(frame) = true AND id >= 60 AND id < 120 AND "
      "label = 'car';";
  auto r1 = engine->Execute(q1);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = engine->Execute(q2);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();

  EXPECT_GT(engine->lifecycle()->admissions_denied(), 0);
  bool denied_filter = false, admitted_detector = false;
  for (const optimizer::AdmissionReport& a : r2.value().report.admissions) {
    if (a.udf.rfind("VehicleFilter", 0) == 0 && !a.admitted) {
      denied_filter = true;
      EXPECT_LT(a.predicted_benefit_ms, a.write_cost_ms);
    }
    if (a.udf.rfind("FasterRCNNResNet50", 0) == 0 && a.admitted) {
      admitted_detector = true;
    }
  }
  EXPECT_TRUE(denied_filter) << FullText(r2.value());
  EXPECT_TRUE(admitted_detector);
  // Denied means not materialized: the filter view holds only q1's frames.
  const storage::MaterializedView* filter_view =
      engine->views().Find("VehicleFilter@tiny");
  if (filter_view != nullptr) {
    EXPECT_LE(filter_view->num_keys(), 60);
  }

  // The denial must not change answers: a fresh no-reuse engine agrees.
  engine::EngineOptions options;
  options.optimizer.mode = ReuseMode::kNoReuse;
  auto baseline = MakeEngineOrDie(options);
  auto b2 = baseline->Execute(q2);
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(FullText(r2.value()), FullText(b2.value()));
}

TEST(LifecycleTest, DefaultEvidenceThresholdNeverDenies) {
  auto engine = MakeEngineOrDie(EvaOptions());
  auto workload = vbench::VbenchHigh("tiny", TinyVideo().num_frames);
  auto r = vbench::RunWorkload(engine.get(), workload);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine->lifecycle()->admissions_denied(), 0);
  EXPECT_GT(engine->lifecycle()->admissions_granted(), 0);
}

TEST(LifecycleTest, PolicyOptionPlumbing) {
  engine::EngineOptions options = EvaOptions();
  options.eviction_policy = "lru";
  auto engine = MakeEngineOrDie(options);
  EXPECT_EQ(engine->lifecycle()->policy_kind(), EvictionPolicyKind::kLru);
  EXPECT_STREQ(engine->lifecycle()->policy_name(), "lru");

  engine->lifecycle()->SetPolicy(EvictionPolicyKind::kFifo);
  EXPECT_STREQ(engine->lifecycle()->policy_name(), "fifo");

  EXPECT_FALSE(ParseEvictionPolicy("mru").ok());
  EXPECT_TRUE(ParseEvictionPolicy("cb").ok());
  EXPECT_EQ(ParseEvictionPolicy("cost-benefit").value(),
            EvictionPolicyKind::kCostBenefit);
}

TEST(LifecycleTest, ClearReuseStateResetsLifecycle) {
  engine::EngineOptions options = EvaOptions();
  options.storage_budget_bytes = 1;  // evict everything after each query
  options.segment_frames = 64;
  auto engine = MakeEngineOrDie(options);
  ASSERT_TRUE(engine->Execute(kDetectorQuery).ok());
  EXPECT_GT(engine->lifecycle()->evictions(), 0);
  engine->ClearReuseState();
  EXPECT_EQ(engine->lifecycle()->evictions(), 0);
  EXPECT_EQ(engine->lifecycle()->admissions_granted(), 0);
  EXPECT_EQ(engine->queries_executed(), 0);
  // The session still works from the clean slate.
  auto r = engine->Execute(kDetectorQuery);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(engine->views().TotalSizeBytes(), 1.0);
}

}  // namespace
}  // namespace eva::lifecycle
