#include <gtest/gtest.h>

#include "baselines/fun_cache.h"
#include "engine/eva_engine.h"
#include "vbench/vbench.h"

namespace eva::baselines {
namespace {

TEST(FunCacheTest, LookupInsertSemantics) {
  FunCache cache;
  storage::ViewKey key{5, -1};
  EXPECT_EQ(cache.Lookup("Det", key), nullptr);
  cache.Insert("Det", key, {{Value("car")}});
  const std::vector<Row>* hit = cache.Lookup("Det", key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0][0].AsString(), "car");
  // Per-UDF namespaces are isolated.
  EXPECT_EQ(cache.Lookup("Other", key), nullptr);
  EXPECT_EQ(cache.NumEntries("Det"), 1);
  EXPECT_EQ(cache.NumEntries("Other"), 0);
  EXPECT_EQ(cache.TotalEntries(), 1);
  cache.Clear();
  EXPECT_EQ(cache.TotalEntries(), 0);
}

TEST(FunCacheTest, EmptyResultsAreCached) {
  // Frames with zero detections must hit the cache too — otherwise sparse
  // videos re-run the detector forever (the bug class §5.5 exposes).
  FunCache cache;
  cache.Insert("Det", {7, -1}, {});
  const std::vector<Row>* hit = cache.Lookup("Det", {7, -1});
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->empty());
}

class FunCacheEngineTest : public ::testing::Test {
 protected:
  FunCacheEngineTest() {
    catalog::VideoInfo video;
    video.name = "fc";
    video.num_frames = 150;
    video.mean_objects_per_frame = 5;
    video.seed = 77;
    auto er =
        vbench::MakeEngine(optimizer::ReuseMode::kFunCache, video);
    EXPECT_TRUE(er.ok());
    engine_ = er.MoveValue();
  }
  std::unique_ptr<engine::EvaEngine> engine_;
};

TEST_F(FunCacheEngineTest, HashingChargedOnEveryInvocation) {
  const char* sql =
      "SELECT id, obj FROM fc CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 100 AND label = 'car';";
  auto first = engine_->Execute(sql);
  ASSERT_TRUE(first.ok());
  double hash_first =
      first.value().metrics.breakdown[CostCategory::kHashing];
  EXPECT_GT(hash_first, 0);
  auto second = engine_->Execute(sql);
  ASSERT_TRUE(second.ok());
  // All detector results reused...
  EXPECT_EQ(second.value().metrics.reused.at("FasterRCNNResNet50"), 100);
  EXPECT_DOUBLE_EQ(second.value().metrics.breakdown[CostCategory::kUdf],
                   0.0);
  // ...but the hashing overhead is paid again (the FunCache weakness the
  // paper highlights on VBENCH-LOW).
  EXPECT_NEAR(second.value().metrics.breakdown[CostCategory::kHashing],
              hash_first, 1e-6);
}

TEST_F(FunCacheEngineTest, NoViewsAreMaterialized) {
  ASSERT_TRUE(engine_
                  ->Execute("SELECT id, obj FROM fc CROSS APPLY "
                            "FasterRCNNResNet50(frame) WHERE id < 50;")
                  .ok());
  EXPECT_DOUBLE_EQ(engine_->views().TotalSizeBytes(), 0);
  EXPECT_GT(engine_->funcache().TotalEntries(), 0);
  EXPECT_EQ(engine_->DistinctInvocations("FasterRCNNResNet50", "fc"), 50);
}

TEST_F(FunCacheEngineTest, CacheWorksAtTupleGranularityForClassifiers) {
  ASSERT_TRUE(engine_
                  ->Execute("SELECT id, obj FROM fc CROSS APPLY "
                            "FasterRCNNResNet50(frame) WHERE id < 80 AND "
                            "label = 'car' AND CarType(frame, bbox) = "
                            "'Nissan';")
                  .ok());
  // A different CarType constant still reuses the cached classifier
  // outputs (cache keys are input tuples, not predicates).
  auto r = engine_->Execute(
      "SELECT id, obj FROM fc CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 80 AND label = 'car' AND CarType(frame, bbox) = "
      "'Toyota';");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().metrics.reused.at("CarType"),
            r.value().metrics.invocations.at("CarType"));
}

}  // namespace
}  // namespace eva::baselines
