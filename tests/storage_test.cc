#include <gtest/gtest.h>

#include "storage/statistics.h"
#include "storage/view_store.h"
#include "vbench/vbench.h"

namespace eva::storage {
namespace {

Schema DetSchema() {
  return Schema({{"obj", DataType::kInt64},
                 {"label", DataType::kString},
                 {"area", DataType::kDouble},
                 {"score", DataType::kDouble}});
}

TEST(MaterializedViewTest, PresenceDistinctFromEmptiness) {
  MaterializedView view("det@v", DetSchema());
  EXPECT_FALSE(view.Has({5, -1}));
  view.Put({5, -1}, {});  // processed frame, zero detections
  EXPECT_TRUE(view.Has({5, -1}));
  EXPECT_TRUE(view.Get({5, -1}).empty());
  EXPECT_EQ(view.num_keys(), 1);
  EXPECT_EQ(view.num_rows(), 0);
}

TEST(MaterializedViewTest, PutIsIdempotentAppendOnly) {
  MaterializedView view("det@v", DetSchema());
  view.Put({1, -1}, {{Value(int64_t{0}), Value("car"), Value(0.3),
                      Value(0.9)}});
  EXPECT_EQ(view.num_rows(), 1);
  // Re-putting an existing key is a no-op (STORE semantics).
  view.Put({1, -1}, {{Value(int64_t{0}), Value("bus"), Value(0.1),
                      Value(0.2)},
                     {Value(int64_t{1}), Value("car"), Value(0.2),
                      Value(0.8)}});
  EXPECT_EQ(view.num_rows(), 1);
  EXPECT_EQ(view.Get({1, -1})[0][1].AsString(), "car");
}

TEST(MaterializedViewTest, ObjectLevelKeys) {
  MaterializedView view("CarType@v", Schema({{"CarType",
                                              DataType::kString}}));
  view.Put({3, 0}, {{Value("Nissan")}});
  view.Put({3, 1}, {{Value("Toyota")}});
  EXPECT_TRUE(view.Has({3, 0}));
  EXPECT_FALSE(view.Has({3, 2}));
  EXPECT_FALSE(view.Has({3, -1}));
  EXPECT_EQ(view.Get({3, 1})[0][0].AsString(), "Toyota");
}

TEST(MaterializedViewTest, SizeGrowsWithContent) {
  MaterializedView view("det@v", DetSchema());
  double empty_size = view.SizeBytes();
  for (int64_t f = 0; f < 100; ++f) {
    view.Put({f, -1}, {{Value(int64_t{0}), Value("car"), Value(0.3),
                        Value(0.9)}});
  }
  EXPECT_GT(view.SizeBytes(), empty_size);
  EXPECT_LT(view.SizeBytes(), 100 * 1024);  // lightweight metadata (§5.2)
}

TEST(ViewStoreTest, GetOrCreateAndFind) {
  ViewStore store;
  EXPECT_EQ(store.Find("x"), nullptr);
  MaterializedView* v = store.GetOrCreate("x", DetSchema());
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(store.GetOrCreate("x", DetSchema()), v);
  EXPECT_EQ(store.Find("x"), v);
  v->Put({1, -1}, {});
  store.Clear();
  EXPECT_EQ(store.Find("x"), nullptr);
}

TEST(ViewStoreTest, TotalSizeSumsViews) {
  ViewStore store;
  store.GetOrCreate("a", DetSchema())->Put({1, -1}, {{Value(int64_t{0}),
                                                      Value("car"),
                                                      Value(0.1),
                                                      Value(0.9)}});
  store.GetOrCreate("b", DetSchema())->Put({2, -1}, {});
  EXPECT_GT(store.TotalSizeBytes(), 0);
  EXPECT_DOUBLE_EQ(store.TotalSizeBytes(),
                   store.Find("a")->SizeBytes() +
                       store.Find("b")->SizeBytes());
}

TEST(ViewStoreTest, EvictionDropsLeastRecentlyUsed) {
  ViewStore store;
  Schema schema({{"x", DataType::kString}});
  for (int v = 0; v < 4; ++v) {
    MaterializedView* view =
        store.GetOrCreate("view" + std::to_string(v), schema);
    for (int64_t k = 0; k < 50; ++k) view->Put({k, -1}, {{Value("y")}});
  }
  // Touch view0 and view2 so view1 and view3 are the LRU victims.
  store.Find("view0");
  store.Find("view2");
  double per_view = store.TotalSizeBytes() / 4;
  int dropped = store.EvictToBudget(per_view * 2.5);
  EXPECT_EQ(dropped, 2);
  EXPECT_NE(store.Find("view0"), nullptr);
  EXPECT_EQ(store.Find("view1"), nullptr);
  EXPECT_NE(store.Find("view2"), nullptr);
  EXPECT_EQ(store.Find("view3"), nullptr);
}

TEST(ViewStoreTest, EvictionToZeroDropsEverything) {
  ViewStore store;
  Schema schema({{"x", DataType::kString}});
  store.GetOrCreate("a", schema)->Put({0, -1}, {{Value("y")}});
  store.GetOrCreate("b", schema)->Put({0, -1}, {{Value("y")}});
  EXPECT_EQ(store.EvictToBudget(0), 2);
  EXPECT_DOUBLE_EQ(store.TotalSizeBytes(), 0);
  EXPECT_EQ(store.EvictToBudget(0), 0);  // idempotent on empty store
}

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, UniformFractions) {
  Histogram h(0, 1, 20);
  for (int i = 0; i < 1000; ++i) h.Add((i % 100) / 100.0);
  EXPECT_NEAR(h.FractionIn(symbolic::Interval::LessThan(0.5)), 0.5, 0.03);
  EXPECT_NEAR(h.FractionIn(symbolic::Interval(
                  symbolic::Bound::Closed(0.25),
                  symbolic::Bound::Closed(0.75))),
              0.5, 0.05);
  EXPECT_DOUBLE_EQ(h.FractionIn(symbolic::Interval::Full()), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionIn(symbolic::Interval::Empty()), 0.0);
  EXPECT_NEAR(h.FractionIn(symbolic::Interval::GreaterThan(2.0)), 0.0,
              1e-9);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h(0, 1, 10);
  EXPECT_DOUBLE_EQ(h.FractionIn(symbolic::Interval::LessThan(0.5)), 0);
}

// --- StatisticsManager -------------------------------------------------------

class StatsTest : public ::testing::Test {
 protected:
  StatsTest()
      : video_([] {
          catalog::VideoInfo info = vbench::ShortUaDetrac();
          info.num_frames = 2000;
          return info;
        }()),
        stats_(video_) {}

  vision::SyntheticVideo video_;
  StatisticsManager stats_;
};

TEST_F(StatsTest, DimKinds) {
  EXPECT_EQ(stats_.KindOf("id"), symbolic::DimKind::kInteger);
  EXPECT_EQ(stats_.KindOf("area"), symbolic::DimKind::kReal);
  EXPECT_EQ(stats_.KindOf("score"), symbolic::DimKind::kReal);
  EXPECT_EQ(stats_.KindOf("label"), symbolic::DimKind::kCategorical);
  EXPECT_EQ(stats_.KindOf("CarType"), symbolic::DimKind::kCategorical);
}

TEST_F(StatsTest, IdRangeSelectivity) {
  auto c = symbolic::DimConstraint::Numeric(
      symbolic::DimKind::kInteger, symbolic::Interval::LessThan(1000));
  EXPECT_NEAR(stats_.ConstraintSelectivity("id", c), 0.5, 0.01);
  auto full = symbolic::DimConstraint::Full(symbolic::DimKind::kInteger);
  EXPECT_DOUBLE_EQ(stats_.ConstraintSelectivity("id", full), 1.0);
  auto empty = symbolic::DimConstraint::Empty(symbolic::DimKind::kInteger);
  EXPECT_DOUBLE_EQ(stats_.ConstraintSelectivity("id", empty), 0.0);
}

TEST_F(StatsTest, IdExcludedPointsSubtract) {
  auto c = symbolic::DimConstraint::Numeric(
               symbolic::DimKind::kInteger,
               symbolic::Interval(symbolic::Bound::Closed(0),
                                  symbolic::Bound::Closed(9)))
               .Intersect(symbolic::DimConstraint::NumericNotEqual(
                   symbolic::DimKind::kInteger, 5));
  EXPECT_NEAR(stats_.ConstraintSelectivity("id", c), 9.0 / 2000, 1e-6);
}

TEST_F(StatsTest, LabelFrequenciesMatchGenerator) {
  auto car = symbolic::DimConstraint::Categorical({"car"}, false);
  EXPECT_NEAR(stats_.ConstraintSelectivity("label", car), 0.8, 0.05);
  auto not_car = symbolic::DimConstraint::Categorical({"car"}, true);
  EXPECT_NEAR(stats_.ConstraintSelectivity("label", not_car), 0.2, 0.05);
}

TEST_F(StatsTest, VehicleTypeSkewReflected) {
  auto nissan = symbolic::DimConstraint::Categorical({"Nissan"}, false);
  auto bmw = symbolic::DimConstraint::Categorical({"BMW"}, false);
  double s_nissan = stats_.ConstraintSelectivity("CarType", nissan);
  double s_bmw = stats_.ConstraintSelectivity("CarType", bmw);
  EXPECT_NEAR(s_nissan, 0.30, 0.05);
  EXPECT_NEAR(s_bmw, 0.10, 0.05);
  EXPECT_GT(s_nissan, s_bmw);
}

TEST_F(StatsTest, AreaHistogramSkewsSmall) {
  auto large = symbolic::DimConstraint::Numeric(
      symbolic::DimKind::kReal, symbolic::Interval::GreaterThan(0.3));
  auto small = symbolic::DimConstraint::Numeric(
      symbolic::DimKind::kReal, symbolic::Interval::AtMost(0.15));
  double s_large = stats_.ConstraintSelectivity("area", large);
  double s_small = stats_.ConstraintSelectivity("area", small);
  // area = u^2 * 0.6: P(area > 0.3) = 1 - sqrt(0.5) ≈ 0.29,
  // P(area <= 0.15) = 0.5.
  EXPECT_NEAR(s_large, 0.29, 0.05);
  EXPECT_NEAR(s_small, 0.50, 0.05);
}

}  // namespace
}  // namespace eva::storage
