// Multi-session service tests (docs/SERVICE.md): session lifecycle,
// cross-session reuse through the shared ViewStore, session_id tagging on
// metrics and event-log records, the /sessions telemetry endpoint, the
// save/load busy guard, and the service determinism contract — a fixed
// (seed, schedule) submission order is bit-identical at any worker-thread
// count.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_util.h"
#include "service/eva_service.h"
#include "vbench/vbench.h"

namespace eva {
namespace {

catalog::VideoInfo TestVideo(int64_t frames = 900) {
  catalog::VideoInfo video = vbench::ShortUaDetrac();
  video.num_frames = frames;
  return video;
}

std::unique_ptr<engine::EvaEngine> MakeTestEngine(
    engine::EngineOptions options, int64_t frames = 900) {
  auto engine_or = vbench::MakeEngine(options, TestVideo(frames));
  EXPECT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  return engine_or.MoveValue();
}

engine::EngineOptions QuietOptions() {
  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  options.observability = false;
  options.num_threads = 1;
  return options;
}

std::string TempPath(const std::string& stem) {
  const char* dir = std::getenv("TMPDIR");
  std::string base = (dir != nullptr && *dir != '\0') ? dir : "/tmp";
  return base + "/" + stem + "." + std::to_string(::getpid());
}

const char* kQuery =
    "SELECT id, obj FROM short_ua_detrac CROSS APPLY "
    "FasterRCNNResNet50(frame) WHERE id >= 100 AND id < 400 "
    "AND label = 'car';";

TEST(ServiceTest, SessionLifecycle) {
  service::EvaService svc(MakeTestEngine(QuietOptions()));
  auto a = svc.CreateSession("alice");
  auto b = svc.CreateSession();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->id(), 1);
  EXPECT_EQ(b->id(), 2);
  EXPECT_EQ(a->name(), "alice");
  EXPECT_EQ(b->name(), "session-2");
  EXPECT_EQ(svc.open_sessions(), 2);
  EXPECT_EQ(svc.FindSession(1), a);
  EXPECT_EQ(svc.FindSession(99), nullptr);

  EXPECT_TRUE(svc.CloseSession(2).ok());
  EXPECT_FALSE(b->open());
  EXPECT_EQ(svc.open_sessions(), 1);
  // Closing twice is fine; closing an unknown id is NotFound.
  EXPECT_TRUE(svc.CloseSession(2).ok());
  EXPECT_EQ(svc.CloseSession(99).code(), StatusCode::kNotFound);

  // Submissions to closed or unknown sessions fail without executing.
  auto closed = svc.Execute(2, kQuery);
  EXPECT_EQ(closed.status().code(), StatusCode::kFailedPrecondition);
  auto unknown = svc.Execute(99, kQuery);
  EXPECT_EQ(unknown.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(b->stats().queries, 0);
}

TEST(ServiceTest, CrossSessionSharingThroughSharedStore) {
  service::EvaService svc(MakeTestEngine(QuietOptions()));
  auto a = svc.CreateSession("warmer");
  auto b = svc.CreateSession("rider");

  auto first = svc.Execute(a->id(), kQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().metrics.session_id, a->id());
  EXPECT_EQ(first.value().metrics.TotalReused(), 0);

  // The same query from another session rides A's materialized view: all
  // invocations are reused, the row set is identical, and it is cheaper.
  auto second = svc.Execute(b->id(), kQuery);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().metrics.session_id, b->id());
  EXPECT_EQ(second.value().metrics.TotalReused(),
            second.value().metrics.TotalInvocations());
  EXPECT_GT(second.value().metrics.TotalReused(), 0);
  EXPECT_EQ(first.value().batch.ToString(1 << 20),
            second.value().batch.ToString(1 << 20));
  EXPECT_LT(second.value().metrics.TotalMs(),
            first.value().metrics.TotalMs());

  EXPECT_EQ(a->stats().queries, 1);
  EXPECT_EQ(b->stats().queries, 1);
  EXPECT_NEAR(b->stats().HitPercentage(), 100.0, 1e-9);
  EXPECT_NEAR(a->stats().HitPercentage(), 0.0, 1e-9);
}

TEST(ServiceTest, DirectEnginePathKeepsSessionZero) {
  auto engine = MakeTestEngine(QuietOptions());
  auto r = engine->Execute(kQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().metrics.session_id, 0);
}

TEST(ServiceTest, SubmitReturnsFifoFutures) {
  service::EvaService svc(MakeTestEngine(QuietOptions()));
  auto s = svc.CreateSession();
  std::vector<std::string> queries =
      vbench::VbenchHigh("short_ua_detrac", 900);
  std::vector<std::future<Result<engine::QueryResult>>> futures;
  for (size_t i = 0; i < 4; ++i) {
    futures.push_back(svc.Submit(s->id(), queries[i]));
  }
  for (auto& f : futures) {
    auto r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(s->stats().queries, 4);
  EXPECT_EQ(s->stats().errors, 0);
}

TEST(ServiceTest, EventLogRecordsCarrySessionIds) {
  std::string log_path = TempPath("service_events");
  std::remove(log_path.c_str());
  engine::EngineOptions options = QuietOptions();
  options.observability = true;
  options.event_log_path = log_path;
  {
    service::EvaService svc(MakeTestEngine(options));
    svc.engine()->set_metrics_registry(nullptr);
    auto a = svc.CreateSession();
    auto b = svc.CreateSession();
    ASSERT_TRUE(svc.Execute(a->id(), kQuery).ok());
    ASSERT_TRUE(svc.Execute(b->id(), kQuery).ok());
  }
  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::set<double> query_sessions;
  std::set<double> admission_sessions;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const obs::JsonValue* type = parsed.value().Find("type");
    if (type == nullptr) continue;
    if (type->str() == "query_start" || type->str() == "query_end") {
      query_sessions.insert(parsed.value().NumberOr("session_id", -1));
    }
    if (type->str() == "view_admission") {
      admission_sessions.insert(parsed.value().NumberOr("session_id", -1));
    }
  }
  std::remove(log_path.c_str());
  EXPECT_EQ(query_sessions, (std::set<double>{1, 2}));
  // Every admission decision is attributed to the session whose optimize
  // made it — never to the 0 single-session placeholder.
  EXPECT_TRUE(admission_sessions.count(1) == 1);
  for (double s : admission_sessions) {
    EXPECT_TRUE(s == 1 || s == 2) << "unattributed admission record";
  }
}

TEST(ServiceTest, SaveWhileQueryInFlightFailsCleanly) {
  engine::EngineOptions options = QuietOptions();
  // Make the query slow in wall-clock terms so it is observably in flight.
  options.udf_spin_us = 300;
  service::EvaService svc(MakeTestEngine(options));
  auto s = svc.CreateSession();
  std::string dir = TempPath("service_saves");

  Status busy = Status::OK();
  for (int attempt = 0; attempt < 3 && busy.ok(); ++attempt) {
    auto future = svc.Submit(s->id(), kQuery);
    // Wait until the executor has actually started the query.
    for (int i = 0; i < 2000 && svc.engine()->queries_in_flight() == 0;
         ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    if (svc.engine()->queries_in_flight() == 1) {
      // Bypassing the service mid-query must be refused, not produce a
      // torn snapshot.
      busy = svc.engine()->SaveViews(dir);
    }
    ASSERT_TRUE(future.get().ok());
  }
  EXPECT_EQ(busy.code(), StatusCode::kFailedPrecondition) << busy.ToString();

  // Through the service the save queues behind the queries and succeeds.
  Status ok = svc.SaveViews(dir);
  EXPECT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_TRUE(svc.LoadViews(dir).ok());
}

// ---------------------------------------------------------------------------
// /sessions endpoint
// ---------------------------------------------------------------------------

std::string HttpGetBody(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + target +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n"
                    "\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t sep = raw.find("\r\n\r\n");
  return sep == std::string::npos ? "" : raw.substr(sep + 4);
}

TEST(ServiceTest, SessionsEndpointReportsLiveCounts) {
  engine::EngineOptions options = QuietOptions();
  options.observability = true;
  service::EvaService svc(MakeTestEngine(options));
  svc.engine()->set_metrics_registry(nullptr);
  ASSERT_TRUE(svc.engine()->StartTelemetryServer(0).ok());
  int port = svc.engine()->telemetry_port();
  ASSERT_GT(port, 0);

  auto a = svc.CreateSession("alice");
  auto b = svc.CreateSession("bob");
  ASSERT_TRUE(svc.Execute(a->id(), kQuery).ok());
  ASSERT_TRUE(svc.Execute(b->id(), kQuery).ok());
  ASSERT_TRUE(svc.CloseSession(b->id()).ok());

  auto parsed = obs::ParseJson(HttpGetBody(port, "/sessions"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& root = parsed.value();
  EXPECT_EQ(root.NumberOr("session_count", -1), 1);
  EXPECT_EQ(root.NumberOr("sessions_created", -1), 2);
  EXPECT_EQ(root.NumberOr("total_queries", -1), 2);
  // One of the two identical queries rode the other's view: the shared
  // store served half of all invocations.
  EXPECT_NEAR(root.NumberOr("shared_store_hit_pct", -1), 50.0, 1e-6);
  const obs::JsonValue* sessions = root.Find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_EQ(sessions->array().size(), 2u);
  EXPECT_EQ(sessions->array()[0].Find("name")->str(), "alice");
  EXPECT_EQ(sessions->array()[0].NumberOr("queries", -1), 1);
  EXPECT_EQ(sessions->array()[1].NumberOr("hit_pct", -1), 100);

  // /views stays scrapeable alongside /sessions.
  auto views = obs::ParseJson(HttpGetBody(port, "/views"));
  EXPECT_TRUE(views.ok());
  svc.engine()->StopTelemetryServer();
}

// ---------------------------------------------------------------------------
// Determinism: a fixed (seed, schedule) pair is bit-identical at any
// worker-thread count (docs/SERVICE.md, docs/RUNTIME.md).
// ---------------------------------------------------------------------------

struct FleetTrace {
  std::vector<std::string> batches;
  std::vector<double> total_ms;
};

FleetTrace RunFleet(int num_threads) {
  engine::EngineOptions options = QuietOptions();
  options.num_threads = num_threads;
  service::EvaService svc(MakeTestEngine(options));
  auto a = svc.CreateSession();
  auto b = svc.CreateSession();
  std::vector<std::string> queries =
      vbench::VbenchHigh("short_ua_detrac", 900);
  // The fixed schedule: sessions alternate, B replays A's set shifted.
  FleetTrace trace;
  for (size_t i = 0; i < 6; ++i) {
    int64_t session = (i % 2 == 0) ? a->id() : b->id();
    const std::string& sql = queries[(i * 3 + (i % 2)) % queries.size()];
    auto r = svc.Execute(session, sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) continue;
    trace.batches.push_back(r.value().batch.ToString(1 << 20));
    trace.total_ms.push_back(r.value().metrics.TotalMs());
  }
  return trace;
}

TEST(ServiceTest, FixedScheduleBitIdenticalAcrossThreads) {
  FleetTrace serial = RunFleet(1);
  ASSERT_EQ(serial.batches.size(), 6u);
  FleetTrace threaded = RunFleet(4);
  ASSERT_EQ(threaded.batches.size(), 6u);
  for (size_t q = 0; q < serial.batches.size(); ++q) {
    EXPECT_EQ(serial.batches[q], threaded.batches[q]) << "query " << q;
    // Bitwise: ChargeLog replay guarantees the same doubles.
    EXPECT_EQ(serial.total_ms[q], threaded.total_ms[q]) << "query " << q;
  }
}

}  // namespace
}  // namespace eva
