// Fuzz the Chrome-trace JSON renderer: hostile span names, categories,
// and attribute values (quotes, backslashes, control bytes, non-ASCII)
// must always yield JSON that the project's own parser accepts — the
// /trace endpoint hands this output straight to chrome://tracing, so a
// single unescaped byte breaks the whole trace.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "obs/json_util.h"
#include "obs/tracer.h"

namespace eva {
namespace {

// Deterministic hostile strings: all printable ASCII plus the classic
// JSON-escape troublemakers and some multi-byte UTF-8.
std::string NastyString(Rng* rng, int len) {
  static const char* kAtoms[] = {
      "\"", "\\", "\n", "\r", "\t", "\b", "\f", "/", "</script>",
      "\x01", "\x1f", "\x7f", "é", "日本語", "💡", "\\u0000", "{", "}",
      "[", "]", ",", ":", " ", "a", "Z", "0"};
  std::string s;
  for (int i = 0; i < len; ++i) {
    s += kAtoms[rng->NextBelow(sizeof(kAtoms) / sizeof(kAtoms[0]))];
  }
  return s;
}

TEST(TraceFuzzTest, ChromeTraceSurvivesHostileStrings) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 7919);
    SimClock clock;
    obs::Tracer tracer(&clock);

    const int spans = 1 + static_cast<int>(rng.NextBelow(12));
    for (int i = 0; i < spans; ++i) {
      auto span = tracer.StartSpan(NastyString(&rng, 1 + rng.NextBelow(8)),
                                   NastyString(&rng, rng.NextBelow(4)));
      clock.Charge(CostCategory::kUdf,
                   0.5 + static_cast<double>(rng.NextBelow(100)));
      const int attrs = static_cast<int>(rng.NextBelow(4));
      for (int a = 0; a < attrs; ++a) {
        span.SetAttribute(NastyString(&rng, 1 + rng.NextBelow(4)),
                          NastyString(&rng, rng.NextBelow(10)));
      }
      if (rng.NextBelow(3) == 0) {
        // Nested child with its own hostile payload.
        auto child =
            tracer.StartSpan(NastyString(&rng, 1 + rng.NextBelow(6)));
        child.SetAttribute("k", NastyString(&rng, rng.NextBelow(12)));
      }
    }

    const std::string chrome = tracer.RenderChromeTrace();
    auto parsed = obs::ParseJson(chrome);
    ASSERT_TRUE(parsed.ok())
        << "seed " << seed << ": " << parsed.status().ToString()
        << "\ntrace:\n" << chrome;
    ASSERT_TRUE(parsed.value().is_array()) << "seed " << seed;
    // Every event must round-trip its name as a string.
    for (const auto& ev : parsed.value().array()) {
      const obs::JsonValue* name = ev.Find("name");
      ASSERT_NE(name, nullptr) << "seed " << seed;
      EXPECT_TRUE(name->is_string());
    }

    // The text renderer must not crash on the same spans either.
    EXPECT_FALSE(tracer.RenderText().empty());
  }
}

TEST(TraceFuzzTest, OverflowedTracerStillRendersValidJson) {
  Rng rng(42);
  SimClock clock;
  obs::Tracer tracer(&clock);
  tracer.set_max_spans(8);
  for (int i = 0; i < 40; ++i) {
    auto span = tracer.StartSpan(NastyString(&rng, 4));
    clock.Charge(CostCategory::kUdf, 1.0);
  }
  EXPECT_GT(tracer.dropped(), 0);
  auto parsed = obs::ParseJson(tracer.RenderChromeTrace());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

}  // namespace
}  // namespace eva
