#include <gtest/gtest.h>

#include "exec/operators.h"
#include "parser/parser.h"
#include "storage/view_store.h"
#include "udf/udf_runtime.h"
#include "vision/synthetic_video.h"

namespace eva::exec {
namespace {

// Harness giving each operator test a tiny video, a catalog with one
// detector + one classifier, and a fresh execution context.
class OperatorTest : public ::testing::Test {
 protected:
  OperatorTest() : runtime_(&catalog_) {
    catalog::UdfDef det;
    det.name = "Det";
    det.kind = catalog::UdfKind::kDetector;
    det.cost_ms = 99;
    det.recall = 1.0;
    det.recall_small = 1.0;  // perfect detector: output == ground truth
    EXPECT_TRUE(catalog_.AddUdf(det).ok());
    catalog::UdfDef cls;
    cls.name = "CarType";
    cls.kind = catalog::UdfKind::kClassifier;
    cls.cost_ms = 6;
    cls.classifier_accuracy = 1.0;
    cls.target_attribute = "car_type";
    EXPECT_TRUE(catalog_.AddUdf(cls).ok());

    catalog::VideoInfo info;
    info.name = "v";
    info.num_frames = 40;
    info.mean_objects_per_frame = 3;
    info.seed = 5;
    EXPECT_TRUE(catalog_.AddVideo(info).ok());
    video_ = std::make_unique<vision::SyntheticVideo>(info);

    ctx_.clock = &clock_;
    ctx_.views = &views_;
    ctx_.catalog = &catalog_;
    ctx_.udfs = &runtime_;
    ctx_.video = video_.get();
    ctx_.metrics = &metrics_;
    ctx_.batch_size = 16;  // force multiple batches
  }

  Batch Run(const plan::PlanNodePtr& plan) {
    auto r = ExecutePlan(plan, &ctx_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.MoveValue() : Batch();
  }

  static plan::PlanNodePtr Scan(int64_t lo, int64_t hi) {
    return std::make_shared<plan::VideoScanNode>("v", lo, hi);
  }
  static plan::PlanNodePtr Chain(plan::PlanNodePtr parent,
                                 plan::PlanNodePtr child) {
    parent->AddChild(std::move(child));
    return parent;
  }

  int64_t TotalGtObjects(int64_t lo, int64_t hi) const {
    int64_t n = 0;
    for (int64_t f = lo; f < hi; ++f) {
      n += static_cast<int64_t>(video_->FrameObjects(f).size());
    }
    return n;
  }

  catalog::Catalog catalog_;
  std::unique_ptr<vision::SyntheticVideo> video_;
  udf::UdfRuntime runtime_;
  storage::ViewStore views_;
  SimClock clock_;
  QueryMetrics metrics_;
  ExecContext ctx_;
};

TEST_F(OperatorTest, VideoScanEmitsRangeAndChargesReads) {
  Batch out = Run(Scan(5, 25));
  EXPECT_EQ(out.num_rows(), 20u);
  EXPECT_EQ(out.rows().front()[0].AsInt64(), 5);
  EXPECT_EQ(out.rows().back()[0].AsInt64(), 24);
  EXPECT_DOUBLE_EQ(clock_.Elapsed(CostCategory::kReadVideo),
                   20 * ctx_.costs.video_read_ms_per_frame);
}

TEST_F(OperatorTest, VideoScanClampsToVideoBounds) {
  EXPECT_EQ(Run(Scan(-5, 1000)).num_rows(), 40u);
  EXPECT_EQ(Run(Scan(50, 60)).num_rows(), 0u);
}

TEST_F(OperatorTest, DetectorApplyExpandsFrames) {
  auto apply = std::make_shared<plan::ApplyNode>("Det");
  Batch out = Run(Chain(apply, Scan(0, 40)));
  EXPECT_EQ(static_cast<int64_t>(out.num_rows()), TotalGtObjects(0, 40));
  EXPECT_EQ(metrics_.invocations["Det"], 40);
  EXPECT_DOUBLE_EQ(clock_.Elapsed(CostCategory::kUdf), 40 * 99.0);
  // Output schema: id + detector outputs.
  EXPECT_GE(out.schema().IndexOf(kColObj), 0);
  EXPECT_GE(out.schema().IndexOf(kColLabel), 0);
}

TEST_F(OperatorTest, ClassifierApplyAnnotatesColumn) {
  auto det = Chain(std::make_shared<plan::ApplyNode>("Det"), Scan(0, 10));
  auto cls = Chain(std::make_shared<plan::ApplyNode>("CarType"), det);
  Batch out = Run(cls);
  int idx = out.schema().IndexOf("CarType");
  ASSERT_GE(idx, 0);
  // Perfect classifier: matches ground truth.
  for (size_t r = 0; r < out.num_rows(); ++r) {
    int64_t frame = out.GetByName(r, kColId).AsInt64();
    int64_t obj = out.GetByName(r, kColObj).AsInt64();
    EXPECT_EQ(out.At(r, static_cast<size_t>(idx)).AsString(),
              video_->FrameObjects(frame)[static_cast<size_t>(obj)]
                  .car_type);
  }
  EXPECT_EQ(metrics_.invocations["CarType"],
            static_cast<int64_t>(out.num_rows()));
}

TEST_F(OperatorTest, FilterDropsRows) {
  auto det = Chain(std::make_shared<plan::ApplyNode>("Det"), Scan(0, 40));
  auto pred = parser::ParseExpression("label = 'car'");
  ASSERT_TRUE(pred.ok());
  auto filter =
      Chain(std::make_shared<plan::FilterNode>(pred.value()), det);
  Batch out = Run(filter);
  EXPECT_GT(out.num_rows(), 0u);
  for (size_t r = 0; r < out.num_rows(); ++r) {
    EXPECT_EQ(out.GetByName(r, kColLabel).AsString(), "car");
  }
}

TEST_F(OperatorTest, StoreMaterializesDetectorResultsIncludingEmptyFrames) {
  auto apply = std::make_shared<plan::ApplyNode>("Det");
  apply->set_emit_presence_placeholders(true);
  auto store = Chain(std::make_shared<plan::StoreNode>("Det", "Det@v"),
                     Chain(apply, Scan(0, 40)));
  Batch out = Run(store);
  // Placeholders are consumed by the store, so only object rows flow out.
  EXPECT_EQ(static_cast<int64_t>(out.num_rows()), TotalGtObjects(0, 40));
  const storage::MaterializedView* view = views_.Find("Det@v");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->num_keys(), 40);  // presence for every frame
  EXPECT_EQ(view->num_rows(), TotalGtObjects(0, 40));
  EXPECT_GT(clock_.Elapsed(CostCategory::kMaterialize), 0);
}

TEST_F(OperatorTest, ViewJoinServesHitsAndMarksMisses) {
  // Materialize [0, 20) first.
  {
    auto apply = std::make_shared<plan::ApplyNode>("Det");
    apply->set_emit_presence_placeholders(true);
    Run(Chain(std::make_shared<plan::StoreNode>("Det", "Det@v"),
              Chain(apply, Scan(0, 20))));
  }
  metrics_ = QueryMetrics();
  // Join [10, 30): 10 hits, 10 misses flowing through CondApply.
  auto join = Chain(std::make_shared<plan::ViewJoinNode>("Det", "Det@v"),
                    Scan(10, 30));
  auto cond = Chain(std::make_shared<plan::CondApplyNode>("Det"), join);
  auto store =
      Chain(std::make_shared<plan::StoreNode>("Det", "Det@v"), cond);
  Batch out = Run(store);
  EXPECT_EQ(static_cast<int64_t>(out.num_rows()), TotalGtObjects(10, 30));
  EXPECT_EQ(metrics_.reused["Det"], 10);
  EXPECT_EQ(metrics_.invocations["Det"], 20);
  EXPECT_EQ(views_.Find("Det@v")->num_keys(), 30);
  EXPECT_GT(clock_.Elapsed(CostCategory::kReadView), 0);
}

TEST_F(OperatorTest, ClassifierViewJoinChain) {
  // Warm CarType over frames [0, 15).
  {
    auto det = Chain(std::make_shared<plan::ApplyNode>("Det"), Scan(0, 15));
    auto cls = Chain(std::make_shared<plan::ApplyNode>("CarType"), det);
    Run(Chain(std::make_shared<plan::StoreNode>("CarType", "CarType@v"),
              cls));
  }
  metrics_ = QueryMetrics();
  clock_.Reset();
  // Re-run over [0, 15) with the view: zero classifier evaluation cost.
  auto det = Chain(std::make_shared<plan::ApplyNode>("Det"), Scan(0, 15));
  auto join = Chain(
      std::make_shared<plan::ViewJoinNode>("CarType", "CarType@v"), det);
  auto cond = Chain(std::make_shared<plan::CondApplyNode>("CarType"), join);
  Batch out = Run(cond);
  EXPECT_EQ(metrics_.reused["CarType"],
            static_cast<int64_t>(out.num_rows()));
  int idx = out.schema().IndexOf("CarType");
  for (size_t r = 0; r < out.num_rows(); ++r) {
    EXPECT_FALSE(out.At(r, static_cast<size_t>(idx)).is_null());
  }
}

TEST_F(OperatorTest, CondApplyWithoutViewColumnsFails) {
  auto cond = Chain(std::make_shared<plan::CondApplyNode>("Det"),
                    Scan(0, 5));
  auto r = ExecutePlan(cond, &ctx_);
  EXPECT_FALSE(r.ok());
}

TEST_F(OperatorTest, ProjectEvaluatesExpressions) {
  auto det = Chain(std::make_shared<plan::ApplyNode>("Det"), Scan(0, 5));
  std::vector<expr::ExprPtr> exprs = {expr::Expr::Column("id"),
                                      expr::Expr::Column("label")};
  auto proj = Chain(std::make_shared<plan::ProjectNode>(
                        exprs, std::vector<std::string>{"id", "label"}),
                    det);
  Batch out = Run(proj);
  EXPECT_EQ(out.schema().num_fields(), 2u);
  EXPECT_EQ(out.schema().field(0).name, "id");
}

TEST_F(OperatorTest, AggregateCountsPerGroup) {
  auto det = Chain(std::make_shared<plan::ApplyNode>("Det"), Scan(0, 10));
  auto agg = Chain(std::make_shared<plan::AggregateNode>(
                       std::vector<std::string>{"id"}),
                   det);
  Batch out = Run(agg);
  int64_t total = 0;
  for (size_t r = 0; r < out.num_rows(); ++r) {
    int64_t frame = out.GetByName(r, "id").AsInt64();
    int64_t count = out.GetByName(r, "count").AsInt64();
    EXPECT_EQ(count, static_cast<int64_t>(
                         video_->FrameObjects(frame).size()));
    total += count;
  }
  EXPECT_EQ(total, TotalGtObjects(0, 10));
}

TEST_F(OperatorTest, AggregateWithoutGroupsCountsAll) {
  auto det = Chain(std::make_shared<plan::ApplyNode>("Det"), Scan(0, 10));
  auto agg = Chain(
      std::make_shared<plan::AggregateNode>(std::vector<std::string>{}),
      det);
  Batch out = Run(agg);
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.GetByName(0, "count").AsInt64(), TotalGtObjects(0, 10));
}

TEST_F(OperatorTest, HashStashFullScanChargesWholeView) {
  // Materialize 20 frames, then join 1 frame with scan_all_for_dedup: the
  // dedup pass reads all materialized rows.
  {
    auto apply = std::make_shared<plan::ApplyNode>("Det");
    apply->set_emit_presence_placeholders(true);
    Run(Chain(std::make_shared<plan::StoreNode>("Det", "Det@v"),
              Chain(apply, Scan(0, 20))));
  }
  clock_.Reset();
  auto join = std::make_shared<plan::ViewJoinNode>("Det", "Det@v");
  join->set_scan_all_for_dedup(true);
  auto cond = Chain(std::make_shared<plan::CondApplyNode>("Det"),
                    Chain(join, Scan(0, 1)));
  Run(cond);
  double expected_min = ctx_.costs.view_read_ms_per_row *
                        static_cast<double>(TotalGtObjects(0, 20));
  EXPECT_GE(clock_.Elapsed(CostCategory::kReadView), expected_min);
}

}  // namespace
}  // namespace eva::exec
