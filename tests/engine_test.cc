#include <gtest/gtest.h>

#include <map>
#include <set>

#include "engine/eva_engine.h"
#include "vbench/vbench.h"

namespace eva::engine {
namespace {

using optimizer::ReuseMode;

catalog::VideoInfo TinyVideo() {
  catalog::VideoInfo v;
  v.name = "tiny";
  v.num_frames = 400;
  v.mean_objects_per_frame = 8.3 / 0.8;
  v.seed = 7;
  return v;
}

std::unique_ptr<EvaEngine> MakeEngineOrDie(ReuseMode mode) {
  auto r = vbench::MakeEngine(mode, TinyVideo());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

// Canonical row-set fingerprint, order-insensitive.
std::multiset<std::string> RowSet(const Batch& batch) {
  std::multiset<std::string> out;
  for (const Row& row : batch.rows()) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += "|";
    }
    out.insert(std::move(s));
  }
  return out;
}

TEST(EngineTest, CreateUdfAndSimpleQuery) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  auto r = engine->Execute(
      "SELECT id, obj, label FROM tiny CROSS APPLY "
      "FasterRCNNResNet50(frame) WHERE id < 50 AND label = 'car';");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().batch.num_rows(), 0u);
  for (size_t i = 0; i < r.value().batch.num_rows(); ++i) {
    EXPECT_EQ(r.value().batch.GetByName(i, "label").AsString(), "car");
    EXPECT_LT(r.value().batch.GetByName(i, "id").AsInt64(), 50);
  }
}

TEST(EngineTest, ParseErrorsSurface) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  EXPECT_FALSE(engine->Execute("SELEC oops").ok());
  EXPECT_FALSE(engine->Execute("SELECT id FROM missing_video;").ok());
  EXPECT_FALSE(
      engine->Execute("SELECT id FROM tiny CROSS APPLY NoSuchUdf(frame);")
          .ok());
}

TEST(EngineTest, RepeatQueryReusesAllUdfInvocations) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  const char* sql =
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 100 AND label = 'car' AND CarType(frame, bbox) = "
      "'Nissan';";
  auto first = engine->Execute(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().metrics.TotalReused(), 0);
  EXPECT_GT(first.value().metrics.TotalInvocations(), 0);

  auto second = engine->Execute(sql);
  ASSERT_TRUE(second.ok());
  // Identical query: every UDF invocation is satisfied from the views.
  EXPECT_EQ(second.value().metrics.TotalReused(),
            second.value().metrics.TotalInvocations());
  EXPECT_EQ(RowSet(first.value().batch), RowSet(second.value().batch));
  // And the reused run charges no UDF time.
  EXPECT_DOUBLE_EQ(second.value().metrics.breakdown[CostCategory::kUdf], 0);
}

TEST(EngineTest, SubRangeQueryFullyCovered) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  auto warm = engine->Execute(
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 200 AND label = 'car';");
  ASSERT_TRUE(warm.ok());
  auto sub = engine->Execute(
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id >= 50 AND id < 150 AND label = 'car';");
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub.value().metrics.TotalReused(),
            sub.value().metrics.TotalInvocations());
}

TEST(EngineTest, PartialOverlapEvaluatesOnlyDifference) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  auto first = engine->Execute(
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 200;");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto shifted = engine->Execute(
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id >= 100 AND id < 300;");
  ASSERT_TRUE(shifted.ok());
  const auto& m = shifted.value().metrics;
  // 100 frames reused ([100,200)), 100 evaluated ([200,300)).
  EXPECT_EQ(m.invocations.at("FasterRCNNResNet50"), 200);
  EXPECT_EQ(m.reused.at("FasterRCNNResNet50"), 100);
}

TEST(EngineTest, ResultsIdenticalAcrossReuseModes) {
  // The reuse machinery must never change query answers: run the same
  // 4-query refinement session under every mode and compare row sets.
  std::vector<std::string> session = {
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 250 AND label = 'car' AND area > 0.3 AND "
      "CarType(frame, bbox) = 'Nissan';",
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 250 AND label = 'car' AND CarType(frame, bbox) = "
      "'Nissan';",
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 250 AND area > 0.25 AND label = 'car' AND "
      "CarType(frame, bbox) = 'Nissan' AND ColorDet(frame, bbox) = "
      "'Gray';",
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id > 50 AND label = 'car' AND ColorDet(frame, bbox) = "
      "'Gray';",
  };
  std::map<ReuseMode, std::vector<std::multiset<std::string>>> results;
  for (ReuseMode mode :
       {ReuseMode::kNoReuse, ReuseMode::kHashStash, ReuseMode::kFunCache,
        ReuseMode::kEva}) {
    auto engine = MakeEngineOrDie(mode);
    for (const std::string& sql : session) {
      auto r = engine->Execute(sql);
      ASSERT_TRUE(r.ok()) << optimizer::ReuseModeName(mode) << ": "
                          << r.status().ToString();
      results[mode].push_back(RowSet(r.value().batch));
    }
  }
  for (size_t q = 0; q < session.size(); ++q) {
    EXPECT_EQ(results[ReuseMode::kNoReuse][q], results[ReuseMode::kEva][q])
        << "EVA diverges on query " << q;
    EXPECT_EQ(results[ReuseMode::kNoReuse][q],
              results[ReuseMode::kFunCache][q])
        << "FunCache diverges on query " << q;
    EXPECT_EQ(results[ReuseMode::kNoReuse][q],
              results[ReuseMode::kHashStash][q])
        << "HashStash diverges on query " << q;
  }
}

TEST(EngineTest, EvaFasterThanNoReuseOnRefinementSession) {
  std::vector<std::string> session = {
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 300 AND label = 'car' AND CarType(frame, bbox) = "
      "'Nissan';",
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 300 AND label = 'car' AND CarType(frame, bbox) = "
      "'Nissan' AND ColorDet(frame, bbox) = 'Gray';",
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id > 100 AND label = 'car' AND ColorDet(frame, bbox) = "
      "'Gray';",
  };
  double totals[2] = {0, 0};
  int idx = 0;
  for (ReuseMode mode : {ReuseMode::kNoReuse, ReuseMode::kEva}) {
    auto engine = MakeEngineOrDie(mode);
    for (const std::string& sql : session) {
      auto r = engine->Execute(sql);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      totals[idx] += r.value().metrics.TotalMs();
    }
    ++idx;
  }
  EXPECT_GT(totals[0], totals[1] * 1.5)
      << "no-reuse=" << totals[0] << "ms eva=" << totals[1] << "ms";
}

TEST(EngineTest, CountStarGroupByAggregates) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  auto r = engine->Execute(
      "SELECT id, COUNT(*) FROM tiny CROSS APPLY "
      "FasterRCNNResNet50(frame) WHERE id < 20 AND label = 'car' GROUP BY "
      "id;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Batch& batch = r.value().batch;
  ASSERT_GT(batch.num_rows(), 0u);
  int64_t total = 0;
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    total += batch.GetByName(i, "count").AsInt64();
  }
  // Cross-check against a plain row-returning query.
  auto rows = engine->Execute(
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 20 AND label = 'car';");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(total, static_cast<int64_t>(rows.value().batch.num_rows()));
}

TEST(EngineTest, UdfInSelectListIsAppliedAndMaterialized) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  auto r = engine->Execute(
      "SELECT id, obj, ColorDet(frame, bbox) FROM tiny CROSS APPLY "
      "FasterRCNNResNet50(frame) WHERE id < 30 AND label = 'car';");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r.value().batch.num_rows(), 0u);
  EXPECT_GT(r.value().metrics.invocations.at("ColorDet"), 0);
  // A follow-up query filtering on ColorDet reuses those results.
  auto follow = engine->Execute(
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 30 AND label = 'car' AND ColorDet(frame, bbox) = "
      "'Red';");
  ASSERT_TRUE(follow.ok());
  EXPECT_EQ(follow.value().metrics.reused.at("ColorDet"),
            follow.value().metrics.invocations.at("ColorDet"));
}

TEST(EngineTest, StorageFootprintTiny) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  auto r = engine->Execute(
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 400 AND label = 'car' AND CarType(frame, bbox) = "
      "'Nissan';");
  ASSERT_TRUE(r.ok());
  double video_bytes = TinyVideo().BytesPerFrame() * 400;
  EXPECT_LT(engine->views().TotalSizeBytes(), video_bytes * 0.01)
      << "views must be a negligible fraction of the video (§5.2)";
  EXPECT_GT(engine->views().TotalSizeBytes(), 0);
}

TEST(EngineTest, ClearReuseStateResetsEverything) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  const char* sql =
      "SELECT id, obj FROM tiny CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE id < 50;";
  ASSERT_TRUE(engine->Execute(sql).ok());
  EXPECT_GT(engine->views().TotalSizeBytes(), 0);
  engine->ClearReuseState();
  EXPECT_DOUBLE_EQ(engine->views().TotalSizeBytes(), 0);
  auto r = engine->Execute(sql);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().metrics.TotalReused(), 0);
}

TEST(EngineTest, LogicalDetectorResolvesToCheapestSatisfyingModel) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  auto r = engine->Execute(
      "SELECT id, obj FROM tiny CROSS APPLY ObjectDetector(frame) "
      "ACCURACY 'HIGH' WHERE id < 20;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().report.detector_exec, "FasterRCNNResNet101");
  auto low = engine->Execute(
      "SELECT id, obj FROM tiny CROSS APPLY ObjectDetector(frame) "
      "ACCURACY 'LOW' WHERE id >= 300;");
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low.value().report.detector_exec, "YoloTiny");
}

TEST(EngineTest, LogicalDetectorReusesHighAccuracyView) {
  auto engine = MakeEngineOrDie(ReuseMode::kEva);
  // Warm a FasterRCNNResNet50 view over [0, 200).
  ASSERT_TRUE(engine
                  ->Execute(
                      "SELECT id, obj FROM tiny CROSS APPLY "
                      "ObjectDetector(frame) ACCURACY 'MEDIUM' WHERE id < "
                      "200;")
                  .ok());
  // A low-accuracy query over the same range should read that view
  // instead of running YoloTiny (Algorithm 2).
  auto r = engine->Execute(
      "SELECT id, obj FROM tiny CROSS APPLY ObjectDetector(frame) "
      "ACCURACY 'LOW' WHERE id < 200;");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().report.detector_views.size(), 1u);
  EXPECT_EQ(r.value().report.detector_views[0], "FasterRCNNResNet50");
  EXPECT_EQ(r.value().metrics.reused.at("FasterRCNNResNet50"), 200);
  EXPECT_EQ(r.value().metrics.invocations.count("YoloTiny"), 0u);
}

TEST(EngineTest, SpecializedFilterReducesDetectorInvocations) {
  // On a sparse video (few vehicles), prefiltering frames cuts detector
  // work (§5.6).
  catalog::VideoInfo sparse = vbench::Jackson();
  sparse.name = "sparse";
  sparse.num_frames = 500;
  auto er = vbench::MakeEngine(optimizer::ReuseMode::kEva, sparse);
  ASSERT_TRUE(er.ok());
  auto engine = er.MoveValue();
  auto r = engine->Execute(
      "SELECT id, obj FROM sparse CROSS APPLY FasterRCNNResNet50(frame) "
      "WHERE VehicleFilter(frame) = true AND id < 500 AND label = "
      "'car';");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().metrics.invocations.at("VehicleFilter"), 500);
  // The conservative filter passes ~55% of (mostly empty) frames; the
  // detector must still be skipped on the rest.
  EXPECT_LT(r.value().metrics.invocations.at("FasterRCNNResNet50"), 350);
}

}  // namespace
}  // namespace eva::engine
