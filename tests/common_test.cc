#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/value.h"

namespace eva {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Doubled(Result<int> in) {
  EVA_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(Status::Internal("boom")).ok());
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{7}).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(0.5).AsDouble(), 0.5);
  EXPECT_EQ(Value("car").AsString(), "car");
  EXPECT_EQ(Value(int64_t{7}).AsDouble(), 7.0);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_TRUE(Value(int64_t{3}) < Value(3.5));
  EXPECT_TRUE(Value(3.0) == Value(int64_t{3}));
  EXPECT_TRUE(Value(int64_t{4}) > Value(3.9));
}

TEST(ValueTest, NullComparesLowest) {
  EXPECT_TRUE(Value::Null() < Value(int64_t{0}));
  EXPECT_TRUE(Value::Null() == Value::Null());
  EXPECT_TRUE(Value(int64_t{1}) < Value("a"));  // numeric < string rank
}

TEST(ValueTest, HashIsStableAndDiscriminates) {
  EXPECT_EQ(Value("car").Hash(), Value("car").Hash());
  EXPECT_NE(Value("car").Hash(), Value("cab").Hash());
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(1.0).Hash());
}

TEST(SchemaTest, IndexOfAndExtend) {
  Schema s({{"id", DataType::kInt64}, {"label", DataType::kString}});
  EXPECT_EQ(s.IndexOf("label"), 1);
  EXPECT_EQ(s.IndexOf("nope"), -1);
  auto ext = s.Extend({{"area", DataType::kDouble}});
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(ext.value().num_fields(), 3u);
  auto dup = s.Extend({{"id", DataType::kInt64}});
  EXPECT_FALSE(dup.ok());
}

TEST(BatchTest, GetByName) {
  Schema s({{"id", DataType::kInt64}, {"label", DataType::kString}});
  Batch b(s);
  b.AddRow({Value(int64_t{3}), Value("car")});
  EXPECT_EQ(b.GetByName(0, "label").AsString(), "car");
  EXPECT_TRUE(b.GetByName(0, "missing").is_null());
}

TEST(SimClockTest, ChargesByCategory) {
  SimClock clock;
  clock.Charge(CostCategory::kUdf, 99.0);
  clock.Charge(CostCategory::kUdf, 1.0);
  clock.Charge(CostCategory::kReadVideo, 2.0);
  EXPECT_DOUBLE_EQ(clock.Elapsed(CostCategory::kUdf), 100.0);
  EXPECT_DOUBLE_EQ(clock.TotalMs(), 102.0);
}

TEST(SimClockTest, SnapshotDelta) {
  SimClock clock;
  clock.Charge(CostCategory::kUdf, 10.0);
  auto before = clock.TakeSnapshot();
  clock.Charge(CostCategory::kUdf, 5.0);
  clock.Charge(CostCategory::kReadView, 3.0);
  auto delta = clock.TakeSnapshot() - before;
  EXPECT_DOUBLE_EQ(delta[CostCategory::kUdf], 5.0);
  EXPECT_DOUBLE_EQ(delta[CostCategory::kReadView], 3.0);
  EXPECT_DOUBLE_EQ(delta.Total(), 8.0);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DoubleInUnitRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, PoissonMeanRoughlyLambda) {
  Rng r(99);
  double total = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) total += r.NextPoisson(8.3);
  EXPECT_NEAR(total / kN, 8.3, 0.15);
}

TEST(StringUtilTest, Basics) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("high"), "HIGH");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(StartsWith("vbench-high", "vbench"));
  EXPECT_EQ(StrFormat("%d/%s", 4, "x"), "4/x");
}

}  // namespace
}  // namespace eva
