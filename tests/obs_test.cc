#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/query_metrics_json.h"
#include "obs/tracer.h"

namespace eva::obs {
namespace {

// ---------------------------------------------------------------- tracer --

TEST(TracerTest, SpanNestingFollowsOpenStack) {
  Tracer tracer;
  Span a = tracer.StartSpan("query", "query");
  Span b = tracer.StartSpan("parse", "parse");
  b.End();
  Span c = tracer.StartSpan("optimize", "optimize");
  c.End();
  a.End();

  ASSERT_EQ(tracer.spans().size(), 3u);
  EXPECT_EQ(tracer.spans()[0].name, "query");
  EXPECT_EQ(tracer.spans()[0].parent, -1);
  EXPECT_EQ(tracer.spans()[0].depth, 0);
  EXPECT_EQ(tracer.spans()[1].name, "parse");
  EXPECT_EQ(tracer.spans()[1].parent, 0);
  EXPECT_EQ(tracer.spans()[1].depth, 1);
  EXPECT_EQ(tracer.spans()[2].name, "optimize");
  EXPECT_EQ(tracer.spans()[2].parent, 0);
  EXPECT_EQ(tracer.spans()[2].depth, 1);
  for (const SpanRecord& rec : tracer.spans()) EXPECT_FALSE(rec.open);
}

TEST(TracerTest, DeepNestingOrdersParents) {
  Tracer tracer;
  Span a = tracer.StartSpan("a");
  Span b = tracer.StartSpan("b");
  Span c = tracer.StartSpan("c");
  EXPECT_EQ(tracer.current(), 2);
  c.End();
  EXPECT_EQ(tracer.current(), 1);
  b.End();
  a.End();
  EXPECT_EQ(tracer.current(), -1);
  EXPECT_EQ(tracer.spans()[2].parent, 1);
  EXPECT_EQ(tracer.spans()[2].depth, 2);
}

TEST(TracerTest, OutOfOrderEndTolerated) {
  Tracer tracer;
  Span a = tracer.StartSpan("a");
  Span b = tracer.StartSpan("b");
  a.End();  // parent ends before child
  b.End();
  EXPECT_FALSE(tracer.spans()[0].open);
  EXPECT_FALSE(tracer.spans()[1].open);
  // The stack fully unwound: a new span is a root again.
  Span c = tracer.StartSpan("c");
  c.End();
  EXPECT_EQ(tracer.spans()[2].parent, -1);
}

TEST(TracerTest, DisabledTracerIsInert) {
  Tracer tracer;
  tracer.set_enabled(false);
  Span s = tracer.StartSpan("never");
  EXPECT_FALSE(s.active());
  s.SetAttribute("k", "v");  // must not crash
  s.End();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(TracerTest, SpanCapDropsAndReports) {
  Tracer tracer;
  tracer.set_max_spans(2);
  Span a = tracer.StartSpan("a");
  Span b = tracer.StartSpan("b");
  Span c = tracer.StartSpan("c");
  EXPECT_FALSE(c.active());
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1);
  b.End();
  a.End();
  EXPECT_NE(tracer.RenderText().find("1 spans dropped"), std::string::npos);
}

TEST(TracerTest, SimulatedDurationComesFromClock) {
  SimClock clock;
  Tracer tracer(&clock);
  Span s = tracer.StartSpan("udf-batch");
  clock.Charge(CostCategory::kUdf, 42.5);
  s.End();
  EXPECT_DOUBLE_EQ(tracer.spans()[0].sim_ms(), 42.5);
  EXPECT_GE(tracer.spans()[0].wall_us(), 0.0);
}

TEST(TracerTest, AttributesRenderInText) {
  Tracer tracer;
  Span s = tracer.StartSpan("optimize", "optimize");
  s.SetAttribute("udf", std::string("CarType"));
  s.SetAttribute("atoms", static_cast<int64_t>(7));
  s.End();
  std::string text = tracer.RenderText();
  EXPECT_NE(text.find("optimize [optimize]"), std::string::npos);
  EXPECT_NE(text.find("udf=CarType"), std::string::npos);
  EXPECT_NE(text.find("atoms=7"), std::string::npos);
  EXPECT_NE(text.find("sim="), std::string::npos);
}

TEST(TracerTest, TextTreeIndentsChildren) {
  Tracer tracer;
  Span a = tracer.StartSpan("query");
  Span b = tracer.StartSpan("parse");
  b.End();
  a.End();
  std::string text = tracer.RenderText();
  EXPECT_EQ(text.rfind("query", 0), 0u);  // root unindented
  EXPECT_NE(text.find("\n  parse"), std::string::npos);
}

TEST(TracerTest, AddCompletedSpanNestsUnderParent) {
  Tracer tracer;
  Span exec = tracer.StartSpan("execute");
  int parent = exec.index();
  exec.End();
  int idx = tracer.AddCompletedSpan("ViewJoin", "view-probe", parent, 1.0,
                                    3.5, 10.0, 20.0);
  ASSERT_GE(idx, 0);
  tracer.AddAttribute(idx, "rows", "12");
  const SpanRecord& rec = tracer.spans()[static_cast<size_t>(idx)];
  EXPECT_EQ(rec.parent, parent);
  EXPECT_EQ(rec.depth, 1);
  EXPECT_DOUBLE_EQ(rec.sim_ms(), 2.5);
  EXPECT_EQ(rec.category, "view-probe");
  EXPECT_NE(tracer.RenderText().find("rows=12"), std::string::npos);
}

TEST(TracerTest, ChromeTraceIsValidJson) {
  SimClock clock;
  Tracer tracer(&clock);
  Span a = tracer.StartSpan("query", "query");
  a.SetAttribute("sql", std::string("SELECT \"x\"\nFROM t;"));
  clock.Charge(CostCategory::kOther, 3.0);
  Span b = tracer.StartSpan("execute");
  b.End();
  a.End();
  auto parsed = ParseJson(tracer.RenderChromeTrace());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed.value().is_array());
  ASSERT_EQ(parsed.value().array().size(), 2u);
  const JsonValue& ev = parsed.value().array()[0];
  EXPECT_EQ(ev.Find("name")->str(), "query");
  EXPECT_EQ(ev.Find("ph")->str(), "X");
  EXPECT_DOUBLE_EQ(ev.Find("dur")->number(), 3000.0);  // 3 sim-ms in us
  EXPECT_NE(ev.Find("args")->Find("wall_us"), nullptr);
  EXPECT_EQ(ev.Find("args")->Find("sql")->str(), "SELECT \"x\"\nFROM t;");
}

TEST(TracerTest, ClearDropsEverything) {
  Tracer tracer;
  Span a = tracer.StartSpan("a");
  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
  a.End();  // handle outlived Clear; must not crash or resurrect
  Span b = tracer.StartSpan("b");
  b.End();
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].parent, -1);
}

// ------------------------------------------------------------- histogram --

TEST(HistogramTest, BucketBoundariesAreInclusive) {
  Histogram h({1.0, 2.0, 5.0});
  h.Observe(1.0);   // == bound -> bucket 0 (le="1")
  h.Observe(1.5);   // bucket 1
  h.Observe(2.0);   // == bound -> bucket 1
  h.Observe(5.0);   // bucket 2
  h.Observe(5.01);  // +Inf bucket
  h.Observe(0.0);   // bucket 0
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2);
  EXPECT_EQ(h.bucket_counts()[1], 2);
  EXPECT_EQ(h.bucket_counts()[2], 1);
  EXPECT_EQ(h.bucket_counts()[3], 1);
  EXPECT_EQ(h.CumulativeCount(0), 2);
  EXPECT_EQ(h.CumulativeCount(1), 4);
  EXPECT_EQ(h.CumulativeCount(2), 5);
  EXPECT_EQ(h.CumulativeCount(3), 6);
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 5.0 + 5.01 + 0.0);
}

TEST(HistogramTest, BoundsAreSortedAndDeduped) {
  Histogram h({5.0, 1.0, 2.0, 2.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 5.0}));
  EXPECT_EQ(h.bucket_counts().size(), 4u);
}

TEST(HistogramTest, QuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 40.0});
  // 10 observations in (0,10], none in (10,20], 10 in (20,40].
  for (int i = 0; i < 10; ++i) h.Observe(5.0);
  for (int i = 0; i < 10; ++i) h.Observe(30.0);
  // Rank 10 (= q*count for q=0.5) falls exactly at the end of bucket 0.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  // Rank 15 is 5/10 of the way through bucket 2 -> 20 + 0.5*(40-20).
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 30.0);
  // Low quantiles interpolate from the first bucket's lower edge (0).
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 40.0);
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  // Observations beyond every bound land in +Inf; the estimate clamps to
  // the highest finite bound rather than inventing a value.
  Histogram overflow({1.0, 2.0});
  for (int i = 0; i < 4; ++i) overflow.Observe(100.0);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.99), 2.0);

  // No finite bounds at all: fall back to the mean.
  Histogram unbounded(std::vector<double>{});
  unbounded.Observe(3.0);
  unbounded.Observe(5.0);
  EXPECT_DOUBLE_EQ(unbounded.Quantile(0.5), 4.0);
}

TEST(HistogramTest, RenderJsonCarriesQuantiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram(
      "eva_test_quantiles", "quantile smoke", {1.0, 10.0});
  ASSERT_NE(h, nullptr);
  for (int i = 0; i < 10; ++i) h->Observe(0.5);
  const std::string json = registry.RenderJson();
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// ------------------------------------------------------ tracer overflow --

TEST(TracerTest, DroppedSpansSurfaceAsCounter) {
  MetricsRegistry registry;
  SimClock clock;
  Tracer tracer(&clock);
  tracer.set_max_spans(3);
  tracer.set_registry(&registry);
  for (int i = 0; i < 10; ++i) {
    Span s = tracer.StartSpan("span");
    clock.Charge(CostCategory::kOther, 1.0);
  }
  EXPECT_EQ(tracer.dropped(), 7);
  Counter* c = registry.GetCounter(
      "eva_trace_spans_dropped_total",
      "Spans discarded after the tracer hit max_spans");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->Value(), 7.0);
  // The Prometheus exposition carries the series too.
  EXPECT_NE(registry.RenderPrometheus().find("eva_trace_spans_dropped_total"),
            std::string::npos);
}

// -------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, FindOrCreateReturnsStableCells) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("eva_test_total", "help",
                                   {{"udf", "CarType"}});
  ASSERT_NE(a, nullptr);
  a->Increment();
  Counter* b = registry.GetCounter("eva_test_total", "help",
                                   {{"udf", "CarType"}});
  EXPECT_EQ(a, b);
  Counter* c = registry.GetCounter("eva_test_total", "help",
                                   {{"udf", "ColorDet"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.NumFamilies(), 1u);
}

TEST(MetricsRegistryTest, LabelOrderIsNormalized) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("m_total", "h",
                                   {{"a", "1"}, {"b", "2"}});
  Counter* b = registry.GetCounter("m_total", "h",
                                   {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, TypeMismatchAndBadNamesRejected) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("eva_mixed", "h"), nullptr);
  EXPECT_EQ(registry.GetGauge("eva_mixed", "h"), nullptr);
  EXPECT_EQ(registry.GetHistogram("eva_mixed", "h", {1.0}), nullptr);
  EXPECT_EQ(registry.GetCounter("0bad", "h"), nullptr);
  EXPECT_EQ(registry.GetCounter("bad-name", "h"), nullptr);
  EXPECT_EQ(registry.GetCounter("", "h"), nullptr);
}

TEST(MetricsRegistryTest, DisabledRegistryHandsOutNothing) {
  MetricsRegistry registry;
  registry.set_enabled(false);
  EXPECT_EQ(registry.GetCounter("eva_c_total", "h"), nullptr);
  EXPECT_EQ(registry.GetGauge("eva_g", "h"), nullptr);
  EXPECT_EQ(registry.GetHistogram("eva_h", "h", {1.0}), nullptr);
  EXPECT_EQ(registry.NumFamilies(), 0u);
}

MetricsRegistry* MakeGoldenRegistry() {
  auto* registry = new MetricsRegistry();
  registry->GetCounter("test_counter_total", "Counts things.",
                       {{"udf", "CarType"}})
      ->Increment(3);
  registry->GetGauge("test_gauge", "Current value.")->Set(2.5);
  Histogram* h =
      registry->GetHistogram("test_hist", "Latency.", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(3.0);
  return registry;
}

TEST(MetricsRegistryTest, PrometheusGolden) {
  std::unique_ptr<MetricsRegistry> registry(MakeGoldenRegistry());
  const std::string expected =
      "# HELP test_counter_total Counts things.\n"
      "# TYPE test_counter_total counter\n"
      "test_counter_total{udf=\"CarType\"} 3\n"
      "# HELP test_gauge Current value.\n"
      "# TYPE test_gauge gauge\n"
      "test_gauge 2.5\n"
      "# HELP test_hist Latency.\n"
      "# TYPE test_hist histogram\n"
      "test_hist_bucket{le=\"1\"} 1\n"
      "test_hist_bucket{le=\"2\"} 1\n"
      "test_hist_bucket{le=\"+Inf\"} 2\n"
      "test_hist_sum 3.5\n"
      "test_hist_count 2\n";
  EXPECT_EQ(registry->RenderPrometheus(), expected);
}

// Validates one pass of exposition-format text: every line is either a
// HELP/TYPE comment or `name{labels} value` with a parseable value.
void CheckExpositionFormat(const std::string& text) {
  size_t start = 0;
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    std::string value = line.substr(space + 1);
    char* value_end = nullptr;
    std::strtod(value.c_str(), &value_end);
    EXPECT_EQ(*value_end, '\0') << "bad sample value in: " << line;
    std::string name = series.substr(0, series.find('{'));
    ASSERT_FALSE(name.empty()) << line;
    for (size_t i = 0; i < name.size(); ++i) {
      char c = name[i];
      bool ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
                c == ':' ||
                (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
      EXPECT_TRUE(ok) << "bad metric name in: " << line;
    }
    if (series.size() > name.size()) {
      EXPECT_EQ(series[name.size()], '{') << line;
      EXPECT_EQ(series.back(), '}') << line;
    }
  }
}

TEST(MetricsRegistryTest, PrometheusOutputParsesAsExposition) {
  std::unique_ptr<MetricsRegistry> registry(MakeGoldenRegistry());
  registry->GetCounter("escaped_total", "h", {{"q", "say \"hi\"\nnow"}})
      ->Increment();
  CheckExpositionFormat(registry->RenderPrometheus());
}

TEST(MetricsRegistryTest, JsonGolden) {
  std::unique_ptr<MetricsRegistry> registry(MakeGoldenRegistry());
  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"test_counter_total\",\"type\":\"counter\","
      "\"help\":\"Counts things.\",\"series\":["
      "{\"labels\":{\"udf\":\"CarType\"},\"value\":3}]},"
      "{\"name\":\"test_gauge\",\"type\":\"gauge\","
      "\"help\":\"Current value.\",\"series\":["
      "{\"labels\":{},\"value\":2.5}]},"
      "{\"name\":\"test_hist\",\"type\":\"histogram\","
      "\"help\":\"Latency.\",\"series\":["
      "{\"labels\":{},\"count\":2,\"sum\":3.5,"
      "\"p50\":1,\"p95\":2,\"p99\":2,\"buckets\":["
      "{\"le\":1,\"count\":1},{\"le\":2,\"count\":1},"
      "{\"le\":\"+Inf\",\"count\":2}]}]}]}";
  EXPECT_EQ(registry->RenderJson(), expected);
}

TEST(MetricsRegistryTest, JsonOutputParses) {
  std::unique_ptr<MetricsRegistry> registry(MakeGoldenRegistry());
  registry->GetCounter("escaped_total", "h", {{"q", "say \"hi\"\nnow"}})
      ->Increment();
  auto parsed = ParseJson(registry->RenderJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* metrics = parsed.value().Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  EXPECT_EQ(metrics->array().size(), 4u);
  const JsonValue& escaped = metrics->array()[0];  // sorted: escaped_total
  EXPECT_EQ(escaped.Find("name")->str(), "escaped_total");
  EXPECT_EQ(escaped.Find("series")
                ->array()[0]
                .Find("labels")
                ->Find("q")
                ->str(),
            "say \"hi\"\nnow");
}

TEST(MetricsRegistryTest, ResetDropsFamilies) {
  std::unique_ptr<MetricsRegistry> registry(MakeGoldenRegistry());
  EXPECT_EQ(registry->NumFamilies(), 3u);
  registry->Reset();
  EXPECT_EQ(registry->NumFamilies(), 0u);
  EXPECT_EQ(registry->RenderPrometheus(), "");
}

// ------------------------------------------------- JSON metric round-trip --

TEST(QueryMetricsJsonTest, SnapshotRoundTripIsLossless) {
  SimClock::Snapshot s;
  // Deliberately awkward doubles: non-representable fractions, tiny and
  // large magnitudes.
  s.ms[static_cast<size_t>(CostCategory::kUdf)] = 0.1 + 0.2;
  s.ms[static_cast<size_t>(CostCategory::kReadVideo)] = 1e-17;
  s.ms[static_cast<size_t>(CostCategory::kReadView)] = 12345.678901234567;
  s.ms[static_cast<size_t>(CostCategory::kMaterialize)] = 3.0;
  s.ms[static_cast<size_t>(CostCategory::kOptimize)] = 1.0 / 3.0;
  auto round = SnapshotFromJson(SnapshotToJson(s));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  for (size_t i = 0; i < s.ms.size(); ++i) {
    EXPECT_EQ(round.value().ms[i], s.ms[i]) << "category " << i;
  }
  EXPECT_EQ(round.value().Total(), s.Total());
}

TEST(QueryMetricsJsonTest, SnapshotRejectsUnknownCategory) {
  auto r = SnapshotFromJson("{\"udf\":1,\"time_travel\":2}");
  EXPECT_FALSE(r.ok());
}

TEST(QueryMetricsJsonTest, QueryMetricsRoundTripIsLossless) {
  exec::QueryMetrics m;
  m.invocations["FasterRCNNResNet50"] = 123456789012345;
  m.invocations["CarType"] = 7;
  m.reused["CarType"] = 3;
  m.rows_out = 42;
  m.optimizer_ms = 17.3000000000000007;  // not exactly representable
  m.breakdown.ms[static_cast<size_t>(CostCategory::kUdf)] = 0.3;
  m.breakdown.ms[static_cast<size_t>(CostCategory::kHashing)] = 2.0 / 7.0;
  auto round = obs::QueryMetricsFromJson(obs::QueryMetricsToJson(m));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const exec::QueryMetrics& r = round.value();
  EXPECT_EQ(r.invocations, m.invocations);
  EXPECT_EQ(r.reused, m.reused);
  EXPECT_EQ(r.rows_out, m.rows_out);
  EXPECT_EQ(r.optimizer_ms, m.optimizer_ms);
  for (size_t i = 0; i < m.breakdown.ms.size(); ++i) {
    EXPECT_EQ(r.breakdown.ms[i], m.breakdown.ms[i]) << "category " << i;
  }
}

TEST(QueryMetricsJsonTest, AccumulateMatchesRoundTrippedAccumulate) {
  // Accumulate then export == export both and accumulate the imports.
  exec::QueryMetrics a;
  a.invocations["X"] = 5;
  a.optimizer_ms = 0.1;
  a.breakdown.ms[0] = 1.5;
  exec::QueryMetrics b;
  b.invocations["X"] = 2;
  b.reused["X"] = 1;
  b.rows_out = 9;
  b.optimizer_ms = 0.2;
  b.breakdown.ms[0] = 2.25;

  auto ra = obs::QueryMetricsFromJson(obs::QueryMetricsToJson(a));
  auto rb = obs::QueryMetricsFromJson(obs::QueryMetricsToJson(b));
  ASSERT_TRUE(ra.ok() && rb.ok());
  exec::QueryMetrics via_json = ra.value();
  via_json.Accumulate(rb.value());

  a.Accumulate(b);
  EXPECT_EQ(obs::QueryMetricsToJson(via_json), obs::QueryMetricsToJson(a));
  EXPECT_EQ(via_json.invocations.at("X"), 7);
  EXPECT_EQ(via_json.rows_out, 9);
  EXPECT_EQ(via_json.breakdown.ms[0], 3.75);
}

TEST(JsonUtilTest, NumberFormattingRoundTrips) {
  EXPECT_EQ(FormatJsonNumber(42.0), "42");
  EXPECT_EQ(FormatJsonNumber(0.0), "0");
  EXPECT_EQ(FormatJsonNumber(-5.0), "-5");
  for (double v : {0.1, 1.0 / 3.0, 1e-300, 6.02e23, -123.456}) {
    auto parsed = ParseJson(FormatJsonNumber(v));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().number(), v);
  }
  // NaN/Inf are not representable in JSON; exporter clamps to 0.
  EXPECT_EQ(FormatJsonNumber(std::nan("")), "0");
}

}  // namespace
}  // namespace eva::obs
