// Property-based tests for the per-dimension constraint algebra: every
// operation (Intersect / UnionIfSingle / DifferenceIfSingle / Complement /
// IsSubsetOf / IsEmpty) must agree with brute-force membership over a
// sample universe, for randomly generated constraints of every kind.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

// GCC 12 emits spurious -Wmaybe-uninitialized for copies of
// std::variant-holding Values through inlined vector constructions here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "common/rng.h"
#include "symbolic/dim_constraint.h"

namespace eva::symbolic {
namespace {

// Sample universes per kind.
std::vector<Value> IntegerPoints() {
  std::vector<Value> pts;
  for (int64_t v = -3; v <= 25; ++v) pts.push_back(Value(v));
  return pts;
}
std::vector<Value> RealPoints() {
  std::vector<Value> pts;
  for (int i = -6; i <= 50; ++i) {
    pts.push_back(Value(i * 0.25));
    pts.push_back(Value(i * 0.25 + 0.125));
  }
  return pts;
}
std::vector<Value> CategoricalPoints() {
  std::vector<Value> pts;
  for (const char* s : {"a", "b", "c", "d", "e"}) {
    pts.push_back(Value(s));
  }
  return pts;
}

const std::vector<Value>& PointsFor(DimKind kind) {
  static const std::vector<Value>* kInts =
      new std::vector<Value>(IntegerPoints());
  static const std::vector<Value>* kReals =
      new std::vector<Value>(RealPoints());
  static const std::vector<Value>* kCats =
      new std::vector<Value>(CategoricalPoints());
  switch (kind) {
    case DimKind::kInteger:
      return *kInts;
    case DimKind::kReal:
      return *kReals;
    case DimKind::kCategorical:
      return *kCats;
  }
  return *kInts;
}

DimConstraint RandomConstraint(Rng& rng, DimKind kind) {
  if (kind == DimKind::kCategorical) {
    std::vector<std::string> values;
    const char* vocab[] = {"a", "b", "c", "d", "e"};
    size_t n = rng.NextBelow(4);
    for (size_t i = 0; i < n; ++i) {
      values.push_back(vocab[rng.NextBelow(5)]);
    }
    return DimConstraint::Categorical(std::move(values),
                                      rng.NextBool(0.5));
  }
  double a = static_cast<double>(rng.NextBelow(20));
  double b = a + static_cast<double>(rng.NextBelow(12));
  Bound lo = rng.NextBool(0.25)
                 ? Bound::Infinite()
                 : (rng.NextBool(0.5) ? Bound::Closed(a) : Bound::Open(a));
  Bound hi = rng.NextBool(0.25)
                 ? Bound::Infinite()
                 : (rng.NextBool(0.5) ? Bound::Closed(b) : Bound::Open(b));
  DimConstraint c = DimConstraint::Numeric(kind, Interval(lo, hi));
  if (rng.NextBool(0.3)) {
    c = c.Intersect(DimConstraint::NumericNotEqual(
        kind, static_cast<double>(rng.NextBelow(22))));
  }
  return c;
}

class DimConstraintPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DimConstraintPropertyTest, OperationsMatchMembership) {
  Rng rng(GetParam());
  const DimKind kinds[] = {DimKind::kInteger, DimKind::kReal,
                           DimKind::kCategorical};
  for (int iter = 0; iter < 120; ++iter) {
    DimKind kind = kinds[rng.NextBelow(3)];
    const auto& universe = PointsFor(kind);
    DimConstraint a = RandomConstraint(rng, kind);
    DimConstraint b = RandomConstraint(rng, kind);

    DimConstraint inter = a.Intersect(b);
    std::optional<DimConstraint> uni = a.UnionIfSingle(b);
    std::optional<DimConstraint> diff = a.DifferenceIfSingle(b);
    std::vector<DimConstraint> comp = a.Complement();
    bool subset = a.IsSubsetOf(b);

    bool a_nonempty_on_universe = false;
    for (const Value& v : universe) {
      bool in_a = a.Contains(v);
      bool in_b = b.Contains(v);
      a_nonempty_on_universe = a_nonempty_on_universe || in_a;
      ASSERT_EQ(inter.Contains(v), in_a && in_b)
          << "Intersect mismatch at " << v.ToString() << "\n  a="
          << a.ToString("x") << "\n  b=" << b.ToString("x");
      if (uni.has_value()) {
        ASSERT_EQ(uni->Contains(v), in_a || in_b)
            << "UnionIfSingle mismatch at " << v.ToString() << "\n  a="
            << a.ToString("x") << "\n  b=" << b.ToString("x") << "\n  u="
            << uni->ToString("x");
      }
      if (diff.has_value()) {
        ASSERT_EQ(diff->Contains(v), in_a && !in_b)
            << "DifferenceIfSingle mismatch at " << v.ToString()
            << "\n  a=" << a.ToString("x") << "\n  b=" << b.ToString("x")
            << "\n  d=" << diff->ToString("x");
      }
      bool in_comp = false;
      for (const DimConstraint& piece : comp) {
        in_comp = in_comp || piece.Contains(v);
      }
      ASSERT_EQ(in_comp, !in_a)
          << "Complement mismatch at " << v.ToString() << " for "
          << a.ToString("x");
      if (subset && in_a) {
        ASSERT_TRUE(in_b) << a.ToString("x") << " claimed subset of "
                          << b.ToString("x") << " but " << v.ToString()
                          << " violates it";
      }
    }
    // IsEmpty must never claim empty while the universe has a member.
    if (a_nonempty_on_universe) {
      ASSERT_FALSE(a.IsEmpty()) << a.ToString("x");
    }
  }
}

TEST_P(DimConstraintPropertyTest, EqualsIsAnEquivalenceOnSamples) {
  Rng rng(GetParam() * 71 + 5);
  const DimKind kinds[] = {DimKind::kInteger, DimKind::kReal,
                           DimKind::kCategorical};
  for (int iter = 0; iter < 80; ++iter) {
    DimKind kind = kinds[rng.NextBelow(3)];
    DimConstraint a = RandomConstraint(rng, kind);
    DimConstraint b = RandomConstraint(rng, kind);
    EXPECT_TRUE(a.Equals(a));
    if (a.Equals(b)) {
      for (const Value& v : PointsFor(kind)) {
        ASSERT_EQ(a.Contains(v), b.Contains(v))
            << a.ToString("x") << " == " << b.ToString("x")
            << " but membership differs at " << v.ToString();
      }
      EXPECT_TRUE(b.Equals(a));
    }
  }
}

TEST_P(DimConstraintPropertyTest, SubsetIsConsistentWithIntersection) {
  // a ⊆ b implies a ∩ b has the same members as a (checked pointwise).
  Rng rng(GetParam() * 37 + 11);
  const DimKind kinds[] = {DimKind::kInteger, DimKind::kReal,
                           DimKind::kCategorical};
  for (int iter = 0; iter < 80; ++iter) {
    DimKind kind = kinds[rng.NextBelow(3)];
    DimConstraint a = RandomConstraint(rng, kind);
    DimConstraint b = RandomConstraint(rng, kind);
    if (!a.IsSubsetOf(b)) continue;
    DimConstraint inter = a.Intersect(b);
    for (const Value& v : PointsFor(kind)) {
      ASSERT_EQ(inter.Contains(v), a.Contains(v))
          << a.ToString("x") << " subset-of " << b.ToString("x");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DimConstraintPropertyTest,
                         ::testing::Values(11, 23, 31, 47, 59, 61, 73,
                                           97));

}  // namespace
}  // namespace eva::symbolic
