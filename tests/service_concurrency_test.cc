// Service concurrency test (docs/SERVICE.md), written for the TSan CI
// matrix: K sessions submit from K threads at once, racing admissions and
// evictions on the shared ViewStore (a small storage budget keeps the
// lifecycle manager evicting and retracting coverage throughout), while a
// scraper thread hammers /views and /sessions. The correctness oracle is
// the coverage-overclaim check: after the race, a probe pass over the
// canonical query set must return exactly the row sets a fresh serial
// no-reuse engine computes — if any interleaving had claimed coverage for
// tuples that were never materialized (or evicted without retraction),
// the probe pass would silently drop objects.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/eva_service.h"
#include "vbench/vbench.h"

namespace eva {
namespace {

constexpr int kSessions = 4;
constexpr int64_t kFrames = 900;

catalog::VideoInfo TestVideo() {
  catalog::VideoInfo video = vbench::ShortUaDetrac();
  video.num_frames = kFrames;
  return video;
}

std::unique_ptr<engine::EvaEngine> MakeTestEngine(
    engine::EngineOptions options) {
  auto engine_or = vbench::MakeEngine(options, TestVideo());
  EXPECT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  return engine_or.MoveValue();
}

/// Ground truth: the canonical query set on a fresh engine with reuse
/// disabled — row sets are pure functions of the video content.
std::vector<std::string> SerialOracle() {
  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kNoReuse;
  options.optimizer.reuse_enabled = false;
  options.observability = false;
  options.num_threads = 1;
  auto engine = MakeTestEngine(options);
  std::vector<std::string> batches;
  for (const std::string& sql :
       vbench::VbenchHigh("short_ua_detrac", kFrames)) {
    auto r = engine->Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    batches.push_back(r.ok() ? r.value().batch.ToString(1 << 20) : "");
  }
  return batches;
}

std::string HttpGetRaw(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + target +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n"
                    "\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return raw;
}

TEST(ServiceConcurrencyTest, RacingSessionsNeverOverclaimCoverage) {
  std::vector<std::string> oracle = SerialOracle();
  ASSERT_FALSE(oracle.empty());

  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  options.observability = true;  // scraping is part of the race surface
  options.num_threads = 0;       // $EVA_THREADS (the TSan job sets 4)
  // Small enough that segments are evicted (and coverage retracted)
  // throughout the run, large enough that some reuse survives.
  options.storage_budget_bytes = 24 * 1024;
  service::EvaService svc(MakeTestEngine(options));
  svc.engine()->set_metrics_registry(nullptr);
  ASSERT_TRUE(svc.engine()->StartTelemetryServer(0).ok());
  int port = svc.engine()->telemetry_port();
  ASSERT_GT(port, 0);

  std::vector<std::shared_ptr<service::EvaSession>> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(svc.CreateSession("racer-" + std::to_string(s)));
  }

  // K submitter threads race the op queue; each replays a different
  // seeded permutation, so admissions interleave across sessions.
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSessions; ++s) {
    submitters.emplace_back([&, s] {
      std::vector<std::string> queries = vbench::Permute(
          vbench::VbenchHigh("short_ua_detrac", kFrames),
          static_cast<uint64_t>(7 + s));
      queries.resize(5);
      for (const std::string& sql : queries) {
        auto r = svc.Execute(sessions[static_cast<size_t>(s)]->id(), sql);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  std::atomic<bool> stop_scraper{false};
  std::thread scraper([&] {
    while (!stop_scraper.load(std::memory_order_acquire)) {
      EXPECT_NE(HttpGetRaw(port, "/views").find("200"), std::string::npos);
      EXPECT_NE(HttpGetRaw(port, "/sessions").find("200"),
                std::string::npos);
    }
  });
  for (auto& t : submitters) t.join();
  stop_scraper.store(true, std::memory_order_release);
  scraper.join();
  svc.Drain();
  EXPECT_EQ(failures.load(), 0);

  // The race actually raced: every session ran its queries, and the
  // budget forced evictions (so coverage retraction was exercised).
  int64_t total_queries = 0;
  for (const auto& s : svc.Sessions()) total_queries += s->stats().queries;
  EXPECT_EQ(total_queries, kSessions * 5);
  EXPECT_GT(svc.engine()->lifecycle()->evictions(), 0);
  EXPECT_LE(svc.engine()->views().TotalSizeBytes(),
            options.storage_budget_bytes);

  // Overclaim oracle: a probe pass through a fresh session must match the
  // serial no-reuse ground truth bit for bit.
  auto probe = svc.CreateSession("probe");
  std::vector<std::string> canonical =
      vbench::VbenchHigh("short_ua_detrac", kFrames);
  for (size_t q = 0; q < canonical.size(); ++q) {
    auto r = svc.Execute(probe->id(), canonical[q]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().batch.ToString(1 << 20), oracle[q])
        << "row set of probe query " << q
        << " diverged from the serial oracle — coverage overclaim";
  }
  svc.engine()->StopTelemetryServer();
}

TEST(ServiceConcurrencyTest, ConcurrentCreateCloseAndSubmit) {
  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  options.observability = false;
  options.num_threads = 0;
  service::EvaService svc(MakeTestEngine(options));

  const std::string sql =
      "SELECT id, obj FROM short_ua_detrac CROSS APPLY "
      "FasterRCNNResNet50(frame) WHERE id < 200 AND label = 'car';";
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        auto session = svc.CreateSession();
        if (!svc.Execute(session->id(), sql).ok()) failures.fetch_add(1);
        if (!svc.CloseSession(session->id()).ok()) failures.fetch_add(1);
        // Submission after close fails without executing.
        if (svc.Execute(session->id(), sql).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc.open_sessions(), 0);
  EXPECT_EQ(static_cast<int>(svc.Sessions().size()), 12);
  for (const auto& s : svc.Sessions()) {
    EXPECT_EQ(s->stats().queries, 1);
    EXPECT_EQ(s->stats().errors, 0);
  }
}

}  // namespace
}  // namespace eva
