// Epoch-tagged remainder-cache tests (docs/SYMBOLIC.md): hits only repeat
// within a coverage epoch, every real coverage mutation — union, eviction,
// recovery reload — invalidates, no-op mutations keep the cache warm, and
// the cache is genuinely shared across service sessions through the
// engine's single UdfManager.

#include <gtest/gtest.h>

#include <string>

#include "service/eva_service.h"
#include "symbolic/predicate.h"
#include "udf/udf_manager.h"
#include "vbench/vbench.h"

namespace eva {
namespace {

using symbolic::DimConstraint;
using symbolic::DimKind;
using symbolic::Interval;
using symbolic::Predicate;

Predicate IdRange(double lo, double hi) {
  symbolic::Conjunct c;
  c.Constrain("id", DimConstraint::Numeric(DimKind::kInteger,
                                           Interval::AtLeast(lo)));
  c.Constrain("id", DimConstraint::Numeric(DimKind::kInteger,
                                           Interval::LessThan(hi)));
  return Predicate::FromConjunct(std::move(c));
}

TEST(SymbolicCacheTest, RepeatLookupHitsWithinEpoch) {
  udf::UdfManager manager;
  manager.UpdateCoverage("det@v", IdRange(0, 100));
  udf::SymbolicOpStats stats;
  ASSERT_TRUE(manager.InterCoverage("det@v", IdRange(50, 150), {},
                                    &stats).ok());
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, 0);
  ASSERT_TRUE(manager.InterCoverage("det@v", IdRange(50, 150), {},
                                    &stats).ok());
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, 1);
  // Diff keys independently but shares the same epoch discipline.
  ASSERT_TRUE(manager.DiffCoverage("det@v", IdRange(50, 150), {},
                                   &stats).ok());
  EXPECT_EQ(stats.cache_misses, 2);
  ASSERT_TRUE(manager.DiffCoverage("det@v", IdRange(50, 150), {},
                                   &stats).ok());
  EXPECT_EQ(stats.cache_hits, 2);
}

TEST(SymbolicCacheTest, EveryRealMutationInvalidates) {
  udf::UdfManager manager;
  manager.UpdateCoverage("det@v", IdRange(0, 100));
  const Predicate q = IdRange(50, 150);
  udf::SymbolicOpStats stats;

  auto lookup = [&] {
    ASSERT_TRUE(manager.InterCoverage("det@v", q, {}, &stats).ok());
    ASSERT_TRUE(manager.DiffCoverage("det@v", q, {}, &stats).ok());
  };

  lookup();  // primes: 2 misses
  uint64_t epoch = manager.CoverageEpoch("det@v");

  // Union that actually grows the coverage → new epoch, fresh misses.
  manager.UpdateCoverage("det@v", IdRange(200, 300));
  EXPECT_GT(manager.CoverageEpoch("det@v"), epoch);
  epoch = manager.CoverageEpoch("det@v");
  stats = {};
  lookup();
  EXPECT_EQ(stats.cache_misses, 2);
  EXPECT_EQ(stats.cache_hits, 0);

  // Eviction that removes covered tuples → new epoch.
  manager.RetractCoverage("det@v", IdRange(0, 10));
  EXPECT_GT(manager.CoverageEpoch("det@v"), epoch);
  epoch = manager.CoverageEpoch("det@v");
  stats = {};
  lookup();
  EXPECT_EQ(stats.cache_misses, 2);

  // Recovery reload with different coverage → new epoch.
  manager.SetCoverage("det@v", IdRange(0, 42));
  EXPECT_GT(manager.CoverageEpoch("det@v"), epoch);
  stats = {};
  lookup();
  EXPECT_EQ(stats.cache_misses, 2);
}

TEST(SymbolicCacheTest, NoOpMutationsKeepTheCacheWarm) {
  udf::UdfManager manager;
  manager.UpdateCoverage("det@v", IdRange(0, 100));
  const Predicate q = IdRange(50, 150);
  udf::SymbolicOpStats stats;
  ASSERT_TRUE(manager.InterCoverage("det@v", q, {}, &stats).ok());
  uint64_t epoch = manager.CoverageEpoch("det@v");

  // A fleet session re-claiming an already-covered range, an eviction of
  // nothing, and a reload of the identical predicate must all keep the
  // epoch — and therefore the cached result.
  manager.UpdateCoverage("det@v", IdRange(20, 80));
  manager.RetractCoverage("det@v", IdRange(500, 600));
  manager.SetCoverage("det@v", manager.Coverage("det@v"));
  EXPECT_EQ(manager.CoverageEpoch("det@v"), epoch);

  ASSERT_TRUE(manager.InterCoverage("det@v", q, {}, &stats).ok());
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 1);
}

TEST(SymbolicCacheTest, FastpathOffBypassesTheCache) {
  udf::UdfManager manager;
  manager.set_symbolic_fastpath(false);
  manager.UpdateCoverage("det@v", IdRange(0, 100));
  udf::SymbolicOpStats stats;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(manager.InterCoverage("det@v", IdRange(10, 20), {},
                                      &stats).ok());
  }
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.cache_misses, 0);
}

TEST(SymbolicCacheTest, EvictionBoundsTheCache) {
  udf::UdfManager manager;
  manager.UpdateCoverage("det@v", IdRange(0, 100));
  // Far more distinct queries than the cache holds: size stays bounded and
  // old entries are evicted FIFO, yet every lookup still returns.
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        manager.InterCoverage("det@v", IdRange(i, i + 5)).ok());
  }
  EXPECT_GT(manager.symbolic_cache_stats().evictions, 0);
  EXPECT_EQ(manager.symbolic_cache_stats().hits, 0);
}

// Two service sessions issue the same query shape: the second session's
// optimizer must be served from the remainder cache the first session
// populated — the cross-session sharing the fleet speedup rests on.
TEST(SymbolicCacheTest, CacheIsSharedAcrossServiceSessions) {
  engine::EngineOptions options;
  options.optimizer.mode = optimizer::ReuseMode::kEva;
  options.observability = false;
  options.num_threads = 1;
  catalog::VideoInfo video = vbench::ShortUaDetrac();
  video.num_frames = 600;
  auto engine_or = vbench::MakeEngine(options, video);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  service::EvaService service(engine_or.MoveValue());

  auto s1 = service.CreateSession("a");
  auto s2 = service.CreateSession("b");
  // A UDF-based predicate (CarType) is what drives the optimizer's ranking
  // Inter/Diff coverage lookups — a bare detector APPLY never consults the
  // remainder cache.
  const std::string query =
      "SELECT id, obj FROM short_ua_detrac CROSS APPLY "
      "FasterRCNNResNet50(frame) WHERE id >= 100 AND id < 200 "
      "AND label = 'car' AND CarType(frame, bbox) = 'Nissan';";

  auto r1 = service.Execute(s1->id(), query);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  // Identical statement from the other session: its EXPLAIN-time coverage
  // lookups hit the entries session a's execution left behind (the
  // coverage union after r1 bumped the epoch, so r2 first misses, then its
  // own repeat hits). What matters: the fleet shares one cache.
  auto r2 = service.Execute(s2->id(), query);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  auto r3 = service.Execute(s2->id(), query);
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  const auto& stats = service.engine()->udf_manager().symbolic_cache_stats();
  EXPECT_GT(stats.hits, 0) << "hits=" << stats.hits
                           << " misses=" << stats.misses;
  EXPECT_GT(r3.value().metrics.symbolic_cache_hits, 0);
}

}  // namespace
}  // namespace eva
