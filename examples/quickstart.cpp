// Quickstart: create a video table, register UDFs via EVA-QL, run an
// exploratory query, and observe the reuse speedup on a follow-up query.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "engine/eva_engine.h"
#include "vbench/vbench.h"

using namespace eva;  // NOLINT

int main() {
  // 1. Set up an engine with EVA's semantic reuse enabled.
  engine::EngineOptions options;  // defaults: ReuseMode::kEva
  auto engine = std::make_unique<engine::EvaEngine>(
      options, std::make_shared<catalog::Catalog>());

  // 2. Register the model zoo through EVA-QL CREATE UDF statements
  //    (FasterRCNN / YoloTiny detectors, CarType / ColorDet classifiers).
  if (Status s = vbench::RegisterStandardUdfs(engine.get()); !s.ok()) {
    std::fprintf(stderr, "UDF registration failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  // 3. Create a (synthetic) traffic video: 2,000 frames, ~8 vehicles each.
  catalog::VideoInfo video;
  video.name = "traffic";
  video.num_frames = 2000;
  video.mean_objects_per_frame = 8.3 / 0.8;
  video.seed = 7;
  if (Status s = engine->CreateVideo(video); !s.ok()) {
    std::fprintf(stderr, "CreateVideo failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. First query: find gray Nissans in the first half of the video.
  const char* q1 =
      "SELECT id, obj FROM traffic CROSS APPLY "
      "FasterRCNNResNet50(frame) "
      "WHERE id < 1000 AND label = 'car' AND "
      "CarType(frame, bbox) = 'Nissan' AND "
      "ColorDet(frame, bbox) = 'Gray';";
  auto r1 = engine->Execute(q1);
  if (!r1.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 r1.status().ToString().c_str());
    return 1;
  }
  std::printf("Q1 returned %zu rows in %.1f simulated seconds "
              "(%lld UDF invocations, %lld reused)\n",
              r1.value().batch.num_rows(),
              r1.value().metrics.TotalMs() / 1000.0,
              static_cast<long long>(
                  r1.value().metrics.TotalInvocations()),
              static_cast<long long>(r1.value().metrics.TotalReused()));

  // 5. Refine the query (zoom out on the color constraint): EVA reuses
  //    the materialized detector and CarType results automatically.
  const char* q2 =
      "SELECT id, obj FROM traffic CROSS APPLY "
      "FasterRCNNResNet50(frame) "
      "WHERE id < 1000 AND label = 'car' AND "
      "CarType(frame, bbox) = 'Nissan';";
  auto r2 = engine->Execute(q2);
  if (!r2.ok()) return 1;
  std::printf("Q2 returned %zu rows in %.1f simulated seconds "
              "(%lld invocations, %lld reused -> %.0f%% hit rate)\n",
              r2.value().batch.num_rows(),
              r2.value().metrics.TotalMs() / 1000.0,
              static_cast<long long>(
                  r2.value().metrics.TotalInvocations()),
              static_cast<long long>(r2.value().metrics.TotalReused()),
              100.0 * static_cast<double>(
                          r2.value().metrics.TotalReused()) /
                  static_cast<double>(
                      r2.value().metrics.TotalInvocations()));

  std::printf("speedup of the refined query: %.1fx\n",
              r1.value().metrics.TotalMs() / r2.value().metrics.TotalMs());
  std::printf("\nfirst rows of Q2:\n%s",
              r2.value().batch.ToString(5).c_str());
  std::printf("\nmaterialized views now hold %.1f KiB of UDF results\n",
              engine->views().TotalSizeBytes() / 1024.0);
  return 0;
}
