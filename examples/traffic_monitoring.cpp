// Traffic monitoring across applications: Listing 1's Q4. A traffic
// planner counts vehicles per frame with a LOW-accuracy logical
// ObjectDetector — and EVA's logical UDF reuse (§4.3, Algorithm 2)
// transparently serves it from the high-accuracy detector views another
// application (the suspicious-vehicle tracker) already materialized.

#include <cstdio>

#include "engine/eva_engine.h"
#include "vbench/vbench.h"

using namespace eva;  // NOLINT

int main() {
  engine::EngineOptions options;
  auto engine = std::make_unique<engine::EvaEngine>(
      options, std::make_shared<catalog::Catalog>());
  if (!vbench::RegisterStandardUdfs(engine.get()).ok()) return 1;

  catalog::VideoInfo video;
  video.name = "intersection";
  video.num_frames = 2000;
  video.mean_objects_per_frame = 8.3 / 0.8;
  video.seed = 55;
  if (!engine->CreateVideo(video).ok()) return 1;

  // Application 1 (vehicle tracking) runs a MEDIUM-accuracy search,
  // materializing FasterRCNNResNet50 results for the first 1,500 frames.
  auto r1 = engine->Execute(
      "SELECT id, obj FROM intersection CROSS APPLY "
      "ObjectDetector(frame) ACCURACY 'MEDIUM' "
      "WHERE id < 1500 AND label = 'car' AND "
      "CarType(frame, bbox) = 'Nissan';");
  if (!r1.ok()) {
    std::fprintf(stderr, "%s\n", r1.status().ToString().c_str());
    return 1;
  }
  std::printf("tracker query: %.1f s, detector executed: %s\n",
              r1.value().metrics.TotalMs() / 1000.0,
              r1.value().report.detector_exec.c_str());

  // Application 2 (traffic planner): LOW accuracy suffices for counting.
  // Algorithm 2 prefers reading the materialized MEDIUM view over running
  // even the cheap YoloTiny model.
  auto r2 = engine->Execute(
      "SELECT id, COUNT(*) FROM intersection CROSS APPLY "
      "ObjectDetector(frame) ACCURACY 'LOW' "
      "WHERE id < 1500 AND label = 'car' AND area > 0.15 GROUP BY id;");
  if (!r2.ok()) {
    std::fprintf(stderr, "%s\n", r2.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntraffic count query: %.1f s\n",
              r2.value().metrics.TotalMs() / 1000.0);
  std::printf("views read: ");
  for (const auto& v : r2.value().report.detector_views) {
    std::printf("%s ", v.c_str());
  }
  std::printf("\nremainder executed by: %s (reused %lld of %lld detector "
              "invocations)\n",
              r2.value().report.detector_exec.c_str(),
              static_cast<long long>(
                  r2.value().metrics.reused.count("FasterRCNNResNet50")
                      ? r2.value().metrics.reused.at("FasterRCNNResNet50")
                      : 0),
              static_cast<long long>(r2.value().metrics.TotalInvocations()));

  // Print a slice of the per-frame congestion series.
  const Batch& counts = r2.value().batch;
  std::printf("\nvehicles per frame (first 10 frames):\n");
  for (size_t i = 0; i < counts.num_rows() && i < 10; ++i) {
    std::printf("  frame %4s: %s vehicles\n",
                counts.GetByName(i, "id").ToString().c_str(),
                counts.GetByName(i, "count").ToString().c_str());
  }

  // Compare against what the planner would have paid without reuse.
  engine::EngineOptions noreuse_opts;
  noreuse_opts.optimizer.reuse_enabled = false;
  noreuse_opts.optimizer.mode = optimizer::ReuseMode::kNoReuse;
  auto fresh = std::make_unique<engine::EvaEngine>(
      noreuse_opts, std::make_shared<catalog::Catalog>());
  if (!vbench::RegisterStandardUdfs(fresh.get()).ok()) return 1;
  if (!fresh->CreateVideo(video).ok()) return 1;
  auto r3 = fresh->Execute(
      "SELECT id, COUNT(*) FROM intersection CROSS APPLY "
      "ObjectDetector(frame) ACCURACY 'LOW' "
      "WHERE id < 1500 AND label = 'car' AND area > 0.15 GROUP BY id;");
  if (!r3.ok()) return 1;
  std::printf("\nwithout cross-application reuse the same count costs "
              "%.1f s -> %.1fx slower\n",
              r3.value().metrics.TotalMs() / 1000.0,
              r3.value().metrics.TotalMs() / r2.value().metrics.TotalMs());
  return 0;
}
