// Suspicious-vehicle tracking: the paper's motivating scenario (Listing 1,
// §1). A law-enforcement officer iteratively refines a search with a
// witness; every refinement reuses the expensive UDF results of the
// previous queries. The example prints, per query, the plan the optimizer
// chose and the reuse it achieved.

#include <cstdio>
#include <vector>

#include "engine/eva_engine.h"
#include "vbench/vbench.h"

using namespace eva;  // NOLINT

int main() {
  engine::EngineOptions options;
  auto engine = std::make_unique<engine::EvaEngine>(
      options, std::make_shared<catalog::Catalog>());
  if (!vbench::RegisterStandardUdfs(engine.get()).ok()) return 1;

  catalog::VideoInfo video;
  video.name = "surveillance";
  video.num_frames = 3000;
  video.mean_objects_per_frame = 8.3 / 0.8;
  video.seed = 1234;
  if (!engine->CreateVideo(video).ok()) return 1;

  // The session: the witness first recalls only the vehicle type and a
  // rough time window, then the color, and finally the analyst sweeps the
  // whole video for matching vehicles (Listing 1's Q1 -> Q2 -> Q3).
  struct Step {
    const char* description;
    const char* sql;
  };
  std::vector<Step> session = {
      {"Q1: all Nissan-type cars after '6pm' (frame 1800)",
       "SELECT id, obj, ColorDet(frame, bbox) FROM surveillance "
       "CROSS APPLY FasterRCNNResNet50(frame) "
       "WHERE id > 1800 AND label = 'car' AND area > 0.3 AND "
       "CarType(frame, bbox) = 'Nissan';"},
      {"Q2: witness recalls the color -> narrow to red Nissans "
       "between 'frames 2100-2400'",
       "SELECT id, obj FROM surveillance CROSS APPLY "
       "FasterRCNNResNet50(frame) "
       "WHERE id > 2100 AND id < 2400 AND label = 'car' AND area > 0.3 "
       "AND ColorDet(frame, bbox) = 'Red' AND "
       "CarType(frame, bbox) = 'Nissan';"},
      {"Q3: sweep the WHOLE video for red Nissan sightings",
       "SELECT id, obj FROM surveillance CROSS APPLY "
       "FasterRCNNResNet50(frame) "
       "WHERE id >= 0 AND label = 'car' AND area > 0.15 AND "
       "CarType(frame, bbox) = 'Nissan' AND "
       "ColorDet(frame, bbox) = 'Red';"},
  };

  double cumulative = 0;
  for (const Step& step : session) {
    auto r = engine->Execute(step.sql);
    if (!r.ok()) {
      std::fprintf(stderr, "failed: %s\n%s\n", step.description,
                   r.status().ToString().c_str());
      return 1;
    }
    const auto& m = r.value().metrics;
    cumulative += m.TotalMs();
    std::printf("\n--- %s\n", step.description);
    std::printf("rows: %zu   simulated time: %.1f s   reuse: %lld/%lld "
                "invocations\n",
                r.value().batch.num_rows(), m.TotalMs() / 1000.0,
                static_cast<long long>(m.TotalReused()),
                static_cast<long long>(m.TotalInvocations()));
    std::printf("physical plan:\n%s", r.value().report.plan_text.c_str());
    if (!r.value().report.udf_predicates.empty()) {
      std::printf("UDF predicate order (Eq. 4 ranking):");
      for (const auto& p : r.value().report.udf_predicates) {
        std::printf("  %s (s=%.2f, missing=%.0f%%)", p.udf.c_str(),
                    p.selectivity, 100 * p.sel_diff_fraction);
      }
      std::printf("\n");
    }
  }
  std::printf("\nsession total: %.1f simulated seconds; the final "
              "whole-video sweep was served mostly from materialized "
              "views.\n",
              cumulative / 1000.0);
  return 0;
}
