// Symbolic playground: drives EVA's symbolic engine (§4.1) directly —
// the same API the optimizer uses. Shows how the aggregated predicate p_u
// evolves across a session and how the derived INTER / DIFF / UNION
// predicates identify reuse opportunities.

#include <cstdio>

#include "expr/symbolic_bridge.h"
#include "parser/parser.h"
#include "symbolic/naive_simplify.h"
#include "symbolic/predicate.h"

using namespace eva;            // NOLINT
using symbolic::Predicate;

namespace {

symbolic::DimKind Kinds(const std::string& dim) {
  if (dim == "id") return symbolic::DimKind::kInteger;
  if (dim == "area" || dim == "timestamp") return symbolic::DimKind::kReal;
  return symbolic::DimKind::kCategorical;
}

Predicate Parse(const char* text) {
  auto e = parser::ParseExpression(text);
  if (!e.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 e.status().ToString().c_str());
    std::exit(1);
  }
  auto p = expr::ExprToPredicate(*e.value(), Kinds);
  if (!p.ok()) {
    std::fprintf(stderr, "conversion error: %s\n",
                 p.status().ToString().c_str());
    std::exit(1);
  }
  return p.MoveValue();
}

}  // namespace

int main() {
  std::printf("== monadic reduction (the paper's §2 example) ==\n");
  Predicate t1 = Parse("timestamp > 18 OR timestamp > 21");
  std::printf("  timestamp > 6pm OR timestamp > 9pm  ~>  %s\n",
              t1.ToString().c_str());

  std::printf("\n== polyadic reduction (§4.1) ==\n");
  Predicate p1 = Parse("area > 0.05 AND id >= 10");
  Predicate p2 = Parse("area > 0.10 AND id >= 15");
  std::printf("  UNION(%s,\n        %s)\n   ~>  %s\n",
              p1.ToString().c_str(), p2.ToString().c_str(),
              Predicate::Union(p1, p2).ToString().c_str());

  std::printf("\n== a refinement session's aggregated predicate ==\n");
  const char* session[] = {
      "id < 1000 AND label = 'car' AND area > 0.3",
      "id < 1000 AND label = 'car'",                      // zoom out
      "id >= 500 AND id < 1500 AND label = 'car'",        // shift
      "id >= 200 AND id < 800 AND label = 'truck'",
  };
  Predicate coverage = Predicate::False();
  for (const char* q : session) {
    Predicate query = Parse(q);
    auto inter = Predicate::Inter(coverage, query);
    auto diff = Predicate::Diff(coverage, query);
    std::printf("\n  query: %s\n", q);
    if (inter.ok() && diff.ok()) {
      std::printf("    reuse region (p∩): %s\n",
                  inter.value().ToString().c_str());
      std::printf("    must evaluate (p–): %s\n",
                  diff.value().ToString().c_str());
    }
    coverage = Predicate::Union(coverage, query);
    std::printf("    coverage (p∪) now: %s   [%d atoms]\n",
                coverage.ToString().c_str(), coverage.AtomCount());
  }

  std::printf("\n== why Algorithm 1 matters: the naive baseline ==\n");
  symbolic::NaivePredicate naive = symbolic::NaivePredicate::False();
  Predicate eva_cov = Predicate::False();
  for (int i = 0; i < 6; ++i) {
    std::string q = "id >= " + std::to_string(i * 200) + " AND id < " +
                    std::to_string(i * 200 + 500);
    eva_cov = Predicate::Union(eva_cov, Parse(q.c_str()));
    auto lo = symbolic::NaiveAtom(
        "id", symbolic::NaiveOp::kGe, Value(static_cast<double>(i * 200)));
    auto hi = symbolic::NaiveAtom(
        "id", symbolic::NaiveOp::kLt,
        Value(static_cast<double>(i * 200 + 500)));
    naive = symbolic::NaivePredicate::Or(
        naive, symbolic::NaivePredicate::And(
                   symbolic::NaivePredicate::Atom(lo),
                   symbolic::NaivePredicate::Atom(hi)));
  }
  std::printf("  after 6 overlapping range queries:\n");
  std::printf("    EVA reduction:   %d atoms   (%s)\n",
              eva_cov.AtomCount(), eva_cov.ToString().c_str());
  std::printf("    naive simplify:  %d atoms\n", naive.AtomCount());
  return 0;
}
