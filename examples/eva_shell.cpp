// Interactive EVA-QL shell: type statements against a demo video and watch
// the reuse machinery work. Supports all EVA-QL statements (SELECT /
// EXPLAIN / CREATE UDF / DROP UDF / SHOW UDFS) plus shell commands:
//
//   .views     list materialized views: rows, bytes, coverage atoms, and
//              the id of the last query that touched each view
//   .budget    show the storage budget / eviction policy; `.budget N`
//              sets the budget to N bytes and evicts down to it;
//              `.budget N POLICY` also switches policy (cost-benefit /
//              lru / fifo) — see docs/LIFECYCLE.md
//   .coverage  print each UDF signature's aggregated predicate p_u
//   .metrics   Prometheus exposition of the session's metrics
//              (.metrics json / .metrics reset variants)
//   .trace     session span tree   (.trace chrome FILE writes Chrome
//              trace-event JSON for chrome://tracing / Perfetto)
//   .threads   show the worker-thread count  (.threads N resizes the pool;
//              simulated times are unaffected — see docs/RUNTIME.md)
//   .serve     start the telemetry HTTP server (`.serve` = ephemeral port,
//              `.serve PORT` = fixed, `.serve stop` stops it); endpoints:
//              /metrics /metrics.json /trace /views /sessions /profile
//              /healthz
//   .session   multi-session service controls (docs/SERVICE.md): bare
//              `.session` lists every session and marks the current one;
//              `.session new [NAME]` opens a session and switches to it;
//              `.session use ID` switches; `.session close [ID]` closes.
//              All sessions share one ViewStore, so views materialized in
//              one session serve the others
//   .profile   sampling wall-clock profiler: `.profile start [HZ]`,
//              `.profile stop [FILE]` (folded stacks for flamegraph.pl),
//              bare `.profile` shows status — see docs/OBSERVABILITY.md
//   .faults    show the active fault schedule; `.faults SCHEDULE` installs
//              one (e.g. `.faults crash-exit@fs.rename:MANIFEST#1`) and
//              `.faults off` disables injection — see docs/RELIABILITY.md
//   .stream    `.stream NAME TOTAL [INITIAL]` registers a streaming video
//              source: TOTAL eventual frames, INITIAL (default 1) visible
//              now; frames arrive via .ingest — see docs/STREAMING.md
//   .wal DIR   enable the write-ahead log on DIR: recovers the last
//              checkpoint + log tail, then group-commits every view
//              append / coverage change / ingestion advance. Register
//              streams first
//   .ingest    `.ingest SOURCE FRAMES [TICKS]` runs TICKS (default 1)
//              ingestion ticks of FRAMES arrivals each; views materialized
//              at an earlier horizon are incrementally extended, not
//              invalidated, so re-running a query shows hit% climbing
//   .checkpoint fold the WAL into a fresh snapshot generation
//   .clear     drop all reuse state
//   .save DIR  persist views to a directory     .load DIR  restore them
//              (.load prints what crash recovery found and repaired)
//   .quit
//
// Commands accept either a '.' or the legacy '\' prefix.
//
// Usage: ./build/examples/eva_shell   (then e.g.:)
//   SELECT id, obj FROM demo CROSS APPLY FasterRCNNResNet50(frame)
//     WHERE id < 300 AND label = 'car' LIMIT 5;

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/eva_engine.h"
#include "obs/profiler.h"
#include "service/eva_service.h"
#include "vbench/vbench.h"

using namespace eva;  // NOLINT

namespace {

void PrintResult(const engine::QueryResult& r) {
  std::printf("%s", r.batch.ToString(12).c_str());
  if (r.metrics.TotalInvocations() > 0) {
    std::printf("-- %.2f simulated s | UDF invocations %lld (reused "
                "%lld)\n",
                r.metrics.TotalMs() / 1000.0,
                static_cast<long long>(r.metrics.TotalInvocations()),
                static_cast<long long>(r.metrics.TotalReused()));
  }
}

}  // namespace

int main() {
  engine::EngineOptions options;
  auto owned = std::make_unique<engine::EvaEngine>(
      options, std::make_shared<catalog::Catalog>());
  if (!vbench::RegisterStandardUdfs(owned.get()).ok()) return 1;
  catalog::VideoInfo video;
  video.name = "demo";
  video.num_frames = 1000;
  video.mean_objects_per_frame = 8.3 / 0.8;
  video.seed = 2022;
  if (!owned->CreateVideo(video).ok()) return 1;

  // The shell is one client of the multi-session service: every SQL
  // statement and store-wide op goes through the service executor, so a
  // second shell command (or a scraper) can never observe a torn store.
  service::EvaService svc(std::move(owned));
  engine::EvaEngine* engine = svc.engine();
  std::shared_ptr<service::EvaSession> current = svc.CreateSession("shell");

  std::printf("EVA shell — demo video 'demo' (1000 frames) loaded; UDFs "
              "registered.\nStatements end with ';'. \\quit to exit. "
              "Session %lld ('%s') is current; .session to manage.\n",
              static_cast<long long>(current->id()),
              current->name().c_str());

  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "eva> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Shell commands.
    if (buffer.empty() && !line.empty() &&
        (line[0] == '\\' || line[0] == '.')) {
      line[0] = '\\';  // normalize the '.' prefix to the legacy one
      if (line == "\\quit" || line == "\\q") break;
      if (line == "\\metrics" || line.rfind("\\metrics ", 0) == 0) {
        obs::MetricsRegistry* registry = engine->metrics_registry();
        if (registry == nullptr) {
          std::printf("observability is disabled.\n");
        } else if (line == "\\metrics json") {
          std::printf("%s\n", registry->RenderJson().c_str());
        } else if (line == "\\metrics reset") {
          registry->Reset();
          std::printf("metrics reset.\n");
        } else {
          std::printf("%s", registry->RenderPrometheus().c_str());
        }
        continue;
      }
      if (line == "\\trace" || line.rfind("\\trace ", 0) == 0) {
        if (line.rfind("\\trace chrome ", 0) == 0) {
          const std::string path = line.substr(14);
          std::ofstream out(path);
          if (!out) {
            std::printf("cannot write %s\n", path.c_str());
          } else {
            out << engine->tracer().RenderChromeTrace();
            std::printf("wrote %s (load via chrome://tracing).\n",
                        path.c_str());
          }
        } else {
          std::printf("%s", engine->tracer().RenderText().c_str());
        }
        continue;
      }
      if (line == "\\views") {
        for (const auto& [name, view] : engine->views().views()) {
          const int atoms = engine->udf_manager().CoverageAtomCount(name);
          const int64_t last_q = view->last_access_query();
          const storage::ViewCompressionStats cs = view->CompressionStats();
          std::printf("  %-40s %8lld keys %8lld rows %10.1f KiB "
                      "%3d coverage atoms  last query %s",
                      name.c_str(),
                      static_cast<long long>(view->num_keys()),
                      static_cast<long long>(view->num_rows()),
                      view->SizeBytes() / 1024.0, atoms,
                      last_q < 0 ? "-"
                                 : std::to_string(last_q).c_str());
          if (cs.sealed_segments > 0 && cs.raw_bytes > 0) {
            std::printf("  [%.1f -> %.1f KiB sealed, %.2fx]",
                        cs.raw_bytes / 1024.0, cs.encoded_bytes / 1024.0,
                        cs.encoded_bytes > 0
                            ? static_cast<double>(cs.raw_bytes) /
                                  static_cast<double>(cs.encoded_bytes)
                            : 0.0);
          }
          std::printf("\n");
        }
        continue;
      }
      if (line == "\\budget" || line.rfind("\\budget ", 0) == 0) {
        lifecycle::ViewLifecycleManager* lc = engine->lifecycle();
        if (line != "\\budget") {
          std::istringstream is(line.substr(8));
          double bytes = -1;
          std::string policy;
          if (!(is >> bytes) || bytes < 0) {
            std::printf("usage: .budget [BYTES [cost-benefit|lru|fifo]]\n");
            continue;
          }
          if (is >> policy) {
            auto kind = lifecycle::ParseEvictionPolicy(policy);
            if (!kind.ok()) {
              std::printf("%s\n", kind.status().ToString().c_str());
              continue;
            }
            lc->SetPolicy(kind.value());
          }
          lc->set_budget_bytes(bytes);
          auto evicted = lc->EnforceBudget(engine->queries_executed());
          if (!evicted.empty()) {
            for (const auto& ev : evicted) {
              std::printf("  evicted %s frames [%lld, %lld) "
                          "(%lld keys, %.1f KiB)\n",
                          ev.view.c_str(),
                          static_cast<long long>(ev.first_frame),
                          static_cast<long long>(ev.frame_end),
                          static_cast<long long>(ev.keys),
                          ev.bytes / 1024.0);
            }
          }
        }
        std::printf("budget: %s bytes | policy: %s | store: %.1f KiB | "
                    "session evictions: %lld (%.1f KiB)\n",
                    lc->budget_bytes() <= 0
                        ? "unbounded"
                        : std::to_string(
                              static_cast<long long>(lc->budget_bytes()))
                              .c_str(),
                    lc->policy_name(),
                    engine->views().TotalSizeBytes() / 1024.0,
                    static_cast<long long>(lc->evictions()),
                    lc->evicted_bytes() / 1024.0);
        continue;
      }
      if (line == "\\coverage") {
        for (const auto& [key, entry] :
             engine->udf_manager().entries()) {
          std::printf("  %-40s %s\n", key.c_str(),
                      entry.coverage.ToString().c_str());
        }
        continue;
      }
      if (line == "\\threads" || line.rfind("\\threads ", 0) == 0) {
        if (line == "\\threads") {
          std::printf("worker threads: %d\n", engine->num_threads());
        } else {
          int n = std::atoi(line.substr(9).c_str());
          if (n < 1) {
            std::printf("usage: .threads N   (N >= 1)\n");
          } else {
            engine->SetNumThreads(n);
            std::printf("worker threads: %d (simulated times unchanged; "
                        "wall clock only)\n",
                        engine->num_threads());
          }
        }
        continue;
      }
      if (line == "\\faults" || line.rfind("\\faults ", 0) == 0) {
        if (line == "\\faults") {
          const std::string text =
              engine->fault_injector()->schedule_text();
          std::printf("fault schedule: %s\n",
                      text.empty() ? "(off)" : text.c_str());
        } else {
          std::string sched = line.substr(8);
          if (sched == "off") sched.clear();
          Status s = engine->SetFaultSchedule(sched);
          if (!s.ok()) {
            std::printf("%s\n", s.ToString().c_str());
          } else {
            std::printf("fault schedule: %s\n",
                        sched.empty() ? "(off)" : sched.c_str());
          }
        }
        continue;
      }
      if (line == "\\serve" || line.rfind("\\serve ", 0) == 0) {
        if (line == "\\serve stop") {
          if (engine->telemetry_port() < 0) {
            std::printf("telemetry server is not running.\n");
          } else {
            engine->StopTelemetryServer();
            std::printf("telemetry server stopped.\n");
          }
        } else {
          int port = 0;  // bare .serve picks an ephemeral port
          if (line != "\\serve") port = std::atoi(line.substr(7).c_str());
          Status s = engine->StartTelemetryServer(port);
          if (!s.ok()) {
            std::printf("%s\n", s.ToString().c_str());
          } else {
            std::printf("telemetry server on http://127.0.0.1:%d — try "
                        "/metrics /metrics.json /trace /views /sessions "
                        "/profile?seconds=1 /healthz\n",
                        engine->telemetry_port());
          }
        }
        continue;
      }
      if (line == "\\profile" || line.rfind("\\profile ", 0) == 0) {
        obs::Profiler& prof = obs::Profiler::Global();
        if (line.rfind("\\profile start", 0) == 0) {
          int hz = 997;
          if (line.size() > 15) hz = std::atoi(line.substr(15).c_str());
          if (hz < 1) hz = 997;
          prof.Start(hz);
          std::printf("profiler sampling at %d Hz; run queries, then "
                      ".profile stop [FILE]\n",
                      hz);
        } else if (line.rfind("\\profile stop", 0) == 0) {
          prof.Stop();
          const std::string folded = prof.RenderFolded();
          std::string path =
              line.size() > 14 ? line.substr(14) : std::string();
          if (path.empty()) {
            std::printf("%s(%lld samples)\n", folded.c_str(),
                        static_cast<long long>(prof.samples()));
          } else {
            std::ofstream out(path);
            if (!out) {
              std::printf("cannot write %s\n", path.c_str());
            } else {
              out << folded;
              std::printf("wrote %s (%lld samples) — flamegraph.pl %s "
                          "> flame.svg\n",
                          path.c_str(),
                          static_cast<long long>(prof.samples()),
                          path.c_str());
            }
          }
        } else {
          std::printf("profiler: %s (%lld samples)\n",
                      prof.active() ? "sampling" : "stopped",
                      static_cast<long long>(prof.samples()));
        }
        continue;
      }
      if (line == "\\session" || line.rfind("\\session ", 0) == 0) {
        if (line == "\\session") {
          for (const auto& s : svc.Sessions()) {
            service::SessionStats st = s->stats();
            std::printf("%c %3lld  %-16s %-6s %4lld queries | hit %5.1f%% "
                        "| %.2f sim s\n",
                        s->id() == current->id() ? '*' : ' ',
                        static_cast<long long>(s->id()), s->name().c_str(),
                        s->open() ? "open" : "closed",
                        static_cast<long long>(st.queries),
                        st.HitPercentage(), st.sim_ms / 1000.0);
          }
        } else if (line.rfind("\\session new", 0) == 0) {
          std::string name =
              line.size() > 13 ? line.substr(13) : std::string();
          current = svc.CreateSession(name);
          std::printf("session %lld ('%s') created and current.\n",
                      static_cast<long long>(current->id()),
                      current->name().c_str());
        } else if (line.rfind("\\session use ", 0) == 0) {
          int64_t id = std::atoll(line.substr(13).c_str());
          auto found = svc.FindSession(id);
          if (found == nullptr) {
            std::printf("unknown session: %lld\n",
                        static_cast<long long>(id));
          } else {
            current = found;
            std::printf("session %lld ('%s') is current%s.\n",
                        static_cast<long long>(id), found->name().c_str(),
                        found->open() ? "" : " (closed — reads only)");
          }
        } else if (line.rfind("\\session close", 0) == 0) {
          int64_t id = line.size() > 15 ? std::atoll(line.substr(15).c_str())
                                        : current->id();
          Status s = svc.CloseSession(id);
          std::printf("%s\n", s.ok() ? "closed." : s.ToString().c_str());
        } else {
          std::printf("usage: .session [new [NAME] | use ID | close "
                      "[ID]]\n");
        }
        continue;
      }
      if (line.rfind("\\stream ", 0) == 0) {
        std::istringstream is(line.substr(8));
        std::string name;
        long long total = 0, initial = 1;
        if (!(is >> name >> total) || total < 1) {
          std::printf("usage: .stream NAME TOTAL_FRAMES [INITIAL_FRAMES]\n");
          continue;
        }
        is >> initial;
        // Registration touches the catalog the executor reads; drain the
        // queue so it lands at a quiescent point.
        svc.Drain();
        catalog::VideoInfo info;
        info.name = name;
        info.mean_objects_per_frame = 8.3 / 0.8;
        info.seed = 2022;
        ingest::StreamOptions opts;
        opts.total_frames = total;
        opts.initial_frames = initial < 1 ? 1 : initial;
        Status s = engine->RegisterStream(info, opts);
        if (!s.ok()) {
          std::printf("%s\n", s.ToString().c_str());
        } else {
          std::printf("stream '%s': %lld of %lld frames visible; "
                      ".ingest %s N to advance.\n",
                      name.c_str(), static_cast<long long>(opts.initial_frames),
                      total, name.c_str());
        }
        continue;
      }
      if (line.rfind("\\wal ", 0) == 0) {
        svc.Drain();
        Status s = engine->EnableWal(line.substr(5));
        if (!s.ok()) {
          std::printf("%s\n", s.ToString().c_str());
        } else {
          std::printf("WAL enabled — %s\n",
                      engine->last_replay().Summary().c_str());
        }
        continue;
      }
      if (line.rfind("\\ingest ", 0) == 0) {
        std::istringstream is(line.substr(8));
        std::string source;
        long long frames = 0, ticks = 1;
        if (!(is >> source >> frames) || frames < 1) {
          std::printf("usage: .ingest SOURCE FRAMES_PER_TICK [TICKS]\n");
          continue;
        }
        is >> ticks;
        if (ticks < 1) ticks = 1;
        for (long long t = 0; t < ticks; ++t) {
          auto r = svc.Ingest(source, frames);
          if (!r.ok()) {
            std::printf("%s\n", r.status().ToString().c_str());
            break;
          }
          std::printf("  tick %lld: +%lld frames, %lld visible\n", t + 1,
                      static_cast<long long>(r.value().flushed),
                      static_cast<long long>(r.value().visible));
        }
        continue;
      }
      if (line == "\\checkpoint") {
        Status s = svc.Checkpoint();
        std::printf("%s\n", s.ToString().c_str());
        continue;
      }
      if (line == "\\clear") {
        svc.ClearReuseState();
        std::printf("reuse state cleared.\n");
        continue;
      }
      if (line.rfind("\\save ", 0) == 0) {
        Status s = svc.SaveViews(line.substr(6));
        std::printf("%s\n", s.ToString().c_str());
        continue;
      }
      if (line.rfind("\\load ", 0) == 0) {
        Status s = svc.LoadViews(line.substr(6));
        if (s.ok()) {
          std::printf("OK — recovery: %s\n",
                      engine->last_recovery().Summary().c_str());
        } else {
          std::printf("%s\n", s.ToString().c_str());
        }
        continue;
      }
      std::printf("unknown command: %s\n", line.c_str());
      continue;
    }
    buffer += line + "\n";
    if (buffer.find(';') == std::string::npos) continue;  // multi-line
    auto r = svc.Execute(current->id(), buffer);
    buffer.clear();
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      continue;
    }
    PrintResult(r.value());
  }
  std::printf("\nbye.\n");
  return 0;
}
