#include "exec/vector_filter.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace eva::exec {

namespace {

using expr::CompareOp;
using expr::Expr;
using expr::ExprKind;

bool CmpKeep(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

bool IsColumnish(const Expr& e) {
  // After the optimizer's rewrite a UDF call reads the output column named
  // after the UDF, so both kinds compile to a column operand.
  return e.kind() == ExprKind::kColumn || e.kind() == ExprKind::kUdfCall;
}

}  // namespace

int FilterProgram::CompileNode(const Expr& e, const Schema& schema) {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      // EvaluateBool semantics: NULL -> false; non-bool literal in boolean
      // position is a runtime error — keep the scalar path for it.
      Instr ins;
      ins.code = OpCode::kConst;
      if (e.value().is_null()) {
        ins.bval = false;
      } else if (e.value().type() == DataType::kBool) {
        ins.bval = e.value().AsBool();
      } else {
        return -1;
      }
      ins.dst = num_regs_++;
      instrs_.push_back(std::move(ins));
      return instrs_.back().dst;
    }
    case ExprKind::kColumn:
    case ExprKind::kUdfCall: {
      int idx = schema.IndexOf(e.name());
      if (idx < 0) return -1;  // scalar path raises the bind error
      Instr ins;
      ins.code = OpCode::kBoolCol;
      ins.col_a = idx;
      ins.dst = num_regs_++;
      instrs_.push_back(std::move(ins));
      return instrs_.back().dst;
    }
    case ExprKind::kCompare: {
      const Expr& l = *e.children()[0];
      const Expr& r = *e.children()[1];
      Instr ins;
      ins.cmp = e.op();
      if (IsColumnish(l) && r.kind() == ExprKind::kLiteral) {
        ins.code = OpCode::kCmpColLit;
        ins.col_a = schema.IndexOf(l.name());
        ins.lit = r.value();
        if (ins.col_a < 0) return -1;
      } else if (l.kind() == ExprKind::kLiteral && IsColumnish(r)) {
        ins.code = OpCode::kCmpColLit;
        ins.cmp = expr::MirrorOp(e.op());
        ins.col_a = schema.IndexOf(r.name());
        ins.lit = l.value();
        if (ins.col_a < 0) return -1;
      } else if (IsColumnish(l) && IsColumnish(r)) {
        ins.code = OpCode::kCmpColCol;
        ins.col_a = schema.IndexOf(l.name());
        ins.col_b = schema.IndexOf(r.name());
        if (ins.col_a < 0 || ins.col_b < 0) return -1;
      } else {
        return -1;  // nested/odd comparison: scalar path
      }
      ins.dst = num_regs_++;
      instrs_.push_back(std::move(ins));
      return instrs_.back().dst;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      int a = CompileNode(*e.children()[0], schema);
      if (a < 0) return -1;
      int b = CompileNode(*e.children()[1], schema);
      if (b < 0) return -1;
      Instr ins;
      ins.code = e.kind() == ExprKind::kAnd ? OpCode::kAnd : OpCode::kOr;
      ins.src_a = a;
      ins.src_b = b;
      ins.dst = num_regs_++;
      instrs_.push_back(std::move(ins));
      return instrs_.back().dst;
    }
    case ExprKind::kNot: {
      int a = CompileNode(*e.children()[0], schema);
      if (a < 0) return -1;
      Instr ins;
      ins.code = OpCode::kNot;
      ins.src_a = a;
      ins.dst = num_regs_++;
      instrs_.push_back(std::move(ins));
      return instrs_.back().dst;
    }
    default:
      return -1;  // kStar / kCountStar never appear in valid predicates
  }
}

std::optional<FilterProgram> FilterProgram::Compile(const Expr& e,
                                                    const Schema& schema) {
  FilterProgram p;
  int root = p.CompileNode(e, schema);
  if (root < 0) return std::nullopt;
  // The last instruction's register is the root by construction.
  return p;
}

Status FilterProgram::Execute(const Batch& batch,
                              std::vector<uint8_t>* keep) const {
  const size_t n = batch.num_rows();
  keep->assign(n, 0);
  if (n == 0 || instrs_.empty()) return Status::OK();
  // One mask per register, flat buffer.
  std::vector<uint8_t> regs(static_cast<size_t>(num_regs_) * n, 0);
  auto reg = [&](int r) { return regs.data() + static_cast<size_t>(r) * n; };
  const std::vector<Row>& rows = batch.rows();
  for (const Instr& ins : instrs_) {
    uint8_t* dst = reg(ins.dst);
    switch (ins.code) {
      case OpCode::kCmpColLit: {
        if (ins.lit.is_null()) break;  // NULL comparand: all false
        const size_t col = static_cast<size_t>(ins.col_a);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r][col];
          dst[r] = !v.is_null() && CmpKeep(ins.cmp, v.Compare(ins.lit));
        }
        break;
      }
      case OpCode::kCmpColCol: {
        const size_t ca = static_cast<size_t>(ins.col_a);
        const size_t cb = static_cast<size_t>(ins.col_b);
        for (size_t r = 0; r < n; ++r) {
          const Value& a = rows[r][ca];
          const Value& b = rows[r][cb];
          dst[r] = !a.is_null() && !b.is_null() &&
                   CmpKeep(ins.cmp, a.Compare(b));
        }
        break;
      }
      case OpCode::kBoolCol: {
        const size_t col = static_cast<size_t>(ins.col_a);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r][col];
          if (v.is_null()) {
            dst[r] = 0;
          } else if (v.type() == DataType::kBool) {
            dst[r] = v.AsBool();
          } else {
            // The scalar interpreter may or may not hit this cell (AND/OR
            // short-circuit); the caller reruns the batch scalar to find
            // out.
            return Status::InvalidArgument(
                "non-boolean cell in logical position");
          }
        }
        break;
      }
      case OpCode::kConst:
        std::memset(dst, ins.bval ? 1 : 0, n);
        break;
      case OpCode::kAnd: {
        const uint8_t* a = reg(ins.src_a);
        const uint8_t* b = reg(ins.src_b);
        for (size_t r = 0; r < n; ++r) dst[r] = a[r] & b[r];
        break;
      }
      case OpCode::kOr: {
        const uint8_t* a = reg(ins.src_a);
        const uint8_t* b = reg(ins.src_b);
        for (size_t r = 0; r < n; ++r) dst[r] = a[r] | b[r];
        break;
      }
      case OpCode::kNot: {
        const uint8_t* a = reg(ins.src_a);
        for (size_t r = 0; r < n; ++r) dst[r] = a[r] ^ 1;
        break;
      }
    }
  }
  const uint8_t* root = reg(instrs_.back().dst);
  std::memcpy(keep->data(), root, n);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Zone-map satisfiability
// ---------------------------------------------------------------------------

namespace {

constexpr double kDoubleExactLimit = 4503599627370496.0;  // 2^52

int RankOf(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;
    case DataType::kString:
      return 3;
  }
  return 4;
}

// Resolves the zone summary of a referenced column. `synth` is storage for
// the synthesized "id"/"obj" zones (derived from the key arrays).
const storage::ZoneMapEntry* ResolveZone(const std::string& name,
                                         const storage::ColumnarSegment& seg,
                                         const Schema& value_schema,
                                         storage::ZoneMapEntry* synth) {
  int idx = value_schema.IndexOf(name);
  if (idx >= 0 && static_cast<size_t>(idx) < seg.zones.size()) {
    return &seg.zones[static_cast<size_t>(idx)];
  }
  if (seg.num_keys() == 0) return nullptr;
  if (name == "id" || name == "obj") {
    int64_t lo = name == "id" ? seg.frame_min() : seg.obj_min;
    int64_t hi = name == "id" ? seg.frame_max() : seg.obj_max;
    synth->valid = std::llabs(lo) <= static_cast<int64_t>(kDoubleExactLimit) &&
                   std::llabs(hi) <= static_cast<int64_t>(kDoubleExactLimit);
    synth->type = DataType::kInt64;
    synth->has_nulls = false;
    synth->all_null = false;
    synth->num_min = static_cast<double>(lo);
    synth->num_max = static_cast<double>(hi);
    return synth;
  }
  return nullptr;
}

// Can compare(zone-column op lit) be true for some stored row?
ZoneVerdict CompareZone(const storage::ZoneMapEntry& z, CompareOp op,
                        const Value& lit) {
  if (!z.valid) return ZoneVerdict::kMaybe;
  // Every cell NULL, or a NULL comparand: the comparison is false on every
  // row (never an error), so the segment can never satisfy it.
  if (z.all_null || lit.is_null()) return ZoneVerdict::kNever;
  int zr = RankOf(z.type);
  int lr = RankOf(lit.type());
  if (zr != lr) {
    // Cross-type comparisons are a rank constant for every non-null cell.
    int c = zr < lr ? -1 : 1;
    return CmpKeep(op, c) ? ZoneVerdict::kMaybe : ZoneVerdict::kNever;
  }
  if (z.type == DataType::kString) {
    if (z.strings.empty()) return ZoneVerdict::kMaybe;  // defensive
    const std::string& lv = lit.AsString();
    bool sat = true;
    switch (op) {
      case CompareOp::kEq:
        sat = std::binary_search(z.strings.begin(), z.strings.end(), lv);
        break;
      case CompareOp::kNe:
        sat = !(z.strings.size() == 1 && z.strings.front() == lv);
        break;
      case CompareOp::kLt:
        sat = z.strings.front() < lv;
        break;
      case CompareOp::kLe:
        sat = z.strings.front() <= lv;
        break;
      case CompareOp::kGt:
        sat = z.strings.back() > lv;
        break;
      case CompareOp::kGe:
        sat = z.strings.back() >= lv;
        break;
    }
    return sat ? ZoneVerdict::kMaybe : ZoneVerdict::kNever;
  }
  // Numeric / bool ranks: reason over [num_min, num_max]. Bail when the
  // comparand cannot be represented exactly as a double.
  double lv = 0;
  if (lit.type() == DataType::kBool) {
    lv = lit.AsBool() ? 1.0 : 0.0;
  } else if (lit.type() == DataType::kInt64) {
    if (std::llabs(lit.AsInt64()) > static_cast<int64_t>(kDoubleExactLimit)) {
      return ZoneVerdict::kMaybe;
    }
    lv = static_cast<double>(lit.AsInt64());
  } else {
    lv = lit.AsDouble();
    if (std::isnan(lv)) return ZoneVerdict::kMaybe;
  }
  bool sat = true;
  switch (op) {
    case CompareOp::kEq:
      sat = lv >= z.num_min && lv <= z.num_max;
      break;
    case CompareOp::kNe:
      sat = !(z.num_min == z.num_max && z.num_min == lv);
      break;
    case CompareOp::kLt:
      sat = z.num_min < lv;
      break;
    case CompareOp::kLe:
      sat = z.num_min <= lv;
      break;
    case CompareOp::kGt:
      sat = z.num_max > lv;
      break;
    case CompareOp::kGe:
      sat = z.num_max >= lv;
      break;
  }
  return sat ? ZoneVerdict::kMaybe : ZoneVerdict::kNever;
}

}  // namespace

ZoneVerdict ZoneCheck(const Expr& e, const storage::ColumnarSegment& seg,
                      const Schema& value_schema) {
  switch (e.kind()) {
    case ExprKind::kAnd: {
      // False for all rows as soon as either conjunct is.
      if (ZoneCheck(*e.children()[0], seg, value_schema) ==
              ZoneVerdict::kNever ||
          ZoneCheck(*e.children()[1], seg, value_schema) ==
              ZoneVerdict::kNever) {
        return ZoneVerdict::kNever;
      }
      return ZoneVerdict::kMaybe;
    }
    case ExprKind::kOr: {
      if (ZoneCheck(*e.children()[0], seg, value_schema) ==
              ZoneVerdict::kNever &&
          ZoneCheck(*e.children()[1], seg, value_schema) ==
              ZoneVerdict::kNever) {
        return ZoneVerdict::kNever;
      }
      return ZoneVerdict::kMaybe;
    }
    case ExprKind::kNot:
      // NOT(child-false-everywhere) is true everywhere — satisfiable. A
      // sharper answer needs an "always" lattice point; not worth it.
      return ZoneVerdict::kMaybe;
    case ExprKind::kLiteral: {
      const Value& v = e.value();
      if (v.is_null()) return ZoneVerdict::kNever;  // EvaluateBool -> false
      if (v.type() == DataType::kBool) {
        return v.AsBool() ? ZoneVerdict::kMaybe : ZoneVerdict::kNever;
      }
      return ZoneVerdict::kMaybe;  // scalar error: must surface, never skip
    }
    case ExprKind::kColumn:
    case ExprKind::kUdfCall: {
      storage::ZoneMapEntry synth;
      const storage::ZoneMapEntry* z =
          ResolveZone(e.name(), seg, value_schema, &synth);
      if (z == nullptr || !z->valid) return ZoneVerdict::kMaybe;
      if (z->all_null) return ZoneVerdict::kNever;  // EvaluateBool -> false
      if (z->type == DataType::kBool && z->num_max == 0) {
        return ZoneVerdict::kNever;  // every cell is literally false
      }
      // Non-bool cells would be a scalar error; never skip those.
      return ZoneVerdict::kMaybe;
    }
    case ExprKind::kCompare: {
      const Expr& l = *e.children()[0];
      const Expr& r = *e.children()[1];
      storage::ZoneMapEntry synth;
      if (IsColumnish(l) && r.kind() == ExprKind::kLiteral) {
        const storage::ZoneMapEntry* z =
            ResolveZone(l.name(), seg, value_schema, &synth);
        if (z == nullptr) return ZoneVerdict::kMaybe;
        return CompareZone(*z, e.op(), r.value());
      }
      if (l.kind() == ExprKind::kLiteral && IsColumnish(r)) {
        const storage::ZoneMapEntry* z =
            ResolveZone(r.name(), seg, value_schema, &synth);
        if (z == nullptr) return ZoneVerdict::kMaybe;
        return CompareZone(*z, expr::MirrorOp(e.op()), l.value());
      }
      return ZoneVerdict::kMaybe;
    }
    default:
      return ZoneVerdict::kMaybe;
  }
}

}  // namespace eva::exec
