#ifndef EVA_EXEC_EXEC_CONTEXT_H_
#define EVA_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <map>
#include <string>

#include "catalog/catalog.h"
#include "common/sim_clock.h"
#include "obs/metrics.h"
#include "obs/op_stats.h"
#include "runtime/morsel.h"
#include "storage/view_store.h"
#include "udf/udf_runtime.h"
#include "vision/synthetic_video.h"

namespace eva::baselines {
class FunCache;
}  // namespace eva::baselines

namespace eva::obs {
class EventLog;
}  // namespace eva::obs

namespace eva::fault {
class FaultInjector;
}  // namespace eva::fault

namespace eva::runtime {
class ThreadPool;
}  // namespace eva::runtime

namespace eva::plan {
class PlanNode;
}  // namespace eva::plan

namespace eva::exec {

/// Simulated-cost constants (milliseconds). Values are calibrated to the
/// paper's measurements: c_e per UDF comes from Table 3/Table 5 (stored in
/// the catalog), c_r ≈ 1.8–2.2 ms/frame from Table 4, and view-read costs
/// from the Q8 breakdown (10 s of view reads for ≈10^5 materialized rows).
struct CostConstants {
  double video_read_ms_per_frame = 2.0;   // decode + read a frame
  double view_read_ms_per_row = 0.07;     // read one materialized row
  double view_probe_ms_per_key = 0.005;   // hash probe per input tuple
  double materialize_ms_per_row = 0.02;   // append a row to a view
  double apply_overhead_ms_per_row = 0.002;  // conditional-apply bookkeeping
  /// FunCache: per-invocation serialization + xxHash of the UDF's input
  /// arguments (which include the decoded frame), §5.2. The raw xxHash
  /// rate is much higher, but the per-call argument marshalling the
  /// paper's Python engine pays dominates; calibrated so FunCache shows
  /// the paper's slight negative speedup on VBENCH-LOW.
  double funcache_hash_ms_per_mb = 3.0;
  /// Optimizer overhead per symbolic rewrite of one UDF occurrence.
  double optimize_ms_per_udf = 8.0;
};

/// Per-query execution metrics: the raw material for Table 2 (hit
/// percentage), Table 4 and Fig. 6 (time breakdowns).
struct QueryMetrics {
  /// Session the query ran under (src/service/); 0 for the single-session
  /// path where the engine is driven directly. Attribution only — never
  /// affects results or simulated times.
  int64_t session_id = 0;
  /// Tuples for which each UDF's result was required.
  std::map<std::string, int64_t> invocations;
  /// Tuples satisfied from a materialized view / cache.
  std::map<std::string, int64_t> reused;
  int64_t rows_out = 0;
  /// Transient-fault retry attempts (src/fault/); 0 without injection.
  int64_t udf_retries = 0;
  double optimizer_ms = 0;
  /// Symbolic fast-path accounting from this query's optimization:
  /// remainder-cache hits/misses and coverage cells the interval index
  /// pruned. Deterministic given query history; 0 outside EVA reuse.
  int64_t symbolic_cache_hits = 0;
  int64_t symbolic_cache_misses = 0;
  int64_t symbolic_cells_pruned = 0;
  /// Simulated-time breakdown of this query (delta of the engine clock).
  SimClock::Snapshot breakdown;

  double TotalMs() const { return breakdown.Total(); }
  int64_t TotalInvocations() const {
    int64_t n = 0;
    for (const auto& [k, v] : invocations) n += v;
    return n;
  }
  int64_t TotalReused() const {
    int64_t n = 0;
    for (const auto& [k, v] : reused) n += v;
    return n;
  }

  void Accumulate(const QueryMetrics& other);
};

/// Everything an operator needs at runtime. Owned by the engine; operators
/// hold a non-owning pointer.
struct ExecContext {
  SimClock* clock = nullptr;
  storage::ViewStore* views = nullptr;
  const catalog::Catalog* catalog = nullptr;
  udf::UdfRuntime* udfs = nullptr;
  const vision::SyntheticVideo* video = nullptr;
  CostConstants costs;
  QueryMetrics* metrics = nullptr;
  /// Non-null only in FunCache mode: tuple-level result cache (§5.1).
  baselines::FunCache* funcache = nullptr;
  int64_t batch_size = 1024;
  /// Monotone id of the query being executed (lifecycle access stamps and
  /// the `.views` last-access column); -1 outside a query.
  int64_t query_id = -1;
  /// Session the query belongs to (0 = single-session path); stamped onto
  /// event-log records emitted from operator code.
  int64_t session_id = 0;
  /// Compile filter predicates into the vectorized batch evaluator
  /// (src/exec/vector_filter.h); the per-row interpreter stays as the
  /// fallback for unsupported predicate shapes and runtime type errors.
  bool vectorized_filter = true;
  /// Let view-join probes consult per-segment zone maps to skip reading
  /// segments that cannot satisfy the plan's residual predicate. Results
  /// are identical either way; skipping only avoids kReadView charges and
  /// downstream evaluation of rows the residual filter would drop.
  bool zone_map_skipping = true;

  // --- observability (src/obs/) -------------------------------------------
  /// Metrics sink; nullptr when observability is off, which is the single
  /// cheap check all executor instrumentation hides behind.
  obs::MetricsRegistry* obs_registry = nullptr;
  /// Per-plan-node stat collection (EXPLAIN ANALYZE). When non-null, the
  /// operator builder wraps every operator in a stats decorator.
  std::map<const plan::PlanNode*, obs::OperatorStats>* node_stats = nullptr;
  /// Stats cell of the operator currently inside Next(); maintained by the
  /// decorator so leaf helpers (UDF runners, view probes) attribute their
  /// counters to the right node.
  obs::OperatorStats* active_stats = nullptr;
  /// Structured event sink (udf_retry records); nullptr when observability
  /// is off or no event-log path is configured. EventLog::Append is
  /// thread-safe, so morsel-local context clones share the pointer.
  obs::EventLog* event_log = nullptr;

  // --- parallel runtime (src/runtime/) ------------------------------------
  /// Work-stealing pool; nullptr (or num_threads == 1) keeps the exact
  /// serial execution path.
  runtime::ThreadPool* pool = nullptr;
  /// Rows per morsel when an APPLY input batch is split across workers.
  /// Independent of the thread count, so results and simulated times are
  /// reproducible at any parallelism (docs/RUNTIME.md).
  int64_t morsel_rows = 128;
  /// Emulated per-invocation model compute (host microseconds, busy-wait).
  /// 0 in production simulation; set by wall-clock scaling benchmarks.
  double udf_spin_us = 0;
  /// Non-null only on morsel-local context clones: simulated-cost charges
  /// are recorded here and replayed onto the shared clock in deterministic
  /// morsel order by the driver thread.
  runtime::ChargeLog* charge_log = nullptr;

  // --- fault injection (src/fault/, docs/RELIABILITY.md) ------------------
  /// Non-null only when a fault schedule is active. UDF runners consult it
  /// at "udf:<name>:<frame>:<obj>" before every fresh model evaluation;
  /// occurrence counters are keyed by the full point name, so decisions are
  /// identical at any worker-thread count.
  fault::FaultInjector* faults = nullptr;
  /// Bounded retry for transient (kError) UDF faults: attempts beyond the
  /// first, before the evaluation degrades to a ResourceExhausted error.
  int udf_max_retries = 3;
  /// Simulated backoff charged per retry attempt (ms; doubles each retry).
  double udf_retry_backoff_ms = 1.0;

  void Charge(CostCategory cat, double ms) const {
    if (charge_log != nullptr) {
      charge_log->Charge(cat, ms);
    } else {
      clock->Charge(cat, ms);
    }
  }
};

/// Column names shared between operators and the optimizer.
inline constexpr const char* kColId = "id";
inline constexpr const char* kColObj = "obj";
inline constexpr const char* kColLabel = "label";
inline constexpr const char* kColArea = "area";
inline constexpr const char* kColScore = "score";

/// Output columns a detector UDF appends to a frame row.
Schema DetectorOutputSchema();
/// Output column a classifier/filter UDF appends (named after the UDF).
Schema UdfOutputSchema(const catalog::UdfDef& def);

}  // namespace eva::exec

#endif  // EVA_EXEC_EXEC_CONTEXT_H_
