#ifndef EVA_EXEC_OPERATORS_H_
#define EVA_EXEC_OPERATORS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "expr/expr.h"
#include "plan/plan.h"

namespace eva::exec {

/// Pull-based batch operator. Next() returns an empty batch at end of
/// stream; operators never emit empty intermediate batches.
class Operator {
 public:
  Operator(ExecContext* ctx, Schema output_schema)
      : ctx_(ctx), output_schema_(std::move(output_schema)) {}
  virtual ~Operator() = default;

  virtual Result<Batch> Next() = 0;
  const Schema& output_schema() const { return output_schema_; }

 protected:
  ExecContext* ctx_;
  Schema output_schema_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Factory: instantiates the operator tree for a physical plan.
Result<OperatorPtr> BuildOperator(const plan::PlanNodePtr& node,
                                  ExecContext* ctx);

/// Convenience driver: builds the operator tree and drains it into a
/// single result batch, updating ctx->metrics->rows_out.
Result<Batch> ExecutePlan(const plan::PlanNodePtr& plan, ExecContext* ctx);

}  // namespace eva::exec

#endif  // EVA_EXEC_OPERATORS_H_
