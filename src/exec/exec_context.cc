#include "exec/exec_context.h"

namespace eva::exec {

void QueryMetrics::Accumulate(const QueryMetrics& other) {
  for (const auto& [k, v] : other.invocations) invocations[k] += v;
  for (const auto& [k, v] : other.reused) reused[k] += v;
  rows_out += other.rows_out;
  udf_retries += other.udf_retries;
  optimizer_ms += other.optimizer_ms;
  symbolic_cache_hits += other.symbolic_cache_hits;
  symbolic_cache_misses += other.symbolic_cache_misses;
  symbolic_cells_pruned += other.symbolic_cells_pruned;
  for (size_t i = 0; i < breakdown.ms.size(); ++i) {
    breakdown.ms[i] += other.breakdown.ms[i];
  }
}

Schema DetectorOutputSchema() {
  return Schema({{kColObj, DataType::kInt64},
                 {kColLabel, DataType::kString},
                 {kColArea, DataType::kDouble},
                 {kColScore, DataType::kDouble}});
}

Schema UdfOutputSchema(const catalog::UdfDef& def) {
  if (def.kind == catalog::UdfKind::kDetector) return DetectorOutputSchema();
  if (def.kind == catalog::UdfKind::kFilter) {
    return Schema({{def.name, DataType::kBool}});
  }
  return Schema({{def.name, DataType::kString}});
}

}  // namespace eva::exec
