#include "exec/operators.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "baselines/fun_cache.h"
#include "exec/vector_filter.h"
#include "fault/fault_injector.h"
#include "obs/event_log.h"
#include "obs/profiler.h"
#include "runtime/morsel.h"
#include "runtime/thread_pool.h"
#include "storage/view_store.h"

namespace eva::exec {

namespace {

using catalog::UdfDef;
using catalog::UdfKind;
using plan::PlanKind;
using storage::MaterializedView;
using storage::ViewKey;

// ---------------------------------------------------------------------------
// Observability plumbing. Registry cells are resolved once per operator
// instance (label rendering + map lookup happen at build time); the hot
// path pays one null check per event. All of this is inert when
// ctx->obs_registry is null.
// ---------------------------------------------------------------------------

// Cached per-UDF counters shared by Apply / CondApply / ViewJoin.
struct UdfObsCounters {
  obs::Counter* invocations = nullptr;  // fresh model evaluations
  obs::Counter* reused = nullptr;       // tuples answered from a view/cache
  obs::Counter* retries = nullptr;      // transient-fault retry attempts
};

UdfObsCounters MakeUdfCounters(ExecContext* ctx, const std::string& udf) {
  UdfObsCounters c;
  if (ctx->obs_registry == nullptr) return c;
  c.invocations = ctx->obs_registry->GetCounter(
      "eva_udf_invocations_total", "Fresh UDF model evaluations",
      {{"udf", udf}});
  c.reused = ctx->obs_registry->GetCounter(
      "eva_udf_reused_total",
      "UDF results satisfied from a materialized view or cache",
      {{"udf", udf}});
  c.retries = ctx->obs_registry->GetCounter(
      "eva_udf_retries_total",
      "UDF evaluation retries after injected transient faults",
      {{"udf", udf}});
  return c;
}

void CountInvocation(ExecContext* ctx, const UdfObsCounters& counters) {
  if (ctx->active_stats != nullptr) ++ctx->active_stats->udf_invocations;
  if (counters.invocations != nullptr) counters.invocations->Increment();
}

void CountReuse(ExecContext* ctx, const UdfObsCounters& counters,
                int64_t rows = 1) {
  if (ctx->active_stats != nullptr) ctx->active_stats->rows_reused += rows;
  if (counters.reused != nullptr) counters.reused->Increment();
}

// ---------------------------------------------------------------------------
// VideoScan
// ---------------------------------------------------------------------------

class VideoScanOp : public Operator {
 public:
  VideoScanOp(ExecContext* ctx, int64_t lo, int64_t hi)
      : Operator(ctx, Schema({{kColId, DataType::kInt64}})),
        next_(std::max<int64_t>(lo, 0)),
        hi_(std::min(hi, ctx->video->num_frames())) {
    if (ctx->obs_registry != nullptr) {
      frames_scanned_ = ctx->obs_registry->GetCounter(
          "eva_frames_scanned_total", "Video frames decoded by scans",
          {{"video", ctx->video->info().name}});
    }
  }

  Result<Batch> Next() override {
    Batch out(output_schema_);
    if (next_ >= hi_) return out;
    int64_t end = std::min(hi_, next_ + ctx_->batch_size);
    for (int64_t f = next_; f < end; ++f) {
      out.AddRow({Value(f)});
    }
    ctx_->Charge(CostCategory::kReadVideo,
                 ctx_->costs.video_read_ms_per_frame *
                     static_cast<double>(end - next_));
    if (frames_scanned_ != nullptr) {
      frames_scanned_->Increment(static_cast<double>(end - next_));
    }
    next_ = end;
    return out;
  }

 private:
  int64_t next_;
  int64_t hi_;
  obs::Counter* frames_scanned_ = nullptr;
};

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

class FilterOp : public Operator {
 public:
  FilterOp(ExecContext* ctx, OperatorPtr child, expr::ExprPtr predicate)
      : Operator(ctx, child->output_schema()),
        child_(std::move(child)),
        predicate_(std::move(predicate)) {
    // Compiled once per query; nullopt keeps the per-row interpreter for
    // predicate shapes the register program does not cover.
    if (ctx->vectorized_filter) {
      program_ = FilterProgram::Compile(*predicate_, output_schema_);
    }
    if (ctx->obs_registry != nullptr) {
      rows_vectorized_ = ctx->obs_registry->GetCounter(
          "eva_rows_filtered_vectorized_total",
          "Rows whose filter verdict came from the vectorized batch "
          "evaluator");
      fill_ratio_ = ctx->obs_registry->GetHistogram(
          "eva_filter_batch_fill_ratio",
          "Input batch occupancy (rows / batch_size) at filter operators",
          {0.1, 0.25, 0.5, 0.75, 0.9, 1.0});
    }
  }

  Result<Batch> Next() override {
    while (true) {
      EVA_ASSIGN_OR_RETURN(Batch in, child_->Next());
      if (in.empty()) return Batch(output_schema_);
      if (fill_ratio_ != nullptr && ctx_->batch_size > 0) {
        fill_ratio_->Observe(static_cast<double>(in.num_rows()) /
                             static_cast<double>(ctx_->batch_size));
      }
      Batch out(output_schema_);
      bool vectorized = false;
      if (program_.has_value() &&
          program_->Execute(in, &keep_).ok()) {
        // A runtime type error falls through to the interpreter below,
        // which reproduces the exact short-circuit behavior and error.
        vectorized = true;
        for (size_t r = 0; r < in.num_rows(); ++r) {
          if (keep_[r] != 0) out.AddRow(std::move(in.mutable_rows()[r]));
        }
        int64_t n = static_cast<int64_t>(in.num_rows());
        if (ctx_->active_stats != nullptr) {
          ctx_->active_stats->rows_filtered_vectorized += n;
        }
        if (rows_vectorized_ != nullptr) {
          rows_vectorized_->Increment(static_cast<double>(n));
        }
      }
      if (!vectorized) {
        for (const Row& row : in.rows()) {
          EVA_ASSIGN_OR_RETURN(
              bool keep, expr::EvaluateBool(*predicate_, in.schema(), row));
          if (keep) out.AddRow(row);
        }
      }
      if (!out.empty()) return out;
    }
  }

 private:
  OperatorPtr child_;
  expr::ExprPtr predicate_;
  std::optional<FilterProgram> program_;
  std::vector<uint8_t> keep_;
  obs::Counter* rows_vectorized_ = nullptr;
  obs::Histogram* fill_ratio_ = nullptr;
};

// ---------------------------------------------------------------------------
// UDF evaluation helpers shared by Apply / CondApply. Callable from runtime
// worker threads: everything they touch is either immutable (models, video),
// internally synchronized (UdfRuntime, obs counters), or morsel-local
// (charge log, metrics, active stats) — see docs/RUNTIME.md.
// ---------------------------------------------------------------------------

// Consults the fault injector before a fresh model evaluation. A transient
// (kError) fault is retried up to ctx->udf_max_retries times, charging an
// exponentially growing simulated backoff per attempt — via ctx->Charge, so
// the charge lands in the morsel-local log and replays deterministically.
// A permanent (kFail/kCrash) fault, or retry exhaustion, surfaces as a
// Status error that aborts the query; coverage already claimed for it is
// rolled back by the engine (graceful degradation: rerun recomputes).
Status MaybeInjectUdfFault(ExecContext* ctx, const UdfDef& def,
                           int64_t frame, int64_t obj,
                           const UdfObsCounters& obs) {
  if (ctx->faults == nullptr) return Status::OK();
  const std::string point = "udf:" + def.name + ":" + std::to_string(frame) +
                            ":" + std::to_string(obj);
  double backoff_ms = ctx->udf_retry_backoff_ms;
  for (int attempt = 0;; ++attempt) {
    switch (ctx->faults->At(point)) {
      case fault::FaultAction::kNone:
        return Status::OK();
      case fault::FaultAction::kError:
      case fault::FaultAction::kShortWrite:
        if (attempt >= ctx->udf_max_retries) {
          return Status::ResourceExhausted(
              "transient UDF fault persisted after " +
              std::to_string(ctx->udf_max_retries) + " retries at " + point);
        }
        if (ctx->metrics != nullptr) ++ctx->metrics->udf_retries;
        if (ctx->active_stats != nullptr) ++ctx->active_stats->udf_retries;
        if (obs.retries != nullptr) obs.retries->Increment();
        if (ctx->event_log != nullptr) {
          ctx->event_log->Append(obs::Event("udf_retry")
                                     .Int("query_id", ctx->query_id)
                                     .Int("session_id", ctx->session_id)
                                     .Str("udf", def.name)
                                     .Int("frame", frame)
                                     .Int("attempt", attempt + 1)
                                     .Num("backoff_sim_ms", backoff_ms));
        }
        ctx->Charge(CostCategory::kUdf, backoff_ms);
        backoff_ms *= 2;
        break;
      default:  // kFail / kCrash: permanent
        return Status::Internal("injected UDF fault at " + point);
    }
  }
}

// Evaluates the detector on one frame, returning output-column rows
// (obj, label, area, score). Charges UDF cost and counts the invocation.
Result<std::vector<Row>> RunDetector(ExecContext* ctx, const UdfDef& def,
                                     int64_t frame,
                                     const UdfObsCounters& obs) {
  obs::ProfScope prof("udf");
  EVA_ASSIGN_OR_RETURN(const vision::DetectorModel* model,
                       ctx->udfs->Detector(def.name));
  EVA_RETURN_IF_ERROR(MaybeInjectUdfFault(ctx, def, frame, -1, obs));
  ctx->Charge(CostCategory::kUdf, def.cost_ms);
  runtime::SpinFor(ctx->udf_spin_us);
  ctx->metrics->invocations[def.name] += 1;
  CountInvocation(ctx, obs);
  std::vector<Row> rows;
  for (const vision::Detection& d : model->Detect(*ctx->video, frame)) {
    rows.push_back({Value(static_cast<int64_t>(d.obj_id)), Value(d.label),
                    Value(d.area), Value(d.score)});
  }
  return rows;
}

Result<Value> RunClassifier(ExecContext* ctx, const UdfDef& def,
                            int64_t frame, int64_t obj,
                            const UdfObsCounters& obs) {
  obs::ProfScope prof("udf");
  EVA_ASSIGN_OR_RETURN(const vision::ClassifierModel* model,
                       ctx->udfs->Classifier(def.name));
  EVA_RETURN_IF_ERROR(MaybeInjectUdfFault(ctx, def, frame, obj, obs));
  ctx->Charge(CostCategory::kUdf, def.cost_ms);
  runtime::SpinFor(ctx->udf_spin_us);
  ctx->metrics->invocations[def.name] += 1;
  CountInvocation(ctx, obs);
  return Value(model->Classify(*ctx->video, frame, static_cast<int>(obj)));
}

Result<Value> RunFilterUdf(ExecContext* ctx, const UdfDef& def,
                           int64_t frame, const UdfObsCounters& obs) {
  obs::ProfScope prof("udf");
  EVA_ASSIGN_OR_RETURN(const vision::FilterModel* model,
                       ctx->udfs->Filter(def.name));
  EVA_RETURN_IF_ERROR(MaybeInjectUdfFault(ctx, def, frame, -1, obs));
  ctx->Charge(CostCategory::kUdf, def.cost_ms);
  runtime::SpinFor(ctx->udf_spin_us);
  ctx->metrics->invocations[def.name] += 1;
  CountInvocation(ctx, obs);
  return Value(model->Pass(*ctx->video, frame));
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel row evaluation.
//
// EvalRows is the single driver under Apply and CondApply: it evaluates
// `row_fn` once per input row, either serially (no pool, FunCache mode, or
// single-row batches) or split into fixed-size morsels on the work-stealing
// pool. Each morsel runs with a context clone whose accounting is private
// (charge log, metrics, operator stats); the driver thread then merges the
// morsels back IN MORSEL ORDER — output rows concatenate, metric counters
// add exactly, and the charge logs replay onto the shared SimClock as the
// very sequence of Charge calls a serial run would have made. That replay
// is what keeps simulated times bit-identical at every thread count.
//
// FunCache mode stays serial: its per-tuple cache makes row evaluation
// order-dependent (a row can hit an entry the previous row inserted), which
// has no deterministic parallel decomposition. EVA/HashStash reuse goes
// through ViewJoin/Store on the driver thread and is unaffected.
//
// Error semantics: a failing row aborts its own morsel; merging stops at
// the first failed morsel (in morsel order) after replaying the charges of
// the preceding complete morsels. Serial execution stops mid-batch instead,
// so clock state after an *error* may differ from serial — row_fn errors
// are catalog-lookup failures that plan building already rules out.
// ---------------------------------------------------------------------------

using RowFn = std::function<Status(ExecContext*, const Row&, Batch*)>;

Result<Batch> EvalRows(ExecContext* ctx, const Batch& in,
                       const Schema& out_schema, const RowFn& row_fn) {
  const int64_t n = static_cast<int64_t>(in.num_rows());
  const bool parallel =
      ctx->pool != nullptr && ctx->funcache == nullptr && n > 1;
  if (!parallel) {
    Batch out(out_schema);
    for (const Row& row : in.rows()) {
      EVA_RETURN_IF_ERROR(row_fn(ctx, row, &out));
    }
    return out;
  }
  // Morsel split depends only on (n, morsel_rows), never the worker count:
  // identical partitioning is the first half of reproducibility.
  std::vector<runtime::Morsel> morsels =
      runtime::SplitMorsels(n, ctx->morsel_rows);
  struct MorselOut {
    Batch rows;
    runtime::ChargeLog log;
    QueryMetrics metrics;
    obs::OperatorStats stats;
    Status status;
  };
  std::vector<MorselOut> outs(morsels.size());
  for (MorselOut& o : outs) o.rows = Batch(out_schema);
  ctx->pool->ParallelFor(
      static_cast<int64_t>(morsels.size()), [&](int64_t m) {
        MorselOut& o = outs[static_cast<size_t>(m)];
        ExecContext local = *ctx;
        local.charge_log = &o.log;
        local.metrics = &o.metrics;
        local.active_stats = ctx->active_stats != nullptr ? &o.stats : nullptr;
        const std::vector<Row>& rows = in.rows();
        for (int64_t r = morsels[static_cast<size_t>(m)].begin;
             r < morsels[static_cast<size_t>(m)].end; ++r) {
          Status s = row_fn(&local, rows[static_cast<size_t>(r)], &o.rows);
          if (!s.ok()) {
            o.status = std::move(s);
            return;
          }
        }
      });
  Batch out(out_schema);
  for (MorselOut& o : outs) {
    EVA_RETURN_IF_ERROR(o.status);
    o.log.ReplayInto(ctx->clock);
    ctx->metrics->Accumulate(o.metrics);
    if (ctx->active_stats != nullptr) ctx->active_stats->Add(o.stats);
    for (Row& row : o.rows.mutable_rows()) out.AddRow(std::move(row));
  }
  return out;
}

// FunCache hashing overhead: the cache key covers the UDF's input
// arguments, dominated by the decoded frame bytes (§5.2).
void ChargeFunCacheHash(ExecContext* ctx) {
  double mb = ctx->video->info().BytesPerFrame() / 1e6;
  ctx->Charge(CostCategory::kHashing,
              ctx->costs.funcache_hash_ms_per_mb * mb);
}

// ---------------------------------------------------------------------------
// Apply: evaluate the UDF for every input row (Fig. 3 rewrite). In FunCache
// mode, consults the tuple-level cache first.
// ---------------------------------------------------------------------------

class ApplyOp : public Operator {
 public:
  static Result<OperatorPtr> Make(ExecContext* ctx, OperatorPtr child,
                                  const std::string& udf,
                                  bool emit_presence_placeholders) {
    EVA_ASSIGN_OR_RETURN(UdfDef def, ctx->catalog->GetUdf(udf));
    EVA_ASSIGN_OR_RETURN(
        Schema schema,
        child->output_schema().Extend(UdfOutputSchema(def).fields()));
    return OperatorPtr(new ApplyOp(ctx, std::move(child), std::move(def),
                                   std::move(schema),
                                   emit_presence_placeholders));
  }

  Result<Batch> Next() override {
    EVA_ASSIGN_OR_RETURN(Batch in, child_->Next());
    if (in.empty()) return Batch(output_schema_);
    int id_idx = in.schema().IndexOf(kColId);
    int obj_idx = in.schema().IndexOf(kColObj);
    auto row_fn = [this, id_idx, obj_idx](ExecContext* ctx, const Row& row,
                                          Batch* out) -> Status {
      int64_t frame = row[static_cast<size_t>(id_idx)].AsInt64();
      if (def_.kind == UdfKind::kDetector) {
        EVA_ASSIGN_OR_RETURN(std::vector<Row> dets,
                             DetectorResults(ctx, frame));
        if (dets.empty() && emit_presence_placeholders_) {
          // NULL placeholder so the STORE above records presence even for
          // frames where nothing was detected.
          Row full = row;
          for (size_t i = 0; i < UdfOutputSchema(def_).num_fields(); ++i) {
            full.push_back(Value::Null());
          }
          out->AddRow(std::move(full));
          return Status();
        }
        for (Row& d : dets) {
          Row full = row;
          for (Value& v : d) full.push_back(std::move(v));
          out->AddRow(std::move(full));
        }
      } else if (def_.kind == UdfKind::kClassifier) {
        const Value& obj_v = row[static_cast<size_t>(obj_idx)];
        Row full = row;
        if (obj_v.is_null()) {
          full.push_back(Value::Null());
        } else {
          EVA_ASSIGN_OR_RETURN(Value v,
                               ClassifierResult(ctx, frame, obj_v.AsInt64()));
          full.push_back(std::move(v));
        }
        out->AddRow(std::move(full));
      } else {  // filter UDF
        EVA_ASSIGN_OR_RETURN(Value v, FilterResult(ctx, frame));
        Row full = row;
        full.push_back(std::move(v));
        out->AddRow(std::move(full));
      }
      return Status();
    };
    return EvalRows(ctx_, in, output_schema_, row_fn);
  }

 private:
  ApplyOp(ExecContext* ctx, OperatorPtr child, UdfDef def, Schema schema,
          bool emit_presence_placeholders)
      : Operator(ctx, std::move(schema)),
        child_(std::move(child)),
        def_(std::move(def)),
        emit_presence_placeholders_(emit_presence_placeholders),
        obs_(MakeUdfCounters(ctx, def_.name)) {}

  // The helpers below receive the morsel-local context (`ctx`, not `ctx_`)
  // so worker-thread accounting lands in the morsel's private charge log.
  // The FunCache branches only ever see ctx == ctx_: EvalRows keeps
  // FunCache mode serial because the cache is order-dependent.
  Result<std::vector<Row>> DetectorResults(ExecContext* ctx, int64_t frame) {
    if (ctx->funcache != nullptr) {
      ChargeFunCacheHash(ctx);
      ViewKey key{frame, -1};
      if (const std::vector<Row>* hit =
              ctx->funcache->Lookup(def_.name, key)) {
        ctx->metrics->invocations[def_.name] += 1;
        ctx->metrics->reused[def_.name] += 1;
        CountReuse(ctx, obs_);
        return *hit;
      }
      EVA_ASSIGN_OR_RETURN(std::vector<Row> rows,
                           RunDetector(ctx, def_, frame, obs_));
      ctx->funcache->Insert(def_.name, key, rows);
      return rows;
    }
    return RunDetector(ctx, def_, frame, obs_);
  }

  Result<Value> ClassifierResult(ExecContext* ctx, int64_t frame,
                                 int64_t obj) {
    if (ctx->funcache != nullptr) {
      ChargeFunCacheHash(ctx);
      ViewKey key{frame, obj};
      if (const std::vector<Row>* hit =
              ctx->funcache->Lookup(def_.name, key)) {
        ctx->metrics->invocations[def_.name] += 1;
        ctx->metrics->reused[def_.name] += 1;
        CountReuse(ctx, obs_);
        return (*hit)[0][0];
      }
      EVA_ASSIGN_OR_RETURN(Value v,
                           RunClassifier(ctx, def_, frame, obj, obs_));
      ctx->funcache->Insert(def_.name, key, {{v}});
      return v;
    }
    return RunClassifier(ctx, def_, frame, obj, obs_);
  }

  Result<Value> FilterResult(ExecContext* ctx, int64_t frame) {
    if (ctx->funcache != nullptr) {
      ChargeFunCacheHash(ctx);
      ViewKey key{frame, -1};
      if (const std::vector<Row>* hit =
              ctx->funcache->Lookup(def_.name, key)) {
        ctx->metrics->invocations[def_.name] += 1;
        ctx->metrics->reused[def_.name] += 1;
        CountReuse(ctx, obs_);
        return (*hit)[0][0];
      }
      EVA_ASSIGN_OR_RETURN(Value v, RunFilterUdf(ctx, def_, frame, obs_));
      ctx->funcache->Insert(def_.name, key, {{v}});
      return v;
    }
    return RunFilterUdf(ctx, def_, frame, obs_);
  }

  OperatorPtr child_;
  UdfDef def_;
  bool emit_presence_placeholders_;
  UdfObsCounters obs_;
};

// ---------------------------------------------------------------------------
// ViewJoin: LEFT OUTER JOIN with the materialized view (Fig. 4 step 1).
// Rows found in the view get outputs populated (and count as reused
// invocations); missing rows get NULL outputs for CondApply to fill.
//
// Probing is batched: a pre-pass classifies each input row (pass-through /
// NULL-out / probe) and collects the probe keys, then one ProbeBatch call
// answers every probe under a single view-lock acquisition from the
// columnar segment projections. When the plan attached a residual
// predicate and zone-map skipping is on, segments whose zone maps prove
// the residual unsatisfiable are skipped: their hits keep identical
// metrics, access stamps, and probe charges, but the kReadView charge and
// the output rows are dropped — the residual FilterNode above would
// discard those rows anyway (and STORE skips keys already present), so
// query results are unchanged at any thread count.
// ---------------------------------------------------------------------------

class ViewJoinOp : public Operator {
 public:
  static Result<OperatorPtr> Make(ExecContext* ctx, OperatorPtr child,
                                  const std::string& udf,
                                  const std::string& view_name,
                                  bool scan_all_for_dedup,
                                  expr::ExprPtr residual) {
    EVA_ASSIGN_OR_RETURN(UdfDef def, ctx->catalog->GetUdf(udf));
    Schema out = child->output_schema();
    Schema udf_out = UdfOutputSchema(def);
    // Extend only with columns not already present (multi-view chains for
    // one logical UDF share output columns).
    for (const Field& f : udf_out.fields()) {
      if (!out.Contains(f.name)) out.AddField(f);
    }
    return OperatorPtr(new ViewJoinOp(ctx, std::move(child), std::move(def),
                                      view_name, scan_all_for_dedup,
                                      std::move(residual), std::move(out)));
  }

  Result<Batch> Next() override {
    if (scan_all_pending_) {
      // HashStash: dedup the union of all matched operator outputs — a
      // full read of the recycled materialization (§5.1 baseline).
      scan_all_pending_ = false;
      const MaterializedView* view = ctx_->views->Find(view_name_);
      if (view != nullptr) {
        ctx_->Charge(CostCategory::kReadView,
                     ctx_->costs.view_read_ms_per_row *
                         static_cast<double>(view->num_rows()));
      }
    }
    EVA_ASSIGN_OR_RETURN(Batch in, child_->Next());
    Batch out(output_schema_);
    if (in.empty()) return out;
    MaterializedView* view = ctx_->views->Find(view_name_);
    int id_idx = in.schema().IndexOf(kColId);
    int obj_idx = in.schema().IndexOf(kColObj);
    size_t n_outputs = UdfOutputSchema(def_).num_fields();
    bool outputs_present =
        in.schema().Contains(def_.kind == UdfKind::kDetector
                                 ? kColObj
                                 : def_.name);
    int already_idx = in.schema().IndexOf(def_.name);

    // Pre-pass: classify rows and collect probe keys. Within one batch no
    // Put can land on this view (STORE sits above and runs only after the
    // batch is emitted), so a batch-start probe equals per-row probes.
    enum RowAction : uint8_t { kPass = 0, kNullOut, kProbe };
    actions_.clear();
    probe_keys_.clear();
    for (const Row& row : in.rows()) {
      int64_t frame = row[static_cast<size_t>(id_idx)].AsInt64();
      if (def_.kind == UdfKind::kDetector) {
        // A row that already has a non-null obj was populated by an
        // earlier view in the chain; pass it through.
        if (outputs_present && obj_idx >= 0 &&
            !row[static_cast<size_t>(obj_idx)].is_null()) {
          actions_.push_back(kPass);
          continue;
        }
        actions_.push_back(kProbe);
        probe_keys_.push_back(ViewKey{frame, -1});
      } else {
        bool already =
            already_idx >= 0 &&
            !row[static_cast<size_t>(already_idx)].is_null();
        if (already) {
          actions_.push_back(kPass);
          continue;
        }
        const Value& obj_v = obj_idx >= 0
                                 ? row[static_cast<size_t>(obj_idx)]
                                 : Value::Null();
        if (def_.kind == UdfKind::kClassifier && obj_v.is_null()) {
          actions_.push_back(kNullOut);
          continue;
        }
        actions_.push_back(kProbe);
        probe_keys_.push_back(
            ViewKey{frame, def_.kind == UdfKind::kClassifier
                               ? obj_v.AsInt64()
                               : -1});
      }
    }
    probe_res_.Clear();
    if (view != nullptr && !probe_keys_.empty()) {
      storage::ZoneCheckFn zone_fn;
      if (ctx_->zone_map_skipping && residual_ != nullptr) {
        zone_fn = [this](const storage::ColumnarSegment& seg) {
          return ZoneCanMatch(*residual_, seg, value_schema_);
        };
      }
      view->ProbeBatch(probe_keys_, zone_fn, &probe_res_);
    }

    size_t oi = 0;  // cursor into probe_res_.outcomes, in probe order
    for (size_t r = 0; r < in.num_rows(); ++r) {
      const Row& row = in.rows()[r];
      int64_t frame = row[static_cast<size_t>(id_idx)].AsInt64();
      if (def_.kind == UdfKind::kDetector) {
        if (actions_[r] == kPass) {
          out.AddRow(row);
          continue;
        }
        ctx_->Charge(CostCategory::kOther,
                     ctx_->costs.view_probe_ms_per_key);
        const storage::ProbeOutcome* oc =
            view != nullptr ? &probe_res_.outcomes[oi++] : nullptr;
        if (oc != nullptr && oc->status != storage::ProbeStatus::kMiss) {
          ctx_->metrics->invocations[def_.name] += 1;
          ctx_->metrics->reused[def_.name] += 1;
          CountProbe(true);
          view->RecordAccess(frame, ctx_->views->NextAccessTick(),
                             ctx_->query_id);
          if (oc->status == storage::ProbeStatus::kHit) {
            ctx_->Charge(CostCategory::kReadView,
                         ctx_->costs.view_read_ms_per_row *
                             static_cast<double>(oc->rows_count));
            // Cells come straight out of the pinned columnar snapshot —
            // one materialization, directly into the output row.
            for (int32_t i = 0; i < oc->rows_count; ++i) {
              const storage::ColumnarSegment& seg = probe_res_.segment(*oc);
              Row full = TrimmedBase(row);
              size_t vr = static_cast<size_t>(oc->rows_begin + i);
              for (const storage::ColumnVec& cv : seg.cols) {
                full.push_back(cv.At(vr));
              }
              out.AddRow(std::move(full));
            }
          }
          // kHitSkipped: the zone map proved the residual filter above
          // discards every stored row — skip the read, emit nothing.
        } else {
          CountProbe(false);
          Row full = TrimmedBase(row);
          for (size_t i = 0; i < n_outputs; ++i) {
            full.push_back(Value::Null());
          }
          out.AddRow(std::move(full));
        }
      } else {
        // Classifier / filter UDF: single output column.
        int out_idx = output_schema_.IndexOf(def_.name);
        Row full = row;
        full.resize(output_schema_.num_fields());
        if (actions_[r] == kPass) {
          out.AddRow(std::move(full));
          continue;
        }
        if (actions_[r] == kNullOut) {
          full[static_cast<size_t>(out_idx)] = Value::Null();
          out.AddRow(std::move(full));
          continue;
        }
        ctx_->Charge(CostCategory::kOther,
                     ctx_->costs.view_probe_ms_per_key);
        const storage::ProbeOutcome* oc =
            view != nullptr ? &probe_res_.outcomes[oi++] : nullptr;
        if (oc != nullptr && oc->status != storage::ProbeStatus::kMiss) {
          ctx_->metrics->invocations[def_.name] += 1;
          ctx_->metrics->reused[def_.name] += 1;
          CountProbe(true);
          view->RecordAccess(frame, ctx_->views->NextAccessTick(),
                             ctx_->query_id);
          if (oc->status == storage::ProbeStatus::kHit) {
            ctx_->Charge(CostCategory::kReadView,
                         ctx_->costs.view_read_ms_per_row);
            full[static_cast<size_t>(out_idx)] =
                oc->rows_count == 0
                    ? Value::Null()
                    : probe_res_.segment(*oc).cols[0].At(
                          static_cast<size_t>(oc->rows_begin));
            out.AddRow(std::move(full));
          }
          // kHitSkipped: drop the row — STORE finds its key present (no
          // Put) and the residual filter above would discard it.
        } else {
          CountProbe(false);
          full[static_cast<size_t>(out_idx)] = Value::Null();
          out.AddRow(std::move(full));
        }
      }
    }
    if (probe_res_.segments_skipped > 0) {
      if (ctx_->active_stats != nullptr) {
        ctx_->active_stats->segments_skipped += probe_res_.segments_skipped;
      }
      if (segments_skipped_ != nullptr) {
        segments_skipped_->Increment(
            static_cast<double>(probe_res_.segments_skipped));
      }
    }
    if (probe_res_.bloom_negatives > 0 || probe_res_.bloom_fps > 0 ||
        probe_res_.bloom_hits > 0) {
      if (ctx_->active_stats != nullptr) {
        ctx_->active_stats->bloom_negatives += probe_res_.bloom_negatives;
        ctx_->active_stats->bloom_fps += probe_res_.bloom_fps;
      }
      if (bloom_hits_ != nullptr && probe_res_.bloom_hits > 0) {
        bloom_hits_->Increment(static_cast<double>(probe_res_.bloom_hits));
      }
      if (bloom_negatives_ != nullptr && probe_res_.bloom_negatives > 0) {
        bloom_negatives_->Increment(
            static_cast<double>(probe_res_.bloom_negatives));
      }
      if (bloom_fps_ != nullptr && probe_res_.bloom_fps > 0) {
        bloom_fps_->Increment(static_cast<double>(probe_res_.bloom_fps));
      }
    }
    return out;
  }

 private:
  ViewJoinOp(ExecContext* ctx, OperatorPtr child, UdfDef def,
             std::string view_name, bool scan_all, expr::ExprPtr residual,
             Schema schema)
      : Operator(ctx, std::move(schema)),
        child_(std::move(child)),
        def_(std::move(def)),
        view_name_(std::move(view_name)),
        scan_all_pending_(scan_all),
        residual_(std::move(residual)),
        value_schema_(UdfOutputSchema(def_)) {
    // Width of the input columns that precede the detector outputs: when
    // the input already carries (possibly NULL) output columns from an
    // earlier view join, strip them before re-appending.
    output_width_base_ = output_schema_.num_fields() -
                         UdfOutputSchema(def_).num_fields();
    if (ctx->obs_registry != nullptr) {
      probe_hits_ = ctx->obs_registry->GetCounter(
          "eva_view_probe_hits_total",
          "Materialized-view probes answered from the view",
          {{"udf", def_.name}});
      probe_misses_ = ctx->obs_registry->GetCounter(
          "eva_view_probe_misses_total",
          "Materialized-view probes that fell through to the UDF",
          {{"udf", def_.name}});
      segments_skipped_ = ctx->obs_registry->GetCounter(
          "eva_segments_skipped_total",
          "View segments skipped by zone-map residual-predicate pruning",
          {{"udf", def_.name}});
      bloom_hits_ = ctx->obs_registry->GetCounter(
          "eva_bloom_hits_total",
          "Probes the segment Bloom filter passed through to the key index",
          {{"udf", def_.name}});
      bloom_negatives_ = ctx->obs_registry->GetCounter(
          "eva_bloom_negatives_total",
          "Probe misses short-circuited by the segment Bloom filter",
          {{"udf", def_.name}});
      bloom_fps_ = ctx->obs_registry->GetCounter(
          "eva_bloom_fps_total",
          "Bloom false positives (filter passed, key index still missed)",
          {{"udf", def_.name}});
    }
  }

  void CountProbe(bool hit) {
    if (ctx_->active_stats != nullptr) {
      if (hit) {
        ++ctx_->active_stats->view_hits;
        ++ctx_->active_stats->rows_reused;
      } else {
        ++ctx_->active_stats->view_misses;
      }
    }
    if (hit && probe_hits_ != nullptr) probe_hits_->Increment();
    if (!hit && probe_misses_ != nullptr) probe_misses_->Increment();
  }

  Row TrimmedBase(const Row& row) const {
    size_t base = std::min(row.size(), output_width_base_);
    return Row(row.begin(), row.begin() + static_cast<long>(base));
  }

  OperatorPtr child_;
  UdfDef def_;
  std::string view_name_;
  bool scan_all_pending_;
  expr::ExprPtr residual_;
  Schema value_schema_;  // the view's value schema (zone-check resolution)
  size_t output_width_base_;
  // Per-batch scratch, reused across Next() calls.
  std::vector<uint8_t> actions_;
  std::vector<ViewKey> probe_keys_;
  storage::ProbeResult probe_res_;
  obs::Counter* probe_hits_ = nullptr;
  obs::Counter* probe_misses_ = nullptr;
  obs::Counter* segments_skipped_ = nullptr;
  obs::Counter* bloom_hits_ = nullptr;
  obs::Counter* bloom_negatives_ = nullptr;
  obs::Counter* bloom_fps_ = nullptr;
};

// ---------------------------------------------------------------------------
// CondApply: the conditional apply operator A[p*] (Fig. 4 step 2). The
// pass-through predicate is "outputs IS NOT NULL": only rows missing from
// the view are evaluated.
// ---------------------------------------------------------------------------

class CondApplyOp : public Operator {
 public:
  static Result<OperatorPtr> Make(ExecContext* ctx, OperatorPtr child,
                                  const std::string& udf) {
    EVA_ASSIGN_OR_RETURN(UdfDef def, ctx->catalog->GetUdf(udf));
    Schema schema = child->output_schema();
    if (def.kind == UdfKind::kDetector && !schema.Contains(kColObj)) {
      return Status::Internal(
          "CondApply(detector) requires view-joined input");
    }
    if (def.kind != UdfKind::kDetector && !schema.Contains(def.name)) {
      return Status::Internal("CondApply requires the output column " +
                              def.name);
    }
    return OperatorPtr(new CondApplyOp(ctx, std::move(child), std::move(def),
                                       std::move(schema)));
  }

  Result<Batch> Next() override {
    EVA_ASSIGN_OR_RETURN(Batch in, child_->Next());
    if (in.empty()) return Batch(output_schema_);
    int id_idx = in.schema().IndexOf(kColId);
    int obj_idx = in.schema().IndexOf(kColObj);
    size_t n_outputs = UdfOutputSchema(def_).num_fields();
    size_t base_width = output_schema_.num_fields() - n_outputs;
    // Batch-level overhead charges on the driver thread before any morsel
    // runs, matching the serial charge order exactly.
    ctx_->Charge(CostCategory::kOther,
                 ctx_->costs.apply_overhead_ms_per_row *
                     static_cast<double>(in.num_rows()));
    auto row_fn = [this, id_idx, obj_idx, base_width](
                      ExecContext* ctx, const Row& row,
                      Batch* out) -> Status {
      int64_t frame = row[static_cast<size_t>(id_idx)].AsInt64();
      if (def_.kind == UdfKind::kDetector) {
        if (!row[static_cast<size_t>(obj_idx)].is_null()) {
          out->AddRow(row);  // populated by the view join: pass through
          return Status();
        }
        EVA_ASSIGN_OR_RETURN(std::vector<Row> dets,
                             RunDetector(ctx, def_, frame, obs_));
        if (dets.empty()) {
          // Keep the NULL placeholder so STORE records "frame processed,
          // zero objects" before dropping it.
          out->AddRow(row);
          return Status();
        }
        for (Row& d : dets) {
          Row full(row.begin(), row.begin() + static_cast<long>(base_width));
          for (Value& v : d) full.push_back(std::move(v));
          out->AddRow(std::move(full));
        }
      } else {
        int out_idx = output_schema_.IndexOf(def_.name);
        Row full = row;
        const Value& current = row[static_cast<size_t>(out_idx)];
        if (current.is_null()) {
          if (def_.kind == UdfKind::kClassifier) {
            const Value& obj_v = row[static_cast<size_t>(obj_idx)];
            if (!obj_v.is_null()) {
              EVA_ASSIGN_OR_RETURN(
                  Value v,
                  RunClassifier(ctx, def_, frame, obj_v.AsInt64(), obs_));
              full[static_cast<size_t>(out_idx)] = std::move(v);
            }
          } else {
            EVA_ASSIGN_OR_RETURN(Value v,
                                 RunFilterUdf(ctx, def_, frame, obs_));
            full[static_cast<size_t>(out_idx)] = std::move(v);
          }
        }
        out->AddRow(std::move(full));
      }
      return Status();
    };
    return EvalRows(ctx_, in, output_schema_, row_fn);
  }

 private:
  CondApplyOp(ExecContext* ctx, OperatorPtr child, UdfDef def, Schema schema)
      : Operator(ctx, std::move(schema)),
        child_(std::move(child)),
        def_(std::move(def)),
        obs_(MakeUdfCounters(ctx, def_.name)) {}

  OperatorPtr child_;
  UdfDef def_;
  UdfObsCounters obs_;
};

// ---------------------------------------------------------------------------
// Store: appends fresh UDF results to the materialized view (Fig. 4 step
// 3). Append-only and idempotent: keys already present are skipped, so
// rows that came from the view flow through for free.
// ---------------------------------------------------------------------------

class StoreOp : public Operator {
 public:
  static Result<OperatorPtr> Make(ExecContext* ctx, OperatorPtr child,
                                  const std::string& udf,
                                  const std::string& view_name) {
    EVA_ASSIGN_OR_RETURN(UdfDef def, ctx->catalog->GetUdf(udf));
    return OperatorPtr(new StoreOp(ctx, std::move(child), std::move(def),
                                   view_name));
  }

  Result<Batch> Next() override {
    EVA_ASSIGN_OR_RETURN(Batch in, child_->Next());
    Batch out(output_schema_);
    if (in.empty()) return out;
    MaterializedView* view =
        ctx_->views->GetOrCreate(view_name_, UdfOutputSchema(def_));
    int id_idx = in.schema().IndexOf(kColId);
    int obj_idx = in.schema().IndexOf(kColObj);
    if (def_.kind == UdfKind::kDetector) {
      // Group object rows of one frame; record presence even for frames
      // whose detector output is empty (NULL placeholder rows).
      int64_t current_frame = -1;
      std::vector<Row> pending;
      bool pending_placeholder = false;
      auto flush = [&]() {
        if (current_frame < 0) return;
        ViewKey key{current_frame, -1};
        if (view->TryGet(key) == nullptr) {
          ctx_->Charge(CostCategory::kMaterialize,
                       ctx_->costs.materialize_ms_per_row *
                           static_cast<double>(pending.size() + 1));
          CountMaterialized(static_cast<int64_t>(pending.size()) + 1);
          view->Put(key, pending, ctx_->views->NextAccessTick(),
                    ctx_->query_id);
        }
        pending.clear();
        pending_placeholder = false;
      };
      size_t n_outputs = UdfOutputSchema(def_).num_fields();
      size_t base_width = in.schema().num_fields() - n_outputs;
      for (const Row& row : in.rows()) {
        int64_t frame = row[static_cast<size_t>(id_idx)].AsInt64();
        if (frame != current_frame) {
          flush();
          current_frame = frame;
        }
        if (row[static_cast<size_t>(obj_idx)].is_null()) {
          pending_placeholder = true;  // processed frame, zero objects
          continue;                    // placeholder rows are dropped here
        }
        pending.emplace_back(row.begin() + static_cast<long>(base_width),
                             row.end());
        out.AddRow(row);
      }
      flush();
      (void)pending_placeholder;
      return out;
    }
    // Classifier / filter UDF: one row per key.
    int val_idx = in.schema().IndexOf(def_.name);
    for (const Row& row : in.rows()) {
      const Value& val = row[static_cast<size_t>(val_idx)];
      if (!val.is_null()) {
        int64_t frame = row[static_cast<size_t>(id_idx)].AsInt64();
        int64_t obj = -1;
        if (def_.kind == UdfKind::kClassifier) {
          const Value& obj_v = row[static_cast<size_t>(obj_idx)];
          if (obj_v.is_null()) {
            out.AddRow(row);
            continue;
          }
          obj = obj_v.AsInt64();
        }
        ViewKey key{frame, obj};
        if (view->TryGet(key) == nullptr) {
          ctx_->Charge(CostCategory::kMaterialize,
                       ctx_->costs.materialize_ms_per_row);
          CountMaterialized(1);
          view->Put(key, {{val}}, ctx_->views->NextAccessTick(),
                    ctx_->query_id);
        }
      }
      out.AddRow(row);
    }
    return out;
  }

 private:
  StoreOp(ExecContext* ctx, OperatorPtr child, UdfDef def,
          std::string view_name)
      : Operator(ctx, child->output_schema()),
        child_(std::move(child)),
        def_(std::move(def)),
        view_name_(std::move(view_name)) {
    if (ctx->obs_registry != nullptr) {
      materialized_ = ctx->obs_registry->GetCounter(
          "eva_materialized_rows_total",
          "Rows appended to materialized views",
          {{"view", view_name_}});
    }
  }

  void CountMaterialized(int64_t rows) {
    if (ctx_->active_stats != nullptr) {
      ctx_->active_stats->rows_materialized += rows;
    }
    if (materialized_ != nullptr) {
      materialized_->Increment(static_cast<double>(rows));
    }
  }

  OperatorPtr child_;
  UdfDef def_;
  std::string view_name_;
  obs::Counter* materialized_ = nullptr;
};

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

class ProjectOp : public Operator {
 public:
  ProjectOp(ExecContext* ctx, OperatorPtr child,
            std::vector<expr::ExprPtr> exprs, Schema schema)
      : Operator(ctx, std::move(schema)),
        child_(std::move(child)),
        exprs_(std::move(exprs)) {}

  Result<Batch> Next() override {
    EVA_ASSIGN_OR_RETURN(Batch in, child_->Next());
    Batch out(output_schema_);
    if (in.empty()) return out;
    for (const Row& row : in.rows()) {
      Row projected;
      projected.reserve(exprs_.size());
      for (const expr::ExprPtr& e : exprs_) {
        EVA_ASSIGN_OR_RETURN(Value v,
                             expr::EvaluateScalar(*e, in.schema(), row));
        projected.push_back(std::move(v));
      }
      out.AddRow(std::move(projected));
    }
    return out;
  }

 private:
  OperatorPtr child_;
  std::vector<expr::ExprPtr> exprs_;
};

// ---------------------------------------------------------------------------
// Aggregate: COUNT(*) GROUP BY <cols>
// ---------------------------------------------------------------------------

class AggregateOp : public Operator {
 public:
  AggregateOp(ExecContext* ctx, OperatorPtr child,
              std::vector<std::string> group_by, Schema schema)
      : Operator(ctx, std::move(schema)),
        child_(std::move(child)),
        group_by_(std::move(group_by)) {}

  Result<Batch> Next() override {
    if (done_) return Batch(output_schema_);
    done_ = true;
    std::vector<Row> group_rows;
    std::vector<int64_t> counts;
    std::map<std::string, size_t> index;
    while (true) {
      EVA_ASSIGN_OR_RETURN(Batch in, child_->Next());
      if (in.empty()) break;
      std::vector<int> idxs;
      for (const std::string& col : group_by_) {
        int i = in.schema().IndexOf(col);
        if (i < 0) return Status::BindError("unknown group column: " + col);
        idxs.push_back(i);
      }
      for (const Row& row : in.rows()) {
        std::string key;
        Row group;
        for (int i : idxs) {
          const Value& v = row[static_cast<size_t>(i)];
          key += v.ToString();
          key += '\x1f';
          group.push_back(v);
        }
        auto [it, inserted] = index.emplace(key, group_rows.size());
        if (inserted) {
          group_rows.push_back(std::move(group));
          counts.push_back(0);
        }
        ++counts[it->second];
      }
    }
    Batch out(output_schema_);
    for (size_t i = 0; i < group_rows.size(); ++i) {
      Row row = group_rows[i];
      row.push_back(Value(counts[i]));
      out.AddRow(std::move(row));
    }
    return out;
  }

 private:
  OperatorPtr child_;
  std::vector<std::string> group_by_;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// Limit
// ---------------------------------------------------------------------------

class LimitOp : public Operator {
 public:
  LimitOp(ExecContext* ctx, OperatorPtr child, int64_t limit)
      : Operator(ctx, child->output_schema()),
        child_(std::move(child)),
        remaining_(limit) {}

  Result<Batch> Next() override {
    Batch out(output_schema_);
    if (remaining_ <= 0) return out;
    EVA_ASSIGN_OR_RETURN(Batch in, child_->Next());
    if (in.empty()) return out;
    for (Row& row : in.mutable_rows()) {
      if (remaining_ <= 0) break;
      out.AddRow(std::move(row));
      --remaining_;
    }
    return out;
  }

 private:
  OperatorPtr child_;
  int64_t remaining_;
};

// ---------------------------------------------------------------------------
// StatsOp: transparent decorator that meters the wrapped operator. Rows
// out per operator kind always flow to the metrics registry; when an
// EXPLAIN ANALYZE drain supplies a node-stats map, it additionally tracks
// per-node rows/batches/time and scopes ctx->active_stats so leaf helpers
// (UDF runners, view probes, stores) attribute their events to this node.
// ---------------------------------------------------------------------------

class StatsOp : public Operator {
 public:
  StatsOp(ExecContext* ctx, OperatorPtr inner, const plan::PlanNode* node,
          obs::OperatorStats* stats)
      : Operator(ctx, inner->output_schema()),
        inner_(std::move(inner)),
        stats_(stats) {
    if (ctx->obs_registry != nullptr) {
      rows_out_ = ctx->obs_registry->GetCounter(
          "eva_operator_rows_total", "Rows emitted per physical operator",
          {{"op", plan::PlanKindName(node->kind())}});
    }
  }

  Result<Batch> Next() override {
    if (stats_ == nullptr) {
      EVA_ASSIGN_OR_RETURN(Batch out, inner_->Next());
      if (rows_out_ != nullptr) {
        rows_out_->Increment(static_cast<double>(out.num_rows()));
      }
      return out;
    }
    obs::OperatorStats* prev = ctx_->active_stats;
    ctx_->active_stats = stats_;
    double sim0 = ctx_->clock->TotalMs();
    auto wall0 = std::chrono::steady_clock::now();
    Result<Batch> r = inner_->Next();
    stats_->sim_ms += ctx_->clock->TotalMs() - sim0;
    stats_->wall_us +=
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - wall0)
            .count();
    ++stats_->batches;
    if (r.ok()) {
      stats_->rows_out += static_cast<int64_t>(r.value().num_rows());
      if (rows_out_ != nullptr) {
        rows_out_->Increment(static_cast<double>(r.value().num_rows()));
      }
    }
    ctx_->active_stats = prev;
    return r;
  }

 private:
  OperatorPtr inner_;
  obs::OperatorStats* stats_;
  obs::Counter* rows_out_ = nullptr;
};

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

namespace {

Result<OperatorPtr> BuildOperatorImpl(const plan::PlanNodePtr& node,
                                      ExecContext* ctx) {
  switch (node->kind()) {
    case PlanKind::kVideoScan: {
      auto* scan = static_cast<const plan::VideoScanNode*>(node.get());
      return OperatorPtr(new VideoScanOp(ctx, scan->lo(), scan->hi()));
    }
    case PlanKind::kFilter: {
      auto* filter = static_cast<const plan::FilterNode*>(node.get());
      EVA_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperator(node->child(), ctx));
      return OperatorPtr(
          new FilterOp(ctx, std::move(child), filter->predicate()));
    }
    case PlanKind::kApply: {
      auto* apply = static_cast<const plan::ApplyNode*>(node.get());
      EVA_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperator(node->child(), ctx));
      return ApplyOp::Make(ctx, std::move(child), apply->udf(),
                           apply->emit_presence_placeholders());
    }
    case PlanKind::kCondApply: {
      auto* apply = static_cast<const plan::CondApplyNode*>(node.get());
      EVA_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperator(node->child(), ctx));
      return CondApplyOp::Make(ctx, std::move(child), apply->udf());
    }
    case PlanKind::kViewJoin: {
      auto* join = static_cast<const plan::ViewJoinNode*>(node.get());
      EVA_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperator(node->child(), ctx));
      return ViewJoinOp::Make(ctx, std::move(child), join->udf(),
                              join->view_name(),
                              join->scan_all_for_dedup(),
                              join->residual_predicate());
    }
    case PlanKind::kStore: {
      auto* store = static_cast<const plan::StoreNode*>(node.get());
      EVA_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperator(node->child(), ctx));
      return StoreOp::Make(ctx, std::move(child), store->udf(),
                           store->view_name());
    }
    case PlanKind::kProject: {
      auto* proj = static_cast<const plan::ProjectNode*>(node.get());
      EVA_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperator(node->child(), ctx));
      Schema schema;
      for (size_t i = 0; i < proj->exprs().size(); ++i) {
        DataType type = DataType::kString;
        const expr::ExprPtr& e = proj->exprs()[i];
        int idx = e->kind() == expr::ExprKind::kColumn
                      ? child->output_schema().IndexOf(e->name())
                      : -1;
        if (idx >= 0) type = child->output_schema().field(
                          static_cast<size_t>(idx)).type;
        schema.AddField({proj->names()[i], type});
      }
      return OperatorPtr(new ProjectOp(ctx, std::move(child), proj->exprs(),
                                       std::move(schema)));
    }
    case PlanKind::kLimit: {
      auto* limit = static_cast<const plan::LimitNode*>(node.get());
      EVA_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperator(node->child(), ctx));
      return OperatorPtr(
          new LimitOp(ctx, std::move(child), limit->limit()));
    }
    case PlanKind::kAggregate: {
      auto* agg = static_cast<const plan::AggregateNode*>(node.get());
      EVA_ASSIGN_OR_RETURN(OperatorPtr child,
                           BuildOperator(node->child(), ctx));
      Schema schema;
      for (const std::string& col : agg->group_by()) {
        int idx = child->output_schema().IndexOf(col);
        DataType type = idx >= 0 ? child->output_schema()
                                        .field(static_cast<size_t>(idx))
                                        .type
                                 : DataType::kString;
        schema.AddField({col, type});
      }
      schema.AddField({"count", DataType::kInt64});
      return OperatorPtr(new AggregateOp(ctx, std::move(child),
                                         agg->group_by(),
                                         std::move(schema)));
    }
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace

Result<OperatorPtr> BuildOperator(const plan::PlanNodePtr& node,
                                  ExecContext* ctx) {
  EVA_ASSIGN_OR_RETURN(OperatorPtr op, BuildOperatorImpl(node, ctx));
  // Wrap only when someone is listening: per-node stats (EXPLAIN ANALYZE)
  // or the metrics registry. The plain execution path keeps its exact
  // pre-observability operator tree.
  if (ctx->node_stats == nullptr && ctx->obs_registry == nullptr) return op;
  obs::OperatorStats* stats =
      ctx->node_stats != nullptr ? &(*ctx->node_stats)[node.get()] : nullptr;
  return OperatorPtr(new StatsOp(ctx, std::move(op), node.get(), stats));
}

Result<Batch> ExecutePlan(const plan::PlanNodePtr& plan, ExecContext* ctx) {
  EVA_ASSIGN_OR_RETURN(OperatorPtr root, BuildOperator(plan, ctx));
  Batch result(root->output_schema());
  while (true) {
    EVA_ASSIGN_OR_RETURN(Batch batch, root->Next());
    if (batch.empty()) break;
    for (Row& row : batch.mutable_rows()) {
      result.AddRow(std::move(row));
    }
  }
  ctx->metrics->rows_out += static_cast<int64_t>(result.num_rows());
  return result;
}

}  // namespace eva::exec
