#ifndef EVA_EXEC_VECTOR_FILTER_H_
#define EVA_EXEC_VECTOR_FILTER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "expr/expr.h"
#include "storage/column_segment.h"

namespace eva::exec {

/// A filter predicate compiled once per query into a flat register program
/// evaluated column-at-a-time over whole batches with uint8 masks. The
/// compiled form replaces the per-row recursive Expr interpreter on the
/// scan→filter and view-join→filter hot paths; semantics are exactly
/// EvaluateBool's (NULL comparisons false, EvaluateBool(NULL) false,
/// NOT of a NULL child true).
///
/// Two escape hatches keep the scalar path authoritative:
///  - Compile returns nullopt for shapes it does not support (missing
///    columns, non-bool literals in boolean position, literal-literal or
///    column-column-under-compare oddities, kStar/kCountStar) — the caller
///    keeps the per-row interpreter.
///  - Execute returns an error when a non-boolean cell feeds a logical
///    operator at runtime. The scalar interpreter short-circuits AND/OR, so
///    such a cell may or may not be an error there; the caller must rerun
///    the whole batch through the scalar path to reproduce its exact
///    behavior (including which error, if any, surfaces).
class FilterProgram {
 public:
  /// Compiles `e` against `schema`; nullopt when not vectorizable.
  static std::optional<FilterProgram> Compile(const expr::Expr& e,
                                              const Schema& schema);

  /// Evaluates over all rows of `batch`; keep->at(r) is 1 when row r
  /// passes. `keep` is resized to the batch row count.
  Status Execute(const Batch& batch, std::vector<uint8_t>* keep) const;

  size_t num_instructions() const { return instrs_.size(); }

 private:
  enum class OpCode : uint8_t {
    kCmpColLit = 0,  // dst = !null(col_a) && cmp(col_a, lit)
    kCmpColCol,      // dst = !null(a) && !null(b) && cmp(a, b)
    kBoolCol,        // dst = bool cell (null -> 0; non-bool -> error)
    kConst,          // dst = bval
    kAnd,            // dst = src_a & src_b
    kOr,             // dst = src_a | src_b
    kNot,            // dst = !src_a
  };

  struct Instr {
    OpCode code;
    expr::CompareOp cmp = expr::CompareOp::kEq;
    int col_a = -1;  // batch column operands
    int col_b = -1;
    int src_a = -1;  // mask register operands
    int src_b = -1;
    int dst = 0;
    Value lit;
    bool bval = false;
  };

  /// Returns the destination register of the compiled subtree, or -1 to
  /// bail out of vectorization.
  int CompileNode(const expr::Expr& e, const Schema& schema);

  std::vector<Instr> instrs_;
  int num_regs_ = 0;
};

/// Conservative zone-map satisfiability for segment skipping: kNever means
/// no row materialized in `seg` can satisfy `e`, for ANY values of columns
/// the segment does not store (those resolve to kMaybe). Column names
/// resolve against the view's value schema; "id" and "obj" additionally
/// resolve against the segment's key arrays. NOT subtrees are kMaybe
/// (proving "all rows satisfy the child" is not worth the state), as is
/// every shape whose scalar evaluation could error — a skip must never
/// swallow an error the interpreter would raise.
enum class ZoneVerdict { kNever, kMaybe };

ZoneVerdict ZoneCheck(const expr::Expr& e,
                      const storage::ColumnarSegment& seg,
                      const Schema& value_schema);

/// True when some stored row of `seg` could satisfy `e` (i.e. the segment
/// must be read); false only on a sound kNever proof.
inline bool ZoneCanMatch(const expr::Expr& e,
                         const storage::ColumnarSegment& seg,
                         const Schema& value_schema) {
  return ZoneCheck(e, seg, value_schema) != ZoneVerdict::kNever;
}

}  // namespace eva::exec

#endif  // EVA_EXEC_VECTOR_FILTER_H_
