#ifndef EVA_PLAN_PLAN_H_
#define EVA_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace eva::plan {

enum class PlanKind {
  kVideoScan = 0,
  kFilter,
  kProject,
  kApply,       // evaluate a UDF for every input row (Fig. 3 rewrite)
  kCondApply,   // evaluate only for rows with NULL outputs (Fig. 4 step 2)
  kViewJoin,    // LEFT OUTER JOIN with a materialized view (Fig. 4 step 1)
  kStore,       // append fresh UDF results to the view (Fig. 4 step 3)
  kAggregate,
  kLimit,
};

const char* PlanKindName(PlanKind kind);

class PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// Base class of physical plan nodes. The optimizer produces a tree of
/// these; the executor instantiates one operator per node.
class PlanNode {
 public:
  explicit PlanNode(PlanKind kind) : kind_(kind) {}
  virtual ~PlanNode() = default;

  PlanKind kind() const { return kind_; }
  const std::vector<PlanNodePtr>& children() const { return children_; }
  void AddChild(PlanNodePtr child) { children_.push_back(std::move(child)); }
  const PlanNodePtr& child() const { return children_.front(); }

  /// One-line description of this node (no children).
  virtual std::string Describe() const = 0;

  /// Multi-line indented tree rendering (EXPLAIN output).
  std::string ToString(int indent = 0) const;

 private:
  PlanKind kind_;
  std::vector<PlanNodePtr> children_;
};

/// Scans frames of a video, with the id-range predicate pushed down.
class VideoScanNode : public PlanNode {
 public:
  VideoScanNode(std::string video, int64_t lo, int64_t hi)
      : PlanNode(PlanKind::kVideoScan),
        video_(std::move(video)),
        lo_(lo),
        hi_(hi) {}

  const std::string& video() const { return video_; }
  int64_t lo() const { return lo_; }
  int64_t hi() const { return hi_; }

  std::string Describe() const override;

 private:
  std::string video_;
  int64_t lo_;  // inclusive
  int64_t hi_;  // exclusive
};

/// Filters rows by a residual (non-UDF-invoking) boolean expression.
class FilterNode : public PlanNode {
 public:
  explicit FilterNode(expr::ExprPtr predicate)
      : PlanNode(PlanKind::kFilter), predicate_(std::move(predicate)) {}

  const expr::ExprPtr& predicate() const { return predicate_; }

  std::string Describe() const override;

 private:
  expr::ExprPtr predicate_;
};

/// Evaluates UDF `udf` for every input row: detectors expand frames into
/// object rows; classifiers/filters annotate a new output column named
/// after the UDF.
class ApplyNode : public PlanNode {
 public:
  explicit ApplyNode(std::string udf)
      : PlanNode(PlanKind::kApply), udf_(std::move(udf)) {}

  const std::string& udf() const { return udf_; }

  /// When a STORE sits above this apply, frames where the detector found
  /// nothing must still flow as NULL placeholders so the view records
  /// "processed, zero objects" (dropped again by the STORE).
  bool emit_presence_placeholders() const {
    return emit_presence_placeholders_;
  }
  void set_emit_presence_placeholders(bool v) {
    emit_presence_placeholders_ = v;
  }

  std::string Describe() const override;

 private:
  std::string udf_;
  bool emit_presence_placeholders_ = false;
};

/// Conditional apply (A[p*]): evaluates `udf` only for rows whose outputs
/// are NULL — i.e., tuples missing from the joined materialized view.
class CondApplyNode : public PlanNode {
 public:
  explicit CondApplyNode(std::string udf)
      : PlanNode(PlanKind::kCondApply), udf_(std::move(udf)) {}

  const std::string& udf() const { return udf_; }

  std::string Describe() const override;

 private:
  std::string udf_;
};

/// LEFT OUTER JOIN of the input with the materialized view of `udf`.
/// Rows found in the view get their outputs populated; missing rows get
/// NULL outputs for the conditional apply above to fill.
class ViewJoinNode : public PlanNode {
 public:
  ViewJoinNode(std::string udf, std::string view_name)
      : PlanNode(PlanKind::kViewJoin),
        udf_(std::move(udf)),
        view_name_(std::move(view_name)) {}

  const std::string& udf() const { return udf_; }
  const std::string& view_name() const { return view_name_; }

  /// HashStash semantics: the recycler dedups the union of all matched
  /// operator outputs, so the whole view is read, not just probed keys.
  bool scan_all_for_dedup() const { return scan_all_for_dedup_; }
  void set_scan_all_for_dedup(bool v) { scan_all_for_dedup_ = v; }

  /// Residual predicate applied above this join in the split plan (p∩ or
  /// the uncovered part's predicate). Optional; when set, the probe may use
  /// segment zone maps to skip hits the residual filter would discard —
  /// never changing results, only avoiding view reads and downstream work.
  const expr::ExprPtr& residual_predicate() const {
    return residual_predicate_;
  }
  void set_residual_predicate(expr::ExprPtr p) {
    residual_predicate_ = std::move(p);
  }

  std::string Describe() const override;

 private:
  std::string udf_;
  std::string view_name_;
  bool scan_all_for_dedup_ = false;
  expr::ExprPtr residual_predicate_;
};

/// Appends freshly computed UDF results to the materialized view (the
/// STORE operator of Fig. 4); pass-through for already-present keys.
class StoreNode : public PlanNode {
 public:
  StoreNode(std::string udf, std::string view_name)
      : PlanNode(PlanKind::kStore),
        udf_(std::move(udf)),
        view_name_(std::move(view_name)) {}

  const std::string& udf() const { return udf_; }
  const std::string& view_name() const { return view_name_; }

  std::string Describe() const override;

 private:
  std::string udf_;
  std::string view_name_;
};

/// Final projection of the SELECT list.
class ProjectNode : public PlanNode {
 public:
  ProjectNode(std::vector<expr::ExprPtr> exprs,
              std::vector<std::string> names)
      : PlanNode(PlanKind::kProject),
        exprs_(std::move(exprs)),
        names_(std::move(names)) {}

  const std::vector<expr::ExprPtr>& exprs() const { return exprs_; }
  const std::vector<std::string>& names() const { return names_; }

  std::string Describe() const override;

 private:
  std::vector<expr::ExprPtr> exprs_;
  std::vector<std::string> names_;
};

/// GROUP BY + COUNT(*) aggregation (Q4-style traffic monitoring).
class AggregateNode : public PlanNode {
 public:
  explicit AggregateNode(std::vector<std::string> group_by)
      : PlanNode(PlanKind::kAggregate), group_by_(std::move(group_by)) {}

  const std::vector<std::string>& group_by() const { return group_by_; }

  std::string Describe() const override;

 private:
  std::vector<std::string> group_by_;
};

/// LIMIT n: stops pulling from the child once n rows were emitted.
class LimitNode : public PlanNode {
 public:
  explicit LimitNode(int64_t limit)
      : PlanNode(PlanKind::kLimit), limit_(limit) {}

  int64_t limit() const { return limit_; }

  std::string Describe() const override;

 private:
  int64_t limit_;
};

}  // namespace eva::plan

#endif  // EVA_PLAN_PLAN_H_
