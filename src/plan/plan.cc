#include "plan/plan.h"

#include <sstream>

namespace eva::plan {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kVideoScan:
      return "VideoScan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kApply:
      return "Apply";
    case PlanKind::kCondApply:
      return "CondApply";
    case PlanKind::kViewJoin:
      return "ViewJoin";
    case PlanKind::kStore:
      return "Store";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kLimit:
      return "Limit";
  }
  return "Unknown";
}

std::string PlanNode::ToString(int indent) const {
  std::ostringstream os;
  os << std::string(static_cast<size_t>(indent) * 2, ' ') << Describe()
     << "\n";
  for (const PlanNodePtr& c : children_) os << c->ToString(indent + 1);
  return os.str();
}

std::string VideoScanNode::Describe() const {
  std::ostringstream os;
  os << "VideoScan(" << video_ << ", id in [" << lo_ << ", " << hi_ << "))";
  return os.str();
}

std::string FilterNode::Describe() const {
  return "Filter(" + predicate_->ToString() + ")";
}

std::string ApplyNode::Describe() const { return "Apply(" + udf_ + ")"; }

std::string CondApplyNode::Describe() const {
  return "CondApply(" + udf_ + " if outputs NULL)";
}

std::string ViewJoinNode::Describe() const {
  std::string out = "ViewJoin(" + view_name_ + ")";
  if (scan_all_for_dedup_) out += " [full-scan dedup]";
  if (residual_predicate_ != nullptr) {
    out += " [zone residual: " + residual_predicate_->ToString() + "]";
  }
  return out;
}

std::string StoreNode::Describe() const {
  return "Store(" + view_name_ + ")";
}

std::string ProjectNode::Describe() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  out += ")";
  return out;
}

std::string LimitNode::Describe() const {
  return "Limit(" + std::to_string(limit_) + ")";
}

std::string AggregateNode::Describe() const {
  std::string out = "Aggregate(COUNT(*) GROUP BY ";
  for (size_t i = 0; i < group_by_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_by_[i];
  }
  out += ")";
  return out;
}

}  // namespace eva::plan
