#ifndef EVA_VISION_MODELS_H_
#define EVA_VISION_MODELS_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "vision/synthetic_video.h"

namespace eva::vision {

/// One detection emitted by an object detector.
struct Detection {
  int obj_id = 0;
  std::string label;
  double area = 0;
  double score = 0;
};

/// Simulated object-detection model (YOLO-tiny / FasterRCNN-R50 / -R101).
///
/// Deterministic: whether a ground-truth object is detected is a pure
/// function of (model name, frame, object), so repeated invocations return
/// byte-identical results — a prerequisite for result caching and view
/// reuse to be semantically sound. Higher-accuracy models have higher
/// recall, which reproduces the Fig. 10 effect where reusing a
/// high-accuracy view feeds *more* objects into dependent UDFs.
class DetectorModel {
 public:
  explicit DetectorModel(catalog::UdfDef def);

  const std::string& name() const { return def_.name; }
  double cost_ms() const { return def_.cost_ms; }
  const catalog::UdfDef& def() const { return def_; }

  std::vector<Detection> Detect(const SyntheticVideo& video,
                                int64_t frame_id) const;

 private:
  catalog::UdfDef def_;
  uint64_t name_seed_;
};

/// Simulated attribute classifier (CarType / ColorDet): maps a detected
/// object to a categorical label; correct with probability
/// `classifier_accuracy`, otherwise a deterministic wrong label.
///
/// Also implements *monolithic* UDFs (§3.3): a target of the form
/// "is:<Color>:<Type>" yields a specialized boolean-style classifier
/// ("true"/"false") like the paper's red-SUV detector. EVA reuses its
/// results only when the identical monolithic UDF recurs, whereas the
/// modular CarType/ColorDet results recombine across any attribute
/// constants — the trade-off §3.3 describes.
class ClassifierModel {
 public:
  explicit ClassifierModel(catalog::UdfDef def);

  const std::string& name() const { return def_.name; }
  double cost_ms() const { return def_.cost_ms; }
  const catalog::UdfDef& def() const { return def_; }

  std::string Classify(const SyntheticVideo& video, int64_t frame_id,
                       int obj_id) const;

 private:
  catalog::UdfDef def_;
  uint64_t name_seed_;
  const std::vector<std::string>* vocabulary_;
  bool target_is_color_;
  // Monolithic "is:<Color>:<Type>" target.
  bool monolithic_ = false;
  std::string mono_color_;
  std::string mono_type_;
};

/// Lightweight specialized filter (§5.6): a cheap frame-level binary
/// decision ("does this frame contain any vehicle?") with small error
/// rates, standing in for the paper's two-conv-layer DNN.
class FilterModel {
 public:
  explicit FilterModel(catalog::UdfDef def);

  const std::string& name() const { return def_.name; }
  double cost_ms() const { return def_.cost_ms; }

  bool Pass(const SyntheticVideo& video, int64_t frame_id) const;

 private:
  catalog::UdfDef def_;
  uint64_t name_seed_;
};

}  // namespace eva::vision

#endif  // EVA_VISION_MODELS_H_
