#include "vision/synthetic_video.h"

#include "common/rng.h"

namespace eva::vision {

const std::vector<std::string>& ObjectLabels() {
  static const std::vector<std::string>* kLabels =
      new std::vector<std::string>{"car", "truck", "bus", "person"};
  return *kLabels;
}

const std::vector<std::string>& VehicleTypes() {
  static const std::vector<std::string>* kTypes =
      new std::vector<std::string>{"Nissan", "Toyota", "Ford", "Honda",
                                   "BMW"};
  return *kTypes;
}

const std::vector<std::string>& VehicleColors() {
  static const std::vector<std::string>* kColors =
      new std::vector<std::string>{"Gray", "Red", "Blue", "White", "Black"};
  return *kColors;
}

namespace {

// Label mix: mostly cars (vehicle-heavy traffic scenes, §5.1).
const char* PickLabel(Rng& rng) {
  double u = rng.NextDouble();
  if (u < 0.80) return "car";
  if (u < 0.90) return "truck";
  if (u < 0.95) return "bus";
  return "person";
}

// Skewed categorical pick: first entries are more common, so equality
// predicates on popular values (Nissan, Gray) have realistic selectivity.
const std::string& PickSkewed(Rng& rng, const std::vector<std::string>& v) {
  double u = rng.NextDouble();
  static const double kCdf[] = {0.30, 0.55, 0.75, 0.90, 1.00};
  for (size_t i = 0; i < v.size(); ++i) {
    if (u <= kCdf[i]) return v[i];
  }
  return v.back();
}

}  // namespace

SyntheticVideo::SyntheticVideo(catalog::VideoInfo info)
    : info_(std::move(info)) {
  frames_.resize(static_cast<size_t>(info_.num_frames));
  for (int64_t f = 0; f < info_.num_frames; ++f) {
    Rng rng(Rng::MixSeed(info_.seed, static_cast<uint64_t>(f)));
    int n = rng.NextPoisson(info_.mean_objects_per_frame);
    auto& objs = frames_[static_cast<size_t>(f)];
    objs.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      GtObject o;
      o.obj_id = i;
      o.label = PickLabel(rng);
      o.car_type = PickSkewed(rng, VehicleTypes());
      o.color = PickSkewed(rng, VehicleColors());
      // Area skews small: most boxes are distant vehicles. u^2 * 0.6 puts
      // ~71% of boxes under area 0.3 and ~50% under 0.15.
      double u = rng.NextDouble();
      o.area = u * u * 0.6;
      o.score = 0.5 + 0.5 * rng.NextDouble();
      objs.push_back(std::move(o));
    }
  }
}

const std::vector<GtObject>& SyntheticVideo::FrameObjects(
    int64_t frame_id) const {
  if (frame_id < 0 || frame_id >= info_.num_frames) return empty_;
  return frames_[static_cast<size_t>(frame_id)];
}

double SyntheticVideo::MeanVehiclesPerFrame() const {
  if (frames_.empty()) return 0;
  double total = 0;
  for (const auto& objs : frames_) {
    for (const auto& o : objs) {
      if (o.label == "car") total += 1;
    }
  }
  return total / static_cast<double>(frames_.size());
}

}  // namespace eva::vision
