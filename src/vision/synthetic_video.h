#ifndef EVA_VISION_SYNTHETIC_VIDEO_H_
#define EVA_VISION_SYNTHETIC_VIDEO_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace eva::vision {

/// Ground-truth object present in a frame. Attributes mirror what the
/// paper's UDFs extract: detection label, vehicle type (CarType), color
/// (ColorDet), relative bounding-box area, and detector confidence.
struct GtObject {
  int obj_id = 0;  // index within the frame
  std::string label;
  std::string car_type;
  std::string color;
  double area = 0;
  double score = 0;
};

/// Vocabularies used by the generator and the simulated classifiers.
const std::vector<std::string>& ObjectLabels();    // car, truck, bus, person
const std::vector<std::string>& VehicleTypes();    // Nissan, Toyota, ...
const std::vector<std::string>& VehicleColors();   // Gray, Red, ...

/// Deterministic synthetic video: each frame carries a ground-truth object
/// list generated from (seed, frame_id). This replaces the real UA-DETRAC /
/// JACKSON datasets (DESIGN.md §2): the reuse machinery only observes
/// tuples, predicates, and per-tuple costs, so matching the paper's object
/// densities reproduces its invocation counts.
class SyntheticVideo {
 public:
  explicit SyntheticVideo(catalog::VideoInfo info);

  const catalog::VideoInfo& info() const { return info_; }
  int64_t num_frames() const { return info_.num_frames; }

  /// Ground truth of one frame (empty vector for out-of-range ids).
  const std::vector<GtObject>& FrameObjects(int64_t frame_id) const;

  /// Average number of vehicles (label == "car") per frame; reported by
  /// the Fig. 12 harness.
  double MeanVehiclesPerFrame() const;

 private:
  catalog::VideoInfo info_;
  std::vector<std::vector<GtObject>> frames_;
  std::vector<GtObject> empty_;
};

}  // namespace eva::vision

#endif  // EVA_VISION_SYNTHETIC_VIDEO_H_
