#include "vision/models.h"

#include "common/rng.h"
#include "common/string_util.h"
#include "common/value.h"

namespace eva::vision {

namespace {

uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Stable per-(model, frame, object) random stream.
Rng ObjectRng(uint64_t name_seed, int64_t frame_id, int obj_id) {
  uint64_t s = Rng::MixSeed(name_seed, static_cast<uint64_t>(frame_id));
  s = Rng::MixSeed(s, static_cast<uint64_t>(obj_id) + 0x51ed);
  return Rng(s);
}

}  // namespace

DetectorModel::DetectorModel(catalog::UdfDef def)
    : def_(std::move(def)), name_seed_(HashName(def_.name)) {}

std::vector<Detection> DetectorModel::Detect(const SyntheticVideo& video,
                                             int64_t frame_id) const {
  std::vector<Detection> out;
  const auto& objects = video.FrameObjects(frame_id);
  out.reserve(objects.size());
  for (const GtObject& gt : objects) {
    Rng rng = ObjectRng(name_seed_, frame_id, gt.obj_id);
    double recall = gt.area >= 0.2 ? def_.recall : def_.recall_small;
    if (!rng.NextBool(recall)) continue;
    Detection d;
    d.obj_id = gt.obj_id;
    d.label = gt.label;
    d.area = gt.area;
    // Confidence shrinks for low-accuracy models.
    d.score = gt.score * (0.6 + 0.4 * def_.recall);
    out.push_back(std::move(d));
  }
  return out;
}

ClassifierModel::ClassifierModel(catalog::UdfDef def)
    : def_(std::move(def)),
      name_seed_(HashName(def_.name)),
      target_is_color_(def_.target_attribute == "color") {
  vocabulary_ = target_is_color_ ? &VehicleColors() : &VehicleTypes();
  // Monolithic UDF target "is:<Color>:<Type>" (see header). Property
  // values arrive case-folded from the DDL layer, so resolve against the
  // vocabularies case-insensitively.
  const std::string& t = def_.target_attribute;
  if (t.rfind("is:", 0) == 0) {
    size_t sep = t.find(':', 3);
    if (sep != std::string::npos) {
      monolithic_ = true;
      mono_color_ = t.substr(3, sep - 3);
      mono_type_ = t.substr(sep + 1);
      auto canonicalize = [](std::string* value,
                             const std::vector<std::string>& vocab) {
        for (const std::string& v : vocab) {
          if (ToLower(v) == ToLower(*value)) {
            *value = v;
            return;
          }
        }
      };
      canonicalize(&mono_color_, VehicleColors());
      canonicalize(&mono_type_, VehicleTypes());
    }
  }
}

std::string ClassifierModel::Classify(const SyntheticVideo& video,
                                      int64_t frame_id, int obj_id) const {
  const auto& objects = video.FrameObjects(frame_id);
  const GtObject* gt = nullptr;
  for (const GtObject& o : objects) {
    if (o.obj_id == obj_id) {
      gt = &o;
      break;
    }
  }
  if (gt == nullptr) return "unknown";
  Rng rng = ObjectRng(name_seed_, frame_id, obj_id);
  if (monolithic_) {
    bool truth = gt->color == mono_color_ && gt->car_type == mono_type_;
    if (!rng.NextBool(def_.classifier_accuracy)) truth = !truth;
    return truth ? "true" : "false";
  }
  const std::string& truth = target_is_color_ ? gt->color : gt->car_type;
  if (rng.NextBool(def_.classifier_accuracy)) return truth;
  // Deterministic wrong answer: the next vocabulary entry.
  for (size_t i = 0; i < vocabulary_->size(); ++i) {
    if ((*vocabulary_)[i] == truth) {
      return (*vocabulary_)[(i + 1) % vocabulary_->size()];
    }
  }
  return (*vocabulary_)[0];
}

FilterModel::FilterModel(catalog::UdfDef def)
    : def_(std::move(def)), name_seed_(HashName(def_.name)) {}

bool FilterModel::Pass(const SyntheticVideo& video, int64_t frame_id) const {
  bool has_vehicle = false;
  for (const GtObject& o : video.FrameObjects(frame_id)) {
    if (o.label == "car" || o.label == "truck" || o.label == "bus") {
      has_vehicle = true;
      break;
    }
  }
  Rng rng = ObjectRng(name_seed_, frame_id, /*obj_id=*/-7);
  if (has_vehicle) {
    // Conservative filter: very low false-negative rate (missing a frame
    // with a vehicle would change query answers downstream).
    return !rng.NextBool(0.02);
  }
  // High false-positive rate: lightweight two-conv-layer filters are tuned
  // for recall and pass many empty frames through (§5.6).
  return rng.NextBool(0.5);
}

}  // namespace eva::vision
