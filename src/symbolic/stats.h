#ifndef EVA_SYMBOLIC_STATS_H_
#define EVA_SYMBOLIC_STATS_H_

#include <string>

#include "symbolic/predicate.h"

namespace eva::symbolic {

/// Supplies per-dimension statistics for selectivity estimation. The
/// storage layer implements this with equi-width histograms per column
/// ("EVA leverages existing histogram-based methods", §4.2).
class StatsProvider {
 public:
  virtual ~StatsProvider() = default;

  /// Domain kind of a dimension.
  virtual DimKind KindOf(const std::string& dim) const = 0;

  /// Fraction of tuples whose `dim` value satisfies `constraint`, in [0,1].
  virtual double ConstraintSelectivity(
      const std::string& dim, const DimConstraint& constraint) const = 0;
};

/// Selectivity of a conjunct under the usual attribute-independence
/// assumption (product of per-dimension selectivities).
double ConjunctSelectivity(const Conjunct& conjunct,
                           const StatsProvider& stats);

/// Selectivity of a DNF predicate. After Algorithm 1 reduction conjuncts
/// are largely disjoint, so we use a second-order Bonferroni estimate:
/// sum of conjunct selectivities minus pairwise intersections, clamped to
/// [0, 1].
double PredicateSelectivity(const Predicate& predicate,
                            const StatsProvider& stats);

}  // namespace eva::symbolic

#endif  // EVA_SYMBOLIC_STATS_H_
