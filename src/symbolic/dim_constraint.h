#ifndef EVA_SYMBOLIC_DIM_CONSTRAINT_H_
#define EVA_SYMBOLIC_DIM_CONSTRAINT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "symbolic/interval.h"

namespace eva::symbolic {

/// Domain kind of a predicate dimension. Integer dimensions (frame ids)
/// normalize open bounds to closed ones so adjacency is exact (id <= 4 OR
/// id >= 5 reduces to true); categorical dimensions (labels, UDF outputs)
/// use finite include/exclude sets which are closed under all boolean ops.
enum class DimKind {
  kReal = 0,
  kInteger,
  kCategorical,
};

/// The constraint a single conjunct places on one dimension: either a
/// numeric interval minus a finite set of excluded points, or a categorical
/// include/exclude set. This is the unit that Algorithm 1's
/// ReduceUnionConjunctives manipulates per dimension.
class DimConstraint {
 public:
  /// Unconstrained dimension of the given kind.
  static DimConstraint Full(DimKind kind);
  static DimConstraint Empty(DimKind kind);

  /// Numeric interval constraint (kind kReal or kInteger; integer bounds
  /// are normalized to closed form).
  static DimConstraint Numeric(DimKind kind, Interval interval);
  /// Numeric "!= v" constraint: full line minus one point.
  static DimConstraint NumericNotEqual(DimKind kind, double v);
  /// Categorical "= v" (include {v}) or, with exclude=true, "!= v".
  static DimConstraint Categorical(std::vector<std::string> values,
                                   bool exclude);

  DimKind kind() const { return kind_; }
  bool is_categorical() const { return kind_ == DimKind::kCategorical; }

  const Interval& interval() const { return interval_; }
  const std::vector<double>& excluded_points() const { return excluded_; }
  bool categorical_exclude() const { return cat_exclude_; }
  const std::vector<std::string>& categorical_values() const {
    return cat_values_;
  }

  bool IsFull() const;
  bool IsEmpty() const;

  /// Membership test for a concrete value.
  bool Contains(const Value& v) const;

  DimConstraint Intersect(const DimConstraint& other) const;
  bool IsSubsetOf(const DimConstraint& other) const;
  bool Equals(const DimConstraint& other) const;

  /// Union when representable as one DimConstraint (Fig. 2's "reduce the
  /// union of the remaining dimension"); nullopt otherwise.
  std::optional<DimConstraint> UnionIfSingle(const DimConstraint& other) const;

  /// this \ other when representable as one DimConstraint (Fig. 2 case iii
  /// overlap-carving); nullopt otherwise.
  std::optional<DimConstraint> DifferenceIfSingle(
      const DimConstraint& other) const;

  /// Complement as a union of DimConstraints (used by predicate negation).
  std::vector<DimConstraint> Complement() const;

  /// Number of atomic formulas needed to express this constraint (the
  /// Fig. 7 metric).
  int AtomCount() const;

  std::string ToString(const std::string& dim) const;

 private:
  explicit DimConstraint(DimKind kind) : kind_(kind) {}

  void NormalizeInteger();
  void PruneExcluded();

  DimKind kind_ = DimKind::kReal;
  // Numeric payload: interval minus excluded points (sorted, deduped).
  Interval interval_;
  std::vector<double> excluded_;
  // Categorical payload: include-set (cat_exclude_=false) or exclude-set.
  bool cat_exclude_ = true;            // Full categorical = exclude {}
  std::vector<std::string> cat_values_;  // sorted, deduped
};

}  // namespace eva::symbolic

#endif  // EVA_SYMBOLIC_DIM_CONSTRAINT_H_
