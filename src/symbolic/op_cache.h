#ifndef EVA_SYMBOLIC_OP_CACHE_H_
#define EVA_SYMBOLIC_OP_CACHE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/status.h"
#include "symbolic/predicate.h"

namespace eva::symbolic {

/// Epoch-tagged cache of Inter/Diff results against stored coverage
/// predicates. Keys are (coverage epoch, canonical query hash); the epoch
/// is a manager-wide monotone counter stamped on every real coverage
/// mutation, so any update/retraction/recovery moves the coverage to a key
/// no cached entry carries — stale results are unreachable by
/// construction. Entries store the query predicate itself and every hit is
/// verified cell-for-cell before replay, so hash collisions degrade to
/// misses. Budget-exhaustion Statuses are cached and replayed exactly like
/// successes: the brute-force engine would fail the same way again.
///
/// Shared across fleet sessions through the service's single executor and
/// therefore accessed only from the driver thread, like every other
/// UdfManager structure — no locking, and the copy taken for plain EXPLAIN
/// is plain member-wise copy.
class OpCache {
 public:
  struct Entry {
    uint64_t epoch = 0;
    Predicate query;  // verified structurally on every hit
    bool has_inter = false;
    bool has_diff = false;
    Status inter_status;
    Status diff_status;
    Predicate inter_value;
    Predicate diff_value;
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
  };

  explicit OpCache(size_t max_entries = 1024) : max_entries_(max_entries) {}

  /// Entry for (epoch, qhash) whose stored query equals `q` cell-for-cell;
  /// nullptr otherwise (including verification failure).
  Entry* Find(uint64_t epoch, uint64_t qhash, const Predicate& q);

  /// Inserts (or overwrites) the slot for (epoch, qhash), evicting the
  /// oldest entries past capacity, and returns it for the caller to fill.
  Entry* Insert(uint64_t epoch, uint64_t qhash, const Predicate& q);

  void Clear();

  size_t size() const { return map_.size(); }

  Stats stats;

 private:
  struct Key {
    uint64_t epoch = 0;
    uint64_t qhash = 0;
    bool operator==(const Key& o) const {
      return epoch == o.epoch && qhash == o.qhash;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.epoch * 0x9e3779b97f4a7c15ULL ^ k.qhash);
    }
  };

  size_t max_entries_;
  std::unordered_map<Key, Entry, KeyHash> map_;
  std::deque<Key> fifo_;  // insertion order; may hold keys already evicted
};

}  // namespace eva::symbolic

#endif  // EVA_SYMBOLIC_OP_CACHE_H_
