#include "symbolic/dim_constraint.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace eva::symbolic {

namespace {

std::vector<std::string> SortedUnique(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<std::string> SetIntersect(const std::vector<std::string>& a,
                                      const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<std::string> SetUnion(const std::vector<std::string>& a,
                                  const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<std::string> SetDifference(const std::vector<std::string>& a,
                                       const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool SetContains(const std::vector<std::string>& a, const std::string& v) {
  return std::binary_search(a.begin(), a.end(), v);
}

bool SetIsSubset(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool ListContains(const std::vector<double>& v, double p) {
  return std::binary_search(v.begin(), v.end(), p);
}

}  // namespace

DimConstraint DimConstraint::Full(DimKind kind) {
  DimConstraint c(kind);
  if (kind == DimKind::kCategorical) {
    c.cat_exclude_ = true;  // exclude nothing
  } else {
    c.interval_ = Interval::Full();
  }
  return c;
}

DimConstraint DimConstraint::Empty(DimKind kind) {
  DimConstraint c(kind);
  if (kind == DimKind::kCategorical) {
    c.cat_exclude_ = false;  // include nothing
  } else {
    c.interval_ = Interval::Empty();
  }
  return c;
}

DimConstraint DimConstraint::Numeric(DimKind kind, Interval interval) {
  DimConstraint c(kind);
  c.interval_ = interval;
  if (kind == DimKind::kInteger) c.NormalizeInteger();
  c.PruneExcluded();
  return c;
}

DimConstraint DimConstraint::NumericNotEqual(DimKind kind, double v) {
  DimConstraint c(kind);
  c.interval_ = Interval::Full();
  c.excluded_ = {v};
  if (kind == DimKind::kInteger) c.NormalizeInteger();
  c.PruneExcluded();
  return c;
}

DimConstraint DimConstraint::Categorical(std::vector<std::string> values,
                                         bool exclude) {
  DimConstraint c(DimKind::kCategorical);
  c.cat_exclude_ = exclude;
  c.cat_values_ = SortedUnique(std::move(values));
  return c;
}

void DimConstraint::NormalizeInteger() {
  // Integer dimensions always use closed integral bounds so that adjacency
  // is exact (id <= 4 OR id >= 5 covers the whole line).
  Bound lo = interval_.lo();
  Bound hi = interval_.hi();
  if (!lo.infinite) {
    double v = lo.value;
    double iv = lo.closed ? std::ceil(v) : std::floor(v) + 1;
    lo = Bound::Closed(iv);
  }
  if (!hi.infinite) {
    double v = hi.value;
    double iv = hi.closed ? std::floor(v) : std::ceil(v) - 1;
    hi = Bound::Closed(iv);
  }
  interval_ = Interval(lo, hi);
  // Drop non-integral excluded points; they cannot hit integers.
  std::vector<double> keep;
  for (double p : excluded_) {
    if (p == std::floor(p)) keep.push_back(p);
  }
  excluded_ = std::move(keep);
  std::sort(excluded_.begin(), excluded_.end());
  excluded_.erase(std::unique(excluded_.begin(), excluded_.end()),
                  excluded_.end());
  // Tighten bounds past excluded boundary integers.
  bool changed = true;
  while (changed && !interval_.IsEmpty()) {
    changed = false;
    Bound l = interval_.lo();
    Bound h = interval_.hi();
    if (!l.infinite && ListContains(excluded_, l.value)) {
      interval_ = Interval(Bound::Closed(l.value + 1), h);
      changed = true;
      continue;
    }
    if (!h.infinite && ListContains(excluded_, h.value)) {
      interval_ = Interval(l, Bound::Closed(h.value - 1));
      changed = true;
    }
  }
}

void DimConstraint::PruneExcluded() {
  std::sort(excluded_.begin(), excluded_.end());
  excluded_.erase(std::unique(excluded_.begin(), excluded_.end()),
                  excluded_.end());
  std::vector<double> keep;
  for (double p : excluded_) {
    if (interval_.Contains(p)) keep.push_back(p);
  }
  excluded_ = std::move(keep);
  // Shrink closed real endpoints that are themselves excluded.
  if (kind_ == DimKind::kReal) {
    bool changed = true;
    while (changed) {
      changed = false;
      Bound l = interval_.lo();
      Bound h = interval_.hi();
      if (!l.infinite && l.closed && ListContains(excluded_, l.value)) {
        interval_ = Interval(Bound::Open(l.value), h);
        excluded_.erase(
            std::find(excluded_.begin(), excluded_.end(), l.value));
        changed = true;
        continue;
      }
      if (!h.infinite && h.closed && ListContains(excluded_, h.value)) {
        interval_ = Interval(l, Bound::Open(h.value));
        excluded_.erase(
            std::find(excluded_.begin(), excluded_.end(), h.value));
        changed = true;
      }
    }
  }
}

bool DimConstraint::IsFull() const {
  if (is_categorical()) return cat_exclude_ && cat_values_.empty();
  return interval_.IsFull() && excluded_.empty();
}

bool DimConstraint::IsEmpty() const {
  if (is_categorical()) return !cat_exclude_ && cat_values_.empty();
  if (interval_.IsEmpty()) return true;
  if (kind_ == DimKind::kInteger && !interval_.lo().infinite &&
      !interval_.hi().infinite) {
    // A finite integer range is empty if every integer in it is excluded.
    double n = interval_.hi().value - interval_.lo().value + 1;
    if (n <= static_cast<double>(excluded_.size())) {
      for (double v = interval_.lo().value; v <= interval_.hi().value;
           v += 1) {
        if (!ListContains(excluded_, v)) return false;
      }
      return true;
    }
  }
  return false;
}

bool DimConstraint::Contains(const Value& v) const {
  if (is_categorical()) {
    if (v.type() != DataType::kString) return false;
    bool in_set = SetContains(cat_values_, v.AsString());
    return cat_exclude_ ? !in_set : in_set;
  }
  if (!v.is_numeric()) return false;
  double d = v.AsDouble();
  return interval_.Contains(d) && !ListContains(excluded_, d);
}

DimConstraint DimConstraint::Intersect(const DimConstraint& other) const {
  DimConstraint c(kind_);
  if (is_categorical()) {
    if (!cat_exclude_ && !other.cat_exclude_) {
      c.cat_exclude_ = false;
      c.cat_values_ = SetIntersect(cat_values_, other.cat_values_);
    } else if (!cat_exclude_ && other.cat_exclude_) {
      c.cat_exclude_ = false;
      c.cat_values_ = SetDifference(cat_values_, other.cat_values_);
    } else if (cat_exclude_ && !other.cat_exclude_) {
      c.cat_exclude_ = false;
      c.cat_values_ = SetDifference(other.cat_values_, cat_values_);
    } else {
      c.cat_exclude_ = true;
      c.cat_values_ = SetUnion(cat_values_, other.cat_values_);
    }
    return c;
  }
  c.interval_ = interval_.Intersect(other.interval_);
  c.excluded_ = excluded_;
  c.excluded_.insert(c.excluded_.end(), other.excluded_.begin(),
                     other.excluded_.end());
  if (kind_ == DimKind::kInteger) c.NormalizeInteger();
  c.PruneExcluded();
  return c;
}

bool DimConstraint::IsSubsetOf(const DimConstraint& other) const {
  if (IsEmpty()) return true;
  if (other.IsFull()) return true;
  if (is_categorical()) {
    if (!cat_exclude_ && !other.cat_exclude_) {
      return SetIsSubset(cat_values_, other.cat_values_);
    }
    if (!cat_exclude_ && other.cat_exclude_) {
      return SetIntersect(cat_values_, other.cat_values_).empty();
    }
    if (cat_exclude_ && !other.cat_exclude_) {
      return false;  // co-finite set cannot fit in a finite set
    }
    return SetIsSubset(other.cat_values_, cat_values_);
  }
  // Numeric: this ⊆ other iff our interval fits and every point `other`
  // excludes is also absent from us. (Endpoint-excluded cases were already
  // folded into the interval by PruneExcluded/NormalizeInteger.)
  if (!interval_.IsSubsetOf(other.interval_)) return false;
  for (double p : other.excluded_) {
    if (interval_.Contains(p) && !ListContains(excluded_, p)) return false;
  }
  return true;
}

bool DimConstraint::Equals(const DimConstraint& other) const {
  if (kind_ != other.kind_) return false;
  if (IsEmpty() && other.IsEmpty()) return true;
  if (is_categorical()) {
    return cat_exclude_ == other.cat_exclude_ &&
           cat_values_ == other.cat_values_;
  }
  return interval_ == other.interval_ && excluded_ == other.excluded_;
}

std::optional<DimConstraint> DimConstraint::UnionIfSingle(
    const DimConstraint& other) const {
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  if (is_categorical()) {
    DimConstraint c(DimKind::kCategorical);
    if (!cat_exclude_ && !other.cat_exclude_) {
      c.cat_exclude_ = false;
      c.cat_values_ = SetUnion(cat_values_, other.cat_values_);
    } else if (!cat_exclude_ && other.cat_exclude_) {
      c.cat_exclude_ = true;
      c.cat_values_ = SetDifference(other.cat_values_, cat_values_);
    } else if (cat_exclude_ && !other.cat_exclude_) {
      c.cat_exclude_ = true;
      c.cat_values_ = SetDifference(cat_values_, other.cat_values_);
    } else {
      c.cat_exclude_ = true;
      c.cat_values_ = SetIntersect(cat_values_, other.cat_values_);
    }
    return c;
  }
  // Numeric. A point `p` stays excluded in the union only if neither side
  // contains it.
  auto union_excluded = [this, &other](const Interval& merged) {
    std::vector<double> out;
    std::vector<double> candidates = excluded_;
    candidates.insert(candidates.end(), other.excluded_.begin(),
                      other.excluded_.end());
    for (double p : candidates) {
      if (merged.Contains(p) && !Contains(Value(p)) &&
          !other.Contains(Value(p))) {
        out.push_back(p);
      }
    }
    return out;
  };
  if (auto merged = interval_.UnionIfContiguous(other.interval_)) {
    DimConstraint c(kind_);
    c.interval_ = *merged;
    c.excluded_ = union_excluded(*merged);
    if (kind_ == DimKind::kInteger) c.NormalizeInteger();
    c.PruneExcluded();
    return c;
  }
  double gap = 0;
  if (kind_ == DimKind::kReal &&
      interval_.UnionWithPointGap(other.interval_, &gap)) {
    // x < 5 OR x > 5  ==>  x != 5 (within the merged hull).
    Interval merged = interval_.Hull(other.interval_);
    DimConstraint c(kind_);
    c.interval_ = merged;
    c.excluded_ = union_excluded(merged);
    c.excluded_.push_back(gap);
    c.PruneExcluded();
    return c;
  }
  if (kind_ == DimKind::kInteger && !interval_.hi().infinite &&
      !other.interval_.lo().infinite) {
    // [a,b] OR [b+2,c]  ==>  [a,c] minus {b+1} for integers.
    const Interval& a = interval_.lo().infinite ||
                                (!other.interval_.lo().infinite &&
                                 interval_.lo().value <=
                                     other.interval_.lo().value)
                            ? interval_
                            : other.interval_;
    const Interval& b = (&a == &interval_) ? other.interval_ : interval_;
    if (!a.hi().infinite && !b.lo().infinite &&
        b.lo().value - a.hi().value == 1) {
      // Adjacent integer ranges: [a,b] OR [b+1,c] = [a,c].
      DimConstraint c(kind_);
      c.interval_ = Interval(a.lo(), b.hi());
      c.excluded_ = union_excluded(c.interval_);
      c.NormalizeInteger();
      c.PruneExcluded();
      if (!c.IsEmpty()) return c;
    }
    if (!a.hi().infinite && !b.lo().infinite &&
        b.lo().value - a.hi().value == 2) {
      DimConstraint c(kind_);
      c.interval_ = Interval(a.lo(), b.hi());
      c.excluded_ = union_excluded(c.interval_);
      c.excluded_.push_back(a.hi().value + 1);
      c.NormalizeInteger();
      c.PruneExcluded();
      if (!c.IsEmpty()) return c;
    }
  }
  return std::nullopt;
}

std::optional<DimConstraint> DimConstraint::DifferenceIfSingle(
    const DimConstraint& other) const {
  if (other.IsEmpty()) return *this;
  if (IsSubsetOf(other)) return Empty(kind_);
  if (is_categorical()) {
    // Categorical sets are closed under difference: A \ B = A ∩ ¬B.
    DimConstraint not_b(DimKind::kCategorical);
    not_b.cat_exclude_ = !other.cat_exclude_;
    not_b.cat_values_ = other.cat_values_;
    return Intersect(not_b);
  }
  // If `other` merely excludes points inside us, those points would remain
  // as isolated members of the difference: not representable.
  for (double p : other.excluded_) {
    if (Contains(Value(p)) && other.interval_.Contains(p)) {
      return std::nullopt;
    }
  }
  auto diff = interval_.DifferenceIfSingle(other.interval_);
  if (!diff.has_value()) return std::nullopt;
  DimConstraint c(kind_);
  c.interval_ = *diff;
  c.excluded_ = excluded_;
  if (kind_ == DimKind::kInteger) c.NormalizeInteger();
  c.PruneExcluded();
  return c;
}

std::vector<DimConstraint> DimConstraint::Complement() const {
  std::vector<DimConstraint> out;
  if (IsEmpty()) {
    out.push_back(Full(kind_));
    return out;
  }
  if (IsFull()) return out;  // complement of full is empty: no pieces
  if (is_categorical()) {
    DimConstraint c(DimKind::kCategorical);
    c.cat_exclude_ = !cat_exclude_;
    c.cat_values_ = cat_values_;
    out.push_back(std::move(c));
    return out;
  }
  const Bound& lo = interval_.lo();
  const Bound& hi = interval_.hi();
  if (!lo.infinite) {
    Bound b = lo;
    b.closed = !b.closed;
    out.push_back(Numeric(kind_, Interval(Bound::Infinite(), b)));
  }
  if (!hi.infinite) {
    Bound b = hi;
    b.closed = !b.closed;
    out.push_back(Numeric(kind_, Interval(b, Bound::Infinite())));
  }
  for (double p : excluded_) {
    out.push_back(Numeric(kind_, Interval::Point(p)));
  }
  return out;
}

int DimConstraint::AtomCount() const {
  if (IsFull()) return 0;
  if (IsEmpty()) return 1;
  if (is_categorical()) return static_cast<int>(cat_values_.size());
  return interval_.AtomCount() + static_cast<int>(excluded_.size());
}

std::string DimConstraint::ToString(const std::string& dim) const {
  if (IsFull()) return "true";
  if (IsEmpty()) return "false";
  std::ostringstream os;
  if (is_categorical()) {
    if (cat_values_.size() == 1) {
      os << dim << (cat_exclude_ ? " != '" : " = '") << cat_values_[0]
         << "'";
    } else {
      os << dim << (cat_exclude_ ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < cat_values_.size(); ++i) {
        if (i > 0) os << ", ";
        os << "'" << cat_values_[i] << "'";
      }
      os << ")";
    }
    return os.str();
  }
  os << interval_.ToString(dim);
  for (double p : excluded_) os << " AND " << dim << " != " << p;
  return os.str();
}

}  // namespace eva::symbolic
