#ifndef EVA_SYMBOLIC_PREDICATE_INTERN_H_
#define EVA_SYMBOLIC_PREDICATE_INTERN_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "symbolic/predicate.h"

namespace eva::symbolic {

/// FNV-1a over raw bytes. Fingerprints are in-process only (cache keys and
/// duplicate-cell prefilters); every hit is re-verified structurally, so a
/// collision can cost a recomputation but never a wrong result.
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline uint64_t FnvMixBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t FnvMix64(uint64_t h, uint64_t v) {
  return FnvMixBytes(h, &v, sizeof(v));
}

/// Process-wide dimension-name dictionary: interns column / UDF-output
/// names to dense 32-bit ids so the per-dimension interval index keys its
/// endpoint lists by integer instead of string. Ids are stable for the
/// process lifetime and never persisted.
class DimDict {
 public:
  static DimDict& Global();

  uint32_t Intern(const std::string& name);
  /// Name for an interned id (debugging / rendering).
  std::string NameOf(uint32_t id) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

/// Structural fingerprints of the predicate algebra's building blocks.
/// Doubles are hashed by bit pattern with -0.0 normalized to +0.0 so
/// syntactically equal constraints always collide.
uint64_t FingerprintConstraint(const DimConstraint& c);
uint64_t FingerprintCell(const Conjunct& c);
/// Order-sensitive fingerprint of the DNF cell list (change detection).
uint64_t FingerprintPredicate(const Predicate& p);
/// Order-insensitive canonical hash (sorted cell fingerprints) — the
/// remainder-cache key, so reordered-but-equal queries share a slot.
uint64_t CanonicalPredicateHash(const Predicate& p);

/// Cell-for-cell structural equality in order; the authoritative check run
/// on every cache hit before a stored result is replayed.
bool PredicateIdentical(const Predicate& a, const Predicate& b);

}  // namespace eva::symbolic

#endif  // EVA_SYMBOLIC_PREDICATE_INTERN_H_
