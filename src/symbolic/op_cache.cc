#include "symbolic/op_cache.h"

#include "symbolic/predicate_intern.h"

namespace eva::symbolic {

OpCache::Entry* OpCache::Find(uint64_t epoch, uint64_t qhash,
                              const Predicate& q) {
  auto it = map_.find(Key{epoch, qhash});
  if (it == map_.end()) return nullptr;
  if (!PredicateIdentical(it->second.query, q)) return nullptr;
  return &it->second;
}

OpCache::Entry* OpCache::Insert(uint64_t epoch, uint64_t qhash,
                                const Predicate& q) {
  Key key{epoch, qhash};
  auto it = map_.find(key);
  if (it == map_.end()) {
    while (map_.size() >= max_entries_ && !fifo_.empty()) {
      if (map_.erase(fifo_.front()) > 0) ++stats.evictions;
      fifo_.pop_front();
    }
    it = map_.emplace(key, Entry{}).first;
    fifo_.push_back(key);
    ++stats.insertions;
  } else {
    // Hash-collision overwrite (different query, same slot): start fresh.
    it->second = Entry{};
  }
  it->second.epoch = epoch;
  it->second.query = q;
  return &it->second;
}

void OpCache::Clear() {
  map_.clear();
  fifo_.clear();
}

}  // namespace eva::symbolic
