#include "symbolic/predicate_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace eva::symbolic {

namespace {

// Percent-escapes '%', space, and newline so a token never splits.
std::string EscapeToken(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\t' || c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out.empty() ? "%" : out;  // "%" alone marks the empty string
}

std::string UnescapeToken(const std::string& s) {
  if (s == "%") return "";
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(std::strtol(s.substr(i + 1, 2).c_str(),
                                           nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

void EncodeBound(std::ostringstream& os, const Bound& b) {
  if (b.infinite) {
    os << " inf";
  } else {
    os << ' ' << (b.closed ? 'c' : 'o') << ':' << b.value;
  }
}

bool DecodeBound(std::istringstream& is, Bound* b) {
  std::string tok;
  if (!(is >> tok)) return false;
  if (tok == "inf") {
    *b = Bound::Infinite();
    return true;
  }
  if (tok.size() < 3 || tok[1] != ':') return false;
  double v = std::strtod(tok.c_str() + 2, nullptr);
  if (tok[0] == 'c') {
    *b = Bound::Closed(v);
  } else if (tok[0] == 'o') {
    *b = Bound::Open(v);
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string EncodePredicate(const Predicate& p) {
  std::ostringstream os;
  os.precision(17);
  os << "P " << p.conjuncts().size();
  for (const Conjunct& c : p.conjuncts()) {
    os << " C " << c.dims().size();
    for (const auto& [dim, dc] : c.dims()) {
      os << ' ' << EscapeToken(dim) << ' ' << static_cast<int>(dc.kind());
      if (dc.is_categorical()) {
        os << ' ' << (dc.categorical_exclude() ? "Ce" : "Ci") << ' '
           << dc.categorical_values().size();
        for (const std::string& v : dc.categorical_values()) {
          os << ' ' << EscapeToken(v);
        }
      } else {
        os << " N";
        EncodeBound(os, dc.interval().lo());
        EncodeBound(os, dc.interval().hi());
        os << ' ' << dc.excluded_points().size();
        for (double pt : dc.excluded_points()) os << ' ' << pt;
      }
    }
  }
  return os.str();
}

Result<Predicate> DecodePredicate(const std::string& text) {
  std::istringstream is(text);
  std::string tok;
  size_t nconj = 0;
  if (!(is >> tok) || tok != "P" || !(is >> nconj)) {
    return Status::InvalidArgument("predicate: expected 'P <n>' header");
  }
  Predicate p;
  for (size_t ci = 0; ci < nconj; ++ci) {
    size_t ndims = 0;
    if (!(is >> tok) || tok != "C" || !(is >> ndims)) {
      return Status::InvalidArgument("predicate: expected 'C <n>' conjunct");
    }
    Conjunct c;
    for (size_t di = 0; di < ndims; ++di) {
      std::string dim_tok;
      int kind_int = 0;
      if (!(is >> dim_tok >> kind_int)) {
        return Status::InvalidArgument("predicate: truncated dimension");
      }
      std::string dim = UnescapeToken(dim_tok);
      if (kind_int < 0 || kind_int > static_cast<int>(DimKind::kCategorical)) {
        return Status::InvalidArgument("predicate: bad dimension kind " +
                                       std::to_string(kind_int));
      }
      auto kind = static_cast<DimKind>(kind_int);
      std::string payload;
      if (!(is >> payload)) {
        return Status::InvalidArgument("predicate: missing payload tag");
      }
      if (payload == "N") {
        Bound lo, hi;
        size_t nexcl = 0;
        if (!DecodeBound(is, &lo) || !DecodeBound(is, &hi) || !(is >> nexcl)) {
          return Status::InvalidArgument("predicate: bad numeric payload");
        }
        DimConstraint dc = DimConstraint::Numeric(kind, Interval(lo, hi));
        for (size_t i = 0; i < nexcl; ++i) {
          double pt = 0;
          if (!(is >> pt)) {
            return Status::InvalidArgument("predicate: bad excluded point");
          }
          dc = dc.Intersect(DimConstraint::NumericNotEqual(kind, pt));
        }
        if (!c.Constrain(dim, dc)) {
          return Status::InvalidArgument(
              "predicate: unsatisfiable stored conjunct");
        }
      } else if (payload == "Ci" || payload == "Ce") {
        size_t nvals = 0;
        if (!(is >> nvals)) {
          return Status::InvalidArgument("predicate: bad categorical count");
        }
        std::vector<std::string> values;
        // A hostile count must not drive a huge allocation before the
        // stream runs dry; push_back grows past the cap fine.
        values.reserve(std::min<size_t>(nvals, 1024));
        for (size_t i = 0; i < nvals; ++i) {
          std::string v;
          if (!(is >> v)) {
            return Status::InvalidArgument("predicate: bad categorical value");
          }
          values.push_back(UnescapeToken(v));
        }
        if (!c.Constrain(dim,
                         DimConstraint::Categorical(std::move(values),
                                                    payload == "Ce"))) {
          return Status::InvalidArgument(
              "predicate: unsatisfiable stored conjunct");
        }
      } else {
        return Status::InvalidArgument("predicate: unknown payload tag '" +
                                       payload + "'");
      }
    }
    p.AddConjunct(std::move(c));
  }
  return p;
}

}  // namespace eva::symbolic
