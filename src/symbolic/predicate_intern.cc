#include "symbolic/predicate_intern.h"

#include <algorithm>
#include <cstring>

namespace eva::symbolic {

namespace {

uint64_t MixDouble(uint64_t h, double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 onto +0.0
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return FnvMix64(h, bits);
}

uint64_t MixString(uint64_t h, const std::string& s) {
  h = FnvMix64(h, s.size());
  return FnvMixBytes(h, s.data(), s.size());
}

uint64_t MixBound(uint64_t h, const Bound& b) {
  if (b.infinite) return FnvMix64(h, 0x7f);
  h = FnvMix64(h, b.closed ? 1 : 2);
  return MixDouble(h, b.value);
}

}  // namespace

DimDict& DimDict::Global() {
  static DimDict* dict = new DimDict();
  return *dict;
}

uint32_t DimDict::Intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

std::string DimDict::NameOf(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= names_.size()) return "";
  return names_[id];
}

uint64_t FingerprintConstraint(const DimConstraint& c) {
  uint64_t h = kFnvOffsetBasis;
  h = FnvMix64(h, static_cast<uint64_t>(c.kind()));
  if (c.is_categorical()) {
    h = FnvMix64(h, c.categorical_exclude() ? 1 : 0);
    h = FnvMix64(h, c.categorical_values().size());
    for (const std::string& v : c.categorical_values()) h = MixString(h, v);
    return h;
  }
  h = MixBound(h, c.interval().lo());
  h = MixBound(h, c.interval().hi());
  h = FnvMix64(h, c.excluded_points().size());
  for (double p : c.excluded_points()) h = MixDouble(h, p);
  return h;
}

uint64_t FingerprintCell(const Conjunct& c) {
  uint64_t h = kFnvOffsetBasis;
  h = FnvMix64(h, c.dims().size());
  for (const auto& [dim, constraint] : c.dims()) {
    h = MixString(h, dim);
    h = FnvMix64(h, FingerprintConstraint(constraint));
  }
  return h;
}

uint64_t FingerprintPredicate(const Predicate& p) {
  uint64_t h = kFnvOffsetBasis;
  h = FnvMix64(h, p.conjuncts().size());
  for (const Conjunct& c : p.conjuncts()) {
    h = FnvMix64(h, FingerprintCell(c));
  }
  return h;
}

uint64_t CanonicalPredicateHash(const Predicate& p) {
  std::vector<uint64_t> fps;
  fps.reserve(p.conjuncts().size());
  for (const Conjunct& c : p.conjuncts()) fps.push_back(FingerprintCell(c));
  std::sort(fps.begin(), fps.end());
  uint64_t h = kFnvOffsetBasis;
  h = FnvMix64(h, fps.size());
  for (uint64_t fp : fps) h = FnvMix64(h, fp);
  return h;
}

bool PredicateIdentical(const Predicate& a, const Predicate& b) {
  if (a.conjuncts().size() != b.conjuncts().size()) return false;
  for (size_t i = 0; i < a.conjuncts().size(); ++i) {
    if (!a.conjuncts()[i].Equals(b.conjuncts()[i])) return false;
  }
  return true;
}

}  // namespace eva::symbolic
