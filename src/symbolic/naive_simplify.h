#ifndef EVA_SYMBOLIC_NAIVE_SIMPLIFY_H_
#define EVA_SYMBOLIC_NAIVE_SIMPLIFY_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace eva::symbolic {

/// Comparison operator of a naive (propositional-level) atom.
enum class NaiveOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// An atomic formula treated as an opaque propositional variable. This is
/// the Fig. 7 baseline: it models SymPy's pattern-matching `simplify`
/// (Quine–McCluskey style), which understands boolean structure and exact
/// complements but not the interaction between inequalities — so unions of
/// overlapping ranges never shrink.
struct NaiveAtom {
  std::string dim;
  NaiveOp op = NaiveOp::kEq;
  Value value;

  NaiveAtom() = default;
  NaiveAtom(std::string d, NaiveOp o, Value v)
      : dim(std::move(d)), op(o), value(std::move(v)) {}

  /// Exact logical complement (x > 5 ↔ x <= 5).
  NaiveAtom Negated() const;

  bool operator==(const NaiveAtom& other) const;
  bool operator<(const NaiveAtom& other) const;

  std::string ToString() const;
};

/// A DNF predicate over propositional atoms. Empty disjunction = FALSE;
/// a disjunct with no atoms = TRUE.
class NaivePredicate {
 public:
  using Conjunct = std::vector<NaiveAtom>;  // sorted, deduped

  NaivePredicate() = default;

  static NaivePredicate False() { return NaivePredicate(); }
  static NaivePredicate True();
  static NaivePredicate Atom(NaiveAtom atom);

  const std::vector<Conjunct>& conjuncts() const { return conjuncts_; }
  bool IsFalse() const { return conjuncts_.empty(); }

  static NaivePredicate And(const NaivePredicate& a, const NaivePredicate& b,
                            size_t max_conjuncts = 100000);
  static NaivePredicate Or(const NaivePredicate& a, const NaivePredicate& b,
                           size_t max_conjuncts = 100000);
  static NaivePredicate Not(const NaivePredicate& p,
                            size_t max_conjuncts = 100000);

  /// Quine–McCluskey-flavored minimization: dedup, absorption (drop
  /// conjuncts subsumed by a subset conjunct), and consensus merging of
  /// conjuncts differing only in one complemented atom.
  void Simplify();

  /// Total number of atomic formulas — the Fig. 7 metric.
  int AtomCount() const;

  std::string ToString() const;

 private:
  std::vector<Conjunct> conjuncts_;
};

}  // namespace eva::symbolic

#endif  // EVA_SYMBOLIC_NAIVE_SIMPLIFY_H_
