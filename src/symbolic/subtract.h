#ifndef EVA_SYMBOLIC_SUBTRACT_H_
#define EVA_SYMBOLIC_SUBTRACT_H_

#include "common/status.h"
#include "symbolic/predicate.h"

namespace eva::symbolic {

/// Conjunct-level subtraction c \ w as a disjoint union of conjuncts.
///
/// For a subtrahend conjunct w constraining dimensions d_1..d_n, the
/// complement of w decomposes the space into disjoint cells
///   (d_1 ∉ w.d_1) ∨ (d_1 ∈ w.d_1 ∧ d_2 ∉ w.d_2) ∨ ...
/// and c \ w is c intersected with each cell. Each "d_k ∉ w.d_k" factor is
/// expanded through DimConstraint::Complement(), so every emitted conjunct
/// stays a plain per-dimension box and the pieces are pairwise disjoint —
/// avoiding the exponential blowup of generic ¬w DNF expansion followed by
/// AND. Unsatisfiable pieces are dropped.
std::vector<Conjunct> SubtractConjunct(const Conjunct& c, const Conjunct& w);

/// Predicate subtraction p \ v  =  p ∧ ¬v, the retraction primitive behind
/// coverage eviction (p_u ← p_u ∧ ¬p_v): every conjunct of p is carved by
/// every conjunct of v via SubtractConjunct, then the result is re-reduced
/// by Algorithm 1's pairwise conjunct machinery so subsequent p∩ / p–
/// splits see a compact aggregated predicate.
///
/// Fails with ResourceExhausted when the intermediate conjunct count
/// exceeds `budget.max_conjuncts` — callers fall back to dropping coverage
/// entirely (sound: underclaiming coverage only costs recomputation).
Result<Predicate> Subtract(const Predicate& p, const Predicate& v,
                           const SymbolicBudget& budget = {});

}  // namespace eva::symbolic

#endif  // EVA_SYMBOLIC_SUBTRACT_H_
