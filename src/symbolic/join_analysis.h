#ifndef EVA_SYMBOLIC_JOIN_ANALYSIS_H_
#define EVA_SYMBOLIC_JOIN_ANALYSIS_H_

#include <cstdint>
#include <string>

namespace eva::symbolic {

/// Symbolic analysis of join predicates — listed as future work in §6 of
/// the paper ("While it is possible to do symbolic analysis of join
/// predicates, EVA currently does not support it") and implemented here
/// for the two families the paper's example uses:
///
///   Q1: A ⋈_{A.id = B.id}        B   (affine, scale 1 offset 0)
///   Q2: A ⋈_{A.id = B.id + 1}    B   (affine, scale 1 offset 1)
///   Q3: A ⋈_{A.id = B.id mod 2}  B   (modular)
///
/// The analysis decides, for a UDF evaluated over the join output, whether
/// the (left, right) input pairs produced by a new join predicate are a
/// subset of the pairs an earlier predicate produced — in which case the
/// earlier UDF results cover the new query. Unlike the paper's informal
/// claim that "Q1 subsumes Q3", the precise pair-level semantics makes the
/// subsumption conditional on the right column's domain: the Q3 pair
/// (r mod 2, r) is a Q1 pair (r, r) exactly when r ∈ [0, 2). Subsumes()
/// therefore takes the joined column's integer domain and is exact over
/// it (verified against brute force in the tests).
struct JoinPredicate {
  enum class Form {
    kAffine,   // left = scale * right + offset
    kModular,  // left = right mod modulus
  };

  Form form = Form::kAffine;
  std::string left_col;
  std::string right_col;
  int64_t scale = 1;
  int64_t offset = 0;
  int64_t modulus = 0;

  static JoinPredicate Affine(std::string left, std::string right,
                              int64_t scale = 1, int64_t offset = 0);
  static JoinPredicate Modular(std::string left, std::string right,
                               int64_t modulus);

  /// True if the concrete pair (left_value, right_value) satisfies this
  /// predicate. Modular uses the mathematical (non-negative) remainder.
  bool Matches(int64_t left_value, int64_t right_value) const;

  std::string ToString() const;
};

/// Syntactic/semantic equivalence of two join predicates.
bool Equivalent(const JoinPredicate& a, const JoinPredicate& b);

/// True if every (left, right) pair that `query` produces — with the right
/// column ranging over the integer domain [domain_lo, domain_hi] — also
/// satisfies `prior`, i.e. the prior join's UDF results subsume the new
/// query's. Exact for affine/modular combinations; falls back to bounded
/// enumeration for small domains and answers conservatively (false)
/// otherwise.
bool Subsumes(const JoinPredicate& prior, const JoinPredicate& query,
              int64_t domain_lo, int64_t domain_hi);

}  // namespace eva::symbolic

#endif  // EVA_SYMBOLIC_JOIN_ANALYSIS_H_
