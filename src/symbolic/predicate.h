#ifndef EVA_SYMBOLIC_PREDICATE_H_
#define EVA_SYMBOLIC_PREDICATE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "symbolic/dim_constraint.h"

namespace eva::symbolic {

/// Resolves a dimension (column / UDF-output) name to its value for one
/// tuple; used to evaluate predicates at execution time and in tests.
using ValueLookup = std::function<Value(const std::string&)>;

/// A conjunction of per-dimension constraints. Dimensions not present are
/// unconstrained. Constructing a conjunct eagerly merges multiple atoms on
/// one dimension (the paper's per-conjunct reduction, Algorithm 1 step 2).
class Conjunct {
 public:
  Conjunct() = default;

  const std::map<std::string, DimConstraint>& dims() const { return dims_; }

  /// ANDs `constraint` onto dimension `dim`. Returns false if the conjunct
  /// became unsatisfiable.
  bool Constrain(const std::string& dim, const DimConstraint& constraint);

  /// Constraint on `dim`; Full(kind) if unconstrained.
  DimConstraint Get(const std::string& dim, DimKind kind) const;
  bool Constrains(const std::string& dim) const {
    return dims_.count(dim) > 0;
  }

  bool IsTrue() const { return dims_.empty(); }
  bool IsEmpty() const;

  /// Conjunction of two conjuncts; nullopt when unsatisfiable.
  std::optional<Conjunct> Intersect(const Conjunct& other) const;

  bool IsSubsetOf(const Conjunct& other) const;
  bool Equals(const Conjunct& other) const;

  bool Evaluate(const ValueLookup& lookup) const;

  /// Total number of atomic formulas (the Fig. 7 metric).
  int AtomCount() const;

  std::string ToString() const;

 private:
  std::map<std::string, DimConstraint> dims_;
};

/// Limits for the symbolic analysis, mirroring the paper's time budget in
/// Algorithm 1: negation/AND expansion aborts past `max_conjuncts`, and the
/// pairwise reduction loop stops after `max_reduce_passes` sweeps.
struct SymbolicBudget {
  size_t max_conjuncts = 4096;
  int max_reduce_passes = 64;
};

/// A predicate in disjunctive normal form: a union of Conjuncts. The empty
/// union is FALSE; a single empty conjunct is TRUE. This is the object the
/// paper's SYMBOLICENGINE manipulates (§4.1): the UDFMANAGER stores one
/// aggregated Predicate per UDF signature, and reuse analysis computes the
/// intersection / difference / union of Predicates.
class Predicate {
 public:
  /// FALSE.
  Predicate() = default;

  static Predicate False() { return Predicate(); }
  static Predicate True();
  static Predicate FromConjunct(Conjunct c);
  /// Single-atom predicate "dim ∈ constraint".
  static Predicate Atom(const std::string& dim,
                        const DimConstraint& constraint);

  const std::vector<Conjunct>& conjuncts() const { return conjuncts_; }

  bool IsFalse() const { return conjuncts_.empty(); }
  bool IsTrue() const;

  /// p1 ∧ p2 (pairwise conjunct intersection with unsat pruning). Fails
  /// with ResourceExhausted when the budget is exceeded.
  static Result<Predicate> And(const Predicate& a, const Predicate& b,
                               const SymbolicBudget& budget = {});
  /// p1 ∨ p2 followed by Algorithm 1 reduction.
  static Predicate Or(const Predicate& a, const Predicate& b,
                      const SymbolicBudget& budget = {});
  /// ¬p via De Morgan over the DNF; can blow up, hence the budget.
  static Result<Predicate> Not(const Predicate& p,
                               const SymbolicBudget& budget = {});

  /// The paper's three derived predicates (§3.2):
  ///   INTER(p1,p2) = p1 ∧ p2, DIFF(p1,p2) = ¬p1 ∧ p2, UNION = p1 ∨ p2.
  static Result<Predicate> Inter(const Predicate& p1, const Predicate& p2,
                                 const SymbolicBudget& budget = {});
  static Result<Predicate> Diff(const Predicate& p1, const Predicate& p2,
                                const SymbolicBudget& budget = {});
  static Predicate Union(const Predicate& p1, const Predicate& p2,
                         const SymbolicBudget& budget = {});

  /// Algorithm 1: per-conjunct reduction happened at construction; this
  /// runs the pairwise ReduceUnionConjunctives loop to fixpoint (or budget).
  /// Returns true when the loop reached a fixpoint (no pair reduces),
  /// false when it stopped on the pass budget with work remaining.
  bool Reduce(const SymbolicBudget& budget = {});

  /// In-place Or(*this, q) followed by an incremental Reduce that only
  /// revisits pairs involving a changed cell. REQUIRES *this to be at
  /// Reduce fixpoint (pairs of untouched cells then provably cannot
  /// reduce, and the pairwise scan visits reducible pairs in the same
  /// order as a full Reduce) — callers track that bit and fall back to
  /// Union + Reduce when it is unknown. Bit-identical to
  /// Union(*this, q, budget) by construction; this is what lets streaming
  /// ticks extend the frame-id horizon atom in place instead of paying the
  /// full O(cells^2) re-reduction per flush. Returns whether the predicate
  /// changed cell-for-cell; sets *reached_fixpoint like Reduce's return.
  bool UnionIncrementalInPlace(const Predicate& q,
                               const SymbolicBudget& budget,
                               bool* reached_fixpoint);

  bool Evaluate(const ValueLookup& lookup) const;

  /// Conservative semantic checks used by the rewrite rules (§4.4): a
  /// predicate is definitely-false when it has no conjuncts.
  bool DefinitelyFalse() const { return conjuncts_.empty(); }

  int AtomCount() const;
  std::string ToString() const;

  /// Appends a conjunct, dropping it if unsatisfiable.
  void AddConjunct(Conjunct c);

 private:
  std::vector<Conjunct> conjuncts_;
};

/// Reduces the union of two conjuncts per Fig. 2 / Algorithm 1:
///  - subset in all dimensions: drop the covered conjunct;
///  - equal in all but one dimension: concatenate along that dimension;
///  - subset in all but one dimension: carve the overlap out of the smaller
///    conjunct to make the pair disjoint.
/// Returns true (and fills `out`) if anything changed; `out` holds 1 or 2
/// conjuncts replacing {c1, c2}.
bool ReduceUnionConjunctives(const Conjunct& c1, const Conjunct& c2,
                             std::vector<Conjunct>* out);

}  // namespace eva::symbolic

#endif  // EVA_SYMBOLIC_PREDICATE_H_
