#ifndef EVA_SYMBOLIC_INTERVAL_H_
#define EVA_SYMBOLIC_INTERVAL_H_

#include <optional>
#include <string>

namespace eva::symbolic {

/// One endpoint of an interval. `infinite` endpoints ignore value/closed.
struct Bound {
  double value = 0;
  bool closed = false;
  bool infinite = true;

  static Bound Infinite() { return Bound{}; }
  static Bound Closed(double v) { return Bound{v, true, false}; }
  static Bound Open(double v) { return Bound{v, false, false}; }
};

/// A (possibly unbounded, possibly degenerate) interval over the reals.
/// This is the numeric building block of EVA's symbolic predicate algebra
/// (§4.1): every atomic comparison over a numeric column becomes an interval.
class Interval {
 public:
  /// Full line (-inf, +inf).
  Interval() = default;
  Interval(Bound lo, Bound hi) : lo_(lo), hi_(hi) {}

  static Interval Full() { return Interval(); }
  static Interval Empty() {
    return Interval(Bound::Open(0), Bound::Open(0));
  }
  static Interval Point(double v) {
    return Interval(Bound::Closed(v), Bound::Closed(v));
  }
  static Interval AtLeast(double v) {
    return Interval(Bound::Closed(v), Bound::Infinite());
  }
  static Interval GreaterThan(double v) {
    return Interval(Bound::Open(v), Bound::Infinite());
  }
  static Interval AtMost(double v) {
    return Interval(Bound::Infinite(), Bound::Closed(v));
  }
  static Interval LessThan(double v) {
    return Interval(Bound::Infinite(), Bound::Open(v));
  }

  const Bound& lo() const { return lo_; }
  const Bound& hi() const { return hi_; }

  bool IsEmpty() const;
  bool IsFull() const { return lo_.infinite && hi_.infinite; }
  bool IsPoint() const;

  bool Contains(double v) const;

  Interval Intersect(const Interval& other) const;

  /// True if this ⊆ other.
  bool IsSubsetOf(const Interval& other) const;

  bool operator==(const Interval& other) const;

  /// Union when the result is one interval: the inputs overlap or touch.
  /// Returns nullopt when they are separated by more than a point.
  std::optional<Interval> UnionIfContiguous(const Interval& other) const;

  /// Convex hull: smallest interval containing both inputs.
  Interval Hull(const Interval& other) const;

  /// True if the two intervals are disjoint but separated by exactly one
  /// point, which is stored in *gap (e.g. x<5 and x>5 with gap 5). The union
  /// is then "merged interval minus {gap}".
  bool UnionWithPointGap(const Interval& other, double* gap) const;

  /// this \ other, when the result is a single interval (other clips one
  /// side of this, or misses entirely, or swallows it). nullopt when `other`
  /// splits this into two pieces.
  std::optional<Interval> DifferenceIfSingle(const Interval& other) const;

  /// Number of atomic comparison formulas needed to express this interval
  /// (0 for full, 1 for one-sided or a point, 2 for two-sided).
  int AtomCount() const;

  std::string ToString(const std::string& var = "x") const;

 private:
  Bound lo_;  // lower endpoint
  Bound hi_;  // upper endpoint
};

}  // namespace eva::symbolic

#endif  // EVA_SYMBOLIC_INTERVAL_H_
