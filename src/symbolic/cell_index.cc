#include "symbolic/cell_index.h"

#include <algorithm>

#include "symbolic/predicate_intern.h"

namespace eva::symbolic {

namespace {

// hi strictly precedes lo on the number line (no shared point).
bool BoundBefore(const Bound& hi, const Bound& lo) {
  if (hi.infinite || lo.infinite) return false;
  if (hi.value < lo.value) return true;
  if (hi.value > lo.value) return false;
  return !hi.closed || !lo.closed;
}

bool IntervalsDisjoint(const Interval& a, const Interval& b) {
  return BoundBefore(a.hi(), b.lo()) || BoundBefore(b.hi(), a.lo());
}

// Disjointness of two sorted include-sets.
bool SortedSetsDisjoint(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    int cmp = a[i].compare(b[j]);
    if (cmp == 0) return false;
    if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

}  // namespace

bool HullDisjoint(const Conjunct& a, const Conjunct& b) {
  auto it = a.dims().begin();
  auto jt = b.dims().begin();
  while (it != a.dims().end() && jt != b.dims().end()) {
    int cmp = it->first.compare(jt->first);
    if (cmp < 0) {
      ++it;
      continue;
    }
    if (cmp > 0) {
      ++jt;
      continue;
    }
    const DimConstraint& ca = it->second;
    const DimConstraint& cb = jt->second;
    if (ca.is_categorical() && cb.is_categorical()) {
      // Excluded points only widen the constraint's reach relative to its
      // include-set, so only include/include pairs prove disjointness.
      if (!ca.categorical_exclude() && !cb.categorical_exclude() &&
          SortedSetsDisjoint(ca.categorical_values(),
                             cb.categorical_values())) {
        return true;
      }
    } else if (!ca.is_categorical() && !cb.is_categorical()) {
      // Excluded points only shrink an interval constraint, so disjoint
      // hull intervals imply disjoint constraints.
      if (IntervalsDisjoint(ca.interval(), cb.interval())) return true;
    }
    ++it;
    ++jt;
  }
  return false;
}

std::shared_ptr<const CellIndex> CellIndex::Build(const Predicate& p) {
  auto index = std::make_shared<CellIndex>();
  DimDict& dict = DimDict::Global();
  const std::vector<Conjunct>& cells = p.conjuncts();
  index->cell_fps_.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    const uint32_t cell = static_cast<uint32_t>(i);
    uint64_t fp = FingerprintCell(cells[i]);
    index->cell_fps_.push_back(fp);
    index->fp_cells_[fp].push_back(cell);
    for (const auto& [dim, constraint] : cells[i].dims()) {
      if (constraint.is_categorical()) continue;
      DimEntries& entries = index->dims_[dict.Intern(dim)];
      const Interval& iv = constraint.interval();
      if (!iv.lo().infinite) {
        entries.by_lo.push_back({iv.lo().value, iv.lo().closed, cell});
      }
      if (!iv.hi().infinite) {
        entries.by_hi.push_back({iv.hi().value, iv.hi().closed, cell});
      }
    }
  }
  auto by_value = [](const Endpoint& a, const Endpoint& b) {
    if (a.value != b.value) return a.value < b.value;
    if (a.closed != b.closed) return a.closed;
    return a.cell < b.cell;
  };
  for (auto& [dim, entries] : index->dims_) {
    std::sort(entries.by_lo.begin(), entries.by_lo.end(), by_value);
    std::sort(entries.by_hi.begin(), entries.by_hi.end(), by_value);
  }
  return index;
}

const std::vector<uint32_t>* CellIndex::CellsWithFingerprint(
    uint64_t fp) const {
  auto it = fp_cells_.find(fp);
  if (it == fp_cells_.end()) return nullptr;
  return &it->second;
}

size_t CellIndex::FilterCandidates(const Conjunct& q,
                                   std::vector<uint8_t>* candidate) const {
  size_t pruned = 0;
  auto drop = [&](uint32_t cell) {
    uint8_t& flag = (*candidate)[cell];
    if (flag != 0) {
      flag = 0;
      ++pruned;
    }
  };
  DimDict& dict = DimDict::Global();
  for (const auto& [dim, constraint] : q.dims()) {
    if (constraint.is_categorical()) continue;
    auto it = dims_.find(dict.Intern(dim));
    if (it == dims_.end()) continue;
    const DimEntries& entries = it->second;
    const Interval& qiv = constraint.interval();
    auto value_less = [](const Endpoint& e, double v) { return e.value < v; };
    if (!qiv.hi().infinite) {
      // Cells whose lower bound starts past the query's upper bound.
      const double qhi = qiv.hi().value;
      auto first_eq = std::lower_bound(entries.by_lo.begin(),
                                       entries.by_lo.end(), qhi, value_less);
      for (auto e = first_eq; e != entries.by_lo.end(); ++e) {
        if (e->value > qhi) {
          drop(e->cell);
        } else if (!e->closed || !qiv.hi().closed) {
          drop(e->cell);  // touch at an open endpoint: still disjoint
        }
      }
    }
    if (!qiv.lo().infinite) {
      // Cells whose upper bound ends before the query's lower bound.
      const double qlo = qiv.lo().value;
      auto first_eq = std::lower_bound(entries.by_hi.begin(),
                                       entries.by_hi.end(), qlo, value_less);
      for (auto e = entries.by_hi.begin(); e != first_eq; ++e) drop(e->cell);
      for (auto e = first_eq; e != entries.by_hi.end() && e->value == qlo;
           ++e) {
        if (!e->closed || !qiv.lo().closed) drop(e->cell);
      }
    }
  }
  return pruned;
}

Result<Predicate> IndexedAnd(const Predicate& a, const CellIndex* a_index,
                             const Predicate& b, const SymbolicBudget& budget,
                             PruneStats* stats) {
  if (a_index == nullptr) return Predicate::And(a, b, budget);
  const std::vector<Conjunct>& ac = a.conjuncts();
  const std::vector<Conjunct>& bc = b.conjuncts();
  // candidates[j][i]: may coverage cell i intersect query cell j?
  std::vector<std::vector<uint8_t>> candidates(bc.size());
  size_t pruned = 0;
  for (size_t j = 0; j < bc.size(); ++j) {
    candidates[j].assign(ac.size(), 1);
    pruned += a_index->FilterCandidates(bc[j], &candidates[j]);
  }
  if (stats != nullptr) {
    stats->cells_pruned += static_cast<int64_t>(pruned);
  }
  // Same traversal order, budget check, and Reduce as Predicate::And —
  // skipped pairs are exactly those whose Intersect would return nullopt.
  Predicate out;
  for (size_t i = 0; i < ac.size(); ++i) {
    for (size_t j = 0; j < bc.size(); ++j) {
      if (candidates[j][i] == 0) continue;
      if (auto inter = ac[i].Intersect(bc[j])) {
        out.AddConjunct(std::move(*inter));
        if (out.conjuncts().size() > budget.max_conjuncts) {
          return Status::ResourceExhausted(
              "symbolic AND exceeded conjunct budget");
        }
      }
    }
  }
  out.Reduce(budget);
  return out;
}

}  // namespace eva::symbolic
