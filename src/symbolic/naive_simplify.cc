#include "symbolic/naive_simplify.h"

#include <algorithm>
#include <sstream>

namespace eva::symbolic {

namespace {

const char* OpName(NaiveOp op) {
  switch (op) {
    case NaiveOp::kEq:
      return "=";
    case NaiveOp::kNe:
      return "!=";
    case NaiveOp::kLt:
      return "<";
    case NaiveOp::kLe:
      return "<=";
    case NaiveOp::kGt:
      return ">";
    case NaiveOp::kGe:
      return ">=";
  }
  return "?";
}

// True when the two atoms on the same dimension are a contradiction that
// simple pattern matching would catch: exact complements, or conflicting
// equalities.
bool PatternContradiction(const NaiveAtom& a, const NaiveAtom& b) {
  if (a.dim != b.dim) return false;
  if (a == b.Negated()) return true;
  if (a.op == NaiveOp::kEq && b.op == NaiveOp::kEq &&
      !(a.value == b.value)) {
    return true;
  }
  return false;
}

// Sorted-insert an atom, returning false if the conjunct became
// contradictory.
bool AddAtom(std::vector<NaiveAtom>* conjunct, const NaiveAtom& atom) {
  for (const NaiveAtom& existing : *conjunct) {
    if (existing == atom) return true;  // duplicate
    if (PatternContradiction(existing, atom)) return false;
  }
  conjunct->insert(
      std::upper_bound(conjunct->begin(), conjunct->end(), atom), atom);
  return true;
}

// True if a ⊆ b as atom sets (b's constraints are a subset of a's, so the
// conjunct a implies conjunct b).
bool AtomSubset(const std::vector<NaiveAtom>& inner,
                const std::vector<NaiveAtom>& outer) {
  return std::includes(inner.begin(), inner.end(), outer.begin(),
                       outer.end());
}

}  // namespace

NaiveAtom NaiveAtom::Negated() const {
  NaiveOp neg;
  switch (op) {
    case NaiveOp::kEq:
      neg = NaiveOp::kNe;
      break;
    case NaiveOp::kNe:
      neg = NaiveOp::kEq;
      break;
    case NaiveOp::kLt:
      neg = NaiveOp::kGe;
      break;
    case NaiveOp::kLe:
      neg = NaiveOp::kGt;
      break;
    case NaiveOp::kGt:
      neg = NaiveOp::kLe;
      break;
    case NaiveOp::kGe:
      neg = NaiveOp::kLt;
      break;
    default:
      neg = op;
  }
  return NaiveAtom(dim, neg, value);
}

bool NaiveAtom::operator==(const NaiveAtom& other) const {
  return dim == other.dim && op == other.op && value == other.value;
}

bool NaiveAtom::operator<(const NaiveAtom& other) const {
  if (dim != other.dim) return dim < other.dim;
  if (op != other.op) return op < other.op;
  return value < other.value;
}

std::string NaiveAtom::ToString() const {
  return dim + " " + OpName(op) + " " + value.ToString();
}

NaivePredicate NaivePredicate::True() {
  NaivePredicate p;
  p.conjuncts_.push_back({});
  return p;
}

NaivePredicate NaivePredicate::Atom(NaiveAtom atom) {
  NaivePredicate p;
  p.conjuncts_.push_back({std::move(atom)});
  return p;
}

NaivePredicate NaivePredicate::And(const NaivePredicate& a,
                                   const NaivePredicate& b,
                                   size_t max_conjuncts) {
  NaivePredicate out;
  for (const Conjunct& ca : a.conjuncts_) {
    for (const Conjunct& cb : b.conjuncts_) {
      Conjunct merged = ca;
      bool sat = true;
      for (const NaiveAtom& atom : cb) {
        if (!AddAtom(&merged, atom)) {
          sat = false;
          break;
        }
      }
      if (sat) {
        out.conjuncts_.push_back(std::move(merged));
        if (out.conjuncts_.size() > max_conjuncts) {
          out.Simplify();
          if (out.conjuncts_.size() > max_conjuncts) return out;
        }
      }
    }
  }
  out.Simplify();
  return out;
}

NaivePredicate NaivePredicate::Or(const NaivePredicate& a,
                                  const NaivePredicate& b,
                                  size_t max_conjuncts) {
  NaivePredicate out = a;
  for (const Conjunct& c : b.conjuncts_) {
    out.conjuncts_.push_back(c);
    if (out.conjuncts_.size() > max_conjuncts) break;
  }
  out.Simplify();
  return out;
}

NaivePredicate NaivePredicate::Not(const NaivePredicate& p,
                                   size_t max_conjuncts) {
  if (p.IsFalse()) return True();
  NaivePredicate acc = True();
  for (const Conjunct& ci : p.conjuncts_) {
    if (ci.empty()) return False();
    NaivePredicate not_ci;
    for (const NaiveAtom& atom : ci) {
      not_ci.conjuncts_.push_back({atom.Negated()});
    }
    acc = And(acc, not_ci, max_conjuncts);
    if (acc.IsFalse()) return acc;
  }
  return acc;
}

void NaivePredicate::Simplify() {
  // TRUE conjunct dominates everything.
  for (const Conjunct& c : conjuncts_) {
    if (c.empty()) {
      conjuncts_ = {{}};
      return;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    // Dedup + absorption.
    for (size_t i = 0; i < conjuncts_.size(); ++i) {
      for (size_t j = conjuncts_.size(); j-- > 0;) {
        if (i == j) continue;
        if (AtomSubset(conjuncts_[j], conjuncts_[i])) {
          // conjunct j implies conjunct i, so j is redundant in the union.
          conjuncts_.erase(conjuncts_.begin() + static_cast<long>(j));
          if (j < i) --i;
          changed = true;
        }
      }
    }
    // Consensus merge: two conjuncts differing in exactly one complemented
    // atom collapse into their common part (the QM merge step).
    for (size_t i = 0; i < conjuncts_.size() && !changed; ++i) {
      for (size_t j = i + 1; j < conjuncts_.size() && !changed; ++j) {
        const Conjunct& a = conjuncts_[i];
        const Conjunct& b = conjuncts_[j];
        if (a.size() != b.size()) continue;
        int mismatches = 0;
        size_t mismatch_idx = 0;
        for (size_t k = 0; k < a.size(); ++k) {
          if (!(a[k] == b[k])) {
            ++mismatches;
            mismatch_idx = k;
          }
        }
        if (mismatches == 1 &&
            a[mismatch_idx] == b[mismatch_idx].Negated()) {
          Conjunct merged;
          for (size_t k = 0; k < a.size(); ++k) {
            if (k != mismatch_idx) merged.push_back(a[k]);
          }
          conjuncts_[i] = std::move(merged);
          conjuncts_.erase(conjuncts_.begin() + static_cast<long>(j));
          changed = true;
        }
      }
    }
  }
}

int NaivePredicate::AtomCount() const {
  int n = 0;
  for (const Conjunct& c : conjuncts_) {
    n += std::max<size_t>(1, c.size());
  }
  if (conjuncts_.empty()) return 1;  // "false"
  return n;
}

std::string NaivePredicate::ToString() const {
  if (conjuncts_.empty()) return "false";
  std::ostringstream os;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i > 0) os << " OR ";
    os << "(";
    if (conjuncts_[i].empty()) os << "true";
    for (size_t k = 0; k < conjuncts_[i].size(); ++k) {
      if (k > 0) os << " AND ";
      os << conjuncts_[i][k].ToString();
    }
    os << ")";
  }
  return os.str();
}

}  // namespace eva::symbolic
