#include "symbolic/join_analysis.h"

#include <algorithm>
#include <sstream>

namespace eva::symbolic {

namespace {

// Mathematical (always non-negative) remainder.
int64_t Mod(int64_t v, int64_t m) {
  int64_t r = v % m;
  return r < 0 ? r + m : r;
}

constexpr int64_t kBruteForceLimit = 1 << 20;

}  // namespace

JoinPredicate JoinPredicate::Affine(std::string left, std::string right,
                                    int64_t scale, int64_t offset) {
  JoinPredicate p;
  p.form = Form::kAffine;
  p.left_col = std::move(left);
  p.right_col = std::move(right);
  p.scale = scale;
  p.offset = offset;
  return p;
}

JoinPredicate JoinPredicate::Modular(std::string left, std::string right,
                                     int64_t modulus) {
  JoinPredicate p;
  p.form = Form::kModular;
  p.left_col = std::move(left);
  p.right_col = std::move(right);
  p.modulus = modulus;
  return p;
}

bool JoinPredicate::Matches(int64_t left_value, int64_t right_value) const {
  if (form == Form::kAffine) {
    return left_value == scale * right_value + offset;
  }
  if (modulus == 0) return false;
  return left_value == Mod(right_value, modulus);
}

std::string JoinPredicate::ToString() const {
  std::ostringstream os;
  os << left_col << " = ";
  if (form == Form::kAffine) {
    if (scale != 1) os << scale << " * ";
    os << right_col;
    if (offset > 0) os << " + " << offset;
    if (offset < 0) os << " - " << -offset;
  } else {
    os << right_col << " mod " << modulus;
  }
  return os.str();
}

bool Equivalent(const JoinPredicate& a, const JoinPredicate& b) {
  if (a.left_col != b.left_col || a.right_col != b.right_col) return false;
  if (a.form != b.form) return false;
  if (a.form == JoinPredicate::Form::kAffine) {
    return a.scale == b.scale && a.offset == b.offset;
  }
  return a.modulus == b.modulus;
}

bool Subsumes(const JoinPredicate& prior, const JoinPredicate& query,
              int64_t domain_lo, int64_t domain_hi) {
  if (prior.left_col != query.left_col ||
      prior.right_col != query.right_col) {
    return false;
  }
  if (domain_lo > domain_hi) return true;  // empty domain: vacuous
  if (Equivalent(prior, query)) return true;

  using Form = JoinPredicate::Form;
  // The query's pairs are (f_query(r), r) for r in the domain; they are
  // subsumed iff f_query(r) also satisfies the prior for every r.
  if (prior.form == Form::kAffine && query.form == Form::kAffine) {
    // a_q r + b_q == a_p r + b_p for all r: either identical (handled) or
    // the lines intersect in at most one point — covered iff the domain
    // is that single point.
    if (prior.scale == query.scale) return false;  // parallel lines
    int64_t num = query.offset - prior.offset;
    int64_t den = prior.scale - query.scale;
    if (num % den != 0) return false;
    int64_t r0 = num / den;
    return domain_lo == domain_hi && r0 == domain_lo;
  }
  if (prior.form == Form::kAffine && query.form == Form::kModular) {
    // (r mod m, r) satisfies "l = a r + b" for all r in domain. With the
    // identity prior this means r mod m == r, i.e. domain ⊆ [0, m).
    if (prior.scale == 1 && prior.offset == 0) {
      return domain_lo >= 0 && domain_hi < query.modulus;
    }
    // Other affine priors: fall through to bounded enumeration.
  }
  if (prior.form == Form::kModular && query.form == Form::kAffine) {
    // (a r + b, r) satisfies "l = r mod m". Identity query: r == r mod m.
    if (query.scale == 1 && query.offset == 0) {
      return domain_lo >= 0 && domain_hi < prior.modulus;
    }
  }
  if (prior.form == Form::kModular && query.form == Form::kModular) {
    // r mod m_q == r mod m_p for all r in the domain: true when the
    // domain fits below both moduli.
    int64_t m = std::min(prior.modulus, query.modulus);
    if (domain_lo >= 0 && domain_hi < m) return true;
    // Also true when m_p divides nothing useful in general — enumerate.
  }
  // Bounded enumeration fallback: exact for small domains, conservative
  // (false) beyond the limit.
  if (domain_hi - domain_lo + 1 > kBruteForceLimit) return false;
  for (int64_t r = domain_lo; r <= domain_hi; ++r) {
    int64_t left;
    if (query.form == Form::kAffine) {
      left = query.scale * r + query.offset;
    } else {
      if (query.modulus == 0) return false;
      left = r % query.modulus < 0 ? r % query.modulus + query.modulus
                                   : r % query.modulus;
    }
    if (!prior.Matches(left, r)) return false;
  }
  return true;
}

}  // namespace eva::symbolic
