#ifndef EVA_SYMBOLIC_PREDICATE_IO_H_
#define EVA_SYMBOLIC_PREDICATE_IO_H_

#include <string>

#include "common/status.h"
#include "symbolic/predicate.h"

namespace eva::symbolic {

/// Serializes a predicate to one line of space-separated tokens, suitable
/// for embedding in the line-oriented persistence files (view_persistence
/// idiom). Dimension names and categorical values are percent-escaped so
/// arbitrary UDF signature keys round-trip. The encoding is lossless for
/// every constraint the algebra can produce (interval minus excluded
/// points, categorical include/exclude sets).
std::string EncodePredicate(const Predicate& p);

/// Inverse of EncodePredicate. Fails with InvalidArgument on malformed
/// input. DecodePredicate(EncodePredicate(p)) is semantically identical to
/// p (same conjuncts, same constraints).
Result<Predicate> DecodePredicate(const std::string& text);

}  // namespace eva::symbolic

#endif  // EVA_SYMBOLIC_PREDICATE_IO_H_
