#include "symbolic/interval.h"

#include <sstream>

namespace eva::symbolic {

namespace {

// Returns -1/0/1 comparing two lower bounds (-1 = a is looser / further
// left). Infinite lower bound is loosest.
int CompareLo(const Bound& a, const Bound& b) {
  if (a.infinite && b.infinite) return 0;
  if (a.infinite) return -1;
  if (b.infinite) return 1;
  if (a.value != b.value) return a.value < b.value ? -1 : 1;
  if (a.closed == b.closed) return 0;
  return a.closed ? -1 : 1;  // closed lower bound admits more
}

// Returns -1/0/1 comparing two upper bounds (1 = a is looser / further
// right). Infinite upper bound is loosest.
int CompareHi(const Bound& a, const Bound& b) {
  if (a.infinite && b.infinite) return 0;
  if (a.infinite) return 1;
  if (b.infinite) return -1;
  if (a.value != b.value) return a.value < b.value ? -1 : 1;
  if (a.closed == b.closed) return 0;
  return a.closed ? 1 : -1;  // closed upper bound admits more
}

}  // namespace

bool Interval::IsEmpty() const {
  if (lo_.infinite || hi_.infinite) return false;
  if (lo_.value > hi_.value) return true;
  if (lo_.value == hi_.value) return !(lo_.closed && hi_.closed);
  return false;
}

bool Interval::IsPoint() const {
  return !lo_.infinite && !hi_.infinite && lo_.value == hi_.value &&
         lo_.closed && hi_.closed;
}

bool Interval::Contains(double v) const {
  if (!lo_.infinite) {
    if (v < lo_.value) return false;
    if (v == lo_.value && !lo_.closed) return false;
  }
  if (!hi_.infinite) {
    if (v > hi_.value) return false;
    if (v == hi_.value && !hi_.closed) return false;
  }
  return true;
}

Interval Interval::Intersect(const Interval& other) const {
  Bound lo = CompareLo(lo_, other.lo_) >= 0 ? lo_ : other.lo_;
  Bound hi = CompareHi(hi_, other.hi_) <= 0 ? hi_ : other.hi_;
  return Interval(lo, hi);
}

bool Interval::IsSubsetOf(const Interval& other) const {
  if (IsEmpty()) return true;
  return CompareLo(lo_, other.lo_) >= 0 && CompareHi(hi_, other.hi_) <= 0;
}

bool Interval::operator==(const Interval& other) const {
  if (IsEmpty() && other.IsEmpty()) return true;
  return CompareLo(lo_, other.lo_) == 0 && CompareHi(hi_, other.hi_) == 0;
}

std::optional<Interval> Interval::UnionIfContiguous(
    const Interval& other) const {
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  // Order the two so that a has the smaller lower bound.
  const Interval& a = CompareLo(lo_, other.lo_) <= 0 ? *this : other;
  const Interval& b = CompareLo(lo_, other.lo_) <= 0 ? other : *this;
  // They can be merged iff a's upper bound reaches b's lower bound.
  bool touch = false;
  if (a.hi_.infinite || b.lo_.infinite) {
    touch = true;
  } else if (a.hi_.value > b.lo_.value) {
    touch = true;
  } else if (a.hi_.value == b.lo_.value && (a.hi_.closed || b.lo_.closed)) {
    touch = true;
  }
  if (!touch) return std::nullopt;
  Bound lo = CompareLo(a.lo_, b.lo_) <= 0 ? a.lo_ : b.lo_;
  Bound hi = CompareHi(a.hi_, b.hi_) >= 0 ? a.hi_ : b.hi_;
  return Interval(lo, hi);
}

Interval Interval::Hull(const Interval& other) const {
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  Bound lo = CompareLo(lo_, other.lo_) <= 0 ? lo_ : other.lo_;
  Bound hi = CompareHi(hi_, other.hi_) >= 0 ? hi_ : other.hi_;
  return Interval(lo, hi);
}

bool Interval::UnionWithPointGap(const Interval& other, double* gap) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  const Interval& a = CompareLo(lo_, other.lo_) <= 0 ? *this : other;
  const Interval& b = CompareLo(lo_, other.lo_) <= 0 ? other : *this;
  if (a.hi_.infinite || b.lo_.infinite) return false;
  if (a.hi_.value == b.lo_.value && !a.hi_.closed && !b.lo_.closed) {
    *gap = a.hi_.value;
    return true;
  }
  return false;
}

std::optional<Interval> Interval::DifferenceIfSingle(
    const Interval& other) const {
  if (IsEmpty()) return Empty();
  Interval inter = Intersect(other);
  if (inter.IsEmpty()) return *this;          // nothing removed
  if (IsSubsetOf(other)) return Empty();      // everything removed
  // `other` clips one side of this. Left remainder: [this.lo, other.lo).
  bool has_left = CompareLo(lo_, other.lo_) < 0;
  bool has_right = CompareHi(hi_, other.hi_) > 0;
  if (has_left && has_right) return std::nullopt;  // split in two
  if (has_left) {
    Bound hi = other.lo_;
    hi.closed = !hi.closed;  // complement of lower bound flips closedness
    return Interval(lo_, hi);
  }
  Bound lo = other.hi_;
  lo.closed = !lo.closed;
  return Interval(lo, hi_);
}

int Interval::AtomCount() const {
  if (IsFull()) return 0;
  if (IsEmpty()) return 1;  // "false" still counts as one formula
  if (IsPoint()) return 1;
  int n = 0;
  if (!lo_.infinite) ++n;
  if (!hi_.infinite) ++n;
  return n;
}

std::string Interval::ToString(const std::string& var) const {
  if (IsFull()) return "true";
  if (IsEmpty()) return "false";
  if (IsPoint()) return var + " = " + std::to_string(lo_.value);
  std::ostringstream os;
  bool first = true;
  if (!lo_.infinite) {
    os << var << (lo_.closed ? " >= " : " > ") << lo_.value;
    first = false;
  }
  if (!hi_.infinite) {
    if (!first) os << " AND ";
    os << var << (hi_.closed ? " <= " : " < ") << hi_.value;
  }
  return os.str();
}

}  // namespace eva::symbolic
