#include "symbolic/predicate.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace eva::symbolic {

bool Conjunct::Constrain(const std::string& dim,
                         const DimConstraint& constraint) {
  if (constraint.IsFull()) return true;
  auto it = dims_.find(dim);
  if (it == dims_.end()) {
    if (constraint.IsEmpty()) return false;
    dims_.emplace(dim, constraint);
    return true;
  }
  DimConstraint merged = it->second.Intersect(constraint);
  if (merged.IsEmpty()) return false;
  if (merged.IsFull()) {
    dims_.erase(it);
  } else {
    it->second = merged;
  }
  return true;
}

DimConstraint Conjunct::Get(const std::string& dim, DimKind kind) const {
  auto it = dims_.find(dim);
  if (it == dims_.end()) return DimConstraint::Full(kind);
  return it->second;
}

bool Conjunct::IsEmpty() const {
  for (const auto& [dim, c] : dims_) {
    if (c.IsEmpty()) return true;
  }
  return false;
}

std::optional<Conjunct> Conjunct::Intersect(const Conjunct& other) const {
  Conjunct out = *this;
  for (const auto& [dim, c] : other.dims_) {
    if (!out.Constrain(dim, c)) return std::nullopt;
  }
  return out;
}

bool Conjunct::IsSubsetOf(const Conjunct& other) const {
  for (const auto& [dim, oc] : other.dims_) {
    DimConstraint mine = Get(dim, oc.kind());
    if (!mine.IsSubsetOf(oc)) return false;
  }
  return true;
}

bool Conjunct::Equals(const Conjunct& other) const {
  if (dims_.size() != other.dims_.size()) return false;
  auto it = dims_.begin();
  auto jt = other.dims_.begin();
  for (; it != dims_.end(); ++it, ++jt) {
    if (it->first != jt->first || !it->second.Equals(jt->second)) {
      return false;
    }
  }
  return true;
}

bool Conjunct::Evaluate(const ValueLookup& lookup) const {
  for (const auto& [dim, c] : dims_) {
    if (!c.Contains(lookup(dim))) return false;
  }
  return true;
}

int Conjunct::AtomCount() const {
  int n = 0;
  for (const auto& [dim, c] : dims_) n += c.AtomCount();
  return n;
}

std::string Conjunct::ToString() const {
  if (dims_.empty()) return "true";
  std::ostringstream os;
  bool first = true;
  for (const auto& [dim, c] : dims_) {
    if (!first) os << " AND ";
    os << c.ToString(dim);
    first = false;
  }
  return os.str();
}

bool ReduceUnionConjunctives(const Conjunct& c1, const Conjunct& c2,
                             std::vector<Conjunct>* out) {
  if (c2.IsSubsetOf(c1)) {
    *out = {c1};
    return true;
  }
  if (c1.IsSubsetOf(c2)) {
    *out = {c2};
    return true;
  }
  // Union of constrained dimension names.
  std::set<std::string> dim_names;
  for (const auto& [d, c] : c1.dims()) dim_names.insert(d);
  for (const auto& [d, c] : c2.dims()) dim_names.insert(d);

  auto kind_of = [&](const std::string& d) {
    auto it = c1.dims().find(d);
    if (it != c1.dims().end()) return it->second.kind();
    return c2.dims().at(d).kind();
  };

  // Classify each dimension.
  std::vector<std::string> not_sub21;  // dims where c2.d ⊄ c1.d
  std::vector<std::string> not_sub12;  // dims where c1.d ⊄ c2.d
  std::vector<std::string> not_equal;
  for (const std::string& d : dim_names) {
    DimKind k = kind_of(d);
    DimConstraint a = c1.Get(d, k);
    DimConstraint b = c2.Get(d, k);
    if (!b.IsSubsetOf(a)) not_sub21.push_back(d);
    if (!a.IsSubsetOf(b)) not_sub12.push_back(d);
    if (!a.Equals(b)) not_equal.push_back(d);
  }

  // Attempts one direction: `small` ⊆ `big` in every dimension except
  // `free_dim`. Tries concatenation (when all the other dims are equal)
  // and then overlap carving (Fig. 2 case iii).
  auto try_reduce = [&](const Conjunct& big, const Conjunct& small,
                        const std::string& free_dim) -> bool {
    DimKind k = kind_of(free_dim);
    DimConstraint bigc = big.Get(free_dim, k);
    DimConstraint smallc = small.Get(free_dim, k);
    // Case ii: concatenation along free_dim requires equality elsewhere.
    if (not_equal.size() == 1 && not_equal[0] == free_dim) {
      if (auto merged = bigc.UnionIfSingle(smallc)) {
        Conjunct reduced;
        for (const auto& [d, c] : big.dims()) {
          if (d != free_dim) reduced.Constrain(d, c);
        }
        if (!merged->IsFull()) reduced.Constrain(free_dim, *merged);
        *out = {reduced};
        return true;
      }
    }
    // Case iii: carve big's range out of small along free_dim.
    if (auto diff = smallc.DifferenceIfSingle(bigc)) {
      if (diff->Equals(smallc)) return false;  // disjoint already
      if (diff->IsEmpty()) {
        *out = {big};
        return true;
      }
      Conjunct carved;
      for (const auto& [d, c] : small.dims()) {
        if (d != free_dim) carved.Constrain(d, c);
      }
      if (!carved.Constrain(free_dim, *diff)) {
        *out = {big};
        return true;
      }
      *out = {big, carved};
      return true;
    }
    return false;
  };

  if (not_sub21.size() == 1) {
    // c2 ⊆ c1 in all dims except not_sub21[0].
    if (try_reduce(c1, c2, not_sub21[0])) return true;
  }
  if (not_sub12.size() == 1) {
    if (try_reduce(c2, c1, not_sub12[0])) return true;
  }
  return false;
}

Predicate Predicate::True() {
  Predicate p;
  p.conjuncts_.push_back(Conjunct());
  return p;
}

Predicate Predicate::FromConjunct(Conjunct c) {
  Predicate p;
  p.AddConjunct(std::move(c));
  return p;
}

Predicate Predicate::Atom(const std::string& dim,
                          const DimConstraint& constraint) {
  Conjunct c;
  if (!c.Constrain(dim, constraint)) return False();
  return FromConjunct(std::move(c));
}

bool Predicate::IsTrue() const {
  for (const Conjunct& c : conjuncts_) {
    if (c.IsTrue()) return true;
  }
  return false;
}

void Predicate::AddConjunct(Conjunct c) {
  if (c.IsEmpty()) return;
  conjuncts_.push_back(std::move(c));
}

Result<Predicate> Predicate::And(const Predicate& a, const Predicate& b,
                                 const SymbolicBudget& budget) {
  Predicate out;
  for (const Conjunct& ca : a.conjuncts_) {
    for (const Conjunct& cb : b.conjuncts_) {
      if (auto inter = ca.Intersect(cb)) {
        out.AddConjunct(std::move(*inter));
        if (out.conjuncts_.size() > budget.max_conjuncts) {
          return Status::ResourceExhausted(
              "symbolic AND exceeded conjunct budget");
        }
      }
    }
  }
  out.Reduce(budget);
  return out;
}

Predicate Predicate::Or(const Predicate& a, const Predicate& b,
                        const SymbolicBudget& budget) {
  Predicate out = a;
  for (const Conjunct& c : b.conjuncts_) out.AddConjunct(c);
  out.Reduce(budget);
  return out;
}

Result<Predicate> Predicate::Not(const Predicate& p,
                                 const SymbolicBudget& budget) {
  if (p.IsFalse()) return True();
  Predicate acc = True();
  for (const Conjunct& ci : p.conjuncts_) {
    if (ci.IsTrue()) return False();
    // ¬ci = disjunction over its dimensions of the complemented constraint.
    Predicate not_ci;
    for (const auto& [dim, c] : ci.dims()) {
      for (const DimConstraint& piece : c.Complement()) {
        Conjunct pc;
        if (pc.Constrain(dim, piece)) not_ci.AddConjunct(std::move(pc));
      }
    }
    EVA_ASSIGN_OR_RETURN(acc, And(acc, not_ci, budget));
    if (acc.IsFalse()) return acc;
  }
  return acc;
}

Result<Predicate> Predicate::Inter(const Predicate& p1, const Predicate& p2,
                                   const SymbolicBudget& budget) {
  return And(p1, p2, budget);
}

Result<Predicate> Predicate::Diff(const Predicate& p1, const Predicate& p2,
                                  const SymbolicBudget& budget) {
  if (p1.IsFalse()) {
    Predicate out = p2;
    out.Reduce(budget);
    return out;
  }
  EVA_ASSIGN_OR_RETURN(Predicate not_p1, Not(p1, budget));
  return And(not_p1, p2, budget);
}

Predicate Predicate::Union(const Predicate& p1, const Predicate& p2,
                           const SymbolicBudget& budget) {
  return Or(p1, p2, budget);
}

bool Predicate::Reduce(const SymbolicBudget& budget) {
  // Normalize: drop unsatisfiable conjuncts; collapse to TRUE if present.
  std::vector<Conjunct> kept;
  for (Conjunct& c : conjuncts_) {
    if (c.IsEmpty()) continue;
    if (c.IsTrue()) {
      conjuncts_ = {Conjunct()};
      return true;
    }
    kept.push_back(std::move(c));
  }
  conjuncts_ = std::move(kept);
  // Dedupe syntactically equal conjuncts.
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    for (size_t j = conjuncts_.size(); j-- > i + 1;) {
      if (conjuncts_[i].Equals(conjuncts_[j])) {
        conjuncts_.erase(conjuncts_.begin() + static_cast<long>(j));
      }
    }
  }
  // Algorithm 1 step 3: repeatedly pop two conjunctives and reduce their
  // union, until no pair changes or the pass budget runs out.
  int pass = 0;
  bool changed = true;
  std::vector<Conjunct> replacement;
  while (changed && pass++ < budget.max_reduce_passes) {
    changed = false;
    for (size_t i = 0; i < conjuncts_.size() && !changed; ++i) {
      for (size_t j = i + 1; j < conjuncts_.size() && !changed; ++j) {
        if (ReduceUnionConjunctives(conjuncts_[i], conjuncts_[j],
                                    &replacement)) {
          conjuncts_[i] = replacement[0];
          if (replacement.size() == 2) {
            conjuncts_[j] = replacement[1];
          } else {
            conjuncts_.erase(conjuncts_.begin() + static_cast<long>(j));
          }
          changed = true;
        }
      }
    }
  }
  return !changed;
}

bool Predicate::UnionIncrementalInPlace(const Predicate& q,
                                        const SymbolicBudget& budget,
                                        bool* reached_fixpoint) {
  *reached_fixpoint = true;
  const std::vector<Conjunct> original = conjuncts_;
  const size_t base_n = conjuncts_.size();
  for (const Conjunct& c : q.conjuncts_) AddConjunct(c);
  if (conjuncts_.size() == base_n) return false;  // nothing satisfiable
  // Normalize exactly as Reduce would. A fixpoint base containing TRUE is
  // the singleton {TRUE}, so the collapse changes nothing in that case.
  for (const Conjunct& c : conjuncts_) {
    if (c.IsTrue()) {
      bool was_true = base_n == 1 && original[0].IsTrue();
      conjuncts_ = {Conjunct()};
      return !was_true;
    }
  }
  // Dedupe keeps the first occurrence; the base cells are pairwise
  // distinct at fixpoint (equal cells are mutual subsets and would have
  // been dropped), so only appended cells can be duplicates.
  std::vector<Conjunct> kept(conjuncts_.begin(),
                             conjuncts_.begin() + static_cast<long>(base_n));
  std::vector<uint8_t> dirty(base_n, 0);
  for (size_t j = base_n; j < conjuncts_.size(); ++j) {
    bool dup = false;
    for (size_t i = 0; i < kept.size() && !dup; ++i) {
      dup = kept[i].Equals(conjuncts_[j]);
    }
    if (!dup) {
      kept.push_back(std::move(conjuncts_[j]));
      dirty.push_back(1);
    }
  }
  conjuncts_ = std::move(kept);
  if (conjuncts_.size() == base_n) return false;  // every cell was a dup
  // The pairwise loop, skipping pairs of untouched cells: the base is at
  // fixpoint, so such a pair cannot reduce, and the first reducible pair
  // in scan order is the same one a full Reduce would find. Each applied
  // reduction marks its outputs dirty, mirroring the full loop's restart.
  int pass = 0;
  bool changed = true;
  std::vector<Conjunct> replacement;
  while (changed && pass++ < budget.max_reduce_passes) {
    changed = false;
    for (size_t i = 0; i < conjuncts_.size() && !changed; ++i) {
      for (size_t j = i + 1; j < conjuncts_.size() && !changed; ++j) {
        if (dirty[i] == 0 && dirty[j] == 0) continue;
        if (ReduceUnionConjunctives(conjuncts_[i], conjuncts_[j],
                                    &replacement)) {
          conjuncts_[i] = replacement[0];
          dirty[i] = 1;
          if (replacement.size() == 2) {
            conjuncts_[j] = replacement[1];
            dirty[j] = 1;
          } else {
            conjuncts_.erase(conjuncts_.begin() + static_cast<long>(j));
            dirty.erase(dirty.begin() + static_cast<long>(j));
          }
          changed = true;
        }
      }
    }
  }
  *reached_fixpoint = !changed;
  if (conjuncts_.size() == original.size()) {
    bool same = true;
    for (size_t i = 0; i < original.size() && same; ++i) {
      same = conjuncts_[i].Equals(original[i]);
    }
    if (same) return false;
  }
  return true;
}

bool Predicate::Evaluate(const ValueLookup& lookup) const {
  for (const Conjunct& c : conjuncts_) {
    if (c.Evaluate(lookup)) return true;
  }
  return false;
}

int Predicate::AtomCount() const {
  int n = 0;
  for (const Conjunct& c : conjuncts_) n += std::max(1, c.AtomCount());
  return n;
}

std::string Predicate::ToString() const {
  if (conjuncts_.empty()) return "false";
  std::ostringstream os;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i > 0) os << " OR ";
    os << "(" << conjuncts_[i].ToString() << ")";
  }
  return os.str();
}

}  // namespace eva::symbolic
