#include "symbolic/subtract.h"

#include "symbolic/cell_index.h"

namespace eva::symbolic {

std::vector<Conjunct> SubtractConjunct(const Conjunct& c, const Conjunct& w) {
  // Disjoint from w: nothing to carve. The hull comparison settles the
  // common case (eviction retracts frame-id ranges most coverage cells
  // never touch) without building the full intersection; a true
  // HullDisjoint implies Intersect returns nullopt, so both tests pick the
  // same branch.
  if (HullDisjoint(c, w)) return {c};
  if (!c.Intersect(w).has_value()) return {c};
  // Swallowed by w: nothing left.
  if (c.IsSubsetOf(w)) return {};

  std::vector<Conjunct> out;
  // `prefix` accumulates c ∧ (d_1 ∈ w.d_1) ∧ ... ∧ (d_{k-1} ∈ w.d_{k-1});
  // cell k adds one complement piece of w.d_k on top of it.
  Conjunct prefix = c;
  for (const auto& [dim, wd] : w.dims()) {
    for (const DimConstraint& piece : wd.Complement()) {
      Conjunct cell = prefix;
      if (cell.Constrain(dim, piece)) out.push_back(std::move(cell));
    }
    if (!prefix.Constrain(dim, wd)) break;  // remaining cells are empty
  }
  return out;
}

Result<Predicate> Subtract(const Predicate& p, const Predicate& v,
                           const SymbolicBudget& budget) {
  if (p.IsFalse() || v.IsFalse()) return p;

  std::vector<Conjunct> pieces(p.conjuncts().begin(), p.conjuncts().end());
  for (const Conjunct& w : v.conjuncts()) {
    std::vector<Conjunct> next;
    for (const Conjunct& c : pieces) {
      std::vector<Conjunct> carved = SubtractConjunct(c, w);
      next.insert(next.end(), std::make_move_iterator(carved.begin()),
                  std::make_move_iterator(carved.end()));
      if (next.size() > budget.max_conjuncts) {
        return Status::ResourceExhausted(
            "predicate subtraction exceeded conjunct budget");
      }
    }
    pieces = std::move(next);
    if (pieces.empty()) break;
  }

  Predicate result;
  for (Conjunct& c : pieces) result.AddConjunct(std::move(c));
  result.Reduce(budget);
  return result;
}

}  // namespace eva::symbolic
