#ifndef EVA_SYMBOLIC_CELL_INDEX_H_
#define EVA_SYMBOLIC_CELL_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "symbolic/predicate.h"

namespace eva::symbolic {

struct PruneStats {
  /// Coverage cells skipped wholesale because their hull provably misses
  /// the query cell (the brute-force engine would have computed an empty
  /// Intersect for them).
  int64_t cells_pruned = 0;
};

/// True when the two conjuncts provably have an empty intersection from
/// hull comparison alone: some shared dimension carries disjoint numeric
/// intervals, or disjoint categorical include-sets. Exact-negative — a
/// true return implies a.Intersect(b) == nullopt, so callers may skip the
/// full intersection without changing any result.
bool HullDisjoint(const Conjunct& a, const Conjunct& b);

/// Immutable per-dimension interval index over one stored predicate's
/// cells: for every numeric dimension, the cells constraining it sorted by
/// finite lower and upper endpoint. A query hull then clears a prefix and
/// a suffix of candidates with two binary searches instead of intersecting
/// every cell. Built lazily per coverage epoch and shared (the engine
/// copies its UdfManager for plain EXPLAIN).
class CellIndex {
 public:
  static std::shared_ptr<const CellIndex> Build(const Predicate& p);

  size_t num_cells() const { return cell_fps_.size(); }
  uint64_t cell_fingerprint(size_t i) const { return cell_fps_[i]; }
  /// Cells (indices into the indexed predicate) whose structural
  /// fingerprint equals `fp`; nullptr when none. The O(1) duplicate-cell
  /// prefilter — callers still confirm with Conjunct::Equals.
  const std::vector<uint32_t>* CellsWithFingerprint(uint64_t fp) const;

  /// Clears candidate[i] for every cell whose hull provably misses `q`.
  /// `candidate` must hold num_cells() ones on entry. Returns the number
  /// of cells newly pruned. Dimensions `q` does not constrain, categorical
  /// dimensions, and infinite hull sides never prune — conservative by
  /// construction, so surviving candidates are a superset of the cells the
  /// brute-force engine would find intersecting.
  size_t FilterCandidates(const Conjunct& q,
                          std::vector<uint8_t>* candidate) const;

 private:
  struct Endpoint {
    double value = 0;
    bool closed = true;
    uint32_t cell = 0;
  };
  struct DimEntries {
    std::vector<Endpoint> by_lo;  // cells with a finite lower bound, asc
    std::vector<Endpoint> by_hi;  // cells with a finite upper bound, asc
  };

  std::unordered_map<uint32_t, DimEntries> dims_;  // keyed by DimDict id
  std::vector<uint64_t> cell_fps_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> fp_cells_;
};

/// Predicate::And(a, b) with the (ca, cb) pairs whose hulls are disjoint
/// skipped via `a_index`. Bit-identical to the brute-force product: pruned
/// pairs contribute no conjunct there either, so the surviving adds, the
/// budget check sequence, and the final Reduce all see the same input.
/// Falls back to Predicate::And when `a_index` is null.
Result<Predicate> IndexedAnd(const Predicate& a, const CellIndex* a_index,
                             const Predicate& b, const SymbolicBudget& budget,
                             PruneStats* stats = nullptr);

}  // namespace eva::symbolic

#endif  // EVA_SYMBOLIC_CELL_INDEX_H_
