#include "symbolic/stats.h"

#include <algorithm>

namespace eva::symbolic {

double ConjunctSelectivity(const Conjunct& conjunct,
                           const StatsProvider& stats) {
  double s = 1.0;
  for (const auto& [dim, c] : conjunct.dims()) {
    s *= std::clamp(stats.ConstraintSelectivity(dim, c), 0.0, 1.0);
  }
  return s;
}

double PredicateSelectivity(const Predicate& predicate,
                            const StatsProvider& stats) {
  const auto& cs = predicate.conjuncts();
  double total = 0.0;
  for (const Conjunct& c : cs) total += ConjunctSelectivity(c, stats);
  for (size_t i = 0; i < cs.size(); ++i) {
    for (size_t j = i + 1; j < cs.size(); ++j) {
      if (auto inter = cs[i].Intersect(cs[j])) {
        total -= ConjunctSelectivity(*inter, stats);
      }
    }
  }
  return std::clamp(total, 0.0, 1.0);
}

}  // namespace eva::symbolic
