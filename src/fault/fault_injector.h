#ifndef EVA_FAULT_FAULT_INJECTOR_H_
#define EVA_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace eva::fault {

/// What a triggered fault rule does at its point (docs/RELIABILITY.md §3).
enum class FaultAction {
  kNone,        // no rule fired — proceed normally
  kFail,        // the operation returns a Status error (permanent)
  kShortWrite,  // fs only: write a truncated file, skip fsync, report OK —
                // the silent torn write the manifest CRC must catch
  kError,       // transient error — UDF evaluations retry with backoff
  kCrash,       // simulated process death: the injector halts; every later
                // filesystem operation fails with no side effect, exactly
                // as if the process had died at this point
  kCrashExit,   // real process death: std::_Exit(137) at the point (shell
                // kill-and-recover demos; never used by in-process tests)
};

const char* FaultActionName(FaultAction action);

/// One schedule entry: fire `action` at points matching `pattern` (a glob,
/// '*' matches any run including empty) on occurrences [first, last] of
/// that exact point name (1-based; last < 0 means open-ended).
struct FaultRule {
  FaultAction action = FaultAction::kNone;
  std::string pattern;
  int64_t first = 1;
  int64_t last = 1;
};

/// A parsed fault schedule. Grammar (see docs/RELIABILITY.md):
///
///   schedule := entry (';' entry)*
///   entry    := action '@' pattern ['#' occ]
///   action   := 'crash' | 'crash-exit' | 'fail' | 'shortwrite' | 'error'
///   occ      := N | N-M | N- | '*'          (default: 1 — first hit only)
///
/// e.g. "crash@fs.rename:MANIFEST#1" or "error@udf:CarType:*#1-2".
struct FaultSchedule {
  std::vector<FaultRule> rules;
  std::string text;  // original schedule text, for display

  bool empty() const { return rules.empty(); }
};

Result<FaultSchedule> ParseFaultSchedule(const std::string& text);

/// One consulted point, for recording mode and the shell's .faults listing.
struct FaultHit {
  std::string point;
  int64_t occurrence = 0;  // 1-based per exact point name
  FaultAction action = FaultAction::kNone;
};

/// Deterministic fault injector. Code under test consults `At(point)` at
/// named fault points; the injector counts occurrences PER EXACT POINT NAME
/// and fires the first rule whose pattern matches and whose occurrence
/// range contains the count. Because counters are keyed by the full point
/// name (e.g. "udf:CarType:17:3"), decisions are independent of worker
/// interleaving — the same schedule fires the same faults at any thread
/// count, which is what makes the differential-oracle tests meaningful.
///
/// After a kCrash fires the injector is `halted()`: every later At() (and
/// therefore every FaultFs operation) reports kCrash with no side effects,
/// modeling the rest of the process lifetime after the simulated death.
///
/// Recording mode logs every consulted point without firing anything; the
/// crash-matrix test uses one recorded save to enumerate the exact points
/// it then crashes one by one.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultSchedule schedule)
      : schedule_(std::move(schedule)) {}

  /// Cheap activity probe — call sites skip building point names (and keep
  /// ExecContext::faults null) when neither rules nor recording are on.
  bool active() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recording_ || !schedule_.rules.empty();
  }

  /// Consults the schedule at `point`. Thread-safe.
  FaultAction At(const std::string& point);

  void set_recording(bool on) {
    std::lock_guard<std::mutex> lock(mu_);
    recording_ = on;
  }

  bool halted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return halted_;
  }

  /// Replaces the schedule and clears all counters / the halt latch.
  void SetSchedule(FaultSchedule schedule);
  /// Clears occurrence counters, the hit log, and the halt latch, keeping
  /// the schedule (re-arm between runs).
  void Reset();

  std::string schedule_text() const {
    std::lock_guard<std::mutex> lock(mu_);
    return schedule_.text;
  }

  /// Every point consulted since the last Reset, in consultation order
  /// (driver-thread reads only, like ViewStore::views()).
  std::vector<FaultHit> hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }

  /// Faults fired (non-kNone decisions) since the last Reset.
  int64_t fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }

  /// Distinct points consulted since the last Reset.
  int64_t points_consulted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(counts_.size());
  }

 private:
  mutable std::mutex mu_;
  FaultSchedule schedule_;
  bool recording_ = false;
  bool halted_ = false;
  int64_t fired_ = 0;
  std::unordered_map<std::string, int64_t> counts_;  // point -> occurrences
  std::vector<FaultHit> hits_;
};

/// Glob match with '*' wildcards only (no character classes). Exposed for
/// tests.
bool GlobMatch(const std::string& pattern, const std::string& text);

}  // namespace eva::fault

#endif  // EVA_FAULT_FAULT_INJECTOR_H_
