#include "fault/fault_fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace eva::fault {

namespace {

namespace stdfs = std::filesystem;

std::string Basename(const std::string& path) {
  return stdfs::path(path).filename().string();
}

Status CrashedAt(const char* op, const std::string& path) {
  return Status::Internal(std::string("injected crash at ") + op + ":" +
                          Basename(path));
}

// Best-effort directory fsync so a committed rename survives power loss.
// Failure is ignored: some filesystems refuse to fsync directories, and
// the simulation's crash model is the injector, not real power cuts.
void SyncDir(const std::string& path) {
  std::string dir = stdfs::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

Status WriteRaw(const std::string& path, const char* data, size_t len,
                bool sync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  size_t written = 0;
  while (written < len) {
    ssize_t n = ::write(fd, data + written, len - written);
    if (n < 0) {
      ::close(fd);
      return Status::Internal("write failed for " + path);
    }
    written += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("fsync failed for " + path);
  }
  if (::close(fd) != 0) {
    return Status::Internal("close failed for " + path);
  }
  return Status::OK();
}

Status AppendRaw(const std::string& path, const char* data, size_t len,
                 bool sync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open " + path + " for appending");
  }
  size_t written = 0;
  while (written < len) {
    ssize_t n = ::write(fd, data + written, len - written);
    if (n < 0) {
      ::close(fd);
      return Status::Internal("append failed for " + path);
    }
    written += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("fsync failed for " + path);
  }
  if (::close(fd) != 0) {
    return Status::Internal("close failed for " + path);
  }
  return Status::OK();
}

}  // namespace

FaultAction FaultFs::Consult(const char* op, const std::string& path) {
  if (injector_ == nullptr) return FaultAction::kNone;
  return injector_->At(std::string(op) + ":" + Basename(path));
}

Status FaultFs::CreateDirs(const std::string& dir) {
  switch (Consult("fs.mkdir", dir)) {
    case FaultAction::kCrash:
      return CrashedAt("fs.mkdir", dir);
    case FaultAction::kFail:
    case FaultAction::kError:
      return Status::Internal("injected mkdir failure for " + dir);
    default:
      break;
  }
  std::error_code ec;
  stdfs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + dir + ": " +
                            ec.message());
  }
  return Status::OK();
}

Status FaultFs::WriteFile(const std::string& path,
                          const std::string& contents) {
  switch (Consult("fs.write", path)) {
    case FaultAction::kCrash:
      return CrashedAt("fs.write", path);
    case FaultAction::kFail:
    case FaultAction::kError:
      return Status::Internal("injected write failure for " + path);
    case FaultAction::kShortWrite:
      // The torn write: half the bytes land, no fsync, and the caller is
      // told everything went fine. Only a checksum can catch this.
      return WriteRaw(path, contents.data(), contents.size() / 2,
                      /*sync=*/false);
    default:
      break;
  }
  return WriteRaw(path, contents.data(), contents.size(), /*sync=*/true);
}

Status FaultFs::AppendFile(const std::string& path, const std::string& bytes) {
  switch (Consult("fs.append", path)) {
    case FaultAction::kCrash:
      return CrashedAt("fs.append", path);
    case FaultAction::kFail:
    case FaultAction::kError:
      return Status::Internal("injected append failure for " + path);
    case FaultAction::kShortWrite:
      // The torn tail: half the batch lands, no fsync, and the caller is
      // told the commit succeeded. Replay must truncate at the first bad
      // CRC frame and never surface the partial suffix.
      return AppendRaw(path, bytes.data(), bytes.size() / 2,
                       /*sync=*/false);
    default:
      break;
  }
  return AppendRaw(path, bytes.data(), bytes.size(), /*sync=*/true);
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  switch (Consult("fs.rename", to)) {
    case FaultAction::kCrash:
      return CrashedAt("fs.rename", to);
    case FaultAction::kFail:
    case FaultAction::kError:
    case FaultAction::kShortWrite:
      return Status::Internal("injected rename failure for " + to);
    default:
      break;
  }
  std::error_code ec;
  stdfs::rename(from, to, ec);
  if (ec) {
    return Status::Internal("cannot rename " + from + " -> " + to + ": " +
                            ec.message());
  }
  SyncDir(to);
  return Status::OK();
}

Status FaultFs::Remove(const std::string& path) {
  switch (Consult("fs.remove", path)) {
    case FaultAction::kCrash:
      return CrashedAt("fs.remove", path);
    case FaultAction::kFail:
    case FaultAction::kError:
    case FaultAction::kShortWrite:
      return Status::Internal("injected remove failure for " + path);
    default:
      break;
  }
  std::error_code ec;
  stdfs::remove(path, ec);
  if (ec) {
    return Status::Internal("cannot remove " + path + ": " + ec.message());
  }
  return Status::OK();
}

Result<std::string> FaultFs::ReadFile(const std::string& path) {
  switch (Consult("fs.read", path)) {
    case FaultAction::kCrash:
      return CrashedAt("fs.read", path);
    case FaultAction::kFail:
    case FaultAction::kError:
    case FaultAction::kShortWrite:
      return Status::Internal("injected read failure for " + path);
    default:
      break;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("read failed for " + path);
  }
  return buf.str();
}

}  // namespace eva::fault
