#ifndef EVA_FAULT_FAULT_FS_H_
#define EVA_FAULT_FAULT_FS_H_

#include <string>

#include "common/status.h"
#include "fault/fault_injector.h"

namespace eva::fault {

/// Thin filesystem shim the persistence layer routes every durable
/// operation through. Each operation consults the injector at a named
/// point before touching the disk:
///
///   fs.mkdir:<basename>    CreateDirs
///   fs.write:<basename>    WriteFile (tmp files included)
///   fs.append:<basename>   AppendFile (the WAL's group-commit write)
///   fs.rename:<basename>   Rename (basename of the destination)
///   fs.remove:<basename>   Remove
///   fs.read:<basename>     ReadFile
///
/// With a null (or inactive) injector every call is a transparent
/// pass-through. Once the injector is halted (a kCrash fired) every call
/// fails without side effects — the process is "dead" from that point on,
/// which is what lets the crash-matrix test simulate a kill at every
/// enumerated point inside one test process.
class FaultFs {
 public:
  explicit FaultFs(FaultInjector* injector = nullptr)
      : injector_(injector) {}

  Status CreateDirs(const std::string& dir);

  /// Writes `contents` to `path`, fsyncs the file, and closes it. A
  /// kShortWrite fault writes roughly half the bytes, skips the fsync, and
  /// still reports OK — the silent torn write checksums must catch.
  Status WriteFile(const std::string& path, const std::string& contents);

  /// Appends `bytes` to `path` (creating it if absent), fsyncs, and
  /// closes. This is the WAL's commit primitive: no tmp file, no rename. A
  /// kShortWrite fault appends roughly half the bytes, skips the fsync,
  /// and still reports OK — the torn tail the CRC framing must catch.
  Status AppendFile(const std::string& path, const std::string& bytes);

  /// Atomic rename, then a best-effort fsync of the destination directory
  /// so the rename itself is durable.
  Status Rename(const std::string& from, const std::string& to);

  Status Remove(const std::string& path);

  Result<std::string> ReadFile(const std::string& path);

  FaultInjector* injector() const { return injector_; }
  bool halted() const { return injector_ != nullptr && injector_->halted(); }

 private:
  /// Consults the injector at "<op>:<basename of path>".
  FaultAction Consult(const char* op, const std::string& path);

  FaultInjector* injector_;
};

}  // namespace eva::fault

#endif  // EVA_FAULT_FAULT_FS_H_
