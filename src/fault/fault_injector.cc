#include "fault/fault_injector.h"

#include <cstdlib>

#include "common/num_parse.h"

namespace eva::fault {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

Result<FaultAction> ParseAction(const std::string& name) {
  if (name == "crash") return FaultAction::kCrash;
  if (name == "crash-exit") return FaultAction::kCrashExit;
  if (name == "fail") return FaultAction::kFail;
  if (name == "shortwrite") return FaultAction::kShortWrite;
  if (name == "error") return FaultAction::kError;
  return Status::InvalidArgument("unknown fault action: " + name);
}

// occ := N | N-M | N- | '*'
Status ParseOccurrence(const std::string& occ, FaultRule* rule) {
  if (occ == "*") {
    rule->first = 1;
    rule->last = -1;
    return Status::OK();
  }
  size_t dash = occ.find('-');
  if (dash == std::string::npos) {
    int64_t n = 0;
    if (!ParseInt64(occ, &n) || n < 1) {
      return Status::InvalidArgument("bad fault occurrence: " + occ);
    }
    rule->first = rule->last = n;
    return Status::OK();
  }
  int64_t first = 0;
  if (!ParseInt64(occ.substr(0, dash), &first) || first < 1) {
    return Status::InvalidArgument("bad fault occurrence: " + occ);
  }
  rule->first = first;
  std::string rest = occ.substr(dash + 1);
  if (rest.empty()) {
    rule->last = -1;
    return Status::OK();
  }
  int64_t last = 0;
  if (!ParseInt64(rest, &last) || last < first) {
    return Status::InvalidArgument("bad fault occurrence: " + occ);
  }
  rule->last = last;
  return Status::OK();
}

}  // namespace

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kFail:
      return "fail";
    case FaultAction::kShortWrite:
      return "shortwrite";
    case FaultAction::kError:
      return "error";
    case FaultAction::kCrash:
      return "crash";
    case FaultAction::kCrashExit:
      return "crash-exit";
  }
  return "none";
}

Result<FaultSchedule> ParseFaultSchedule(const std::string& text) {
  FaultSchedule schedule;
  schedule.text = Trim(text);
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(';', start);
    std::string entry = Trim(end == std::string::npos
                                 ? text.substr(start)
                                 : text.substr(start, end - start));
    if (!entry.empty()) {
      size_t at = entry.find('@');
      if (at == std::string::npos) {
        return Status::InvalidArgument(
            "fault entry missing '@pattern': " + entry);
      }
      FaultRule rule;
      EVA_ASSIGN_OR_RETURN(rule.action, ParseAction(Trim(entry.substr(0, at))));
      std::string rest = Trim(entry.substr(at + 1));
      size_t hash = rest.rfind('#');
      if (hash != std::string::npos) {
        EVA_RETURN_IF_ERROR(ParseOccurrence(Trim(rest.substr(hash + 1)), &rule));
        rest = Trim(rest.substr(0, hash));
      }
      if (rest.empty()) {
        return Status::InvalidArgument("empty fault point pattern: " + entry);
      }
      rule.pattern = rest;
      schedule.rules.push_back(std::move(rule));
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return schedule;
}

bool GlobMatch(const std::string& pattern, const std::string& text) {
  // Iterative '*' matcher with backtracking to the last star.
  size_t p = 0, t = 0, star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

FaultAction FaultInjector::At(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (halted_) return FaultAction::kCrash;
  int64_t occurrence = ++counts_[point];
  FaultAction action = FaultAction::kNone;
  for (const FaultRule& rule : schedule_.rules) {
    if (occurrence < rule.first) continue;
    if (rule.last >= 0 && occurrence > rule.last) continue;
    if (!GlobMatch(rule.pattern, point)) continue;
    action = rule.action;
    break;
  }
  if (recording_) hits_.push_back({point, occurrence, action});
  if (action != FaultAction::kNone) ++fired_;
  if (action == FaultAction::kCrashExit) {
    // Real process death for shell kill-and-recover demos. In-process
    // tests use kCrash, which halts the injector instead.
    std::_Exit(137);
  }
  if (action == FaultAction::kCrash) halted_ = true;
  return action;
}

void FaultInjector::SetSchedule(FaultSchedule schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_ = std::move(schedule);
  counts_.clear();
  hits_.clear();
  halted_ = false;
  fired_ = 0;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
  hits_.clear();
  halted_ = false;
  fired_ = 0;
}

}  // namespace eva::fault
