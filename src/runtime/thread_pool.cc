#include "runtime/thread_pool.h"

#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "obs/profiler.h"

namespace eva::runtime {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 0) num_threads = 0;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Enqueue(size_t worker, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(workers_[worker]->mu);
    workers_[worker]->tasks.push_back(std::move(task));
  }
  {
    // The increment must happen under wake_mu_: a worker between its
    // predicate check and blocking still holds the mutex, so publishing
    // the new pending count here makes the subsequent notify un-losable.
    std::lock_guard<std::mutex> lock(wake_mu_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  size_t w = static_cast<size_t>(
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size());
  Enqueue(w, std::move(task));
}

void ThreadPool::SubmitTo(int worker, std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  size_t w = static_cast<size_t>(worker) % workers_.size();
  Enqueue(w, std::move(task));
}

bool ThreadPool::RunOneTask(size_t self) {
  std::function<void()> task;
  size_t n = workers_.size();
  // Own deque first, from the back (most recently pushed).
  {
    Worker& own = *workers_[self % n];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  // Steal from the front of the other deques, oldest task first.
  if (!task) {
    for (size_t off = 1; off < n && !task; ++off) {
      Worker& victim = *workers_[(self + off) % n];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  // Permanent profiler tag: the sampling profiler (obs/profiler.h)
  // attributes worker-thread samples to "runtime" (nested UDF scopes stack
  // beneath it). Two relaxed stores at thread start — free thereafter.
  obs::ProfScope prof("runtime");
  while (true) {
    if (RunOneTask(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_relaxed) <= 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<int64_t> done{0};
    std::vector<std::exception_ptr> errors;
  };
  auto state = std::make_shared<State>();
  state->errors.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Submit([state, n, i, &body] {
      try {
        body(i);
      } catch (...) {
        state->errors[static_cast<size_t>(i)] = std::current_exception();
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == n;
    });
  }
  for (std::exception_ptr& e : state->errors) {
    if (e) std::rethrow_exception(e);
  }
}

int ThreadPool::ResolveThreads(int requested) {
  if (requested >= 1) return requested;
  const char* env = std::getenv("EVA_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  return 1;
}

}  // namespace eva::runtime
