#include "runtime/morsel.h"

#include <algorithm>
#include <chrono>

namespace eva::runtime {

std::vector<Morsel> SplitMorsels(int64_t n, int64_t morsel_rows) {
  std::vector<Morsel> out;
  if (n <= 0) return out;
  if (morsel_rows <= 0) morsel_rows = n;
  out.reserve(static_cast<size_t>((n + morsel_rows - 1) / morsel_rows));
  for (int64_t begin = 0; begin < n; begin += morsel_rows) {
    out.push_back({begin, std::min(n, begin + morsel_rows)});
  }
  return out;
}

void SpinFor(double us) {
  if (us <= 0) return;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::micro>(us));
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy loop: emulated model compute must occupy a core, not yield it.
  }
}

}  // namespace eva::runtime
