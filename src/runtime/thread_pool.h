#ifndef EVA_RUNTIME_THREAD_POOL_H_
#define EVA_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace eva::runtime {

/// Work-stealing thread pool (zero external dependencies).
///
/// Topology: one deque per worker. A submitted task lands on one worker's
/// deque (round-robin, or pinned via SubmitTo); the owning worker pops from
/// the back (LIFO, cache-friendly) while idle workers steal from the front
/// of other workers' deques (FIFO, oldest-first — the classic morsel-driven
/// arrangement). Deques are lock-protected rather than lock-free
/// (chase-lev); every queue operation is far cheaper than the morsels it
/// schedules, so the simpler protocol wins on auditability.
///
/// `num_threads == 0` constructs an inline pool: no threads are spawned and
/// ParallelFor degenerates to a plain loop on the caller — byte-for-byte
/// the pre-runtime serial behavior. The engine only builds a pool when its
/// resolved thread count exceeds 1.
///
/// Thread-safety: Submit/SubmitTo/ParallelFor may be called from any thread
/// (including worker threads, though the engine never nests). Tasks
/// submitted through Submit/SubmitTo must not throw — there is no channel
/// to report their exception and std::terminate would follow, exactly as
/// with a raw std::thread. ParallelFor bodies MAY throw: the first
/// exception in index order is rethrown on the calling thread once every
/// index has finished.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` on the next worker (round-robin). Runs inline when the
  /// pool has no workers.
  void Submit(std::function<void()> task);

  /// Enqueues `task` on a specific worker's deque. Used by tests to create
  /// deliberate skew and observe stealing; `worker` is taken modulo the
  /// worker count. Runs inline when the pool has no workers.
  void SubmitTo(int worker, std::function<void()> task);

  /// Runs body(0) .. body(n-1), blocking until all complete. Indices are
  /// distributed round-robin across the worker deques; idle workers steal,
  /// so skewed bodies still balance. With no workers the loop runs inline
  /// on the caller in index order.
  ///
  /// Exceptions thrown by `body` are captured per index; after all indices
  /// finish (an exception only skips its own index's remaining work), the
  /// lowest-index exception is rethrown on the calling thread.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

  /// Resolves an engine-facing thread-count request: values >= 1 are taken
  /// verbatim; 0 means "use $EVA_THREADS if set and valid, else 1".
  static int ResolveThreads(int requested);

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops one task (own back first, then steals the front of the others,
  /// scanning from self+1) and runs it. Returns false when every deque was
  /// empty.
  bool RunOneTask(size_t self);
  void Enqueue(size_t worker, std::function<void()> task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_worker_{0};
  std::atomic<int64_t> pending_{0};
};

}  // namespace eva::runtime

#endif  // EVA_RUNTIME_THREAD_POOL_H_
