#ifndef EVA_RUNTIME_MORSEL_H_
#define EVA_RUNTIME_MORSEL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/sim_clock.h"

namespace eva::runtime {

/// Half-open row range [begin, end) of one operator input batch. Morsels
/// are the unit of parallel work: each one is evaluated by a single worker
/// with morsel-local accounting, then merged back in morsel order.
struct Morsel {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t size() const { return end - begin; }
};

/// Partitions [0, n) into morsels of at most `morsel_rows` rows. The split
/// depends ONLY on (n, morsel_rows) — never on the worker count — which is
/// what makes parallel runs reproducible at any thread count.
std::vector<Morsel> SplitMorsels(int64_t n, int64_t morsel_rows);

/// Deterministic simulated-cost sink for one morsel.
///
/// Workers never touch the engine's shared SimClock. Each morsel records
/// its (category, ms) charges in evaluation order into a private ChargeLog;
/// after the batch completes, the driver thread replays the logs morsel by
/// morsel. Replay issues the *same sequence of SimClock::Charge calls, in
/// the same order, with the same arguments* as a serial run would, so the
/// accumulated floating-point state of the clock is bit-identical at every
/// thread count — the invariant the paper-figure benchmarks assert.
class ChargeLog {
 public:
  void Charge(CostCategory category, double ms) {
    charges_.emplace_back(category, ms);
  }

  /// Applies the recorded charges to `clock` in recording order.
  void ReplayInto(SimClock* clock) const {
    for (const auto& [category, ms] : charges_) clock->Charge(category, ms);
  }

  bool empty() const { return charges_.empty(); }
  size_t size() const { return charges_.size(); }
  void Clear() { charges_.clear(); }

 private:
  std::vector<std::pair<CostCategory, double>> charges_;
};

/// Busy-waits for `us` microseconds of host wall time; no-op for us <= 0.
/// Stands in for the real per-invocation model compute that the simulated
/// UDFs do not pay, so wall-clock scaling benchmarks exercise the runtime
/// under a realistic CPU profile (see bench_parallel_scaling).
void SpinFor(double us);

}  // namespace eva::runtime

#endif  // EVA_RUNTIME_MORSEL_H_
