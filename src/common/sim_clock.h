#ifndef EVA_COMMON_SIM_CLOCK_H_
#define EVA_COMMON_SIM_CLOCK_H_

#include <array>
#include <cstdint>
#include <string>

namespace eva {

/// Cost categories matching the paper's time-breakdown reporting
/// (Table 4 and Fig. 6): UDF evaluation, reading video frames, reading
/// materialized views, materializing new results, optimizer time, and
/// everything else (joins, hashing overhead of FunCache, etc.).
enum class CostCategory {
  kUdf = 0,
  kReadVideo,
  kReadView,
  kMaterialize,
  kOptimize,
  kHashing,   // FunCache per-invocation input hashing
  kOther,
  kIngest,    // streaming frame arrival: decode + catalog append (src/ingest)
  kNumCategories,
};

const char* CostCategoryName(CostCategory c);

/// Deterministic simulated clock.
///
/// The paper's headline numbers are wall-clock times dominated by
/// deep-learning inference on a GPU server. This reproduction replaces the
/// models with simulated equivalents (see DESIGN.md §2) that *charge the
/// paper's measured per-tuple costs* to this clock, so every experiment is
/// deterministic and machine-independent while preserving the shapes of the
/// reported results. All charges are in milliseconds of simulated time.
class SimClock {
 public:
  SimClock() { Reset(); }

  void Reset();

  /// Adds `ms` of simulated time under `category`.
  void Charge(CostCategory category, double ms);

  /// Simulated time accumulated in one category since construction/Reset.
  double Elapsed(CostCategory category) const;

  /// Total simulated time across all categories.
  double TotalMs() const;

  /// Snapshot of per-category totals; subtracting two snapshots yields the
  /// breakdown of the work done in between.
  struct Snapshot {
    std::array<double, static_cast<size_t>(CostCategory::kNumCategories)>
        ms{};
    double Total() const;
    Snapshot operator-(const Snapshot& other) const;
    double operator[](CostCategory c) const {
      return ms[static_cast<size_t>(c)];
    }
  };
  Snapshot TakeSnapshot() const;

  std::string ToString() const;

 private:
  std::array<double, static_cast<size_t>(CostCategory::kNumCategories)> ms_{};
};

}  // namespace eva

#endif  // EVA_COMMON_SIM_CLOCK_H_
