#ifndef EVA_COMMON_STATUS_H_
#define EVA_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace eva {

/// Error categories used across the system. Mirrors the coarse error classes
/// a DBMS front end needs to distinguish (parse vs. bind vs. execution).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kBindError,       // name resolution / catalog lookup failures
  kNotFound,
  kAlreadyExists,
  kNotImplemented,
  kInternal,
  kResourceExhausted,  // symbolic-analysis budget exceeded, etc.
  kFailedPrecondition,  // operation needs quiescence / an open session
};

/// Returns a short human-readable name for a StatusCode ("ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight status object used instead of exceptions throughout the
/// public API (Arrow/RocksDB idiom). A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status (Arrow idiom).
template <typename T>
class Result {
 public:
  // Implicit conversions from both T and Status are intentional: they make
  // `return value;` and `return Status::...;` both work in factory functions.
  Result(T value) : data_(std::move(value)) {}                // NOLINT
  Result(Status status) : data_(std::move(status)) {}         // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }
  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }
  T& value() { return std::get<T>(data_); }
  const T& value() const { return std::get<T>(data_); }
  T&& MoveValue() { return std::move(std::get<T>(data_)); }

  T ValueOr(T fallback) const { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace eva

/// Propagates a non-OK Status from an expression that yields a Status.
#define EVA_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::eva::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result<T> expression and either assigns its value to `lhs`
/// or propagates the error Status.
#define EVA_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                              \
  if (!var.ok()) return var.status();              \
  lhs = var.MoveValue();

#define EVA_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define EVA_ASSIGN_OR_RETURN_NAME(x, y) EVA_ASSIGN_OR_RETURN_CONCAT(x, y)
#define EVA_ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  EVA_ASSIGN_OR_RETURN_IMPL(EVA_ASSIGN_OR_RETURN_NAME(_res_, __COUNTER__), \
                            lhs, rexpr)

#endif  // EVA_COMMON_STATUS_H_
