#ifndef EVA_COMMON_VALUE_H_
#define EVA_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace eva {

/// Column types supported by the engine. Video frames are referenced by id;
/// UDF outputs are strings (labels) or doubles (areas, scores).
enum class DataType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeName(DataType type);

/// A dynamically typed scalar cell. Rows are vectors of Values.
///
/// Values order and compare across the numeric types (Int64/Double compare
/// numerically); Null compares less than everything and equal only to Null.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  DataType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_numeric() const {
    return std::holds_alternative<int64_t>(data_) ||
           std::holds_alternative<double>(data_);
  }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  /// Numeric access: converts Int64 to double when needed.
  double AsDouble() const;

  /// Three-way comparison. Null < Bool < numeric < String across types;
  /// Int64 and Double compare numerically against each other.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  std::string ToString() const;

  /// Stable 64-bit hash (FNV-1a over the textual tag + payload bytes).
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

}  // namespace eva

#endif  // EVA_COMMON_VALUE_H_
