#include "common/rng.h"

#include <cmath>

namespace eva {

int Rng::NextPoisson(double lambda) {
  if (lambda <= 0) return 0;
  // Knuth inversion; fine for lambda <= ~30 as used here.
  double l = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l);
  return k - 1;
}

uint64_t Rng::MixSeed(uint64_t seed, uint64_t salt) {
  uint64_t z = seed ^ (salt + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace eva
