#include "common/status.h"

namespace eva {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace eva
