#ifndef EVA_COMMON_STRING_UTIL_H_
#define EVA_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace eva {

/// ASCII lower-casing (identifiers in EVA-QL are case-insensitive).
std::string ToLower(const std::string& s);
std::string ToUpper(const std::string& s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace eva

#endif  // EVA_COMMON_STRING_UTIL_H_
