#ifndef EVA_COMMON_NUM_PARSE_H_
#define EVA_COMMON_NUM_PARSE_H_

#include <cstdint>
#include <string>

namespace eva {

/// Exception-free numeric parsing for untrusted input: persistence files,
/// EVA-QL literals, CREATE UDF properties. std::stoll / std::stod throw on
/// overflow and garbage, which turns a hostile byte string into process
/// death inside the parser or a view-file reader; these return false
/// instead (malformed, overflow, empty, or trailing garbage all fail).
bool ParseInt64(const std::string& s, int64_t* out);
bool ParseDouble(const std::string& s, double* out);

}  // namespace eva

#endif  // EVA_COMMON_NUM_PARSE_H_
