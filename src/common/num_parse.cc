#include "common/num_parse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace eva {

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE) return false;
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  // Overflow saturates to +-HUGE_VAL with ERANGE; underflow-to-zero is
  // accepted (denormal literals round, they don't corrupt).
  if (errno == ERANGE && std::abs(v) == HUGE_VAL) return false;
  *out = v;
  return true;
}

}  // namespace eva
