#include "common/sim_clock.h"

#include <sstream>

namespace eva {

const char* CostCategoryName(CostCategory c) {
  switch (c) {
    case CostCategory::kUdf:
      return "udf";
    case CostCategory::kReadVideo:
      return "read_video";
    case CostCategory::kReadView:
      return "read_view";
    case CostCategory::kMaterialize:
      return "materialize";
    case CostCategory::kOptimize:
      return "optimize";
    case CostCategory::kHashing:
      return "hashing";
    case CostCategory::kOther:
      return "other";
    case CostCategory::kIngest:
      return "ingest";
    case CostCategory::kNumCategories:
      break;
  }
  return "unknown";
}

void SimClock::Reset() { ms_.fill(0.0); }

void SimClock::Charge(CostCategory category, double ms) {
  ms_[static_cast<size_t>(category)] += ms;
}

double SimClock::Elapsed(CostCategory category) const {
  return ms_[static_cast<size_t>(category)];
}

double SimClock::TotalMs() const {
  double total = 0;
  for (double v : ms_) total += v;
  return total;
}

double SimClock::Snapshot::Total() const {
  double total = 0;
  for (double v : ms) total += v;
  return total;
}

SimClock::Snapshot SimClock::Snapshot::operator-(const Snapshot& other) const {
  Snapshot out;
  for (size_t i = 0; i < ms.size(); ++i) out.ms[i] = ms[i] - other.ms[i];
  return out;
}

SimClock::Snapshot SimClock::TakeSnapshot() const {
  Snapshot s;
  s.ms = ms_;
  return s;
}

std::string SimClock::ToString() const {
  std::ostringstream os;
  os << "SimClock{";
  for (size_t i = 0; i < ms_.size(); ++i) {
    if (i > 0) os << ", ";
    os << CostCategoryName(static_cast<CostCategory>(i)) << "=" << ms_[i]
       << "ms";
  }
  os << "}";
  return os.str();
}

}  // namespace eva
