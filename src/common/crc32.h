#ifndef EVA_COMMON_CRC32_H_
#define EVA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace eva {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
/// Used by the persistence manifest to detect torn or bit-flipped view
/// files before their contents can be trusted (docs/RELIABILITY.md).
uint32_t Crc32(const void* data, size_t len);

inline uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

}  // namespace eva

#endif  // EVA_COMMON_CRC32_H_
