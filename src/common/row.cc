#include "common/row.h"

#include <sstream>

namespace eva {

Value Batch::GetByName(size_t row, const std::string& name) const {
  int idx = schema_.IndexOf(name);
  if (idx < 0) return Value::Null();
  return rows_[row][static_cast<size_t>(idx)];
}

std::string Batch::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " [" << rows_.size() << " rows]\n";
  size_t n = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < n; ++r) {
    os << "  ";
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) os << " | ";
      os << rows_[r][c].ToString();
    }
    os << "\n";
  }
  if (n < rows_.size()) os << "  ... (" << rows_.size() - n << " more)\n";
  return os.str();
}

}  // namespace eva
