#ifndef EVA_COMMON_RNG_H_
#define EVA_COMMON_RNG_H_

#include <cstdint>

namespace eva {

/// Deterministic 64-bit PRNG (splitmix64). Every synthetic dataset and
/// simulated model in this repo derives its randomness from seeded Rng
/// instances so that all experiments are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) { return NextU64() % n; }

  /// Bernoulli(p).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Poisson(lambda) via inversion (suitable for the small lambdas used by
  /// the synthetic video generator).
  int NextPoisson(double lambda);

  /// Mixes `salt` into a fresh seed; used to derive per-frame/per-model
  /// deterministic sub-streams.
  static uint64_t MixSeed(uint64_t seed, uint64_t salt);

 private:
  uint64_t state_;
};

}  // namespace eva

#endif  // EVA_COMMON_RNG_H_
