#include "common/schema.h"

#include <sstream>

namespace eva {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<Schema> Schema::Extend(const std::vector<Field>& extra) const {
  Schema out = *this;
  for (const Field& f : extra) {
    if (out.Contains(f.name)) {
      return Status::AlreadyExists("duplicate column: " + f.name);
    }
    out.AddField(f);
  }
  return out;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ":" << DataTypeName(fields_[i].type);
  }
  os << ")";
  return os.str();
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace eva
