#include "common/value.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace eva {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
  }
  return DataType::kNull;
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(data_)) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  return std::get<double>(data_);
}

namespace {

// Rank used to order values of incomparable types deterministically.
int TypeRank(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;  // numeric types compare against each other
    case DataType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int lr = TypeRank(*this);
  int rr = TypeRank(other);
  if (lr != rr) return lr < rr ? -1 : 1;
  switch (type()) {
    case DataType::kNull:
      return 0;
    case DataType::kBool: {
      bool a = AsBool(), b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kInt64:
    case DataType::kDouble: {
      // Exact comparison when both are integers; double otherwise.
      if (type() == DataType::kInt64 && other.type() == DataType::kInt64) {
        int64_t a = AsInt64(), b = other.AsInt64();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      double a = AsDouble(), b = other.AsDouble();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kString: {
      int c = AsString().compare(other.AsString());
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return AsBool() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case DataType::kString:
      return AsString();
  }
  return "?";
}

uint64_t Value::Hash() const {
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t h = kOffset;
  auto mix_bytes = [&h](const void* p, size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= kPrime;
    }
  };
  int tag = static_cast<int>(type());
  mix_bytes(&tag, sizeof(tag));
  switch (type()) {
    case DataType::kNull:
      break;
    case DataType::kBool: {
      bool v = AsBool();
      mix_bytes(&v, sizeof(v));
      break;
    }
    case DataType::kInt64: {
      int64_t v = AsInt64();
      mix_bytes(&v, sizeof(v));
      break;
    }
    case DataType::kDouble: {
      double v = AsDouble();
      mix_bytes(&v, sizeof(v));
      break;
    }
    case DataType::kString: {
      const std::string& s = AsString();
      mix_bytes(s.data(), s.size());
      break;
    }
  }
  return h;
}

}  // namespace eva
