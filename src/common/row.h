#ifndef EVA_COMMON_ROW_H_
#define EVA_COMMON_ROW_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace eva {

/// A single tuple: one Value per schema field.
using Row = std::vector<Value>;

/// A batch of rows sharing one schema. Execution operators exchange batches
/// rather than single rows (the paper's engine is batch-oriented, §5.3).
class Batch {
 public:
  Batch() = default;
  explicit Batch(Schema schema) : schema_(std::move(schema)) {}
  Batch(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void AddRow(Row row) { rows_.push_back(std::move(row)); }

  const Value& At(size_t row, size_t col) const { return rows_[row][col]; }

  /// Value of column `name` in `row`; Null if the column is absent.
  Value GetByName(size_t row, const std::string& name) const;

  std::string ToString(size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace eva

#endif  // EVA_COMMON_ROW_H_
