#ifndef EVA_COMMON_SCHEMA_H_
#define EVA_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace eva {

/// A named, typed column.
struct Field {
  std::string name;
  DataType type = DataType::kNull;
};

/// Ordered collection of fields describing the layout of a Batch.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of the column with `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const { return IndexOf(name) >= 0; }

  void AddField(Field field) { fields_.push_back(std::move(field)); }

  /// New schema = this schema followed by `extra` columns. Fails on
  /// duplicate names.
  Result<Schema> Extend(const std::vector<Field>& extra) const;

  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Field> fields_;
};

}  // namespace eva

#endif  // EVA_COMMON_SCHEMA_H_
