#include "catalog/catalog.h"

#include <algorithm>

#include "common/string_util.h"

namespace eva::catalog {

int AccuracyRank(const std::string& level) {
  std::string u = ToUpper(level);
  if (u == "LOW") return 1;
  if (u == "MEDIUM") return 2;
  if (u == "HIGH") return 3;
  return 0;
}

Status Catalog::AddVideo(VideoInfo info) {
  if (videos_.count(info.name) > 0) {
    return Status::AlreadyExists("video already registered: " + info.name);
  }
  if (info.num_frames <= 0) {
    return Status::InvalidArgument("video must have frames: " + info.name);
  }
  videos_.emplace(info.name, std::move(info));
  return Status::OK();
}

Result<VideoInfo> Catalog::GetVideo(const std::string& name) const {
  auto it = videos_.find(name);
  if (it == videos_.end()) {
    return Status::NotFound("unknown video: " + name);
  }
  return it->second;
}

bool Catalog::HasVideo(const std::string& name) const {
  return videos_.count(name) > 0;
}

Status Catalog::SetVideoFrames(const std::string& name, int64_t num_frames) {
  auto it = videos_.find(name);
  if (it == videos_.end()) {
    return Status::NotFound("unknown video: " + name);
  }
  if (num_frames <= 0) {
    return Status::InvalidArgument("video must have frames: " + name);
  }
  it->second.num_frames = num_frames;
  return Status::OK();
}

Status Catalog::AddUdf(UdfDef def, bool or_replace) {
  if (!or_replace && udfs_.count(def.name) > 0) {
    return Status::AlreadyExists("UDF already registered: " + def.name);
  }
  if (def.cost_ms < 0) {
    return Status::InvalidArgument("UDF cost must be non-negative");
  }
  udfs_[def.name] = std::move(def);
  return Status::OK();
}

Result<UdfDef> Catalog::GetUdf(const std::string& name) const {
  auto it = udfs_.find(name);
  if (it == udfs_.end()) {
    return Status::NotFound("unknown UDF: " + name);
  }
  return it->second;
}

bool Catalog::HasUdf(const std::string& name) const {
  return udfs_.count(name) > 0;
}

Status Catalog::DropUdf(const std::string& name) {
  if (udfs_.erase(name) == 0) {
    return Status::NotFound("unknown UDF: " + name);
  }
  return Status::OK();
}

std::vector<UdfDef> Catalog::PhysicalUdfsFor(
    const std::string& logical_type, const std::string& min_accuracy) const {
  std::vector<UdfDef> out;
  int min_rank = AccuracyRank(min_accuracy);
  for (const auto& [name, def] : udfs_) {
    if (def.logical_type == logical_type &&
        AccuracyRank(def.accuracy) >= min_rank) {
      out.push_back(def);
    }
  }
  std::sort(out.begin(), out.end(), [](const UdfDef& a, const UdfDef& b) {
    return a.cost_ms < b.cost_ms;
  });
  return out;
}

}  // namespace eva::catalog
