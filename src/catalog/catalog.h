#ifndef EVA_CATALOG_CATALOG_H_
#define EVA_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace eva::catalog {

/// Metadata of a (synthetic) video table. The generator in src/vision
/// produces the frames deterministically from `seed` (see DESIGN.md §2 for
/// the substitution of real UA-DETRAC / JACKSON videos).
struct VideoInfo {
  std::string name;
  int64_t num_frames = 0;
  int width = 960;
  int height = 540;
  /// Mean vehicles per frame (UA-DETRAC ≈ 8.3, JACKSON ≈ 0.1, §5.1).
  double mean_objects_per_frame = 8.3;
  uint64_t seed = 42;

  // --- streaming ingestion (src/ingest/, docs/STREAMING.md) ---------------
  /// True for a live source: `num_frames` is the *visible horizon* — the
  /// frames that have landed so far — and grows over time via
  /// Catalog::SetVideoFrames as the StreamIngestor flushes. The optimizer
  /// clamps every symbolic coverage claim for a streaming source to the
  /// horizon at claim time, so a query over `id < 10^9` never claims
  /// frames that have not arrived yet.
  bool streaming = false;
  /// Eventual length of a streaming source (0 = unknown / unbounded).
  /// Informational: drives the ingestion-lag gauge and shell display.
  int64_t total_frames = 0;

  /// Decoded RGB frame size; drives FunCache's hashing overhead and the
  /// storage-footprint comparison (§5.2).
  double BytesPerFrame() const { return 3.0 * width * height; }
};

/// Functional role of a UDF in the pipeline.
enum class UdfKind {
  kDetector = 0,   // frame -> set of objects (labels + bboxes)
  kClassifier,     // (frame, bbox) -> label (CarType, ColorDet)
  kFilter,         // frame -> bool (specialized filter, §5.6)
};

/// Catalog entry for a physical UDF (Listing 2). Costs are per-tuple
/// simulated milliseconds matching Table 3 / Table 5.
struct UdfDef {
  std::string name;           // e.g. "FasterRCNNResNet50"
  UdfKind kind = UdfKind::kDetector;
  std::string logical_type;   // e.g. "ObjectDetector"; empty = none
  std::string accuracy;       // "LOW" | "MEDIUM" | "HIGH"
  double accuracy_score = 0;  // boxAP-like score (Table 5)
  double cost_ms = 0;         // c_e, per-tuple evaluation cost
  bool is_gpu = false;
  std::string impl;           // declared IMPL path (informational)

  /// Simulated model parameters (vision substrate). Detection accuracy
  /// concentrates on small objects: every model finds most large vehicles
  /// (area >= 0.2), while cheap models miss small/distant ones — the way
  /// boxAP differences actually manifest.
  double recall = 1.0;        // detectors: recall on large objects
  double recall_small = 1.0;  // detectors: recall on small objects
  double classifier_accuracy = 1.0;  // classifiers: P(correct label)
  /// Classifier target attribute: "car_type" or "color".
  std::string target_attribute;
};

/// Ranks "LOW" < "MEDIUM" < "HIGH"; unknown/empty ranks lowest.
int AccuracyRank(const std::string& level);

/// System catalog: registered videos and UDFs. Thread-compatible (the
/// engine serializes DDL).
class Catalog {
 public:
  Status AddVideo(VideoInfo info);
  Result<VideoInfo> GetVideo(const std::string& name) const;
  bool HasVideo(const std::string& name) const;
  /// Advances (or, during WAL replay, restores) the visible frame horizon
  /// of a registered video. The frame count can never shrink below 1.
  Status SetVideoFrames(const std::string& name, int64_t num_frames);

  Status AddUdf(UdfDef def, bool or_replace = false);
  Result<UdfDef> GetUdf(const std::string& name) const;
  bool HasUdf(const std::string& name) const;
  Status DropUdf(const std::string& name);

  /// All physical UDFs implementing `logical_type` whose accuracy rank is
  /// at least that of `min_accuracy`, cheapest first (§4.3 model
  /// selection).
  std::vector<UdfDef> PhysicalUdfsFor(const std::string& logical_type,
                                      const std::string& min_accuracy) const;

  const std::map<std::string, UdfDef>& udfs() const { return udfs_; }
  const std::map<std::string, VideoInfo>& videos() const { return videos_; }

 private:
  std::map<std::string, VideoInfo> videos_;
  std::map<std::string, UdfDef> udfs_;
};

}  // namespace eva::catalog

#endif  // EVA_CATALOG_CATALOG_H_
