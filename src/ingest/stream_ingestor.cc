#include "ingest/stream_ingestor.h"

#include <algorithm>

namespace eva::ingest {

Status StreamIngestor::Register(catalog::VideoInfo info,
                                const StreamOptions& opts) {
  if (opts.initial_frames < 1) {
    return Status::InvalidArgument("stream needs at least one visible frame: " +
                                   info.name);
  }
  if (opts.buffer_frames < 1) {
    return Status::InvalidArgument("stream buffer must be positive: " +
                                   info.name);
  }
  int64_t initial = opts.initial_frames;
  if (opts.total_frames > 0) initial = std::min(initial, opts.total_frames);
  info.streaming = true;
  info.total_frames = opts.total_frames;
  info.num_frames = initial;
  EVA_RETURN_IF_ERROR(catalog_->AddVideo(info));
  Stream s;
  s.opts = opts;
  s.visible = initial;
  streams_.emplace(info.name, std::move(s));
  return Status::OK();
}

Result<int64_t> StreamIngestor::Arrive(const std::string& source,
                                       int64_t frames) {
  auto it = streams_.find(source);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream: " + source);
  }
  if (frames < 0) {
    return Status::InvalidArgument("cannot ingest negative frames");
  }
  Stream& s = it->second;
  int64_t accept = std::min(frames, s.opts.buffer_frames - s.buffered);
  if (s.opts.total_frames > 0) {
    accept =
        std::min(accept, s.opts.total_frames - s.visible - s.buffered);
  }
  accept = std::max<int64_t>(accept, 0);
  s.buffered += accept;
  return accept;
}

Result<StreamIngestor::FlushResult> StreamIngestor::Flush(
    const std::string& source) {
  auto it = streams_.find(source);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream: " + source);
  }
  Stream& s = it->second;
  FlushResult out;
  out.flushed = s.buffered;
  if (flush_hook_) flush_hook_();
  if (out.flushed > 0) {
    EVA_RETURN_IF_ERROR(
        catalog_->SetVideoFrames(source, s.visible + out.flushed));
    clock_->Charge(CostCategory::kIngest,
                   s.opts.cost_ms_per_frame * static_cast<double>(out.flushed));
    s.visible += out.flushed;
    s.flushed_total += out.flushed;
    s.buffered = 0;
  }
  ++s.ticks;
  out.visible = s.visible;
  out.buffered = s.buffered;
  return out;
}

Result<StreamIngestor::FlushResult> StreamIngestor::IngestTick(
    const std::string& source, int64_t frames) {
  EVA_ASSIGN_OR_RETURN(int64_t accepted, Arrive(source, frames));
  (void)accepted;
  return Flush(source);
}

void StreamIngestor::SyncVisible() {
  for (auto& [name, s] : streams_) {
    auto info = catalog_->GetVideo(name);
    if (info.ok()) s.visible = info.value().num_frames;
    // Buffered frames were never acknowledged as durable; a recovery
    // drops them and the (simulated) source re-sends.
    s.buffered = 0;
  }
}

std::vector<StreamState> StreamIngestor::Sources() const {
  std::vector<StreamState> out;
  out.reserve(streams_.size());
  for (const auto& [name, s] : streams_) {
    StreamState st;
    st.name = name;
    st.visible = s.visible;
    st.buffered = s.buffered;
    st.total = s.opts.total_frames;
    st.flushed_total = s.flushed_total;
    st.ticks = s.ticks;
    out.push_back(std::move(st));
  }
  return out;
}

int64_t StreamIngestor::LagFrames() const {
  int64_t lag = 0;
  for (const auto& [name, s] : streams_) lag += s.buffered;
  return lag;
}

}  // namespace eva::ingest
