#ifndef EVA_INGEST_STREAM_INGESTOR_H_
#define EVA_INGEST_STREAM_INGESTOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace eva::ingest {

/// Per-source ingestion parameters.
struct StreamOptions {
  /// Frames visible the moment the stream is registered (a video table
  /// must never be empty).
  int64_t initial_frames = 1;
  /// Eventual length of the source; 0 = unbounded.
  int64_t total_frames = 0;
  /// Bound on the arrival buffer: frames that have arrived but not yet
  /// flushed. Arrivals past the bound are left in the (simulated) network
  /// — a later Arrive picks them up, mimicking backpressure.
  int64_t buffer_frames = 4096;
  /// Simulated decode+append cost charged to SimClock(kIngest) per flushed
  /// frame.
  double cost_ms_per_frame = 0.05;
};

/// Live state of one registered stream (the /ingest endpoint snapshot).
struct StreamState {
  std::string name;
  int64_t visible = 0;   // catalog horizon: frames queryable now
  int64_t buffered = 0;  // arrived, awaiting flush
  int64_t total = 0;     // eventual length (0 = unbounded)
  int64_t flushed_total = 0;
  int64_t ticks = 0;
};

/// Streaming frame ingestion with bounded per-source buffers and periodic
/// flush (docs/STREAMING.md). Frames "arrive" into a buffer; Flush makes
/// them visible by advancing the catalog's frame horizon — the synthetic
/// video substrate derives frame content from (seed, frame id), so
/// advancing the horizon IS the append. Views materialized at an earlier
/// horizon are incrementally maintained, not invalidated: their coverage
/// atoms claim only frames below the horizon at claim time (optimizer
/// clamp), and new frames extend coverage along the id dimension as
/// queries touch them.
///
/// Threading: driver-thread only. Every producer call rides the
/// EvaService FIFO, which is what keeps coverage transitions serializable
/// with queries (same contract as ViewStore::views()).
class StreamIngestor {
 public:
  StreamIngestor(catalog::Catalog* catalog, SimClock* clock)
      : catalog_(catalog), clock_(clock) {}

  /// Registers `info` as a streaming source: sets streaming/total fields,
  /// clamps the initial horizon, and adds it to the catalog.
  Status Register(catalog::VideoInfo info, const StreamOptions& opts);

  bool HasStream(const std::string& source) const {
    return streams_.count(source) > 0;
  }

  /// Buffers up to `frames` newly arrived frames (clamped to the buffer
  /// bound and the remaining length). Returns frames actually buffered.
  Result<int64_t> Arrive(const std::string& source, int64_t frames);

  struct FlushResult {
    int64_t flushed = 0;
    int64_t visible = 0;
    int64_t buffered = 0;
  };

  /// Makes every buffered frame visible: charges the SimClock and advances
  /// the catalog horizon. A no-op flush (empty buffer) is OK.
  Result<FlushResult> Flush(const std::string& source);

  /// One ingestion tick: Arrive + Flush.
  Result<FlushResult> IngestTick(const std::string& source, int64_t frames);

  /// Pulls visible horizons back from the catalog after WAL replay moved
  /// them (recovery path; buffered frames do not survive a crash — they
  /// were never acknowledged).
  void SyncVisible();

  std::vector<StreamState> Sources() const;

  /// Ingestion lag: frames arrived but not yet visible, summed over
  /// sources (the eva_ingest_lag_frames gauge).
  int64_t LagFrames() const;

  /// Test hook invoked inside Flush after the flush size is fixed but
  /// before the horizon advances — the window the engine's busy guard
  /// must cover (streaming_test's SaveViews-during-flush regression).
  void set_flush_hook(std::function<void()> hook) {
    flush_hook_ = std::move(hook);
  }

 private:
  struct Stream {
    StreamOptions opts;
    int64_t visible = 0;
    int64_t buffered = 0;
    int64_t flushed_total = 0;
    int64_t ticks = 0;
  };

  catalog::Catalog* catalog_;
  SimClock* clock_;
  std::map<std::string, Stream> streams_;
  std::function<void()> flush_hook_;
};

}  // namespace eva::ingest

#endif  // EVA_INGEST_STREAM_INGESTOR_H_
