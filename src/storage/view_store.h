#ifndef EVA_STORAGE_VIEW_STORE_H_
#define EVA_STORAGE_VIEW_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "common/status.h"

namespace eva::storage {

/// Key identifying the input tuple a UDF result belongs to: a frame for
/// detectors/filters, a (frame, object) pair for classifiers (obj = -1 for
/// frame-level results).
struct ViewKey {
  int64_t frame = 0;
  int64_t obj = -1;

  bool operator==(const ViewKey& other) const {
    return frame == other.frame && obj == other.obj;
  }
};

struct ViewKeyHash {
  size_t operator()(const ViewKey& k) const {
    return std::hash<int64_t>()(k.frame * 1000003 + k.obj);
  }
};

/// Materialized view of a UDF's results, keyed by input tuple. Presence is
/// tracked separately from rows so that "frame was processed, zero objects
/// detected" is distinguishable from "frame never processed" — the LEFT
/// OUTER JOIN + IS NULL pass-through guard of the materialization-aware
/// rewrite (§4.4, Fig. 4) depends on this.
class MaterializedView {
 public:
  MaterializedView(std::string name, Schema value_schema)
      : name_(std::move(name)), value_schema_(std::move(value_schema)) {}

  const std::string& name() const { return name_; }
  const Schema& value_schema() const { return value_schema_; }

  bool Has(const ViewKey& key) const { return entries_.count(key) > 0; }

  /// Result rows for `key`; empty when absent or when the UDF produced no
  /// rows for that input.
  const std::vector<Row>& Get(const ViewKey& key) const;

  /// Records the UDF's results for `key` (idempotent; re-puts of an
  /// existing key are ignored, matching append-only STORE semantics).
  void Put(const ViewKey& key, std::vector<Row> rows);

  int64_t num_keys() const { return static_cast<int64_t>(entries_.size()); }
  int64_t num_rows() const { return num_rows_; }

  /// Iteration over all (key, rows) entries (persistence, eviction).
  const std::unordered_map<ViewKey, std::vector<Row>, ViewKeyHash>&
  entries() const {
    return entries_;
  }

  /// Estimated on-disk footprint of the materialized results (§5.2).
  double SizeBytes() const;

 private:
  std::string name_;
  Schema value_schema_;
  std::unordered_map<ViewKey, std::vector<Row>, ViewKeyHash> entries_;
  int64_t num_rows_ = 0;
  std::vector<Row> empty_;
};

/// Registry of materialized views, one per UDF signature (§3.1 step 2).
class ViewStore {
 public:
  /// Returns the view for `name`, creating it with `value_schema` when
  /// missing.
  MaterializedView* GetOrCreate(const std::string& name,
                                const Schema& value_schema);
  /// Returns the view or nullptr.
  MaterializedView* Find(const std::string& name);
  const MaterializedView* Find(const std::string& name) const;

  /// Total footprint across all views (the §5.2 storage number).
  double TotalSizeBytes() const;

  /// Evicts least-recently-used views (whole views — coarse granularity)
  /// until the total footprint is at most `max_bytes`. Returns the number
  /// of views dropped. Safe at any time: a query whose view was evicted
  /// simply recomputes and re-materializes through the conditional apply.
  int EvictToBudget(double max_bytes);

  void Clear() {
    views_.clear();
    access_.clear();
  }

  const std::map<std::string, std::unique_ptr<MaterializedView>>& views()
      const {
    return views_;
  }

 private:
  void Touch(const std::string& name) { access_[name] = ++access_clock_; }

  std::map<std::string, std::unique_ptr<MaterializedView>> views_;
  std::map<std::string, uint64_t> access_;  // name -> last access tick
  uint64_t access_clock_ = 0;
};

}  // namespace eva::storage

#endif  // EVA_STORAGE_VIEW_STORE_H_
