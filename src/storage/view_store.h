#ifndef EVA_STORAGE_VIEW_STORE_H_
#define EVA_STORAGE_VIEW_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "storage/column_segment.h"

namespace eva::storage {

/// Per-segment bookkeeping for segment-granular eviction (src/lifecycle/).
/// A segment is a contiguous frame range [segment_id * segment_frames,
/// (segment_id + 1) * segment_frames); classifier keys (frame, obj) fall in
/// the segment of their frame. Ticks come from ViewStore::NextAccessTick()
/// and are assigned only from driver-thread call sites, so they are
/// deterministic at any worker-thread count.
struct SegmentInfo {
  int64_t keys = 0;
  int64_t rows = 0;
  uint64_t created_tick = 0;
  uint64_t last_access_tick = 0;
  int64_t last_access_query = -1;
};

/// Snapshot of one segment handed to eviction policies.
struct SegmentStats {
  int64_t segment_id = 0;
  int64_t first_frame = 0;  // covered frame range [first_frame, frame_end)
  int64_t frame_end = 0;
  double bytes = 0;
  SegmentInfo info;
};

/// What EvictSegment removed — the lifecycle manager turns the frame range
/// into the retraction predicate p_v.
struct EvictedSegment {
  int64_t first_frame = 0;
  int64_t frame_end = 0;
  int64_t keys = 0;
  int64_t rows = 0;
  double bytes = 0;
};

/// Outcome of one key of a ProbeBatch. kHitSkipped: the key is present but
/// its segment's zone map proved the caller's residual predicate
/// unsatisfiable, so its rows were not materialized (and must not be
/// charged as view reads).
enum class ProbeStatus : uint8_t { kMiss = 0, kHit, kHitSkipped };

struct ProbeOutcome {
  ProbeStatus status = ProbeStatus::kMiss;
  int32_t seg_index = -1;  // into ProbeResult::segments (kHit only)
  int32_t rows_begin = 0;  // row offset within the segment (kHit only)
  int32_t rows_count = 0;  // stored row count (kHit and kHitSkipped)
};

/// Result of one batch probe. Zero-copy: hits reference rows inside pinned
/// ColumnarSegment snapshots rather than materialized copies — the caller
/// reads cells via segment(oc).cols[c].At(row) (or RowAt). The pins keep
/// each snapshot alive past the probe's lock, and segments are immutable
/// once built (rebuilds swap in a fresh one), so the references stay valid
/// under concurrent Puts, reseals, and eviction. Reusable across batches
/// (Clear keeps capacity).
struct ProbeResult {
  std::vector<ProbeOutcome> outcomes;  // parallel to the probed keys
  /// Snapshots of the segments the batch hit, pinned for the caller.
  std::vector<std::shared_ptr<const ColumnarSegment>> segments;
  int64_t segments_probed = 0;   // distinct segment runs zone-checked
  int64_t segments_skipped = 0;  // runs rejected by the zone callback
  /// Split-block Bloom filter outcomes (zero when segments carry no
  /// filter). A negative proves absence, so the key-index search was
  /// skipped; a false positive paid the search and still missed.
  int64_t bloom_hits = 0;
  int64_t bloom_negatives = 0;
  int64_t bloom_fps = 0;

  const ColumnarSegment& segment(const ProbeOutcome& oc) const {
    return *segments[static_cast<size_t>(oc.seg_index)];
  }

  void Clear() {
    outcomes.clear();
    segments.clear();
    segments_probed = 0;
    segments_skipped = 0;
    bloom_hits = 0;
    bloom_negatives = 0;
    bloom_fps = 0;
  }
};

/// Zone-map admission callback: returns false when no stored row of the
/// segment can satisfy the caller's residual predicate. Invoked under the
/// view lock, once per segment run per batch — it must not reenter the
/// view and must be a pure function of the segment (determinism).
using ZoneCheckFn = std::function<bool(const ColumnarSegment&)>;

/// Cumulative seal-time codec accounting, shared by every view of a
/// ViewStore (atomics: seals happen under per-view locks on any thread).
/// Monotone — bytes are added each time a segment is (re)built, so the
/// engine can publish them as `_total` counters.
struct SealTotals {
  std::atomic<int64_t> segments_sealed{0};
  std::atomic<int64_t> raw_bytes{0};
  std::atomic<int64_t> encoded_bytes{0};
  std::atomic<int64_t> codec_cols[ColumnVec::kNumCodecs] = {};
};

/// Current (not cumulative) codec footprint of one view's sealed-fresh
/// segments — the `.views` shell listing and /views snapshot surface it.
struct ViewCompressionStats {
  int64_t segments = 0;         // segments with any keys
  int64_t sealed_segments = 0;  // of those, sealed and fresh
  int64_t raw_bytes = 0;        // plain columnar footprint of sealed ones
  int64_t encoded_bytes = 0;    // held footprint of sealed ones
};

/// Materialized view of a UDF's results, keyed by input tuple. Presence is
/// tracked separately from rows so that "frame was processed, zero objects
/// detected" is distinguishable from "frame never processed" — the LEFT
/// OUTER JOIN + IS NULL pass-through guard of the materialization-aware
/// rewrite (§4.4, Fig. 4) depends on this.
///
/// Concurrency (docs/RUNTIME.md, docs/STORAGE.md): probes (Has/Get/TryGet/
/// ProbeBatch) take a shared lock and may run concurrently from any number
/// of runtime workers; materialization (Put) and columnar sealing take the
/// lock exclusively. Entries are append-only and never mutated after
/// insertion, and std::unordered_map guarantees reference stability across
/// rehash, so the row pointer returned by Get/TryGet stays valid under
/// concurrent Puts. entries() exposes the raw map for persistence /
/// eviction and requires external quiescence (driver thread, no workers in
/// flight) — the engine only calls it between queries.
class MaterializedView {
 public:
  MaterializedView(std::string name, Schema value_schema)
      : name_(std::move(name)), value_schema_(std::move(value_schema)) {}

  const std::string& name() const { return name_; }
  const Schema& value_schema() const { return value_schema_; }

  bool Has(const ViewKey& key) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return entries_.count(key) > 0;
  }

  /// Result rows for `key`; empty when absent or when the UDF produced no
  /// rows for that input. The reference stays valid under concurrent Puts
  /// (append-only store, node-stable map).
  const std::vector<Row>& Get(const ViewKey& key) const;

  /// Single-acquisition point probe: presence check and row fetch under one
  /// shared lock (replaces the Has()+Get() pair and its TOCTOU window).
  /// nullptr when absent; the pointer stays valid under concurrent Puts.
  const std::vector<Row>* TryGet(const ViewKey& key) const;

  /// Batch probe over the columnar read path: one lock acquisition for the
  /// whole batch, a cursor-assisted search per key over the frame-sorted
  /// segment arrays (O(1) per key for ascending batches), and zero-copy
  /// results referencing pinned segment snapshots (see ProbeResult).
  /// Lazily (re)builds the columnar projection of any touched segment that
  /// is stale relative to its row store. When `can_match` is non-null it
  /// is consulted once per segment run; a rejected segment's hits come
  /// back kHitSkipped with no row references. Keys should be
  /// frame-ascending for the cursor to amortize, but any order is correct.
  void ProbeBatch(const std::vector<ViewKey>& keys,
                  const ZoneCheckFn& can_match, ProbeResult* out) const;

  /// Records the UDF's results for `key` (idempotent; re-puts of an
  /// existing key are ignored, matching append-only STORE semantics).
  /// `tick` / `query_id` stamp the key's segment for eviction scoring;
  /// the defaults keep pre-lifecycle callers compiling unchanged.
  void Put(const ViewKey& key, std::vector<Row> rows, uint64_t tick = 0,
           int64_t query_id = -1);

  /// Refreshes the access stamp of `frame`'s segment after a successful
  /// probe (ViewJoin hit). No-op when the segment holds no keys.
  void RecordAccess(int64_t frame, uint64_t tick, int64_t query_id);

  int64_t num_keys() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return static_cast<int64_t>(entries_.size());
  }
  int64_t num_rows() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return num_rows_;
  }

  /// Iteration over all (key, rows) entries (persistence, eviction).
  /// Requires quiescence: no concurrent Put may be in flight.
  const std::unordered_map<ViewKey, std::vector<Row>, ViewKeyHash>&
  entries() const {
    return entries_;
  }

  /// Estimated on-disk footprint of the materialized results (§5.2).
  double SizeBytes() const;

  /// Segment-granular views of the footprint. Snapshot; bytes per segment
  /// use the SizeBytes() formula restricted to the segment's keys/rows.
  std::vector<SegmentStats> Segments() const;

  /// Drops every key whose frame falls in `segment_id`'s range and returns
  /// what was removed (zeroed result when the segment is empty/unknown).
  /// Requires quiescence like entries(): the lifecycle manager only evicts
  /// from the driver thread between queries.
  EvictedSegment EvictSegment(int64_t segment_id);

  /// Restores a segment's access stamps (persistence reload).
  void RestoreSegmentStamps(int64_t segment_id, const SegmentInfo& info);

  int64_t segment_frames() const { return segment_frames_; }
  void set_segment_frames(int64_t frames) {
    segment_frames_ = frames > 0 ? frames : 1;
  }

  /// Seal-time storage configuration (codecs + Bloom). Takes effect at the
  /// next (re)seal; the engine sets it before any Put. Reconstruction of
  /// values is bit-identical for every configuration.
  void set_build_options(const SegmentBuildOptions& options) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    build_options_ = options;
  }
  SegmentBuildOptions build_options() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return build_options_;
  }
  /// Sink for cumulative seal accounting (owned by the ViewStore).
  void set_seal_totals(SealTotals* totals) { seal_totals_ = totals; }

  /// Seals (or refreshes) the columnar projection of every segment. The
  /// lifecycle manager calls it before byte accounting so the footprint is
  /// the encoded one regardless of probe history; persistence calls it so
  /// the on-disk codec matches the sealed state. Driver-thread cadence,
  /// but safe under concurrent probes (exclusive lock).
  void SealAllSegments() const;

  /// Sealed segments by id, sealing stale ones first. Requires quiescence
  /// like entries() (persistence runs between queries).
  std::vector<std::pair<int64_t, std::shared_ptr<const ColumnarSegment>>>
  SealedSegments() const;

  /// Current codec footprint over sealed-fresh segments.
  ViewCompressionStats CompressionStats() const;

  /// Id of the last query that probed or materialized into this view
  /// (-1 when never accessed); the `.views` shell listing surfaces it.
  int64_t last_access_query() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return last_access_query_;
  }

  /// WAL append capture: while enabled, every key Put actually inserts
  /// (re-puts excluded) is recorded in insertion order. The engine drains
  /// the log at each group-commit point via TakeAppendedKeys — a
  /// driver-thread quiescence call like entries().
  void set_capture_appends(bool enabled) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    capture_appends_ = enabled;
    if (!enabled) append_log_.clear();
  }
  std::vector<ViewKey> TakeAppendedKeys() {
    std::unique_lock<std::shared_mutex> lock(mu_);
    std::vector<ViewKey> out;
    out.swap(append_log_);
    return out;
  }

 private:
  /// Per-segment columnar state: the key list maintained on Put (so a
  /// rebuild is O(segment keys), not O(view keys)) and the lazily sealed
  /// columnar projection. `columnar` is stale whenever its built_keys
  /// differs from keys.size() — segments only grow between evictions, and
  /// eviction drops the whole entry.
  struct SegmentColumns {
    std::vector<ViewKey> keys;  // insertion order
    std::shared_ptr<const ColumnarSegment> columnar;
  };

  int64_t SegmentOf(int64_t frame) const {
    // Floor division so negative frames (never produced, but cheap to get
    // right) still map to a stable segment.
    int64_t q = frame / segment_frames_;
    if (frame % segment_frames_ != 0 && frame < 0) --q;
    return q;
  }

  /// True when every segment touched by `keys` has a fresh columnar
  /// projection (or no keys at all). Caller holds mu_ (any mode).
  bool ColumnarFreshLocked(const std::vector<ViewKey>& keys) const;
  /// Builds/refreshes the columnar projection of every stale touched
  /// segment. Caller holds mu_ exclusively.
  void SealTouchedLocked(const std::vector<ViewKey>& keys) const;
  /// (Re)builds one segment's projection and records seal accounting.
  /// Caller holds mu_ exclusively.
  void SealSegmentLocked(SegmentColumns* sc) const;
  /// Charged footprint of one segment: the encoded bytes when codecs are
  /// on and the segment is sealed fresh, the synthetic §5.2 formula
  /// otherwise (identical to the pre-codec accounting). Caller holds mu_.
  double SegmentBytesLocked(int64_t seg_id, const SegmentInfo& info) const;
  /// Serves the batch; every touched segment must be fresh. Caller holds
  /// mu_ (any mode).
  void ProbeBatchLocked(const std::vector<ViewKey>& keys,
                        const ZoneCheckFn& can_match, ProbeResult* out) const;

  std::string name_;
  Schema value_schema_;
  mutable std::shared_mutex mu_;
  std::unordered_map<ViewKey, std::vector<Row>, ViewKeyHash> entries_;
  std::map<int64_t, SegmentInfo> segments_;
  /// Columnar read projection, keyed like segments_. Mutable: sealing is a
  /// read-path cache fill (under the exclusive lock).
  mutable std::map<int64_t, SegmentColumns> columns_;
  int64_t num_rows_ = 0;
  int64_t segment_frames_ = 512;
  SegmentBuildOptions build_options_;
  SealTotals* seal_totals_ = nullptr;  // optional, ViewStore-owned
  int64_t last_access_query_ = -1;
  bool capture_appends_ = false;
  std::vector<ViewKey> append_log_;  // keys inserted since the last drain
  std::vector<Row> empty_;
};

/// Registry of materialized views, one per UDF signature (§3.1 step 2).
///
/// Concurrency: registry operations (GetOrCreate / Find / totals) are
/// guarded by a shared_mutex — concurrent lookups are shared; creation,
/// eviction, and LRU bookkeeping are exclusive. View pointers are stable
/// for the registry's lifetime (unique_ptr-owned), so operators may cache
/// a MaterializedView* for a whole batch and go through that view's own
/// probe/materialize locking. views() requires external quiescence.
class ViewStore {
 public:
  /// Returns the view for `name`, creating it with `value_schema` when
  /// missing.
  MaterializedView* GetOrCreate(const std::string& name,
                                const Schema& value_schema);
  /// Returns the view or nullptr. The non-const overload refreshes the LRU
  /// tick and therefore locks exclusively.
  MaterializedView* Find(const std::string& name);
  const MaterializedView* Find(const std::string& name) const;

  /// Total footprint across all views (the §5.2 storage number).
  double TotalSizeBytes() const;

  /// Evicts least-recently-used views (whole views — coarse granularity)
  /// until the total footprint is at most `max_bytes`. Returns the number
  /// of views dropped. Safe at any time between queries: a query whose
  /// view was evicted simply recomputes and re-materializes through the
  /// conditional apply.
  int EvictToBudget(double max_bytes);

  void Clear() {
    std::unique_lock<std::shared_mutex> lock(mu_);
    views_.clear();
    access_.clear();
  }

  /// Requires quiescence: no concurrent GetOrCreate/Evict in flight.
  const std::map<std::string, std::unique_ptr<MaterializedView>>& views()
      const {
    return views_;
  }

  /// Monotone tick for segment access stamps. Incremented only from
  /// driver-thread call sites (ViewJoin probe loop, StoreOp flush), so the
  /// sequence is deterministic regardless of worker-thread count.
  uint64_t NextAccessTick() { return ++segment_clock_; }
  /// Current reading of the access clock without advancing it (eviction
  /// policies use tick distance as a fine-grained recency measure).
  uint64_t current_tick() const { return segment_clock_.load(); }

  /// WAL append capture across the whole registry: applies to every
  /// existing view and to views created later (GetOrCreate inherits it).
  void set_capture_appends(bool enabled) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    capture_appends_ = enabled;
    for (auto& [name, view] : views_) view->set_capture_appends(enabled);
  }
  bool capture_appends() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return capture_appends_;
  }

  /// Segment width (frames) applied to views created after the call.
  /// The engine sets it once at construction, before any view exists.
  void set_segment_frames(int64_t frames) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    segment_frames_ = frames > 0 ? frames : 1;
  }
  int64_t segment_frames() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return segment_frames_;
  }

  /// Seal-time storage configuration applied to every existing view and
  /// inherited by views created later.
  void set_build_options(const SegmentBuildOptions& options) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    build_options_ = options;
    for (auto& [name, view] : views_) view->set_build_options(options);
  }
  SegmentBuildOptions build_options() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return build_options_;
  }

  /// Cumulative seal accounting across every view (engine metrics).
  const SealTotals& seal_totals() const { return seal_totals_; }

  /// Seals every segment of every view (lifecycle accounting / save).
  /// Driver-thread cadence like views().
  void SealAllSegments() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [name, view] : views_) view->SealAllSegments();
  }

 private:
  /// Caller must hold mu_ exclusively.
  void Touch(const std::string& name) { access_[name] = ++access_clock_; }
  double TotalSizeBytesLocked() const;

  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<MaterializedView>> views_;
  std::map<std::string, uint64_t> access_;  // name -> last access tick
  uint64_t access_clock_ = 0;
  int64_t segment_frames_ = 512;
  SegmentBuildOptions build_options_;
  mutable SealTotals seal_totals_;
  bool capture_appends_ = false;
  std::atomic<uint64_t> segment_clock_{0};
};

}  // namespace eva::storage

#endif  // EVA_STORAGE_VIEW_STORE_H_
