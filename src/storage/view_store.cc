#include "storage/view_store.h"

namespace eva::storage {

const std::vector<Row>& MaterializedView::Get(const ViewKey& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return empty_;
  return it->second;
}

const std::vector<Row>* MaterializedView::TryGet(const ViewKey& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void MaterializedView::Put(const ViewKey& key, std::vector<Row> rows,
                           uint64_t tick, int64_t query_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(key, std::move(rows));
  if (inserted) {
    num_rows_ += static_cast<int64_t>(it->second.size());
    int64_t seg_id = SegmentOf(key.frame);
    SegmentInfo& seg = segments_[seg_id];
    if (seg.keys == 0) seg.created_tick = tick;
    seg.keys += 1;
    seg.rows += static_cast<int64_t>(it->second.size());
    seg.last_access_tick = tick;
    seg.last_access_query = query_id;
    if (query_id >= 0) last_access_query_ = query_id;
    // Key-list append keeps the columnar rebuild O(segment keys); the
    // sealed projection (if any) is now stale and rebuilt on next probe.
    columns_[seg_id].keys.push_back(key);
    if (capture_appends_) append_log_.push_back(key);
  }
}

bool MaterializedView::ColumnarFreshLocked(
    const std::vector<ViewKey>& keys) const {
  int64_t cur = INT64_MIN;
  bool first = true;
  for (const ViewKey& key : keys) {
    int64_t seg_id = SegmentOf(key.frame);
    if (!first && seg_id == cur) continue;
    first = false;
    cur = seg_id;
    auto it = columns_.find(seg_id);
    if (it == columns_.end()) continue;  // empty segment: nothing to seal
    if (it->second.columnar == nullptr ||
        it->second.columnar->built_keys !=
            static_cast<int64_t>(it->second.keys.size())) {
      return false;
    }
  }
  return true;
}

void MaterializedView::SealSegmentLocked(SegmentColumns* sc) const {
  sc->columnar = BuildColumnarSegment(sc->keys, entries_,
                                      value_schema_.num_fields(),
                                      build_options_);
  if (seal_totals_ != nullptr) {
    const ColumnarSegment& seg = *sc->columnar;
    seal_totals_->segments_sealed.fetch_add(1, std::memory_order_relaxed);
    seal_totals_->raw_bytes.fetch_add(seg.raw_bytes,
                                      std::memory_order_relaxed);
    seal_totals_->encoded_bytes.fetch_add(seg.encoded_bytes,
                                          std::memory_order_relaxed);
    for (int c = 0; c < ColumnVec::kNumCodecs; ++c) {
      seal_totals_->codec_cols[c].fetch_add(seg.codec_cols[c],
                                            std::memory_order_relaxed);
    }
  }
}

void MaterializedView::SealTouchedLocked(
    const std::vector<ViewKey>& keys) const {
  int64_t cur = INT64_MIN;
  bool first = true;
  for (const ViewKey& key : keys) {
    int64_t seg_id = SegmentOf(key.frame);
    if (!first && seg_id == cur) continue;
    first = false;
    cur = seg_id;
    auto it = columns_.find(seg_id);
    if (it == columns_.end()) continue;
    SegmentColumns& sc = it->second;
    if (sc.columnar != nullptr &&
        sc.columnar->built_keys == static_cast<int64_t>(sc.keys.size())) {
      continue;
    }
    SealSegmentLocked(&sc);
  }
}

void MaterializedView::SealAllSegments() const {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [seg_id, sc] : columns_) {
    if (sc.columnar != nullptr &&
        sc.columnar->built_keys == static_cast<int64_t>(sc.keys.size())) {
      continue;
    }
    SealSegmentLocked(&sc);
  }
}

std::vector<std::pair<int64_t, std::shared_ptr<const ColumnarSegment>>>
MaterializedView::SealedSegments() const {
  SealAllSegments();
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::pair<int64_t, std::shared_ptr<const ColumnarSegment>>> out;
  out.reserve(columns_.size());
  for (const auto& [seg_id, sc] : columns_) {
    if (sc.columnar != nullptr) out.emplace_back(seg_id, sc.columnar);
  }
  return out;
}

ViewCompressionStats MaterializedView::CompressionStats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ViewCompressionStats out;
  for (const auto& [seg_id, sc] : columns_) {
    ++out.segments;
    if (sc.columnar == nullptr ||
        sc.columnar->built_keys != static_cast<int64_t>(sc.keys.size())) {
      continue;
    }
    ++out.sealed_segments;
    out.raw_bytes += sc.columnar->raw_bytes;
    out.encoded_bytes += sc.columnar->encoded_bytes;
  }
  return out;
}

void MaterializedView::ProbeBatchLocked(const std::vector<ViewKey>& keys,
                                        const ZoneCheckFn& can_match,
                                        ProbeResult* out) const {
  int64_t cur = INT64_MIN;
  bool first = true;
  const std::shared_ptr<const ColumnarSegment>* seg_sp = nullptr;
  const ColumnarSegment* seg = nullptr;
  bool seg_admitted = true;
  int32_t seg_slot = -1;  // out->segments index once this run is pinned
  size_t cursor = 0;
  for (const ViewKey& key : keys) {
    int64_t seg_id = SegmentOf(key.frame);
    if (first || seg_id != cur) {
      first = false;
      cur = seg_id;
      cursor = 0;
      seg_slot = -1;
      auto it = columns_.find(seg_id);
      seg_sp = it != columns_.end() ? &it->second.columnar : nullptr;
      seg = seg_sp != nullptr ? seg_sp->get() : nullptr;
      seg_admitted = true;
      if (seg != nullptr && can_match != nullptr) {
        ++out->segments_probed;
        if (!can_match(*seg)) {
          seg_admitted = false;
          ++out->segments_skipped;
        }
      }
    }
    ProbeOutcome outcome;
    if (seg != nullptr) {
      // Bloom short-circuit: a negative proves the key absent, so the
      // key-index search is skipped entirely. The outcome is identical to
      // a failed FindKey (kMiss) — only the cost differs.
      if (seg->bloom.enabled() &&
          !seg->bloom.MayContain(HashViewKey(key.frame, key.obj))) {
        ++out->bloom_negatives;
        out->outcomes.push_back(outcome);
        continue;
      }
      size_t idx = seg->FindKey(key.frame, key.obj, &cursor);
      if (seg->bloom.enabled()) {
        if (idx == ColumnarSegment::npos) {
          ++out->bloom_fps;
        } else {
          ++out->bloom_hits;
        }
      }
      if (idx != ColumnarSegment::npos) {
        int32_t begin = seg->row_begin_at(idx);
        int32_t end = seg->row_begin_at(idx + 1);
        outcome.rows_count = end - begin;
        if (seg_admitted) {
          outcome.status = ProbeStatus::kHit;
          // Pin the snapshot once per run, on its first hit; the caller
          // reads rows in place (zero-copy) after the lock is released.
          if (seg_slot < 0) {
            seg_slot = static_cast<int32_t>(out->segments.size());
            out->segments.push_back(*seg_sp);
          }
          outcome.seg_index = seg_slot;
          outcome.rows_begin = begin;
        } else {
          outcome.status = ProbeStatus::kHitSkipped;
        }
      }
    }
    out->outcomes.push_back(outcome);
  }
}

void MaterializedView::ProbeBatch(const std::vector<ViewKey>& keys,
                                  const ZoneCheckFn& can_match,
                                  ProbeResult* out) const {
  out->Clear();
  out->outcomes.reserve(keys.size());
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (ColumnarFreshLocked(keys)) {
      ProbeBatchLocked(keys, can_match, out);
      return;
    }
  }
  // A touched segment grew since its last seal: rebuild its columnar
  // projection under the exclusive lock, then serve from there.
  std::unique_lock<std::shared_mutex> lock(mu_);
  SealTouchedLocked(keys);
  ProbeBatchLocked(keys, can_match, out);
}

void MaterializedView::RecordAccess(int64_t frame, uint64_t tick,
                                    int64_t query_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = segments_.find(SegmentOf(frame));
  if (it == segments_.end()) return;
  it->second.last_access_tick = tick;
  it->second.last_access_query = query_id;
  if (query_id >= 0) last_access_query_ = query_id;
}

double MaterializedView::SegmentBytesLocked(int64_t seg_id,
                                            const SegmentInfo& info) const {
  if (build_options_.compress) {
    auto it = columns_.find(seg_id);
    if (it != columns_.end() && it->second.columnar != nullptr &&
        it->second.columnar->built_keys ==
            static_cast<int64_t>(it->second.keys.size())) {
      return static_cast<double>(it->second.columnar->encoded_bytes);
    }
  }
  // Synthetic pre-codec estimate (§5.2): 16 B/key + 10 B/cell. Unsealed
  // segments are charged at this rate until their first seal; the
  // lifecycle manager seals everything before enforcing the budget so the
  // eviction decision never depends on probe history.
  return 16.0 * static_cast<double>(info.keys) +
         static_cast<double>(info.rows) *
             static_cast<double>(value_schema_.num_fields()) * 10.0;
}

double MaterializedView::SizeBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  double bytes = 0;
  for (const auto& [id, info] : segments_) {
    bytes += SegmentBytesLocked(id, info);
  }
  return bytes;
}

std::vector<SegmentStats> MaterializedView::Segments() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<SegmentStats> out;
  out.reserve(segments_.size());
  for (const auto& [id, info] : segments_) {
    SegmentStats s;
    s.segment_id = id;
    s.first_frame = id * segment_frames_;
    s.frame_end = (id + 1) * segment_frames_;
    s.bytes = SegmentBytesLocked(id, info);
    s.info = info;
    out.push_back(s);
  }
  return out;
}

EvictedSegment MaterializedView::EvictSegment(int64_t segment_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  EvictedSegment ev;
  ev.first_frame = segment_id * segment_frames_;
  ev.frame_end = (segment_id + 1) * segment_frames_;
  auto it = segments_.find(segment_id);
  if (it == segments_.end()) return ev;
  // Charge what the segment was accounted at (encoded bytes when sealed
  // fresh under codecs, the synthetic formula otherwise).
  ev.bytes = SegmentBytesLocked(segment_id, it->second);
  // The per-segment key list makes eviction O(segment keys) instead of a
  // scan over every entry of the view.
  auto cit = columns_.find(segment_id);
  if (cit != columns_.end()) {
    for (const ViewKey& key : cit->second.keys) {
      auto e = entries_.find(key);
      if (e == entries_.end()) continue;
      ev.keys += 1;
      ev.rows += static_cast<int64_t>(e->second.size());
      entries_.erase(e);
    }
    columns_.erase(cit);
  }
  num_rows_ -= ev.rows;
  segments_.erase(it);
  return ev;
}

void MaterializedView::RestoreSegmentStamps(int64_t segment_id,
                                            const SegmentInfo& info) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = segments_.find(segment_id);
  if (it == segments_.end()) return;
  // keys/rows stay as recomputed from the reloaded entries; only the
  // eviction-relevant stamps are restored.
  it->second.created_tick = info.created_tick;
  it->second.last_access_tick = info.last_access_tick;
  it->second.last_access_query = info.last_access_query;
  if (info.last_access_query > last_access_query_) {
    last_access_query_ = info.last_access_query;
  }
}

MaterializedView* ViewStore::GetOrCreate(const std::string& name,
                                         const Schema& value_schema) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    auto view = std::make_unique<MaterializedView>(name, value_schema);
    view->set_segment_frames(segment_frames_);
    view->set_build_options(build_options_);
    view->set_seal_totals(&seal_totals_);
    if (capture_appends_) view->set_capture_appends(true);
    it = views_.emplace(name, std::move(view)).first;
  }
  Touch(name);
  return it->second.get();
}

MaterializedView* ViewStore::Find(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) return nullptr;
  Touch(name);
  return it->second.get();
}

const MaterializedView* ViewStore::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.get();
}

int ViewStore::EvictToBudget(double max_bytes) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  int dropped = 0;
  while (TotalSizeBytesLocked() > max_bytes && !views_.empty()) {
    // Find the least-recently-used view.
    std::string victim;
    uint64_t oldest = ~uint64_t{0};
    for (const auto& [name, view] : views_) {
      auto it = access_.find(name);
      uint64_t tick = it == access_.end() ? 0 : it->second;
      if (tick < oldest) {
        oldest = tick;
        victim = name;
      }
    }
    views_.erase(victim);
    access_.erase(victim);
    ++dropped;
  }
  return dropped;
}

double ViewStore::TotalSizeBytesLocked() const {
  double total = 0;
  for (const auto& [name, view] : views_) total += view->SizeBytes();
  return total;
}

double ViewStore::TotalSizeBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return TotalSizeBytesLocked();
}

}  // namespace eva::storage
