#include "storage/view_store.h"

namespace eva::storage {

const std::vector<Row>& MaterializedView::Get(const ViewKey& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return empty_;
  return it->second;
}

void MaterializedView::Put(const ViewKey& key, std::vector<Row> rows) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(key, std::move(rows));
  if (inserted) {
    num_rows_ += static_cast<int64_t>(it->second.size());
  }
}

double MaterializedView::SizeBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Keys: 16 bytes each; values: rough per-cell estimate mirroring a
  // Parquet-style encoding of the lightweight structured metadata the UDFs
  // extract (§5.2).
  double bytes = 16.0 * static_cast<double>(entries_.size());
  double cells = static_cast<double>(num_rows_) *
                 static_cast<double>(value_schema_.num_fields());
  bytes += cells * 10.0;
  return bytes;
}

MaterializedView* ViewStore::GetOrCreate(const std::string& name,
                                         const Schema& value_schema) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    it = views_
             .emplace(name, std::make_unique<MaterializedView>(name,
                                                               value_schema))
             .first;
  }
  Touch(name);
  return it->second.get();
}

MaterializedView* ViewStore::Find(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) return nullptr;
  Touch(name);
  return it->second.get();
}

const MaterializedView* ViewStore::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.get();
}

int ViewStore::EvictToBudget(double max_bytes) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  int dropped = 0;
  while (TotalSizeBytesLocked() > max_bytes && !views_.empty()) {
    // Find the least-recently-used view.
    std::string victim;
    uint64_t oldest = ~uint64_t{0};
    for (const auto& [name, view] : views_) {
      auto it = access_.find(name);
      uint64_t tick = it == access_.end() ? 0 : it->second;
      if (tick < oldest) {
        oldest = tick;
        victim = name;
      }
    }
    views_.erase(victim);
    access_.erase(victim);
    ++dropped;
  }
  return dropped;
}

double ViewStore::TotalSizeBytesLocked() const {
  double total = 0;
  for (const auto& [name, view] : views_) total += view->SizeBytes();
  return total;
}

double ViewStore::TotalSizeBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return TotalSizeBytesLocked();
}

}  // namespace eva::storage
