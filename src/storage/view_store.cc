#include "storage/view_store.h"

namespace eva::storage {

const std::vector<Row>& MaterializedView::Get(const ViewKey& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return empty_;
  return it->second;
}

void MaterializedView::Put(const ViewKey& key, std::vector<Row> rows,
                           uint64_t tick, int64_t query_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(key, std::move(rows));
  if (inserted) {
    num_rows_ += static_cast<int64_t>(it->second.size());
    SegmentInfo& seg = segments_[SegmentOf(key.frame)];
    if (seg.keys == 0) seg.created_tick = tick;
    seg.keys += 1;
    seg.rows += static_cast<int64_t>(it->second.size());
    seg.last_access_tick = tick;
    seg.last_access_query = query_id;
    if (query_id >= 0) last_access_query_ = query_id;
  }
}

void MaterializedView::RecordAccess(int64_t frame, uint64_t tick,
                                    int64_t query_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = segments_.find(SegmentOf(frame));
  if (it == segments_.end()) return;
  it->second.last_access_tick = tick;
  it->second.last_access_query = query_id;
  if (query_id >= 0) last_access_query_ = query_id;
}

double MaterializedView::SizeBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Keys: 16 bytes each; values: rough per-cell estimate mirroring a
  // Parquet-style encoding of the lightweight structured metadata the UDFs
  // extract (§5.2).
  double bytes = 16.0 * static_cast<double>(entries_.size());
  double cells = static_cast<double>(num_rows_) *
                 static_cast<double>(value_schema_.num_fields());
  bytes += cells * 10.0;
  return bytes;
}

std::vector<SegmentStats> MaterializedView::Segments() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<SegmentStats> out;
  out.reserve(segments_.size());
  double fields = static_cast<double>(value_schema_.num_fields());
  for (const auto& [id, info] : segments_) {
    SegmentStats s;
    s.segment_id = id;
    s.first_frame = id * segment_frames_;
    s.frame_end = (id + 1) * segment_frames_;
    s.bytes = 16.0 * static_cast<double>(info.keys) +
              static_cast<double>(info.rows) * fields * 10.0;
    s.info = info;
    out.push_back(s);
  }
  return out;
}

EvictedSegment MaterializedView::EvictSegment(int64_t segment_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  EvictedSegment ev;
  ev.first_frame = segment_id * segment_frames_;
  ev.frame_end = (segment_id + 1) * segment_frames_;
  auto it = segments_.find(segment_id);
  if (it == segments_.end()) return ev;
  for (auto e = entries_.begin(); e != entries_.end();) {
    if (SegmentOf(e->first.frame) == segment_id) {
      ev.keys += 1;
      ev.rows += static_cast<int64_t>(e->second.size());
      e = entries_.erase(e);
    } else {
      ++e;
    }
  }
  ev.bytes = 16.0 * static_cast<double>(ev.keys) +
             static_cast<double>(ev.rows) *
                 static_cast<double>(value_schema_.num_fields()) * 10.0;
  num_rows_ -= ev.rows;
  segments_.erase(it);
  return ev;
}

void MaterializedView::RestoreSegmentStamps(int64_t segment_id,
                                            const SegmentInfo& info) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = segments_.find(segment_id);
  if (it == segments_.end()) return;
  // keys/rows stay as recomputed from the reloaded entries; only the
  // eviction-relevant stamps are restored.
  it->second.created_tick = info.created_tick;
  it->second.last_access_tick = info.last_access_tick;
  it->second.last_access_query = info.last_access_query;
  if (info.last_access_query > last_access_query_) {
    last_access_query_ = info.last_access_query;
  }
}

MaterializedView* ViewStore::GetOrCreate(const std::string& name,
                                         const Schema& value_schema) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    auto view = std::make_unique<MaterializedView>(name, value_schema);
    view->set_segment_frames(segment_frames_);
    it = views_.emplace(name, std::move(view)).first;
  }
  Touch(name);
  return it->second.get();
}

MaterializedView* ViewStore::Find(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) return nullptr;
  Touch(name);
  return it->second.get();
}

const MaterializedView* ViewStore::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.get();
}

int ViewStore::EvictToBudget(double max_bytes) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  int dropped = 0;
  while (TotalSizeBytesLocked() > max_bytes && !views_.empty()) {
    // Find the least-recently-used view.
    std::string victim;
    uint64_t oldest = ~uint64_t{0};
    for (const auto& [name, view] : views_) {
      auto it = access_.find(name);
      uint64_t tick = it == access_.end() ? 0 : it->second;
      if (tick < oldest) {
        oldest = tick;
        victim = name;
      }
    }
    views_.erase(victim);
    access_.erase(victim);
    ++dropped;
  }
  return dropped;
}

double ViewStore::TotalSizeBytesLocked() const {
  double total = 0;
  for (const auto& [name, view] : views_) total += view->SizeBytes();
  return total;
}

double ViewStore::TotalSizeBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return TotalSizeBytesLocked();
}

}  // namespace eva::storage
