#include "storage/view_persistence.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "symbolic/predicate_io.h"

namespace eva::storage {

namespace {

namespace fs = std::filesystem;

// Percent-escapes whitespace and '%' so string cells survive the
// whitespace-separated line format.
std::string Escape(const std::string& s) {
  std::string out;
  for (unsigned char c : s) {
    if (std::isspace(c) || c == '%') {
      out += StrFormat("%%%02X", c);
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size()) {
        return Status::InvalidArgument("truncated escape in view file");
      }
      out += static_cast<char>(
          std::stoi(s.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string SanitizeFilename(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '-' || c == '.' || c == '@')
               ? c
               : '_';
  }
  return out;
}

DataType TypeFromName(const std::string& name) {
  if (name == "BOOL") return DataType::kBool;
  if (name == "INT64") return DataType::kInt64;
  if (name == "DOUBLE") return DataType::kDouble;
  if (name == "STRING") return DataType::kString;
  return DataType::kNull;
}

}  // namespace

std::string EncodeValue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return "N";
    case DataType::kBool:
      return v.AsBool() ? "B:1" : "B:0";
    case DataType::kInt64:
      return "I:" + std::to_string(v.AsInt64());
    case DataType::kDouble:
      return StrFormat("D:%.17g", v.AsDouble());
    case DataType::kString:
      return "S:" + Escape(v.AsString());
  }
  return "N";
}

Result<Value> DecodeValue(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty view cell");
  if (text == "N") return Value::Null();
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument("malformed view cell: " + text);
  }
  std::string payload = text.substr(2);
  switch (text[0]) {
    case 'B':
      return Value(payload == "1");
    case 'I':
      return Value(static_cast<int64_t>(std::stoll(payload)));
    case 'D':
      return Value(std::stod(payload));
    case 'S': {
      EVA_ASSIGN_OR_RETURN(std::string s, Unescape(payload));
      return Value(std::move(s));
    }
    default:
      return Status::InvalidArgument("unknown view cell tag: " + text);
  }
}

Status SaveViewStore(const ViewStore& store, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create view directory " + dir + ": " +
                            ec.message());
  }
  for (const auto& [name, view] : store.views()) {
    fs::path path = fs::path(dir) / (SanitizeFilename(name) + ".evaview");
    std::ofstream out(path);
    if (!out) {
      return Status::Internal("cannot open " + path.string());
    }
    out << "eva-view 1\n";
    out << "name " << Escape(name) << "\n";
    out << "schema " << view->value_schema().num_fields();
    for (const Field& f : view->value_schema().fields()) {
      out << " " << Escape(f.name) << " " << DataTypeName(f.type);
    }
    out << "\n";
    for (const auto& [key, rows] : view->entries()) {
      out << "key " << key.frame << " " << key.obj << " " << rows.size()
          << "\n";
      for (const Row& row : rows) {
        out << "row";
        for (const Value& v : row) out << " " << EncodeValue(v);
        out << "\n";
      }
    }
    if (!out.good()) {
      return Status::Internal("write failed for " + path.string());
    }
  }
  return Status::OK();
}

Status LoadViewStore(const std::string& dir, ViewStore* store) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("view directory missing: " + dir);
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".evaview") continue;
    std::ifstream in(entry.path());
    if (!in) {
      return Status::Internal("cannot open " + entry.path().string());
    }
    std::string line;
    if (!std::getline(in, line) || line != "eva-view 1") {
      return Status::InvalidArgument("bad view file header: " +
                                     entry.path().string());
    }
    // name
    if (!std::getline(in, line) || !StartsWith(line, "name ")) {
      return Status::InvalidArgument("missing view name in " +
                                     entry.path().string());
    }
    EVA_ASSIGN_OR_RETURN(std::string name, Unescape(line.substr(5)));
    // schema
    if (!std::getline(in, line) || !StartsWith(line, "schema ")) {
      return Status::InvalidArgument("missing schema in " +
                                     entry.path().string());
    }
    Schema schema;
    {
      std::istringstream is(line.substr(7));
      int n = 0;
      is >> n;
      for (int i = 0; i < n; ++i) {
        std::string col, type;
        if (!(is >> col >> type)) {
          return Status::InvalidArgument("truncated schema line");
        }
        EVA_ASSIGN_OR_RETURN(std::string col_name, Unescape(col));
        schema.AddField({col_name, TypeFromName(type)});
      }
    }
    MaterializedView* view = store->GetOrCreate(name, schema);
    // keys + rows
    ViewKey key{0, -1};
    size_t pending_rows = 0;
    std::vector<Row> rows;
    auto flush = [&]() -> Status {
      if (rows.size() != pending_rows) {
        return Status::InvalidArgument(
            "row count mismatch in " + entry.path().string() + " for key " +
            std::to_string(key.frame));
      }
      view->Put(key, std::move(rows));
      rows = {};
      return Status::OK();
    };
    bool has_key = false;
    while (std::getline(in, line)) {
      if (StartsWith(line, "key ")) {
        if (has_key) EVA_RETURN_IF_ERROR(flush());
        std::istringstream is(line.substr(4));
        is >> key.frame >> key.obj >> pending_rows;
        has_key = true;
        rows.clear();
      } else if (StartsWith(line, "row ")) {
        std::istringstream is(line.substr(4));
        Row row;
        std::string cell;
        while (is >> cell) {
          EVA_ASSIGN_OR_RETURN(Value v, DecodeValue(cell));
          row.push_back(std::move(v));
        }
        rows.push_back(std::move(row));
      } else if (!line.empty()) {
        return Status::InvalidArgument("unexpected line in view file: " +
                                       line);
      }
    }
    if (has_key) EVA_RETURN_IF_ERROR(flush());
  }
  return Status::OK();
}

Status SaveLifecycleState(const ViewStore& store,
                          const udf::UdfManager& manager,
                          const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create view directory " + dir + ": " +
                            ec.message());
  }
  fs::path path = fs::path(dir) / "lifecycle.evastate";
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open " + path.string());
  }
  out << "eva-lifecycle 1\n";
  for (const auto& [name, view] : store.views()) {
    out << "view " << Escape(name) << " " << view->segment_frames() << "\n";
    for (const SegmentStats& seg : view->Segments()) {
      out << "segment " << seg.segment_id << " " << seg.info.keys << " "
          << seg.info.rows << " " << seg.info.created_tick << " "
          << seg.info.last_access_tick << " " << seg.info.last_access_query
          << "\n";
    }
  }
  for (const auto& [key, entry] : manager.entries()) {
    out << "coverage " << Escape(key) << " "
        << symbolic::EncodePredicate(entry.coverage) << "\n";
  }
  if (!out.good()) {
    return Status::Internal("write failed for " + path.string());
  }
  return Status::OK();
}

Status LoadLifecycleState(const std::string& dir, ViewStore* store,
                          udf::UdfManager* manager) {
  fs::path path = fs::path(dir) / "lifecycle.evastate";
  std::error_code ec;
  if (!fs::exists(path, ec)) return Status::OK();  // pre-lifecycle save dir
  std::ifstream in(path);
  if (!in) {
    return Status::Internal("cannot open " + path.string());
  }
  std::string line;
  if (!std::getline(in, line) || line != "eva-lifecycle 1") {
    return Status::InvalidArgument("bad lifecycle file header: " +
                                   path.string());
  }
  MaterializedView* view = nullptr;
  bool stamps_applicable = false;
  while (std::getline(in, line)) {
    if (StartsWith(line, "view ")) {
      std::istringstream is(line.substr(5));
      std::string name_tok;
      int64_t segment_frames = 0;
      if (!(is >> name_tok >> segment_frames)) {
        return Status::InvalidArgument("truncated view line: " + line);
      }
      EVA_ASSIGN_OR_RETURN(std::string name, Unescape(name_tok));
      view = store->Find(name);
      stamps_applicable =
          view != nullptr && view->segment_frames() == segment_frames;
    } else if (StartsWith(line, "segment ")) {
      if (!stamps_applicable) continue;
      std::istringstream is(line.substr(8));
      int64_t id = 0;
      SegmentInfo info;
      if (!(is >> id >> info.keys >> info.rows >> info.created_tick >>
            info.last_access_tick >> info.last_access_query)) {
        return Status::InvalidArgument("truncated segment line: " + line);
      }
      view->RestoreSegmentStamps(id, info);
    } else if (StartsWith(line, "coverage ")) {
      std::istringstream is(line.substr(9));
      std::string key_tok;
      if (!(is >> key_tok)) {
        return Status::InvalidArgument("truncated coverage line: " + line);
      }
      EVA_ASSIGN_OR_RETURN(std::string key, Unescape(key_tok));
      std::string encoded;
      std::getline(is, encoded);
      if (!encoded.empty() && encoded.front() == ' ') encoded.erase(0, 1);
      EVA_ASSIGN_OR_RETURN(symbolic::Predicate coverage,
                           symbolic::DecodePredicate(encoded));
      if (manager != nullptr && !manager->HasCoverage(key)) {
        manager->SetCoverage(key, std::move(coverage));
      }
    } else if (!line.empty()) {
      return Status::InvalidArgument("unexpected lifecycle line: " + line);
    }
  }
  return Status::OK();
}

}  // namespace eva::storage
