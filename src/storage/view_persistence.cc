#include "storage/view_persistence.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "common/num_parse.h"
#include "common/string_util.h"
#include "symbolic/predicate_io.h"

namespace eva::storage {

namespace {

namespace stdfs = std::filesystem;

// Percent-escapes whitespace and '%' so string cells survive the
// whitespace-separated line format.
std::string Escape(const std::string& s) {
  std::string out;
  for (unsigned char c : s) {
    if (std::isspace(c) || c == '%') {
      out += StrFormat("%%%02X", c);
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Result<std::string> Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size()) {
        return Status::InvalidArgument("truncated escape in view file");
      }
      int hi = HexDigit(s[i + 1]);
      int lo = HexDigit(s[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("bad hex escape in view file: " + s);
      }
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string SanitizeFilename(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '-' || c == '.' || c == '@')
               ? c
               : '_';
  }
  return out;
}

DataType TypeFromName(const std::string& name) {
  if (name == "BOOL") return DataType::kBool;
  if (name == "INT64") return DataType::kInt64;
  if (name == "DOUBLE") return DataType::kDouble;
  if (name == "STRING") return DataType::kString;
  return DataType::kNull;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string JoinPath(const std::string& dir, const std::string& file) {
  return (stdfs::path(dir) / file).string();
}

/// Files the persistence layer owns inside a save directory; anything else
/// (user files) is never removed or quarantined.
bool IsManagedFile(const std::string& name) {
  return EndsWith(name, ".evaview") || EndsWith(name, ".evaseg") ||
         EndsWith(name, ".evastate") || EndsWith(name, ".tmp") ||
         EndsWith(name, ".quarantined") || name == "MANIFEST";
}

/// Sorted basenames of the regular files in `dir` — sorted so the fault
/// points consulted during a sweep form a deterministic sequence the
/// crash-matrix test can enumerate.
std::vector<std::string> ListFiles(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : stdfs::directory_iterator(dir, ec)) {
    std::error_code fec;
    if (!entry.is_regular_file(fec)) continue;
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

struct ManifestEntry {
  std::string file;
  uint64_t size = 0;
  uint32_t crc = 0;
  bool is_lifecycle = false;
  bool is_segment = false;  // binary .evaseg codec file (kind "vseg")
  std::string view_name;  // logical view key, "" for the lifecycle entry
};

struct Manifest {
  int64_t generation = 0;
  std::vector<ManifestEntry> entries;
};

enum class ManifestState { kAbsent, kCorrupt, kValid };

std::string RenderManifest(const Manifest& m) {
  std::string out = "eva-manifest 1\n";
  out += "generation " + std::to_string(m.generation) + "\n";
  for (const ManifestEntry& e : m.entries) {
    out += "file " + e.file + " " + std::to_string(e.size) + " " +
           StrFormat("%08x", e.crc) + " " +
           (e.is_lifecycle
                ? std::string("lifecycle -")
                : (e.is_segment ? "vseg " : "view ") + Escape(e.view_name)) +
           "\n";
  }
  out += "checksum " + StrFormat("%08x", Crc32(out)) + "\n";
  return out;
}

bool ParseHex32(const std::string& s, uint32_t* out) {
  if (s.empty() || s.size() > 8) return false;
  uint32_t v = 0;
  for (char c : s) {
    int d = HexDigit(c);
    if (d < 0) return false;
    v = (v << 4) | static_cast<uint32_t>(d);
  }
  *out = v;
  return true;
}

bool ParseManifest(const std::string& content, Manifest* m) {
  // The self-checksum line must be last and cover every preceding byte.
  size_t pos = content.rfind("\nchecksum ");
  if (pos == std::string::npos) return false;
  const std::string body = content.substr(0, pos + 1);
  {
    std::istringstream is(content.substr(pos + 1));
    std::string tag, hex, extra;
    if (!(is >> tag >> hex) || tag != "checksum" || (is >> extra)) {
      return false;
    }
    uint32_t claimed = 0;
    if (!ParseHex32(hex, &claimed) || claimed != Crc32(body)) return false;
  }
  std::istringstream lines(body);
  std::string line;
  if (!std::getline(lines, line) || line != "eva-manifest 1") return false;
  if (!std::getline(lines, line) || !StartsWith(line, "generation ")) {
    return false;
  }
  if (!ParseInt64(line.substr(11), &m->generation) || m->generation < 1) {
    return false;
  }
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (!StartsWith(line, "file ")) return false;
    std::istringstream is(line.substr(5));
    ManifestEntry e;
    std::string size_tok, crc_tok, kind, name_tok;
    if (!(is >> e.file >> size_tok >> crc_tok >> kind >> name_tok)) {
      return false;
    }
    int64_t size = 0;
    if (!ParseInt64(size_tok, &size) || size < 0) return false;
    e.size = static_cast<uint64_t>(size);
    if (!ParseHex32(crc_tok, &e.crc)) return false;
    if (kind == "lifecycle") {
      e.is_lifecycle = true;
    } else if (kind == "view" || kind == "vseg") {
      e.is_segment = kind == "vseg";
      auto name = Unescape(name_tok);
      if (!name.ok()) return false;
      e.view_name = std::move(name.value());
    } else {
      return false;
    }
    m->entries.push_back(std::move(e));
  }
  return true;
}

/// Reads and verifies dir/MANIFEST. Returns a Status only for a simulated
/// crash (the injector halted); every other failure degrades to kAbsent or
/// kCorrupt so recovery can proceed.
Result<ManifestState> ReadManifest(const std::string& dir, fault::FaultFs* fs,
                                   Manifest* out) {
  auto res = fs->ReadFile(JoinPath(dir, "MANIFEST"));
  if (!res.ok()) {
    if (fs->halted()) return res.status();
    return res.status().code() == StatusCode::kNotFound
               ? ManifestState::kAbsent
               : ManifestState::kCorrupt;
  }
  return ParseManifest(res.value(), out) ? ManifestState::kValid
                                         : ManifestState::kCorrupt;
}

/// Commits `m` as dir/MANIFEST (tmp + fsync + rename), then garbage
/// collects every managed file the new manifest does not list: stale views
/// of dropped/evicted signatures, the previous generation, leftover tmp
/// and quarantine files. Removal failures are ignored (the next load
/// quarantines whatever survived) unless the injector halted.
Status CommitManifest(const std::string& dir, const Manifest& m,
                      fault::FaultFs* fs) {
  const std::string text = RenderManifest(m);
  const std::string tmp = JoinPath(dir, "MANIFEST.tmp");
  EVA_RETURN_IF_ERROR(fs->WriteFile(tmp, text));
  EVA_RETURN_IF_ERROR(fs->Rename(tmp, JoinPath(dir, "MANIFEST")));
  std::set<std::string> keep = {"MANIFEST"};
  for (const ManifestEntry& e : m.entries) keep.insert(e.file);
  for (const std::string& name : ListFiles(dir)) {
    if (keep.count(name) > 0 || !IsManagedFile(name)) continue;
    Status st = fs->Remove(JoinPath(dir, name));
    if (!st.ok() && fs->halted()) return st;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// View file serialization / parsing
// ---------------------------------------------------------------------------

std::string SerializeView(const std::string& name,
                          const MaterializedView& view) {
  std::ostringstream out;
  out << "eva-view 1\n";
  out << "name " << Escape(name) << "\n";
  out << "schema " << view.value_schema().num_fields();
  for (const Field& f : view.value_schema().fields()) {
    out << " " << Escape(f.name) << " " << DataTypeName(f.type);
  }
  out << "\n";
  for (const auto& [key, rows] : view.entries()) {
    out << "key " << key.frame << " " << key.obj << " " << rows.size()
        << "\n";
    for (const Row& row : rows) {
      out << "row";
      for (const Value& v : row) out << " " << EncodeValue(v);
      out << "\n";
    }
  }
  return out.str();
}

/// Parses one view file body and, only if the whole body parses, installs
/// its keys into `store` (merging; existing keys win). Staging the rows
/// first means a file that fails halfway contributes nothing — a corrupt
/// file can only underclaim, never leave half-loaded state behind.
Status ParseViewBody(const std::string& content, const std::string& file,
                     ViewStore* store) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != "eva-view 1") {
    return Status::InvalidArgument("bad view file header: " + file);
  }
  if (!std::getline(in, line) || !StartsWith(line, "name ")) {
    return Status::InvalidArgument("missing view name in " + file);
  }
  EVA_ASSIGN_OR_RETURN(std::string name, Unescape(line.substr(5)));
  if (!std::getline(in, line) || !StartsWith(line, "schema ")) {
    return Status::InvalidArgument("missing schema in " + file);
  }
  Schema schema;
  {
    std::istringstream is(line.substr(7));
    int64_t n = 0;
    if (!(is >> n) || n < 0) {
      return Status::InvalidArgument("bad schema count in " + file);
    }
    for (int64_t i = 0; i < n; ++i) {
      std::string col, type;
      if (!(is >> col >> type)) {
        return Status::InvalidArgument("truncated schema line in " + file);
      }
      EVA_ASSIGN_OR_RETURN(std::string col_name, Unescape(col));
      schema.AddField({col_name, TypeFromName(type)});
    }
  }
  std::vector<std::pair<ViewKey, std::vector<Row>>> staged;
  ViewKey key{0, -1};
  int64_t pending_rows = 0;
  std::vector<Row> rows;
  bool has_key = false;
  auto flush = [&]() -> Status {
    if (static_cast<int64_t>(rows.size()) != pending_rows) {
      return Status::InvalidArgument("row count mismatch in " + file +
                                     " for key " +
                                     std::to_string(key.frame));
    }
    staged.emplace_back(key, std::move(rows));
    rows = {};
    return Status::OK();
  };
  while (std::getline(in, line)) {
    if (StartsWith(line, "key ")) {
      if (has_key) EVA_RETURN_IF_ERROR(flush());
      std::istringstream is(line.substr(4));
      if (!(is >> key.frame >> key.obj >> pending_rows) ||
          pending_rows < 0) {
        return Status::InvalidArgument("bad key line in " + file + ": " +
                                       line);
      }
      has_key = true;
      rows.clear();
    } else if (StartsWith(line, "row ")) {
      if (!has_key) {
        return Status::InvalidArgument("row before key in " + file);
      }
      std::istringstream is(line.substr(4));
      Row row;
      std::string cell;
      while (is >> cell) {
        EVA_ASSIGN_OR_RETURN(Value v, DecodeValue(cell));
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    } else if (!line.empty()) {
      return Status::InvalidArgument("unexpected line in view file: " +
                                     line);
    }
  }
  if (has_key) EVA_RETURN_IF_ERROR(flush());
  MaterializedView* view = store->GetOrCreate(name, schema);
  for (auto& [k, r] : staged) view->Put(k, std::move(r));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Binary .evaseg codec files (compressed sealed segments)
// ---------------------------------------------------------------------------

constexpr char kSegMagic[] = "eva-seg 1\n";

void WritePacked(ByteWriter* w, const BitPackedVec& p) {
  w->U8(static_cast<uint8_t>(p.width()));
  for (uint64_t word : p.words()) w->U64(word);
}

bool ReadPacked(ByteReader* r, size_t n, BitPackedVec* p) {
  uint8_t width;
  if (!r->U8(&width) || width > 64) return false;
  size_t bytes = BitPackedVec::PackedBytes(n, width);
  if (r->remaining() < bytes) return false;
  std::vector<uint64_t> words(bytes / 8);
  for (uint64_t& word : words) {
    if (!r->U64(&word)) return false;
  }
  p->Restore(n, width, std::move(words));
  return true;
}

void WriteNullBits(ByteWriter* w, const ColumnVec& col) {
  w->U8(col.null_bits_.empty() ? 0 : 1);
  for (uint64_t word : col.null_bits_) w->U64(word);
}

bool ReadNullBits(ByteReader* r, size_t n, ColumnVec* col) {
  uint8_t has;
  if (!r->U8(&has) || has > 1) return false;
  if (has == 0) return true;
  size_t words = (n + 63) / 64;
  if (r->remaining() < words * 8) return false;
  col->null_bits_.resize(words);
  for (uint64_t& word : col->null_bits_) {
    if (!r->U64(&word)) return false;
  }
  return true;
}

bool ReadRleEnds(ByteReader* r, size_t runs, size_t n,
                 std::vector<uint32_t>* ends) {
  ends->resize(runs);
  uint64_t prev = 0;
  for (size_t i = 0; i < runs; ++i) {
    uint64_t e;
    if (!r->Varint(&e)) return false;
    if (e <= prev || e > n) return false;  // strictly increasing, in range
    (*ends)[i] = static_cast<uint32_t>(e);
    prev = e;
  }
  return runs == 0 ? n == 0 : prev == n;
}

void WriteColumn(ByteWriter* w, const ColumnVec& col) {
  w->U8(static_cast<uint8_t>(col.enc_));
  w->U8(static_cast<uint8_t>(col.codec_));
  if (col.enc_ == ColumnVec::Enc::kValue) {
    w->Varint(col.raw_.size());
    for (const Value& v : col.raw_) w->Str(EncodeValue(v));
    return;
  }
  w->Varint(col.n_);
  WriteNullBits(w, col);
  switch (col.enc_) {
    case ColumnVec::Enc::kInt64:
      if (col.codec_ == ColumnVec::Codec::kFor) {
        w->Zigzag(col.for_base_);
        WritePacked(w, col.packed_);
      } else if (col.codec_ == ColumnVec::Codec::kDictNum) {
        w->Varint(col.i64_.size());
        for (int64_t v : col.i64_) w->Zigzag(v);
        WritePacked(w, col.packed_);
      } else {  // kPlain / kRle value lane (+ run ends for kRle)
        w->Varint(col.i64_.size());
        for (int64_t v : col.i64_) w->Zigzag(v);
        if (col.codec_ == ColumnVec::Codec::kRle) {
          for (uint32_t e : col.rle_end_) w->Varint(e);
        }
      }
      break;
    case ColumnVec::Enc::kDouble:
      if (col.codec_ == ColumnVec::Codec::kExpPack) {
        // Sign/exponent prefix dictionary (12-bit values) + packed lane.
        w->Varint(col.i64_.size());
        for (int64_t v : col.i64_) w->Varint(static_cast<uint64_t>(v));
        WritePacked(w, col.packed_);
        break;
      }
      w->Varint(col.f64_.size());
      for (double v : col.f64_) w->F64(v);
      if (col.codec_ == ColumnVec::Codec::kRle) {
        for (uint32_t e : col.rle_end_) w->Varint(e);
      } else if (col.codec_ == ColumnVec::Codec::kDictNum) {
        WritePacked(w, col.packed_);
      }
      break;
    case ColumnVec::Enc::kBool:
      if (col.codec_ == ColumnVec::Codec::kBitPack) {
        WritePacked(w, col.packed_);
      } else {
        w->Varint(col.b8_.size());
        w->Bytes(col.b8_.data(), col.b8_.size());
        if (col.codec_ == ColumnVec::Codec::kRle) {
          for (uint32_t e : col.rle_end_) w->Varint(e);
        }
      }
      break;
    case ColumnVec::Enc::kDict:
      w->Varint(col.dict_.size());
      for (const std::string& s : col.dict_) w->Str(s);
      if (col.codec_ == ColumnVec::Codec::kBitPack) {
        WritePacked(w, col.packed_);
      } else {
        w->Varint(col.codes_.size());
        for (int32_t c : col.codes_) w->Varint(static_cast<uint64_t>(c));
        if (col.codec_ == ColumnVec::Codec::kRle) {
          for (uint32_t e : col.rle_end_) w->Varint(e);
        }
      }
      break;
    case ColumnVec::Enc::kValue:
      break;
  }
}

/// Reads and exhaustively validates one column: lane sizes, codec/enc
/// legality, dictionary code ranges, run offsets. After a successful read,
/// At(i) is safe for every i < n.
bool ReadColumn(ByteReader* r, size_t expected_rows, ColumnVec* col) {
  uint8_t enc_b, codec_b;
  if (!r->U8(&enc_b) || !r->U8(&codec_b)) return false;
  if (enc_b > static_cast<uint8_t>(ColumnVec::Enc::kValue)) return false;
  if (codec_b >= ColumnVec::kNumCodecs) return false;
  col->enc_ = static_cast<ColumnVec::Enc>(enc_b);
  col->codec_ = static_cast<ColumnVec::Codec>(codec_b);
  const auto codec = col->codec_;
  if (col->enc_ == ColumnVec::Enc::kValue) {
    if (codec != ColumnVec::Codec::kPlain) return false;
    uint64_t n;
    if (!r->Count(&n) || n != expected_rows) return false;
    col->raw_.reserve(static_cast<size_t>(n));
    std::string cell;
    for (uint64_t i = 0; i < n; ++i) {
      if (!r->Str(&cell)) return false;
      auto v = DecodeValue(cell);
      if (!v.ok()) return false;
      col->raw_.push_back(std::move(v.value()));
    }
    return true;
  }
  uint64_t n;
  if (!r->Varint(&n) || n > ByteReader::kMaxCount) return false;
  if (n != expected_rows) return false;
  col->n_ = static_cast<size_t>(n);
  if (!ReadNullBits(r, col->n_, col)) return false;
  auto read_ends = [&](size_t runs) {
    return ReadRleEnds(r, runs, col->n_, &col->rle_end_);
  };
  switch (col->enc_) {
    case ColumnVec::Enc::kInt64: {
      if (codec == ColumnVec::Codec::kBitPack ||
          codec == ColumnVec::Codec::kExpPack) {
        return false;
      }
      if (codec == ColumnVec::Codec::kFor) {
        return r->Zigzag(&col->for_base_) &&
               ReadPacked(r, col->n_, &col->packed_);
      }
      uint64_t m;
      if (!r->Count(&m)) return false;
      if (codec == ColumnVec::Codec::kPlain && m != n) return false;
      if (codec != ColumnVec::Codec::kPlain && (m == 0 || m > n)) {
        return false;
      }
      col->i64_.resize(static_cast<size_t>(m));
      for (int64_t& v : col->i64_) {
        if (!r->Zigzag(&v)) return false;
      }
      if (codec == ColumnVec::Codec::kRle) return read_ends(col->i64_.size());
      if (codec == ColumnVec::Codec::kDictNum) {
        if (!ReadPacked(r, col->n_, &col->packed_)) return false;
        for (size_t i = 0; i < col->n_; ++i) {
          if (col->packed_.Get(i) >= m) return false;
        }
      }
      return true;
    }
    case ColumnVec::Enc::kDouble: {
      if (codec == ColumnVec::Codec::kBitPack ||
          codec == ColumnVec::Codec::kFor) {
        return false;
      }
      if (codec == ColumnVec::Codec::kExpPack) {
        // Prefix dictionary: 1..4096 distinct 12-bit values, then the
        // packed lane whose top bits index it. After validation At(i)
        // is safe for every i < n.
        uint64_t m;
        if (!r->Count(&m) || m == 0 || m > 4096) return false;
        col->i64_.resize(static_cast<size_t>(m));
        for (int64_t& v : col->i64_) {
          uint64_t u;
          if (!r->Varint(&u) || u > 0xFFF) return false;
          v = static_cast<int64_t>(u);
        }
        if (!ReadPacked(r, col->n_, &col->packed_)) return false;
        for (size_t i = 0; i < col->n_; ++i) {
          if ((col->packed_.Get(i) >> 52) >= m) return false;
        }
        return true;
      }
      uint64_t m;
      if (!r->Count(&m, 8)) return false;
      if (codec == ColumnVec::Codec::kPlain && m != n) return false;
      if (codec != ColumnVec::Codec::kPlain && (m == 0 || m > n)) {
        return false;
      }
      col->f64_.resize(static_cast<size_t>(m));
      for (double& v : col->f64_) {
        if (!r->F64(&v)) return false;
      }
      if (codec == ColumnVec::Codec::kRle) return read_ends(col->f64_.size());
      if (codec == ColumnVec::Codec::kDictNum) {
        if (!ReadPacked(r, col->n_, &col->packed_)) return false;
        for (size_t i = 0; i < col->n_; ++i) {
          if (col->packed_.Get(i) >= m) return false;
        }
      }
      return true;
    }
    case ColumnVec::Enc::kBool: {
      if (codec == ColumnVec::Codec::kFor ||
          codec == ColumnVec::Codec::kDictNum ||
          codec == ColumnVec::Codec::kExpPack) {
        return false;
      }
      if (codec == ColumnVec::Codec::kBitPack) {
        return ReadPacked(r, col->n_, &col->packed_) &&
               col->packed_.width() <= 1;
      }
      uint64_t m;
      if (!r->Count(&m)) return false;
      if (codec == ColumnVec::Codec::kPlain && m != n) return false;
      if (codec == ColumnVec::Codec::kRle && (m == 0 || m > n)) return false;
      if (r->remaining() < m) return false;
      col->b8_.resize(static_cast<size_t>(m));
      for (uint8_t& v : col->b8_) {
        if (!r->U8(&v)) return false;
      }
      if (codec == ColumnVec::Codec::kRle) return read_ends(col->b8_.size());
      return true;
    }
    case ColumnVec::Enc::kDict: {
      if (codec == ColumnVec::Codec::kFor ||
          codec == ColumnVec::Codec::kDictNum ||
          codec == ColumnVec::Codec::kExpPack) {
        return false;
      }
      uint64_t d;
      if (!r->Count(&d)) return false;
      if (d == 0) return false;  // kDict implies >= 1 non-null string
      col->dict_.resize(static_cast<size_t>(d));
      for (std::string& s : col->dict_) {
        if (!r->Str(&s)) return false;
      }
      if (codec == ColumnVec::Codec::kBitPack) {
        if (!ReadPacked(r, col->n_, &col->packed_)) return false;
        for (size_t i = 0; i < col->n_; ++i) {
          if (col->packed_.Get(i) >= d) return false;
        }
        return true;
      }
      uint64_t m;
      if (!r->Count(&m)) return false;
      if (codec == ColumnVec::Codec::kPlain && m != n) return false;
      if (codec == ColumnVec::Codec::kRle && (m == 0 || m > n)) return false;
      col->codes_.resize(static_cast<size_t>(m));
      for (int32_t& c : col->codes_) {
        uint64_t v;
        if (!r->Varint(&v) || v >= d) return false;
        c = static_cast<int32_t>(v);
      }
      if (codec == ColumnVec::Codec::kRle) {
        return read_ends(col->codes_.size());
      }
      return true;
    }
    case ColumnVec::Enc::kValue:
      break;
  }
  return false;
}

}  // namespace

std::string SerializeViewSegments(const std::string& name,
                                  const MaterializedView& view) {
  auto sealed = view.SealedSegments();
  ByteWriter w;
  w.Bytes(kSegMagic, sizeof(kSegMagic) - 1);
  w.Str(name);
  w.Varint(view.value_schema().num_fields());
  for (const Field& f : view.value_schema().fields()) {
    w.Str(f.name);
    w.U8(static_cast<uint8_t>(f.type));
  }
  w.Varint(sealed.size());
  for (const auto& [seg_id, seg] : sealed) {
    const size_t nkeys = seg->num_keys();
    w.Varint(nkeys);
    int64_t prev_frame = 0;
    for (size_t i = 0; i < nkeys; ++i) {
      int64_t f = seg->key_frame(i);
      w.Zigzag(f - prev_frame);
      prev_frame = f;
    }
    for (size_t i = 0; i < nkeys; ++i) w.Zigzag(seg->key_obj(i));
    for (size_t i = 0; i < nkeys; ++i) {
      w.Varint(static_cast<uint64_t>(seg->row_begin_at(i + 1) -
                                     seg->row_begin_at(i)));
    }
    w.Varint(seg->cols.size());
    for (const ColumnVec& col : seg->cols) WriteColumn(&w, col);
  }
  return w.Take();
}

Status ParseSegmentBody(const std::string& content, const std::string& file,
                        ViewStore* store) {
  const size_t magic_len = sizeof(kSegMagic) - 1;
  if (content.size() < magic_len ||
      content.compare(0, magic_len, kSegMagic) != 0) {
    return Status::InvalidArgument("bad segment file header: " + file);
  }
  ByteReader r(content.data() + magic_len, content.size() - magic_len);
  auto corrupt = [&file](const char* what) {
    return Status::InvalidArgument(std::string("corrupt segment file ") +
                                   file + ": " + what);
  };
  std::string name;
  if (!r.Str(&name)) return corrupt("name");
  uint64_t nfields;
  if (!r.Count(&nfields)) return corrupt("schema count");
  Schema schema;
  for (uint64_t i = 0; i < nfields; ++i) {
    std::string fname;
    uint8_t type;
    if (!r.Str(&fname) || !r.U8(&type) ||
        type > static_cast<uint8_t>(DataType::kString)) {
      return corrupt("schema field");
    }
    schema.AddField({fname, static_cast<DataType>(type)});
  }
  uint64_t nsegs;
  if (!r.Count(&nsegs)) return corrupt("segment count");
  // Stage everything; a failure anywhere installs nothing.
  std::vector<std::pair<ViewKey, std::vector<Row>>> staged;
  for (uint64_t s = 0; s < nsegs; ++s) {
    uint64_t nkeys;
    if (!r.Count(&nkeys)) return corrupt("key count");
    std::vector<ViewKey> keys(static_cast<size_t>(nkeys));
    int64_t frame = 0;
    for (ViewKey& k : keys) {
      int64_t delta;
      if (!r.Zigzag(&delta)) return corrupt("frame delta");
      frame += delta;
      k.frame = frame;
    }
    for (ViewKey& k : keys) {
      if (!r.Zigzag(&k.obj)) return corrupt("obj");
    }
    for (size_t i = 1; i < keys.size(); ++i) {
      if (!(keys[i - 1] < keys[i])) return corrupt("key order");
    }
    std::vector<uint32_t> row_counts(keys.size());
    uint64_t total_rows = 0;
    for (uint32_t& c : row_counts) {
      uint64_t v;
      if (!r.Varint(&v) || v > ByteReader::kMaxCount) {
        return corrupt("row count");
      }
      c = static_cast<uint32_t>(v);
      total_rows += v;
    }
    if (total_rows > ByteReader::kMaxCount) return corrupt("row total");
    uint64_t ncols;
    if (!r.Count(&ncols)) return corrupt("column count");
    if (ncols != nfields) return corrupt("column count mismatch");
    std::vector<ColumnVec> cols(static_cast<size_t>(ncols));
    for (ColumnVec& col : cols) {
      if (!ReadColumn(&r, static_cast<size_t>(total_rows), &col)) {
        return corrupt("column");
      }
    }
    // Reconstruct the exact rows through the same At() the probe path
    // uses — the decoded codec state was validated above, so every access
    // is in bounds.
    size_t row = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      std::vector<Row> rows;
      rows.reserve(row_counts[i]);
      for (uint32_t j = 0; j < row_counts[i]; ++j, ++row) {
        Row out_row;
        out_row.reserve(cols.size());
        for (const ColumnVec& col : cols) out_row.push_back(col.At(row));
        rows.push_back(std::move(out_row));
      }
      staged.emplace_back(keys[i], std::move(rows));
    }
  }
  if (!r.done()) return corrupt("trailing bytes");
  MaterializedView* view = store->GetOrCreate(name, schema);
  for (auto& [k, rows] : staged) view->Put(k, std::move(rows));
  return Status::OK();
}

namespace {

// ---------------------------------------------------------------------------
// Lifecycle serialization / parsing
// ---------------------------------------------------------------------------

std::string SerializeLifecycle(const ViewStore& store,
                               const udf::UdfManager& manager) {
  std::ostringstream out;
  out << "eva-lifecycle 1\n";
  for (const auto& [name, view] : store.views()) {
    out << "view " << Escape(name) << " " << view->segment_frames() << "\n";
    for (const SegmentStats& seg : view->Segments()) {
      out << "segment " << seg.segment_id << " " << seg.info.keys << " "
          << seg.info.rows << " " << seg.info.created_tick << " "
          << seg.info.last_access_tick << " " << seg.info.last_access_query
          << "\n";
    }
  }
  for (const auto& [key, entry] : manager.entries()) {
    out << "coverage " << Escape(key) << " "
        << symbolic::EncodePredicate(entry.coverage) << "\n";
  }
  return out.str();
}

struct LifecycleStaged {
  struct ViewStamps {
    std::string name;
    int64_t segment_frames = 0;
    std::vector<std::pair<int64_t, SegmentInfo>> segments;
  };
  std::vector<ViewStamps> views;
  std::vector<std::pair<std::string, symbolic::Predicate>> coverage;
};

/// Parses the whole lifecycle body before anything is applied — a file
/// that fails halfway installs no stamps and no coverage, so a torn
/// lifecycle file can never leave partially-claimed coverage behind.
Status ParseLifecycleBody(const std::string& content,
                          const std::string& file, LifecycleStaged* out) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != "eva-lifecycle 1") {
    return Status::InvalidArgument("bad lifecycle file header: " + file);
  }
  while (std::getline(in, line)) {
    if (StartsWith(line, "view ")) {
      std::istringstream is(line.substr(5));
      std::string name_tok;
      LifecycleStaged::ViewStamps stamps;
      if (!(is >> name_tok >> stamps.segment_frames)) {
        return Status::InvalidArgument("truncated view line: " + line);
      }
      EVA_ASSIGN_OR_RETURN(stamps.name, Unescape(name_tok));
      out->views.push_back(std::move(stamps));
    } else if (StartsWith(line, "segment ")) {
      if (out->views.empty()) {
        return Status::InvalidArgument("segment before view: " + line);
      }
      std::istringstream is(line.substr(8));
      int64_t id = 0;
      SegmentInfo info;
      if (!(is >> id >> info.keys >> info.rows >> info.created_tick >>
            info.last_access_tick >> info.last_access_query)) {
        return Status::InvalidArgument("truncated segment line: " + line);
      }
      out->views.back().segments.emplace_back(id, info);
    } else if (StartsWith(line, "coverage ")) {
      std::istringstream is(line.substr(9));
      std::string key_tok;
      if (!(is >> key_tok)) {
        return Status::InvalidArgument("truncated coverage line: " + line);
      }
      EVA_ASSIGN_OR_RETURN(std::string key, Unescape(key_tok));
      std::string encoded;
      std::getline(is, encoded);
      if (!encoded.empty() && encoded.front() == ' ') encoded.erase(0, 1);
      EVA_ASSIGN_OR_RETURN(symbolic::Predicate coverage,
                           symbolic::DecodePredicate(encoded));
      out->coverage.emplace_back(std::move(key), std::move(coverage));
    } else if (!line.empty()) {
      return Status::InvalidArgument("unexpected lifecycle line: " + line);
    }
  }
  return Status::OK();
}

void ApplyLifecycle(const LifecycleStaged& staged, ViewStore* store,
                    udf::UdfManager* manager) {
  for (const auto& stamps : staged.views) {
    MaterializedView* view = store->Find(stamps.name);
    // A view absent from the store, or reloaded with a different segment
    // width, keeps fresh stamps — a safe default.
    if (view == nullptr || view->segment_frames() != stamps.segment_frames) {
      continue;
    }
    for (const auto& [id, info] : stamps.segments) {
      view->RestoreSegmentStamps(id, info);
    }
  }
  if (manager == nullptr) return;
  for (const auto& [key, coverage] : staged.coverage) {
    // Existing coverage wins, mirroring the "existing keys win" merge
    // semantics of the view loader.
    if (!manager->HasCoverage(key)) {
      manager->SetCoverage(key, coverage);
    }
  }
}

// ---------------------------------------------------------------------------
// Quarantine + save/load internals
// ---------------------------------------------------------------------------

/// Sets `file` aside as `<file>.quarantined` and records it. The rename
/// failing (file already gone, injected fault) still records the
/// quarantine — the file is skipped by the load either way — unless the
/// injector halted (simulated crash propagates).
Status Quarantine(fault::FaultFs* fs, const std::string& dir,
                  const std::string& file, const std::string& view_key,
                  const std::string& reason, RecoveryReport* report) {
  Status st =
      fs->Rename(JoinPath(dir, file), JoinPath(dir, file + ".quarantined"));
  if (!st.ok() && fs->halted()) return st;
  report->quarantined.push_back({file, view_key, reason});
  return Status::OK();
}

Status SaveImpl(const ViewStore& store, const udf::UdfManager* manager,
                bool write_views, bool carry_view_entries,
                const std::string& dir, fault::FaultFs* fs,
                const SaveOptions& options = {}) {
  EVA_RETURN_IF_ERROR(fs->CreateDirs(dir));
  Manifest old;
  EVA_ASSIGN_OR_RETURN(ManifestState old_state, ReadManifest(dir, fs, &old));
  Manifest next;
  next.generation =
      (old_state == ManifestState::kValid ? old.generation : 0) + 1;
  const std::string gen_tag = ".g" + std::to_string(next.generation);
  if (carry_view_entries && old_state == ManifestState::kValid) {
    for (const ManifestEntry& e : old.entries) {
      if (!e.is_lifecycle) next.entries.push_back(e);
    }
  }
  auto write_atomic = [&](const std::string& file,
                          const std::string& body) -> Status {
    const std::string path = JoinPath(dir, file);
    EVA_RETURN_IF_ERROR(fs->WriteFile(path + ".tmp", body));
    return fs->Rename(path + ".tmp", path);
  };
  if (write_views) {
    for (const auto& [name, view] : store.views()) {
      const bool seg_form = options.compressed_segments;
      const std::string body = seg_form ? SerializeViewSegments(name, *view)
                                        : SerializeView(name, *view);
      const std::string file = SanitizeFilename(name) + gen_tag +
                               (seg_form ? ".evaseg" : ".evaview");
      EVA_RETURN_IF_ERROR(write_atomic(file, body));
      next.entries.push_back(
          {file, body.size(), Crc32(body), false, seg_form, name});
    }
  }
  if (manager != nullptr) {
    const std::string body = SerializeLifecycle(store, *manager);
    const std::string file = "lifecycle" + gen_tag + ".evastate";
    EVA_RETURN_IF_ERROR(write_atomic(file, body));
    next.entries.push_back(
        {file, body.size(), Crc32(body), true, false, ""});
  }
  return CommitManifest(dir, next, fs);
}

}  // namespace

std::string EncodeValue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return "N";
    case DataType::kBool:
      return v.AsBool() ? "B:1" : "B:0";
    case DataType::kInt64:
      return "I:" + std::to_string(v.AsInt64());
    case DataType::kDouble:
      return StrFormat("D:%.17g", v.AsDouble());
    case DataType::kString:
      return "S:" + Escape(v.AsString());
  }
  return "N";
}

Result<Value> DecodeValue(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty view cell");
  if (text == "N") return Value::Null();
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument("malformed view cell: " + text);
  }
  std::string payload = text.substr(2);
  switch (text[0]) {
    case 'B':
      return Value(payload == "1");
    case 'I': {
      int64_t v = 0;
      if (!ParseInt64(payload, &v)) {
        return Status::InvalidArgument("bad int cell: " + text);
      }
      return Value(v);
    }
    case 'D': {
      double v = 0;
      if (!ParseDouble(payload, &v)) {
        return Status::InvalidArgument("bad double cell: " + text);
      }
      return Value(v);
    }
    case 'S': {
      EVA_ASSIGN_OR_RETURN(std::string s, Unescape(payload));
      return Value(std::move(s));
    }
    default:
      return Status::InvalidArgument("unknown view cell tag: " + text);
  }
}

std::string RecoveryReport::Summary() const {
  std::string out = legacy ? std::string("legacy v1 directory")
                           : StrFormat("generation %lld",
                                       static_cast<long long>(generation));
  if (clean() && tmp_removed == 0) return out + ", clean";
  if (manifest_corrupt) out += ", MANIFEST corrupt (quarantined)";
  if (!quarantined.empty()) {
    out += StrFormat(", quarantined %d file(s):",
                     static_cast<int>(quarantined.size()));
    for (const QuarantinedFile& q : quarantined) {
      out += " " + q.file + " (" + q.reason + ")";
    }
  }
  if (!retracted.empty()) {
    out += StrFormat(", retracted coverage for %d signature(s)",
                     static_cast<int>(retracted.size()));
  }
  if (tmp_removed > 0) {
    out += StrFormat(", removed %lld tmp file(s)",
                     static_cast<long long>(tmp_removed));
  }
  return out;
}

Status SaveSession(const ViewStore& store, const udf::UdfManager& manager,
                   const std::string& dir, fault::FaultFs* fs,
                   const SaveOptions& options) {
  fault::FaultFs plain;
  if (fs == nullptr) fs = &plain;
  return SaveImpl(store, &manager, /*write_views=*/true,
                  /*carry_view_entries=*/false, dir, fs, options);
}

Result<int64_t> ManifestGeneration(const std::string& dir,
                                   fault::FaultFs* fs) {
  fault::FaultFs plain;
  if (fs == nullptr) fs = &plain;
  Manifest manifest;
  EVA_ASSIGN_OR_RETURN(ManifestState state, ReadManifest(dir, fs, &manifest));
  switch (state) {
    case ManifestState::kValid:
      return manifest.generation;
    case ManifestState::kAbsent:
      return static_cast<int64_t>(0);
    case ManifestState::kCorrupt:
      break;
  }
  return Status::Internal("corrupt MANIFEST in " + dir);
}

Status SaveViewStore(const ViewStore& store, const std::string& dir) {
  fault::FaultFs plain;
  return SaveImpl(store, nullptr, /*write_views=*/true,
                  /*carry_view_entries=*/false, dir, &plain);
}

Status SaveLifecycleState(const ViewStore& store,
                          const udf::UdfManager& manager,
                          const std::string& dir) {
  fault::FaultFs plain;
  return SaveImpl(store, &manager, /*write_views=*/false,
                  /*carry_view_entries=*/true, dir, &plain);
}

Status LoadViewStoreEx(const std::string& dir, ViewStore* store,
                       fault::FaultFs* fs, RecoveryReport* report) {
  fault::FaultFs plain;
  if (fs == nullptr) fs = &plain;
  std::error_code ec;
  if (!stdfs::is_directory(dir, ec)) {
    return Status::NotFound("view directory missing: " + dir);
  }
  Manifest manifest;
  EVA_ASSIGN_OR_RETURN(ManifestState state,
                       ReadManifest(dir, fs, &manifest));
  if (state == ManifestState::kValid) {
    report->generation = manifest.generation;
    std::set<std::string> listed = {"MANIFEST"};
    for (const ManifestEntry& e : manifest.entries) listed.insert(e.file);
    for (const ManifestEntry& e : manifest.entries) {
      if (e.is_lifecycle) continue;
      auto res = fs->ReadFile(JoinPath(dir, e.file));
      if (!res.ok()) {
        if (fs->halted()) return res.status();
        EVA_RETURN_IF_ERROR(Quarantine(fs, dir, e.file, e.view_name,
                                       "unreadable: " + res.status().message(),
                                       report));
        continue;
      }
      const std::string& body = res.value();
      if (body.size() != e.size || Crc32(body) != e.crc) {
        EVA_RETURN_IF_ERROR(Quarantine(fs, dir, e.file, e.view_name,
                                       "checksum mismatch", report));
        continue;
      }
      Status parsed = e.is_segment ? ParseSegmentBody(body, e.file, store)
                                   : ParseViewBody(body, e.file, store);
      if (!parsed.ok()) {
        EVA_RETURN_IF_ERROR(Quarantine(fs, dir, e.file, e.view_name,
                                       parsed.message(), report));
      }
    }
    // Sweep: tmp files are leftovers of an interrupted save (the rename
    // never happened) and are simply removed; managed files the manifest
    // does not list were never committed and cannot be trusted.
    for (const std::string& name : ListFiles(dir)) {
      if (listed.count(name) > 0 || !IsManagedFile(name)) continue;
      if (EndsWith(name, ".quarantined")) continue;
      if (EndsWith(name, ".tmp")) {
        Status st = fs->Remove(JoinPath(dir, name));
        if (!st.ok() && fs->halted()) return st;
        if (st.ok()) ++report->tmp_removed;
        continue;
      }
      EVA_RETURN_IF_ERROR(
          Quarantine(fs, dir, name, "", "not in manifest", report));
    }
    return Status::OK();
  }
  if (state == ManifestState::kCorrupt) {
    // A torn or bit-flipped manifest means nothing in the directory can be
    // verified: quarantine everything. Pure underclaim — every query
    // recomputes, results stay correct.
    report->manifest_corrupt = true;
    EVA_RETURN_IF_ERROR(
        Quarantine(fs, dir, "MANIFEST", "", "manifest corrupt", report));
    for (const std::string& name : ListFiles(dir)) {
      if (name == "MANIFEST" || !IsManagedFile(name)) continue;
      if (EndsWith(name, ".quarantined")) continue;
      if (EndsWith(name, ".tmp")) {
        Status st = fs->Remove(JoinPath(dir, name));
        if (!st.ok() && fs->halted()) return st;
        if (st.ok()) ++report->tmp_removed;
        continue;
      }
      EVA_RETURN_IF_ERROR(
          Quarantine(fs, dir, name, "", "manifest corrupt", report));
    }
    return Status::OK();
  }
  // No MANIFEST: a pre-v2 (legacy) directory, loaded best-effort with no
  // checksums to lean on. Files that fail to parse are quarantined rather
  // than aborting the whole load (the v1 behavior).
  report->legacy = true;
  for (const std::string& name : ListFiles(dir)) {
    if (EndsWith(name, ".tmp")) {
      Status st = fs->Remove(JoinPath(dir, name));
      if (!st.ok() && fs->halted()) return st;
      if (st.ok()) ++report->tmp_removed;
      continue;
    }
    const bool is_segment = EndsWith(name, ".evaseg");
    if (!EndsWith(name, ".evaview") && !is_segment) continue;
    auto res = fs->ReadFile(JoinPath(dir, name));
    if (!res.ok()) {
      if (fs->halted()) return res.status();
      EVA_RETURN_IF_ERROR(Quarantine(fs, dir, name, "",
                                     "unreadable: " + res.status().message(),
                                     report));
      continue;
    }
    Status parsed = is_segment ? ParseSegmentBody(res.value(), name, store)
                               : ParseViewBody(res.value(), name, store);
    if (!parsed.ok()) {
      EVA_RETURN_IF_ERROR(
          Quarantine(fs, dir, name, "", parsed.message(), report));
    }
  }
  return Status::OK();
}

Status LoadLifecycleStateEx(const std::string& dir, ViewStore* store,
                            udf::UdfManager* manager, fault::FaultFs* fs,
                            RecoveryReport* report) {
  fault::FaultFs plain;
  if (fs == nullptr) fs = &plain;
  std::error_code ec;
  if (!stdfs::is_directory(dir, ec)) return Status::OK();
  Manifest manifest;
  EVA_ASSIGN_OR_RETURN(ManifestState state,
                       ReadManifest(dir, fs, &manifest));
  std::string file;
  std::string content;
  if (state == ManifestState::kValid) {
    const ManifestEntry* entry = nullptr;
    for (const ManifestEntry& e : manifest.entries) {
      if (e.is_lifecycle) entry = &e;
    }
    if (entry == nullptr) return Status::OK();  // views-only save
    file = entry->file;
    auto res = fs->ReadFile(JoinPath(dir, file));
    if (!res.ok()) {
      if (fs->halted()) return res.status();
      return Quarantine(fs, dir, file, "",
                        "unreadable: " + res.status().message(), report);
    }
    content = std::move(res.value());
    if (content.size() != entry->size || Crc32(content) != entry->crc) {
      return Quarantine(fs, dir, file, "", "checksum mismatch", report);
    }
  } else if (state == ManifestState::kCorrupt) {
    // LoadViewStoreEx already quarantined everything reachable; without a
    // trustworthy manifest no coverage may be installed (underclaim).
    return Status::OK();
  } else {
    // Legacy v1 layout: fixed filename, no checksum.
    file = "lifecycle.evastate";
    auto res = fs->ReadFile(JoinPath(dir, file));
    if (!res.ok()) {
      if (fs->halted()) return res.status();
      if (res.status().code() == StatusCode::kNotFound) {
        return Status::OK();  // pre-lifecycle save dir
      }
      return Quarantine(fs, dir, file, "",
                        "unreadable: " + res.status().message(), report);
    }
    content = std::move(res.value());
  }
  LifecycleStaged staged;
  Status parsed = ParseLifecycleBody(content, file, &staged);
  if (!parsed.ok()) {
    // Fresh stamps and empty coverage are always safe — quarantine and
    // carry on rather than failing the load.
    return Quarantine(fs, dir, file, "", parsed.message(), report);
  }
  ApplyLifecycle(staged, store, manager);
  return Status::OK();
}

Status LoadViewStore(const std::string& dir, ViewStore* store) {
  RecoveryReport report;
  return LoadViewStoreEx(dir, store, nullptr, &report);
}

Status LoadLifecycleState(const std::string& dir, ViewStore* store,
                          udf::UdfManager* manager) {
  RecoveryReport report;
  return LoadLifecycleStateEx(dir, store, manager, nullptr, &report);
}

Result<RecoveryReport> LoadSession(const std::string& dir, ViewStore* store,
                                   udf::UdfManager* manager,
                                   fault::FaultFs* fs) {
  fault::FaultFs plain;
  if (fs == nullptr) fs = &plain;
  RecoveryReport report;
  EVA_RETURN_IF_ERROR(LoadViewStoreEx(dir, store, fs, &report));
  EVA_RETURN_IF_ERROR(
      LoadLifecycleStateEx(dir, store, manager, fs, &report));
  if (manager != nullptr) {
    // Soundness: a quarantined view's rows are gone, so any coverage its
    // signature claims would overclaim — retract it entirely (p_u ← FALSE
    // via Subtract with TRUE; underclaiming only costs recomputation).
    std::set<std::string> done;
    for (const QuarantinedFile& q : report.quarantined) {
      if (q.view_key.empty() || done.count(q.view_key) > 0) continue;
      done.insert(q.view_key);
      if (!manager->HasCoverage(q.view_key)) continue;
      manager->RetractCoverage(q.view_key, symbolic::Predicate::True());
      report.retracted.push_back(q.view_key);
    }
  }
  return report;
}

}  // namespace eva::storage
