#ifndef EVA_STORAGE_VIEW_PERSISTENCE_H_
#define EVA_STORAGE_VIEW_PERSISTENCE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fault/fault_fs.h"
#include "storage/view_store.h"
#include "udf/udf_manager.h"

namespace eva::storage {

/// Crash-safe persistence for materialized UDF views (the paper stores
/// views on disk next to the Parquet-encoded video, §4.2/§5.2), format v2
/// (docs/RELIABILITY.md).
///
/// A save directory holds one file per view plus the lifecycle state,
/// both named with a generation number, and a MANIFEST that commits the
/// generation atomically:
///
///   <name>.g<G>.evaview        view data, text (same line format as v1)
///   <name>.g<G>.evaseg         view data, binary codec form (compressed
///                              sealed segments; written instead of the
///                              .evaview file when SaveOptions requests it)
///   lifecycle.g<G>.evastate    segment stamps + coverage (same as v1)
///   MANIFEST                   generation + per-file size and CRC32
///
/// Every file is written as `<file>.tmp`, fsynced, then renamed; the
/// MANIFEST is written last, the same way. An interrupted save therefore
/// leaves the previous generation fully loadable — the new generation's
/// files are ignored (and quarantined) because the MANIFEST never came to
/// claim them. Committing the MANIFEST also garbage-collects every managed
/// file it does not list, which is what removes stale `.evaview` files of
/// dropped or fully-evicted views (they used to silently resurrect on
/// reload) and the previous generation.
///
/// View file line format (unchanged from v1):
///
///   eva-view 1
///   name <view name>
///   schema <n> <col> <type> ...
///   key <frame> <obj> <num_rows>
///   row <cell> <cell> ...
///
/// Cells are type-prefixed (`N`, `B:`, `I:`, `D:`, `S:`); string cells are
/// percent-escaped so whitespace survives the round trip.

/// One file set aside during recovery (renamed to `<file>.quarantined`).
struct QuarantinedFile {
  std::string file;      // basename within the save directory
  std::string view_key;  // logical view name, "" when unknown
  std::string reason;
};

/// What LoadSession found and repaired. Recovery is never fatal: corrupt
/// or unmanifested state is quarantined and its symbolic coverage
/// retracted, so a reload can only underclaim (recompute), never overclaim
/// (§4.1 soundness).
struct RecoveryReport {
  int64_t generation = 0;  // manifest generation loaded; 0 = none
  bool legacy = false;     // pre-v2 directory (no MANIFEST)
  bool manifest_corrupt = false;
  std::vector<QuarantinedFile> quarantined;
  std::vector<std::string> retracted;  // coverage keys retracted
  int64_t tmp_removed = 0;

  bool clean() const { return !manifest_corrupt && quarantined.empty(); }
  /// One-line summary for the shell's .load output.
  std::string Summary() const;
};

/// Save-path configuration. `compressed_segments` writes each view as a
/// binary `.evaseg` codec file (sealed-segment encodings + bit-packed key
/// index, docs/STORAGE.md) instead of the text `.evaview` form. Loading
/// accepts either — a dir saved without compression still loads into a
/// compression-enabled engine and vice versa.
struct SaveOptions {
  bool compressed_segments = false;
};

/// Saves views + lifecycle state as one new generation with a single
/// MANIFEST commit — the engine's save path. All filesystem traffic goes
/// through `fs` (pass nullptr for a plain pass-through shim).
Status SaveSession(const ViewStore& store, const udf::UdfManager& manager,
                   const std::string& dir, fault::FaultFs* fs = nullptr,
                   const SaveOptions& options = {});

/// Loads a save directory with full recovery: verifies the MANIFEST and
/// every file's size/CRC32, quarantines what fails (or was never
/// manifested), removes leftover `.tmp` files, and retracts the symbolic
/// coverage of every quarantined view so reuse never overclaims. A
/// directory without a MANIFEST loads best-effort as legacy v1. Returns
/// NotFound only when `dir` itself is missing.
Result<RecoveryReport> LoadSession(const std::string& dir, ViewStore* store,
                                   udf::UdfManager* manager,
                                   fault::FaultFs* fs = nullptr);

/// Generation number the directory's MANIFEST currently commits: 0 when no
/// MANIFEST exists, an error only on a corrupt MANIFEST or a simulated
/// crash. The WAL names its log file after this generation (src/wal/) so a
/// checkpoint and its log tail stay paired.
Result<int64_t> ManifestGeneration(const std::string& dir,
                                   fault::FaultFs* fs = nullptr);

/// Legacy piecewise API (tests and pre-v2 callers). SaveViewStore commits
/// a views-only manifest; SaveLifecycleState writes the lifecycle file and
/// re-commits the manifest with the previous generation's view entries
/// carried over (the SaveViewStore-then-SaveLifecycleState sequence is
/// equivalent to one SaveSession, with two commit points instead of one).
Status SaveViewStore(const ViewStore& store, const std::string& dir);
Status LoadViewStore(const std::string& dir, ViewStore* store);
Status SaveLifecycleState(const ViewStore& store,
                          const udf::UdfManager& manager,
                          const std::string& dir);
Status LoadLifecycleState(const std::string& dir, ViewStore* store,
                          udf::UdfManager* manager);

/// Recovery-aware variants of the legacy loaders (LoadSession composes
/// them). `fs` may be nullptr; `report` accumulates.
Status LoadViewStoreEx(const std::string& dir, ViewStore* store,
                       fault::FaultFs* fs, RecoveryReport* report);
Status LoadLifecycleStateEx(const std::string& dir, ViewStore* store,
                            udf::UdfManager* manager, fault::FaultFs* fs,
                            RecoveryReport* report);

/// Cell encoding helpers (exposed for tests). DecodeValue returns a
/// Status error on malformed input — it never throws, even on overflowing
/// numerals or bad escapes (reader_fuzz_test).
std::string EncodeValue(const Value& v);
Result<Value> DecodeValue(const std::string& text);

/// Binary `.evaseg` body for one view: every sealed segment's keys and
/// codec-encoded columns (seals stale segments first; quiescence like
/// entries()). Exposed for the codec fuzz/round-trip tests.
std::string SerializeViewSegments(const std::string& name,
                                  const MaterializedView& view);

/// Parses a `.evaseg` body, validates it exhaustively (lane sizes, dict
/// code ranges, run offsets, key ordering), reconstructs the exact rows,
/// and installs them into `store` (merging; existing keys win). A body
/// that fails anywhere installs nothing — corrupt codec files underclaim,
/// never crash and never surface wrong rows (reader_fuzz_test).
Status ParseSegmentBody(const std::string& content, const std::string& file,
                        ViewStore* store);

}  // namespace eva::storage

#endif  // EVA_STORAGE_VIEW_PERSISTENCE_H_
