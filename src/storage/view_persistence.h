#ifndef EVA_STORAGE_VIEW_PERSISTENCE_H_
#define EVA_STORAGE_VIEW_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "storage/view_store.h"

namespace eva::storage {

/// Persists materialized UDF views across sessions (the paper stores views
/// on disk next to the Parquet-encoded video, §4.2/§5.2). One text file
/// per view under `dir`, in a line-oriented format:
///
///   eva-view 1
///   name <view name>
///   schema <n> <col> <type> ...
///   key <frame> <obj> <num_rows>
///   row <cell> <cell> ...
///
/// Cells are type-prefixed (`N`, `B:`, `I:`, `D:`, `S:`); string cells are
/// percent-escaped so whitespace survives the round trip.
Status SaveViewStore(const ViewStore& store, const std::string& dir);

/// Loads every `*.evaview` file in `dir` into `store` (merging with
/// whatever is already materialized; existing keys win, matching the
/// append-only STORE semantics).
Status LoadViewStore(const std::string& dir, ViewStore* store);

/// Cell encoding helpers (exposed for tests).
std::string EncodeValue(const Value& v);
Result<Value> DecodeValue(const std::string& text);

}  // namespace eva::storage

#endif  // EVA_STORAGE_VIEW_PERSISTENCE_H_
