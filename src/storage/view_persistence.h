#ifndef EVA_STORAGE_VIEW_PERSISTENCE_H_
#define EVA_STORAGE_VIEW_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "storage/view_store.h"
#include "udf/udf_manager.h"

namespace eva::storage {

/// Persists materialized UDF views across sessions (the paper stores views
/// on disk next to the Parquet-encoded video, §4.2/§5.2). One text file
/// per view under `dir`, in a line-oriented format:
///
///   eva-view 1
///   name <view name>
///   schema <n> <col> <type> ...
///   key <frame> <obj> <num_rows>
///   row <cell> <cell> ...
///
/// Cells are type-prefixed (`N`, `B:`, `I:`, `D:`, `S:`); string cells are
/// percent-escaped so whitespace survives the round trip.
Status SaveViewStore(const ViewStore& store, const std::string& dir);

/// Loads every `*.evaview` file in `dir` into `store` (merging with
/// whatever is already materialized; existing keys win, matching the
/// append-only STORE semantics).
Status LoadViewStore(const std::string& dir, ViewStore* store);

/// Cell encoding helpers (exposed for tests).
std::string EncodeValue(const Value& v);
Result<Value> DecodeValue(const std::string& text);

/// Persists the view lifecycle state alongside the views: per-view segment
/// width and per-segment accounting (keys, rows, creation/access stamps,
/// last-access query) plus each UDF signature's aggregated predicate p_u —
/// including any retraction performed by eviction. One `lifecycle.evastate`
/// file under `dir`:
///
///   eva-lifecycle 1
///   view <name> <segment_frames>
///   segment <id> <keys> <rows> <created_tick> <last_tick> <last_query>
///   coverage <key> <encoded predicate ...>
Status SaveLifecycleState(const ViewStore& store,
                          const udf::UdfManager& manager,
                          const std::string& dir);

/// Restores lifecycle state saved by SaveLifecycleState. Must run after
/// LoadViewStore (stamps attach to reloaded segments; a view absent from
/// the store, or reloaded with a different segment width, is skipped —
/// fresh stamps are a safe default). Coverage predicates are installed
/// only for signatures that have none yet, mirroring the "existing keys
/// win" merge semantics of LoadViewStore. Missing file is not an error —
/// pre-lifecycle save directories load fine.
Status LoadLifecycleState(const std::string& dir, ViewStore* store,
                          udf::UdfManager* manager);

}  // namespace eva::storage

#endif  // EVA_STORAGE_VIEW_PERSISTENCE_H_
