#include "storage/column_segment.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

namespace eva::storage {

namespace {

// Integer magnitudes beyond this are not exactly representable as doubles;
// zone bounds for such columns are marked invalid rather than approximate.
constexpr double kDoubleExactLimit = 4503599627370496.0;  // 2^52

// Dictionary encoding falls back to raw Value storage past this
// cardinality: the dict + codes stop paying for themselves and the int32
// code lane risks pathological build cost on adversarial inputs.
constexpr size_t kMaxDictCardinality = 65536;

// Numeric dictionaries stop being considered past this distinct count.
constexpr size_t kMaxNumDictCardinality = 4096;

// One column under construction: cells collected as Values, encoding
// decided once the segment's type profile is known.
struct ColBuilder {
  std::vector<const Value*> cells;
  bool has_nulls = false;
  bool mixed = false;
  DataType type = DataType::kNull;  // uniform non-null type seen so far
  double num_min = 0;
  double num_max = 0;
  bool bounds_exact = true;
  std::vector<std::string> strings;  // distinct values, sorted at the end

  void Observe(const Value& v) {
    cells.push_back(&v);
    if (v.is_null()) {
      has_nulls = true;
      return;
    }
    DataType t = v.type();
    if (type == DataType::kNull) {
      type = t;
    } else if (type != t) {
      mixed = true;
    }
    if (mixed) return;
    switch (t) {
      case DataType::kInt64: {
        int64_t i = v.AsInt64();
        if (std::llabs(i) > static_cast<int64_t>(kDoubleExactLimit)) {
          bounds_exact = false;
        }
        UpdateNum(static_cast<double>(i));
        break;
      }
      case DataType::kDouble:
        if (std::isnan(v.AsDouble())) bounds_exact = false;
        UpdateNum(v.AsDouble());
        break;
      case DataType::kBool:
        UpdateNum(v.AsBool() ? 1.0 : 0.0);
        break;
      case DataType::kString:
        strings.push_back(v.AsString());
        break;
      default:
        break;
    }
  }

  void UpdateNum(double d) {
    if (first_num_) {
      num_min = num_max = d;
      first_num_ = false;
    } else {
      num_min = std::min(num_min, d);
      num_max = std::max(num_max, d);
    }
  }

 private:
  bool first_num_ = true;
};

void SetNullBit(std::vector<uint64_t>* bits, size_t i) {
  (*bits)[i >> 6] |= uint64_t{1} << (i & 63);
}

uint64_t DoubleBits(double d) {
  uint64_t b;
  std::memcpy(&b, &d, 8);
  return b;
}

// Effective lane for codec selection: null rows carry the previous
// non-null value (leading nulls the first non-null), so nulls never break
// runs and never widen the FOR range. At() masks them via the null bitmap,
// so the substituted cell is never observed.
template <typename T, typename GetFn>
std::vector<T> EffectiveLane(const ColumnVec& col, size_t n, GetFn get) {
  std::vector<T> eff(n);
  // Find the first non-null value as the leading fill.
  T fill = T{};
  for (size_t i = 0; i < n; ++i) {
    if (!col.NullAt(i)) {
      fill = get(i);
      break;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (col.NullAt(i)) {
      eff[i] = fill;
    } else {
      eff[i] = get(i);
      fill = eff[i];
    }
  }
  return eff;
}

template <typename T>
size_t CountRuns(const std::vector<T>& v) {
  if (v.empty()) return 0;
  size_t runs = 1;
  for (size_t i = 1; i < v.size(); ++i) {
    if (!(v[i] == v[i - 1])) ++runs;
  }
  return runs;
}

template <typename T>
void BuildRuns(const std::vector<T>& v, std::vector<T>* values,
               std::vector<uint32_t>* ends) {
  values->clear();
  ends->clear();
  for (size_t i = 0; i < v.size(); ++i) {
    if (i == 0 || !(v[i] == v[i - 1])) {
      values->push_back(v[i]);
      ends->push_back(static_cast<uint32_t>(i + 1));
    } else {
      ends->back() = static_cast<uint32_t>(i + 1);
    }
  }
}

// First-occurrence dictionary over an integer-comparable lane. Returns
// false when the cardinality cap is hit.
template <typename T>
bool BuildNumDict(const std::vector<T>& v, std::vector<T>* dict,
                  std::vector<uint64_t>* indexes) {
  dict->clear();
  indexes->clear();
  indexes->reserve(v.size());
  std::unordered_map<T, uint64_t> seen;
  for (const T& x : v) {
    auto [it, inserted] = seen.emplace(x, dict->size());
    if (inserted) {
      dict->push_back(x);
      if (dict->size() > kMaxNumDictCardinality) return false;
    }
    indexes->push_back(it->second);
  }
  return true;
}

}  // namespace

const char* ColumnVec::CodecName(Codec c) {
  switch (c) {
    case Codec::kPlain:
      return "plain";
    case Codec::kFor:
      return "for";
    case Codec::kBitPack:
      return "bitpack";
    case Codec::kRle:
      return "rle";
    case Codec::kDictNum:
      return "dictnum";
    case Codec::kExpPack:
      return "exppack";
  }
  return "?";
}

size_t ColumnVec::EncodedBytes() const {
  size_t bytes = null_bits_.size() * 8;
  bytes += i64_.size() * 8;
  bytes += f64_.size() * 8;
  bytes += b8_.size();
  bytes += codes_.size() * 4;
  for (const std::string& s : dict_) bytes += s.size();
  bytes += raw_.size() * 16;  // nominal Value footprint
  bytes += packed_.SizeBytes();
  bytes += rle_end_.size() * 4;
  if (codec_ == Codec::kFor) bytes += 8;
  return bytes;
}

size_t ColumnarSegment::FindKey(int64_t frame, int64_t obj,
                                size_t* hint) const {
  const size_t n = num_keys();
  size_t lo = hint != nullptr ? *hint : 0;
  // A probe behind the cursor (unsorted batch) restarts from the front.
  if (lo > n) lo = n;
  if (lo > 0 && (key_frame(lo - 1) > frame ||
                 (key_frame(lo - 1) == frame && key_obj(lo - 1) > obj))) {
    lo = 0;
  }
  // Dense ascending batches land exactly on the cursor: O(1) per key.
  if (lo < n && key_frame(lo) == frame && key_obj(lo) == obj) {
    if (hint != nullptr) *hint = lo + 1;
    return lo;
  }
  size_t hi = n;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    int64_t mf = key_frame(mid);
    if (mf < frame || (mf == frame && key_obj(mid) < obj)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < n && key_frame(lo) == frame && key_obj(lo) == obj) {
    if (hint != nullptr) *hint = lo + 1;
    return lo;
  }
  if (hint != nullptr) *hint = lo;
  return npos;
}

void CompressColumn(ColumnVec* col) {
  if (col->codec_ != ColumnVec::Codec::kPlain) return;  // already encoded
  const size_t n = col->n_;
  if (n == 0 || col->enc_ == ColumnVec::Enc::kValue) return;

  switch (col->enc_) {
    case ColumnVec::Enc::kInt64: {
      auto eff = EffectiveLane<int64_t>(
          *col, n, [&](size_t i) { return col->i64_[i]; });
      int64_t mn = eff[0], mx = eff[0];
      for (int64_t v : eff) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      uint64_t range = static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
      int for_w = BitPackedVec::WidthFor(range);
      size_t cost_plain = 8 * n;
      size_t cost_for = BitPackedVec::PackedBytes(n, for_w) + 8;
      size_t runs = CountRuns(eff);
      size_t cost_rle = runs * 12;  // 8 B value + 4 B run end
      std::vector<int64_t> dict;
      std::vector<uint64_t> idx;
      bool dict_ok = BuildNumDict(eff, &dict, &idx);
      int dict_w =
          dict_ok ? BitPackedVec::WidthFor(dict.empty() ? 0 : dict.size() - 1)
                  : 0;
      size_t cost_dict = dict_ok ? dict.size() * 8 +
                                       BitPackedVec::PackedBytes(n, dict_w)
                                 : ~size_t{0};
      size_t best = std::min({cost_plain, cost_for, cost_rle, cost_dict});
      if (best == cost_plain) return;
      if (best == cost_for) {
        std::vector<uint64_t> deltas(n);
        for (size_t i = 0; i < n; ++i) {
          deltas[i] = static_cast<uint64_t>(eff[i]) -
                      static_cast<uint64_t>(mn);
        }
        col->packed_.Pack(deltas, for_w);
        col->for_base_ = mn;
        col->i64_.clear();
        col->i64_.shrink_to_fit();
        col->codec_ = ColumnVec::Codec::kFor;
      } else if (best == cost_rle) {
        std::vector<int64_t> run_vals;
        BuildRuns(eff, &run_vals, &col->rle_end_);
        col->i64_ = std::move(run_vals);
        col->i64_.shrink_to_fit();
        col->codec_ = ColumnVec::Codec::kRle;
      } else {
        col->packed_.Pack(idx, dict_w);
        col->i64_ = std::move(dict);
        col->i64_.shrink_to_fit();
        col->codec_ = ColumnVec::Codec::kDictNum;
      }
      break;
    }
    case ColumnVec::Enc::kDouble: {
      // Codec equality is over bit patterns so -0.0 / NaN payloads survive
      // the round trip exactly.
      auto eff = EffectiveLane<uint64_t>(
          *col, n, [&](size_t i) { return DoubleBits(col->f64_[i]); });
      size_t cost_plain = 8 * n;
      size_t runs = CountRuns(eff);
      size_t cost_rle = runs * 12;
      std::vector<uint64_t> dict;
      std::vector<uint64_t> idx;
      bool dict_ok = BuildNumDict(eff, &dict, &idx);
      int dict_w =
          dict_ok ? BitPackedVec::WidthFor(dict.empty() ? 0 : dict.size() - 1)
                  : 0;
      size_t cost_dict = dict_ok ? dict.size() * 8 +
                                       BitPackedVec::PackedBytes(n, dict_w)
                                 : ~size_t{0};
      // Sign/exponent prefix dictionary + packed 52-bit mantissas: the
      // codec of last resort for high-entropy doubles (detector areas and
      // scores), whose 12-bit prefix takes a handful of values while the
      // mantissa is incompressible. At most 4096 distinct prefixes exist,
      // so this dictionary never overflows.
      std::vector<uint64_t> prefixes(n);
      for (size_t i = 0; i < n; ++i) prefixes[i] = eff[i] >> 52;
      std::vector<uint64_t> exp_dict;
      std::vector<uint64_t> exp_idx;
      BuildNumDict(prefixes, &exp_dict, &exp_idx);
      int exp_w = 52 + BitPackedVec::WidthFor(
                           exp_dict.empty() ? 0 : exp_dict.size() - 1);
      size_t cost_exp =
          exp_dict.size() * 8 + BitPackedVec::PackedBytes(n, exp_w);
      size_t best = std::min({cost_plain, cost_rle, cost_dict, cost_exp});
      if (best == cost_plain) return;
      auto to_double = [](uint64_t b) {
        double d;
        std::memcpy(&d, &b, 8);
        return d;
      };
      if (best == cost_rle) {
        std::vector<uint64_t> run_vals;
        BuildRuns(eff, &run_vals, &col->rle_end_);
        col->f64_.clear();
        col->f64_.reserve(run_vals.size());
        for (uint64_t b : run_vals) col->f64_.push_back(to_double(b));
        col->f64_.shrink_to_fit();
        col->codec_ = ColumnVec::Codec::kRle;
      } else if (best == cost_dict) {
        col->packed_.Pack(idx, dict_w);
        col->f64_.clear();
        col->f64_.reserve(dict.size());
        for (uint64_t b : dict) col->f64_.push_back(to_double(b));
        col->f64_.shrink_to_fit();
        col->codec_ = ColumnVec::Codec::kDictNum;
      } else {
        constexpr uint64_t kMantissa = (uint64_t{1} << 52) - 1;
        std::vector<uint64_t> lane(n);
        for (size_t i = 0; i < n; ++i) {
          lane[i] = (exp_idx[i] << 52) | (eff[i] & kMantissa);
        }
        col->packed_.Pack(lane, exp_w);
        col->i64_.assign(exp_dict.begin(), exp_dict.end());
        col->f64_.clear();
        col->f64_.shrink_to_fit();
        col->codec_ = ColumnVec::Codec::kExpPack;
      }
      break;
    }
    case ColumnVec::Enc::kBool: {
      auto eff = EffectiveLane<uint8_t>(
          *col, n, [&](size_t i) { return col->b8_[i]; });
      size_t cost_plain = n;
      size_t cost_pack = BitPackedVec::PackedBytes(n, 1);
      size_t runs = CountRuns(eff);
      size_t cost_rle = runs * 5;
      size_t best = std::min({cost_plain, cost_pack, cost_rle});
      if (best == cost_plain) return;
      if (best == cost_pack) {
        std::vector<uint64_t> bits(n);
        for (size_t i = 0; i < n; ++i) bits[i] = eff[i] ? 1 : 0;
        col->packed_.Pack(bits, 1);
        col->b8_.clear();
        col->b8_.shrink_to_fit();
        col->codec_ = ColumnVec::Codec::kBitPack;
      } else {
        std::vector<uint8_t> run_vals;
        BuildRuns(eff, &run_vals, &col->rle_end_);
        col->b8_ = std::move(run_vals);
        col->b8_.shrink_to_fit();
        col->codec_ = ColumnVec::Codec::kRle;
      }
      break;
    }
    case ColumnVec::Enc::kDict: {
      auto eff = EffectiveLane<int32_t>(
          *col, n, [&](size_t i) { return col->codes_[i]; });
      size_t cost_plain = 4 * n;
      int pack_w = BitPackedVec::WidthFor(
          col->dict_.empty() ? 0 : col->dict_.size() - 1);
      size_t cost_pack = BitPackedVec::PackedBytes(n, pack_w);
      size_t runs = CountRuns(eff);
      size_t cost_rle = runs * 8;  // 4 B code + 4 B run end
      size_t best = std::min({cost_plain, cost_pack, cost_rle});
      if (best == cost_plain) return;
      if (best == cost_pack) {
        std::vector<uint64_t> idx(n);
        for (size_t i = 0; i < n; ++i) {
          idx[i] = static_cast<uint64_t>(eff[i]);
        }
        col->packed_.Pack(idx, pack_w);
        col->codes_.clear();
        col->codes_.shrink_to_fit();
        col->codec_ = ColumnVec::Codec::kBitPack;
      } else {
        std::vector<int32_t> run_vals;
        BuildRuns(eff, &run_vals, &col->rle_end_);
        col->codes_ = std::move(run_vals);
        col->codes_.shrink_to_fit();
        col->codec_ = ColumnVec::Codec::kRle;
      }
      break;
    }
    case ColumnVec::Enc::kValue:
      break;
  }
}

std::shared_ptr<const ColumnarSegment> BuildColumnarSegment(
    std::vector<ViewKey> keys,
    const std::unordered_map<ViewKey, std::vector<Row>, ViewKeyHash>& entries,
    size_t num_value_cols, const SegmentBuildOptions& options) {
  std::sort(keys.begin(), keys.end());
  auto seg = std::make_shared<ColumnarSegment>();
  seg->built_keys = static_cast<int64_t>(keys.size());
  seg->frames.reserve(keys.size());
  seg->objs.reserve(keys.size());
  seg->row_begin.reserve(keys.size() + 1);
  seg->row_begin.push_back(0);

  std::vector<ColBuilder> builders(num_value_cols);
  bool first_key = true;
  int32_t rows_total = 0;
  for (const ViewKey& key : keys) {
    auto it = entries.find(key);
    if (it == entries.end()) continue;  // evicted under us: cannot happen
    seg->frames.push_back(key.frame);
    seg->objs.push_back(key.obj);
    if (first_key) {
      seg->obj_min = seg->obj_max = key.obj;
      first_key = false;
    } else {
      seg->obj_min = std::min(seg->obj_min, key.obj);
      seg->obj_max = std::max(seg->obj_max, key.obj);
    }
    // kNullCell keeps the ternary an lvalue: ColBuilder stores cell
    // pointers, so no temporary may be materialized here.
    static const Value kNullCell = Value::Null();
    for (const Row& row : it->second) {
      for (size_t c = 0; c < num_value_cols; ++c) {
        builders[c].Observe(c < row.size() ? row[c] : kNullCell);
      }
      ++rows_total;
    }
    seg->row_begin.push_back(rows_total);
  }

  seg->cols.resize(num_value_cols);
  seg->zones.resize(num_value_cols);
  const size_t n = static_cast<size_t>(rows_total);
  for (size_t c = 0; c < num_value_cols; ++c) {
    ColBuilder& b = builders[c];
    ColumnVec& col = seg->cols[c];
    ZoneMapEntry& zone = seg->zones[c];
    zone.has_nulls = b.has_nulls;
    zone.all_null = b.type == DataType::kNull;
    zone.type = b.type;
    zone.valid = !b.mixed && b.bounds_exact;
    // Zone maps (and the string distinct list) come from the raw cells
    // before any codec touches the lane.
    if (b.type == DataType::kString) {
      std::sort(b.strings.begin(), b.strings.end());
      b.strings.erase(std::unique(b.strings.begin(), b.strings.end()),
                      b.strings.end());
    }
    bool dict_overflow = b.type == DataType::kString &&
                         b.strings.size() > kMaxDictCardinality;
    if (b.mixed || b.type == DataType::kNull || dict_overflow) {
      // Mixed, all-null, or dictionary-overflow column: raw storage; an
      // all-null column keeps an (empty-bounds) valid zone so skipping can
      // reason about it.
      col.enc_ = ColumnVec::Enc::kValue;
      col.raw_.reserve(n);
      for (const Value* v : b.cells) col.raw_.push_back(*v);
      if (dict_overflow) zone.strings = std::move(b.strings);
      if (b.mixed) continue;
      zone.valid = true;  // all-null stays skippable
      if (dict_overflow) zone.valid = b.bounds_exact;
      continue;
    }
    zone.num_min = b.num_min;
    zone.num_max = b.num_max;
    col.n_ = n;
    if (b.has_nulls) col.null_bits_.assign((n + 63) / 64, 0);
    switch (b.type) {
      case DataType::kInt64: {
        col.enc_ = ColumnVec::Enc::kInt64;
        col.i64_.resize(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value* v = b.cells[i];
          if (v->is_null()) {
            SetNullBit(&col.null_bits_, i);
          } else {
            col.i64_[i] = v->AsInt64();
          }
        }
        break;
      }
      case DataType::kDouble: {
        col.enc_ = ColumnVec::Enc::kDouble;
        col.f64_.resize(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value* v = b.cells[i];
          if (v->is_null()) {
            SetNullBit(&col.null_bits_, i);
          } else {
            col.f64_[i] = v->AsDouble();
          }
        }
        break;
      }
      case DataType::kBool: {
        col.enc_ = ColumnVec::Enc::kBool;
        col.b8_.resize(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value* v = b.cells[i];
          if (v->is_null()) {
            SetNullBit(&col.null_bits_, i);
          } else {
            col.b8_[i] = v->AsBool() ? 1 : 0;
          }
        }
        break;
      }
      case DataType::kString: {
        col.enc_ = ColumnVec::Enc::kDict;
        col.codes_.resize(n, 0);
        std::unordered_map<std::string, int32_t> codes;
        for (size_t i = 0; i < n; ++i) {
          const Value* v = b.cells[i];
          if (v->is_null()) {
            SetNullBit(&col.null_bits_, i);
            continue;
          }
          auto [it, inserted] = codes.emplace(
              v->AsString(), static_cast<int32_t>(col.dict_.size()));
          if (inserted) col.dict_.push_back(v->AsString());
          col.codes_[i] = it->second;
        }
        zone.strings = std::move(b.strings);
        break;
      }
      default:
        break;
    }
  }

  // Footprint accounting against the plain representation, then codecs.
  const size_t nkeys = seg->frames.size();
  int64_t raw = static_cast<int64_t>(nkeys) * 16 +
                static_cast<int64_t>(seg->row_begin.size()) * 4;
  int64_t encoded = 0;
  for (ColumnVec& col : seg->cols) {
    raw += static_cast<int64_t>(col.EncodedBytes());
  }
  if (options.compress) {
    for (ColumnVec& col : seg->cols) CompressColumn(&col);
  }
  for (ColumnVec& col : seg->cols) {
    encoded += static_cast<int64_t>(col.EncodedBytes());
    seg->codec_cols[static_cast<int>(col.codec_)] += 1;
  }

  if (options.compress && nkeys > 0) {
    // Bit-pack the key index: frames/objs as FOR deltas, row offsets as
    // fixed-width absolutes (prefix sums stay O(1) random access).
    seg->frame_base = seg->frames.front();
    uint64_t frange = static_cast<uint64_t>(seg->frames.back()) -
                      static_cast<uint64_t>(seg->frame_base);
    uint64_t orange = static_cast<uint64_t>(seg->obj_max) -
                      static_cast<uint64_t>(seg->obj_min);
    std::vector<uint64_t> tmp(nkeys);
    for (size_t i = 0; i < nkeys; ++i) {
      tmp[i] = static_cast<uint64_t>(seg->frames[i]) -
               static_cast<uint64_t>(seg->frame_base);
    }
    seg->frames_p.Pack(tmp, BitPackedVec::WidthFor(frange));
    for (size_t i = 0; i < nkeys; ++i) {
      tmp[i] = static_cast<uint64_t>(seg->objs[i]) -
               static_cast<uint64_t>(seg->obj_min);
    }
    seg->objs_p.Pack(tmp, BitPackedVec::WidthFor(orange));
    // Row offsets pack as residuals against the mean rows-per-key stride
    // (prefix sums stay O(1) random access). Views with exactly one row
    // per key — every classifier output — collapse to width 0.
    const int64_t stride =
        (rows_total + static_cast<int64_t>(nkeys) / 2) /
        static_cast<int64_t>(nkeys);
    int64_t res_min = 0, res_max = 0;
    for (size_t i = 0; i <= nkeys; ++i) {
      int64_t res = static_cast<int64_t>(seg->row_begin[i]) -
                    stride * static_cast<int64_t>(i);
      if (i == 0 || res < res_min) res_min = res;
      if (i == 0 || res > res_max) res_max = res;
    }
    tmp.resize(nkeys + 1);
    for (size_t i = 0; i <= nkeys; ++i) {
      tmp[i] = static_cast<uint64_t>(
          static_cast<int64_t>(seg->row_begin[i]) -
          stride * static_cast<int64_t>(i) - res_min);
    }
    seg->row_begin_p.Pack(
        tmp, BitPackedVec::WidthFor(
                 static_cast<uint64_t>(res_max - res_min)));
    seg->row_stride = stride;
    seg->row_res_base = res_min;
    seg->packed_keys = true;
    encoded += static_cast<int64_t>(seg->frames_p.SizeBytes() +
                                    seg->objs_p.SizeBytes() +
                                    seg->row_begin_p.SizeBytes()) +
               32;  // frame/obj FOR bases + row stride/residual base
    seg->frames.clear();
    seg->frames.shrink_to_fit();
    seg->objs.clear();
    seg->objs.shrink_to_fit();
    seg->row_begin.clear();
    seg->row_begin.shrink_to_fit();
  } else {
    encoded += static_cast<int64_t>(nkeys) * 16 +
               static_cast<int64_t>(seg->row_begin.size()) * 4;
  }

  if (options.bloom_bits_per_key > 0 && nkeys > 0) {
    std::vector<uint64_t> hashes(nkeys);
    for (size_t i = 0; i < nkeys; ++i) {
      hashes[i] = HashViewKey(seg->key_frame(i), seg->key_obj(i));
    }
    seg->bloom.Build(hashes, options.bloom_bits_per_key);
    encoded += static_cast<int64_t>(seg->bloom.SizeBytes());
  }

  seg->raw_bytes = raw;
  seg->encoded_bytes = encoded;
  return seg;
}

}  // namespace eva::storage
