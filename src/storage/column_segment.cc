#include "storage/column_segment.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

namespace eva::storage {

namespace {

// Integer magnitudes beyond this are not exactly representable as doubles;
// zone bounds for such columns are marked invalid rather than approximate.
constexpr double kDoubleExactLimit = 4503599627370496.0;  // 2^52

// One column under construction: cells collected as Values, encoding
// decided once the segment's type profile is known.
struct ColBuilder {
  std::vector<const Value*> cells;
  bool has_nulls = false;
  bool mixed = false;
  DataType type = DataType::kNull;  // uniform non-null type seen so far
  double num_min = 0;
  double num_max = 0;
  bool bounds_exact = true;
  std::vector<std::string> strings;  // distinct values, sorted at the end

  void Observe(const Value& v) {
    cells.push_back(&v);
    if (v.is_null()) {
      has_nulls = true;
      return;
    }
    DataType t = v.type();
    if (type == DataType::kNull) {
      type = t;
    } else if (type != t) {
      mixed = true;
    }
    if (mixed) return;
    switch (t) {
      case DataType::kInt64: {
        int64_t i = v.AsInt64();
        if (std::llabs(i) > static_cast<int64_t>(kDoubleExactLimit)) {
          bounds_exact = false;
        }
        UpdateNum(static_cast<double>(i));
        break;
      }
      case DataType::kDouble:
        if (std::isnan(v.AsDouble())) bounds_exact = false;
        UpdateNum(v.AsDouble());
        break;
      case DataType::kBool:
        UpdateNum(v.AsBool() ? 1.0 : 0.0);
        break;
      case DataType::kString:
        strings.push_back(v.AsString());
        break;
      default:
        break;
    }
  }

  void UpdateNum(double d) {
    if (first_num_) {
      num_min = num_max = d;
      first_num_ = false;
    } else {
      num_min = std::min(num_min, d);
      num_max = std::max(num_max, d);
    }
  }

 private:
  bool first_num_ = true;
};

}  // namespace

size_t ColumnarSegment::FindKey(int64_t frame, int64_t obj,
                                size_t* hint) const {
  const size_t n = frames.size();
  size_t lo = hint != nullptr ? *hint : 0;
  // A probe behind the cursor (unsorted batch) restarts from the front.
  if (lo > n) lo = n;
  if (lo > 0 && (frames[lo - 1] > frame ||
                 (frames[lo - 1] == frame && objs[lo - 1] > obj))) {
    lo = 0;
  }
  // Dense ascending batches land exactly on the cursor: O(1) per key.
  if (lo < n && frames[lo] == frame && objs[lo] == obj) {
    if (hint != nullptr) *hint = lo + 1;
    return lo;
  }
  size_t hi = n;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (frames[mid] < frame || (frames[mid] == frame && objs[mid] < obj)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < n && frames[lo] == frame && objs[lo] == obj) {
    if (hint != nullptr) *hint = lo + 1;
    return lo;
  }
  if (hint != nullptr) *hint = lo;
  return npos;
}

std::shared_ptr<const ColumnarSegment> BuildColumnarSegment(
    std::vector<ViewKey> keys,
    const std::unordered_map<ViewKey, std::vector<Row>, ViewKeyHash>& entries,
    size_t num_value_cols) {
  std::sort(keys.begin(), keys.end());
  auto seg = std::make_shared<ColumnarSegment>();
  seg->built_keys = static_cast<int64_t>(keys.size());
  seg->frames.reserve(keys.size());
  seg->objs.reserve(keys.size());
  seg->row_begin.reserve(keys.size() + 1);
  seg->row_begin.push_back(0);

  std::vector<ColBuilder> builders(num_value_cols);
  bool first_key = true;
  int32_t rows_total = 0;
  for (const ViewKey& key : keys) {
    auto it = entries.find(key);
    if (it == entries.end()) continue;  // evicted under us: cannot happen
    seg->frames.push_back(key.frame);
    seg->objs.push_back(key.obj);
    if (first_key) {
      seg->obj_min = seg->obj_max = key.obj;
      first_key = false;
    } else {
      seg->obj_min = std::min(seg->obj_min, key.obj);
      seg->obj_max = std::max(seg->obj_max, key.obj);
    }
    // kNullCell keeps the ternary an lvalue: ColBuilder stores cell
    // pointers, so no temporary may be materialized here.
    static const Value kNullCell = Value::Null();
    for (const Row& row : it->second) {
      for (size_t c = 0; c < num_value_cols; ++c) {
        builders[c].Observe(c < row.size() ? row[c] : kNullCell);
      }
      ++rows_total;
    }
    seg->row_begin.push_back(rows_total);
  }

  seg->cols.resize(num_value_cols);
  seg->zones.resize(num_value_cols);
  const size_t n = static_cast<size_t>(rows_total);
  for (size_t c = 0; c < num_value_cols; ++c) {
    ColBuilder& b = builders[c];
    ColumnVec& col = seg->cols[c];
    ZoneMapEntry& zone = seg->zones[c];
    zone.has_nulls = b.has_nulls;
    zone.all_null = b.type == DataType::kNull;
    zone.type = b.type;
    zone.valid = !b.mixed && b.bounds_exact;
    if (b.mixed || b.type == DataType::kNull) {
      // Mixed or all-null column: raw storage; an all-null column keeps an
      // (empty-bounds) valid zone so skipping can reason about it.
      col.enc_ = ColumnVec::Enc::kValue;
      col.raw_.reserve(n);
      for (const Value* v : b.cells) col.raw_.push_back(*v);
      if (b.mixed) continue;
      zone.valid = true;  // all-null
      continue;
    }
    zone.num_min = b.num_min;
    zone.num_max = b.num_max;
    col.nulls_.resize(n, 0);
    switch (b.type) {
      case DataType::kInt64: {
        col.enc_ = ColumnVec::Enc::kInt64;
        col.i64_.resize(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value* v = b.cells[i];
          if (v->is_null()) {
            col.nulls_[i] = 1;
          } else {
            col.i64_[i] = v->AsInt64();
          }
        }
        break;
      }
      case DataType::kDouble: {
        col.enc_ = ColumnVec::Enc::kDouble;
        col.f64_.resize(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value* v = b.cells[i];
          if (v->is_null()) {
            col.nulls_[i] = 1;
          } else {
            col.f64_[i] = v->AsDouble();
          }
        }
        break;
      }
      case DataType::kBool: {
        col.enc_ = ColumnVec::Enc::kBool;
        col.b8_.resize(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value* v = b.cells[i];
          if (v->is_null()) {
            col.nulls_[i] = 1;
          } else {
            col.b8_[i] = v->AsBool() ? 1 : 0;
          }
        }
        break;
      }
      case DataType::kString: {
        col.enc_ = ColumnVec::Enc::kDict;
        col.codes_.resize(n, 0);
        std::unordered_map<std::string, int32_t> codes;
        for (size_t i = 0; i < n; ++i) {
          const Value* v = b.cells[i];
          if (v->is_null()) {
            col.nulls_[i] = 1;
            continue;
          }
          auto [it, inserted] = codes.emplace(
              v->AsString(), static_cast<int32_t>(col.dict_.size()));
          if (inserted) col.dict_.push_back(v->AsString());
          col.codes_[i] = it->second;
        }
        std::sort(b.strings.begin(), b.strings.end());
        b.strings.erase(std::unique(b.strings.begin(), b.strings.end()),
                        b.strings.end());
        zone.strings = std::move(b.strings);
        break;
      }
      default:
        break;
    }
  }
  return seg;
}

}  // namespace eva::storage
