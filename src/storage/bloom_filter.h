#ifndef EVA_STORAGE_BLOOM_FILTER_H_
#define EVA_STORAGE_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eva::storage {

/// Split-block Bloom filter over sealed-segment keys (docs/STORAGE.md).
///
/// Layout follows the Parquet design: the filter is an array of 256-bit
/// blocks (8 x uint32 words). A key's hash selects one block via a
/// multiply-shift on the high 32 bits, then sets/tests 8 bits — one per
/// word, each position derived from the low 32 bits by an odd salt
/// multiply. Every probe touches a single cache line, so a miss costs one
/// memory access instead of a binary search over the key index.
///
/// No false negatives by construction: MayContain over an inserted hash
/// tests exactly the bits Insert set. False positives short-circuit to the
/// key index (ProbeBatch counts them as bloom_fps), so correctness never
/// depends on the FP rate — only the miss fast-path's effectiveness does.
/// For c bits/key the blocked FP rate tracks (1 - e^{-8/c})^8 within a
/// small blocking penalty; the default 10 bits/key lands under ~2%.
class BloomFilter {
 public:
  /// One 256-bit block; alignment keeps a probe inside one cache line.
  struct alignas(32) Block {
    uint32_t w[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  };

  BloomFilter() = default;

  /// Sizes the filter for `num_keys` keys at `bits_per_key` and inserts
  /// every hash. An empty key set or bits_per_key <= 0 leaves the filter
  /// disabled (MayContain returns true: behave as if absent).
  void Build(const std::vector<uint64_t>& hashes, int bits_per_key);

  void Insert(uint64_t hash) {
    if (blocks_.empty()) return;
    Block& b = blocks_[BlockIndex(hash)];
    uint32_t h = static_cast<uint32_t>(hash);
    for (int i = 0; i < 8; ++i) b.w[i] |= Mask(h, i);
  }

  /// True when the hash may be present; false proves absence.
  bool MayContain(uint64_t hash) const {
    if (blocks_.empty()) return true;
    const Block& b = blocks_[BlockIndex(hash)];
    uint32_t h = static_cast<uint32_t>(hash);
    for (int i = 0; i < 8; ++i) {
      if ((b.w[i] & Mask(h, i)) == 0) return false;
    }
    return true;
  }

  bool enabled() const { return !blocks_.empty(); }
  size_t num_blocks() const { return blocks_.size(); }
  size_t SizeBytes() const { return blocks_.size() * sizeof(Block); }

  /// Raw words for persistence (8 per block, little-endian order).
  const std::vector<Block>& blocks() const { return blocks_; }
  /// Rebuilds from persisted words; count must be a multiple of 8.
  void RestoreBlocks(std::vector<Block> blocks) {
    blocks_ = std::move(blocks);
  }

 private:
  size_t BlockIndex(uint64_t hash) const {
    // Multiply-shift range reduction on the high hash bits: unbiased-ish
    // mapping of [0, 2^32) onto [0, num_blocks) without a modulo.
    uint64_t hi = hash >> 32;
    return static_cast<size_t>((hi * blocks_.size()) >> 32);
  }

  static uint32_t Mask(uint32_t h, int i) {
    // Odd constants from the Parquet split-block design: each word gets an
    // independent bit position in [0, 32).
    static constexpr uint32_t kSalt[8] = {
        0x47b6137bU, 0x44974d91U, 0x8824ad5bU, 0xa2b7289dU,
        0x705495c7U, 0x2df1424bU, 0x9efc4947U, 0x5c6bfb31U};
    return 1U << ((h * kSalt[i]) >> 27);
  }

  std::vector<Block> blocks_;
};

/// Hash of a ViewKey for the Bloom filter: a splitmix64-style finalizer
/// over the packed (frame, obj) pair. Pure function of the key, so filter
/// decisions are deterministic at any thread count.
inline uint64_t HashViewKey(int64_t frame, int64_t obj) {
  uint64_t x = static_cast<uint64_t>(frame) * 0x9e3779b97f4a7c15ULL +
               static_cast<uint64_t>(obj);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace eva::storage

#endif  // EVA_STORAGE_BLOOM_FILTER_H_
