#ifndef EVA_STORAGE_SEGMENT_CODEC_H_
#define EVA_STORAGE_SEGMENT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eva::storage {

/// Fixed-width bit-packed vector of non-negative deltas: the physical lane
/// under the frame-of-reference and dictionary-code codecs. width == 0
/// encodes an all-zero vector with no word storage (common for constant
/// columns after FOR subtraction).
class BitPackedVec {
 public:
  BitPackedVec() = default;

  /// Packs `values` (each must fit in `width` bits) at the given width.
  void Pack(const std::vector<uint64_t>& values, int width);

  uint64_t Get(size_t i) const {
    if (width_ == 0) return 0;
    size_t bit = i * static_cast<size_t>(width_);
    size_t word = bit >> 6;
    int shift = static_cast<int>(bit & 63);
    uint64_t v = words_[word] >> shift;
    int have = 64 - shift;
    if (have < width_) v |= words_[word + 1] << have;
    return v & mask_;
  }

  size_t size() const { return n_; }
  int width() const { return width_; }
  const std::vector<uint64_t>& words() const { return words_; }
  size_t SizeBytes() const { return words_.size() * 8; }

  /// Minimum width able to hold `v` (0 for v == 0).
  static int WidthFor(uint64_t v) {
    int w = 0;
    while (v != 0) {
      ++w;
      v >>= 1;
    }
    return w;
  }

  /// Encoded byte cost of n values at `width` bits (word-granular).
  static size_t PackedBytes(size_t n, int width) {
    if (width == 0) return 0;
    return ((n * static_cast<size_t>(width) + 63) / 64) * 8;
  }

  /// Restore from persisted state; words must match PackedBytes(n, width).
  void Restore(size_t n, int width, std::vector<uint64_t> words);

 private:
  size_t n_ = 0;
  int width_ = 0;
  uint64_t mask_ = 0;
  std::vector<uint64_t> words_;
};

/// Bounds-checked little-endian byte stream reader/writer for the binary
/// `.evaseg` codec files (docs/STORAGE.md). Writers never fail; readers
/// return false on truncation or on counts past sanity caps so a fuzzed
/// file cannot drive an allocation by claiming a huge length.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Varint(uint64_t v);
  void Zigzag(int64_t v) {
    Varint((static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63));
  }
  void F64(double v);
  void Bytes(const void* data, size_t len);
  void Str(const std::string& s) {
    Varint(s.size());
    Bytes(s.data(), s.size());
  }

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  /// Counts larger than this are rejected outright: no decoded lane of a
  /// real segment comes close, and a fuzzed header must not be able to
  /// request a multi-GB allocation.
  static constexpr uint64_t kMaxCount = 1ULL << 26;

  ByteReader(const char* data, size_t len) : p_(data), end_(data + len) {}
  explicit ByteReader(const std::string& s) : ByteReader(s.data(), s.size()) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool Varint(uint64_t* v);
  bool Zigzag(int64_t* v) {
    uint64_t u;
    if (!Varint(&u)) return false;
    *v = static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
    return true;
  }
  bool F64(double* v);
  bool Str(std::string* s);
  /// Varint count capped at kMaxCount (and at the remaining bytes when
  /// each element costs at least one byte — callers pass min_elem_bytes).
  bool Count(uint64_t* n, size_t min_elem_bytes = 1);

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace eva::storage

#endif  // EVA_STORAGE_SEGMENT_CODEC_H_
