#include "storage/segment_codec.h"

#include <cstring>

namespace eva::storage {

void BitPackedVec::Pack(const std::vector<uint64_t>& values, int width) {
  n_ = values.size();
  width_ = width;
  mask_ = width >= 64 ? ~uint64_t{0}
                      : ((uint64_t{1} << width) - 1);
  words_.clear();
  if (width_ == 0) return;
  words_.assign((n_ * static_cast<size_t>(width_) + 63) / 64, 0);
  for (size_t i = 0; i < n_; ++i) {
    uint64_t v = values[i] & mask_;
    size_t bit = i * static_cast<size_t>(width_);
    size_t word = bit >> 6;
    int shift = static_cast<int>(bit & 63);
    words_[word] |= v << shift;
    int have = 64 - shift;
    if (have < width_) words_[word + 1] |= v >> have;
  }
}

void BitPackedVec::Restore(size_t n, int width,
                           std::vector<uint64_t> words) {
  n_ = n;
  width_ = width;
  mask_ = width >= 64 ? ~uint64_t{0}
                      : width > 0 ? ((uint64_t{1} << width) - 1) : 0;
  words_ = std::move(words);
}

void ByteWriter::U32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out_.append(buf, 4);
}

void ByteWriter::U64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out_.append(buf, 8);
}

void ByteWriter::Varint(uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out_.push_back(static_cast<char>(v));
}

void ByteWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  U64(bits);
}

void ByteWriter::Bytes(const void* data, size_t len) {
  out_.append(static_cast<const char*>(data), len);
}

bool ByteReader::U8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(*p_++);
  return true;
}

bool ByteReader::U32(uint32_t* v) {
  if (remaining() < 4) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<uint8_t>(p_[i])) << (8 * i);
  }
  p_ += 4;
  *v = r;
  return true;
}

bool ByteReader::U64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<uint8_t>(p_[i])) << (8 * i);
  }
  p_ += 8;
  *v = r;
  return true;
}

bool ByteReader::Varint(uint64_t* v) {
  uint64_t r = 0;
  int shift = 0;
  while (p_ != end_ && shift < 64) {
    uint8_t b = static_cast<uint8_t>(*p_++);
    r |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *v = r;
      return true;
    }
    shift += 7;
  }
  return false;
}

bool ByteReader::F64(double* v) {
  uint64_t bits;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, 8);
  return true;
}

bool ByteReader::Str(std::string* s) {
  uint64_t n;
  if (!Count(&n)) return false;
  if (remaining() < n) return false;
  s->assign(p_, static_cast<size_t>(n));
  p_ += n;
  return true;
}

bool ByteReader::Count(uint64_t* n, size_t min_elem_bytes) {
  if (!Varint(n)) return false;
  if (*n > kMaxCount) return false;
  // A count of n elements each occupying at least min_elem_bytes cannot
  // exceed the bytes left in the stream — reject early so a fuzzed header
  // cannot drive a large allocation before the truncation is noticed.
  if (min_elem_bytes > 0 && *n > remaining() / min_elem_bytes + 1) {
    return false;
  }
  return true;
}

}  // namespace eva::storage
