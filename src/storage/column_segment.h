#ifndef EVA_STORAGE_COLUMN_SEGMENT_H_
#define EVA_STORAGE_COLUMN_SEGMENT_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "storage/bloom_filter.h"
#include "storage/segment_codec.h"

namespace eva::storage {

/// Key identifying the input tuple a UDF result belongs to: a frame for
/// detectors/filters, a (frame, object) pair for classifiers (obj = -1 for
/// frame-level results).
struct ViewKey {
  int64_t frame = 0;
  int64_t obj = -1;

  bool operator==(const ViewKey& other) const {
    return frame == other.frame && obj == other.obj;
  }
  bool operator<(const ViewKey& other) const {
    return frame != other.frame ? frame < other.frame : obj < other.obj;
  }
};

struct ViewKeyHash {
  size_t operator()(const ViewKey& k) const {
    return std::hash<int64_t>()(k.frame * 1000003 + k.obj);
  }
};

/// Typed column vector of one materialized-view segment. Encodings cover
/// the cell types UDFs produce; a column whose non-null cells do not share
/// one type falls back to raw Value storage. On top of the type encoding a
/// lightweight codec may compress the physical lane (chosen at seal time
/// by byte cost — see docs/STORAGE.md): frame-of-reference bit-packing for
/// integers, run-length for any repetitive lane, plain bit-packing for
/// bools and dictionary codes, and a numeric dictionary for low-cardinality
/// Int64/Double columns. At(i) reconstructs the exact Value that was
/// stored — the columnar read path must be bit-identical to the row store
/// it shadows (Value::Compare distinguishes Int64 from Double, so codecs
/// never widen, quantize, or reorder).
class ColumnVec {
 public:
  enum class Enc : uint8_t {
    kInt64 = 0,  // all non-null cells Int64
    kDouble,     // all non-null cells Double
    kBool,       // all non-null cells Bool
    kDict,       // all non-null cells String, dictionary-coded
    kValue,      // mixed types: raw Value storage
  };

  /// Physical lane codec (orthogonal to Enc; kValue is always kPlain).
  enum class Codec : uint8_t {
    kPlain = 0,  // the typed lane as-is
    kFor,        // Int64: bit-packed deltas from for_base_
    kBitPack,    // Bool / dict codes: bit-packed raw values
    kRle,        // run values in the typed lane + cumulative run ends
    kDictNum,    // Int64/Double: distinct values + bit-packed indexes
    kExpPack,    // Double: sign/exponent dictionary + packed mantissas
  };
  static constexpr int kNumCodecs = 6;
  static const char* CodecName(Codec c);

  Value At(size_t i) const {
    if (enc_ == Enc::kValue) return raw_[i];
    if (NullAt(i)) return Value::Null();
    switch (enc_) {
      case Enc::kInt64:
        switch (codec_) {
          case Codec::kFor:
            return Value(for_base_ + static_cast<int64_t>(packed_.Get(i)));
          case Codec::kRle:
            return Value(i64_[RunOf(i)]);
          case Codec::kDictNum:
            return Value(i64_[packed_.Get(i)]);
          default:
            return Value(i64_[i]);
        }
      case Enc::kDouble:
        switch (codec_) {
          case Codec::kRle:
            return Value(f64_[RunOf(i)]);
          case Codec::kDictNum:
            return Value(f64_[packed_.Get(i)]);
          case Codec::kExpPack: {
            // Lane value = (prefix code << 52) | 52-bit mantissa; i64_
            // dictionaries the distinct sign/exponent prefixes. Bit-level
            // reconstruction, so NaN payloads and -0.0 survive.
            uint64_t v = packed_.Get(i);
            uint64_t bits =
                (static_cast<uint64_t>(i64_[static_cast<size_t>(v >> 52)])
                 << 52) |
                (v & ((uint64_t{1} << 52) - 1));
            double d;
            std::memcpy(&d, &bits, 8);
            return Value(d);
          }
          default:
            return Value(f64_[i]);
        }
      case Enc::kBool:
        switch (codec_) {
          case Codec::kBitPack:
            return Value(packed_.Get(i) != 0);
          case Codec::kRle:
            return Value(b8_[RunOf(i)] != 0);
          default:
            return Value(b8_[i] != 0);
        }
      case Enc::kDict:
        switch (codec_) {
          case Codec::kBitPack:
            return Value(dict_[static_cast<size_t>(packed_.Get(i))]);
          case Codec::kRle:
            return Value(dict_[static_cast<size_t>(codes_[RunOf(i)])]);
          default:
            return Value(dict_[static_cast<size_t>(codes_[i])]);
        }
      case Enc::kValue:
        break;
    }
    return Value::Null();
  }

  bool NullAt(size_t i) const {
    return !null_bits_.empty() &&
           ((null_bits_[i >> 6] >> (i & 63)) & 1) != 0;
  }

  Enc enc() const { return enc_; }
  Codec codec() const { return codec_; }
  size_t size() const { return enc_ == Enc::kValue ? raw_.size() : n_; }

  /// Heap bytes of the current physical representation (data lanes +
  /// null bitmap + dictionary) — the number eviction accounting charges.
  size_t EncodedBytes() const;

  // Representation is internal to the storage layer; BuildColumnarSegment
  // and the .evaseg codec fill it directly.
  Enc enc_ = Enc::kValue;
  Codec codec_ = Codec::kPlain;
  size_t n_ = 0;                      // logical row count (typed encodings)
  std::vector<uint64_t> null_bits_;   // packed; empty = no nulls
  std::vector<int64_t> i64_;          // plain/RLE/dict values; kExpPack
                                      // sign+exponent prefix dictionary
  std::vector<double> f64_;
  std::vector<uint8_t> b8_;
  std::vector<int32_t> codes_;        // plain / RLE-run dict codes
  std::vector<std::string> dict_;     // insertion order
  std::vector<Value> raw_;
  int64_t for_base_ = 0;              // kFor reference value
  BitPackedVec packed_;               // kFor deltas / kBitPack / kDictNum idx
  std::vector<uint32_t> rle_end_;     // kRle cumulative run end offsets

  /// Run index containing row i (upper_bound over rle_end_).
  size_t RunOf(size_t i) const {
    size_t lo = 0, hi = rle_end_.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (rle_end_[mid] <= i) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

/// Per-column zone summary used for segment skipping: a probe can prove a
/// residual predicate unsatisfiable for every row of a segment and skip
/// materializing its hits. `valid` is the master flag — it is false when
/// the non-null cells mix types or when integer magnitudes exceed the
/// double-exact range, and consumers must then treat the column as
/// unbounded. Zone maps are computed from the raw cells BEFORE any codec
/// is applied, so skip decisions are independent of the compression
/// configuration.
struct ZoneMapEntry {
  bool valid = false;
  DataType type = DataType::kNull;  // uniform non-null cell type
  bool has_nulls = false;
  bool all_null = true;  // no non-null cell in the segment
  double num_min = 0;    // Int64 / Double / Bool(0,1) bounds
  double num_max = 0;
  std::vector<std::string> strings;  // sorted distinct values (kString)
};

/// Seal-time storage configuration, threaded from EngineOptions through
/// ViewStore/MaterializedView. Defaults preserve the pre-codec behavior
/// (plain lanes, no filter) for direct library callers; the engine turns
/// both features on unless configured otherwise.
struct SegmentBuildOptions {
  bool compress = false;     // pick per-column codecs + pack the key index
  int bloom_bits_per_key = 0;  // 0 disables the per-segment Bloom filter
};

/// Immutable columnar projection of one view segment: keys sorted by
/// (frame, obj) with prefix row offsets, one ColumnVec per value-schema
/// field, and a zone map per column. Built lazily from the row store and
/// shared via shared_ptr so a probe can keep reading a segment that a
/// concurrent rebuild replaces. When built with compression the key index
/// lives in bit-packed lanes (access via key_frame/key_obj/row_begin_at);
/// a per-segment split-block Bloom filter over the keys short-circuits
/// probe misses before the key-index search.
struct ColumnarSegment {
  std::vector<int64_t> frames;     // per key, ascending (frame, obj)
  std::vector<int64_t> objs;       // per key
  std::vector<int32_t> row_begin;  // size keys+1: offsets into the columns
  // Bit-packed key index (compression on): frames/objs/row_begin above are
  // empty and these hold FOR-packed absolutes (O(1) random access).
  // row_begin packs residuals against the mean rows-per-key stride, so
  // one-row-per-key views (classifier outputs) collapse to width 0.
  bool packed_keys = false;
  int64_t frame_base = 0;
  int64_t row_stride = 0;    // rows per key, rounded
  int64_t row_res_base = 0;  // FOR base of the stride residuals
  BitPackedVec frames_p;
  BitPackedVec objs_p;
  BitPackedVec row_begin_p;

  std::vector<ColumnVec> cols;      // one per value-schema field
  std::vector<ZoneMapEntry> zones;  // parallel to cols
  BloomFilter bloom;                // over HashViewKey of every key
  int64_t obj_min = 0;  // over keys (classifier zone checks on "obj")
  int64_t obj_max = 0;
  int64_t built_keys = 0;  // staleness check against SegmentInfo.keys

  /// Footprint accounting (docs/STORAGE.md): raw = the plain columnar
  /// representation (16 B/key index + 4 B/key offsets + plain lanes),
  /// encoded = the representation actually held (codec lanes + packed
  /// keys + Bloom blocks). Equal but for the Bloom bytes when built
  /// without compression.
  int64_t raw_bytes = 0;
  int64_t encoded_bytes = 0;
  int codec_cols[ColumnVec::kNumCodecs] = {};

  int64_t key_frame(size_t i) const {
    return packed_keys ? frame_base + static_cast<int64_t>(frames_p.Get(i))
                       : frames[i];
  }
  int64_t key_obj(size_t i) const {
    return packed_keys ? obj_min + static_cast<int64_t>(objs_p.Get(i))
                       : objs[i];
  }
  int32_t row_begin_at(size_t i) const {
    return packed_keys
               ? static_cast<int32_t>(
                     row_res_base +
                     row_stride * static_cast<int64_t>(i) +
                     static_cast<int64_t>(row_begin_p.Get(i)))
               : row_begin[i];
  }

  size_t num_keys() const {
    return packed_keys ? frames_p.size() : frames.size();
  }
  int64_t num_rows() const {
    size_t n = num_keys();
    return n == 0 ? 0 : row_begin_at(n);
  }
  int64_t frame_min() const {
    return num_keys() == 0 ? 0 : key_frame(0);
  }
  int64_t frame_max() const {
    size_t n = num_keys();
    return n == 0 ? 0 : key_frame(n - 1);
  }

  /// Index of (frame, obj) in the sorted key arrays, searching from
  /// `hint` (a cursor from the previous probe of an ascending key batch);
  /// returns npos when absent. Amortizes to O(1) for sorted probes.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t FindKey(int64_t frame, int64_t obj, size_t* hint) const;

  /// Reconstructs the value row at flattened row index `r`.
  Row RowAt(int64_t r) const {
    Row row;
    row.reserve(cols.size());
    for (const ColumnVec& c : cols) {
      row.push_back(c.At(static_cast<size_t>(r)));
    }
    return row;
  }
};

/// Builds the columnar projection of one segment. `keys` is the segment's
/// key list in insertion order (sorted internally); `entries` is the view's
/// row store; `num_value_cols` the value-schema width. Rows concatenate in
/// sorted-key order, so each key's rows are a contiguous range. `options`
/// selects the seal-time codecs and Bloom filter; the reconstructed values
/// are bit-identical for every configuration.
std::shared_ptr<const ColumnarSegment> BuildColumnarSegment(
    std::vector<ViewKey> keys,
    const std::unordered_map<ViewKey, std::vector<Row>, ViewKeyHash>& entries,
    size_t num_value_cols, const SegmentBuildOptions& options = {});

/// Rewrites one plain column in place with the cheapest applicable codec
/// (byte cost, deterministic tie-break toward the earlier Codec value).
/// Exposed for the codec differential tests; BuildColumnarSegment calls it
/// for every column when compression is on.
void CompressColumn(ColumnVec* col);

}  // namespace eva::storage

#endif  // EVA_STORAGE_COLUMN_SEGMENT_H_
