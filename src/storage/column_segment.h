#ifndef EVA_STORAGE_COLUMN_SEGMENT_H_
#define EVA_STORAGE_COLUMN_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"

namespace eva::storage {

/// Key identifying the input tuple a UDF result belongs to: a frame for
/// detectors/filters, a (frame, object) pair for classifiers (obj = -1 for
/// frame-level results).
struct ViewKey {
  int64_t frame = 0;
  int64_t obj = -1;

  bool operator==(const ViewKey& other) const {
    return frame == other.frame && obj == other.obj;
  }
  bool operator<(const ViewKey& other) const {
    return frame != other.frame ? frame < other.frame : obj < other.obj;
  }
};

struct ViewKeyHash {
  size_t operator()(const ViewKey& k) const {
    return std::hash<int64_t>()(k.frame * 1000003 + k.obj);
  }
};

/// Typed column vector of one materialized-view segment. Encodings cover
/// the cell types UDFs produce; a column whose non-null cells do not share
/// one type falls back to raw Value storage. At(i) reconstructs the exact
/// Value that was stored — the columnar read path must be bit-identical to
/// the row store it shadows (Value::Compare distinguishes Int64 from
/// Double, so encodings never widen).
class ColumnVec {
 public:
  enum class Enc : uint8_t {
    kInt64 = 0,  // all non-null cells Int64
    kDouble,     // all non-null cells Double
    kBool,       // all non-null cells Bool
    kDict,       // all non-null cells String, dictionary-coded
    kValue,      // mixed types: raw Value storage
  };

  Value At(size_t i) const {
    if (enc_ != Enc::kValue && nulls_[i] != 0) return Value::Null();
    switch (enc_) {
      case Enc::kInt64:
        return Value(i64_[i]);
      case Enc::kDouble:
        return Value(f64_[i]);
      case Enc::kBool:
        return Value(b8_[i] != 0);
      case Enc::kDict:
        return Value(dict_[static_cast<size_t>(codes_[i])]);
      case Enc::kValue:
        return raw_[i];
    }
    return Value::Null();
  }

  Enc enc() const { return enc_; }
  size_t size() const {
    return enc_ == Enc::kValue ? raw_.size() : nulls_.size();
  }

  // Representation is internal to the storage layer; BuildColumnarSegment
  // fills it directly.
  Enc enc_ = Enc::kValue;
  std::vector<uint8_t> nulls_;  // 1 = NULL (typed encodings only)
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<uint8_t> b8_;
  std::vector<int32_t> codes_;
  std::vector<std::string> dict_;  // insertion order
  std::vector<Value> raw_;
};

/// Per-column zone summary used for segment skipping: a probe can prove a
/// residual predicate unsatisfiable for every row of a segment and skip
/// materializing its hits. `valid` is the master flag — it is false when
/// the non-null cells mix types or when integer magnitudes exceed the
/// double-exact range, and consumers must then treat the column as
/// unbounded.
struct ZoneMapEntry {
  bool valid = false;
  DataType type = DataType::kNull;  // uniform non-null cell type
  bool has_nulls = false;
  bool all_null = true;  // no non-null cell in the segment
  double num_min = 0;    // Int64 / Double / Bool(0,1) bounds
  double num_max = 0;
  std::vector<std::string> strings;  // sorted distinct values (kString)
};

/// Immutable columnar projection of one view segment: keys sorted by
/// (frame, obj) with prefix row offsets, one ColumnVec per value-schema
/// field, and a zone map per column. Built lazily from the row store and
/// shared via shared_ptr so a probe can keep reading a segment that a
/// concurrent rebuild replaces.
struct ColumnarSegment {
  std::vector<int64_t> frames;     // per key, ascending (frame, obj)
  std::vector<int64_t> objs;       // per key
  std::vector<int32_t> row_begin;  // size keys+1: offsets into the columns
  std::vector<ColumnVec> cols;     // one per value-schema field
  std::vector<ZoneMapEntry> zones;  // parallel to cols
  int64_t obj_min = 0;  // over keys (classifier zone checks on "obj")
  int64_t obj_max = 0;
  int64_t built_keys = 0;  // staleness check against SegmentInfo.keys

  size_t num_keys() const { return frames.size(); }
  int64_t num_rows() const {
    return row_begin.empty() ? 0 : row_begin.back();
  }
  int64_t frame_min() const { return frames.empty() ? 0 : frames.front(); }
  int64_t frame_max() const { return frames.empty() ? 0 : frames.back(); }

  /// Index of (frame, obj) in the sorted key arrays, searching from
  /// `hint` (a cursor from the previous probe of an ascending key batch);
  /// returns npos when absent. Amortizes to O(1) for sorted probes.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t FindKey(int64_t frame, int64_t obj, size_t* hint) const;

  /// Reconstructs the value row at flattened row index `r`.
  Row RowAt(int64_t r) const {
    Row row;
    row.reserve(cols.size());
    for (const ColumnVec& c : cols) {
      row.push_back(c.At(static_cast<size_t>(r)));
    }
    return row;
  }
};

/// Builds the columnar projection of one segment. `keys` is the segment's
/// key list in insertion order (sorted internally); `entries` is the view's
/// row store; `num_value_cols` the value-schema width. Rows concatenate in
/// sorted-key order, so each key's rows are a contiguous range.
std::shared_ptr<const ColumnarSegment> BuildColumnarSegment(
    std::vector<ViewKey> keys,
    const std::unordered_map<ViewKey, std::vector<Row>, ViewKeyHash>& entries,
    size_t num_value_cols);

}  // namespace eva::storage

#endif  // EVA_STORAGE_COLUMN_SEGMENT_H_
