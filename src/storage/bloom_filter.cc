#include "storage/bloom_filter.h"

namespace eva::storage {

void BloomFilter::Build(const std::vector<uint64_t>& hashes,
                        int bits_per_key) {
  blocks_.clear();
  if (hashes.empty() || bits_per_key <= 0) return;
  // Round the bit budget up to whole 256-bit blocks; at least one block so
  // tiny segments still get the miss fast path.
  uint64_t bits = static_cast<uint64_t>(hashes.size()) *
                  static_cast<uint64_t>(bits_per_key);
  size_t blocks = static_cast<size_t>((bits + 255) / 256);
  if (blocks == 0) blocks = 1;
  blocks_.assign(blocks, Block{});
  for (uint64_t h : hashes) Insert(h);
}

}  // namespace eva::storage
