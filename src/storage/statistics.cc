#include "storage/statistics.h"

#include <algorithm>
#include <cmath>

namespace eva::storage {

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / num_bins),
      bins_(static_cast<size_t>(num_bins), 0) {}

void Histogram::Add(double v) {
  if (bins_.empty()) return;
  int idx = static_cast<int>((v - lo_) / width_);
  idx = std::clamp(idx, 0, static_cast<int>(bins_.size()) - 1);
  ++bins_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::FractionIn(const symbolic::Interval& interval) const {
  if (total_ == 0 || interval.IsEmpty()) return 0;
  if (interval.IsFull()) return 1;
  double lo = interval.lo().infinite ? lo_ : interval.lo().value;
  double hi = interval.hi().infinite ? hi_ : interval.hi().value;
  lo = std::max(lo, lo_);
  hi = std::min(hi, hi_);
  if (lo >= hi) return 0;
  double count = 0;
  for (size_t i = 0; i < bins_.size(); ++i) {
    double blo = lo_ + width_ * static_cast<double>(i);
    double bhi = blo + width_;
    double overlap = std::min(hi, bhi) - std::max(lo, blo);
    if (overlap <= 0) continue;
    count += static_cast<double>(bins_[i]) * (overlap / width_);
  }
  return count / static_cast<double>(total_);
}

StatisticsManager::StatisticsManager(const vision::SyntheticVideo& video,
                                     int64_t sample_frames)
    : num_frames_(video.num_frames()),
      area_hist_(0.0, 0.6, 24),
      score_hist_(0.5, 1.0, 20) {
  int64_t step = std::max<int64_t>(1, num_frames_ / sample_frames);
  // Counting through a std::map paid three tree traversals per sampled
  // object; consecutive objects overwhelmingly repeat the same label /
  // type / color, so a one-slot cache short-circuits almost all of them.
  struct CountCache {
    std::map<std::string, int64_t> counts;
    const std::string* last_key = nullptr;
    int64_t* last_slot = nullptr;
    void Bump(const std::string& k) {
      if (last_key == nullptr || *last_key != k) {
        auto [it, inserted] = counts.try_emplace(k, 0);
        last_key = &it->first;
        last_slot = &it->second;
      }
      ++*last_slot;
    }
  };
  CountCache label_counts, type_counts, color_counts;
  int64_t total_objects = 0;
  for (int64_t f = 0; f < num_frames_; f += step) {
    for (const auto& o : video.FrameObjects(f)) {
      ++total_objects;
      label_counts.Bump(o.label);
      type_counts.Bump(o.car_type);
      color_counts.Bump(o.color);
      area_hist_.Add(o.area);
      score_hist_.Add(o.score);
    }
  }
  if (total_objects == 0) total_objects = 1;
  for (const auto& [k, v] : label_counts.counts) {
    label_freq_[k] =
        static_cast<double>(v) / static_cast<double>(total_objects);
  }
  for (const auto& [k, v] : type_counts.counts) {
    type_freq_[k] =
        static_cast<double>(v) / static_cast<double>(total_objects);
  }
  for (const auto& [k, v] : color_counts.counts) {
    color_freq_[k] =
        static_cast<double>(v) / static_cast<double>(total_objects);
  }
}

symbolic::DimKind StatisticsManager::KindOf(const std::string& dim) const {
  if (dim == "id" || dim == "obj") return symbolic::DimKind::kInteger;
  if (dim == "area" || dim == "score" || dim == "timestamp") {
    return symbolic::DimKind::kReal;
  }
  // label and every classifier-UDF output dimension are categorical.
  return symbolic::DimKind::kCategorical;
}

double StatisticsManager::CategoricalFraction(const std::string& dim,
                                              const std::string& value) const {
  // Single find per map (the old contains-then-find did each twice).
  if (dim == "label") {
    auto it = label_freq_.find(value);
    return it == label_freq_.end() ? 0.0 : it->second;
  }
  if (auto it = type_freq_.find(value); it != type_freq_.end()) {
    return it->second;
  }
  if (auto it = color_freq_.find(value); it != color_freq_.end()) {
    return it->second;
  }
  return 0.1;  // unknown vocabulary: fall back to a default guess
}

double StatisticsManager::ConstraintSelectivity(
    const std::string& dim, const symbolic::DimConstraint& c) const {
  using symbolic::DimKind;
  if (c.IsFull()) return 1;
  if (c.IsEmpty()) return 0;
  if (c.is_categorical()) {
    double s = 0;
    for (const std::string& v : c.categorical_values()) {
      s += CategoricalFraction(dim, v);
    }
    return c.categorical_exclude() ? std::max(0.0, 1.0 - s) : s;
  }
  if (dim == "id" || dim == "obj") {
    double n = static_cast<double>(std::max<int64_t>(1, num_frames_));
    const symbolic::Interval& iv = c.interval();
    double lo = iv.lo().infinite ? 0 : std::max(0.0, iv.lo().value);
    double hi =
        iv.hi().infinite ? n - 1 : std::min(n - 1, iv.hi().value);
    if (lo > hi) return 0;
    double count = hi - lo + 1;
    // Integer bounds are closed after normalization; subtract excluded ids.
    for (double p : c.excluded_points()) {
      if (p >= lo && p <= hi) count -= 1;
    }
    return std::clamp(count / n, 0.0, 1.0);
  }
  const Histogram& h = dim == "score" ? score_hist_ : area_hist_;
  return h.FractionIn(c.interval());
}

}  // namespace eva::storage
