#ifndef EVA_STORAGE_STATISTICS_H_
#define EVA_STORAGE_STATISTICS_H_

#include <map>
#include <string>
#include <vector>

#include "symbolic/stats.h"
#include "vision/synthetic_video.h"

namespace eva::storage {

/// Equi-width histogram over a numeric column (the classic selectivity
/// estimation structure the paper points to, §4.2 [30, 51]).
class Histogram {
 public:
  Histogram() = default;
  Histogram(double lo, double hi, int num_bins);

  void Add(double v);
  /// Fraction of observed values inside `interval`, with linear
  /// interpolation within partially covered bins.
  double FractionIn(const symbolic::Interval& interval) const;
  int64_t total() const { return total_; }

 private:
  double lo_ = 0;
  double hi_ = 1;
  double width_ = 1;
  std::vector<int64_t> bins_;
  int64_t total_ = 0;
};

/// Column statistics for a video dataset, profiled from the ground-truth
/// generator (standing in for the paper's histogram collection over
/// decoded frames). Implements the symbolic engine's StatsProvider so the
/// materialization-aware ranking function (Eq. 4) can estimate the
/// selectivity of any derived predicate.
class StatisticsManager : public symbolic::StatsProvider {
 public:
  /// Builds statistics by sampling up to `sample_frames` frames of `video`.
  explicit StatisticsManager(const vision::SyntheticVideo& video,
                             int64_t sample_frames = 2000);

  symbolic::DimKind KindOf(const std::string& dim) const override;
  double ConstraintSelectivity(
      const std::string& dim,
      const symbolic::DimConstraint& constraint) const override;

  int64_t num_frames() const { return num_frames_; }

 private:
  double CategoricalFraction(const std::string& dim,
                             const std::string& value) const;

  int64_t num_frames_ = 0;
  Histogram area_hist_;
  Histogram score_hist_;
  // Per-attribute value frequencies among sampled objects.
  std::map<std::string, double> label_freq_;
  std::map<std::string, double> type_freq_;
  std::map<std::string, double> color_freq_;
};

}  // namespace eva::storage

#endif  // EVA_STORAGE_STATISTICS_H_
