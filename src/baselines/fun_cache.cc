#include "baselines/fun_cache.h"

namespace eva::baselines {

const std::vector<Row>* FunCache::Lookup(const std::string& udf,
                                         const storage::ViewKey& key) const {
  auto it = cache_.find(udf);
  if (it == cache_.end()) return nullptr;
  auto jt = it->second.find(key);
  if (jt == it->second.end()) return nullptr;
  return &jt->second;
}

void FunCache::Insert(const std::string& udf, const storage::ViewKey& key,
                      std::vector<Row> rows) {
  cache_[udf].emplace(key, std::move(rows));
}

int64_t FunCache::NumEntries(const std::string& udf) const {
  auto it = cache_.find(udf);
  return it == cache_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

int64_t FunCache::TotalEntries() const {
  int64_t n = 0;
  for (const auto& [udf, per] : cache_) n += static_cast<int64_t>(per.size());
  return n;
}

}  // namespace eva::baselines
