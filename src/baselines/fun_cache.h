#ifndef EVA_BASELINES_FUN_CACHE_H_
#define EVA_BASELINES_FUN_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "storage/view_store.h"

namespace eva::baselines {

/// FunCache baseline (§5.1): a canonical tuple-level (frame-level) function
/// result cache inside the execution engine. For every UDF invocation the
/// engine hashes the input arguments (which include the decoded frame —
/// the dominant cost, modeled via CostConstants::funcache_hash_ms_per_mb)
/// and consults an in-memory hash table. It reuses results at the same
/// granularity as EVA's views but (a) pays hashing on *every* invocation,
/// and (b) being execution-time, cannot inform optimizer decisions like
/// materialization-aware predicate reordering (§5.2).
class FunCache {
 public:
  /// Returns cached output rows for (udf, key), or nullptr on miss.
  const std::vector<Row>* Lookup(const std::string& udf,
                                 const storage::ViewKey& key) const;

  void Insert(const std::string& udf, const storage::ViewKey& key,
              std::vector<Row> rows);

  int64_t NumEntries(const std::string& udf) const;
  int64_t TotalEntries() const;

  void Clear() { cache_.clear(); }

 private:
  using PerUdf =
      std::unordered_map<storage::ViewKey, std::vector<Row>,
                         storage::ViewKeyHash>;
  std::map<std::string, PerUdf> cache_;
};

}  // namespace eva::baselines

#endif  // EVA_BASELINES_FUN_CACHE_H_
