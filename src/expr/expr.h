#ifndef EVA_EXPR_EXPR_H_
#define EVA_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "common/value.h"

namespace eva::expr {

/// Node kinds of the scalar expression AST.
enum class ExprKind {
  kColumn = 0,  // column reference
  kLiteral,     // constant value
  kCompare,     // binary comparison
  kAnd,
  kOr,
  kNot,
  kUdfCall,     // UDF invocation, e.g. CarType(frame, bbox)
  kStar,        // '*' in SELECT lists
  kCountStar,   // COUNT(*)
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);
CompareOp MirrorOp(CompareOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable scalar expression tree. Queries reference UDF outputs through
/// kUdfCall nodes; after the optimizer unpacks UDF-based predicates into
/// APPLY operators (§4.4), a UDF call evaluates by reading the output
/// column the apply operator annotated onto the row (named after the UDF).
class Expr {
 public:
  static ExprPtr Column(std::string name);
  static ExprPtr Literal(Value v);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr child);
  static ExprPtr UdfCall(std::string name, std::vector<std::string> args,
                         std::string accuracy = "");
  static ExprPtr Star();
  static ExprPtr CountStar();

  ExprKind kind() const { return kind_; }
  /// Column name, UDF name, or empty.
  const std::string& name() const { return name_; }
  const Value& value() const { return value_; }
  CompareOp op() const { return op_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  /// Argument column names of a UDF call.
  const std::vector<std::string>& args() const { return args_; }
  /// ACCURACY property requested for a logical UDF ("", "LOW", ...).
  const std::string& accuracy() const { return accuracy_; }

  /// True if any node in this tree is a UDF call.
  bool ContainsUdf() const;
  /// Names of all UDFs referenced in this tree (depth-first, deduped).
  std::vector<std::string> ReferencedUdfs() const;

  std::string ToString() const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  std::string name_;
  Value value_;
  CompareOp op_ = CompareOp::kEq;
  std::vector<ExprPtr> children_;
  std::vector<std::string> args_;
  std::string accuracy_;
};

/// Evaluates a scalar expression against one row. Comparisons involving
/// NULL evaluate to false (simplified three-valued logic); UDF calls read
/// the column named after the UDF. Returns an error for kStar/kCountStar
/// (those are handled by operators, not scalar evaluation).
Result<Value> EvaluateScalar(const Expr& expr, const Schema& schema,
                             const Row& row);

/// Evaluates a (boolean) expression to a predicate decision for one row.
Result<bool> EvaluateBool(const Expr& expr, const Schema& schema,
                          const Row& row);

/// Flattens nested ANDs into a conjunct list (the optimizer's canonical
/// selection split).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// Rebuilds an AND tree from a conjunct list; nullptr for an empty list.
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

}  // namespace eva::expr

#endif  // EVA_EXPR_EXPR_H_
