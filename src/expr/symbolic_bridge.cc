#include "expr/symbolic_bridge.h"

namespace eva::expr {

namespace {

using symbolic::DimConstraint;
using symbolic::DimKind;
using symbolic::Interval;
using symbolic::Predicate;
using symbolic::SymbolicBudget;

// Builds the constraint for "<dim> <op> <literal>".
Result<DimConstraint> AtomConstraint(DimKind kind, CompareOp op,
                                     const Value& literal) {
  if (kind == DimKind::kCategorical) {
    // Boolean literals (filter-UDF predicates) are treated as the
    // two-value categorical domain {"true", "false"}.
    std::string v;
    if (literal.type() == DataType::kString) {
      v = literal.AsString();
    } else if (literal.type() == DataType::kBool) {
      v = literal.AsBool() ? "true" : "false";
    } else {
      return Status::InvalidArgument(
          "categorical dimension compared to non-string literal");
    }
    switch (op) {
      case CompareOp::kEq:
        return DimConstraint::Categorical({v}, false);
      case CompareOp::kNe:
        return DimConstraint::Categorical({v}, true);
      default:
        return Status::NotImplemented(
            "ordered comparison on categorical dimension");
    }
  }
  if (!literal.is_numeric()) {
    return Status::InvalidArgument(
        "numeric dimension compared to non-numeric literal");
  }
  double v = literal.AsDouble();
  switch (op) {
    case CompareOp::kEq:
      return DimConstraint::Numeric(kind, Interval::Point(v));
    case CompareOp::kNe:
      return DimConstraint::NumericNotEqual(kind, v);
    case CompareOp::kLt:
      return DimConstraint::Numeric(kind, Interval::LessThan(v));
    case CompareOp::kLe:
      return DimConstraint::Numeric(kind, Interval::AtMost(v));
    case CompareOp::kGt:
      return DimConstraint::Numeric(kind, Interval::GreaterThan(v));
    case CompareOp::kGe:
      return DimConstraint::Numeric(kind, Interval::AtLeast(v));
  }
  return Status::Internal("unreachable compare op");
}

Result<Predicate> Convert(const Expr& expr, const DimKindResolver& kinds,
                          const SymbolicBudget& budget) {
  switch (expr.kind()) {
    case ExprKind::kAnd: {
      EVA_ASSIGN_OR_RETURN(
          Predicate l, Convert(*expr.children()[0], kinds, budget));
      EVA_ASSIGN_OR_RETURN(
          Predicate r, Convert(*expr.children()[1], kinds, budget));
      return Predicate::And(l, r, budget);
    }
    case ExprKind::kOr: {
      EVA_ASSIGN_OR_RETURN(
          Predicate l, Convert(*expr.children()[0], kinds, budget));
      EVA_ASSIGN_OR_RETURN(
          Predicate r, Convert(*expr.children()[1], kinds, budget));
      return Predicate::Or(l, r, budget);
    }
    case ExprKind::kNot: {
      EVA_ASSIGN_OR_RETURN(
          Predicate c, Convert(*expr.children()[0], kinds, budget));
      return Predicate::Not(c, budget);
    }
    case ExprKind::kCompare: {
      const Expr& lhs = *expr.children()[0];
      const Expr& rhs = *expr.children()[1];
      // Normalize to <dim> <op> <literal>.
      const Expr* dim_side = nullptr;
      const Expr* lit_side = nullptr;
      CompareOp op = expr.op();
      if ((lhs.kind() == ExprKind::kColumn ||
           lhs.kind() == ExprKind::kUdfCall) &&
          rhs.kind() == ExprKind::kLiteral) {
        dim_side = &lhs;
        lit_side = &rhs;
      } else if ((rhs.kind() == ExprKind::kColumn ||
                  rhs.kind() == ExprKind::kUdfCall) &&
                 lhs.kind() == ExprKind::kLiteral) {
        dim_side = &rhs;
        lit_side = &lhs;
        op = MirrorOp(op);
      } else {
        return Status::NotImplemented(
            "comparison is not <dim> vs <literal>: " + expr.ToString());
      }
      const std::string& dim = dim_side->name();
      EVA_ASSIGN_OR_RETURN(
          DimConstraint c,
          AtomConstraint(kinds(dim), op, lit_side->value()));
      return Predicate::Atom(dim, c);
    }
    case ExprKind::kLiteral:
      if (expr.value().type() == DataType::kBool) {
        return expr.value().AsBool() ? Predicate::True()
                                     : Predicate::False();
      }
      return Status::InvalidArgument("non-boolean literal predicate");
    default:
      return Status::NotImplemented("unsupported predicate shape: " +
                                    expr.ToString());
  }
}

}  // namespace

Result<Predicate> ExprToPredicate(const Expr& expr,
                                  const DimKindResolver& kinds,
                                  const SymbolicBudget& budget) {
  return Convert(expr, kinds, budget);
}

}  // namespace eva::expr
