#include "expr/expr.h"

#include <algorithm>
#include <sstream>

namespace eva::expr {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // = and != are symmetric
  }
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kColumn));
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kLiteral));
  e->value_ = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kCompare));
  e->op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kAnd));
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kOr));
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Not(ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kNot));
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::UdfCall(std::string name, std::vector<std::string> args,
                      std::string accuracy) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kUdfCall));
  e->name_ = std::move(name);
  e->args_ = std::move(args);
  e->accuracy_ = std::move(accuracy);
  return e;
}

ExprPtr Expr::Star() {
  return std::shared_ptr<Expr>(new Expr(ExprKind::kStar));
}

ExprPtr Expr::CountStar() {
  return std::shared_ptr<Expr>(new Expr(ExprKind::kCountStar));
}

bool Expr::ContainsUdf() const {
  if (kind_ == ExprKind::kUdfCall) return true;
  for (const ExprPtr& c : children_) {
    if (c->ContainsUdf()) return true;
  }
  return false;
}

std::vector<std::string> Expr::ReferencedUdfs() const {
  std::vector<std::string> out;
  if (kind_ == ExprKind::kUdfCall) out.push_back(name_);
  for (const ExprPtr& c : children_) {
    for (std::string& u : c->ReferencedUdfs()) {
      if (std::find(out.begin(), out.end(), u) == out.end()) {
        out.push_back(std::move(u));
      }
    }
  }
  return out;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case ExprKind::kColumn:
      os << name_;
      break;
    case ExprKind::kLiteral:
      if (value_.type() == DataType::kString) {
        os << "'" << value_.ToString() << "'";
      } else {
        os << value_.ToString();
      }
      break;
    case ExprKind::kCompare:
      os << children_[0]->ToString() << " " << CompareOpName(op_) << " "
         << children_[1]->ToString();
      break;
    case ExprKind::kAnd:
      os << "(" << children_[0]->ToString() << " AND "
         << children_[1]->ToString() << ")";
      break;
    case ExprKind::kOr:
      os << "(" << children_[0]->ToString() << " OR "
         << children_[1]->ToString() << ")";
      break;
    case ExprKind::kNot:
      os << "NOT (" << children_[0]->ToString() << ")";
      break;
    case ExprKind::kUdfCall: {
      os << name_ << "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) os << ", ";
        os << args_[i];
      }
      os << ")";
      if (!accuracy_.empty()) os << " ACCURACY '" << accuracy_ << "'";
      break;
    }
    case ExprKind::kStar:
      os << "*";
      break;
    case ExprKind::kCountStar:
      os << "COUNT(*)";
      break;
  }
  return os.str();
}

Result<Value> EvaluateScalar(const Expr& expr, const Schema& schema,
                             const Row& row) {
  switch (expr.kind()) {
    case ExprKind::kColumn: {
      int idx = schema.IndexOf(expr.name());
      if (idx < 0) {
        return Status::BindError("unknown column: " + expr.name());
      }
      return row[static_cast<size_t>(idx)];
    }
    case ExprKind::kUdfCall: {
      // After the rewrite, the UDF's output lives in a column named after
      // the UDF (annotated by the APPLY operator).
      int idx = schema.IndexOf(expr.name());
      if (idx < 0) {
        return Status::BindError("UDF output column not materialized: " +
                                 expr.name());
      }
      return row[static_cast<size_t>(idx)];
    }
    case ExprKind::kLiteral:
      return expr.value();
    case ExprKind::kCompare: {
      EVA_ASSIGN_OR_RETURN(
          Value lhs, EvaluateScalar(*expr.children()[0], schema, row));
      EVA_ASSIGN_OR_RETURN(
          Value rhs, EvaluateScalar(*expr.children()[1], schema, row));
      if (lhs.is_null() || rhs.is_null()) return Value(false);
      int c = lhs.Compare(rhs);
      bool out = false;
      switch (expr.op()) {
        case CompareOp::kEq:
          out = c == 0;
          break;
        case CompareOp::kNe:
          out = c != 0;
          break;
        case CompareOp::kLt:
          out = c < 0;
          break;
        case CompareOp::kLe:
          out = c <= 0;
          break;
        case CompareOp::kGt:
          out = c > 0;
          break;
        case CompareOp::kGe:
          out = c >= 0;
          break;
      }
      return Value(out);
    }
    case ExprKind::kAnd: {
      EVA_ASSIGN_OR_RETURN(
          bool l, EvaluateBool(*expr.children()[0], schema, row));
      if (!l) return Value(false);
      EVA_ASSIGN_OR_RETURN(
          bool r, EvaluateBool(*expr.children()[1], schema, row));
      return Value(r);
    }
    case ExprKind::kOr: {
      EVA_ASSIGN_OR_RETURN(
          bool l, EvaluateBool(*expr.children()[0], schema, row));
      if (l) return Value(true);
      EVA_ASSIGN_OR_RETURN(
          bool r, EvaluateBool(*expr.children()[1], schema, row));
      return Value(r);
    }
    case ExprKind::kNot: {
      EVA_ASSIGN_OR_RETURN(
          bool c, EvaluateBool(*expr.children()[0], schema, row));
      return Value(!c);
    }
    case ExprKind::kStar:
    case ExprKind::kCountStar:
      return Status::InvalidArgument(
          "star expressions are not scalar-evaluable");
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> EvaluateBool(const Expr& expr, const Schema& schema,
                          const Row& row) {
  EVA_ASSIGN_OR_RETURN(Value v, EvaluateScalar(expr, schema, row));
  if (v.is_null()) return false;
  if (v.type() == DataType::kBool) return v.AsBool();
  return Status::InvalidArgument("expression is not boolean: " +
                                 expr.ToString());
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (!expr) return out;
  if (expr->kind() == ExprKind::kAnd) {
    for (const ExprPtr& c : expr->children()) {
      for (ExprPtr& sub : SplitConjuncts(c)) out.push_back(std::move(sub));
    }
  } else {
    out.push_back(expr);
  }
  return out;
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc;
  for (const ExprPtr& c : conjuncts) {
    acc = acc ? Expr::And(acc, c) : c;
  }
  return acc;
}

}  // namespace eva::expr
