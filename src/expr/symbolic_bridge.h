#ifndef EVA_EXPR_SYMBOLIC_BRIDGE_H_
#define EVA_EXPR_SYMBOLIC_BRIDGE_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "expr/expr.h"
#include "symbolic/predicate.h"

namespace eva::expr {

/// Maps a predicate dimension name (column or UDF-output name) to its
/// domain kind. Supplied by the catalog/statistics layer.
using DimKindResolver = std::function<symbolic::DimKind(const std::string&)>;

/// Converts a boolean expression into EVA's symbolic predicate form (§4.1).
/// Supported syntax is the paper's grammar: comparisons of a column or UDF
/// call against a constant, combined with AND/OR/NOT. A UDF call becomes a
/// dimension named after the UDF. Unsupported shapes (e.g. column-vs-column
/// comparisons) return NotImplemented — the optimizer then treats the
/// predicate as opaque and skips symbolic reuse for it.
Result<symbolic::Predicate> ExprToPredicate(const Expr& expr,
                                            const DimKindResolver& kinds,
                                            const symbolic::SymbolicBudget&
                                                budget = {});

}  // namespace eva::expr

#endif  // EVA_EXPR_SYMBOLIC_BRIDGE_H_
