#ifndef EVA_UDF_UDF_MANAGER_H_
#define EVA_UDF_UDF_MANAGER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "symbolic/predicate.h"

namespace eva::udf {

/// A UDF's signature: its unique fingerprint across queries (§3.1 step 2).
/// `name` is the physical UDF, `inputs` the source table/view it reads.
struct UdfSignature {
  std::string name;
  std::string inputs;

  std::string Key() const { return name + "@" + inputs; }
};

/// Per-signature bookkeeping: the aggregated predicate p_u (union of the
/// predicates under which the UDF has been evaluated so far) plus
/// invocation statistics for reporting (Table 3).
struct UdfEntry {
  symbolic::Predicate coverage;  // p_u; starts FALSE (§4.1)
  int64_t total_invocations = 0;
  int64_t distinct_invocations = 0;
};

/// One coverage transition captured while journaling is enabled — the
/// WAL's source of truth for p_u durability. Only unions (the optimizer's
/// UpdateCoverage input, pre-reduction) and wholesale sets (failure-path
/// rollback) are journaled; retractions are implied by the eviction
/// records that cause them, so replay never subtracts twice.
struct CoverageOp {
  enum class Kind { kUnion, kSet };
  Kind kind = Kind::kUnion;
  std::string key;
  symbolic::Predicate predicate;
};

/// The paper's UDFMANAGER: maps UDF signatures to their aggregated
/// predicates and materialized-view bindings. The optimizer consults it to
/// derive p∩ / p– / p∪ for every candidate UDF occurrence.
class UdfManager {
 public:
  /// Aggregated predicate p_u for `key`; FALSE when the UDF was never
  /// evaluated.
  const symbolic::Predicate& Coverage(const std::string& key) const;

  bool HasCoverage(const std::string& key) const;

  /// p_u ← UNION(p_u, q) after the optimizer schedules evaluation of the
  /// UDF under predicate `q` (§4.1).
  void UpdateCoverage(const std::string& key, const symbolic::Predicate& q,
                      const symbolic::SymbolicBudget& budget = {});

  /// p_u ← p_u ∧ ¬p_v after a view segment covering `evicted` is dropped
  /// (lifecycle eviction), re-reduced by Algorithm 1's conjunct machinery
  /// so subsequent p∩ / p– splits never claim reuse for evicted tuples.
  /// When subtraction exceeds the symbolic budget the coverage is cleared
  /// entirely — sound, since underclaiming only costs recomputation.
  void RetractCoverage(const std::string& key,
                       const symbolic::Predicate& evicted,
                       const symbolic::SymbolicBudget& budget = {});

  /// Replaces p_u wholesale (persistence reload of a retracted predicate).
  void SetCoverage(const std::string& key, symbolic::Predicate coverage);

  /// Invocation accounting (drives Table 3's #DI / #TI columns).
  void RecordInvocations(const std::string& key, int64_t total,
                         int64_t distinct_new);

  const std::map<std::string, UdfEntry>& entries() const { return entries_; }

  /// Atom count of p_u — what Fig. 8b/Fig. 7 track over a workload.
  int CoverageAtomCount(const std::string& key) const;

  void Clear() {
    entries_.clear();
    journal_.clear();
  }

  /// WAL journaling of coverage transitions (driver-thread only, like
  /// every mutator). Enabling starts capture; the engine drains the
  /// journal into the log at each group-commit point.
  void set_journal_enabled(bool enabled) { journal_enabled_ = enabled; }
  bool journal_enabled() const { return journal_enabled_; }
  std::vector<CoverageOp> TakeJournal() {
    std::vector<CoverageOp> out;
    out.swap(journal_);
    return out;
  }

 private:
  std::map<std::string, UdfEntry> entries_;
  symbolic::Predicate false_;
  bool journal_enabled_ = false;
  std::vector<CoverageOp> journal_;
};

}  // namespace eva::udf

#endif  // EVA_UDF_UDF_MANAGER_H_
