#ifndef EVA_UDF_UDF_MANAGER_H_
#define EVA_UDF_UDF_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "symbolic/cell_index.h"
#include "symbolic/op_cache.h"
#include "symbolic/predicate.h"

namespace eva::udf {

/// A UDF's signature: its unique fingerprint across queries (§3.1 step 2).
/// `name` is the physical UDF, `inputs` the source table/view it reads.
struct UdfSignature {
  std::string name;
  std::string inputs;

  std::string Key() const { return name + "@" + inputs; }
};

/// Per-signature bookkeeping: the aggregated predicate p_u (union of the
/// predicates under which the UDF has been evaluated so far) plus
/// invocation statistics for reporting (Table 3).
struct UdfEntry {
  symbolic::Predicate coverage;  // p_u; starts FALSE (§4.1)
  int64_t total_invocations = 0;
  int64_t distinct_invocations = 0;
  /// Value of the manager-wide mutation counter when `coverage` last
  /// changed cell-for-cell. Tags the interval index and every cached
  /// Inter/Diff result; no-op unions (a fleet session re-asking a covered
  /// range) keep the epoch, so the shared cache stays warm.
  uint64_t epoch = 0;
  /// Whether `coverage` is known to sit at Algorithm 1's reduction
  /// fixpoint — the precondition for incremental union maintenance. False
  /// after budget-truncated reductions and wholesale SetCoverage loads;
  /// the next full Union restores it.
  bool reduced_fixpoint = true;
  /// Lazily built per-dimension interval index over `coverage`'s cells,
  /// valid while index_epoch == epoch. Mutable + shared: built on demand
  /// from const lookups and carried by the manager copy plain EXPLAIN
  /// takes.
  mutable std::shared_ptr<const symbolic::CellIndex> index;
  mutable uint64_t index_epoch = 0;
  /// Epoch-cached NOT(coverage) for DiffCoverage. Predicate::Diff(p, q)
  /// is AND(NOT(p), q); NOT is cubic in coverage cells and independent of
  /// q, so the fast path computes it once per (epoch, budget) and replays
  /// the same AND — bit-identical by construction. A failed NOT (budget
  /// exhaustion) is cached too, since Diff must replay that error.
  mutable std::shared_ptr<const symbolic::Predicate> complement;
  mutable Status complement_status;
  mutable bool complement_valid = false;
  mutable uint64_t complement_epoch = 0;
  mutable size_t complement_budget_conjuncts = 0;
  mutable int complement_budget_passes = 0;
};

/// One coverage transition captured while journaling is enabled — the
/// WAL's source of truth for p_u durability. Only unions (the optimizer's
/// UpdateCoverage input, pre-reduction) and wholesale sets (failure-path
/// rollback) are journaled; retractions are implied by the eviction
/// records that cause them, so replay never subtracts twice.
struct CoverageOp {
  enum class Kind { kUnion, kSet };
  Kind kind = Kind::kUnion;
  std::string key;
  symbolic::Predicate predicate;
};

/// Accumulating counters for the symbolic fast path, filled by
/// InterCoverage/DiffCoverage for the optimizer's report and metrics.
struct SymbolicOpStats {
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cells_pruned = 0;
};

/// The paper's UDFMANAGER: maps UDF signatures to their aggregated
/// predicates and materialized-view bindings. The optimizer consults it to
/// derive p∩ / p– / p∪ for every candidate UDF occurrence.
///
/// All access is serialized on the driver thread (the service front-end's
/// single executor), which is what lets the epoch counter, interval
/// indexes, and the cross-session remainder cache live here without locks.
class UdfManager {
 public:
  /// Aggregated predicate p_u for `key`; FALSE when the UDF was never
  /// evaluated.
  const symbolic::Predicate& Coverage(const std::string& key) const;

  bool HasCoverage(const std::string& key) const;

  /// INTER(p_u, q) = p_u ∧ q, served from the epoch-tagged cache when this
  /// exact query was answered against this coverage version before, and
  /// computed via the interval index otherwise. Bit-identical to
  /// Predicate::Inter(Coverage(key), q) — including replayed
  /// budget-exhaustion errors — with `symbolic_fastpath` off it simply
  /// runs that brute-force form.
  Result<symbolic::Predicate> InterCoverage(
      const std::string& key, const symbolic::Predicate& q,
      const symbolic::SymbolicBudget& budget = {},
      SymbolicOpStats* stats = nullptr) const;

  /// DIFF(p_u, q) = ¬p_u ∧ q. Negation cannot be hull-pruned without
  /// changing the reduced shape, so the fast path here is pure
  /// memoization: the first computation per (coverage epoch, query) pays
  /// full price, every fleet repeat replays it.
  Result<symbolic::Predicate> DiffCoverage(
      const std::string& key, const symbolic::Predicate& q,
      const symbolic::SymbolicBudget& budget = {},
      SymbolicOpStats* stats = nullptr) const;

  /// p_u ← UNION(p_u, q) after the optimizer schedules evaluation of the
  /// UDF under predicate `q` (§4.1). Maintained incrementally (only pairs
  /// touching an appended cell are revisited) while the coverage sits at
  /// the reduction fixpoint; the epoch advances only when the coverage
  /// actually changes.
  void UpdateCoverage(const std::string& key, const symbolic::Predicate& q,
                      const symbolic::SymbolicBudget& budget = {});

  /// p_u ← p_u ∧ ¬p_v after a view segment covering `evicted` is dropped
  /// (lifecycle eviction), re-reduced by Algorithm 1's conjunct machinery
  /// so subsequent p∩ / p– splits never claim reuse for evicted tuples.
  /// When subtraction exceeds the symbolic budget the coverage is cleared
  /// entirely — sound, since underclaiming only costs recomputation.
  void RetractCoverage(const std::string& key,
                       const symbolic::Predicate& evicted,
                       const symbolic::SymbolicBudget& budget = {});

  /// Replaces p_u wholesale (persistence reload of a retracted predicate,
  /// fault rollback, WAL replay).
  void SetCoverage(const std::string& key, symbolic::Predicate coverage);

  /// Invocation accounting (drives Table 3's #DI / #TI columns).
  void RecordInvocations(const std::string& key, int64_t total,
                         int64_t distinct_new);

  const std::map<std::string, UdfEntry>& entries() const { return entries_; }

  /// Atom count of p_u — what Fig. 8b/Fig. 7 track over a workload.
  int CoverageAtomCount(const std::string& key) const;

  /// Coverage-change epoch for `key`; 0 when never mutated.
  uint64_t CoverageEpoch(const std::string& key) const;

  void Clear() {
    entries_.clear();
    journal_.clear();
    op_cache_.Clear();
    // epoch_counter_ keeps counting: a key re-created after Clear must not
    // alias cache entries from its previous life.
  }

  /// Master switch for the index + incremental-union + cache fast path;
  /// off runs the brute-force forms everywhere (the bench A/B control).
  void set_symbolic_fastpath(bool on) { symbolic_fastpath_ = on; }
  bool symbolic_fastpath() const { return symbolic_fastpath_; }

  /// Host wall time accumulated inside Inter/Diff/Update/Retract — the
  /// "optimizer symbolic wall time" bench_symbolic compares across fast
  /// path on/off. Never feeds simulated numbers.
  double symbolic_wall_us() const { return symbolic_wall_us_; }

  const symbolic::OpCache::Stats& symbolic_cache_stats() const {
    return op_cache_.stats;
  }
  int64_t symbolic_cells_pruned_total() const { return cells_pruned_total_; }

  /// WAL journaling of coverage transitions (driver-thread only, like
  /// every mutator). Enabling starts capture; the engine drains the
  /// journal into the log at each group-commit point.
  void set_journal_enabled(bool enabled) { journal_enabled_ = enabled; }
  bool journal_enabled() const { return journal_enabled_; }
  std::vector<CoverageOp> TakeJournal() {
    std::vector<CoverageOp> out;
    out.swap(journal_);
    return out;
  }

 private:
  /// Stamps a fresh epoch on `entry` after a real coverage change; the
  /// stale interval index is dropped lazily (the shared_ptr may live on in
  /// EXPLAIN copies).
  void BumpEpoch(UdfEntry* entry);
  /// The entry's interval index for its current epoch, building on demand.
  const symbolic::CellIndex* EnsureIndex(const UdfEntry& entry) const;
  /// Cache key: canonical query hash mixed with the budget (the budget
  /// changes which Status a blown operation returns).
  static uint64_t CacheHash(const symbolic::Predicate& q,
                            const symbolic::SymbolicBudget& budget);

  std::map<std::string, UdfEntry> entries_;
  symbolic::Predicate false_;
  bool journal_enabled_ = false;
  std::vector<CoverageOp> journal_;

  bool symbolic_fastpath_ = true;
  uint64_t epoch_counter_ = 0;
  mutable symbolic::OpCache op_cache_;
  mutable int64_t cells_pruned_total_ = 0;
  mutable double symbolic_wall_us_ = 0;
};

}  // namespace eva::udf

#endif  // EVA_UDF_UDF_MANAGER_H_
