#include "udf/udf_runtime.h"

namespace eva::udf {

Result<const vision::DetectorModel*> UdfRuntime::Detector(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = detectors_.find(name);
  if (it != detectors_.end()) return it->second.get();
  EVA_ASSIGN_OR_RETURN(catalog::UdfDef def, catalog_->GetUdf(name));
  if (def.kind != catalog::UdfKind::kDetector) {
    return Status::InvalidArgument(name + " is not a detector UDF");
  }
  auto model = std::make_unique<vision::DetectorModel>(std::move(def));
  const vision::DetectorModel* ptr = model.get();
  detectors_.emplace(name, std::move(model));
  return ptr;
}

Result<const vision::ClassifierModel*> UdfRuntime::Classifier(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classifiers_.find(name);
  if (it != classifiers_.end()) return it->second.get();
  EVA_ASSIGN_OR_RETURN(catalog::UdfDef def, catalog_->GetUdf(name));
  if (def.kind != catalog::UdfKind::kClassifier) {
    return Status::InvalidArgument(name + " is not a classifier UDF");
  }
  auto model = std::make_unique<vision::ClassifierModel>(std::move(def));
  const vision::ClassifierModel* ptr = model.get();
  classifiers_.emplace(name, std::move(model));
  return ptr;
}

Result<const vision::FilterModel*> UdfRuntime::Filter(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = filters_.find(name);
  if (it != filters_.end()) return it->second.get();
  EVA_ASSIGN_OR_RETURN(catalog::UdfDef def, catalog_->GetUdf(name));
  if (def.kind != catalog::UdfKind::kFilter) {
    return Status::InvalidArgument(name + " is not a filter UDF");
  }
  auto model = std::make_unique<vision::FilterModel>(std::move(def));
  const vision::FilterModel* ptr = model.get();
  filters_.emplace(name, std::move(model));
  return ptr;
}

Result<catalog::UdfDef> UdfRuntime::Def(const std::string& name) const {
  return catalog_->GetUdf(name);
}

}  // namespace eva::udf
