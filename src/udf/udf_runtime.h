#ifndef EVA_UDF_UDF_RUNTIME_H_
#define EVA_UDF_UDF_RUNTIME_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "vision/models.h"
#include "vision/synthetic_video.h"

namespace eva::udf {

/// Binds catalog UDF definitions to their simulated model implementations
/// and exposes a uniform evaluation interface to the execution engine.
/// Models are instantiated lazily from the catalog on first use.
///
/// Thread-safe: runtime workers evaluating morsels resolve models
/// concurrently, so the lazy-instantiation maps are mutex-guarded. The
/// returned model pointers are stable for the runtime's lifetime and the
/// models themselves are immutable (pure functions of (name, frame, obj)),
/// so evaluation after lookup needs no locking.
class UdfRuntime {
 public:
  explicit UdfRuntime(const catalog::Catalog* catalog) : catalog_(catalog) {}

  Result<const vision::DetectorModel*> Detector(const std::string& name);
  Result<const vision::ClassifierModel*> Classifier(const std::string& name);
  Result<const vision::FilterModel*> Filter(const std::string& name);

  /// Catalog definition lookup (kind, costs) without instantiating.
  Result<catalog::UdfDef> Def(const std::string& name) const;

 private:
  const catalog::Catalog* catalog_;
  std::mutex mu_;  // guards the three lazy-instantiation maps
  std::map<std::string, std::unique_ptr<vision::DetectorModel>> detectors_;
  std::map<std::string, std::unique_ptr<vision::ClassifierModel>>
      classifiers_;
  std::map<std::string, std::unique_ptr<vision::FilterModel>> filters_;
};

}  // namespace eva::udf

#endif  // EVA_UDF_UDF_RUNTIME_H_
