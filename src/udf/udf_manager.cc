#include "udf/udf_manager.h"

#include "obs/profiler.h"
#include "symbolic/subtract.h"

namespace eva::udf {

const symbolic::Predicate& UdfManager::Coverage(
    const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false_;
  return it->second.coverage;
}

bool UdfManager::HasCoverage(const std::string& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && !it->second.coverage.IsFalse();
}

void UdfManager::UpdateCoverage(const std::string& key,
                                const symbolic::Predicate& q,
                                const symbolic::SymbolicBudget& budget) {
  obs::ProfScope prof("symbolic");
  if (journal_enabled_) {
    journal_.push_back({CoverageOp::Kind::kUnion, key, q});
  }
  UdfEntry& entry = entries_[key];
  entry.coverage = symbolic::Predicate::Union(entry.coverage, q, budget);
}

void UdfManager::RetractCoverage(const std::string& key,
                                 const symbolic::Predicate& evicted,
                                 const symbolic::SymbolicBudget& budget) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.coverage.IsFalse()) return;
  obs::ProfScope prof("symbolic");
  Result<symbolic::Predicate> retracted =
      symbolic::Subtract(it->second.coverage, evicted, budget);
  if (retracted.ok()) {
    it->second.coverage = retracted.MoveValue();
  } else {
    // Budget blown: give up the whole aggregated predicate rather than
    // keep a claim over tuples the store no longer holds.
    it->second.coverage = symbolic::Predicate::False();
  }
}

void UdfManager::SetCoverage(const std::string& key,
                             symbolic::Predicate coverage) {
  if (journal_enabled_) {
    journal_.push_back({CoverageOp::Kind::kSet, key, coverage});
  }
  entries_[key].coverage = std::move(coverage);
}

void UdfManager::RecordInvocations(const std::string& key, int64_t total,
                                   int64_t distinct_new) {
  UdfEntry& entry = entries_[key];
  entry.total_invocations += total;
  entry.distinct_invocations += distinct_new;
}

int UdfManager::CoverageAtomCount(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return 0;
  return it->second.coverage.AtomCount();
}

}  // namespace eva::udf
