#include "udf/udf_manager.h"

#include <chrono>

#include "obs/profiler.h"
#include "symbolic/predicate_intern.h"
#include "symbolic/subtract.h"

namespace eva::udf {

namespace {

/// RAII accumulator for the symbolic wall-time counter.
class WallAccumulator {
 public:
  explicit WallAccumulator(double* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~WallAccumulator() {
    *sink_ += std::chrono::duration_cast<
                  std::chrono::duration<double, std::micro>>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

const symbolic::Predicate& UdfManager::Coverage(
    const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false_;
  return it->second.coverage;
}

bool UdfManager::HasCoverage(const std::string& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && !it->second.coverage.IsFalse();
}

void UdfManager::BumpEpoch(UdfEntry* entry) {
  entry->epoch = ++epoch_counter_;
  entry->index.reset();
  entry->complement.reset();
  entry->complement_valid = false;
}

const symbolic::CellIndex* UdfManager::EnsureIndex(
    const UdfEntry& entry) const {
  if (entry.index == nullptr || entry.index_epoch != entry.epoch) {
    entry.index = symbolic::CellIndex::Build(entry.coverage);
    entry.index_epoch = entry.epoch;
  }
  return entry.index.get();
}

uint64_t UdfManager::CacheHash(const symbolic::Predicate& q,
                               const symbolic::SymbolicBudget& budget) {
  uint64_t h = symbolic::CanonicalPredicateHash(q);
  h = symbolic::FnvMix64(h, budget.max_conjuncts);
  h = symbolic::FnvMix64(h, static_cast<uint64_t>(budget.max_reduce_passes));
  return h;
}

Result<symbolic::Predicate> UdfManager::InterCoverage(
    const std::string& key, const symbolic::Predicate& q,
    const symbolic::SymbolicBudget& budget, SymbolicOpStats* stats) const {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.coverage.IsFalse()) {
    // And(FALSE, q) yields no pairs, so the brute-force form returns FALSE.
    return symbolic::Predicate::False();
  }
  const UdfEntry& entry = it->second;
  WallAccumulator wall(&symbolic_wall_us_);
  if (!symbolic_fastpath_) {
    return symbolic::Predicate::Inter(entry.coverage, q, budget);
  }
  const uint64_t qhash = CacheHash(q, budget);
  symbolic::OpCache::Entry* slot = op_cache_.Find(entry.epoch, qhash, q);
  if (slot != nullptr && slot->has_inter) {
    ++op_cache_.stats.hits;
    if (stats != nullptr) ++stats->cache_hits;
    if (!slot->inter_status.ok()) return slot->inter_status;
    return slot->inter_value;
  }
  ++op_cache_.stats.misses;
  if (stats != nullptr) ++stats->cache_misses;
  symbolic::PruneStats prune;
  Result<symbolic::Predicate> r = symbolic::IndexedAnd(
      entry.coverage, EnsureIndex(entry), q, budget, &prune);
  cells_pruned_total_ += prune.cells_pruned;
  if (stats != nullptr) stats->cells_pruned += prune.cells_pruned;
  if (slot == nullptr) slot = op_cache_.Insert(entry.epoch, qhash, q);
  slot->has_inter = true;
  if (r.ok()) {
    slot->inter_status = Status::OK();
    slot->inter_value = r.value();
  } else {
    slot->inter_status = r.status();
  }
  return r;
}

Result<symbolic::Predicate> UdfManager::DiffCoverage(
    const std::string& key, const symbolic::Predicate& q,
    const symbolic::SymbolicBudget& budget, SymbolicOpStats* stats) const {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.coverage.IsFalse()) {
    // Replicates Predicate::Diff's p1-false path exactly.
    symbolic::Predicate out = q;
    out.Reduce(budget);
    return out;
  }
  const UdfEntry& entry = it->second;
  WallAccumulator wall(&symbolic_wall_us_);
  if (!symbolic_fastpath_) {
    return symbolic::Predicate::Diff(entry.coverage, q, budget);
  }
  const uint64_t qhash = CacheHash(q, budget);
  symbolic::OpCache::Entry* slot = op_cache_.Find(entry.epoch, qhash, q);
  if (slot != nullptr && slot->has_diff) {
    ++op_cache_.stats.hits;
    if (stats != nullptr) ++stats->cache_hits;
    if (!slot->diff_status.ok()) return slot->diff_status;
    return slot->diff_value;
  }
  ++op_cache_.stats.misses;
  if (stats != nullptr) ++stats->cache_misses;
  // Predicate::Diff(coverage, q) = And(Not(coverage), q). Not() is cubic
  // in coverage cells and q-independent, so reuse the per-epoch cached
  // complement and replay the same And — identical inputs, identical
  // result (including a replayed budget-exhaustion error from Not).
  if (!entry.complement_valid || entry.complement_epoch != entry.epoch ||
      entry.complement_budget_conjuncts != budget.max_conjuncts ||
      entry.complement_budget_passes != budget.max_reduce_passes) {
    auto not_cov = symbolic::Predicate::Not(entry.coverage, budget);
    entry.complement_status = not_cov.status();
    entry.complement =
        not_cov.ok() ? std::make_shared<const symbolic::Predicate>(
                           not_cov.MoveValue())
                     : nullptr;
    entry.complement_valid = true;
    entry.complement_epoch = entry.epoch;
    entry.complement_budget_conjuncts = budget.max_conjuncts;
    entry.complement_budget_passes = budget.max_reduce_passes;
  }
  Result<symbolic::Predicate> r =
      entry.complement_status.ok()
          ? symbolic::Predicate::And(*entry.complement, q, budget)
          : Result<symbolic::Predicate>(entry.complement_status);
  if (slot == nullptr) slot = op_cache_.Insert(entry.epoch, qhash, q);
  slot->has_diff = true;
  if (r.ok()) {
    slot->diff_status = Status::OK();
    slot->diff_value = r.value();
  } else {
    slot->diff_status = r.status();
  }
  return r;
}

void UdfManager::UpdateCoverage(const std::string& key,
                                const symbolic::Predicate& q,
                                const symbolic::SymbolicBudget& budget) {
  obs::ProfScope prof("symbolic");
  WallAccumulator wall(&symbolic_wall_us_);
  if (journal_enabled_) {
    journal_.push_back({CoverageOp::Kind::kUnion, key, q});
  }
  UdfEntry& entry = entries_[key];
  bool changed;
  if (symbolic_fastpath_ && entry.reduced_fixpoint) {
    bool fixpoint = true;
    changed = entry.coverage.UnionIncrementalInPlace(q, budget, &fixpoint);
    entry.reduced_fixpoint = fixpoint;
  } else {
    // Union(p_u, q) spelled out so the reduction's fixpoint bit is
    // observable; identical to Predicate::Union's append + Reduce.
    symbolic::Predicate u = entry.coverage;
    for (const symbolic::Conjunct& c : q.conjuncts()) u.AddConjunct(c);
    entry.reduced_fixpoint = u.Reduce(budget);
    changed = !symbolic::PredicateIdentical(u, entry.coverage);
    entry.coverage = std::move(u);
  }
  if (changed) BumpEpoch(&entry);
}

void UdfManager::RetractCoverage(const std::string& key,
                                 const symbolic::Predicate& evicted,
                                 const symbolic::SymbolicBudget& budget) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.coverage.IsFalse()) return;
  obs::ProfScope prof("symbolic");
  WallAccumulator wall(&symbolic_wall_us_);
  Result<symbolic::Predicate> retracted =
      symbolic::Subtract(it->second.coverage, evicted, budget);
  if (retracted.ok()) {
    if (symbolic::PredicateIdentical(retracted.value(),
                                     it->second.coverage)) {
      return;  // eviction missed this coverage entirely: nothing moved
    }
    it->second.coverage = retracted.MoveValue();
    // Subtract re-reduces, but its fixpoint bit is not surfaced; the next
    // union runs the full reduction and restores it.
    it->second.reduced_fixpoint = false;
  } else {
    // Budget blown: give up the whole aggregated predicate rather than
    // keep a claim over tuples the store no longer holds.
    it->second.coverage = symbolic::Predicate::False();
    it->second.reduced_fixpoint = true;
  }
  BumpEpoch(&it->second);
}

void UdfManager::SetCoverage(const std::string& key,
                             symbolic::Predicate coverage) {
  if (journal_enabled_) {
    journal_.push_back({CoverageOp::Kind::kSet, key, coverage});
  }
  UdfEntry& entry = entries_[key];
  if (symbolic::PredicateIdentical(entry.coverage, coverage)) {
    return;  // no-op rollback/reload: keep the epoch and cached results
  }
  entry.coverage = std::move(coverage);
  // Loaded wholesale: reduction state unknown until the next full Union.
  entry.reduced_fixpoint = false;
  BumpEpoch(&entry);
}

void UdfManager::RecordInvocations(const std::string& key, int64_t total,
                                   int64_t distinct_new) {
  UdfEntry& entry = entries_[key];
  entry.total_invocations += total;
  entry.distinct_invocations += distinct_new;
}

int UdfManager::CoverageAtomCount(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return 0;
  return it->second.coverage.AtomCount();
}

uint64_t UdfManager::CoverageEpoch(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return 0;
  return it->second.epoch;
}

}  // namespace eva::udf
