#include "service/eva_service.h"

#include "obs/json_util.h"
#include "obs/metrics.h"

namespace eva::service {

void EvaSession::Observe(const Result<engine::QueryResult>& result) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries;
  if (!result.ok()) {
    ++stats_.errors;
    return;
  }
  const exec::QueryMetrics& m = result.value().metrics;
  stats_.invocations += m.TotalInvocations();
  stats_.reused += m.TotalReused();
  stats_.rows_out += m.rows_out;
  stats_.sim_ms += m.TotalMs();
}

EvaService::EvaService(std::unique_ptr<engine::EvaEngine> engine)
    : engine_(std::move(engine)) {
  executor_ = std::thread([this] { ExecutorLoop(); });
}

EvaService::EvaService(engine::EngineOptions options,
                       std::shared_ptr<catalog::Catalog> catalog)
    : EvaService(std::make_unique<engine::EvaEngine>(std::move(options),
                                                     std::move(catalog))) {}

EvaService::~EvaService() {
  Op stop;
  stop.kind = Op::Kind::kStop;
  Enqueue(std::move(stop));  // behind every queued op: drains, then stops
  if (executor_.joinable()) executor_.join();
}

std::shared_ptr<EvaSession> EvaService::CreateSession(
    const std::string& name) {
  std::shared_ptr<EvaSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    int64_t id = next_session_id_++;
    session.reset(new EvaSession(
        id, name.empty() ? "session-" + std::to_string(id) : name));
    sessions_.emplace(id, session);
  }
  if (auto* reg = engine_->metrics_registry()) {
    if (auto* c = reg->GetCounter("eva_sessions_created_total",
                                  "Sessions created by the engine service.")) {
      c->Increment();
    }
    if (auto* g = reg->GetGauge("eva_sessions_open",
                                "Currently open service sessions.")) {
      g->Set(static_cast<double>(open_sessions()));
    }
  }
  PublishSessions();
  return session;
}

std::shared_ptr<EvaSession> EvaService::FindSession(int64_t id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Status EvaService::CloseSession(int64_t id) {
  std::shared_ptr<EvaSession> session = FindSession(id);
  if (session == nullptr) {
    return Status::NotFound("unknown session: " + std::to_string(id));
  }
  session->Close();
  if (auto* reg = engine_->metrics_registry()) {
    if (auto* g = reg->GetGauge("eva_sessions_open",
                                "Currently open service sessions.")) {
      g->Set(static_cast<double>(open_sessions()));
    }
  }
  PublishSessions();
  return Status::OK();
}

std::vector<std::shared_ptr<EvaSession>> EvaService::Sessions() const {
  std::vector<std::shared_ptr<EvaSession>> out;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  return out;
}

int64_t EvaService::open_sessions() const {
  int64_t n = 0;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& [id, session] : sessions_) {
    if (session->open()) ++n;
  }
  return n;
}

std::future<Result<engine::QueryResult>> EvaService::Submit(
    int64_t session_id, std::string sql) {
  std::shared_ptr<EvaSession> session = FindSession(session_id);
  if (session == nullptr || !session->open()) {
    std::promise<Result<engine::QueryResult>> failed;
    failed.set_value(Status::FailedPrecondition(
        session == nullptr
            ? "unknown session: " + std::to_string(session_id)
            : "session " + std::to_string(session_id) + " is closed"));
    return failed.get_future();
  }
  Op op;
  op.kind = Op::Kind::kQuery;
  op.session = session_id;
  op.arg = std::move(sql);
  std::future<Result<engine::QueryResult>> future =
      op.query_promise.get_future();
  Enqueue(std::move(op));
  return future;
}

Result<engine::QueryResult> EvaService::Execute(int64_t session_id,
                                                const std::string& sql) {
  return Submit(session_id, sql).get();
}

Status EvaService::SaveViews(const std::string& dir) {
  Op op;
  op.kind = Op::Kind::kSave;
  op.arg = dir;
  std::future<Status> future = op.status_promise.get_future();
  Enqueue(std::move(op));
  return future.get();
}

Status EvaService::LoadViews(const std::string& dir) {
  Op op;
  op.kind = Op::Kind::kLoad;
  op.arg = dir;
  std::future<Status> future = op.status_promise.get_future();
  Enqueue(std::move(op));
  return future.get();
}

void EvaService::ClearReuseState() {
  Op op;
  op.kind = Op::Kind::kClear;
  std::future<Status> future = op.status_promise.get_future();
  Enqueue(std::move(op));
  future.get();
}

Result<ingest::StreamIngestor::FlushResult> EvaService::Ingest(
    const std::string& source, int64_t frames) {
  Op op;
  op.kind = Op::Kind::kIngest;
  op.arg = source;
  op.frames = frames;
  std::future<Result<ingest::StreamIngestor::FlushResult>> future =
      op.ingest_promise.get_future();
  Enqueue(std::move(op));
  return future.get();
}

Status EvaService::Checkpoint() {
  Op op;
  op.kind = Op::Kind::kCheckpoint;
  std::future<Status> future = op.status_promise.get_future();
  Enqueue(std::move(op));
  return future.get();
}

void EvaService::Drain() {
  Op op;
  op.kind = Op::Kind::kBarrier;
  std::future<Status> future = op.status_promise.get_future();
  Enqueue(std::move(op));
  future.get();
}

void EvaService::Enqueue(Op op) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    // After kStop only the destructor's own ops could arrive; drop their
    // promises (broken-promise exceptions are confined to callers that
    // submit during teardown, which the API forbids anyway).
    queue_.push_back(std::move(op));
  }
  queue_cv_.notify_one();
}

void EvaService::ExecutorLoop() {
  for (;;) {
    Op op;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty(); });
      op = std::move(queue_.front());
      queue_.pop_front();
    }
    switch (op.kind) {
      case Op::Kind::kStop:
        return;
      case Op::Kind::kBarrier:
        op.status_promise.set_value(Status::OK());
        break;
      case Op::Kind::kSave:
        op.status_promise.set_value(engine_->SaveViews(op.arg));
        break;
      case Op::Kind::kLoad:
        op.status_promise.set_value(engine_->LoadViews(op.arg));
        break;
      case Op::Kind::kClear:
        engine_->ClearReuseState();
        op.status_promise.set_value(Status::OK());
        break;
      case Op::Kind::kIngest:
        op.ingest_promise.set_value(
            engine_->IngestFrames(op.arg, op.frames));
        break;
      case Op::Kind::kCheckpoint:
        op.status_promise.set_value(engine_->Checkpoint());
        break;
      case Op::Kind::kQuery: {
        Result<engine::QueryResult> result =
            engine_->Execute(op.arg, op.session);
        // The session outlives close (shared_ptr registry), so queued
        // queries always find their accounting target.
        if (std::shared_ptr<EvaSession> session = FindSession(op.session)) {
          session->Observe(result);
        }
        if (auto* reg = engine_->metrics_registry()) {
          if (auto* c = reg->GetCounter(
                  "eva_service_queries_total",
                  "Statements executed through the engine service, by "
                  "session.",
                  {{"session", std::to_string(op.session)}})) {
            c->Increment();
          }
        }
        PublishSessions();
        op.query_promise.set_value(std::move(result));
        break;
      }
    }
  }
}

std::string EvaService::RenderSessionsJson() const {
  std::vector<std::shared_ptr<EvaSession>> sessions = Sessions();
  int64_t open = 0;
  int64_t total_queries = 0;
  int64_t total_invocations = 0;
  int64_t total_reused = 0;
  std::string out = "{";
  std::string list;
  bool first = true;
  for (const auto& session : sessions) {
    SessionStats s = session->stats();
    if (session->open()) ++open;
    total_queries += s.queries;
    total_invocations += s.invocations;
    total_reused += s.reused;
    if (!first) list += ',';
    first = false;
    list += "{\"id\":" + std::to_string(session->id());
    list += ",\"name\":";
    obs::AppendJsonString(&list, session->name());
    list += ",\"open\":";
    list += session->open() ? "true" : "false";
    list += ",\"queries\":" + std::to_string(s.queries);
    list += ",\"errors\":" + std::to_string(s.errors);
    list += ",\"invocations\":" + std::to_string(s.invocations);
    list += ",\"reused\":" + std::to_string(s.reused);
    list += ",\"rows_out\":" + std::to_string(s.rows_out);
    list += ",\"sim_ms\":" + obs::FormatJsonNumber(s.sim_ms);
    list += ",\"hit_pct\":" + obs::FormatJsonNumber(s.HitPercentage());
    list += '}';
  }
  out += "\"session_count\":" + std::to_string(open);
  out += ",\"sessions_created\":" + std::to_string(sessions.size());
  out += ",\"total_queries\":" + std::to_string(total_queries);
  out += ",\"shared_store_hit_pct\":" +
         obs::FormatJsonNumber(
             total_invocations == 0
                 ? 0
                 : 100.0 * static_cast<double>(total_reused) /
                       static_cast<double>(total_invocations));
  out += ",\"view_store_bytes\":" +
         obs::FormatJsonNumber(engine_->views().TotalSizeBytes());
  out += ",\"sessions\":[" + list + "]}";
  return out;
}

void EvaService::PublishSessions() {
  engine_->PublishSessionsSnapshot(RenderSessionsJson());
}

}  // namespace eva::service
