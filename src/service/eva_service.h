#ifndef EVA_SERVICE_EVA_SERVICE_H_
#define EVA_SERVICE_EVA_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/eva_engine.h"

namespace eva::service {

/// Per-session totals, accumulated by the service executor after every
/// query of the session. The shared-store hit percentage is the headline
/// number: how much of this session's inference was paid for by *any*
/// session's earlier queries (its own included).
struct SessionStats {
  int64_t queries = 0;
  int64_t errors = 0;
  int64_t invocations = 0;
  int64_t reused = 0;
  int64_t rows_out = 0;
  double sim_ms = 0;

  double HitPercentage() const {
    return invocations == 0 ? 0
                            : 100.0 * static_cast<double>(reused) /
                                  static_cast<double>(invocations);
  }
};

/// One client session of the multi-session engine service: the per-session
/// front-end state that used to be implicit in "one EvaEngine per user" —
/// identity, lifetime, and query/reuse accounting. All reuse state (views,
/// aggregated predicates, lifecycle budget) lives in the service's shared
/// engine, which is the point: this session's materialized UDF results
/// serve every other session's queries.
///
/// Sessions are created and closed through EvaService; handles are
/// shared_ptrs, so a handle stays valid (readable stats) after close.
/// Thread-safe: stats() may be called from any thread while the service
/// executor is appending.
class EvaSession {
 public:
  int64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  /// False once closed: new submissions are rejected; queries already
  /// queued still run (close does not cancel in-flight work).
  bool open() const { return open_.load(std::memory_order_acquire); }
  SessionStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  friend class EvaService;
  EvaSession(int64_t id, std::string name)
      : id_(id), name_(std::move(name)) {}
  /// Folds one finished query into the session totals (executor thread).
  void Observe(const Result<engine::QueryResult>& result);
  void Close() { open_.store(false, std::memory_order_release); }

  const int64_t id_;
  const std::string name_;
  std::atomic<bool> open_{true};
  mutable std::mutex mu_;
  SessionStats stats_;
};

/// The multi-session engine service (docs/SERVICE.md): N concurrent
/// EvaSession front-ends over ONE shared EvaEngine — one ViewStore, one
/// UdfManager (aggregated predicates p_u), one lifecycle manager (global
/// admission statistics and a single storage budget arbitrated across all
/// tenants), one work-stealing worker pool.
///
/// Execution model (the otterbrix executor idiom): submissions from any
/// thread are appended to a FIFO op queue and return a future; a single
/// executor thread drains the queue, running one query at a time against
/// the shared engine. Whole-query serialization is what keeps the symbolic
/// core sound under interleaving: the optimizer claims coverage for the
/// tuples it schedules BEFORE execution materializes them, so another
/// session's optimize running between claim and materialization would read
/// an aggregated predicate that overclaims (a claimed-covered, absent key
/// reads as "processed, no objects" — silently wrong results). Serializing
/// optimize→execute→lifecycle per query makes every interleaving of
/// sessions equivalent to some serial schedule, and Algorithm 1 carving
/// stays sound. Intra-query parallelism still comes from the engine's
/// shared morsel pool, with ChargeLog replay keeping simulated numbers
/// bit-identical at any thread count — so for a fixed submission order
/// (the fleet driver's (seed, schedule) pair) the whole service run is
/// bit-identical at any EVA_THREADS.
///
/// Store-wide operations (SaveViews/LoadViews/ClearReuseState) ride the
/// same queue, so they observe a quiescent store by construction; calling
/// the engine's entry points directly while a query is in flight instead
/// fails cleanly (EvaEngine's busy guard).
class EvaService {
 public:
  /// Adopts a fully configured engine (UDFs registered, videos created).
  explicit EvaService(std::unique_ptr<engine::EvaEngine> engine);
  /// Convenience: builds the engine in place. Register UDFs / create
  /// videos through engine() before the first Submit.
  EvaService(engine::EngineOptions options,
             std::shared_ptr<catalog::Catalog> catalog);
  /// Drains every queued op, then stops and joins the executor.
  ~EvaService();
  EvaService(const EvaService&) = delete;
  EvaService& operator=(const EvaService&) = delete;

  // --- session lifecycle ---------------------------------------------------
  /// Creates a session (ids are monotone from 1; 0 is reserved for the
  /// single-session engine path). `name` is a display label for /sessions.
  std::shared_ptr<EvaSession> CreateSession(const std::string& name = "");
  /// Attach to an existing session; nullptr when the id is unknown.
  std::shared_ptr<EvaSession> FindSession(int64_t id) const;
  /// Rejects further submissions to the session. Queries already queued
  /// still run. NotFound for unknown ids; closing twice is OK.
  Status CloseSession(int64_t id);
  /// Every session ever created (closed ones included), id-ascending.
  std::vector<std::shared_ptr<EvaSession>> Sessions() const;
  /// Currently open sessions (the /sessions "session_count").
  int64_t open_sessions() const;

  // --- query execution -----------------------------------------------------
  /// Enqueues one EVA-QL statement for `session_id` and returns its
  /// future. Futures resolve in submission order (FIFO); an unknown or
  /// closed session yields an immediately-ready error future.
  std::future<Result<engine::QueryResult>> Submit(int64_t session_id,
                                                  std::string sql);
  /// Submit + wait.
  Result<engine::QueryResult> Execute(int64_t session_id,
                                      const std::string& sql);

  // --- store-wide operations (queued: run at a quiescent point) -----------
  Status SaveViews(const std::string& dir);
  Status LoadViews(const std::string& dir);
  void ClearReuseState();

  // --- streaming ingestion + WAL (queued like everything else) ------------
  /// One ingestion tick for `source`, serialized with queries on the FIFO
  /// — which is what makes every ingest_advance durable BEFORE any query
  /// that could claim coverage over the new frames.
  Result<ingest::StreamIngestor::FlushResult> Ingest(
      const std::string& source, int64_t frames);
  /// Folds the WAL into a fresh checkpoint generation at a quiescent point.
  Status Checkpoint();

  /// The shared engine. Safe for setup before the first Submit and for
  /// thread-safe accessors (metrics registry, telemetry port, views()
  /// const reads between drained ops); do NOT call engine()->Execute from
  /// outside while service ops are outstanding — that is exactly the
  /// unserialized interleaving the service exists to prevent.
  engine::EvaEngine* engine() { return engine_.get(); }
  const engine::EvaEngine* engine() const { return engine_.get(); }

  /// Blocks until every op queued so far has executed (tests, shell).
  void Drain();

  /// The /sessions payload: live session count, per-session query totals
  /// and shared-store hit%, plus service-level aggregates.
  std::string RenderSessionsJson() const;

 private:
  struct Op {
    enum class Kind {
      kQuery,
      kSave,
      kLoad,
      kClear,
      kIngest,
      kCheckpoint,
      kBarrier,
      kStop
    };
    Kind kind = Kind::kQuery;
    int64_t session = 0;
    std::string arg;  // sql (kQuery), directory (kSave/kLoad), or source
    int64_t frames = 0;  // kIngest: frames arriving this tick
    std::promise<Result<engine::QueryResult>> query_promise;
    std::promise<Status> status_promise;
    std::promise<Result<ingest::StreamIngestor::FlushResult>> ingest_promise;
  };

  void ExecutorLoop();
  void Enqueue(Op op);
  /// Renders and publishes the /sessions snapshot to the engine's
  /// telemetry plane (no-op cost when no server is running).
  void PublishSessions();

  std::unique_ptr<engine::EvaEngine> engine_;

  mutable std::mutex sessions_mu_;
  std::map<int64_t, std::shared_ptr<EvaSession>> sessions_;
  int64_t next_session_id_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Op> queue_;
  bool stopping_ = false;
  std::thread executor_;
};

}  // namespace eva::service

#endif  // EVA_SERVICE_EVA_SERVICE_H_
