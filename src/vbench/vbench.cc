#include "vbench/vbench.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "obs/query_metrics_json.h"

namespace eva::vbench {

namespace {

// CREATE UDF statements for the standard model zoo. Costs are the paper's
// measured per-tuple values (Table 3 / Table 5); RECALL encodes the
// accuracy-dependent detection behaviour (DESIGN.md §2).
const char* const kCreateUdfStatements[] = {
    "CREATE UDF YoloTiny "
    "INPUT=(frame NDARRAY UINT8(3, ANYDIM, ANYDIM)) "
    "OUTPUT=(labels NDARRAY STR(ANYDIM), bboxes NDARRAY FLOAT32(ANYDIM, 4)) "
    "IMPL='udfs/yolo_tiny.py' LOGICAL_TYPE=ObjectDetector "
    "PROPERTIES=('ACCURACY'='LOW', 'KIND'='DETECTOR', 'COST_MS'='9', "
    "'RECALL'='0.90', 'RECALL_SMALL'='0.30', 'ACCURACY_SCORE'='17.6');",

    "CREATE UDF FasterRCNNResNet50 "
    "INPUT=(frame NDARRAY UINT8(3, ANYDIM, ANYDIM)) "
    "OUTPUT=(labels NDARRAY STR(ANYDIM), bboxes NDARRAY FLOAT32(ANYDIM, 4)) "
    "IMPL='udfs/fasterrcnn_resnet50.py' LOGICAL_TYPE=ObjectDetector "
    "PROPERTIES=('ACCURACY'='MEDIUM', 'KIND'='DETECTOR', 'COST_MS'='99', "
    "'RECALL'='0.96', 'RECALL_SMALL'='0.72', 'ACCURACY_SCORE'='37.9');",

    "CREATE UDF FasterRCNNResNet101 "
    "INPUT=(frame NDARRAY UINT8(3, ANYDIM, ANYDIM)) "
    "OUTPUT=(labels NDARRAY STR(ANYDIM), bboxes NDARRAY FLOAT32(ANYDIM, 4)) "
    "IMPL='udfs/fasterrcnn_resnet101.py' LOGICAL_TYPE=ObjectDetector "
    "PROPERTIES=('ACCURACY'='HIGH', 'KIND'='DETECTOR', 'COST_MS'='120', "
    "'RECALL'='0.98', 'RECALL_SMALL'='0.90', 'ACCURACY_SCORE'='42.0');",

    "CREATE UDF CarType "
    "INPUT=(frame NDARRAY UINT8(3, ANYDIM, ANYDIM), bbox NDARRAY "
    "FLOAT32(4)) "
    "OUTPUT=(type NDARRAY STR(ANYDIM)) "
    "IMPL='udfs/car_type.py' "
    "PROPERTIES=('KIND'='CLASSIFIER', 'COST_MS'='6', 'TARGET'='car_type', "
    "'CLS_ACCURACY'='0.92');",

    "CREATE UDF ColorDet "
    "INPUT=(frame NDARRAY UINT8(3, ANYDIM, ANYDIM), bbox NDARRAY "
    "FLOAT32(4)) "
    "OUTPUT=(color NDARRAY STR(ANYDIM)) "
    "IMPL='udfs/color_det.py' "
    "PROPERTIES=('KIND'='CLASSIFIER', 'COST_MS'='5', 'TARGET'='color', "
    "'CLS_ACCURACY'='0.92', 'DEVICE'='CPU');",

    "CREATE UDF VehicleFilter "
    "INPUT=(frame NDARRAY UINT8(3, ANYDIM, ANYDIM)) "
    "OUTPUT=(keep NDARRAY UINT8(1)) "
    "IMPL='udfs/vehicle_filter.py' "
    "PROPERTIES=('KIND'='FILTER', 'COST_MS'='1');",
};

int64_t Frac(int64_t frames, double f) {
  return static_cast<int64_t>(static_cast<double>(frames) * f);
}

}  // namespace

Status RegisterStandardUdfs(engine::EvaEngine* engine) {
  for (const char* sql : kCreateUdfStatements) {
    auto r = engine->Execute(sql);
    if (!r.ok() && r.status().code() != StatusCode::kAlreadyExists) {
      return r.status();
    }
  }
  return Status::OK();
}

catalog::VideoInfo ShortUaDetrac() {
  catalog::VideoInfo v;
  v.name = "short_ua_detrac";
  v.num_frames = 7500;
  v.width = 960;
  v.height = 540;
  v.mean_objects_per_frame = 8.3 / 0.8;  // 8.3 *vehicles* per frame
  v.seed = 101;
  return v;
}

catalog::VideoInfo MediumUaDetrac() {
  catalog::VideoInfo v = ShortUaDetrac();
  v.name = "medium_ua_detrac";
  v.num_frames = 14000;
  v.seed = 102;
  return v;
}

catalog::VideoInfo LongUaDetrac() {
  catalog::VideoInfo v = ShortUaDetrac();
  v.name = "long_ua_detrac";
  v.num_frames = 28000;
  v.seed = 103;
  // §5.5: LONG-UA-DETRAC has slightly more vehicles per frame on average.
  v.mean_objects_per_frame *= 1.15;
  return v;
}

catalog::VideoInfo Jackson() {
  catalog::VideoInfo v;
  v.name = "jackson";
  v.num_frames = 14000;
  v.width = 600;
  v.height = 400;
  v.mean_objects_per_frame = 0.1 / 0.8;
  v.seed = 104;
  return v;
}

std::vector<std::string> VbenchHigh(const std::string& video,
                                    int64_t frames) {
  // Iterative refinement over one part of the video (Table 1): zooming
  // in/out on bounding-box area and attribute constraints plus range
  // shifts, with ≈50% frame overlap between subsequent queries.
  const std::string detector = "FasterRCNNResNet50(frame)";
  auto q = [&](const std::string& where) {
    return "SELECT id, obj FROM " + video + " CROSS APPLY " + detector +
           " WHERE " + where + ";";
  };
  std::vector<std::string> out;
  out.push_back(q("id < " + std::to_string(Frac(frames, 0.71)) +
                  " AND label = 'car' AND area > 0.3 AND "
                  "CarType(frame, bbox) = 'Nissan'"));
  out.push_back(q("id < " + std::to_string(Frac(frames, 0.71)) +
                  " AND label = 'car' AND CarType(frame, bbox) = "
                  "'Nissan'"));  // zoom out
  out.push_back(q("id < " + std::to_string(Frac(frames, 0.71)) +
                  " AND area > 0.25 AND label = 'car' AND "
                  "CarType(frame, bbox) = 'Nissan' AND "
                  "ColorDet(frame, bbox) = 'Gray'"));  // zoom in
  out.push_back(q("id >= " + std::to_string(Frac(frames, 0.14)) +
                  " AND id < " + std::to_string(Frac(frames, 0.86)) +
                  " AND label = 'car' AND area > 0.2 AND "
                  "ColorDet(frame, bbox) = 'Gray'"));
  out.push_back(q("id >= " + std::to_string(Frac(frames, 0.29)) +
                  " AND id < " + std::to_string(Frac(frames, 0.93)) +
                  " AND label = 'car' AND CarType(frame, bbox) = 'Toyota' "
                  "AND ColorDet(frame, bbox) = 'White'"));
  out.push_back(q("id > " + std::to_string(Frac(frames, 0.54)) +
                  " AND label = 'car' AND ColorDet(frame, bbox) = "
                  "'Gray'"));  // shifting
  out.push_back(q("id > " + std::to_string(Frac(frames, 0.36)) +
                  " AND label = 'car' AND area > 0.15 AND "
                  "CarType(frame, bbox) = 'Nissan' AND "
                  "ColorDet(frame, bbox) = 'Red'"));
  out.push_back(q("id > " + std::to_string(Frac(frames, 0.29)) +
                  " AND label = 'car' AND area > 0.1 AND "
                  "CarType(frame, bbox) = 'Nissan' AND "
                  "ColorDet(frame, bbox) = 'Gray'"));
  return out;
}

std::vector<std::string> VbenchLow(const std::string& video,
                                   int64_t frames) {
  // Skimming different parts of the video: near-disjoint ranges (≈4.5%
  // overlap) with two refinement revisits (Q3 of Q1's range, Q6 of Q4's).
  const std::string detector = "FasterRCNNResNet50(frame)";
  auto q = [&](const std::string& where) {
    return "SELECT id, obj FROM " + video + " CROSS APPLY " + detector +
           " WHERE " + where + ";";
  };
  auto range = [&](double lo, double hi) {
    return "id >= " + std::to_string(Frac(frames, lo)) + " AND id < " +
           std::to_string(Frac(frames, hi));
  };
  std::vector<std::string> out;
  out.push_back(q(range(0.00, 0.125) +
                  " AND label = 'car' AND area > 0.25 AND "
                  "CarType(frame, bbox) = 'Nissan'"));
  out.push_back(q(range(0.12, 0.25) +
                  " AND label = 'car' AND CarType(frame, bbox) = 'Nissan' "
                  "AND ColorDet(frame, bbox) = 'Gray'"));
  out.push_back(q(range(0.00, 0.125) +
                  " AND label = 'car' AND area > 0.1 AND "
                  "CarType(frame, bbox) = 'Nissan' AND "
                  "ColorDet(frame, bbox) = 'Gray'"));  // revisit Q1
  out.push_back(q(range(0.25, 0.375) +
                  " AND label = 'car' AND area > 0.2 AND "
                  "ColorDet(frame, bbox) = 'Gray'"));
  out.push_back(q(range(0.37, 0.50) +
                  " AND label = 'car' AND CarType(frame, bbox) = "
                  "'Toyota'"));
  out.push_back(q(range(0.25, 0.375) +
                  " AND label = 'car' AND area > 0.2 AND "
                  "ColorDet(frame, bbox) = 'Gray' AND "
                  "CarType(frame, bbox) = 'Ford'"));  // refine Q4
  out.push_back(q(range(0.50, 0.75) +
                  " AND label = 'car' AND area > 0.3 AND "
                  "ColorDet(frame, bbox) = 'Red'"));
  out.push_back(q(range(0.75, 1.00) +
                  " AND label = 'car' AND CarType(frame, bbox) = "
                  "'Nissan'"));
  return out;
}

std::vector<std::string> VbenchHighLogical(const std::string& video,
                                           int64_t frames) {
  // Accuracy requirements emulating multiple interactive applications
  // (§5.4): later low/medium-accuracy queries can reuse the views of the
  // earlier medium/high-accuracy models under Algorithm 2.
  const char* accuracy[8] = {"MEDIUM", "HIGH", "MEDIUM", "MEDIUM",
                             "HIGH",   "LOW",  "MEDIUM", "LOW"};
  std::vector<std::string> queries = VbenchHigh(video, frames);
  for (size_t i = 0; i < queries.size(); ++i) {
    std::string& q = queries[i];
    const std::string from = "CROSS APPLY FasterRCNNResNet50(frame)";
    size_t pos = q.find(from);
    q.replace(pos, from.size(),
              std::string("CROSS APPLY ObjectDetector(frame) ACCURACY '") +
                  accuracy[i] + "'");
  }
  // Insert the Listing-1 traffic-monitoring query as the fourth query: a
  // low-accuracy COUNT over detected cars with no dependent classifier —
  // the case where reusing a high-accuracy detector view is a pure win
  // (the paper's 6.6x example; "the low-accuracy ObjectDetector in Q4 may
  // reuse the results of the high-accuracy ObjectDetector", §1).
  queries.insert(queries.begin() + 3,
                 "SELECT id, COUNT(*) FROM " + video +
                     " CROSS APPLY ObjectDetector(frame) ACCURACY 'LOW' "
                     "WHERE id >= " +
                     std::to_string(Frac(frames, 0.14)) + " AND id < " +
                     std::to_string(Frac(frames, 0.86)) +
                     " AND label = 'car' AND area > 0.15 GROUP BY id;");
  return queries;
}

std::vector<std::string> VbenchHighFiltered(const std::string& video,
                                            int64_t frames) {
  std::vector<std::string> queries = VbenchHigh(video, frames);
  for (std::string& q : queries) {
    const std::string where = " WHERE ";
    size_t pos = q.find(where);
    q.insert(pos + where.size(), "VehicleFilter(frame) = true AND ");
  }
  return queries;
}

std::vector<std::string> Permute(std::vector<std::string> queries,
                                 uint64_t seed) {
  Rng rng(seed);
  for (size_t i = queries.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.NextBelow(i));
    std::swap(queries[i - 1], queries[j]);
  }
  return queries;
}

Result<WorkloadResult> RunWorkload(engine::EvaEngine* engine,
                                   const std::vector<std::string>& queries) {
  WorkloadResult out;
  for (const std::string& sql : queries) {
    EVA_ASSIGN_OR_RETURN(engine::QueryResult r, engine->Execute(sql));
    out.total_ms += r.metrics.TotalMs();
    out.total_invocations += r.metrics.TotalInvocations();
    out.total_reused += r.metrics.TotalReused();
    out.aggregate.Accumulate(r.metrics);
    QueryRecord record;
    record.sql = sql;
    record.metrics = std::move(r.metrics);
    record.report = std::move(r.report);
    out.queries.push_back(std::move(record));
  }
  out.view_bytes = engine->views().TotalSizeBytes();
  return out;
}

std::string WorkloadResult::AggregateJson() const {
  return obs::QueryMetricsToJson(aggregate);
}

Result<std::unique_ptr<engine::EvaEngine>> MakeEngine(
    optimizer::ReuseMode mode, const catalog::VideoInfo& video) {
  engine::EngineOptions options;
  options.optimizer.mode = mode;
  if (mode == optimizer::ReuseMode::kNoReuse) {
    options.optimizer.reuse_enabled = false;
  }
  return MakeEngine(options, video);
}

Result<std::unique_ptr<engine::EvaEngine>> MakeEngine(
    engine::EngineOptions options, const catalog::VideoInfo& video) {
  auto catalog = std::make_shared<catalog::Catalog>();
  auto engine = std::make_unique<engine::EvaEngine>(options, catalog);
  EVA_RETURN_IF_ERROR(RegisterStandardUdfs(engine.get()));
  EVA_RETURN_IF_ERROR(engine->CreateVideo(video));
  return engine;
}

}  // namespace eva::vbench
