#ifndef EVA_VBENCH_VBENCH_H_
#define EVA_VBENCH_VBENCH_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "engine/eva_engine.h"

namespace eva::vbench {

/// Registers the paper's models through EVA-QL CREATE UDF statements
/// (Listing 2): FasterRCNNResNet50/101, YoloTiny (logical ObjectDetector;
/// Table 5 costs/accuracies), CarType, ColorDet (Table 3), and the
/// VehicleFilter specialized filter (§5.6).
Status RegisterStandardUdfs(engine::EvaEngine* engine);

/// §5.1 video datasets (synthetic stand-ins, DESIGN.md §2).
catalog::VideoInfo ShortUaDetrac();   // 7.5k frames, 8.3 vehicles/frame
catalog::VideoInfo MediumUaDetrac();  // 14k frames
catalog::VideoInfo LongUaDetrac();    // 28k frames
catalog::VideoInfo Jackson();         // 14k frames, 0.1 vehicles/frame

/// The two §5.1 query sets over `video` (8 queries each; id ranges scale
/// with the frame count, §5.5). VBENCH-HIGH models iterative refinement
/// over one part of the video (≈50% overlap); VBENCH-LOW models skimming
/// different parts (≈4.5% overlap).
std::vector<std::string> VbenchHigh(const std::string& video,
                                    int64_t num_frames);
std::vector<std::string> VbenchLow(const std::string& video,
                                   int64_t num_frames);

/// VBENCH-HIGH with the physical detector replaced by the logical
/// ObjectDetector and per-query accuracy requirements (§5.4, Fig. 10).
std::vector<std::string> VbenchHighLogical(const std::string& video,
                                           int64_t num_frames);

/// VBENCH-HIGH with a specialized-filter predicate prepended to every
/// query (§5.6).
std::vector<std::string> VbenchHighFiltered(const std::string& video,
                                            int64_t num_frames);

/// Deterministic permutation of a query set (Fig. 8's VBENCH-HIGH-1..4).
std::vector<std::string> Permute(std::vector<std::string> queries,
                                 uint64_t seed);

/// Per-query record of a workload run.
struct QueryRecord {
  std::string sql;
  exec::QueryMetrics metrics;
  optimizer::OptimizeReport report;
};

struct WorkloadResult {
  std::vector<QueryRecord> queries;
  double total_ms = 0;
  int64_t total_invocations = 0;
  int64_t total_reused = 0;
  double view_bytes = 0;
  /// Workload-wide metric totals (per-UDF counts + sim-time breakdown
  /// summed over every query).
  exec::QueryMetrics aggregate;

  double HitPercentage() const {
    return total_invocations == 0
               ? 0
               : 100.0 * static_cast<double>(total_reused) /
                     static_cast<double>(total_invocations);
  }

  /// JSON dump of `aggregate` (obs::QueryMetricsToJson), used by the
  /// benchmark harnesses for per-workload metrics files.
  std::string AggregateJson() const;
};

/// Runs a query list against `engine`, accumulating metrics.
Result<WorkloadResult> RunWorkload(engine::EvaEngine* engine,
                                   const std::vector<std::string>& queries);

/// Builds a ready-to-run engine: catalog with the standard UDFs, the given
/// video loaded, and the requested reuse mode.
Result<std::unique_ptr<engine::EvaEngine>> MakeEngine(
    optimizer::ReuseMode mode, const catalog::VideoInfo& video);
Result<std::unique_ptr<engine::EvaEngine>> MakeEngine(
    engine::EngineOptions options, const catalog::VideoInfo& video);

}  // namespace eva::vbench

#endif  // EVA_VBENCH_VBENCH_H_
