#ifndef EVA_OBS_OP_STATS_H_
#define EVA_OBS_OP_STATS_H_

#include <cstdint>

namespace eva::obs {

/// Per-plan-node runtime counters collected while an EXPLAIN ANALYZE (or
/// any stats-enabled execution) drains the operator tree. Time is
/// cumulative — it includes the children's time, mirroring how pull-based
/// operators nest; the renderer derives self-time by subtraction.
struct OperatorStats {
  int64_t batches = 0;
  int64_t rows_out = 0;
  double sim_ms = 0;   // simulated time, cumulative over children
  double wall_us = 0;  // host wall time, cumulative over children
  int64_t view_hits = 0;
  int64_t view_misses = 0;
  int64_t udf_invocations = 0;  // fresh model evaluations
  int64_t rows_reused = 0;      // tuples answered from a view / cache
  int64_t rows_materialized = 0;
};

}  // namespace eva::obs

#endif  // EVA_OBS_OP_STATS_H_
