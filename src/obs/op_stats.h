#ifndef EVA_OBS_OP_STATS_H_
#define EVA_OBS_OP_STATS_H_

#include <atomic>
#include <cstdint>

namespace eva::obs {

/// Per-plan-node runtime counters collected while an EXPLAIN ANALYZE (or
/// any stats-enabled execution) drains the operator tree. Time is
/// cumulative — it includes the children's time, mirroring how pull-based
/// operators nest; the renderer derives self-time by subtraction.
///
/// Fields are atomics: with the parallel runtime (src/runtime/), leaf
/// helpers increment the active node's counters from worker threads. The
/// morsel driver funnels worker increments through morsel-local cells
/// merged on the driver thread (so totals stay deterministic), but the
/// cells themselves stay race-free even if an operator charges a shared
/// cell directly. All accesses are relaxed — these are statistics, not
/// synchronization.
struct OperatorStats {
  std::atomic<int64_t> batches{0};
  std::atomic<int64_t> rows_out{0};
  std::atomic<double> sim_ms{0};   // simulated time, cumulative over children
  std::atomic<double> wall_us{0};  // host wall time, cumulative over children
  std::atomic<int64_t> view_hits{0};
  std::atomic<int64_t> view_misses{0};
  std::atomic<int64_t> udf_invocations{0};  // fresh model evaluations
  std::atomic<int64_t> rows_reused{0};      // tuples answered from view/cache
  std::atomic<int64_t> rows_materialized{0};
  std::atomic<int64_t> udf_retries{0};  // transient-fault retry attempts
  std::atomic<int64_t> segments_skipped{0};  // zone-map probe skips
  /// Probe misses answered by the per-segment Bloom filter without
  /// touching the key index, and the filter's false positives (MayContain
  /// said yes, the key-index search still missed).
  std::atomic<int64_t> bloom_negatives{0};
  std::atomic<int64_t> bloom_fps{0};
  /// Rows whose filter verdict came from the vectorized batch evaluator.
  std::atomic<int64_t> rows_filtered_vectorized{0};

  OperatorStats() = default;
  OperatorStats(const OperatorStats& other) { *this = other; }
  OperatorStats& operator=(const OperatorStats& other) {
    batches = other.batches.load(std::memory_order_relaxed);
    rows_out = other.rows_out.load(std::memory_order_relaxed);
    sim_ms = other.sim_ms.load(std::memory_order_relaxed);
    wall_us = other.wall_us.load(std::memory_order_relaxed);
    view_hits = other.view_hits.load(std::memory_order_relaxed);
    view_misses = other.view_misses.load(std::memory_order_relaxed);
    udf_invocations = other.udf_invocations.load(std::memory_order_relaxed);
    rows_reused = other.rows_reused.load(std::memory_order_relaxed);
    rows_materialized =
        other.rows_materialized.load(std::memory_order_relaxed);
    udf_retries = other.udf_retries.load(std::memory_order_relaxed);
    segments_skipped = other.segments_skipped.load(std::memory_order_relaxed);
    bloom_negatives = other.bloom_negatives.load(std::memory_order_relaxed);
    bloom_fps = other.bloom_fps.load(std::memory_order_relaxed);
    rows_filtered_vectorized =
        other.rows_filtered_vectorized.load(std::memory_order_relaxed);
    return *this;
  }

  /// Accumulates another stats cell (morsel-local → per-node merge).
  void Add(const OperatorStats& other) {
    batches += other.batches.load(std::memory_order_relaxed);
    rows_out += other.rows_out.load(std::memory_order_relaxed);
    sim_ms += other.sim_ms.load(std::memory_order_relaxed);
    wall_us += other.wall_us.load(std::memory_order_relaxed);
    view_hits += other.view_hits.load(std::memory_order_relaxed);
    view_misses += other.view_misses.load(std::memory_order_relaxed);
    udf_invocations += other.udf_invocations.load(std::memory_order_relaxed);
    rows_reused += other.rows_reused.load(std::memory_order_relaxed);
    rows_materialized +=
        other.rows_materialized.load(std::memory_order_relaxed);
    udf_retries += other.udf_retries.load(std::memory_order_relaxed);
    segments_skipped += other.segments_skipped.load(std::memory_order_relaxed);
    bloom_negatives += other.bloom_negatives.load(std::memory_order_relaxed);
    bloom_fps += other.bloom_fps.load(std::memory_order_relaxed);
    rows_filtered_vectorized +=
        other.rows_filtered_vectorized.load(std::memory_order_relaxed);
  }
};

}  // namespace eva::obs

#endif  // EVA_OBS_OP_STATS_H_
